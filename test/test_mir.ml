(* Tests for the MIR layer: validation, evaluation, out-of-SSA lowering,
   llvm-link behaviours (metadata conflicts, data ordering), the
   MergeFunction/FMSA baselines, DCE — and the codegen differential: every
   MIR program must behave identically after lowering to machine code. *)

let empty_module name = { Ir.m_name = name; funcs = []; globals = []; externs = []; flags = [] }

(* sum(n) = 1 + ... + n, via a phi loop. *)
let sum_func () =
  let b = Builder.create ~name:"sum" ~nparams:1 () in
  let n = List.hd (Builder.params b) in
  let acc0 = Builder.assign b (Ir.Imm 0) in
  let i0 = Builder.assign b (Ir.Imm 1) in
  let acc_phi = Builder.fresh b in
  let i_phi = Builder.fresh b in
  Builder.terminate b (Ir.Br "loop");
  Builder.start_block b "loop";
  Builder.add_phi b acc_phi [ ("entry", Ir.V acc0); ("body", Ir.V acc_phi) ];
  Builder.add_phi b i_phi [ ("entry", Ir.V i0); ("body", Ir.V i_phi) ];
  (* Recompute in body; phi incoming from body refers to updated values. *)
  let cond = Builder.icmp b Machine.Cond.Le (Ir.V i_phi) (Ir.V n) in
  Builder.terminate b (Ir.Cond_br (Ir.V cond, "body", "done"));
  Builder.start_block b "body";
  let acc' = Builder.binop b Ir.Add (Ir.V acc_phi) (Ir.V i_phi) in
  let i' = Builder.binop b Ir.Add (Ir.V i_phi) (Ir.Imm 1) in
  Builder.terminate b (Ir.Br "loop");
  Builder.start_block b "done";
  Builder.terminate b (Ir.Ret (Ir.V acc_phi));
  let f = Builder.finish b in
  (* Patch the phi incoming from body to the updated values (the builder
     API records operands eagerly, so rewrite them here). *)
  let patch (blk : Ir.block) =
    if blk.label <> "loop" then blk
    else
      let phis =
        List.map
          (fun (p : Ir.phi) ->
            let incoming =
              List.map
                (fun (l, o) ->
                  if l <> "body" then (l, o)
                  else if p.phi_dst = acc_phi then (l, Ir.V acc')
                  else (l, Ir.V i'))
                p.incoming
            in
            { p with incoming })
          blk.phis
      in
      { blk with phis }
  in
  { f with Ir.blocks = List.map patch f.Ir.blocks }

let sum_module () = { (empty_module "m_sum") with Ir.funcs = [ sum_func () ] }

let eval_exn ?args m ~entry =
  match Eval.run ?args ~entry m with
  | Ok r -> r
  | Error e -> Alcotest.fail ("eval error: " ^ Eval.error_to_string e)

let test_validate () =
  let m = sum_module () in
  (match Ir.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("expected valid: " ^ e));
  (* Branch to a bogus label must be rejected. *)
  let bogus =
    {
      (empty_module "bad") with
      Ir.funcs =
        [
          {
            Ir.name = "f";
            params = [];
            blocks = [ { Ir.label = "entry"; phis = []; instrs = []; term = Ir.Br "nope" } ];
            next_value = 0;
            from_module = "bad";
          };
        ];
    }
  in
  match Ir.validate bogus with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error _ -> ()

let test_eval_sum () =
  let m = sum_module () in
  Alcotest.(check int) "sum 10" 55 (eval_exn m ~entry:"sum" ~args:[ 10 ]).exit_value;
  Alcotest.(check int) "sum 0" 0 (eval_exn m ~entry:"sum" ~args:[ 0 ]).exit_value

let test_eval_objects () =
  let b = Builder.create ~name:"main" ~nparams:0 () in
  let obj = Builder.alloc_object b "Meta" 32 in
  Builder.retain b (Ir.V obj);
  Builder.retain b (Ir.V obj);
  let rc = Builder.load b (Ir.V obj) 0 in
  Builder.call_void b "print_i64" [ Ir.V rc ];
  Builder.release b (Ir.V obj);
  Builder.store b (Ir.Imm 99) (Ir.V obj) 16;
  let v = Builder.load b (Ir.V obj) 16 in
  Builder.terminate b (Ir.Ret (Ir.V v));
  let m =
    {
      (empty_module "m") with
      Ir.funcs = [ Builder.finish b ];
      globals = [ { Ir.g_name = "Meta"; g_init = [ Ir.Gword 7 ]; g_module = "m" } ];
    }
  in
  let r = eval_exn m ~entry:"main" in
  Alcotest.(check int) "field" 99 r.exit_value;
  Alcotest.(check (list int)) "refcount printed" [ 3 ] r.output

(* Out-of-SSA: behaviour must be preserved and phis must vanish. *)
let test_out_of_ssa () =
  let m = sum_module () in
  let m' = Out_of_ssa.run m in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          Alcotest.(check int) "no phis left" 0 (List.length b.phis))
        f.blocks)
    m'.funcs;
  (match Ir.validate ~require_ssa:false m' with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("out-of-ssa produced invalid module: " ^ e));
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "sum %d preserved" n)
        (eval_exn m ~entry:"sum" ~args:[ n ]).exit_value
        (eval_exn m' ~entry:"sum" ~args:[ n ]).exit_value)
    [ 0; 1; 7; 23 ]

let test_out_of_ssa_swap () =
  (* The classic swap problem: two phis exchanging values each iteration.
     Computes (a, b) swapped n times; returns a. *)
  let b = Builder.create ~name:"swap" ~nparams:1 () in
  let n = List.hd (Builder.params b) in
  let a0 = Builder.assign b (Ir.Imm 3) in
  let b0 = Builder.assign b (Ir.Imm 11) in
  let i0 = Builder.assign b (Ir.Imm 0) in
  let pa = Builder.fresh b in
  let pb = Builder.fresh b in
  let pi = Builder.fresh b in
  Builder.terminate b (Ir.Br "loop");
  Builder.start_block b "loop";
  Builder.add_phi b pa [ ("entry", Ir.V a0); ("body", Ir.V pb) ];
  Builder.add_phi b pb [ ("entry", Ir.V b0); ("body", Ir.V pa) ];
  Builder.add_phi b pi [ ("entry", Ir.V i0); ("body", Ir.V pi) ];
  let c = Builder.icmp b Machine.Cond.Lt (Ir.V pi) (Ir.V n) in
  Builder.terminate b (Ir.Cond_br (Ir.V c, "body", "out"));
  Builder.start_block b "body";
  let i' = Builder.binop b Ir.Add (Ir.V pi) (Ir.Imm 1) in
  Builder.terminate b (Ir.Br "loop");
  Builder.start_block b "out";
  Builder.terminate b (Ir.Ret (Ir.V pa));
  let f = Builder.finish b in
  let patch (blk : Ir.block) =
    if blk.label <> "loop" then blk
    else
      {
        blk with
        phis =
          List.map
            (fun (p : Ir.phi) ->
              {
                p with
                incoming =
                  List.map
                    (fun (l, o) ->
                      if l = "body" && p.phi_dst = pi then (l, Ir.V i') else (l, o))
                    p.incoming;
              })
            blk.phis;
      }
  in
  let m = { (empty_module "m") with Ir.funcs = [ { f with blocks = List.map patch f.blocks } ] } in
  let m' = Out_of_ssa.run m in
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "swap %d" n)
        (eval_exn m ~entry:"swap" ~args:[ n ]).exit_value
        (eval_exn m' ~entry:"swap" ~args:[ n ]).exit_value)
    [ 0; 1; 2; 5 ]

(* llvm-link behaviours. *)
let test_link_flag_conflict () =
  let swift_mod =
    {
      (empty_module "swift_m") with
      Ir.flags = [ ("objc_gc", Ir.Packed (Link.pack_objc_gc ~gc_mode:0 ~compiler_id:1 ~version:502)) ];
    }
  in
  let clang_mod =
    {
      (empty_module "clang_m") with
      Ir.flags = [ ("objc_gc", Ir.Packed (Link.pack_objc_gc ~gc_mode:0 ~compiler_id:2 ~version:900)) ];
    }
  in
  (* Legacy semantics: spurious conflict from compiler identity bits. *)
  (match Link.link ~flag_semantics:Link.Legacy ~name:"app" [ swift_mod; clang_mod ] with
  | Error (Link.Flag_conflict _) -> ()
  | Ok _ -> Alcotest.fail "legacy link should conflict"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Link.error_to_string e));
  (* Attribute semantics (the paper's fix): links fine. *)
  (match Link.link ~flag_semantics:Link.Attributes ~name:"app" [ swift_mod; clang_mod ] with
  | Ok m -> Alcotest.(check string) "linked" "app" m.Ir.m_name
  | Error e -> Alcotest.fail ("attribute link failed: " ^ Link.error_to_string e));
  (* A genuine gc-mode difference must still conflict. *)
  let bad = { (empty_module "bad") with Ir.flags = [ ("objc_gc", Ir.Packed (Link.pack_objc_gc ~gc_mode:1 ~compiler_id:1 ~version:502)) ] } in
  match Link.link ~flag_semantics:Link.Attributes ~name:"app" [ swift_mod; bad ] with
  | Error (Link.Flag_conflict _) -> ()
  | Ok _ -> Alcotest.fail "genuine conflict must be detected"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Link.error_to_string e)

let module_with_globals name globals =
  {
    (empty_module name) with
    Ir.globals =
      List.map (fun g -> { Ir.g_name = g; g_init = [ Ir.Gword 0 ]; g_module = name }) globals;
  }

let test_link_data_order () =
  let m1 = module_with_globals "m1" [ "m1_a"; "m1_b"; "m1_c" ] in
  let m2 = module_with_globals "m2" [ "m2_a"; "m2_b"; "m2_c" ] in
  let preserved =
    match Link.link ~data_order:Link.Module_preserving ~name:"app" [ m1; m2 ] with
    | Ok m -> List.map (fun (g : Ir.global) -> g.g_module) m.globals
    | Error e -> Alcotest.fail (Link.error_to_string e)
  in
  Alcotest.(check (list string)) "module affinity preserved"
    [ "m1"; "m1"; "m1"; "m2"; "m2"; "m2" ] preserved;
  let interleaved =
    match Link.link ~data_order:Link.Interleaved ~name:"app" [ m1; m2 ] with
    | Ok m -> List.map (fun (g : Ir.global) -> g.g_module) m.globals
    | Error e -> Alcotest.fail (Link.error_to_string e)
  in
  (* Same multiset of globals, but affinity destroyed (with high
     probability under the hash shuffle; this fixed instance interleaves). *)
  Alcotest.(check int) "same count" 6 (List.length interleaved);
  Alcotest.(check bool) "order differs" true (interleaved <> preserved)

(* Regression for the §VI-3 data-layout fix: under [Module_preserving] the
   merged global list is *exactly* the concatenation of the input modules'
   lists — object order within each module untouched, names included — no
   matter how hash-scatter-prone the names are.  (The original llvm-link
   behaviour, modelled by [Interleaved], reorders by name hash.) *)
let test_link_data_order_preserves_object_order () =
  let st = Random.State.make [| 0xda7a |] in
  let mk_module mi =
    let name = Printf.sprintf "mod%d" mi in
    let n = 3 + Random.State.int st 5 in
    module_with_globals name
      (List.init n (fun gi ->
           Printf.sprintf "%s_g%d_%d" name gi (Random.State.int st 10000)))
  in
  let modules = List.init 4 mk_module in
  let before =
    List.concat_map
      (fun (m : Ir.modul) ->
        List.map (fun (g : Ir.global) -> g.g_name) m.globals)
      modules
  in
  match Link.link ~data_order:Link.Module_preserving ~name:"app" modules with
  | Error e -> Alcotest.fail (Link.error_to_string e)
  | Ok merged ->
    let after = List.map (fun (g : Ir.global) -> g.g_name) merged.globals in
    Alcotest.(check (list string))
      "object order identical before/after merge" before after

let test_link_duplicate_symbol () =
  let m1 = module_with_globals "m1" [ "shared" ] in
  let m2 = module_with_globals "m2" [ "shared" ] in
  match Link.link ~name:"app" [ m1; m2 ] with
  | Error (Link.Duplicate_symbol "shared") -> ()
  | Ok _ -> Alcotest.fail "expected duplicate symbol error"
  | Error e -> Alcotest.fail ("unexpected: " ^ Link.error_to_string e)

(* MergeFunctions / FMSA --------------------------------------------------- *)

let const_func name k =
  let b = Builder.create ~name ~nparams:1 () in
  let p = List.hd (Builder.params b) in
  let x = Builder.binop b Ir.Add (Ir.V p) (Ir.Imm k) in
  let y = Builder.binop b Ir.Mul (Ir.V x) (Ir.V x) in
  let z = Builder.binop b Ir.Sub (Ir.V y) (Ir.V p) in
  Builder.terminate b (Ir.Ret (Ir.V z));
  Builder.finish b

let test_merge_functions () =
  let m =
    {
      (empty_module "m") with
      Ir.funcs = [ const_func "f1" 5; const_func "f2" 5; const_func "f3" 9 ];
    }
  in
  let m', stats = Merge_functions.run ~min_instrs:1 m in
  Alcotest.(check int) "one group" 1 stats.Merge_functions.groups;
  Alcotest.(check int) "one merged" 1 stats.Merge_functions.funcs_merged;
  (* f2 became a thunk but must still compute the same thing. *)
  List.iter
    (fun n ->
      Alcotest.(check int) "f2 behaviour" (eval_exn m ~entry:"f2" ~args:[ n ]).exit_value
        (eval_exn m' ~entry:"f2" ~args:[ n ]).exit_value;
      Alcotest.(check int) "f3 untouched" (eval_exn m ~entry:"f3" ~args:[ n ]).exit_value
        (eval_exn m' ~entry:"f3" ~args:[ n ]).exit_value)
    [ 0; 3; 10 ]

let test_fmsa () =
  let m =
    {
      (empty_module "m") with
      Ir.funcs = [ const_func "g1" 5; const_func "g2" 9; const_func "g3" 123 ];
    }
  in
  let m', stats = Fmsa.run m in
  Alcotest.(check int) "one group" 1 stats.Fmsa.groups;
  Alcotest.(check int) "three thunked" 3 stats.Fmsa.funcs_merged;
  Alcotest.(check int) "one merged created" 1 stats.Fmsa.merged_created;
  (match Ir.validate m' with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fmsa output invalid: " ^ e));
  List.iter
    (fun (f, n) ->
      Alcotest.(check int)
        (Printf.sprintf "%s(%d)" f n)
        (eval_exn m ~entry:f ~args:[ n ]).exit_value
        (eval_exn m' ~entry:f ~args:[ n ]).exit_value)
    [ ("g1", 4); ("g2", 7); ("g3", 2) ]

let test_dce () =
  let b = Builder.create ~name:"f" ~nparams:1 () in
  let p = List.hd (Builder.params b) in
  let _dead = Builder.binop b Ir.Mul (Ir.V p) (Ir.Imm 100) in
  let live = Builder.binop b Ir.Add (Ir.V p) (Ir.Imm 1) in
  Builder.terminate b (Ir.Ret (Ir.V live));
  Builder.start_block b "orphan";
  let _dead2 = Builder.assign b (Ir.Imm 1) in
  Builder.terminate b (Ir.Ret (Ir.Imm 0));
  let m = { (empty_module "m") with Ir.funcs = [ Builder.finish b ] } in
  let m', stats = Dce.run m in
  Alcotest.(check int) "block removed" 1 stats.Dce.blocks_removed;
  Alcotest.(check bool) "instrs removed" true (stats.Dce.instrs_removed >= 1);
  Alcotest.(check int) "behaviour preserved" (eval_exn m ~entry:"f" ~args:[ 4 ]).exit_value
    (eval_exn m' ~entry:"f" ~args:[ 4 ]).exit_value


(* Codegen internals: live intervals ---------------------------------------- *)

let test_intervals () =
  (* %1 = const; call; use %1  -> %1 crosses the call. *)
  let b = Builder.create ~name:"f" ~nparams:1 () in
  let p = List.hd (Builder.params b) in
  let x = Builder.assign b (Ir.Imm 5) in
  let r = Builder.call b "g" [ Ir.V p ] in
  let s = Builder.binop b Ir.Add (Ir.V x) (Ir.V r) in
  Builder.terminate b (Ir.Ret (Ir.V s));
  let f = Builder.finish b in
  let ivs = Intervals.compute f in
  let find v = List.find (fun (iv : Intervals.t) -> iv.v = v) ivs in
  Alcotest.(check bool) "x crosses the call" true (find x).Intervals.crosses_call;
  Alcotest.(check bool) "call result does not cross its own call" false
    (find r).Intervals.crosses_call;
  Alcotest.(check bool) "param starts at 0" true ((find p).Intervals.first = 0);
  (* Intervals are sorted by start. *)
  let sorted = ref true in
  let rec chk = function
    | (a : Intervals.t) :: (b' : Intervals.t) :: rest ->
      if a.first > b'.first then sorted := false;
      chk (b' :: rest)
    | _ -> ()
  in
  chk ivs;
  Alcotest.(check bool) "sorted by start" true !sorted

let test_intervals_loop_extension () =
  (* A value defined before a loop and used inside it must stay live across
     the whole loop (the back edge extends its interval). *)
  let m = sum_module () in
  let f = Out_of_ssa.run_func (List.hd m.Ir.funcs) in
  let ivs = Intervals.compute f in
  (* The parameter n (value 0) is used in the loop condition on every
     iteration; its interval must cover the loop body's positions. *)
  let n_iv = List.find (fun (iv : Intervals.t) -> iv.v = 0) ivs in
  let max_last = List.fold_left (fun a (iv : Intervals.t) -> max a iv.last) 0 ivs in
  Alcotest.(check bool) "n lives into the loop region" true
    (n_iv.Intervals.last > max_last / 2)

(* Codegen differential ----------------------------------------------------- *)

let machine_result m ~entry ~args =
  let prog = Codegen.compile_modul m in
  (match Machine.Program.validate prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("compiled program invalid: " ^ e));
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  match Perfsim.Interp.run ~config ~args ~entry prog with
  | Ok r -> (r.exit_value, r.output)
  | Error e -> Alcotest.fail ("machine exec error: " ^ Perfsim.Interp.error_to_string e)

let check_diff ?(args = []) m ~entry =
  let er = eval_exn m ~entry ~args in
  let mv, mo = machine_result m ~entry ~args in
  Alcotest.(check int) (entry ^ " exit value") er.exit_value mv;
  Alcotest.(check (list int)) (entry ^ " output") er.output mo

let test_codegen_sum () =
  let m = sum_module () in
  List.iter (fun n -> check_diff m ~entry:"sum" ~args:[ n ]) [ 0; 1; 10; 100 ]

let test_codegen_objects () =
  let b = Builder.create ~name:"main" ~nparams:0 () in
  let obj = Builder.alloc_object b "Meta" 40 in
  Builder.retain b (Ir.V obj);
  Builder.store b (Ir.Imm 5) (Ir.V obj) 16;
  Builder.store b (Ir.Imm 6) (Ir.V obj) 24;
  let a = Builder.load b (Ir.V obj) 16 in
  let c = Builder.load b (Ir.V obj) 24 in
  let s = Builder.binop b Ir.Add (Ir.V a) (Ir.V c) in
  Builder.call_void b "print_i64" [ Ir.V s ];
  let rc = Builder.load b (Ir.V obj) 0 in
  Builder.call_void b "print_i64" [ Ir.V rc ];
  Builder.release b (Ir.V obj);
  Builder.terminate b (Ir.Ret (Ir.V s));
  let m =
    {
      (empty_module "m") with
      Ir.funcs = [ Builder.finish b ];
      globals = [ { Ir.g_name = "Meta"; g_init = [ Ir.Gword 1 ]; g_module = "m" } ];
    }
  in
  check_diff m ~entry:"main"

let test_codegen_spills () =
  (* More simultaneously-live values than there are registers: forces
     spilling; all values are summed at the end across a call. *)
  let b = Builder.create ~name:"main" ~nparams:0 () in
  let vals = List.init 24 (fun i -> Builder.assign b (Ir.Imm (i * 3))) in
  Builder.call_void b "print_i64" [ Ir.Imm 1 ];
  let total =
    List.fold_left
      (fun acc v -> Builder.binop b Ir.Add (Ir.V acc) (Ir.V v))
      (List.hd vals) (List.tl vals)
  in
  Builder.terminate b (Ir.Ret (Ir.V total));
  let m = { (empty_module "m") with Ir.funcs = [ Builder.finish b ] } in
  check_diff m ~entry:"main"

let test_codegen_calls_across () =
  (* Values live across calls must survive in callee-saved registers. *)
  let callee =
    let b = Builder.create ~name:"triple" ~nparams:1 () in
    let p = List.hd (Builder.params b) in
    let r = Builder.binop b Ir.Mul (Ir.V p) (Ir.Imm 3) in
    Builder.terminate b (Ir.Ret (Ir.V r));
    Builder.finish b
  in
  let b = Builder.create ~name:"main" ~nparams:0 () in
  let a = Builder.assign b (Ir.Imm 7) in
  let r1 = Builder.call b "triple" [ Ir.V a ] in
  let r2 = Builder.call b "triple" [ Ir.V r1 ] in
  let s = Builder.binop b Ir.Add (Ir.V a) (Ir.V r1) in
  let s2 = Builder.binop b Ir.Add (Ir.V s) (Ir.V r2) in
  Builder.terminate b (Ir.Ret (Ir.V s2));
  let m = { (empty_module "m") with Ir.funcs = [ Builder.finish b; callee ] } in
  check_diff m ~entry:"main"

let test_codegen_frame_shape () =
  (* A function with calls must save fp/lr with stp and restore with ldp —
     the paper's Listing 7/8 shape. *)
  let b = Builder.create ~name:"main" ~nparams:0 () in
  let x = Builder.assign b (Ir.Imm 1) in
  Builder.call_void b "print_i64" [ Ir.V x ];
  let y = Builder.binop b Ir.Add (Ir.V x) (Ir.Imm 1) in
  Builder.call_void b "print_i64" [ Ir.V y ];
  Builder.terminate b (Ir.Ret (Ir.Imm 0));
  let m = { (empty_module "m") with Ir.funcs = [ Builder.finish b ] } in
  let prog = Codegen.compile_modul m in
  let f = Option.get (Machine.Program.find_func prog "main") in
  let entry = Machine.Mfunc.entry f in
  (match entry.Machine.Block.body.(0) with
  | Machine.Insn.Stp (a, l, { base = Machine.Reg.SP; mode = Machine.Insn.Pre; _ })
    when Machine.Reg.equal a Machine.Reg.fp && Machine.Reg.equal l Machine.Reg.lr ->
    ()
  | i -> Alcotest.fail ("expected fp/lr save, got " ^ Machine.Insn.to_string i));
  (* The instruction before ret must restore fp/lr. *)
  let last = entry.Machine.Block.body.(Array.length entry.Machine.Block.body - 1) in
  match last with
  | Machine.Insn.Ldp (a, l, { base = Machine.Reg.SP; mode = Machine.Insn.Post; _ })
    when Machine.Reg.equal a Machine.Reg.fp && Machine.Reg.equal l Machine.Reg.lr ->
    ()
  | i -> Alcotest.fail ("expected fp/lr restore, got " ^ Machine.Insn.to_string i)

(* Random differential: generated MIR modules behave identically compiled. *)
let gen_module =
  QCheck.Gen.(
    let gen_func fidx callable =
      (* ops reference only already-defined values; calls only target
         already-generated functions, so the call graph is acyclic. *)
      let* n_ops = int_range 1 14 in
      let name = Printf.sprintf "fn%d" fidx in
      let b = Builder.create ~name ~nparams:1 () in
      let rec build nvals i =
        if i >= n_ops then return nvals
        else
          let pick_val = map (fun k -> Ir.V (k mod nvals)) (int_range 0 (nvals - 1)) in
          let call_cases =
            if callable = [] then []
            else [ (2, map2 (fun f a -> `Call (f, a)) (oneofl callable) pick_val) ]
          in
          let* op =
            frequency
              ([
                 (3, map (fun n -> `Const n) (int_range 0 20));
                 ( 4,
                   map3
                     (fun o a b' -> `Bin (o, a, b'))
                     (oneofl [ Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor ])
                     pick_val pick_val );
                 ( 2,
                   map2
                     (fun c a -> `Cmp (c, a))
                     (oneofl Machine.Cond.[ Eq; Ne; Lt; Ge ])
                     pick_val );
                 (1, map (fun a -> `Print a) pick_val);
               ]
              @ call_cases)
          in
          match op with
          | `Const n ->
            ignore (Builder.assign b (Ir.Imm n));
            build (nvals + 1) (i + 1)
          | `Bin (o, a, b') ->
            ignore (Builder.binop b o a b');
            build (nvals + 1) (i + 1)
          | `Cmp (c, a) ->
            ignore (Builder.icmp b c a (Ir.Imm 5));
            build (nvals + 1) (i + 1)
          | `Call (f, a) ->
            ignore (Builder.call b f [ a ]);
            build (nvals + 1) (i + 1)
          | `Print a ->
            Builder.call_void b "print_i64" [ a ];
            build nvals (i + 1)
      in
      let* nvals = build 1 0 in
      (* Return the last defined value via a diamond to exercise branches. *)
      let c = Builder.icmp b Machine.Cond.Ge (Ir.V (nvals - 1)) (Ir.Imm 10) in
      Builder.terminate b (Ir.Cond_br (Ir.V c, "big", "small"));
      Builder.start_block b "big";
      let r1 = Builder.binop b Ir.Add (Ir.V (nvals - 1)) (Ir.Imm 1) in
      Builder.terminate b (Ir.Ret (Ir.V r1));
      Builder.start_block b "small";
      let r2 = Builder.binop b Ir.Sub (Ir.V (nvals - 1)) (Ir.Imm 1) in
      Builder.terminate b (Ir.Ret (Ir.V r2));
      return (Builder.finish b)
    in
    let* nfuncs = int_range 1 5 in
    let rec go i acc callable =
      if i >= nfuncs then return (List.rev acc)
      else
        let* f = gen_func i callable in
        go (i + 1) (f :: acc) (f.Ir.name :: callable)
    in
    let* funcs = go 0 [] [] in
    (* main calls every function and folds the results. *)
    let b = Builder.create ~name:"main" ~nparams:0 () in
    let acc0 = Builder.assign b (Ir.Imm 1) in
    let acc =
      List.fold_left
        (fun acc (f : Ir.func) ->
          let r = Builder.call b f.Ir.name [ Ir.V acc ] in
          Builder.binop b Ir.Xor (Ir.V acc) (Ir.V r))
        acc0 funcs
    in
    Builder.call_void b "print_i64" [ Ir.V acc ];
    Builder.terminate b (Ir.Ret (Ir.V acc));
    return { (empty_module "rand") with Ir.funcs = Builder.finish b :: funcs })

let arb_module =
  QCheck.make gen_module ~print:(fun m -> Format.asprintf "%a" Ir.pp_modul m)

let prop_codegen_matches_eval =
  QCheck.Test.make ~count:250 ~name:"codegen matches MIR evaluation" arb_module
    (fun m ->
      match Eval.run ~entry:"main" m with
      | Error e -> QCheck.Test.fail_reportf "eval failed: %s" (Eval.error_to_string e)
      | Ok er -> (
        let prog = Codegen.compile_modul m in
        (match Machine.Program.validate prog with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_reportf "invalid program: %s" e);
        let config = { Perfsim.Interp.default_config with model_perf = false } in
        match Perfsim.Interp.run ~config ~entry:"main" prog with
        | Error e ->
          QCheck.Test.fail_reportf "machine failed: %s"
            (Perfsim.Interp.error_to_string e)
        | Ok mr ->
          er.exit_value = mr.exit_value && er.output = mr.output))

let prop_codegen_seed_matches_eval =
  QCheck.Test.make ~count:100
    ~name:"randomized register pools preserve behaviour (future work 2)" arb_module
    (fun m ->
      match Eval.run ~entry:"main" m with
      | Error e -> QCheck.Test.fail_reportf "eval failed: %s" (Eval.error_to_string e)
      | Ok er -> (
        let prog = Codegen.compile_modul ~regalloc_seed:1234 m in
        (match Machine.Program.validate prog with
        | Ok () -> ()
        | Error e -> QCheck.Test.fail_reportf "invalid program: %s" e);
        let config = { Perfsim.Interp.default_config with model_perf = false } in
        match Perfsim.Interp.run ~config ~entry:"main" prog with
        | Error e ->
          QCheck.Test.fail_reportf "machine failed: %s"
            (Perfsim.Interp.error_to_string e)
        | Ok mr ->
          er.exit_value = mr.exit_value && er.output = mr.output))

let prop_codegen_then_outline_matches_eval =
  QCheck.Test.make ~count:150
    ~name:"codegen + whole-program outlining matches MIR evaluation" arb_module
    (fun m ->
      match Eval.run ~entry:"main" m with
      | Error e -> QCheck.Test.fail_reportf "eval failed: %s" (Eval.error_to_string e)
      | Ok er -> (
        let prog = Codegen.compile_modul m in
        let prog, _ = Outcore.Repeat.run ~rounds:5 prog in
        let config = { Perfsim.Interp.default_config with model_perf = false } in
        match Perfsim.Interp.run ~config ~entry:"main" prog with
        | Error e ->
          QCheck.Test.fail_reportf "outlined machine failed: %s"
            (Perfsim.Interp.error_to_string e)
        | Ok mr ->
          er.exit_value = mr.exit_value && er.output = mr.output))

let () =
  Alcotest.run "mir"
    [
      ( "ir",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "eval sum" `Quick test_eval_sum;
          Alcotest.test_case "eval objects" `Quick test_eval_objects;
        ] );
      ( "out_of_ssa",
        [
          Alcotest.test_case "lowering" `Quick test_out_of_ssa;
          Alcotest.test_case "swap problem" `Quick test_out_of_ssa_swap;
        ] );
      ( "link",
        [
          Alcotest.test_case "flag conflict" `Quick test_link_flag_conflict;
          Alcotest.test_case "data order" `Quick test_link_data_order;
          Alcotest.test_case "data order: object order preserved" `Quick
            test_link_data_order_preserves_object_order;
          Alcotest.test_case "duplicate symbol" `Quick test_link_duplicate_symbol;
        ] );
      ( "merging",
        [
          Alcotest.test_case "merge functions" `Quick test_merge_functions;
          Alcotest.test_case "fmsa" `Quick test_fmsa;
          Alcotest.test_case "dce" `Quick test_dce;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "intervals loop extension" `Quick
            test_intervals_loop_extension;
          Alcotest.test_case "sum loop" `Quick test_codegen_sum;
          Alcotest.test_case "objects" `Quick test_codegen_objects;
          Alcotest.test_case "spills" `Quick test_codegen_spills;
          Alcotest.test_case "values across calls" `Quick test_codegen_calls_across;
          Alcotest.test_case "frame shape" `Quick test_codegen_frame_shape;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_codegen_matches_eval;
            prop_codegen_seed_matches_eval;
            prop_codegen_then_outline_matches_eval;
          ] );
    ]
