(* Tests for the machine outliner: strategies, legality, cost model, greedy
   selection, repeated outlining (the paper's Figure 11), and structural
   integrity of rewritten programs. *)

open Machine

let parse text =
  match Asm_parser.parse_program text with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let validate_ok p =
  match Program.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid program after outlining: " ^ e)

let run ?(rounds = 1) ?options p =
  let p', stats = Outcore.Repeat.run ?options ~rounds p in
  validate_ok p';
  (p', stats)

let count_outlined p =
  List.length (List.filter (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) p.Program.funcs)

(* Three functions share a 6-instruction prefix; blocks end in tail calls so
   LR is dead and the plain-call strategy applies. *)
let framed_func name k =
  Printf.sprintf
    {|
func %s:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #1
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #%d
  ldp fp, lr, [sp], #16
  b ext
|}
    name k

let shared_prefix_prog =
  parse
    ("extern ext\n" ^ framed_func "f1" 101 ^ framed_func "f2" 102
   ^ framed_func "f3" 103)

let test_basic_outlining () =
  let before = Program.code_size_bytes shared_prefix_prog in
  let p', stats = run shared_prefix_prog in
  let after = Program.code_size_bytes p' in
  Alcotest.(check bool) "size shrinks" true (after < before);
  Alcotest.(check int) "one outlined function" 1 (count_outlined p');
  (match stats with
  | [ s ] ->
    Alcotest.(check int) "three sites" 3 s.Outcore.Outliner.sequences_outlined;
    (* 3 sites x 24 bytes inline, 4-byte calls, 28-byte function:
       3*(24-4) - 28 = 32. *)
    Alcotest.(check int) "bytes saved" 32 s.Outcore.Outliner.bytes_saved;
    Alcotest.(check int) "size delta matches stats" (before - after)
      s.Outcore.Outliner.bytes_saved
  | l -> Alcotest.fail (Printf.sprintf "expected 1 round, got %d" (List.length l)))

let test_ret_strategy () =
  (* Identical epilogue + ret in two functions: outlined via a tail branch,
     outlined function keeps the ret. *)
  let p =
    parse
      {|
func g1:
entry:
  mov x0, #7
  mov x1, #8
  mov x2, #9
  ret
func g2:
entry:
  mov x9, #1
  mov x0, #7
  mov x1, #8
  mov x2, #9
  ret
|}
  in
  let p', _ = run p in
  Alcotest.(check int) "one outlined function" 1 (count_outlined p');
  let outlined =
    List.find (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) p'.Program.funcs
  in
  (match (Mfunc.entry outlined).Block.term with
  | Block.Ret -> ()
  | t ->
    Alcotest.fail
      (Format.asprintf "outlined function should end in ret, got %a"
         Block.pp_terminator t));
  (* Both call sites must now be tail branches. *)
  List.iter
    (fun (f : Mfunc.t) ->
      if not f.Mfunc.is_outlined then
        match (Mfunc.entry f).Block.term with
        | Block.Tail_call n ->
          Alcotest.(check string) "tail call target" outlined.Mfunc.name n
        | t ->
          Alcotest.fail
            (Format.asprintf "expected tail call in %s, got %a" f.Mfunc.name
               Block.pp_terminator t))
    p'.Program.funcs

let test_thunk_strategy () =
  (* The paper's Figure 4: a register move followed by a call, repeated.
     The outlined function must tail-call the original callee. *)
  let p =
    parse
      {|
extern swift_release
extern ext
func h1:
entry:
  mov x0, x20
  bl swift_release
  mov x9, #1
  b ext
func h2:
entry:
  mov x0, x20
  bl swift_release
  mov x9, #2
  b ext
func h3:
entry:
  mov x0, x20
  bl swift_release
  mov x9, #3
  b ext
|}
  in
  let p', _ = run p in
  Alcotest.(check int) "one outlined function" 1 (count_outlined p');
  let outlined =
    List.find (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) p'.Program.funcs
  in
  (match (Mfunc.entry outlined).Block.term with
  | Block.Tail_call "swift_release" -> ()
  | t ->
    Alcotest.fail
      (Format.asprintf "thunk should tail-call the callee, got %a"
         Block.pp_terminator t));
  Alcotest.(check int) "thunk body is the prefix" 1
    (Array.length (Mfunc.entry outlined).Block.body)

let test_save_lr_strategy () =
  (* Leaf functions with a live LR and a mid-block repeat: outlining must
     spill LR around the call, and must not happen when the strategy is
     disabled. *)
  let text =
    {|
func k1:
entry:
  mov x1, #1
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #201
  ret
func k2:
entry:
  mov x1, #1
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #202
  ret
func k3:
entry:
  mov x1, #1
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #203
  ret
|}
  in
  let p', _ = run (parse text) in
  Alcotest.(check int) "outlined with save-lr" 1 (count_outlined p');
  let k1 = Option.get (Program.find_func p' "k1") in
  let body = (Mfunc.entry k1).Block.body in
  (match body.(0) with
  | Insn.Str (r, { base = Reg.SP; off = -16; mode = Insn.Pre }) when Reg.equal r Reg.lr -> ()
  | i -> Alcotest.fail ("expected lr spill, got " ^ Insn.to_string i));
  (match body.(2) with
  | Insn.Ldr (r, { base = Reg.SP; off = 16; mode = Insn.Post }) when Reg.equal r Reg.lr -> ()
  | i -> Alcotest.fail ("expected lr reload, got " ^ Insn.to_string i));
  (* Disabling save-lr leaves the program untouched. *)
  let options = { Outcore.Outliner.default_options with allow_save_lr = false } in
  let p2, stats = run ~options (parse text) in
  Alcotest.(check int) "no outlining without save-lr" 0 (count_outlined p2);
  Alcotest.(check int) "no rounds recorded" 0 (List.length stats)

let test_sp_blocks_save_lr () =
  (* A candidate that touches SP cannot use the save-LR strategy, because
     the spill moves SP under the candidate's feet. *)
  let text =
    {|
func s1:
entry:
  ldr x1, [sp, #8]
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #301
  ret
func s2:
entry:
  ldr x1, [sp, #8]
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #302
  ret
func s3:
entry:
  ldr x1, [sp, #8]
  mov x2, #2
  mov x3, #3
  mov x4, #4
  mov x5, #5
  mov x6, #6
  mov x9, #303
  ret
|}
  in
  let p', _ = run (parse text) in
  (* The 6-instruction prefix includes the SP load and LR is live, so the
     prefix is not outlinable; only a shorter LR-free... there is none, so
     nothing may be outlined with an SP-touching body at a live-LR site. *)
  List.iter
    (fun (f : Mfunc.t) ->
      if f.Mfunc.is_outlined then
        List.iter
          (fun (b : Block.t) ->
            Array.iter
              (fun i ->
                if Insn.touches_sp i then
                  Alcotest.fail
                    ("sp-touching insn outlined at live-LR site: "
                   ^ Insn.to_string i))
              b.Block.body)
          f.Mfunc.blocks)
    p'.Program.funcs

let test_lr_insns_never_outlined () =
  (* Prologue/epilogue sequences that save/restore LR must never move into
     an outlined function. *)
  let text =
    {|
extern callee
func p1:
entry:
  stp fp, lr, [sp, #-16]!
  bl callee
  mov x9, #1
  ldp fp, lr, [sp], #16
  ret
func p2:
entry:
  stp fp, lr, [sp, #-16]!
  bl callee
  mov x9, #2
  ldp fp, lr, [sp], #16
  ret
func p3:
entry:
  stp fp, lr, [sp, #-16]!
  bl callee
  mov x9, #3
  ldp fp, lr, [sp], #16
  ret
|}
  in
  let p', _ = run ~rounds:3 (parse text) in
  List.iter
    (fun (f : Mfunc.t) ->
      if f.Mfunc.is_outlined then
        List.iter
          (fun (b : Block.t) ->
            Array.iter
              (fun i ->
                if Insn.touches_lr i && not (Insn.is_call i) then
                  Alcotest.fail ("LR-touching insn outlined: " ^ Insn.to_string i))
              b.Block.body)
          f.Mfunc.blocks)
    p'.Program.funcs

let test_no_outline_attribute () =
  let text =
    {|
extern ext
func n1 no_outline:
entry:
  mov x1, #1
  mov x2, #2
  mov x3, #3
  b ext
func n2 no_outline:
entry:
  mov x1, #1
  mov x2, #2
  mov x3, #3
  b ext
func n3 no_outline:
entry:
  mov x1, #1
  mov x2, #2
  mov x3, #3
  b ext
|}
  in
  let p', _ = run (parse text) in
  Alcotest.(check int) "respects no_outline" 0 (count_outlined p')

(* Figure 11: BCD repeats 8 times, ABCD 5 times.  The greedy choice (BCD)
   blocks ABCD in round one; repeated outlining recovers [A; bl BCD] in
   round two. *)
let fig11_prog () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "extern ext\n";
  let a = "mov x10, #100" in
  let b = "mov x11, #111" in
  let c = "mov x12, #122" in
  let d = "mov x13, #133" in
  let pro = "  stp fp, lr, [sp, #-16]!\n" in
  let epi = "  ldp fp, lr, [sp], #16\n" in
  for i = 1 to 8 do
    Buffer.add_string buf
      (Printf.sprintf "func bcd%d:\nentry:\n%s  mov x9, #%d\n  %s\n  %s\n  %s\n  mov x8, #%d\n%s  b ext\n"
         i pro i b c d (1000 + i) epi)
  done;
  for i = 1 to 5 do
    Buffer.add_string buf
      (Printf.sprintf
         "func abcd%d:\nentry:\n%s  mov x9, #%d\n  %s\n  %s\n  %s\n  %s\n  mov x8, #%d\n%s  b ext\n"
         i pro (100 + i) a b c d (2000 + i) epi)
  done;
  parse (Buffer.contents buf)

let test_fig11_greedy_picks_bcd () =
  let p = fig11_prog () in
  let p1, stats = run ~rounds:1 p in
  (match stats with
  | s :: _ ->
    Alcotest.(check bool) "many sites outlined" true
      (s.Outcore.Outliner.sequences_outlined >= 13)
  | [] -> Alcotest.fail "nothing outlined");
  (* The first outlined function is the greedy (highest-benefit) pick: BCD
     with 13 occurrences, not ABCD. *)
  let outlined =
    List.filter (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) p1.Program.funcs
  in
  let first = List.hd outlined in
  Alcotest.(check int) "greedy body length is 3" 3
    (Array.length (Mfunc.entry first).Block.body)

let test_fig11_repeat_beats_single_round () =
  let p = fig11_prog () in
  let p1, _ = run ~rounds:1 p in
  let p2, stats2 = run ~rounds:5 p in
  Alcotest.(check bool) "at least two effective rounds" true
    (List.length stats2 >= 2);
  Alcotest.(check bool) "repeated outlining is strictly smaller" true
    (Program.code_size_bytes p2 < Program.code_size_bytes p1)

let test_overlapping_occurrences () =
  (* Pattern [m;m] inside [m;m;m;m;m]: self-overlapping occurrences must be
     pruned, and the rewrite must stay well-formed. *)
  let text =
    {|
extern ext
func o1:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #1
  mov x1, #1
  mov x1, #1
  mov x1, #1
  mov x1, #1
  ldp fp, lr, [sp], #16
  b ext
func o2:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #1
  mov x1, #1
  mov x1, #1
  mov x1, #1
  mov x1, #1
  ldp fp, lr, [sp], #16
  b ext
func o3:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #1
  mov x1, #1
  mov x1, #1
  mov x1, #1
  mov x1, #1
  ldp fp, lr, [sp], #16
  b ext
|}
  in
  let p = parse text in
  let before = Program.code_size_bytes p in
  let p', _ = run ~rounds:5 p in
  Alcotest.(check bool) "shrinks" true (Program.code_size_bytes p' < before)

let test_unprofitable_not_outlined () =
  (* A 2-instruction plain pattern occurring twice: 2*(8-4) - 12 < 1, so the
     outliner must leave it alone. *)
  let text =
    {|
extern ext
func u1:
entry:
  mov x1, #1
  mov x2, #2
  mov x9, #501
  b ext
func u2:
entry:
  mov x1, #1
  mov x2, #2
  mov x9, #502
  b ext
|}
  in
  let p', _ = run (parse text) in
  Alcotest.(check int) "not outlined" 0 (count_outlined p')

let test_round_stats_monotonic () =
  let p = fig11_prog () in
  let _, stats = run ~rounds:5 p in
  let cum = Outcore.Repeat.cumulative stats in
  let rec check_mono = function
    | (a : Outcore.Outliner.round_stats) :: (b : Outcore.Outliner.round_stats) :: rest ->
      Alcotest.(check bool) "cumulative sequences non-decreasing" true
        (b.sequences_outlined >= a.sequences_outlined);
      Alcotest.(check bool) "cumulative functions non-decreasing" true
        (b.functions_created >= a.functions_created);
      check_mono (b :: rest)
    | [ _ ] | [] -> ()
  in
  check_mono cum


(* A small executable-program generator (a trimmed copy of the perfsim
   differential generator) for semantics-preservation properties. *)
let gen_exec_like =
  QCheck.Gen.(
    let insn =
      oneof
        [
          map2 (fun d s -> Insn.mov_r (Reg.x d) (Reg.x s)) (int_range 0 5) (int_range 0 5);
          map2 (fun d n -> Insn.mov_i (Reg.x d) n) (int_range 0 5) (int_range 0 9);
          map3
            (fun op d s -> Insn.Binop (op, Reg.x d, Reg.x s, Insn.Rop (Reg.x ((d + s) mod 6))))
            (oneofl Insn.[ Add; Mul; And; Orr; Eor; Sub ])
            (int_range 0 5) (int_range 0 5);
        ]
    in
    map
      (fun insns ->
        let main =
          Mfunc.make ~name:"main"
            [ Block.make ~label:"entry"
                (insns @ [ Insn.mov_r (Reg.x 0) (Reg.x 3) ])
                Block.Ret ]
        in
        Program.make [ main ])
      (list_size (int_range 1 20) insn))

let arb_exec_like =
  QCheck.make gen_exec_like ~print:(fun p -> Format.asprintf "%a" Program.pp p)

(* --- Future-work features ------------------------------------------------ *)

let test_canonicalize () =
  let p =
    parse
      {|
func c1:
entry:
  add x3, x2, x1
  eor x4, x9, x5
  sub x5, x7, x6
  orr x6, xzr, x9
  ret
|}
  in
  let p', n = Outcore.Canonicalize.run p in
  Alcotest.(check int) "two rewrites" 2 n;
  let body = (Mfunc.entry (List.hd p'.Program.funcs)).Block.body in
  (match body.(0) with
  | Insn.Binop (Insn.Add, d, a, Insn.Rop b) ->
    Alcotest.(check bool) "operands ordered" true
      (Reg.equal d (Reg.x 3) && Reg.equal a (Reg.x 1) && Reg.equal b (Reg.x 2))
  | i -> Alcotest.fail ("bad add: " ^ Insn.to_string i));
  (* sub is not commutative and must be untouched. *)
  (match body.(2) with
  | Insn.Binop (Insn.Sub, _, a, Insn.Rop b) ->
    Alcotest.(check bool) "sub untouched" true
      (Reg.equal a (Reg.x 7) && Reg.equal b (Reg.x 6))
  | i -> Alcotest.fail ("bad sub: " ^ Insn.to_string i));
  (* Register moves (ORR xzr idiom = Mov) stay put. *)
  match body.(3) with
  | Insn.Mov (_, _) -> ()
  | i -> Alcotest.fail ("mov rewritten: " ^ Insn.to_string i)

let test_canonicalize_helps_outlining () =
  (* Sequences differing only in commutative operand order unify. *)
  let mk i a b =
    Printf.sprintf
      "func q%d:\nentry:\n  stp fp, lr, [sp, #-16]!\n  add x9, %s, %s\n  eor x10, x9, x11\n  mul x11, x10, x12\n  and x12, x11, x13\n  mov x8, #%d\n  ldp fp, lr, [sp], #16\n  b ext\n"
      i a b (600 + i)
  in
  let text =
    "extern ext\n" ^ mk 1 "x1" "x2" ^ mk 2 "x2" "x1" ^ mk 3 "x1" "x2"
  in
  let p = parse text in
  let plain, _ = Outcore.Repeat.run ~rounds:5 p in
  let canon, _ = Outcore.Repeat.run ~rounds:5 (fst (Outcore.Canonicalize.run p)) in
  Alcotest.(check bool) "canonicalized outlines at least as well" true
    (Program.code_size_bytes canon <= Program.code_size_bytes plain)

let test_layout_pure_permutation () =
  (* hot1 contains the pattern three times, so it is the dominant caller
     and the outlined function must be placed right after it. *)
  let seq = "  mov x11, #111\n  mov x12, #122\n  mov x13, #133\n" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "extern ext\n";
  Buffer.add_string buf
    ("func hot1:\nentry:\n  stp fp, lr, [sp, #-16]!\n" ^ seq ^ "  mov x8, #1\n" ^ seq
   ^ "  mov x8, #2\n" ^ seq ^ "  ldp fp, lr, [sp], #16\n  b ext\n");
  for i = 2 to 6 do
    Buffer.add_string buf
      (Printf.sprintf
         "func cold%d:\nentry:\n  stp fp, lr, [sp, #-16]!\n  mov x9, #%d\n%s  mov x8, #%d\n  ldp fp, lr, [sp], #16\n  b ext\n"
         i i seq (100 + i))
  done;
  let p = parse (Buffer.contents buf) in
  let p5, _ = Outcore.Repeat.run ~rounds:5 p in
  let laid = Outcore.Layout.optimize p5 in
  Alcotest.(check int) "same code size" (Program.code_size_bytes p5)
    (Program.code_size_bytes laid);
  let names prog =
    List.sort String.compare (List.map (fun (f : Mfunc.t) -> f.Mfunc.name) prog.Program.funcs)
  in
  Alcotest.(check (list string)) "same function set" (names p5) (names laid);
  (match Program.validate laid with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The outlined function must sit directly after its dominant caller. *)
  let arr = Array.of_list laid.Program.funcs in
  let pos name =
    let found = ref (-1) in
    Array.iteri (fun i (f : Mfunc.t) -> if f.Mfunc.name = name then found := i) arr;
    !found
  in
  let out_pos = ref (-1) in
  Array.iteri (fun i (f : Mfunc.t) -> if f.Mfunc.is_outlined then out_pos := i) arr;
  Alcotest.(check int) "outlined sits right after hot1" (pos "hot1" + 1) !out_pos

let prop_canonicalize_preserves_semantics =
  QCheck.Test.make ~count:200 ~name:"canonicalization preserves behaviour"
    arb_exec_like (fun p ->
      let interp prog =
        let config = { Perfsim.Interp.default_config with model_perf = false } in
        match Perfsim.Interp.run ~config ~entry:"main" prog with
        | Ok r -> Ok (r.Perfsim.Interp.exit_value, r.Perfsim.Interp.output)
        | Error e -> Error e
      in
      match interp p with
      | Error _ -> QCheck.assume_fail ()
      | Ok before -> (
        let p', _ = Outcore.Canonicalize.run p in
        match interp p' with
        | Error e ->
          QCheck.Test.fail_reportf "canonicalized failed: %s"
            (Perfsim.Interp.error_to_string e)
        | Ok after -> before = after))

(* Analysis / statistics pass ------------------------------------------- *)

let test_analysis_report () =
  let p = fig11_prog () in
  let r = Outcore.Analysis.analyze p in
  Alcotest.(check bool) "has patterns" true (Array.length r.patterns > 0);
  Alcotest.(check int) "rank starts at 1" 1 r.patterns.(0).rank;
  (* Patterns are sorted by frequency. *)
  let ok = ref true in
  Array.iteri
    (fun i s ->
      if i > 0 && s.Outcore.Analysis.frequency > r.patterns.(i - 1).frequency then
        ok := false)
    r.patterns;
  Alcotest.(check bool) "sorted by frequency" true !ok;
  let hist = Outcore.Analysis.length_histogram r in
  Alcotest.(check bool) "histogram non-empty" true (hist <> []);
  let total_hist = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "histogram covers all candidates" r.candidates_total
    total_hist;
  let curve = Outcore.Analysis.cumulative_savings r in
  Alcotest.(check bool) "curve is non-decreasing" true
    (let ok = ref true in
     Array.iteri (fun i (_, v) -> if i > 0 && v < snd curve.(i - 1) then ok := false) curve;
     !ok);
  let need_all = Outcore.Analysis.patterns_needed_for r 1.0 in
  Alcotest.(check int) "all patterns reach 100%" (Array.length r.patterns) need_all

(* Property tests --------------------------------------------------------- *)

let gen_program =
  (* Random programs built from a small pool of instructions, so repeats are
     likely.  Blocks end in ret or a tail call to an extern. *)
  QCheck.Gen.(
    let insn =
      oneof
        [
          map2 (fun d s -> Insn.mov_r (Reg.x d) (Reg.x s)) (int_range 0 5) (int_range 0 5);
          map2 (fun d n -> Insn.mov_i (Reg.x d) n) (int_range 0 5) (int_range 0 3);
          map (fun d -> Insn.Binop (Insn.Add, Reg.x d, Reg.x d, Insn.Imm 1)) (int_range 0 5);
          return (Insn.Bl "ext");
        ]
    in
    let block =
      map2
        (fun insns retish -> (insns, retish))
        (list_size (int_range 0 8) insn)
        bool
    in
    map
      (fun blocks ->
        let funcs =
          List.mapi
            (fun i (insns, retish) ->
              let term = if retish then Block.Ret else Block.Tail_call "ext" in
              Mfunc.make ~name:(Printf.sprintf "f%d" i)
                [ Block.make ~label:"entry" insns term ])
            blocks
        in
        Program.make ~externs:[ "ext" ] funcs)
      (list_size (int_range 1 12) block))

let arb_program =
  QCheck.make gen_program ~print:(fun p -> Format.asprintf "%a" Program.pp p)

let prop_outlined_valid =
  QCheck.Test.make ~count:200 ~name:"outlined programs validate"
    arb_program (fun p ->
      let p', _ = Outcore.Repeat.run ~rounds:5 p in
      match Program.validate p' with Ok () -> true | Error _ -> false)

let prop_size_never_grows =
  QCheck.Test.make ~count:200 ~name:"outlining never grows code"
    arb_program (fun p ->
      let p', _ = Outcore.Repeat.run ~rounds:5 p in
      Program.code_size_bytes p' <= Program.code_size_bytes p)

let prop_fixpoint =
  QCheck.Test.make ~count:100 ~name:"outlining reaches a fixpoint"
    arb_program (fun p ->
      let p', _ = Outcore.Repeat.run ~rounds:10 p in
      let _, stats = Outcore.Repeat.run ~options:{ Outcore.Outliner.default_options with round = 100 } ~rounds:1 p' in
      stats = [])

let test_overlapping_ret_patterns () =
  (* Two ret-ending patterns whose occurrences overlap — the short one is a
     suffix of the long one — so selecting either must consume the shared
     body slots AND the terminator slot of its blocks.  Regression test for
     [site_free]/[site_take] indexing the terminator as slot [n]: with an
     [n]-slot occupancy array, probing a ret-ending site walks one past the
     body and crashes (or, if clamped, lets both patterns claim the same
     terminator). *)
  let tail long =
    let shared = "  mov x3, #3\n  mov x4, #4\n  ret\n" in
    if long then "  mov x1, #1\n  mov x2, #2\n" ^ shared
    else "  mov x9, #9\n" ^ shared
  in
  let p =
    parse
      ("func a1:\nentry:\n" ^ tail true ^ "func a2:\nentry:\n" ^ tail true
     ^ "func a3:\nentry:\n" ^ tail false ^ "func a4:\nentry:\n" ^ tail false)
  in
  (* Candidates: [mov x1; mov x2; mov x3; mov x4; ret] (2 sites, benefit
     2*16-20=12) and [mov x3; mov x4; ret] (4 sites, benefit 4*8-12=20).
     Greedy takes the short one everywhere; the long one's two sites then
     collide with already-consumed slots and it must outline nothing. *)
  let p', stats = run p in
  Alcotest.(check int) "one outlined function" 1 (count_outlined p');
  (match stats with
  | [ s ] ->
    Alcotest.(check int) "four sites" 4 s.Outcore.Outliner.sequences_outlined;
    Alcotest.(check int) "one function" 1 s.Outcore.Outliner.functions_created
  | l -> Alcotest.fail (Printf.sprintf "expected 1 round, got %d" (List.length l)));
  let outlined =
    List.find (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) p'.Program.funcs
  in
  Alcotest.(check int) "outlined body is the two shared movs" 2
    (Array.length (Mfunc.entry outlined).Block.body);
  List.iter
    (fun (f : Mfunc.t) ->
      if not f.Mfunc.is_outlined then
        match (Mfunc.entry f).Block.term with
        | Block.Tail_call n ->
          Alcotest.(check string)
            (f.Mfunc.name ^ " tail-calls the outlined function")
            outlined.Mfunc.name n
        | t ->
          Alcotest.fail
            (Format.asprintf "expected tail call in %s, got %a" f.Mfunc.name
               Block.pp_terminator t))
    p'.Program.funcs

let prop_stats_match_size_delta =
  QCheck.Test.make ~count:100 ~name:"per-round bytes_saved sums to size delta"
    arb_program (fun p ->
      let p', stats = Outcore.Repeat.run ~rounds:5 p in
      let saved = List.fold_left (fun a s -> a + s.Outcore.Outliner.bytes_saved) 0 stats in
      Program.code_size_bytes p - Program.code_size_bytes p' = saved)

let () =
  Alcotest.run "outliner"
    [
      ( "strategies",
        [
          Alcotest.test_case "basic plain-call" `Quick test_basic_outlining;
          Alcotest.test_case "ends-with-ret" `Quick test_ret_strategy;
          Alcotest.test_case "thunk" `Quick test_thunk_strategy;
          Alcotest.test_case "save-lr" `Quick test_save_lr_strategy;
          Alcotest.test_case "sp blocks save-lr" `Quick test_sp_blocks_save_lr;
          Alcotest.test_case "lr insns never outlined" `Quick
            test_lr_insns_never_outlined;
        ] );
      ( "selection",
        [
          Alcotest.test_case "no_outline respected" `Quick test_no_outline_attribute;
          Alcotest.test_case "fig11 greedy picks BCD" `Quick
            test_fig11_greedy_picks_bcd;
          Alcotest.test_case "fig11 repeat beats single round" `Quick
            test_fig11_repeat_beats_single_round;
          Alcotest.test_case "overlapping ret-ending patterns" `Quick
            test_overlapping_ret_patterns;
          Alcotest.test_case "overlapping occurrences" `Quick
            test_overlapping_occurrences;
          Alcotest.test_case "unprofitable untouched" `Quick
            test_unprofitable_not_outlined;
          Alcotest.test_case "cumulative stats monotonic" `Quick
            test_round_stats_monotonic;
        ] );
      ("analysis", [ Alcotest.test_case "report" `Quick test_analysis_report ]);
      ( "future-work",
        [
          Alcotest.test_case "canonicalize rewrites" `Quick test_canonicalize;
          Alcotest.test_case "canonicalize helps outlining" `Quick
            test_canonicalize_helps_outlining;
          Alcotest.test_case "layout is a pure permutation" `Quick
            test_layout_pure_permutation;
          QCheck_alcotest.to_alcotest prop_canonicalize_preserves_semantics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_outlined_valid;
            prop_size_never_grows;
            prop_fixpoint;
            prop_stats_match_size_delta;
          ] );
    ]
