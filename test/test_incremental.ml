(* Tests for the incremental dirty-block outlining engine (the build-time
   fix the paper's §VII calls for): byte-equality with the from-scratch
   reference, whole-app determinism, stale-cache fault detection, and the
   per-phase build profile. *)

open Machine

let ok_exn = function Ok x -> x | Error e -> Alcotest.fail e

let source p = Asm_printer.to_source p

let run_both ?(rounds = 5) p =
  let scratch, _ = Outcore.Repeat.run ~engine:`Scratch ~rounds p in
  let inc, _ = Outcore.Repeat.run ~engine:`Incremental ~rounds p in
  (scratch, inc)

let outlined_names (p : Program.t) =
  List.filter_map
    (fun (f : Mfunc.t) ->
      if f.Mfunc.is_outlined then Some f.Mfunc.name else None)
    p.Program.funcs
  |> List.sort compare

(* The uber_rider workload is built once and shared by the tests below. *)
let rider_mods =
  lazy (ok_exn (Workload.Appgen.generate_modules Workload.Appgen.uber_rider))

let rider_build = lazy (ok_exn (Pipeline.build (Lazy.force rider_mods)))

let test_engines_agree_random () =
  (* Seeded machine programs through both engines at several round counts;
     the dirty-set bookkeeping must never change the output. *)
  for seed = 1 to 12 do
    let p = Fuzz.Machgen.generate (Random.State.make [| seed; 11 |]) ~fuel:8 in
    List.iter
      (fun rounds ->
        let scratch, inc = run_both ~rounds p in
        if source scratch <> source inc then
          Alcotest.failf "engines diverge on seed %d, rounds %d" seed rounds)
      [ 1; 2; 5 ]
  done

let test_engines_agree_uber_rider () =
  let r = Lazy.force rider_build in
  let scratch, inc = run_both r.Pipeline.program in
  Alcotest.(check string)
    "engines byte-identical on an already-outlined rider image"
    (source scratch) (source inc);
  (* And the whole pipeline with the scratch engine matches the default. *)
  let cfg = { Pipeline.default_config with outline_engine = `Scratch } in
  let rs = ok_exn (Pipeline.build ~config:cfg (Lazy.force rider_mods)) in
  Alcotest.(check string) "pipeline output independent of engine"
    (source r.Pipeline.program)
    (source rs.Pipeline.program)

let test_uber_rider_determinism () =
  (* Building the same module list twice must reproduce the image bit for
     bit: same text, same outlined names, same sizes. *)
  let r1 = Lazy.force rider_build in
  let r2 = ok_exn (Pipeline.build (Lazy.force rider_mods)) in
  Alcotest.(check string) "identical program text" (source r1.Pipeline.program)
    (source r2.Pipeline.program);
  Alcotest.(check (list string)) "identical outlined names"
    (outlined_names r1.Pipeline.program)
    (outlined_names r2.Pipeline.program);
  Alcotest.(check int) "identical binary size" r1.Pipeline.binary_size
    r2.Pipeline.binary_size

let test_module_order_determinism () =
  (* Under Module_preserving data order, permuting the module list on the
     command line must not change what gets outlined or how big the image
     is (the §VI determinism requirement). *)
  let r1 = Lazy.force rider_build in
  let cfg = { Pipeline.default_config with data_order = Link.Module_preserving } in
  let r2 = ok_exn (Pipeline.build ~config:cfg (List.rev (Lazy.force rider_mods))) in
  Alcotest.(check (list string)) "same outlined names under permutation"
    (outlined_names r1.Pipeline.program)
    (outlined_names r2.Pipeline.program);
  Alcotest.(check int) "same binary size under permutation"
    r1.Pipeline.binary_size r2.Pipeline.binary_size;
  Alcotest.(check int) "same code size under permutation"
    r1.Pipeline.code_size r2.Pipeline.code_size

let test_stale_cache_fault_detected () =
  (* Suppressing dirty-set invalidation must be observable: the incremental
     engine either produces a different program than the reference or
     crashes on the stale sequence table.  Either way the differential
     catches it — this is the fuzz harness's second self-test fault. *)
  let p = Fuzz.Machgen.generate (Random.State.make [| 1; 11 |]) ~fuel:8 in
  let scratch, _ = Outcore.Repeat.run ~engine:`Scratch ~rounds:5 p in
  Outcore.Outliner.fault_skip_invalidation := true;
  let caught =
    Fun.protect
      ~finally:(fun () -> Outcore.Outliner.fault_skip_invalidation := false)
      (fun () ->
        try
          let faulty, _ = Outcore.Repeat.run ~engine:`Incremental ~rounds:5 p in
          source scratch <> source faulty
        with _ -> true)
  in
  Alcotest.(check bool) "stale caches diverge from the reference" true caught;
  (* The flag reset must restore byte-equality. *)
  let scratch', inc = run_both p in
  Alcotest.(check string) "engines agree again after fault reset"
    (source scratch') (source inc)

let test_profile_phases () =
  let p = Fuzz.Machgen.generate (Random.State.make [| 3; 11 |]) ~fuel:8 in
  let profile = Outcore.Profile.create () in
  let _p', stats = Outcore.Repeat.run ~profile ~rounds:3 p in
  let rounds = Outcore.Profile.rounds profile in
  (* The round that outlines nothing and stops the loop is still executed
     and profiled, so the profile may hold one more record than the stats. *)
  let n_stats = List.length stats and n_rounds = List.length rounds in
  Alcotest.(check bool)
    (Printf.sprintf "profile records every executed round (%d stats, %d profiled)"
       n_stats n_rounds)
    true
    (n_rounds = n_stats || n_rounds = n_stats + 1);
  List.iteri
    (fun i (r : Outcore.Profile.round_profile) ->
      Alcotest.(check int) "rounds recorded in order" (i + 1) r.rp_round;
      let nonneg x = x >= 0.0 in
      Alcotest.(check bool) "phase times are non-negative" true
        (nonneg r.rp_seq_build && nonneg r.rp_tree_build
        && nonneg r.rp_enumerate && nonneg r.rp_score && nonneg r.rp_rewrite))
    rounds;
  Alcotest.(check bool) "totals add up" true
    (Outcore.Profile.total profile
    >= List.fold_left
         (fun a r -> a +. Outcore.Profile.round_total r)
         0.0 rounds
       -. 1e-9);
  Alcotest.(check bool) "json renders an array" true
    (String.length (Outcore.Profile.to_json profile) >= 2
    && (Outcore.Profile.to_json profile).[0] = '[')

let () =
  Alcotest.run "incremental"
    [
      ( "differential",
        [
          Alcotest.test_case "engines agree on random programs" `Quick
            test_engines_agree_random;
          Alcotest.test_case "engines agree on uber_rider" `Slow
            test_engines_agree_uber_rider;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "uber_rider builds reproducibly" `Slow
            test_uber_rider_determinism;
          Alcotest.test_case "module order does not matter" `Slow
            test_module_order_determinism;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "stale dirty set is caught" `Quick
            test_stale_cache_fault_detected;
        ] );
      ( "profile",
        [ Alcotest.test_case "per-phase rounds" `Quick test_profile_phases ] );
    ]
