(* Unit tests for the outlining cost model: per-strategy function sizes,
   per-site call overheads, and the exact break-even boundaries of the
   profitability rule (benefit >= 1 with at least two sites). *)

open Outcore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A pattern of [len] movs with [sites] occurrences, all using the same
   call overhead.  The instruction contents are irrelevant to the model;
   only lengths and site categories enter the arithmetic. *)
let mk ?(strategy = Candidate.Plain_call) ?(needs_lr_frame = false)
    ?(call = Candidate.Call_free) ~len ~sites () =
  {
    Candidate.insns =
      List.init len (fun i -> Machine.Insn.Mov (Machine.Reg.x 1, Imm i));
    length = len;
    strategy;
    sites =
      List.init sites (fun i ->
          {
            Candidate.func = Printf.sprintf "f%d" i;
            block = "entry";
            block_id = i;
            start = 0;
            len;
            with_ret = strategy = Candidate.Ends_with_ret;
            call;
          });
    needs_lr_frame;
    touches_sp = false;
  }

let test_outlined_function_bytes () =
  (* Ends_with_ret keeps the pattern's own ret: no extra instruction. *)
  check_int "ends_with_ret" 20
    (Cost_model.outlined_function_bytes Candidate.Ends_with_ret
       ~needs_lr_frame:false ~pattern_len:5);
  (* Thunk re-issues the trailing call as a tail call: also 4 * len. *)
  check_int "thunk" 20
    (Cost_model.outlined_function_bytes Candidate.Thunk ~needs_lr_frame:false
       ~pattern_len:5);
  (* Plain_call appends a ret. *)
  check_int "plain_call" 24
    (Cost_model.outlined_function_bytes Candidate.Plain_call
       ~needs_lr_frame:false ~pattern_len:5);
  (* An interior call forces an LR spill/reload pair: + 8 bytes. *)
  check_int "plain_call + frame" 32
    (Cost_model.outlined_function_bytes Candidate.Plain_call
       ~needs_lr_frame:true ~pattern_len:5);
  check_int "thunk + frame" 28
    (Cost_model.outlined_function_bytes Candidate.Thunk ~needs_lr_frame:true
       ~pattern_len:5)

let test_site_costs () =
  check_int "direct call" 4 (Candidate.site_cost_bytes Candidate.Call_free);
  check_int "save-LR call" 12 (Candidate.site_cost_bytes Candidate.Call_save_lr);
  check_int "pattern bytes" 28 (Candidate.pattern_bytes (mk ~len:7 ~sites:2 ()))

(* Plain_call, Call_free sites: benefit = n*(4L - 4) - 4(L + 1). *)
let test_benefit_plain_call_free () =
  check_int "L=3 n=2" 0 (Cost_model.benefit (mk ~len:3 ~sites:2 ()));
  check_int "L=4 n=2" 4 (Cost_model.benefit (mk ~len:4 ~sites:2 ()));
  check_int "L=3 n=3" 8 (Cost_model.benefit (mk ~len:3 ~sites:3 ()));
  check_int "L=2 n=2" (-4) (Cost_model.benefit (mk ~len:2 ~sites:2 ()))

let test_break_even_plain_call () =
  (* Two Call_free sites break even at exactly L = 3 (benefit 0, not
     profitable) and turn profitable at L = 4. *)
  check_bool "L=3 n=2 not profitable" false
    (Cost_model.profitable (mk ~len:3 ~sites:2 ()));
  check_bool "L=4 n=2 profitable" true
    (Cost_model.profitable (mk ~len:4 ~sites:2 ()));
  (* Three sites of a 3-long pattern clear the bar. *)
  check_bool "L=3 n=3 profitable" true
    (Cost_model.profitable (mk ~len:3 ~sites:3 ()))

(* Save-LR sites cost 12 bytes each: benefit = n*(4L - 12) - 4(L + 1);
   with two sites the boundary sits at L = 7. *)
let test_break_even_save_lr () =
  let mk = mk ~call:Candidate.Call_save_lr in
  check_int "L=7 n=2" 0 (Cost_model.benefit (mk ~len:7 ~sites:2 ()));
  check_bool "L=7 n=2 not profitable" false
    (Cost_model.profitable (mk ~len:7 ~sites:2 ()));
  check_bool "L=8 n=2 profitable" true
    (Cost_model.profitable (mk ~len:8 ~sites:2 ()));
  (* Mixed overheads: one cheap site pulls the 7-long pattern over the
     line: (28-4) + (28-12) - 32 = 8. *)
  let mixed =
    {
      (mk ~len:7 ~sites:2 ()) with
      Candidate.sites =
        [
          { Candidate.func = "a"; block = "entry"; block_id = 0; start = 0;
            len = 7; with_ret = false; call = Candidate.Call_free };
          { Candidate.func = "b"; block = "entry"; block_id = 1; start = 0;
            len = 7; with_ret = false; call = Candidate.Call_save_lr };
        ];
    }
  in
  check_int "mixed sites" 8 (Cost_model.benefit mixed);
  check_bool "mixed profitable" true (Cost_model.profitable mixed)

(* Ends_with_ret: tail branches (4 bytes/site), body keeps its ret:
   benefit = n*(4L - 4) - 4L; two sites break even at L = 2. *)
let test_break_even_ends_with_ret () =
  let mk = mk ~strategy:Candidate.Ends_with_ret in
  check_int "L=2 n=2" 0 (Cost_model.benefit (mk ~len:2 ~sites:2 ()));
  check_bool "L=2 n=2 not profitable" false
    (Cost_model.profitable (mk ~len:2 ~sites:2 ()));
  check_bool "L=3 n=2 profitable" true
    (Cost_model.profitable (mk ~len:3 ~sites:2 ()))

(* Thunk: same function size as ends-with-ret, ordinary call sites. *)
let test_break_even_thunk () =
  let mk = mk ~strategy:Candidate.Thunk in
  check_int "L=2 n=2" 0 (Cost_model.benefit (mk ~len:2 ~sites:2 ()));
  check_bool "L=3 n=2 profitable" true
    (Cost_model.profitable (mk ~len:3 ~sites:2 ()));
  (* The LR frame eats 8 bytes, pushing the two-site boundary to L = 4. *)
  check_int "L=3 n=2 framed" (-4)
    (Cost_model.benefit (mk ~needs_lr_frame:true ~len:3 ~sites:2 ()));
  check_int "L=4 n=2 framed" 0
    (Cost_model.benefit (mk ~needs_lr_frame:true ~len:4 ~sites:2 ()));
  check_bool "L=4 n=2 framed not profitable" false
    (Cost_model.profitable (mk ~needs_lr_frame:true ~len:4 ~sites:2 ()));
  check_bool "L=5 n=2 framed profitable" true
    (Cost_model.profitable (mk ~needs_lr_frame:true ~len:5 ~sites:2 ()))

let test_single_site_never_profitable () =
  (* A lone occurrence can have positive arithmetic benefit in no case —
     but the rule also demands two sites explicitly. *)
  check_bool "one site" false
    (Cost_model.profitable (mk ~len:50 ~sites:1 ()))

let () =
  Alcotest.run "cost_model"
    [
      ( "cost_model",
        [
          Alcotest.test_case "outlined function bytes" `Quick
            test_outlined_function_bytes;
          Alcotest.test_case "site costs" `Quick test_site_costs;
          Alcotest.test_case "benefit: plain call, free sites" `Quick
            test_benefit_plain_call_free;
          Alcotest.test_case "break-even: plain call" `Quick
            test_break_even_plain_call;
          Alcotest.test_case "break-even: save-LR sites" `Quick
            test_break_even_save_lr;
          Alcotest.test_case "break-even: ends-with-ret" `Quick
            test_break_even_ends_with_ret;
          Alcotest.test_case "break-even: thunk" `Quick test_break_even_thunk;
          Alcotest.test_case "single site never profitable" `Quick
            test_single_site_never_profitable;
        ] );
    ]
