(* Tests for the profile-guided layout subsystem (lib/pgo): profile
   serialization, trace collection determinism, the ordering strategies'
   permutation/hot-cold/differential properties, Linker.link ~order, and
   the caller-affinity anchor chasing they compete against. *)

open Machine

let parse text =
  match Asm_parser.parse_program text with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let run_exn ?config ?args ?order p ~entry =
  match Perfsim.Interp.run ?config ?args ?order ~entry p with
  | Ok r -> r
  | Error e -> Alcotest.fail ("exec error: " ^ Perfsim.Interp.error_to_string e)

(* A small program with a shared helper, a call chain and a never-executed
   function: enough shape for every strategy to disagree with program
   order while agreeing on semantics. *)
let sample_program () =
  parse
    {|
func main:
entry:
  stp fp, lr, [sp, #-16]!
  bl helper
  bl mid
  mov x0, #7
  ldp fp, lr, [sp], #16
  ret
func cold_never:
entry:
  mov x0, #99
  ret
func mid:
entry:
  stp fp, lr, [sp, #-16]!
  bl helper
  bl leaf
  ldp fp, lr, [sp], #16
  ret
func helper:
entry:
  mov x9, #1
  ret
func leaf:
entry:
  mov x10, #2
  ret
|}

let collect_sample () =
  let p = sample_program () in
  (p, Pgo.Collect.collect ~workload:"sample" ~entries:[ "main" ] p)

(* --- Profile serialization ------------------------------------------------ *)

let test_profile_roundtrip () =
  let profile =
    Pgo.Profile.make ~workload:"w" ~entries:[ "main"; "span1" ]
      ~first_touch:[ "main"; "b"; "a" ]
      ~counts:[ ("b", 2); ("main", 1); ("a", 5) ]
      ~edges:[ (("main", "b"), 2); (("b", "a"), 5) ]
      ~blocks:[ (("main", "entry"), 1); (("b", "l1"), 2) ]
      ()
  in
  let s = Pgo.Profile.to_string profile in
  (match Pgo.Profile.of_string s with
  | Ok p' ->
    Alcotest.(check bool) "round-trip equal" true (Pgo.Profile.equal profile p');
    Alcotest.(check string) "canonical re-serialization" s
      (Pgo.Profile.to_string p')
  | Error e -> Alcotest.fail ("of_string: " ^ e));
  Alcotest.(check int) "count a" 5 (Pgo.Profile.count profile "a");
  Alcotest.(check int) "edge b->a" 5
    (Pgo.Profile.edge_weight profile ~caller:"b" ~callee:"a");
  Alcotest.(check bool) "executed" true (Pgo.Profile.executed profile "b");
  Alcotest.(check bool) "not executed" false (Pgo.Profile.executed profile "z")

let test_profile_rejects_garbage () =
  let bad v =
    match Pgo.Profile.of_string v with
    | Ok _ -> Alcotest.fail "accepted malformed profile"
    | Error _ -> ()
  in
  bad "pgo-profile v99\nworkload w\n";
  bad "not-a-profile\n";
  bad "pgo-profile v1\ncount onlyonefield\n";
  bad "pgo-profile v1\nedge a b notanumber\n"

(* --- Collection ----------------------------------------------------------- *)

let test_collect_events () =
  let _, profile = collect_sample () in
  Alcotest.(check (list string))
    "first touch follows execution order"
    [ "main"; "helper"; "mid"; "leaf" ]
    profile.Pgo.Profile.first_touch;
  (* helper entered from both main and mid. *)
  Alcotest.(check int) "helper entries" 2 (Pgo.Profile.count profile "helper");
  Alcotest.(check int) "main->helper" 1
    (Pgo.Profile.edge_weight profile ~caller:"main" ~callee:"helper");
  Alcotest.(check int) "mid->helper" 1
    (Pgo.Profile.edge_weight profile ~caller:"mid" ~callee:"helper");
  Alcotest.(check bool) "cold function untouched" false
    (Pgo.Profile.executed profile "cold_never")

let test_profile_determinism () =
  (* Same program + same workload twice: byte-identical serialization. *)
  let sources =
    Workload.Appgen.generate_sources Workload.Appgen.small
  in
  let res =
    match Pipeline.build_sources sources with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let entries = [ "main"; "span1"; "span2" ] in
  let args_for e = if e = "main" then [] else [ 1 ] in
  let collect () =
    Pgo.Profile.to_string
      (Pgo.Collect.collect ~args_for ~workload:"small" ~entries
         res.Pipeline.program)
  in
  Alcotest.(check string) "byte-identical profiles" (collect ()) (collect ())

(* --- Ordering strategies -------------------------------------------------- *)

let strategies : Pgo.Order.strategy list =
  [ `Order_file; `C3; `Balanced; `Bp_compress 0.5 ]

let test_orders_are_permutations () =
  let p, profile = collect_sample () in
  let names =
    List.sort String.compare
      (List.map (fun (f : Mfunc.t) -> f.Mfunc.name) p.Program.funcs)
  in
  List.iter
    (fun s ->
      let order = Pgo.Order.compute s profile p in
      Alcotest.(check (list string))
        (Pgo.Order.strategy_name s ^ " permutes all functions")
        names
        (List.sort String.compare order))
    strategies

let test_hot_cold_split () =
  let p, profile = collect_sample () in
  List.iter
    (fun s ->
      let order = Pgo.Order.compute s profile p in
      let cold_pos =
        Option.get
          (List.find_index (fun n -> n = "cold_never") order)
      in
      List.iteri
        (fun i n ->
          if Pgo.Profile.executed profile n then
            Alcotest.(check bool)
              (Pgo.Order.strategy_name s ^ ": hot " ^ n ^ " before cold tail")
              true (i < cold_pos))
        order)
    strategies

let test_differential_across_strategies () =
  let p, profile = collect_sample () in
  let reference = run_exn p ~entry:"main" in
  let base_layout = Linker.link p in
  List.iter
    (fun s ->
      let order = Pgo.Order.compute s profile p in
      let r = run_exn ~order p ~entry:"main" in
      Alcotest.(check int)
        (Pgo.Order.strategy_name s ^ " exit value")
        reference.Perfsim.Interp.exit_value r.Perfsim.Interp.exit_value;
      Alcotest.(check (list int))
        (Pgo.Order.strategy_name s ^ " output")
        reference.output r.output;
      let layout = Linker.link ~order p in
      Alcotest.(check int)
        (Pgo.Order.strategy_name s ^ " text size unchanged")
        base_layout.Linker.text_size layout.Linker.text_size)
    strategies

let test_linker_explicit_order () =
  let p = sample_program () in
  let order = [ "leaf"; "main" ] in
  let l = Linker.link ~order p in
  let addr = Linker.address_of l in
  Alcotest.(check int) "leaf placed first" l.Linker.text_base (addr "leaf");
  Alcotest.(check bool) "main second" true (addr "main" > addr "leaf");
  (* Unknown names are ignored; unlisted functions follow in program order. *)
  let l2 = Linker.link ~order:[ "nosuchfunc"; "mid" ] p in
  Alcotest.(check int) "unknown skipped" l2.Linker.text_base
    (Linker.address_of l2 "mid");
  Alcotest.(check int) "text size invariant" l.Linker.text_size
    l2.Linker.text_size

(* --- bp-compress ----------------------------------------------------------- *)

let test_bp_compress_w0_is_balanced () =
  let p, profile = collect_sample () in
  Alcotest.(check (list string))
    "w=0 produces exactly the balanced order (sample)"
    (Pgo.Order.balanced profile p)
    (Pgo.Order.bp_compress ~w:0.0 profile p);
  Alcotest.(check (list string))
    "compute (`Bp_compress 0.) = compute `Balanced"
    (Pgo.Order.compute `Balanced profile p)
    (Pgo.Order.compute (`Bp_compress 0.0) profile p)

let test_bp_compress_w0_is_balanced_app () =
  (* The degeneration must hold on a program big enough for the bisection
     and local search to actually run, not just on toy inputs. *)
  let sources = Workload.Appgen.generate_sources Workload.Appgen.small in
  let res =
    match Pipeline.build_sources sources with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let program = res.Pipeline.program in
  let entries = [ "main"; "span1"; "span2" ] in
  let args_for e = if e = "main" then [] else [ 1 ] in
  let profile =
    Pgo.Collect.collect ~args_for ~workload:"small" ~entries program
  in
  Alcotest.(check (list string))
    "w=0 produces exactly the balanced order (small app)"
    (Pgo.Order.balanced profile program)
    (Pgo.Order.bp_compress ~w:0.0 profile program)

(* --- the compressed-size estimator ----------------------------------------- *)

(* Deterministic pseudo-random content with no internal repeats longer
   than chance: what a function body looks like to the byte model. *)
let lcg_string seed len =
  let b = Buffer.create len in
  let s = ref seed in
  for _ = 1 to len do
    s := ((!s * 1103515245) + 12345) land 0x3fffffff;
    Buffer.add_char b (Char.chr (Char.code 'a' + (!s mod 26)))
  done;
  Buffer.contents b

let compressed ?window s =
  (Linker.Compress.estimate_stream ?window s).Linker.Compress.compressed_bytes

let test_adjacent_beats_interleaved () =
  (* Two distinct bodies, two copies each.  With a window holding one
     body but not two, adjacent clones are back-references and
     interleaved clones are out of reach. *)
  let len = 400 in
  let a = lcg_string 1 len and b = lcg_string 2 len in
  let window = len + (len / 2) in
  let adjacent = a ^ a ^ b ^ b and interleaved = a ^ b ^ a ^ b in
  Alcotest.(check bool)
    "identical adjacent bodies compress strictly better than interleaved"
    true
    (compressed ~window adjacent < compressed ~window interleaved);
  (* Same property through the program-level API: duplicate function
     bodies adjacent vs separated, pure reordering. *)
  let p =
    parse
      {|
func main:
entry:
  mov x0, #1
  add x0, x0, #2
  mul x1, x0, x0
  sub x2, x1, x0
  eor x3, x2, x1
  ret
func clone_a:
entry:
  mov x9, #77
  add x9, x9, #3
  mul x10, x9, x9
  orr x11, x10, x9
  ret
func filler:
entry:
  mov x4, #8
  lsl x5, x4, #2
  asr x6, x5, #1
  and x7, x6, x5
  ret
func clone_b:
entry:
  mov x9, #77
  add x9, x9, #3
  mul x10, x9, x9
  orr x11, x10, x9
  ret
|}
  in
  let body_len =
    String.length
      (Content.render
         (List.find
            (fun (f : Mfunc.t) -> f.Mfunc.name = "clone_a")
            p.Program.funcs))
  in
  let window = body_len + (body_len / 2) in
  let est order =
    (Linker.compress_estimate ~window ~order p)
      .Linker.Compress.compressed_bytes
  in
  Alcotest.(check bool)
    "clones adjacent beat clones separated" true
    (est [ "main"; "clone_a"; "clone_b"; "filler" ]
    < est [ "clone_a"; "main"; "filler"; "clone_b" ])

let test_estimate_monotone_in_window () =
  (* Repeats at several distances: every window step unlocks more of
     them, so the estimate must not grow as the window does. *)
  let x = lcg_string 3 300 in
  let s =
    x ^ lcg_string 4 100 ^ x ^ lcg_string 5 800 ^ x ^ lcg_string 6 2000 ^ x
  in
  let windows = [ 0; 64; 512; 1024; 4096; Linker.Compress.window_default ] in
  let sizes = List.map (fun w -> compressed ~window:w s) windows in
  let rec check_pairs = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "estimate monotone in window size" true (b <= a);
      check_pairs rest
    | _ -> ()
  in
  check_pairs sizes;
  (* The window-0 bound is the pure-literal encoding... *)
  Alcotest.(check int) "window 0 is the literal bound"
    (((String.length s * 9) + 7) / 8)
    (compressed ~window:0 s);
  (* ...and the widest window on this input strictly beats it. *)
  Alcotest.(check bool) "redundancy inside the window pays" true
    (compressed s < compressed ~window:0 s)

(* --- Caller-affinity anchor chasing (the strategy pgo competes with) ------ *)

let test_static_callers_chain () =
  let p =
    parse
      {|
func anchor:
entry:
  stp fp, lr, [sp, #-16]!
  bl out1
  bl out1
  ldp fp, lr, [sp], #16
  ret
func other:
entry:
  stp fp, lr, [sp, #-16]!
  bl out1
  ldp fp, lr, [sp], #16
  ret
func out1:
entry:
  stp fp, lr, [sp, #-16]!
  bl out2
  ldp fp, lr, [sp], #16
  ret
func out2:
entry:
  mov x9, #3
  ret
|}
  in
  let p =
    Program.replace_funcs p
      (List.map
         (fun (f : Mfunc.t) ->
           { f with Mfunc.is_outlined = String.length f.name >= 3
                                        && String.sub f.name 0 3 = "out" })
         p.Program.funcs)
  in
  let callers = Outcore.Layout.static_callers p in
  Alcotest.(check int) "anchor calls out1 twice" 2
    (List.assoc "anchor" (Hashtbl.find callers "out1"));
  Alcotest.(check int) "out1 calls out2 once" 1
    (List.assoc "out1" (Hashtbl.find callers "out2"));
  (* out2's only caller is outlined out1, whose home is anchor: the chain
     must chase through out1 to the concrete anchor. *)
  let opt = Outcore.Layout.optimize p in
  let names = List.map (fun (f : Mfunc.t) -> f.Mfunc.name) opt.Program.funcs in
  let pos n = Option.get (List.find_index (fun x -> x = n) names) in
  Alcotest.(check int) "out1 right after anchor" (pos "anchor" + 1) (pos "out1");
  Alcotest.(check int) "out2 follows the same anchor chain" (pos "out1" + 1)
    (pos "out2");
  Alcotest.(check bool) "non-outlined order preserved" true
    (pos "anchor" < pos "other")

let () =
  Alcotest.run "pgo"
    [
      ( "profile",
        [
          Alcotest.test_case "serialization round-trip" `Quick
            test_profile_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_profile_rejects_garbage;
        ] );
      ( "collect",
        [
          Alcotest.test_case "trace events -> profile" `Quick test_collect_events;
          Alcotest.test_case "deterministic serialized profile" `Slow
            test_profile_determinism;
        ] );
      ( "order",
        [
          Alcotest.test_case "strategies are permutations" `Quick
            test_orders_are_permutations;
          Alcotest.test_case "hot/cold split" `Quick test_hot_cold_split;
          Alcotest.test_case "interp differential across strategies" `Quick
            test_differential_across_strategies;
          Alcotest.test_case "linker explicit order" `Quick
            test_linker_explicit_order;
        ] );
      ( "bp-compress",
        [
          Alcotest.test_case "w=0 degenerates to balanced" `Quick
            test_bp_compress_w0_is_balanced;
          Alcotest.test_case "w=0 degenerates to balanced (small app)" `Slow
            test_bp_compress_w0_is_balanced_app;
        ] );
      ( "compress",
        [
          Alcotest.test_case "adjacent clones beat interleaved" `Quick
            test_adjacent_beats_interleaved;
          Alcotest.test_case "estimate monotone in window" `Quick
            test_estimate_monotone_in_window;
        ] );
      ( "caller-affinity",
        [
          Alcotest.test_case "static_callers + anchor chasing" `Quick
            test_static_callers_chain;
        ] );
    ]
