(* The unified merge layer: policy keys and fingerprints, thunk semantics
   under the evaluator, keep/entry exemptions, hole-budget boundaries, the
   optimistic global merger's cross-module protocol and its worker-count
   determinism, and the interaction with block-granularity layout (thunks
   are never executed by the workload, so stitch must classify them cold). *)

let empty_module name =
  { Ir.m_name = name; funcs = []; globals = []; externs = []; flags = [] }

let eval_exn ?args m ~entry =
  match Eval.run ?args ~entry m with
  | Ok r -> r
  | Error e -> Alcotest.fail ("eval error: " ^ Eval.error_to_string e)

let link_exn mods =
  match
    Link.link ~flag_semantics:Link.Attributes
      ~data_order:Link.Module_preserving ~name:"whole" mods
  with
  | Ok m -> m
  | Error e -> Alcotest.fail ("link error: " ^ Link.error_to_string e)

let pp_modul m = Format.asprintf "%a" Ir.pp_modul m

(* A four-instruction body whose immediate and callee differ per clone:
   exact under [exact_policy], immediate-holed under [fmsa_policy], and a
   three-hole (two immediates + the call target) candidate under
   [global_policy]. *)
let call_func name ~target ~k ~scale =
  let b = Builder.create ~name ~nparams:1 () in
  let p = List.hd (Builder.params b) in
  let x = Builder.binop b Ir.Add (Ir.V p) (Ir.Imm k) in
  let r = Builder.call b target [ Ir.V x ] in
  let s = Builder.binop b Ir.Mul (Ir.V r) (Ir.Imm scale) in
  let t = Builder.binop b Ir.Sub (Ir.V s) (Ir.V p) in
  Builder.terminate b (Ir.Ret (Ir.V t));
  Builder.finish b

let helper name op =
  let b = Builder.create ~name ~nparams:1 () in
  let p = List.hd (Builder.params b) in
  let x = Builder.binop b op (Ir.V p) (Ir.V p) in
  Builder.terminate b (Ir.Ret (Ir.V x));
  Builder.finish b

(* --- keys and fingerprints -------------------------------------------------- *)

let test_fingerprint () =
  let f1 = call_func "f1" ~target:"ha" ~k:5 ~scale:3 in
  let f1' = call_func "renamed" ~target:"ha" ~k:5 ~scale:3 in
  let f2 = call_func "f2" ~target:"hb" ~k:9 ~scale:7 in
  List.iter
    (fun policy ->
      Alcotest.(check bool)
        "fingerprint is deterministic" true
        (Merge.fingerprint ~policy f1 = Merge.fingerprint ~policy f1);
      Alcotest.(check bool)
        "fingerprint ignores the function name" true
        (Merge.fingerprint ~policy f1 = Merge.fingerprint ~policy f1'))
    [ Merge.exact_policy; Merge.fmsa_policy; Merge.global_policy ];
  (* Differing immediates and callees: only the global policy unifies. *)
  Alcotest.(check bool)
    "exact policy distinguishes the clones" false
    (Merge.fingerprint ~policy:Merge.exact_policy f1
    = Merge.fingerprint ~policy:Merge.exact_policy f2);
  Alcotest.(check bool)
    "fmsa policy still sees the callee difference" false
    (Merge.fingerprint ~policy:Merge.fmsa_policy f1
    = Merge.fingerprint ~policy:Merge.fmsa_policy f2);
  Alcotest.(check bool)
    "global policy unifies immediates and callees" true
    (Merge.fingerprint ~policy:Merge.global_policy f1
    = Merge.fingerprint ~policy:Merge.global_policy f2);
  let _, holes = Merge.key ~policy:Merge.global_policy f1 in
  Alcotest.(check int) "two immediates and one target hole" 3
    (List.length holes)

(* --- global merging across modules ------------------------------------------ *)

let two_modules () =
  let ma =
    {
      (empty_module "ma") with
      Ir.funcs =
        [ helper "ha" Ir.Add; call_func "ca" ~target:"ha" ~k:5 ~scale:3 ];
    }
  in
  let mb =
    {
      (empty_module "mb") with
      Ir.funcs =
        [ helper "hb" Ir.Xor; call_func "cb" ~target:"hb" ~k:9 ~scale:7 ];
    }
  in
  (ma, mb)

let test_global_merge_semantics () =
  let ma, mb = two_modules () in
  let merged, stats = Global_merge.run_modules [ ma; mb ] in
  Alcotest.(check int) "one group" 1 stats.Global_merge.groups;
  Alcotest.(check int) "both clones thunked" 2 stats.Global_merge.funcs_merged;
  Alcotest.(check int) "one merged function" 1 stats.Global_merge.merged_created;
  Alcotest.(check int) "nothing rolled back" 0 stats.Global_merge.rolled_back;
  let ma', mb' = (List.nth merged 0, List.nth merged 1) in
  (* Host is the first member's module; the other module calls via extern. *)
  Alcotest.(check bool)
    "merged function hosted in ma" true
    (List.exists
       (fun (f : Ir.func) -> String.length f.Ir.name >= 3
                             && String.sub f.Ir.name 0 3 = "gm_")
       ma'.Ir.funcs);
  Alcotest.(check bool)
    "mb gained an extern for the merged function" true
    (List.exists
       (fun e -> String.length e >= 3 && String.sub e 0 3 = "gm_")
       mb'.Ir.externs);
  List.iter
    (fun m ->
      match Ir.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("merged module invalid: " ^ e))
    merged;
  (* Thunk semantics: the linked merged program computes what the linked
     original did, for every entry and argument. *)
  let whole = link_exn [ ma; mb ] and whole' = link_exn merged in
  List.iter
    (fun (entry, arg) ->
      Alcotest.(check int)
        (Printf.sprintf "%s(%d)" entry arg)
        (eval_exn whole ~entry ~args:[ arg ]).exit_value
        (eval_exn whole' ~entry ~args:[ arg ]).exit_value)
    [ ("ca", 0); ("ca", 11); ("cb", 0); ("cb", 11); ("ha", 4); ("hb", 4) ]

let test_keep_exemption () =
  let ma, mb = two_modules () in
  let keep (f : Ir.func) = f.Ir.name = "ca" in
  let _, stats = Global_merge.run_modules ~keep [ ma; mb ] in
  (* With ca kept, cb's group is a singleton: no merge may happen. *)
  Alcotest.(check int) "no group" 0 stats.Global_merge.groups;
  Alcotest.(check int) "nothing thunked" 0 stats.Global_merge.funcs_merged

let test_hole_budgets () =
  let ma, mb = two_modules () in
  (* call_func has 3 global-policy holes: max_holes=3 merges, 2 refuses. *)
  let _, at3 = Global_merge.run_modules ~max_holes:3 [ ma; mb ] in
  Alcotest.(check int) "max_holes=3 admits the pair" 1 at3.Global_merge.groups;
  let _, at2 = Global_merge.run_modules ~max_holes:2 [ ma; mb ] in
  Alcotest.(check int) "max_holes=2 refuses the pair" 0 at2.Global_merge.groups;
  (* min_instrs above the body size (4 instructions + terminator = 5)
     refuses too, and the boundary value still admits. *)
  let _, at5 = Global_merge.run_modules ~min_instrs:5 [ ma; mb ] in
  Alcotest.(check int) "min_instrs=5 still admits the 5-count bodies" 1
    at5.Global_merge.groups;
  let _, big = Global_merge.run_modules ~min_instrs:6 [ ma; mb ] in
  Alcotest.(check int) "min_instrs=6 refuses the 5-count bodies" 0
    big.Global_merge.groups;
  (* The register budget: params + holes must fit Machine.Reg.max_args.
     Six params + three holes = 9 > 8 is refused; five params + three
     holes = 8 is admitted. *)
  let wide name nparams target k =
    let b = Builder.create ~name ~nparams () in
    let p = List.hd (Builder.params b) in
    let x = Builder.binop b Ir.Add (Ir.V p) (Ir.Imm k) in
    let r = Builder.call b target [ Ir.V x ] in
    let s = Builder.binop b Ir.Mul (Ir.V r) (Ir.Imm k) in
    let t = Builder.binop b Ir.Sub (Ir.V s) (Ir.V p) in
    Builder.terminate b (Ir.Ret (Ir.V t));
    Builder.finish b
  in
  let mods nparams =
    [
      {
        (empty_module "wa") with
        Ir.funcs = [ helper "ha" Ir.Add; wide "wca" nparams "ha" 5 ];
      };
      {
        (empty_module "wb") with
        Ir.funcs = [ helper "hb" Ir.Xor; wide "wcb" nparams "hb" 9 ];
      };
    ]
  in
  let _, over = Global_merge.run_modules (mods 6) in
  Alcotest.(check int) "9 registers refused" 0 over.Global_merge.groups;
  let _, fits = Global_merge.run_modules (mods 5) in
  Alcotest.(check int) "8 registers admitted" 1 fits.Global_merge.groups

let test_worker_determinism () =
  (* Enough clone families spread over several modules to give the
     parallel rounds real work, then: byte-identical output for any
     worker count. *)
  let mods =
    List.init 6 (fun i ->
        {
          (empty_module (Printf.sprintf "m%d" i)) with
          Ir.funcs =
            [
              helper (Printf.sprintf "h%d" i)
                (if i mod 2 = 0 then Ir.Add else Ir.Xor);
              call_func
                (Printf.sprintf "c%d" i)
                ~target:(Printf.sprintf "h%d" i)
                ~k:(3 + i) ~scale:(2 * i + 1);
            ];
        })
  in
  let run w =
    let out, _ = Global_merge.run_modules ~workers:w mods in
    String.concat "\n---\n" (List.map pp_modul out)
  in
  let w1 = run 1 in
  Alcotest.(check string) "workers 2 = workers 1" w1 (run 2);
  Alcotest.(check string) "workers 4 = workers 1" w1 (run 4)

(* --- pipeline-level determinism and stitch interaction ----------------------- *)

let pipeline_modules () =
  let ma, mb = two_modules () in
  let bmain = Builder.create ~name:"main" ~nparams:0 () in
  let r = Builder.call bmain "ca" [ Ir.Imm 7 ] in
  let s = Builder.binop bmain Ir.And (Ir.V r) (Ir.Imm 255) in
  Builder.terminate bmain (Ir.Ret (Ir.V s));
  let mm =
    { (empty_module "mmain") with Ir.funcs = [ Builder.finish bmain ] }
  in
  [ ma; mb; mm ]

let build_exn cfg mods =
  match Pipeline.build ~config:cfg mods with
  | Ok r -> r
  | Error e -> Alcotest.fail ("pipeline build failed: " ^ e)

let test_thin_pipeline_determinism () =
  let mods = pipeline_modules () in
  let cfg w =
    {
      Pipeline.default_config with
      Pipeline.mode = Pipeline.Thin_wpo { workers = w };
      run_global_merge = true;
      outline_rounds = 3;
    }
  in
  let image w =
    Machine.Asm_printer.to_source (build_exn (cfg w) mods).Pipeline.program
  in
  let w1 = image 1 in
  Alcotest.(check string) "thin gmerge workers 2 = 1" w1 (image 2);
  Alcotest.(check string) "thin gmerge workers 4 = 1" w1 (image 4);
  (* And the per-module build agrees with thin (same phased pipeline). *)
  let pm =
    build_exn
      {
        Pipeline.default_config with
        Pipeline.mode = Pipeline.Per_module;
        run_global_merge = true;
        outline_rounds = 3;
      }
      mods
  in
  Alcotest.(check string) "pm gmerge = thin gmerge" w1
    (Machine.Asm_printer.to_source pm.Pipeline.program)

let test_merge_then_stitch () =
  (* Global merging rewrites functions into thunks; the stitch layout then
     rewrites blocks and emits an explicit placement order.  The two must
     compose: the merged function survives into the placed image and the
     program still computes main's answer under the stitched order. *)
  let mods = pipeline_modules () in
  let plain =
    build_exn
      { Pipeline.default_config with Pipeline.mode = Pipeline.Per_module }
      mods
  in
  let cfg =
    {
      Pipeline.default_config with
      Pipeline.mode = Pipeline.Per_module;
      run_global_merge = true;
      outlined_layout = `Stitch;
    }
  in
  let res = build_exn cfg mods in
  Alcotest.(check bool)
    "a merged function exists" true
    (List.exists
       (fun (f : Machine.Mfunc.t) ->
         String.length f.Machine.Mfunc.name >= 3
         && String.sub f.Machine.Mfunc.name 0 3 = "gm_")
       res.Pipeline.program.Machine.Program.funcs);
  let order =
    match res.Pipeline.function_order with
    | Some o -> o
    | None -> Alcotest.fail "stitch produced no order"
  in
  Alcotest.(check bool)
    "merged function placed by the stitch order" true
    (List.exists
       (fun s -> String.length s >= 3 && String.sub s 0 3 = "gm_")
       order);
  let run =
    match
      Perfsim.Interp.run
        ~config:
          { Perfsim.Interp.default_config with model_perf = false }
        ~order ~entry:"main" res.Pipeline.program
    with
    | Ok r -> r
    | Error e ->
      Alcotest.fail
        ("merged+stitched execution failed: "
        ^ Perfsim.Interp.error_to_string e)
  in
  let base =
    match
      Perfsim.Interp.run
        ~config:
          { Perfsim.Interp.default_config with model_perf = false }
        ~entry:"main" plain.Pipeline.program
    with
    | Ok r -> r
    | Error e ->
      Alcotest.fail ("plain execution failed: " ^ Perfsim.Interp.error_to_string e)
  in
  Alcotest.(check int) "merge+stitch preserves main" base.exit_value
    run.exit_value

(* --- refactor exactness (unit-sized spot check) ------------------------------ *)

let test_reference_exactness () =
  let ma, mb = two_modules () in
  let keep (f : Ir.func) = f.Ir.name = "main" in
  List.iter
    (fun m ->
      Alcotest.(check string) "merge-functions matches the frozen pass"
        (pp_modul (fst (Merge_reference.Merge_functions.run ~keep m)))
        (pp_modul (fst (Merge_functions.run ~keep m)));
      Alcotest.(check string) "fmsa matches the frozen pass"
        (pp_modul (fst (Merge_reference.Fmsa.run ~keep m)))
        (pp_modul (fst (Fmsa.run ~keep m))))
    [ ma; mb; link_exn [ ma; mb ] ]

let () =
  Alcotest.run "merge"
    [
      ( "framework",
        [
          Alcotest.test_case "fingerprints" `Quick test_fingerprint;
          Alcotest.test_case "reference exactness" `Quick
            test_reference_exactness;
        ] );
      ( "global",
        [
          Alcotest.test_case "cross-module semantics" `Quick
            test_global_merge_semantics;
          Alcotest.test_case "keep exemption" `Quick test_keep_exemption;
          Alcotest.test_case "hole budgets" `Quick test_hole_budgets;
          Alcotest.test_case "worker determinism" `Quick
            test_worker_determinism;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "thin determinism" `Quick
            test_thin_pipeline_determinism;
          Alcotest.test_case "merge then stitch" `Quick test_merge_then_stitch;
        ] );
    ]
