(* Tests for the generalized suffix tree, including cross-checks against the
   quadratic reference implementation. *)

let check = Alcotest.(check bool)

let occ_list =
  Alcotest.testable
    (fun ppf l ->
      List.iter
        (fun (o : Sufftree.Suffix_tree.occurrence) ->
          Format.fprintf ppf "(%d,%d) " o.seq o.pos)
        l)
    ( = )

let banana = [| 1; 2; 3; 2; 3; 2 |] (* b a n a n a *)

let test_contains () =
  let t = Sufftree.Suffix_tree.build [ banana ] in
  check "ana" true (Sufftree.Suffix_tree.contains t [| 2; 3; 2 |]);
  check "anan" true (Sufftree.Suffix_tree.contains t [| 2; 3; 2; 3 |]);
  check "banana" true (Sufftree.Suffix_tree.contains t banana);
  check "nab" false (Sufftree.Suffix_tree.contains t [| 3; 2; 1 |]);
  check "empty" true (Sufftree.Suffix_tree.contains t [||]);
  check "bananas" false (Sufftree.Suffix_tree.contains t [| 1; 2; 3; 2; 3; 2; 9 |])

let test_leaves () =
  let t = Sufftree.Suffix_tree.build [ banana ] in
  (* 6 symbols + 1 sentinel = 7 suffixes. *)
  Alcotest.(check int) "leaf count" 7 (Sufftree.Suffix_tree.count_leaves t)

let test_repeats_banana () =
  let t = Sufftree.Suffix_tree.build [ banana ] in
  let reps = Sufftree.Suffix_tree.repeats ~min_length:2 t in
  (* Right-maximal repeats of length >= 2 in "banana": "ana" (an occurs only
     as prefix of ana; "na" likewise is right-maximal? na occurs at 2 and 4,
     followed by 'n' and end -> right-maximal). *)
  let syms r =
    match r.Sufftree.Suffix_tree.occs with
    | o :: _ -> Array.to_list (Sufftree.Suffix_tree.substring_at t o r.length)
    | [] -> []
  in
  let sorted = List.sort compare (List.map syms reps) in
  Alcotest.(check (list (list int)))
    "repeats" [ [ 2; 3; 2 ]; [ 3; 2 ] ] sorted

let test_multi_sequence () =
  (* Pattern [5;6] appears once in each of two sequences: the generalized
     tree must find it without gluing sequences together. *)
  let t = Sufftree.Suffix_tree.build [ [| 5; 6; 1 |]; [| 2; 5; 6 |] ] in
  let reps = Sufftree.Suffix_tree.repeats ~min_length:2 t in
  let target =
    List.find_opt
      (fun r ->
        r.Sufftree.Suffix_tree.length = 2
        &&
        match r.occs with
        | o :: _ ->
          Sufftree.Suffix_tree.substring_at t o 2 = [| 5; 6 |]
        | [] -> false)
      reps
  in
  match target with
  | None -> Alcotest.fail "pattern [5;6] not found"
  | Some r ->
    Alcotest.check occ_list "occurrences"
      [ { Sufftree.Suffix_tree.seq = 0; pos = 0 }; { seq = 1; pos = 1 } ]
      r.occs

let test_no_cross_sequence_repeat () =
  (* [1;2] would repeat only if sequences were glued: seq0 ends with 1 and
     seq1 starts with 2. *)
  let t = Sufftree.Suffix_tree.build [ [| 7; 1 |]; [| 2; 8 |] ] in
  let reps = Sufftree.Suffix_tree.repeats ~min_length:2 t in
  Alcotest.(check int) "no repeats" 0 (List.length reps)

let test_negative_rejected () =
  Alcotest.check_raises "negative symbol"
    (Invalid_argument "Suffix_tree.build: negative symbol") (fun () ->
      ignore (Sufftree.Suffix_tree.build [ [| 1; -3 |] ]))

(* Cross-check against the naive reference on random inputs. *)
let normalize_tree_repeats t reps =
  List.map
    (fun (r : Sufftree.Suffix_tree.repeat) ->
      let syms =
        match r.occs with
        | o :: _ -> Array.to_list (Sufftree.Suffix_tree.substring_at t o r.length)
        | [] -> []
      in
      let occs =
        List.sort
          (fun (a : Sufftree.Suffix_tree.occurrence) b ->
            match Int.compare a.seq b.seq with
            | 0 -> Int.compare a.pos b.pos
            | c -> c)
          r.occs
      in
      (syms, occs))
    reps
  |> List.sort compare

let gen_seqs =
  QCheck.Gen.(
    let seq = list_size (int_range 0 24) (int_range 0 3) in
    map (List.map Array.of_list) (list_size (int_range 1 3) seq))

let arb_seqs =
  QCheck.make gen_seqs
    ~print:(fun seqs ->
      String.concat "|"
        (List.map
           (fun s ->
             String.concat ","
               (List.map string_of_int (Array.to_list s)))
           seqs))

let prop_matches_naive =
  QCheck.Test.make ~count:300 ~name:"tree repeats = naive right-maximal repeats"
    arb_seqs (fun seqs ->
      let t = Sufftree.Suffix_tree.build seqs in
      let tree = normalize_tree_repeats t (Sufftree.Suffix_tree.repeats ~min_length:2 t) in
      let naive = Sufftree.Naive.repeats ~min_length:2 seqs in
      tree = naive)

(* Deterministic seeded sweep: 200 random inputs with longer sequences and
   a wider alphabet than the QCheck shrinker-friendly generator explores.
   Any disagreement prints the offending input, which reproduces from the
   fixed seed alone. *)
let test_seeded_matches_naive () =
  let st = Random.State.make [| 0x5eed; 200 |] in
  for i = 1 to 200 do
    let n_seqs = 1 + Random.State.int st 3 in
    let seqs =
      List.init n_seqs (fun _ ->
          Array.init (Random.State.int st 48) (fun _ -> Random.State.int st 7))
    in
    let t = Sufftree.Suffix_tree.build seqs in
    let tree =
      normalize_tree_repeats t (Sufftree.Suffix_tree.repeats ~min_length:2 t)
    in
    let naive = Sufftree.Naive.repeats ~min_length:2 seqs in
    if tree <> naive then
      Alcotest.failf "seeded case %d: tree/naive disagree on %s" i
        (String.concat "|"
           (List.map
              (fun s ->
                String.concat ","
                  (List.map string_of_int (Array.to_list s)))
              seqs))
  done

let prop_contains =
  QCheck.Test.make ~count:300 ~name:"contains agrees with substring scan"
    QCheck.(pair arb_seqs (make QCheck.Gen.(list_size (int_range 1 4) (int_range 0 3))))
    (fun (seqs, needle_l) ->
      let needle = Array.of_list needle_l in
      let t = Sufftree.Suffix_tree.build seqs in
      let naive_contains =
        List.exists
          (fun s ->
            let n = Array.length s and m = Array.length needle in
            let rec at i =
              if i + m > n then false
              else if Array.sub s i m = needle then true
              else at (i + 1)
            in
            at 0)
          seqs
      in
      Sufftree.Suffix_tree.contains t needle = naive_contains)

(* The arena tree must report exactly the classic tree's repeat set,
   including when its buffers come from a reused pool.  Occurrence symbols
   are read back from the input sequences since the arena tree has no
   [substring_at]. *)
let normalize_arena_repeats seqs reps =
  let arr = Array.of_list seqs in
  List.map
    (fun (r : Sufftree.Suffix_tree.repeat) ->
      let syms =
        match r.occs with
        | (o : Sufftree.Suffix_tree.occurrence) :: _ ->
          Array.to_list (Array.sub arr.(o.seq) o.pos r.length)
        | [] -> []
      in
      let occs =
        List.sort
          (fun (a : Sufftree.Suffix_tree.occurrence) b ->
            match Int.compare a.seq b.seq with
            | 0 -> Int.compare a.pos b.pos
            | c -> c)
          r.occs
      in
      (syms, occs))
    reps
  |> List.sort compare

let prop_arena_matches_classic =
  QCheck.Test.make ~count:300 ~name:"arena repeats = classic repeats"
    arb_seqs (fun seqs ->
      let c = Sufftree.Suffix_tree.build seqs in
      let a = Sufftree.Arena_tree.build seqs in
      normalize_arena_repeats seqs (Sufftree.Arena_tree.repeats ~min_length:2 a)
      = normalize_tree_repeats c (Sufftree.Suffix_tree.repeats ~min_length:2 c))

let test_arena_pool_reuse () =
  (* Consecutive builds on one pool with growing and shrinking inputs: a
     recycled (oversized) array that is not fully re-initialized would leak
     the previous tree's state into this one. *)
  let pool = Sufftree.Arena_tree.create_pool () in
  let st = Random.State.make [| 0xa12e; 60 |] in
  for i = 1 to 60 do
    let n_seqs = 1 + Random.State.int st 3 in
    let seqs =
      List.init n_seqs (fun _ ->
          Array.init (Random.State.int st 40) (fun _ -> Random.State.int st 6))
    in
    let a = Sufftree.Arena_tree.build ~pool seqs in
    let c = Sufftree.Suffix_tree.build seqs in
    let got =
      normalize_arena_repeats seqs (Sufftree.Arena_tree.repeats ~min_length:2 a)
    in
    let want =
      normalize_tree_repeats c (Sufftree.Suffix_tree.repeats ~min_length:2 c)
    in
    if got <> want then
      Alcotest.failf "pooled build %d disagrees with the classic tree" i;
    let suffixes =
      List.fold_left (fun acc s -> acc + Array.length s + 1) 0 seqs
    in
    Alcotest.(check int) "leaf count" suffixes
      (Sufftree.Arena_tree.count_leaves a)
  done

let prop_leaf_count =
  QCheck.Test.make ~count:200 ~name:"leaf count = number of suffixes"
    arb_seqs (fun seqs ->
      let t = Sufftree.Suffix_tree.build seqs in
      let expected =
        List.fold_left (fun acc s -> acc + Array.length s + 1) 0 seqs
      in
      Sufftree.Suffix_tree.count_leaves t = expected)

let () =
  Alcotest.run "sufftree"
    [
      ( "suffix_tree",
        [
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "leaf count" `Quick test_leaves;
          Alcotest.test_case "banana repeats" `Quick test_repeats_banana;
          Alcotest.test_case "multi-sequence repeat" `Quick test_multi_sequence;
          Alcotest.test_case "no cross-sequence repeat" `Quick
            test_no_cross_sequence_repeat;
          Alcotest.test_case "negative symbols rejected" `Quick
            test_negative_rejected;
          Alcotest.test_case "seeded 200-array naive agreement" `Quick
            test_seeded_matches_naive;
        ] );
      ( "arena_tree",
        [
          Alcotest.test_case "pooled builds stay correct" `Quick
            test_arena_pool_reuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_naive; prop_contains; prop_leaf_count;
            prop_arena_matches_classic;
          ] );
    ]
