(* The persistent build service: wire-protocol round-trips, framing, the
   LRU result cache, byte-identity of served images against from-scratch
   builds, warm-state isolation between apps sharing function names, and a
   golden-transcript snapshot of a scripted build/edit/rebuild session. *)

let ok_exn = function Ok x -> x | Error e -> Alcotest.fail e

let spec = "dce,outline(rounds=2)"

let cfg_of s =
  ok_exn
    (Pipeline.config_of_passes
       ~base:{ Pipeline.default_config with mode = Pipeline.Whole_program }
       s)

let scratch ?(s = spec) srcs =
  Machine.Asm_printer.to_source
    (ok_exn (Pipeline.build_sources ~config:(cfg_of s) srcs)).Pipeline.program

(* Two tiny apps whose functions share names but not bodies: the warm
   engine keys caches by function name, so serving both through one server
   is exactly the cross-app staleness regression. *)
let app_a =
  [
    ("util", "func helper(v: Int) -> Int {\n  return v * 3 + 1\n}\n");
    ( "main",
      "func main() -> Int {\n\
      \  var acc = 0\n\
      \  acc = acc + helper(7)\n\
      \  acc = acc + helper(9)\n\
      \  return acc & 255\n\
       }\n" );
  ]

let app_b =
  [
    ("util", "func helper(v: Int) -> Int {\n  return v * 5 + 2\n}\n");
    ("main", "func main() -> Int {\n  return helper(3) & 127\n}\n");
  ]

let edit srcs mname snippet =
  List.map
    (fun (m, s) -> if String.equal m mname then (m, s ^ snippet) else (m, s))
    srcs

let build_req ?(id = "r") ?(app = "app") ?(passes = Some spec)
    ?(want_image = true) srcs =
  Serve.Protocol.print_request
    (Serve.Protocol.Build
       {
         br_id = id;
         br_app = app;
         br_mode = "wp";
         br_workers = 0;
         br_passes = passes;
         br_want_image = want_image;
         br_source = Serve.Protocol.Inline srcs;
       })

let serve server req =
  let payload, _ = Serve.Server.handle server req in
  ok_exn (Serve.Protocol.parse_response payload)

let built = function
  | Serve.Protocol.Built b -> b
  | Serve.Protocol.Error_reply { e_message; _ } ->
    Alcotest.failf "error reply: %s" e_message
  | _ -> Alcotest.fail "expected a build reply"

let image (b : Serve.Protocol.built) =
  match b.Serve.Protocol.b_image with
  | Some img -> img
  | None -> Alcotest.fail "reply carries no image"

(* --- protocol ------------------------------------------------------------- *)

let roundtrip_request r =
  let printed = Serve.Protocol.print_request r in
  match Serve.Protocol.parse_request printed with
  | Ok r' when r' = r -> ()
  | Ok _ -> Alcotest.failf "request changed across round-trip:\n%s" printed
  | Error e -> Alcotest.failf "round-trip parse failed (%s):\n%s" e printed

let test_request_roundtrip () =
  List.iter roundtrip_request
    [
      Serve.Protocol.Ping;
      Serve.Protocol.Stats;
      Serve.Protocol.Shutdown;
      Serve.Protocol.Build
        {
          br_id = "b1";
          br_app = "rider";
          br_mode = "thin";
          br_workers = 4;
          br_passes = Some "dce,outline(rounds=5),layout";
          br_want_image = false;
          br_source =
            Serve.Protocol.Seeded
              { sd_profile = "small"; sd_week = 3; sd_mult = 2 };
        };
      (* inline sources are length-prefixed, so newlines, NULs and even a
         line that spells "module ..." must survive *)
      Serve.Protocol.Build
        {
          br_id = "b2";
          br_app = "a";
          br_mode = "wp";
          br_workers = 0;
          br_passes = None;
          br_want_image = true;
          br_source =
            Serve.Protocol.Inline
              [
                ("m1", "func f() -> Int {\n  return 1\n}\n");
                ("m2", "\x00\x01 module fake 999\nnot a real section\n");
              ];
        };
    ]

let roundtrip_response r =
  let printed = Serve.Protocol.print_response r in
  match Serve.Protocol.parse_response printed with
  | Ok r' when r' = r -> ()
  | Ok _ -> Alcotest.failf "response changed across round-trip:\n%s" printed
  | Error e -> Alcotest.failf "round-trip parse failed (%s):\n%s" e printed

let test_response_roundtrip () =
  let sections =
    { Serve.Protocol.sec_text = 900; sec_data = 80; sec_overhead = 20 }
  in
  List.iter roundtrip_response
    [
      Serve.Protocol.Pong;
      Serve.Protocol.Bye;
      Serve.Protocol.Error_reply
        { e_id = "r9"; e_message = "parse error: line 3: what is this" };
      Serve.Protocol.Stats_reply
        {
          c_hits = 3;
          c_misses = 7;
          c_evictions = 1;
          c_entries = 6;
          c_apps = 2;
          c_served = 12;
        };
      Serve.Protocol.Built
        {
          b_id = "r1";
          b_cache_hit = false;
          b_binary_size = 1000;
          b_code_size = 900;
          b_sections = sections;
          b_image_hash = Serve.Protocol.hash_hex "image";
          b_phases = [ ("llvm-link", 0.5); ("machine outliner", 0.25) ];
          b_image = Some "  .text\nx:\n\x00raw bytes\n";
        };
      Serve.Protocol.Built
        {
          b_id = "r2";
          b_cache_hit = true;
          b_binary_size = 1;
          b_code_size = 1;
          b_sections =
            { Serve.Protocol.sec_text = 1; sec_data = 0; sec_overhead = 0 };
          b_image_hash = Serve.Protocol.hash_hex "";
          b_phases = [];
          b_image = None;
        };
    ]

let test_framing () =
  let f = Serve.Protocol.frame "hello" in
  Alcotest.(check string) "frame encoding" "5\nhello" f;
  (match Serve.Protocol.pop_frame (f ^ "4\nrest") with
  | Ok (Some ("hello", rest)) ->
    Alcotest.(check string) "rest preserved" "4\nrest" rest
  | _ -> Alcotest.fail "whole frame not popped");
  (match Serve.Protocol.pop_frame "5\nhel" with
  | Ok None -> ()
  | _ -> Alcotest.fail "partial frame should wait for more bytes");
  (match Serve.Protocol.pop_frame "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "empty buffer should wait for more bytes");
  (match Serve.Protocol.pop_frame (Serve.Protocol.frame "") with
  | Ok (Some ("", "")) -> ()
  | _ -> Alcotest.fail "zero-length payload is a valid frame");
  (match Serve.Protocol.pop_frame "not a length\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed header must be an error");
  match
    Serve.Protocol.pop_frame
      (string_of_int (Serve.Protocol.max_frame + 1) ^ "\n")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized header must be an error"

let test_masked_printing () =
  let b =
    Serve.Protocol.Built
      {
        b_id = "r1";
        b_cache_hit = false;
        b_binary_size = 10;
        b_code_size = 9;
        b_sections =
          { Serve.Protocol.sec_text = 9; sec_data = 1; sec_overhead = 0 };
        b_image_hash = Serve.Protocol.hash_hex "img";
        b_phases = [ ("llc", 0.123456) ];
        b_image = Some "0123456789";
      }
  in
  let masked = Serve.Protocol.print_response_masked b in
  if
    String.length masked
    >= String.length (Serve.Protocol.print_response b)
  then Alcotest.fail "masking should elide the image bytes";
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  if not (contains "phase llc *" masked) then
    Alcotest.failf "phase seconds not masked:\n%s" masked;
  if not (contains "[10 bytes elided]" masked) then
    Alcotest.failf "image bytes not elided:\n%s" masked;
  if contains "0123456789" masked then
    Alcotest.fail "image bytes leaked through the mask";
  Alcotest.(check string)
    "masking is the identity on control replies"
    (Serve.Protocol.print_response Serve.Protocol.Pong)
    (Serve.Protocol.print_response_masked Serve.Protocol.Pong)

(* --- server robustness ----------------------------------------------------- *)

let test_malformed_requests () =
  let server = Serve.Server.create () in
  List.iter
    (fun junk ->
      match Serve.Server.handle server junk with
      | payload, `Continue -> (
        match Serve.Protocol.parse_response payload with
        | Ok (Serve.Protocol.Error_reply _) -> ()
        | _ ->
          Alcotest.failf "junk %S should earn an error reply, got:\n%s" junk
            payload)
      | _, `Stop -> Alcotest.failf "junk %S stopped the server" junk)
    [
      "";
      "bogus verb";
      "build r1";
      "build r1\napp: a\nmode: warp9\nworkers: 0\nwant-image: no";
      "build r1\napp: a\nmode: wp\nworkers: 0\nwant-image: no\n\
       module m 999999\ntruncated";
    ];
  (* the server must still be alive and serving *)
  (match serve server (Serve.Protocol.print_request Serve.Protocol.Ping) with
  | Serve.Protocol.Pong -> ()
  | _ -> Alcotest.fail "server did not answer ping after malformed input");
  (* a build whose source fails to compile is an error reply, not a crash *)
  (match serve server (build_req [ ("m", "func broken( {") ]) with
  | Serve.Protocol.Error_reply { e_id; _ } ->
    Alcotest.(check string) "error echoes the request id" "r" e_id
  | _ -> Alcotest.fail "uncompilable source should earn an error reply");
  match Serve.Server.handle server
          (Serve.Protocol.print_request Serve.Protocol.Shutdown)
  with
  | payload, `Stop -> (
    match Serve.Protocol.parse_response payload with
    | Ok Serve.Protocol.Bye -> ()
    | _ -> Alcotest.fail "shutdown should reply bye")
  | _, `Continue -> Alcotest.fail "shutdown should stop the loop"

(* --- result cache ---------------------------------------------------------- *)

let test_cache_key_determinism () =
  let server = Serve.Server.create () in
  let r1 = built (serve server (build_req ~id:"r1" app_a)) in
  Alcotest.(check bool) "first build misses" false r1.b_cache_hit;
  Alcotest.(check string) "miss is byte-identical to scratch" (scratch app_a)
    (image r1);
  let r2 = built (serve server (build_req ~id:"r2" app_a)) in
  Alcotest.(check bool) "identical build hits" true r2.b_cache_hit;
  Alcotest.(check string) "hit serves the same bytes" (image r1) (image r2);
  Alcotest.(check string) "hit and miss agree on the hash" r1.b_image_hash
    r2.b_image_hash;
  (* module order is part of the key: link order changes the image *)
  let r3 = built (serve server (build_req ~id:"r3" (List.rev app_a))) in
  Alcotest.(check bool) "permuted module order misses" false r3.b_cache_hit;
  (* a different spec is a different key even for identical sources *)
  let r4 =
    built
      (serve server (build_req ~id:"r4" ~passes:(Some "outline(rounds=1)") app_a))
  in
  Alcotest.(check bool) "changed spec misses" false r4.b_cache_hit;
  Alcotest.(check string) "changed spec rebuilds from scratch semantics"
    (scratch ~s:"outline(rounds=1)" app_a)
    (image r4);
  match serve server (Serve.Protocol.print_request Serve.Protocol.Stats) with
  | Serve.Protocol.Stats_reply c ->
    Alcotest.(check int) "hits" 1 c.c_hits;
    Alcotest.(check int) "misses" 3 c.c_misses;
    Alcotest.(check int) "entries" 3 c.c_entries;
    Alcotest.(check int) "apps" 1 c.c_apps;
    Alcotest.(check int) "served" 5 c.c_served
  | _ -> Alcotest.fail "expected stats"

let test_lru_eviction_order () =
  let c = Serve.Cache.create ~capacity:2 in
  Serve.Cache.add c "k1" 1;
  Serve.Cache.add c "k2" 2;
  Alcotest.(check (option int)) "k1 present" (Some 1) (Serve.Cache.find c "k1");
  Serve.Cache.add c "k3" 3;
  (* k2 is now least recently used: the k1 hit refreshed k1 *)
  Alcotest.(check (option int)) "k2 evicted" None (Serve.Cache.find c "k2");
  Alcotest.(check (option int)) "k1 survives" (Some 1)
    (Serve.Cache.find c "k1");
  Alcotest.(check (option int)) "k3 survives" (Some 3)
    (Serve.Cache.find c "k3");
  Alcotest.(check (list string))
    "most-recent-first order" [ "k3"; "k1" ]
    (Serve.Cache.keys_by_recency c);
  Alcotest.(check int) "hits" 3 (Serve.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Serve.Cache.misses c);
  Alcotest.(check int) "evictions" 1 (Serve.Cache.evictions c);
  Alcotest.(check int) "entries" 2 (Serve.Cache.entries c);
  (* refreshing an existing key must not evict anyone *)
  Serve.Cache.add c "k1" 11;
  Alcotest.(check int) "refresh evicts nothing" 1 (Serve.Cache.evictions c);
  Alcotest.(check (option int)) "refresh replaces the value" (Some 11)
    (Serve.Cache.find c "k1");
  (* capacity 0 disables caching entirely *)
  let z = Serve.Cache.create ~capacity:0 in
  Serve.Cache.add z "k" 1;
  Alcotest.(check (option int)) "disabled cache never stores" None
    (Serve.Cache.find z "k");
  Alcotest.(check int) "disabled cache stays empty" 0 (Serve.Cache.entries z)

let test_eviction_through_server () =
  (* capacity 1: the second distinct build evicts the first, so repeating
     the first misses again — and still serves scratch-identical bytes *)
  let server = Serve.Server.create ~cache_capacity:1 () in
  let edited = edit app_a "util" "\nfunc extra(v: Int) -> Int {\n  return v + 40\n}\n" in
  let r1 = built (serve server (build_req ~id:"r1" app_a)) in
  let _r2 = built (serve server (build_req ~id:"r2" edited)) in
  let r3 = built (serve server (build_req ~id:"r3" app_a)) in
  Alcotest.(check bool) "evicted entry misses again" false r3.b_cache_hit;
  Alcotest.(check string) "re-built bytes identical" (image r1) (image r3);
  Alcotest.(check string) "and identical to scratch" (scratch app_a) (image r3)

(* --- warm state correctness ------------------------------------------------ *)

let test_cross_app_isolation () =
  (* the PR-6 regression: two apps with name-identical functions alternate
     through one warm server; every served image must equal a from-scratch
     build of that request *)
  let server = Serve.Server.create () in
  let a1 = edit app_a "main" "\nfunc spare(v: Int) -> Int {\n  return v - 1\n}\n" in
  let b1 = edit app_b "util" "\nfunc spare(v: Int) -> Int {\n  return v + 1\n}\n" in
  List.iteri
    (fun i (app, srcs) ->
      let r =
        built (serve server (build_req ~id:(Printf.sprintf "x%d" i) ~app srcs))
      in
      Alcotest.(check string)
        (Printf.sprintf "request %d (%s) identical to scratch" i app)
        (scratch srcs) (image r))
    [
      ("alpha", app_a); ("beta", app_b); ("alpha", a1); ("beta", b1);
      ("alpha", app_a); ("beta", app_b);
    ]

let test_same_app_full_swap () =
  (* swapping an app's entire source set under one app label must fully
     invalidate its warm front-end and engine state *)
  let server = Serve.Server.create () in
  let r1 = built (serve server (build_req ~id:"s1" ~app:"swap" app_a)) in
  Alcotest.(check string) "before swap" (scratch app_a) (image r1);
  let r2 = built (serve server (build_req ~id:"s2" ~app:"swap" app_b)) in
  Alcotest.(check string) "after swap" (scratch app_b) (image r2);
  let r3 = built (serve server (build_req ~id:"s3" ~app:"swap" app_a)) in
  Alcotest.(check bool) "swap back hits the result cache" true r3.b_cache_hit;
  Alcotest.(check string) "swap back" (scratch app_a) (image r3)

let test_engine_begin_build_unit () =
  (* Outliner-level contract: one engine carried across builds of different
     programs (engine_begin_build between them) stays byte-identical to the
     from-scratch reference *)
  let p1 = Fuzz.Machgen.generate (Random.State.make [| 5; 11 |]) ~fuel:8 in
  let p2 = Fuzz.Machgen.generate (Random.State.make [| 6; 11 |]) ~fuel:8 in
  let e = Outcore.Outliner.create_engine () in
  let warm ~changed p =
    Outcore.Outliner.engine_begin_build e ~changed p;
    Machine.Asm_printer.to_source
      (fst (Outcore.Repeat.run ~use_engine:e ~rounds:3 p))
  in
  let cold p =
    Machine.Asm_printer.to_source
      (fst (Outcore.Repeat.run ~engine:`Scratch ~rounds:3 p))
  in
  let all_changed _ = true and none_changed _ = false in
  Alcotest.(check string) "first build" (cold p1) (warm ~changed:all_changed p1);
  Alcotest.(check string) "clean rebuild reuses warm state" (cold p1)
    (warm ~changed:none_changed p1);
  Alcotest.(check string) "different program, all modules changed" (cold p2)
    (warm ~changed:all_changed p2);
  Alcotest.(check string) "back to the first program" (cold p1)
    (warm ~changed:all_changed p1)

let test_batch_matches_serial () =
  let mask payload =
    Serve.Protocol.print_response_masked
      (ok_exn (Serve.Protocol.parse_response payload))
  in
  let reqs =
    [
      build_req ~id:"q1" ~app:"alpha" app_a;
      Serve.Protocol.print_request Serve.Protocol.Ping;
      build_req ~id:"q2" ~app:"beta" app_b;
      build_req ~id:"q3" ~app:"alpha" app_a;
      "complete junk";
    ]
  in
  let batch_server = Serve.Server.create () in
  let batched, _ = Serve.Server.handle_batch batch_server reqs in
  let serial_server = Serve.Server.create () in
  let serial =
    List.map (fun r -> fst (Serve.Server.handle serial_server r)) reqs
  in
  Alcotest.(check int) "one response per request" (List.length reqs)
    (List.length batched);
  List.iteri
    (fun i (b, s) ->
      Alcotest.(check string)
        (Printf.sprintf "response %d matches serial serving" i)
        (mask s) (mask b))
    (List.combine batched serial)

(* --- golden transcript ----------------------------------------------------- *)

let transcript_steps server =
  let edited =
    edit app_a "util" "\nfunc patch(v: Int) -> Int {\n  return v ^ 12\n}\n"
  in
  List.map
    (fun (label, req) ->
      let payload, _ = Serve.Server.handle server req in
      Printf.sprintf "== %s\n%s" label
        (Serve.Protocol.print_response_masked
           (ok_exn (Serve.Protocol.parse_response payload))))
    [
      ("build", build_req ~id:"r1" ~app:"demo" app_a);
      ("rebuild unchanged", build_req ~id:"r2" ~app:"demo" app_a);
      ("edit util, rebuild", build_req ~id:"r3" ~app:"demo" edited);
      ( "change spec, rebuild",
        build_req ~id:"r4" ~app:"demo" ~passes:(Some "outline(rounds=1)")
          edited );
      ( "repeat the spec change",
        build_req ~id:"r5" ~app:"demo" ~passes:(Some "outline(rounds=1)")
          edited );
      ("stats", Serve.Protocol.print_request Serve.Protocol.Stats);
      ("malformed request", "this is not a request");
      ("ping", Serve.Protocol.print_request Serve.Protocol.Ping);
    ]

let test_snapshot_transcript () =
  let server = Serve.Server.create () in
  let actual = String.concat "\n" (transcript_steps server) ^ "\n" in
  let golden_path = "golden/serve_transcript.golden" in
  (* SERVE_GOLDEN_WRITE=/abs/path regenerates the golden after an intended
     change; check the diff in *)
  match Sys.getenv_opt "SERVE_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc actual;
    close_out oc
  | None ->
  let golden =
    let ic = open_in_bin golden_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if not (String.equal actual golden) then
    Alcotest.failf
      "transcript drifted from %s.\n--- expected ---\n%s--- actual ---\n%s"
      golden_path golden actual

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "framing" `Quick test_framing;
          Alcotest.test_case "masked printing" `Quick test_masked_printing;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "malformed requests get error replies" `Quick
            test_malformed_requests;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key determinism" `Quick
            test_cache_key_determinism;
          Alcotest.test_case "lru eviction order" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "eviction through the server" `Quick
            test_eviction_through_server;
        ] );
      ( "warm state",
        [
          Alcotest.test_case "cross-app isolation" `Quick
            test_cross_app_isolation;
          Alcotest.test_case "same-app full swap" `Quick
            test_same_app_full_swap;
          Alcotest.test_case "engine_begin_build at the outliner level" `Quick
            test_engine_begin_build_unit;
          Alcotest.test_case "batch matches serial" `Quick
            test_batch_matches_serial;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "golden transcript" `Quick
            test_snapshot_transcript;
        ] );
    ]
