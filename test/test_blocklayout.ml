(* Block-granularity placement (lib/blocklayout): hot/cold splitting,
   branch elision/materialization, the split-then-link byte-semantics
   differential, symbolization inside a cold split, and stitch-order
   determinism across thin-WPO worker counts. *)

open Machine

let ok_exn = function Ok x -> x | Error e -> Alcotest.fail e

let parse text =
  match Asm_parser.parse_program text with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let run_exn ?config ?order p ~entry =
  match Perfsim.Interp.run ?config ?order ~entry p with
  | Ok r -> r
  | Error e -> Alcotest.fail ("exec error: " ^ Perfsim.Interp.error_to_string e)

let find_func (p : Program.t) name =
  List.find (fun (f : Mfunc.t) -> f.name = name) p.funcs

let find_block (f : Mfunc.t) label =
  List.find (fun (b : Block.t) -> b.label = label) f.blocks

(* main takes the hot path of a conditional (work(5) = 8, nonzero), so
   [coldpath] never executes; the pre-split source already carries an
   elided fallthrough (hotpath -> join) that the arrangement keeps
   adjacent.  The never-called [frozen] exercises whole-function
   tail placement. *)
let sample_src =
  {|
extern print_i64
func main:
entry:
  stp fp, lr, [sp, #-16]!
  mov x0, #5
  bl work
  cbz x0, coldpath, hotpath
coldpath:
  mov x0, #99
  bl print_i64
  b join
hotpath:
  bl print_i64
  fall join
join:
  ldp fp, lr, [sp], #16
  mov x0, #0
  ret
func work:
entry:
  add x0, x0, #3
  ret
func frozen:
entry:
  mov x0, #1
  ret
|}

let split_sample () =
  let p = parse sample_src in
  let profile = Pgo.Collect.collect ~workload:"t" ~entries:[ "main" ] p in
  Alcotest.(check bool) "profile carries block counts" true
    (Pgo.Profile.has_block_counts profile);
  (p, profile, Blocklayout.split_program ~profile p)

(* --- splitting and terminator rewrites -------------------------------------- *)

let test_split_classification () =
  let _, profile, split = split_sample () in
  Alcotest.(check int) "coldpath never executed" 0
    (Pgo.Profile.block_count profile ~func:"main" ~label:"coldpath");
  Alcotest.(check bool) "hotpath executed" true
    (Pgo.Profile.block_count profile ~func:"main" ~label:"hotpath" > 0);
  let main = find_func split "main" in
  Alcotest.(check (option string)) "main split at coldpath"
    (Some "coldpath") main.Mfunc.cold_from;
  let hot, cold = Mfunc.partition main in
  Alcotest.(check (list string)) "hot chain"
    [ "entry"; "hotpath"; "join" ]
    (List.map (fun (b : Block.t) -> b.label) hot);
  Alcotest.(check (list string)) "cold chain" [ "coldpath" ]
    (List.map (fun (b : Block.t) -> b.label) cold);
  (* [frozen] never executed: left whole, sent to the tail by the order. *)
  Alcotest.(check bool) "frozen not split" false
    (Mfunc.is_split (find_func split "frozen"));
  match Program.validate split with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("split program invalid: " ^ e)

let test_materialization () =
  let _, _, split = split_sample () in
  let main = find_func split "main" in
  (* coldpath's branch to the hot [join] crosses the section boundary:
     it must stay a real branch. *)
  (match (find_block main "coldpath").term with
  | Block.B "join" -> ()
  | t ->
    Alcotest.failf "coldpath terminator: expected b join, got %s"
      (Format.asprintf "%a" Block.pp_terminator t));
  (* hotpath -> join stays adjacent in the hot chain: the source's
     fallthrough survives (and costs 0 bytes). *)
  (match (find_block main "hotpath").term with
  | Block.Fallthrough "join" -> ()
  | t ->
    Alcotest.failf "hotpath terminator: expected fall join, got %s"
      (Format.asprintf "%a" Block.pp_terminator t));
  (* The reverse direction: force [join] cold too, separating the
     hotpath -> join fallthrough; the splitter must materialize it. *)
  let p = parse sample_src in
  let f = find_func p "main" in
  let f' =
    Blocklayout.split_func
      ~cold:(fun l -> l = "coldpath" || l = "join")
      f
  in
  (match (find_block f' "hotpath").term with
  | Block.B "join" -> ()
  | t ->
    Alcotest.failf
      "separated fallthrough not materialized: expected b join, got %s"
      (Format.asprintf "%a" Block.pp_terminator t));
  (* coldpath -> join is now same-section and adjacent: elided. *)
  match (find_block f' "coldpath").term with
  | Block.Fallthrough "join" -> ()
  | t ->
    Alcotest.failf "adjacent cold branch not elided: got %s"
      (Format.asprintf "%a" Block.pp_terminator t)

let test_static_fallback () =
  let p =
    parse
      {|
extern swift_bounds_fail
func f:
entry:
  cbz x0, trap, ok
trap:
  bl swift_bounds_fail
  b ok
ok:
  ret
|}
  in
  let f = find_func p "f" in
  (* No block counts: the trap-seeded static heuristic applies. *)
  let cold = Blocklayout.classify f in
  Alcotest.(check bool) "trap block cold" true (cold "trap");
  Alcotest.(check bool) "entry never cold" false (cold "entry");
  Alcotest.(check bool) "ok reachable from entry, hot" false (cold "ok");
  let f' = Blocklayout.split_func ~cold f in
  Alcotest.(check (option string)) "split at trap" (Some "trap")
    f'.Mfunc.cold_from

(* --- the split-then-link byte-semantics differential ------------------------- *)

let test_differential () =
  let p, profile, split = split_sample () in
  let base = run_exn p ~entry:"main" in
  let order = Blocklayout.stitch_order ~profile split in
  let r = run_exn ~order split ~entry:"main" in
  Alcotest.(check int) "exit value" base.Perfsim.Interp.exit_value
    r.Perfsim.Interp.exit_value;
  Alcotest.(check (list int)) "output" base.Perfsim.Interp.output
    r.Perfsim.Interp.output;
  Alcotest.(check bool) "split never grows the code" true
    (Program.code_size_bytes split <= Program.code_size_bytes p);
  (* The order lists every hot chain plus the cold chain of each split
     function; the cold chains come last. *)
  Alcotest.(check bool) "order places main.cold" true
    (List.mem (Linker.cold_symbol "main") order);
  match List.rev order with
  | last :: _ ->
    Alcotest.(check string) "cold chains at the tail"
      (Linker.cold_symbol "main") last
  | [] -> Alcotest.fail "empty stitch order"

let test_link_and_symbolize () =
  let _, profile, split = split_sample () in
  let order = Blocklayout.stitch_order ~profile split in
  let layout = Linker.link ~order split in
  Alcotest.(check bool) "hot text strictly smaller than text" true
    (layout.Linker.hot_text_size < layout.Linker.text_size);
  let cold_addr = Linker.address_of layout (Linker.cold_symbol "main") in
  let hot_end =
    (* cold region starts after every hot chain *)
    Linker.address_of layout "main"
  in
  Alcotest.(check bool) "cold chain placed after hot main" true
    (cold_addr > hot_end);
  (* symbolize an address inside the cold split: nearest Text symbol is
     the .cold one, not the function's hot entry. *)
  (match Linker.symbolize layout (cold_addr + 4) with
  | Some s -> Alcotest.(check string) "inside main.cold" "main.cold+0x4" s
  | None -> Alcotest.fail "cold address did not symbolize");
  match Linker.symbolize layout (Linker.address_of layout "main") with
  | Some s -> Alcotest.(check string) "hot entry" "main+0x0" s
  | None -> Alcotest.fail "hot address did not symbolize"

(* --- determinism across worker counts ---------------------------------------- *)

let test_worker_determinism () =
  let srcs = Workload.Appgen.generate_sources Workload.Appgen.small in
  let build workers =
    ok_exn
      (Pipeline.build_sources
         ~config:
           {
             Pipeline.default_config with
             mode = Pipeline.Thin_wpo { workers };
             outlined_layout = `Stitch;
           }
         srcs)
  in
  let r1 = build 1 in
  let r2 = build 2 in
  let r4 = build 4 in
  let src r = Asm_printer.to_source r.Pipeline.program in
  Alcotest.(check string) "split program identical w1/w2" (src r1) (src r2);
  Alcotest.(check string) "split program identical w1/w4" (src r1) (src r4);
  Alcotest.(check bool) "stitch order present" true
    (r1.Pipeline.function_order <> None);
  Alcotest.(check bool) "stitch order identical across workers" true
    (r1.Pipeline.function_order = r2.Pipeline.function_order
    && r1.Pipeline.function_order = r4.Pipeline.function_order);
  Alcotest.(check bool) "some function was split" true
    (List.exists Mfunc.is_split r1.Pipeline.program.Program.funcs)

let () =
  Alcotest.run "blocklayout"
    [
      ( "split",
        [
          Alcotest.test_case "profile classification and chains" `Quick
            test_split_classification;
          Alcotest.test_case "materialization and elision" `Quick
            test_materialization;
          Alcotest.test_case "static trap-seeded fallback" `Quick
            test_static_fallback;
        ] );
      ( "differential",
        [
          Alcotest.test_case "split-then-link byte semantics" `Quick
            test_differential;
          Alcotest.test_case "link and symbolize cold split" `Quick
            test_link_and_symbolize;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical across worker counts" `Slow
            test_worker_determinism;
        ] );
    ]
