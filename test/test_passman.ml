(* The unified pass manager: spec grammar, registry completeness,
   --verify-each, and opt-bisect fault localization. *)

let ok_exn = function Ok x -> x | Error e -> failwith e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- spec parse/print ------------------------------------------------------ *)

let test_parse_print () =
  let canon s = Passman.print (ok_exn (Passman.parse s)) in
  Alcotest.(check string) "canonical form is stable"
    "dce,sil-outline(min=8),outline(rounds=5)"
    (canon "dce,sil-outline(min=8),outline(rounds=5)");
  Alcotest.(check string) "whitespace tolerated" "dce,outline(rounds=3)"
    (canon "  dce ,  outline( rounds = 3 ) ");
  let s = ok_exn (Passman.parse "a-b(x=1,y=z2),c") in
  Alcotest.(check bool) "parse (print s) = s" true
    (Passman.parse (Passman.print s) = Ok s)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Passman.parse s with
      | Ok _ -> Alcotest.failf "expected a parse error for %S" s
      | Error _ -> ())
    [
      "";
      "dce,,fmsa";
      "outline(rounds=5";
      "outline rounds=5)";
      "Bad";
      "dce,outline(=3)";
      "outline(rounds)";
    ]

(* --- registry completeness -------------------------------------------------- *)

(* Every pass the config flags can request must be registered, and every
   registered pass must be reachable from a pipeline string — the two
   descriptions of the pipeline may never drift apart. *)
let test_registry () =
  List.iter
    (fun name ->
      match Pipeline.config_of_passes name with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "pass %s not reachable from a spec: %s" name e)
    Passman.registered_names;
  let check_roundtrip c =
    let s = Passman.print (Pipeline.spec_of_config c) in
    let c' = ok_exn (Pipeline.config_of_passes ~base:c s) in
    Alcotest.(check bool)
      ("flags recovered through " ^ s)
      true
      (c'.Pipeline.run_dce = c.Pipeline.run_dce
      && c'.Pipeline.run_sil_outline = c.Pipeline.run_sil_outline
      && c'.Pipeline.sil_outline_min = c.Pipeline.sil_outline_min
      && c'.Pipeline.run_merge_functions = c.Pipeline.run_merge_functions
      && c'.Pipeline.run_fmsa = c.Pipeline.run_fmsa
      && c'.Pipeline.run_global_merge = c.Pipeline.run_global_merge
      && c'.Pipeline.global_merge_min = c.Pipeline.global_merge_min
      && c'.Pipeline.global_merge_max_holes = c.Pipeline.global_merge_max_holes
      && c'.Pipeline.run_canonicalize = c.Pipeline.run_canonicalize
      && c'.Pipeline.outline_rounds = c.Pipeline.outline_rounds
      && c'.Pipeline.outlined_layout = c.Pipeline.outlined_layout)
  in
  check_roundtrip Pipeline.default_config;
  check_roundtrip
    { Pipeline.default_config with
      run_sil_outline = true; sil_outline_min = 12; run_merge_functions = true };
  check_roundtrip
    { Pipeline.default_config with
      run_fmsa = true; run_canonicalize = true;
      outlined_layout = `Caller_affinity };
  check_roundtrip
    { Pipeline.default_config with outlined_layout = `Bp_compress 0.25 };
  check_roundtrip
    { Pipeline.default_config with
      run_global_merge = true; global_merge_min = 6; global_merge_max_holes = 3 };
  let all_on =
    { Pipeline.default_config with
      run_sil_outline = true; run_merge_functions = true; run_fmsa = true;
      run_global_merge = true; run_canonicalize = true;
      outlined_layout = `Caller_affinity }
  in
  (* outline and thin-outline are alternative build modes, so no single
     config can emit both, and caller-affinity-layout, pgo-layout and
     stitch are alternative placements; the all-on config, its thin-mode
     twin and the pgo-layout and stitch variants must reach every
     registered pass between them. *)
  let all_on_thin =
    { all_on with Pipeline.mode = Pipeline.Thin_wpo { workers = 2 } }
  in
  let all_on_pgo =
    { all_on with Pipeline.outlined_layout = `Bp_compress 0.5 }
  in
  let all_on_stitch = { all_on with Pipeline.outlined_layout = `Stitch } in
  let spec = Pipeline.spec_of_config all_on in
  let spec_thin = Pipeline.spec_of_config all_on_thin in
  let spec_pgo = Pipeline.spec_of_config all_on_pgo in
  let spec_stitch = Pipeline.spec_of_config all_on_stitch in
  let specs = spec @ spec_thin @ spec_pgo @ spec_stitch in
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        ("registered: " ^ sp.Passman.sp_name)
        true
        (List.mem sp.Passman.sp_name Passman.registered_names))
    specs;
  let covered =
    List.sort_uniq compare (List.map (fun sp -> sp.Passman.sp_name) specs)
  in
  Alcotest.(check int) "the four configs exercise the whole registry"
    (List.length Passman.registered_names)
    (List.length covered)

(* --- verify-each ------------------------------------------------------------ *)

(* A deliberately broken pass: duplicating a function leaves the program
   structurally invalid (duplicate symbol), which only
   Machine.Program.validate notices. *)
let broken_pass =
  {
    Passman.p_name = "break";
    p_params = [];
    p_self_gated = false;
    p_linked = false;
    p_run =
      (fun _ _ (p : Machine.Program.t) ->
        { p with Machine.Program.funcs = p.funcs @ [ List.hd p.funcs ] });
  }

let break_spec = [ { Passman.sp_name = "break"; sp_params = [] } ]

let test_verify_each_catches () =
  let p = Fuzz.Machgen.generate (Random.State.make [| 5; 1 |]) ~fuel:6 in
  (* Without verify-each the corruption sails through the manager... *)
  let ctx = Passman.create_ctx () in
  let (_ : Machine.Program.t) =
    Passman.run_passes ctx Passman.machine_stage [ broken_pass ] break_spec p
  in
  (* ...with it, the violation is caught and attributed to the pass. *)
  let ctx = Passman.create_ctx ~verify_each:true () in
  match Passman.run_passes ctx Passman.machine_stage [ broken_pass ] break_spec p with
  | (_ : Machine.Program.t) ->
    Alcotest.fail "verify-each did not flag the broken pass"
  | exception Failure msg ->
    Alcotest.(check bool) ("failure names the pass: " ^ msg) true
      (contains msg "break")

(* --- opt-bisect ------------------------------------------------------------- *)

let outline_spec =
  [ { Passman.sp_name = "outline"; sp_params = [ ("rounds", "5") ] } ]

(* A stale cache can crash the rewrite outright, not just diverge, so the
   run is trapped and an exception counts as disagreement — the same
   policy as the fuzz lattice's incremental/scratch differential. *)
let run_outline ?bisect_limit ~engine p =
  let ctx = Passman.create_ctx ?bisect_limit () in
  let env =
    {
      Passman.me_engine = engine;
      me_scope = "";
      me_profile = Outcore.Profile.create ();
      me_on_stats = (fun _ -> ());
      me_thin_workers = 1;
      me_thin_report = Thinwpo.Engine.Report.create ();
      me_warm = None;
    }
  in
  let q =
    try
      Ok
        (Passman.run_passes ctx Passman.machine_stage
           (Passman.machine_passes env) outline_spec p)
    with e -> Error (Printexc.to_string e)
  in
  (q, ctx)

let engines_agree ?bisect_limit p =
  let qi, _ = run_outline ?bisect_limit ~engine:`Incremental p in
  let qs, _ = run_outline ?bisect_limit ~engine:`Scratch p in
  match (qi, qs) with
  | Ok a, Ok b ->
    Machine.Asm_printer.to_source a = Machine.Asm_printer.to_source b
  | Error _, _ | _, Error _ -> false

(* Inject the stale-dirty-set fault, find a program where the incremental
   engine diverges from scratch at 5 rounds, then let opt-bisect localize
   the first faulty step.  The fault corrupts cached sequences reused
   across rounds, so the culprit can never be round 1 (whose cache is
   fresh) — bisect must land on a later round. *)
let test_bisect_localizes () =
  Outcore.Outliner.fault_skip_invalidation := true;
  Fun.protect
    ~finally:(fun () -> Outcore.Outliner.fault_skip_invalidation := false)
    (fun () ->
      let found = ref None and attempt = ref 0 in
      while !found = None && !attempt < 100 do
        let st = Random.State.make [| 1 + 104729; !attempt |] in
        let p = Fuzz.Machgen.generate st ~fuel:8 in
        if Machine.Program.validate p = Ok () && not (engines_agree p) then
          found := Some p;
        incr attempt
      done;
      match !found with
      | None ->
        Alcotest.fail "stale-cache fault not reachable in 100 random programs"
      | Some p -> (
        match
          Passman.bisect ~hi:5 ~fails:(fun n ->
              not (engines_agree ~bisect_limit:n p))
        with
        | None -> Alcotest.fail "bisect found no failing step"
        | Some n ->
          Alcotest.(check bool)
            (Printf.sprintf "stale cache localized past round 1 (step %d)" n)
            true (n >= 2);
          let res, ctx = run_outline ~bisect_limit:n ~engine:`Incremental p in
          let steps = Passman.steps ctx in
          List.iteri
            (fun i (st : Passman.step) ->
              Alcotest.(check string) "every step is an outline round"
                "outline" st.Passman.st_pass;
              Alcotest.(check string) "rounds recorded in order"
                (Printf.sprintf "round %d" (i + 1))
                st.Passman.st_detail)
            steps;
          (match res with
          | Error _ ->
            (* the faulty round crashed before its step was recorded *)
            Alcotest.(check int) "crash happened in the bisected step" (n - 1)
              (List.length steps)
          | Ok _ ->
            if List.length steps >= n then
              Alcotest.(check bool) "the bisected step ran" true
                (List.nth steps (n - 1)).Passman.st_applied)))

let () =
  Alcotest.run "passman"
    [
      ( "spec",
        [
          Alcotest.test_case "parse/print round-trip" `Quick test_parse_print;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ("registry", [ Alcotest.test_case "completeness" `Quick test_registry ]);
      ( "verify-each",
        [
          Alcotest.test_case "catches a broken pass" `Quick
            test_verify_each_catches;
        ] );
      ( "opt-bisect",
        [
          Alcotest.test_case "localizes the stale-cache fault" `Quick
            test_bisect_localizes;
        ] );
    ]
