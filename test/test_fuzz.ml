(* Bounded smoke tests for the differential fuzzing harness: a short
   deterministic sweep must find no divergences, generation must be
   reproducible from the seed, and the fault-injection self-test must
   catch — and shrink — a deliberately broken outliner legality rule. *)

let test_determinism () =
  let gen () =
    Fuzz.Swiftgen.print_source
      (Fuzz.Swiftgen.generate (Random.State.make [| 7; 3 |]) ~fuel:7)
  in
  Alcotest.(check string) "same seed, same program" (gen ()) (gen ());
  let m () =
    Machine.Asm_printer.to_source
      (Fuzz.Machgen.generate (Random.State.make [| 7; 4 |]) ~fuel:7)
  in
  Alcotest.(check string) "same seed, same machine program" (m ()) (m ())

let test_lattice_shape () =
  let pts = Fuzz.Lattice.points Pipeline.default_config in
  Alcotest.(check bool) "lattice has both modes and link axes" true
    (List.length pts >= 40);
  let labels = List.map fst pts in
  Alcotest.(check bool) "labels unique" true
    (List.length (List.sort_uniq compare labels) = List.length labels);
  List.iter
    (fun label ->
      Alcotest.(check bool)
        (label ^ " present") true (List.mem label labels))
    [ "pm/r0/plain"; "wp/r3/all"; "wp/r3/legacy-flags"; "wp/r3/interleaved" ]

let test_fuzz_sweep () =
  match Fuzz.Driver.fuzz ~seed:1 ~count:15 ~fuel:5 () with
  | Ok s ->
    Alcotest.(check int) "all programs generated" 15 s.Fuzz.Driver.programs;
    Alcotest.(check bool) "most programs in-domain" true (s.skipped <= 3);
    Alcotest.(check bool) "points actually checked" true
      (s.points_checked > 300)
  | Error report -> Alcotest.fail ("fuzz divergence:\n" ^ report)

let test_mixed_flags_conflict_is_exercised () =
  (* The flag machinery itself: Mixed_compilers modules must conflict under
     Legacy whole-program linking and link fine under Attributes. *)
  let mods =
    Fuzz.Lattice.attach_flags Fuzz.Swiftgen.Mixed_compilers
      [
        { Ir.m_name = "a"; funcs = []; globals = []; externs = []; flags = [] };
        { Ir.m_name = "b"; funcs = []; globals = []; externs = []; flags = [] };
      ]
  in
  (match Link.link ~flag_semantics:Link.Legacy ~name:"app" mods with
  | Error (Link.Flag_conflict _) -> ()
  | Ok _ -> Alcotest.fail "legacy link of mixed-compiler flags should conflict"
  | Error e -> Alcotest.fail (Link.error_to_string e));
  match Link.link ~flag_semantics:Link.Attributes ~name:"app" mods with
  | Ok _ -> ()
  | Error e ->
    Alcotest.fail ("attributes link should succeed: " ^ Link.error_to_string e)

let test_self_test_catches_injected_bug () =
  match Fuzz.Driver.self_test ~seed:1 () with
  | Ok _report -> ()
  | Error report -> Alcotest.fail report

let test_flag_restored_after_self_test () =
  Alcotest.(check bool) "legality flag reset" false
    !Outcore.Legality.unsafe_outline_lr

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "generation is deterministic" `Quick
            test_determinism;
          Alcotest.test_case "lattice shape" `Quick test_lattice_shape;
          Alcotest.test_case "15-program differential sweep" `Slow
            test_fuzz_sweep;
          Alcotest.test_case "mixed flags exercise the legacy conflict" `Quick
            test_mixed_flags_conflict_is_exercised;
          Alcotest.test_case "self-test catches injected outliner bug" `Slow
            test_self_test_catches_injected_bug;
          Alcotest.test_case "legality flag restored" `Quick
            test_flag_restored_after_self_test;
        ] );
    ]
