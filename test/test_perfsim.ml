(* Tests for the linker, caches and machine-code interpreter, plus the
   central differential property of the whole project: outlining preserves
   program semantics. *)

open Machine

let parse text =
  match Asm_parser.parse_program text with
  | Ok p -> p
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let run_exn ?config ?args p ~entry =
  match Perfsim.Interp.run ?config ?args ~entry p with
  | Ok r -> r
  | Error e -> Alcotest.fail ("exec error: " ^ Perfsim.Interp.error_to_string e)

(* --- Linker -------------------------------------------------------------- *)

let test_linker_layout () =
  let p =
    parse
      {|
extern ext
data tbl: 1 2 3
func a:
entry:
  nop
  ret
func b:
entry:
  adr x0, tbl
  b ext
|}
  in
  let l = Linker.link p in
  Alcotest.(check int) "text size = code size" (Program.code_size_bytes p)
    l.Linker.text_size;
  Alcotest.(check int) "data size" 24 l.Linker.data_size;
  let a = Linker.address_of l "a" and b = Linker.address_of l "b" in
  Alcotest.(check int) "a at text base" l.Linker.text_base a;
  Alcotest.(check int) "b follows a" (a + 8) b;
  Alcotest.(check bool) "data above text" true
    (Linker.address_of l "tbl" >= l.Linker.data_base);
  Alcotest.(check bool) "extern mapped high" true
    (Linker.address_of l "ext" > 0x1000_0000);
  Alcotest.(check int) "binary size" (l.Linker.text_size + l.Linker.data_size + l.Linker.image_overhead)
    (Linker.binary_size l)

let test_duplicate_bodies () =
  let p =
    parse
      {|
func c1:
entry:
  mov x0, #1
  ret
func c2:
entry:
  mov x0, #1
  ret
func c3:
entry:
  mov x0, #2
  ret
|}
  in
  match Linker.duplicate_function_bodies p with
  | [ (2, 8) ] -> ()
  | other ->
    Alcotest.fail
      (Printf.sprintf "expected one clone group of 2 x 8 bytes, got %d groups"
         (List.length other))

(* --- Caches -------------------------------------------------------------- *)

let test_icache () =
  let c = Perfsim.Icache.create ~size_bytes:256 ~line_bytes:64 ~assoc:2 in
  (* 2 sets x 2 ways. *)
  Alcotest.(check bool) "cold miss" false (Perfsim.Icache.access c 0);
  Alcotest.(check bool) "same line hits" true (Perfsim.Icache.access c 60);
  Alcotest.(check bool) "next line misses" false (Perfsim.Icache.access c 64);
  (* Fill set 0 beyond its 2 ways: lines 0, 128, 256 map to set 0. *)
  ignore (Perfsim.Icache.access c 128);
  ignore (Perfsim.Icache.access c 256);
  (* Line 0 was LRU in set 0 and must have been evicted. *)
  Alcotest.(check bool) "lru evicted" false (Perfsim.Icache.access c 0);
  Alcotest.(check bool) "counted" true (Perfsim.Icache.misses c >= 4)

let test_tlb () =
  let t = Perfsim.Tlb.create ~entries:2 ~page_bytes:4096 in
  Alcotest.(check bool) "cold" false (Perfsim.Tlb.access t 100);
  Alcotest.(check bool) "same page" true (Perfsim.Tlb.access t 4000);
  Alcotest.(check bool) "second page" false (Perfsim.Tlb.access t 5000);
  Alcotest.(check bool) "third page evicts first" false (Perfsim.Tlb.access t 9000);
  Alcotest.(check bool) "first page gone" false (Perfsim.Tlb.access t 100)

(* --- Interpreter --------------------------------------------------------- *)

let sum_prog =
  parse
    {|
func sum:
entry:
  mov x1, #0
  mov x2, #1
  b loop
loop:
  cmp x2, x0
  b.gt done, body
body:
  add x1, x1, x2
  add x2, x2, #1
  b loop
done:
  mov x0, x1
  ret
|}

let test_loop_sum () =
  let r = run_exn sum_prog ~entry:"sum" ~args:[ 10 ] in
  Alcotest.(check int) "sum 1..10" 55 r.exit_value;
  let r0 = run_exn sum_prog ~entry:"sum" ~args:[ 0 ] in
  Alcotest.(check int) "empty sum" 0 r0.exit_value

let fib_prog =
  parse
    {|
func fib:
entry:
  cmp x0, #2
  b.lt base, rec
base:
  ret
rec:
  stp fp, lr, [sp, #-16]!
  stp x19, x20, [sp, #-16]!
  mov x19, x0
  sub x0, x19, #1
  bl fib
  mov x20, x0
  sub x0, x19, #2
  bl fib
  add x0, x20, x0
  ldp x19, x20, [sp], #16
  ldp fp, lr, [sp], #16
  ret
|}

let test_recursion () =
  let r = run_exn fib_prog ~entry:"fib" ~args:[ 10 ] in
  Alcotest.(check int) "fib 10" 55 r.exit_value;
  Alcotest.(check bool) "made calls" true (r.calls > 50)

let test_memory_and_globals () =
  let p =
    parse
      {|
data tbl: 10 20 30
data ptrs: @tbl
func main:
entry:
  adr x1, ptrs
  ldr x2, [x1]       ; x2 = &tbl
  ldr x3, [x2, #8]   ; 20
  ldr x4, [x2, #16]  ; 30
  add x0, x3, x4
  str x0, [x2]       ; overwrite tbl[0]
  ldr x5, [x2]
  add x0, x0, x5
  ret
|}
  in
  let r = run_exn p ~entry:"main" in
  Alcotest.(check int) "loads/stores" 100 r.exit_value

let test_csel_cset_div () =
  let p =
    parse
      {|
func main:
entry:
  mov x1, #7
  mov x2, #0
  sdiv x3, x1, x2     ; AArch64: x/0 = 0
  cmp x1, #7
  cset x4, eq         ; 1
  cmp x1, #8
  csel x5, x1, x4, eq ; not equal -> x4 = 1
  add x0, x3, x4
  add x0, x0, x5
  ret
|}
  in
  let r = run_exn p ~entry:"main" in
  Alcotest.(check int) "csel/cset/sdiv" 2 r.exit_value

let test_runtime_alloc_refcount () =
  let p =
    parse
      {|
extern swift_allocObject
extern swift_retain
extern swift_release
extern print_i64
func main:
entry:
  stp fp, lr, [sp, #-16]!
  mov x0, #42          ; "metadata"
  mov x1, #32          ; size
  bl swift_allocObject
  mov x19, x0
  bl swift_retain
  mov x0, x19
  bl swift_retain
  mov x0, x19
  ldr x0, [x19]        ; refcount must be 3
  bl print_i64
  mov x0, x19
  bl swift_release
  ldr x0, [x19]        ; 2
  bl print_i64
  ldr x0, [x19, #8]    ; metadata
  bl print_i64
  ldp fp, lr, [sp], #16
  ret
|}
  in
  let r = run_exn p ~entry:"main" in
  Alcotest.(check (list int)) "refcounts and metadata" [ 3; 2; 42 ] r.output

let test_tail_call_semantics () =
  let p =
    parse
      {|
func double_inc:
entry:
  add x0, x0, #1
  b double        ; tail call: returns directly to main's caller site
func double:
entry:
  add x0, x0, x0
  ret
func main:
entry:
  stp fp, lr, [sp, #-16]!
  mov x0, #20
  bl double_inc
  add x0, x0, #1  ; 43
  ldp fp, lr, [sp], #16
  ret
|}
  in
  let r = run_exn p ~entry:"main" in
  Alcotest.(check int) "tail call" 43 r.exit_value

let test_step_limit () =
  let p = parse "func spin:\nentry:\n  nop\n  b entry\n" in
  let config = { Perfsim.Interp.default_config with max_steps = 1000 } in
  match Perfsim.Interp.run ~config ~entry:"spin" p with
  | Error Perfsim.Interp.Step_limit_exceeded -> ()
  | Ok _ -> Alcotest.fail "expected step limit"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Perfsim.Interp.error_to_string e)

let test_null_and_unknown () =
  let p = parse "func main:\nentry:\n  mov x1, #0\n  ldr x0, [x1]\n  ret\n" in
  (match Perfsim.Interp.run ~entry:"main" p with
  | Error Perfsim.Interp.Null_access -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected null access");
  let p2 = parse "extern mystery\nfunc main:\nentry:\n  stp fp, lr, [sp, #-16]!\n  bl mystery\n  ldp fp, lr, [sp], #16\n  ret\n" in
  (match Perfsim.Interp.run ~entry:"main" p2 with
  | Error (Perfsim.Interp.Unknown_symbol "mystery") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected unknown symbol");
  let config = { Perfsim.Interp.default_config with unknown_extern = `Noop } in
  match Perfsim.Interp.run ~config ~entry:"main" p2 with
  | Ok r -> Alcotest.(check int) "noop extern returns 0" 0 r.exit_value
  | Error e -> Alcotest.fail (Perfsim.Interp.error_to_string e)

let test_perf_counters () =
  let r = run_exn fib_prog ~entry:"fib" ~args:[ 15 ] in
  Alcotest.(check bool) "cycles > steps" true (r.cycles > r.steps);
  Alcotest.(check bool) "icache accessed once per step" true
    (r.icache_accesses = r.steps);
  (* A hot recursive function should hit in cache nearly always. *)
  Alcotest.(check bool) "icache mostly hits" true
    (r.icache_misses * 100 < r.icache_accesses)

(* --- Cold-start page-in ---------------------------------------------------- *)

(* main calls a tiny [early] helper, then a [late] function pushed more
   than a page away by ~20 KiB of padding.  The cold-start window closes
   when [early] returns — the first completed intra-image call — so only
   the pages fetched up to that point count. *)
let cold_start_prog () =
  let b = Buffer.create 65536 in
  Buffer.add_string b
    "func main:\n\
     entry:\n\
     \  stp fp, lr, [sp, #-16]!\n\
     \  bl early\n\
     \  bl late\n\
     \  mov x0, #5\n\
     \  ldp fp, lr, [sp], #16\n\
     \  ret\n";
  Buffer.add_string b "func early:\nentry:\n  mov x9, #1\n  ret\n";
  Buffer.add_string b "func pad:\nentry:\n";
  for _ = 1 to 5000 do
    Buffer.add_string b "  add x9, x9, #1\n"
  done;
  Buffer.add_string b "  ret\n";
  Buffer.add_string b "func late:\nentry:\n  mov x10, #2\n  ret\n";
  parse (Buffer.contents b)

let test_cold_start_pages () =
  let p = cold_start_prog () in
  let run order =
    match Perfsim.Interp.run ~order ~entry:"main" p with
    | Ok r -> r
    | Error e ->
      Alcotest.fail ("exec error: " ^ Perfsim.Interp.error_to_string e)
  in
  let near = run [ "main"; "early"; "pad"; "late" ] in
  (* main and early share the first 16 KiB page; late's page is faulted
     after the marker and must not count. *)
  Alcotest.(check int) "helper on the entry page: one cold page" 1
    near.cold_start_pages;
  Alcotest.(check bool) "cold-start cost priced per page" true
    (near.cold_start_cost > 0
    && near.cold_start_cost mod near.cold_start_pages = 0);
  (* The padding between main and early now forces a second fault before
     the marker. *)
  let far = run [ "main"; "pad"; "early"; "late" ] in
  Alcotest.(check bool) "separating the helper faults more pages" true
    (far.cold_start_pages > near.cold_start_pages);
  Alcotest.(check int) "same semantics either way" near.exit_value
    far.exit_value

let test_cold_start_deterministic () =
  let p = cold_start_prog () in
  let r1 = run_exn p ~entry:"main" and r2 = run_exn p ~entry:"main" in
  Alcotest.(check int) "cold pages repeat" r1.cold_start_pages
    r2.cold_start_pages;
  Alcotest.(check int) "cold cost repeats" r1.cold_start_cost
    r2.cold_start_cost;
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  let r3 = run_exn ~config p ~entry:"main" in
  Alcotest.(check int) "no perf model, no page-in trace" 0 r3.cold_start_pages;
  Alcotest.(check int) "no perf model, no cold cost" 0 r3.cold_start_cost

let test_backtrace_through_outlined_code () =
  (* §VI-4: a crash inside an outlined function must show
     OUTLINED_FUNCTION_* as the leaf frame, with the real feature function
     one level deeper. *)
  let text =
    {|
func feature_a:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #0
  mov x2, #7
  mov x3, #8
  mov x4, #9
  mov x5, #10
  ldr x6, [x1]
  ldp fp, lr, [sp], #16
  ret
func feature_b:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #0
  mov x2, #7
  mov x3, #8
  mov x4, #9
  mov x5, #10
  ldr x6, [x1]
  ldp fp, lr, [sp], #16
  ret
func feature_c:
entry:
  stp fp, lr, [sp, #-16]!
  mov x1, #0
  mov x2, #7
  mov x3, #8
  mov x4, #9
  mov x5, #10
  ldr x6, [x1]
  ldp fp, lr, [sp], #16
  ret
func main:
entry:
  stp fp, lr, [sp, #-16]!
  bl feature_a
  ldp fp, lr, [sp], #16
  ret
|}
  in
  let p = parse text in
  let p', _ = Outcore.Repeat.run ~rounds:5 p in
  (* The null deref sits inside an outlined function now. *)
  let has_outlined =
    List.exists (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) p'.Program.funcs
  in
  Alcotest.(check bool) "pattern was outlined" true has_outlined;
  match Perfsim.Interp.run_with_backtrace ~entry:"main" p' with
  | Ok _ -> Alcotest.fail "expected a null access"
  | Error (Perfsim.Interp.Null_access, backtrace) -> (
    match backtrace with
    | leaf :: caller :: _ ->
      Alcotest.(check bool) "leaf frame is outlined" true
        (String.length leaf >= 8 && String.sub leaf 0 8 = "OUTLINED");
      Alcotest.(check string) "real function one level down" "feature_a" caller
    | _ -> Alcotest.fail "backtrace too short")
  | Error (e, _) -> Alcotest.fail (Perfsim.Interp.error_to_string e)

let test_trace_ring_symbolized () =
  (* A crashing program with the trace ring on must leave a symbolized
     dump behind: every line carries "sym+0xoff" resolved through the
     linker layout, and the crashing function appears in it. *)
  let p =
    parse
      {|
func crasher:
entry:
  mov x1, #0
  nop
  nop
  ldr x6, [x1]
  ret
func main:
entry:
  stp fp, lr, [sp, #-16]!
  bl crasher
  ldp fp, lr, [sp], #16
  ret
|}
  in
  let config = { Perfsim.Interp.default_config with trace_ring = 16 } in
  (match Perfsim.Interp.run ~config ~entry:"main" p with
  | Ok _ -> Alcotest.fail "expected a null access"
  | Error Perfsim.Interp.Null_access -> ()
  | Error e -> Alcotest.fail (Perfsim.Interp.error_to_string e));
  let trace = Perfsim.Interp.last_trace () in
  Alcotest.(check bool) "trace non-empty" true (trace <> []);
  let mentions sub line =
    let n = String.length sub and ln = String.length line in
    let rec at i = i + n <= ln && (String.sub line i n = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "crashing function symbolized" true
    (List.exists (mentions "crasher+0x") trace);
  Alcotest.(check bool) "every line symbolized" true
    (List.for_all (mentions "+0x") trace);
  Alcotest.(check bool) "faulting load is the last entry" true
    (match List.rev trace with
    | last :: _ -> mentions "ldr" last
    | [] -> false)

(* --- Differential property: outlining preserves semantics --------------- *)

let gen_function i =
  (* Deterministic pseudo-random but semantically meaningful function built
     from a seed: arithmetic on x0, optional helper calls. *)
  QCheck.Gen.(
    let body_insn =
      frequency
        [
          (4, map2 (fun d n -> Insn.mov_i (Reg.x d) n) (int_range 1 5) (int_range 0 9));
          (4, map2 (fun d s -> Insn.mov_r (Reg.x d) (Reg.x s)) (int_range 0 5) (int_range 0 5));
          ( 4,
            map3
              (fun op d s -> Insn.Binop (op, Reg.x d, Reg.x s, Insn.Imm 3))
              (oneofl [ Insn.Add; Insn.Sub; Insn.Orr; Insn.Eor ])
              (int_range 0 5) (int_range 0 5) );
          ( 2,
            map2
              (fun d s -> Insn.Binop (Insn.Add, Reg.x d, Reg.x d, Insn.Rop (Reg.x s)))
              (int_range 0 5) (int_range 0 5) );
          (1, return (Insn.Bl "helper"));
        ]
    in
    map
      (fun insns ->
        let has_call = List.exists Insn.is_call insns in
        let prologue =
          if has_call then
            [ Insn.Stp (Reg.fp, Reg.lr, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre }) ]
          else []
        in
        let epilogue =
          if has_call then
            [ Insn.Ldp (Reg.fp, Reg.lr, { Insn.base = Reg.SP; off = 16; mode = Insn.Post }) ]
          else []
        in
        Mfunc.make ~name:(Printf.sprintf "gen%d" i)
          [ Block.make ~label:"entry" (prologue @ insns @ epilogue) Block.Ret ])
      (list_size (int_range 1 12) body_insn))

let gen_program =
  QCheck.Gen.(
    let* nfuncs = int_range 1 8 in
    let rec gen_funcs i acc =
      if i >= nfuncs then return (List.rev acc)
      else
        let* f = gen_function i in
        gen_funcs (i + 1) (f :: acc)
    in
    let* funcs = gen_funcs 0 [] in
    (* helper: a leaf that mixes its argument. *)
    let helper =
      Mfunc.make ~name:"helper"
        [
          Block.make ~label:"entry"
            [
              Insn.Binop (Insn.Eor, Reg.x 0, Reg.x 0, Insn.Imm 21);
              Insn.Binop (Insn.Add, Reg.x 0, Reg.x 0, Insn.Imm 1);
            ]
            Block.Ret;
        ]
    in
    (* main: call every generated function, folding results through x0 via a
       callee-saved accumulator. *)
    let calls =
      List.concat_map
        (fun (f : Mfunc.t) ->
          [
            Insn.mov_r (Reg.x 0) (Reg.x 19);
            Insn.Bl f.Mfunc.name;
            Insn.Binop (Insn.Add, Reg.x 19, Reg.x 0, Insn.Rop (Reg.x 19));
          ])
        funcs
    in
    let main =
      Mfunc.make ~name:"main"
        [
          Block.make ~label:"entry"
            ([
               Insn.Stp (Reg.fp, Reg.lr, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre });
               Insn.Stp (Reg.x 19, Reg.x 20, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre });
               Insn.mov_i (Reg.x 19) 7;
             ]
            @ calls
            @ [
                Insn.mov_r (Reg.x 0) (Reg.x 19);
                Insn.Ldp (Reg.x 19, Reg.x 20, { Insn.base = Reg.SP; off = 16; mode = Insn.Post });
                Insn.Ldp (Reg.fp, Reg.lr, { Insn.base = Reg.SP; off = 16; mode = Insn.Post });
              ])
            Block.Ret;
        ]
    in
    return (Program.make (main :: helper :: funcs)))

let arb_exec_program =
  QCheck.make gen_program ~print:(fun p -> Format.asprintf "%a" Program.pp p)

let interp_result p =
  let config = { Perfsim.Interp.default_config with model_perf = false } in
  match Perfsim.Interp.run ~config ~entry:"main" p with
  | Ok r -> Ok (r.exit_value, r.output, r.steps)
  | Error e -> Error e

let prop_outlining_preserves_semantics =
  QCheck.Test.make ~count:300 ~name:"outlining preserves observable behaviour"
    arb_exec_program (fun p ->
      match interp_result p with
      | Error e ->
        QCheck.Test.fail_reportf "base program failed: %s"
          (Perfsim.Interp.error_to_string e)
      | Ok (v0, out0, steps0) -> (
        let p', _ = Outcore.Repeat.run ~rounds:5 p in
        match interp_result p' with
        | Error e ->
          QCheck.Test.fail_reportf "outlined program failed: %s"
            (Perfsim.Interp.error_to_string e)
        | Ok (v1, out1, steps1) ->
          if v0 <> v1 then QCheck.Test.fail_reportf "exit %d <> %d" v0 v1
          else if out0 <> out1 then QCheck.Test.fail_report "output differs"
          else if steps1 < steps0 then
            QCheck.Test.fail_report "outlining cannot reduce dynamic steps"
          else true))

let () =
  Alcotest.run "perfsim"
    [
      ( "linker",
        [
          Alcotest.test_case "layout" `Quick test_linker_layout;
          Alcotest.test_case "duplicate bodies" `Quick test_duplicate_bodies;
        ] );
      ( "caches",
        [
          Alcotest.test_case "icache" `Quick test_icache;
          Alcotest.test_case "tlb" `Quick test_tlb;
        ] );
      ( "interp",
        [
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "memory and globals" `Quick test_memory_and_globals;
          Alcotest.test_case "csel/cset/sdiv" `Quick test_csel_cset_div;
          Alcotest.test_case "runtime alloc/refcount" `Quick
            test_runtime_alloc_refcount;
          Alcotest.test_case "tail call" `Quick test_tail_call_semantics;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "null and unknown extern" `Quick
            test_null_and_unknown;
          Alcotest.test_case "perf counters" `Quick test_perf_counters;
          Alcotest.test_case "cold-start page-in trace" `Quick
            test_cold_start_pages;
          Alcotest.test_case "cold-start determinism" `Quick
            test_cold_start_deterministic;
          Alcotest.test_case "backtrace through outlined code" `Quick
            test_backtrace_through_outlined_code;
          Alcotest.test_case "trace ring dump is symbolized" `Quick
            test_trace_ring_symbolized;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_outlining_preserves_semantics ] );
    ]
