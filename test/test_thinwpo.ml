(* Thin-WPO: summary exchange, the global decision round, and the
   determinism contract — the output program must be a function of the
   input alone, never of the worker count, domain scheduling, or repeated
   runs.  Degenerate shardings (one module, an empty module, all-identical
   modules) exercise the boundaries of the first-appearance sharder. *)

open Machine

let ok_exn = function Ok x -> x | Error e -> Alcotest.fail e

let source p = Asm_printer.to_source p

let thin_config workers =
  { Pipeline.default_config with mode = Pipeline.Thin_wpo { workers } }

let build_thin ~workers srcs =
  ok_exn (Pipeline.build_sources ~config:(thin_config workers) srcs)

(* The small appgen workload, generated once and shared. *)
let small_srcs =
  lazy (Workload.Appgen.generate_sources Workload.Appgen.small)

(* --- summaries -------------------------------------------------------------- *)

let handmade_summary =
  {
    Thinwpo.Summary.sm_module = "feature_one";
    sm_patterns =
      [
        {
          Thinwpo.Summary.ps_hash = 0xdeadbeefcafef00dL;
          ps_length = 6;
          ps_strategy = Outcore.Candidate.Ends_with_ret;
          ps_needs_lr_frame = false;
          ps_touches_sp = false;
          ps_n_free = 4;
          ps_n_save = 0;
        };
        {
          Thinwpo.Summary.ps_hash = 0x8000000000000001L;
          (* high bit set: the textual form must round-trip unsigned *)
          ps_length = 9;
          ps_strategy = Outcore.Candidate.Thunk;
          ps_needs_lr_frame = true;
          ps_touches_sp = true;
          ps_n_free = 2;
          ps_n_save = 3;
        };
        {
          Thinwpo.Summary.ps_hash = 0x42L;
          ps_length = 3;
          ps_strategy = Outcore.Candidate.Plain_call;
          ps_needs_lr_frame = false;
          ps_touches_sp = true;
          ps_n_free = 0;
          ps_n_save = 2;
        };
      ];
  }

let test_summary_roundtrip () =
  let s = handmade_summary in
  let s' = ok_exn (Thinwpo.Summary.of_string (Thinwpo.Summary.to_string s)) in
  Alcotest.(check bool) "handmade summary round-trips" true (s = s');
  (* And a summary built from real candidates of a real program. *)
  let p = Fuzz.Machgen.generate (Random.State.make [| 21; 7 |]) ~fuel:8 in
  let cands = Outcore.Outliner.enumerate p in
  Alcotest.(check bool) "the probe program yields candidates" true
    (cands <> []);
  let pairs =
    List.map (fun c -> (Thinwpo.Summary.hash_candidate c, c)) cands
  in
  let s = Thinwpo.Summary.of_candidates ~modul:"probe" pairs in
  let s' = ok_exn (Thinwpo.Summary.of_string (Thinwpo.Summary.to_string s)) in
  Alcotest.(check bool) "real summary round-trips" true (s = s');
  List.iter
    (fun bad ->
      match Thinwpo.Summary.of_string bad with
      | Ok _ -> Alcotest.failf "expected a parse error for %S" bad
      | Error _ -> ())
    [ ""; "garbage"; "thin-summary module=m patterns=2\n" ]

let test_hash_stability () =
  (* Same candidate list hashed twice: identical hashes (no interner or
     scheduling dependence), and honest hashes use the full 64-bit space
     (no two distinct patterns of this probe collide). *)
  let p = Fuzz.Machgen.generate (Random.State.make [| 22; 7 |]) ~fuel:8 in
  let cands = Outcore.Outliner.enumerate p in
  let h1 = List.map Thinwpo.Summary.hash_candidate cands in
  let h2 = List.map Thinwpo.Summary.hash_candidate cands in
  Alcotest.(check bool) "hashing is pure" true (h1 = h2)

(* --- the global decision round ---------------------------------------------- *)

let mk_pattern ?(strategy = Outcore.Candidate.Ends_with_ret) ?(lr = false)
    ?(sp = false) ?(len = 8) ?(free = 6) ?(save = 0) hash =
  {
    Thinwpo.Summary.ps_hash = hash;
    ps_length = len;
    ps_strategy = strategy;
    ps_needs_lr_frame = lr;
    ps_touches_sp = sp;
    ps_n_free = free;
    ps_n_save = save;
  }

let mk_summary modul patterns =
  { Thinwpo.Summary.sm_module = modul; sm_patterns = patterns }

let test_decide_tie_breaking () =
  (* Two patterns with identical benefit must rank by unsigned hash
     ascending — 0x10 before 0x8000000000000001 even though the latter is
     negative as a signed int64. *)
  let b =
    Outcore.Cost_model.benefit_of_counts Outcore.Candidate.Ends_with_ret
      ~needs_lr_frame:false ~pattern_len:8 ~n_free:6 ~n_save:0
  in
  Alcotest.(check bool) "the tie fixture is profitable" true (b >= 1);
  let summaries =
    [
      mk_summary "beta" [ mk_pattern 0x8000000000000001L; mk_pattern 0x10L ];
      mk_summary "alpha" [ mk_pattern 0x10L ];
    ]
  in
  let ds = Thinwpo.Summary.decide ~round:1 summaries in
  Alcotest.(check int) "both ties selected" 2 (List.length ds);
  let d0 = List.nth ds 0 and d1 = List.nth ds 1 in
  (* 0x10 has double the sites (two shards), so it wins on benefit; the
     point here is the names and ranks are stable and positional. *)
  Alcotest.(check string) "rank 0 name" "OUTLINED_THIN_1_0" d0.dc_name;
  Alcotest.(check string) "rank 1 name" "OUTLINED_THIN_1_1" d1.dc_name;
  Alcotest.(check int) "ranks positional" 1 d1.dc_rank;
  Alcotest.(check string) "host is the least contributing module" "alpha"
    d0.dc_host;
  (* Now a pure tie: equal counts, distinct hashes, one shard. *)
  let ds =
    Thinwpo.Summary.decide ~round:3
      [ mk_summary "m" [ mk_pattern 0x8000000000000001L; mk_pattern 0x10L ] ]
  in
  (match ds with
  | [ a; b ] ->
    Alcotest.(check bool) "unsigned hash order breaks the tie" true
      (a.Thinwpo.Summary.dc_hash = 0x10L
      && b.Thinwpo.Summary.dc_hash = 0x8000000000000001L);
    Alcotest.(check string) "round number in the name" "OUTLINED_THIN_3_0"
      a.Thinwpo.Summary.dc_name
  | _ -> Alcotest.fail "expected exactly two decisions");
  (* Arrival order of the summaries must not matter. *)
  let flip =
    Thinwpo.Summary.decide ~round:1
      [
        mk_summary "alpha" [ mk_pattern 0x10L ];
        mk_summary "beta" [ mk_pattern 0x8000000000000001L; mk_pattern 0x10L ];
      ]
  in
  Alcotest.(check bool) "decision table independent of summary order" true
    (Thinwpo.Summary.decide ~round:1 summaries = flip)

let test_decide_filters () =
  (* A single global site can never profit; an unprofitable pattern with
     two sites is rejected by the cost model. *)
  let ds =
    Thinwpo.Summary.decide ~round:1
      [
        mk_summary "m"
          [ mk_pattern ~free:1 0x1L; mk_pattern ~len:2 ~free:2 ~save:0 0x2L ];
      ]
  in
  Alcotest.(check int) "no decision survives the filters" 0 (List.length ds);
  (* sp-unsafety is the OR of the two legality bits. *)
  let ds =
    Thinwpo.Summary.decide ~round:1
      [
        mk_summary "m"
          [ mk_pattern ~sp:true 0x1L;
            mk_pattern ~lr:true ~save:6 ~free:0 ~strategy:Outcore.Candidate.Plain_call 0x2L ];
      ]
  in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        ("decision " ^ d.Thinwpo.Summary.dc_name ^ " marked sp-unsafe")
        true d.Thinwpo.Summary.dc_sp_unsafe)
    ds;
  Alcotest.(check bool) "the sp fixture selected something" true (ds <> [])

(* --- end-to-end determinism ------------------------------------------------- *)

let test_workers_byte_identical () =
  let srcs = Lazy.force small_srcs in
  let r1 = build_thin ~workers:1 srcs in
  (* The identity must not be vacuous: thin outlining actually fired. *)
  let outlined =
    List.fold_left
      (fun acc (s : Outcore.Outliner.round_stats) ->
        acc + s.sequences_outlined)
      0 r1.Pipeline.outline_stats
  in
  Alcotest.(check bool) "thin outlining rewrote sites" true (outlined > 0);
  List.iter
    (fun workers ->
      let r = build_thin ~workers srcs in
      Alcotest.(check string)
        (Printf.sprintf "workers=%d byte-identical to workers=1" workers)
        (source r1.Pipeline.program) (source r.Pipeline.program);
      Alcotest.(check int)
        (Printf.sprintf "workers=%d same binary size" workers)
        r1.Pipeline.binary_size r.Pipeline.binary_size)
    [ 2; 4; 0 (* auto-detect *) ];
  (* Repeated runs at the same worker count reproduce the image too. *)
  let r2 = build_thin ~workers:2 srcs in
  let r3 = build_thin ~workers:2 srcs in
  Alcotest.(check string) "repeated runs byte-identical"
    (source r2.Pipeline.program) (source r3.Pipeline.program)

let test_thin_tracks_full_wpo () =
  (* Discovery is window-complete up to the scan cap, so thin usually
     lands at or below the serial whole-program image (it even catches
     non-maximal repeats the serial enumeration misses); the optimistic
     losses that remain must stay within 1%. *)
  let srcs = Lazy.force small_srcs in
  let thin = build_thin ~workers:2 srcs in
  let full = ok_exn (Pipeline.build_sources srcs) in
  let t = thin.Pipeline.code_size and f = full.Pipeline.code_size in
  let slack = max (f / 100) 64 in
  Alcotest.(check bool)
    (Printf.sprintf "thin code size %d within 1%% of full WPO %d" t f)
    true
    (t - f <= slack)

(* --- degenerate shardings --------------------------------------------------- *)

let repeats_body =
  (* Enough straight-line repetition for the outliner to bite. *)
  {|
  var acc = s
  acc = acc * 3 + 7
  acc = acc * 3 + 7
  acc = acc * 3 + 7
  acc = acc * 3 + 7
  return acc
|}

let clone_module i =
  let src =
    Printf.sprintf
      "func work_%d_a(s: Int) -> Int {%s}\nfunc work_%d_b(s: Int) -> Int {%s}\n"
      i repeats_body i repeats_body
  in
  (Printf.sprintf "clone%d" i, src)

let test_degenerate_shardings () =
  let check label srcs =
    let r1 = build_thin ~workers:1 srcs in
    let r4 = build_thin ~workers:4 srcs in
    Alcotest.(check string) (label ^ ": workers=1 = workers=4")
      (source r1.Pipeline.program) (source r4.Pipeline.program)
  in
  (* One module: a single shard, phases degenerate to the serial shape. *)
  check "single module" [ clone_module 0 ];
  (* An empty module among real ones: an empty shard must not perturb
     sharding, naming, or the merge. *)
  check "empty module"
    [ clone_module 0; ("hollow", ""); clone_module 1 ];
  (* All-identical modules (same bodies, per-module symbol names): every
     shard reports the same pattern hashes, the join sums their counts,
     and one host emits each body. *)
  check "all-identical modules" (List.init 4 clone_module);
  (* The identical-clone case must actually outline across the shards. *)
  let r = build_thin ~workers:2 (List.init 4 clone_module) in
  let hosted =
    List.filter (fun (f : Mfunc.t) -> f.Mfunc.is_outlined) r.Pipeline.program.Program.funcs
  in
  Alcotest.(check bool) "clone corpus produced outlined hosts" true
    (hosted <> [])

let () =
  Alcotest.run "thinwpo"
    [
      ( "summary",
        [
          Alcotest.test_case "serialization round-trip" `Quick
            test_summary_roundtrip;
          Alcotest.test_case "hash stability" `Quick test_hash_stability;
        ] );
      ( "decide",
        [
          Alcotest.test_case "tie-breaking" `Quick test_decide_tie_breaking;
          Alcotest.test_case "filters" `Quick test_decide_filters;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical across workers" `Quick
            test_workers_byte_identical;
          Alcotest.test_case "thin tracks full WPO size" `Quick
            test_thin_tracks_full_wpo;
          Alcotest.test_case "degenerate shardings" `Quick
            test_degenerate_shardings;
        ] );
    ]
