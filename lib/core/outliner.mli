(** One round of whole-unit machine outlining: discover repeated sequences
    with a suffix tree, score them with the cost model, pick greedily by
    immediate benefit (LLVM's heuristic, §II-C), and rewrite.

    Two engines produce byte-identical programs (enforced by the fuzz
    lattice differential): {!run_round} rebuilds everything from scratch
    every round — the readable reference — while {!run_round_incremental}
    keeps an interner, per-block symbol arrays, and liveness alive across
    rounds, re-deriving only what the previous round's dirty set
    invalidated (the build-time fix the paper's §VII calls for). *)

type options = {
  scope_name : string;
      (** infix for outlined function names; pass the module name when
          outlining per module so clones from different modules get
          distinct symbols, and [""] for whole-program outlining *)
  round : int;        (** round number, included in generated names *)
  min_length : int;   (** minimum pattern length in symbols (default 2) *)
  allow_save_lr : bool;  (** permit the LR-spilling call strategy *)
  allow_thunk : bool;    (** permit tail-call thunks for call-ending patterns *)
  allow_ret : bool;      (** permit outlining patterns that end with [ret] *)
}

val default_options : options

type round_stats = {
  sequences_outlined : int;  (** candidate occurrences replaced *)
  functions_created : int;
  outlined_bytes : int;      (** total size of the created functions *)
  bytes_saved : int;         (** net size reduction achieved this round *)
}

type dirty = {
  dirty_blocks : (string * string) list;
      (** (function, block label) pairs whose bodies the round rewrote *)
  dirty_new_funcs : string list;  (** outlined functions the round created *)
}

val enumerate : ?min_length:int -> ?options:options -> Machine.Program.t -> Candidate.t list
(** All legal candidates with their sites and strategies, self-overlaps
    pruned, unsorted, not yet filtered for profitability.  Shared with the
    statistics pass of §IV. *)

val run_round :
  ?profile:Profile.t ->
  options ->
  Machine.Program.t ->
  Machine.Program.t * round_stats * dirty
(** From-scratch engine.  When [profile] is given, appends one
    {!Profile.round_profile} with the phase split. *)

type engine
(** Caches carried across rounds by the incremental engine: the shared
    instruction interner, per-(func, block) symbol arrays, and per-function
    liveness. *)

val create_engine : unit -> engine

val run_round_incremental :
  ?profile:Profile.t ->
  engine ->
  options ->
  Machine.Program.t ->
  Machine.Program.t * round_stats * dirty
(** Like {!run_round} but reusing [engine]'s caches; after rewriting it
    invalidates exactly the returned dirty set.  Must be fed the program
    returned by its own previous round. *)

val fault_skip_invalidation : bool ref
(** Fault injection for [sizeopt fuzz --self-test]: suppress dirty-set
    invalidation so the incremental engine runs on stale cached sequences.
    The incremental-vs-scratch differential must catch the divergence. *)
