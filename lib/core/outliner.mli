(** One round of whole-unit machine outlining: discover repeated sequences
    with a suffix tree, score them with the cost model, pick greedily by
    immediate benefit (LLVM's heuristic, §II-C), and rewrite.

    Two engines produce byte-identical programs (enforced by the fuzz
    lattice differential): {!run_round} rebuilds everything from scratch
    every round — the readable reference — while {!run_round_incremental}
    keeps an interner, per-block symbol arrays, and liveness alive across
    rounds, re-deriving only what the previous round's dirty set
    invalidated (the build-time fix the paper's §VII calls for). *)

type options = {
  scope_name : string;
      (** infix for outlined function names; pass the module name when
          outlining per module so clones from different modules get
          distinct symbols, and [""] for whole-program outlining *)
  round : int;        (** round number, included in generated names *)
  min_length : int;   (** minimum pattern length in symbols (default 2) *)
  allow_save_lr : bool;  (** permit the LR-spilling call strategy *)
  allow_thunk : bool;    (** permit tail-call thunks for call-ending patterns *)
  allow_ret : bool;      (** permit outlining patterns that end with [ret] *)
}

val default_options : options

type round_stats = {
  sequences_outlined : int;  (** candidate occurrences replaced *)
  functions_created : int;
  outlined_bytes : int;      (** total size of the created functions *)
  bytes_saved : int;         (** net size reduction achieved this round *)
}

type dirty = {
  dirty_blocks : (string * string) list;
      (** (function, block label) pairs whose bodies the round rewrote *)
  dirty_new_funcs : string list;  (** outlined functions the round created *)
}

val enumerate :
  ?min_length:int ->
  ?options:options ->
  ?all:bool ->
  ?extern_sp_unsafe:(string -> bool) ->
  ?pool:Sufftree.Arena_tree.pool ->
  Machine.Program.t ->
  Candidate.t list
(** All legal candidates with their sites and strategies, self-overlaps
    pruned, unsorted, not yet filtered for profitability.  Shared with the
    statistics pass of §IV and with thin-WPO's per-shard discovery:
    [all] keeps candidates whose {e local} counts fall below the site or
    profitability bars (thin-WPO filters on globally summed counts
    instead), [extern_sp_unsafe] extends the SP-unsafe-callee analysis to
    symbols defined outside [p] (outlined frame fragments hosted in other
    shards), and [pool] switches the suffix tree to the arena
    implementation so a worker can recycle its backing store across the
    shards it processes. *)

val probe_windows :
  ?options:options ->
  ?extern_sp_unsafe:(string -> bool) ->
  lengths:int list ->
  Machine.Program.t ->
  Candidate.t list
(** Every legal single-site candidate over every instruction window of the
    given lengths — thin-WPO's answer to patterns this shard contains only
    {e once}: the suffix tree reports local repeats only, so after the
    provisional global ranking a shard probes its own windows for
    advertised pattern lengths and matches them to foreign discoveries by
    content hash.  No filtering beyond legality; the caller intersects the
    result with the hashes it wants. *)

val sp_unsafe_callees :
  ?extern:(string -> bool) -> Machine.Program.t -> string -> bool
(** Which function symbols a call must treat as SP-modifying: outlined
    frame fragments (bodies with unbalanced SP effects), transitively
    through calls, seeded with the [extern] facts for callees not defined
    in [p]. *)

val make_occupancy :
  Machine.Program.t ->
  (Candidate.site -> bool) * (Candidate.site -> unit)
(** [(site_free, site_take)] over lazily allocated per-block slot arrays —
    the greedy overlap-resolution primitive shared by thin-WPO's ranked
    local site assignment (phase 2's parallel step) and
    {!apply_assignments}.  The serial selector keeps its faster
    int-indexed variant, which needs the sequence table thin-WPO shards
    don't build. *)

type assignment = {
  asg_cand : Candidate.t;
  asg_name : string;        (** decision-table symbol, stable across workers *)
  asg_rank : int;           (** global priority order of the decision *)
  asg_host : string option;
      (** [Some m]: this shard emits the outlined body, [from_module = m] *)
}

val apply_assignments :
  Machine.Program.t ->
  assignment list ->
  Machine.Program.t * (int * Machine.Mfunc.t) list * round_stats
(** Thin-WPO phase 3: rewrite one shard against a globally decided,
    rank-ordered assignment list.  Sites lost to overlap with
    higher-ranked assignments are skipped (same greedy occupancy rule as
    the serial selector), profitability is {e not} re-checked — the global
    decision is optimistic and other shards already depend on it — and the
    host emits the outlined body unconditionally.  Returns the rewritten
    shard (nothing appended), the hosted functions tagged with their rank
    so the caller can append them in one deterministic global order, and
    the shard's stats ([bytes_saved] nets each hosted body against the
    shard's own site gains, so summing across shards is exact). *)

val run_round :
  ?profile:Profile.t ->
  options ->
  Machine.Program.t ->
  Machine.Program.t * round_stats * dirty
(** From-scratch engine.  When [profile] is given, appends one
    {!Profile.round_profile} with the phase split. *)

type engine
(** Caches carried across rounds by the incremental engine: the shared
    instruction interner, per-(func, block) symbol arrays, and per-function
    liveness. *)

val create_engine : unit -> engine

val reset_engine : engine -> unit
(** Drop every name-keyed cache (symbol arrays, liveness, rewrite log).
    The content-addressed interner and arena pool are kept.  Used by the
    serve daemon when a build fails mid-flight and the engine's view of the
    program can no longer be trusted. *)

val engine_begin_build : engine -> changed:(string -> bool) -> Machine.Program.t -> unit
(** Build-boundary invalidation for an engine reused across whole builds
    (the serve daemon's warm state).  [p] is the merged pre-outline program
    about to be built; [changed m] reports whether module [m]'s source
    differs from the build that populated the engine.  Drops cached entries
    for functions absent from [p] (outlined helpers regenerate under the
    same names), functions from changed modules, and blocks the previous
    build's rewriter touched (cached post-rewrite, while this build starts
    from the original bodies).  The interner and arena pool are
    content-addressed and survive untouched, so byte-determinism is
    preserved: candidate ordering never depends on interner numbering. *)

val run_round_incremental :
  ?profile:Profile.t ->
  engine ->
  options ->
  Machine.Program.t ->
  Machine.Program.t * round_stats * dirty
(** Like {!run_round} but reusing [engine]'s caches; after rewriting it
    invalidates exactly the returned dirty set.  Must be fed the program
    returned by its own previous round. *)

val fault_skip_invalidation : bool ref
(** Fault injection for [sizeopt fuzz --self-test]: suppress dirty-set
    invalidation so the incremental engine runs on stale cached sequences.
    The incremental-vs-scratch differential must catch the divergence. *)
