(** Outlining candidates.

    Following the paper's vocabulary (§IV): a {e pattern} is a unique
    instruction sequence; a {e candidate} (here {!site}) is one concrete
    occurrence of a pattern in the program. *)

(** How the final control transfer of the pattern is handled; determines
    both the shape of the outlined function and the per-site call cost. *)
type strategy =
  | Ends_with_ret
      (** pattern ends with the block's [ret]: each site becomes a tail
          branch to the outlined function, which keeps the [ret] *)
  | Thunk
      (** pattern ends with a direct call: the outlined function re-issues
          that call as a tail call, so no return sequence is needed *)
  | Plain_call
      (** generic case, LR free at every chosen site: sites become [BL],
          the outlined function appends a [ret] *)

(** Per-site call overhead category (relevant for [Plain_call] patterns,
    where a site with a live LR must spill it around the call). *)
type site_call =
  | Call_free          (** a single [BL]/[B]: 4 bytes *)
  | Call_save_lr       (** [str lr, \[sp, #-16\]!; bl; ldr lr, \[sp\], #16]: 12 bytes *)

type site = {
  func : string;
  block : string;
  block_id : int;
      (** index of the block in the round's sequence table; lets the
          selector use int-indexed occupancy arrays instead of hashing
          [(func, block)] tuples on every probe *)
  start : int;          (** index into the block body *)
  len : int;
      (** number of body instructions covered, {e excluding} the [ret]
          terminator; a [with_ret] site additionally occupies the
          terminator slot [start + len] *)
  with_ret : bool;      (** the pattern consumes the block's [ret] terminator *)
  call : site_call;
}

type t = {
  insns : Machine.Insn.t list;  (** pattern body (without any trailing ret) *)
  length : int;                 (** symbol count, including the ret symbol if any *)
  strategy : strategy;
  sites : site list;
  needs_lr_frame : bool;
      (** the body performs a call before its end, so the outlined function
          must spill LR around its body (adds 8 bytes); only legal for
          SP-free bodies *)
  touches_sp : bool;
      (** the body is SP-relevant (directly, or through a call to an
          outlined frame fragment): the outlined function is not an
          SP-neutral callee, which forbids LR-spilling call sites and — in
          thin-WPO — must travel in the module summary so other shards
          treat cross-shard calls to it correctly *)
}

val site_cost_bytes : site_call -> int
val pattern_bytes : t -> int
(** Bytes of one inline occurrence (4 per symbol). *)

val pp : Format.formatter -> t -> unit
