open Machine

type options = {
  scope_name : string;
  round : int;
  min_length : int;
  allow_save_lr : bool;
  allow_thunk : bool;
  allow_ret : bool;
}

let default_options =
  {
    scope_name = "";
    round = 1;
    min_length = 2;
    allow_save_lr = true;
    allow_thunk = true;
    allow_ret = true;
  }

type round_stats = {
  sequences_outlined : int;
  functions_created : int;
  outlined_bytes : int;
  bytes_saved : int;
}

type dirty = {
  dirty_blocks : (string * string) list;
  dirty_new_funcs : string list;
}

let no_dirty = { dirty_blocks = []; dirty_new_funcs = [] }

(* Metadata for each sequence fed to the suffix tree. *)
type seq_meta = {
  sm_func : Mfunc.t;
  sm_block : Block.t;
  sm_has_ret : bool;
}

let build_sequences imap (p : Program.t) =
  let seqs = ref [] and metas = ref [] in
  List.iter
    (fun (f : Mfunc.t) ->
      if not f.no_outline then
        List.iter
          (fun (b : Block.t) ->
            let has_ret = b.term = Block.Ret in
            let n = Array.length b.body in
            let len = if has_ret then n + 1 else n in
            if len >= 1 then begin
              let arr = Array.make len 0 in
              for i = 0 to n - 1 do
                arr.(i) <- Instr_map.symbol_of_insn imap b.body.(i)
              done;
              if has_ret then arr.(n) <- Instr_map.ret_symbol imap;
              seqs := arr :: !seqs;
              metas := { sm_func = f; sm_block = b; sm_has_ret = has_ret } :: !metas
            end)
          f.blocks)
    p.funcs;
  (List.rev !seqs, Array.of_list (List.rev !metas))

(* Walk the occurrences that survive self-overlap pruning: an occurrence
   is dropped when it overlaps an earlier-kept occurrence of the same
   pattern within the same sequence.  Occurrences arrive in increasing text
   order (the suffix-tree contract), so one stateful pass suffices; the
   fold shape lets callers count or build without materializing the pruned
   list — most repeats are rejected, and allocating a pruned copy for each
   of them dominated this phase. *)
let fold_pruned occs len f acc =
  let rec go last_seq last_end acc = function
    | [] -> acc
    | (o : Sufftree.Suffix_tree.occurrence) :: rest ->
      if o.seq = last_seq && o.pos < last_end then go last_seq last_end acc rest
      else go o.seq (o.pos + len) (f acc o) rest
  in
  go (-1) 0 acc occs

(* Outlined functions whose bodies are frame fragments (unbalanced SP
   changes, e.g. half a prologue) are legal and valuable to outline — but a
   call to one is *not* SP-neutral, unlike a call to any ABI-conforming
   function.  Strategies that spill LR around such a call would reload from
   the wrong slot.  Compute, transitively, which outlined functions a call
   must be treated as SP-modifying. *)
let sp_unsafe_callees ?(extern = fun _ -> false) (p : Program.t) =
  let unsafe : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let outlined =
    List.filter (fun (f : Mfunc.t) -> f.is_outlined) p.funcs
  in
  let body_calls (f : Mfunc.t) =
    List.concat_map
      (fun (b : Block.t) ->
        let calls =
          Array.to_list b.body
          |> List.filter_map (function Insn.Bl t -> Some t | _ -> None)
        in
        match b.term with
        | Block.Tail_call t -> t :: calls
        | _ -> calls)
      f.blocks
  in
  let touches (f : Mfunc.t) =
    List.exists
      (fun (b : Block.t) -> Array.exists Insn.touches_sp b.body)
      f.blocks
  in
  List.iter (fun (f : Mfunc.t) -> if touches f then Hashtbl.replace unsafe f.name ()) outlined;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Mfunc.t) ->
        if not (Hashtbl.mem unsafe f.name) then
          if
            List.exists
              (fun callee -> Hashtbl.mem unsafe callee || extern callee)
              (body_calls f)
          then begin
            Hashtbl.replace unsafe f.name ();
            changed := true
          end)
      outlined
  done;
  fun name -> Hashtbl.mem unsafe name || extern name

(* Per-point LR liveness, memoized per sequence id.  All occurrences of a
   sequence share one block, so the label-keyed table lookup inside
   {!Liveness.live_before} would repeat the same string hash tens of
   thousands of times per round; instead fetch each block's per-point array
   once and answer further probes with two array reads. *)
let lr_live_memo metas liveness_of =
  let cache = Array.make (Array.length metas) [||] in
  fun seq pos ->
    let arr =
      if cache.(seq) != [||] then cache.(seq)
      else begin
        let m = metas.(seq) in
        let lv = liveness_of m.sm_func in
        let arr = Liveness.points lv ~label:m.sm_block.Block.label in
        cache.(seq) <- arr;
        arr
      end
    in
    Regset.mem Reg.lr arr.(pos)

(* [lax] is thin-WPO's discovery mode: keep singleton occurrence lists and
   skip the local site-count and profitability bars.  A pattern seen once
   (or unprofitably often) in this shard may be seen in ten others — the
   global decision round applies the same two filters to the {e summed}
   counts instead. *)
let candidate_of_repeat ?(lax = false) options ~callee_sp_unsafe metas lr_live
    (r : Sufftree.Suffix_tree.repeat) : Candidate.t option =
  match r.occs with
  | [] -> None
  | [ _ ] when not lax -> None
  (* Pruning always keeps the first occurrence, so [first] is the head of
     the pruned walk too. *)
  | first :: _ ->
    let meta = metas.(first.seq) in
    let body = meta.sm_block.Block.body in
    let with_ret =
      meta.sm_has_ret && first.pos + r.length = Array.length body + 1
    in
    let insn_len = if with_ret then r.length - 1 else r.length in
    if insn_len = 0 then None
    else begin
      let strategy =
        if with_ret then
          if options.allow_ret then Some Candidate.Ends_with_ret else None
        else
          match body.(first.pos + insn_len - 1) with
          | Insn.Bl _ when options.allow_thunk -> Some Candidate.Thunk
          | _ -> Some Candidate.Plain_call
      in
      match strategy with
      | None -> None
      | Some strategy ->
        (* SP-relevant instructions: direct SP uses, plus calls to outlined
           frame fragments, which are not SP-neutral callees. *)
        let insn_touches_sp i =
          Insn.touches_sp i
          || (match i with Insn.Bl t -> callee_sp_unsafe t | _ -> false)
        in
        (* The final call of a thunk becomes a tail branch, so it is exempt
           from both the interior-call and the SP checks.  Scan the body
           array in place — building the instruction list for every repeat
           would dominate this phase (most repeats are rejected). *)
        let checked_hi =
          match strategy with
          | Candidate.Thunk -> first.pos + insn_len - 1
          | Candidate.Ends_with_ret | Candidate.Plain_call ->
            first.pos + insn_len
        in
        let exists_in_range pred =
          let rec go i = i < checked_hi && (pred body.(i) || go (i + 1)) in
          go first.pos
        in
        let touches_sp = exists_in_range insn_touches_sp in
        (* Calls before the end of the body clobber LR inside the outlined
           function, so it needs its own LR spill — impossible if the body
           is SP-relevant. *)
        let needs_lr_frame = exists_in_range Insn.is_call in
        if needs_lr_frame && touches_sp then None
        else
        let call_of (o : Sufftree.Suffix_tree.occurrence) =
          match strategy with
          | Candidate.Ends_with_ret | Candidate.Thunk -> Some Candidate.Call_free
          | Candidate.Plain_call ->
            if lr_live o.seq o.pos then
              if options.allow_save_lr && not touches_sp then
                Some Candidate.Call_save_lr
              else None
            else Some Candidate.Call_free
        in
        (* Count site kinds before allocating anything: most repeats fall to
           the profitability bar, and rejecting them from two integers is far
           cheaper than building their site records first. *)
        let n_free = ref 0 and n_save = ref 0 in
        fold_pruned r.occs r.length
          (fun () o ->
            match call_of o with
            | Some Candidate.Call_free -> incr n_free
            | Some Candidate.Call_save_lr -> incr n_save
            | None -> ())
          ();
        if !n_free + !n_save = 0 then None
        else if
          (not lax)
          && (!n_free + !n_save < 2
             || Cost_model.benefit_of_counts strategy ~needs_lr_frame
                  ~pattern_len:r.length ~n_free:!n_free ~n_save:!n_save
                < 1)
        then None
        else
          let rev_sites =
            fold_pruned r.occs r.length
              (fun acc (o : Sufftree.Suffix_tree.occurrence) ->
                match call_of o with
                | None -> acc
                | Some call ->
                  let m = metas.(o.seq) in
                  {
                    Candidate.func = m.sm_func.Mfunc.name;
                    block = m.sm_block.Block.label;
                    block_id = o.seq;
                    start = o.pos;
                    len = insn_len;
                    with_ret;
                    call;
                  }
                  :: acc)
              []
          in
          let sites = List.rev rev_sites in
          let insns = Array.to_list (Array.sub body first.pos insn_len) in
          Some
            {
              Candidate.insns;
              length = r.length;
              strategy;
              sites;
              needs_lr_frame;
              touches_sp;
            }
    end

let enumerate ?min_length ?(options = default_options) ?(all = false)
    ?extern_sp_unsafe ?pool (p : Program.t) =
  let min_length =
    match min_length with Some m -> m | None -> options.min_length
  in
  let imap = Instr_map.create () in
  let seqs, metas = build_sequences imap p in
  if seqs = [] then []
  else begin
    let liveness_cache : (string, Liveness.t) Hashtbl.t = Hashtbl.create 64 in
    let liveness_of (f : Mfunc.t) =
      match Hashtbl.find_opt liveness_cache f.name with
      | Some lv -> lv
      | None ->
        let lv = Liveness.compute f in
        Hashtbl.replace liveness_cache f.name lv;
        lv
    in
    let reps =
      match pool with
      | None ->
        let tree = Sufftree.Suffix_tree.build seqs in
        Sufftree.Suffix_tree.repeats ~min_length tree
      | Some pool ->
        let tree = Sufftree.Arena_tree.build ~pool seqs in
        Sufftree.Arena_tree.repeats ~min_length tree
    in
    let callee_sp_unsafe = sp_unsafe_callees ?extern:extern_sp_unsafe p in
    ignore imap;
    let lr_live = lr_live_memo metas liveness_of in
    List.filter_map
      (candidate_of_repeat ~lax:all options ~callee_sp_unsafe metas lr_live)
      reps
  end

let probe_windows ?(options = default_options) ?extern_sp_unsafe ~lengths
    (p : Program.t) =
  match
    List.sort_uniq Int.compare (List.filter (fun l -> l >= 2) lengths)
  with
  | [] -> []
  | lengths ->
    let imap = Instr_map.create () in
    let seqs, metas = build_sequences imap p in
    if seqs = [] then []
    else begin
      let liveness_cache : (string, Liveness.t) Hashtbl.t =
        Hashtbl.create 64
      in
      let liveness_of (f : Mfunc.t) =
        match Hashtbl.find_opt liveness_cache f.name with
        | Some lv -> lv
        | None ->
          let lv = Liveness.compute f in
          Hashtbl.replace liveness_cache f.name lv;
          lv
      in
      let callee_sp_unsafe = sp_unsafe_callees ?extern:extern_sp_unsafe p in
      let lr_live = lr_live_memo metas liveness_of in
      let out = ref [] in
      Array.iteri
        (fun s (m : seq_meta) ->
          let body = m.sm_block.Block.body in
          let n = Array.length body in
          let seq_len = n + if m.sm_has_ret then 1 else 0 in
          (* The suffix-tree path enforces per-instruction legality through
             the alphabet — illegal instructions get unique symbols and can
             never be part of a repeat.  Raw windows see the body directly,
             so the same rule must be applied by hand: [bad.(i)] counts
             illegal instructions in [body[0..i)], and any window touching
             one is skipped.  The virtual ret slot at [n] is always legal. *)
          let bad = Array.make (n + 1) 0 in
          for i = 0 to n - 1 do
            bad.(i + 1) <-
              bad.(i)
              + (match Legality.classify body.(i) with
                | Legality.Illegal -> 1
                | Legality.Legal -> 0)
          done;
          List.iter
            (fun len ->
              for pos = 0 to seq_len - len do
                let hi = min (pos + len) n in
                if bad.(hi) - bad.(pos) = 0 then
                  match
                    candidate_of_repeat ~lax:true options ~callee_sp_unsafe
                      metas lr_live
                      {
                        Sufftree.Suffix_tree.length = len;
                        occs = [ { Sufftree.Suffix_tree.seq = s; pos } ];
                      }
                  with
                  | Some c -> out := c :: !out
                  | None -> ()
              done)
            lengths)
        metas;
      List.rev !out
    end

(* --- Greedy selection order ------------------------------------------- *)

(* Candidates must be picked in an order independent of suffix-tree
   internals and interner symbol numbering, so that the from-scratch and
   incremental engines (and permuted-module builds of the same content)
   make identical greedy decisions.  Benefit descending, then the smallest
   site by (func, block, start), then pattern length.  A (site, length)
   pair pins down the pattern content, so two distinct candidates can
   never tie. *)
let min_site_key (c : Candidate.t) =
  List.fold_left
    (fun acc (s : Candidate.site) ->
      let k = (s.func, s.block, s.start) in
      match acc with Some k0 when k0 <= k -> acc | _ -> Some k)
    None c.sites

(* Sort keys are computed once per candidate (decorate/sort/undecorate):
   recomputing [min_site_key] inside the comparator would fold over every
   site list O(n log n) times. *)
type scored = {
  sc_benefit : int;
  sc_min_site : (string * string * int) option;
  sc_cand : Candidate.t;
}

let compare_scored s1 s2 =
  match Int.compare s2.sc_benefit s1.sc_benefit with
  | 0 -> (
    match compare s1.sc_min_site s2.sc_min_site with
    | 0 -> Int.compare s1.sc_cand.Candidate.length s2.sc_cand.Candidate.length
    | c -> c)
  | c -> c

let score_candidates cands =
  let scored =
    List.filter_map
      (fun c ->
        let b = Cost_model.benefit c in
        if b >= 1 then
          Some { sc_benefit = b; sc_min_site = min_site_key c; sc_cand = c }
        else None)
      cands
  in
  List.sort compare_scored scored

(* --- Rewriting --------------------------------------------------------- *)

type plan_entry = {
  pe_site : Candidate.site;
  pe_name : string;  (** outlined function to call *)
}

let save_lr_pre = Insn.Str (Reg.lr, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre })
let restore_lr_post = Insn.Ldr (Reg.lr, { Insn.base = Reg.SP; off = 16; mode = Insn.Post })

let rewrite_block entries (b : Block.t) =
  (* entries: disjoint, any order. *)
  let mine =
    List.sort
      (fun a b -> Int.compare a.pe_site.Candidate.start b.pe_site.Candidate.start)
      entries
  in
  let body = b.body in
  let out = ref [] in
  let term = ref b.term in
  let pos = ref 0 in
  List.iter
    (fun e ->
      let s = e.pe_site in
      for i = !pos to s.Candidate.start - 1 do
        out := body.(i) :: !out
      done;
      if s.with_ret then begin
        (* Consumes the ret terminator: branch to the outlined function. *)
        term := Block.Tail_call e.pe_name;
        pos := Array.length body
      end
      else begin
        (match s.call with
        | Candidate.Call_free -> out := Insn.Bl e.pe_name :: !out
        | Candidate.Call_save_lr ->
          out := restore_lr_post :: Insn.Bl e.pe_name :: save_lr_pre :: !out);
        pos := s.start + s.len
      end)
    mine;
  for i = !pos to Array.length body - 1 do
    out := body.(i) :: !out
  done;
  { b with body = Array.of_list (List.rev !out); term = !term }

let make_outlined_function ~name ~from_module (c : Candidate.t) =
  (* When the body performs interior calls, the outlined function must
     preserve the caller's return address across them. *)
  let frame body =
    if c.needs_lr_frame then (save_lr_pre :: body) @ [ restore_lr_post ]
    else body
  in
  let blocks =
    match c.strategy with
    | Candidate.Ends_with_ret ->
      [ Block.make ~label:"entry" (frame c.insns) Block.Ret ]
    | Candidate.Thunk -> (
      match List.rev c.insns with
      | Insn.Bl target :: rev_prefix ->
        [
          Block.make ~label:"entry"
            (frame (List.rev rev_prefix))
            (Block.Tail_call target);
        ]
      | _ -> assert false)
    | Candidate.Plain_call ->
      [ Block.make ~label:"entry" (frame c.insns) Block.Ret ]
  in
  Mfunc.make ~from_module ~is_outlined:true ~name blocks

(* Greedy site selection over int-indexed occupancy arrays (one lazily
   allocated [bool array] per sequence-table block, no tuple hashing per
   probe), then the program rewrite.  Shared by both engines. *)
let select_and_rewrite options (metas : seq_meta array) sorted (p : Program.t) =
  let nseq = Array.length metas in
  (* Slot [n] (one past the body) is the terminator, occupied by ret-ending
     patterns. *)
  let consumed : bool array option array = Array.make nseq None in
  let slots id =
    match consumed.(id) with
    | Some a -> a
    | None ->
      let n = Array.length metas.(id).sm_block.Block.body in
      let a = Array.make (n + 1) false in
      consumed.(id) <- Some a;
      a
  in
  let site_hi (s : Candidate.site) =
    if s.with_ret then s.start + s.len else s.start + s.len - 1
  in
  let site_free (s : Candidate.site) =
    let a = slots s.Candidate.block_id in
    let hi = site_hi s in
    let free = ref true in
    for i = s.start to hi do
      if a.(i) then free := false
    done;
    !free
  in
  let site_take (s : Candidate.site) =
    let a = slots s.Candidate.block_id in
    for i = s.start to site_hi s do
      a.(i) <- true
    done
  in
  let plans : plan_entry list array = Array.make nseq [] in
  let new_funcs = ref [] in
  let idx = ref 0 in
  let stats =
    ref { sequences_outlined = 0; functions_created = 0; outlined_bytes = 0; bytes_saved = 0 }
  in
  List.iter
    (fun { sc_cand = c; _ } ->
      let sites = List.filter site_free c.sites in
      let c' = { c with sites } in
      if Cost_model.profitable c' then begin
        let name =
          let scope = if options.scope_name = "" then "" else options.scope_name ^ "_" in
          Printf.sprintf "OUTLINED_FUNCTION_%s%d_%d" scope options.round !idx
        in
        incr idx;
        List.iter site_take sites;
        List.iter
          (fun (s : Candidate.site) ->
            plans.(s.block_id) <- { pe_site = s; pe_name = name } :: plans.(s.block_id))
          sites;
        let from_module =
          if options.scope_name = "" then "outlined" else options.scope_name
        in
        let f = make_outlined_function ~name ~from_module c' in
        new_funcs := f :: !new_funcs;
        stats :=
          {
            sequences_outlined = !stats.sequences_outlined + List.length sites;
            functions_created = !stats.functions_created + 1;
            outlined_bytes = !stats.outlined_bytes + Mfunc.size_bytes f;
            bytes_saved = !stats.bytes_saved + Cost_model.benefit c';
          }
      end)
    sorted;
  (* Group per-block plans by function so the rewrite does one hash probe
     per function; untouched functions are returned physically unchanged. *)
  let func_plans : (string, (string * plan_entry list) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let dirty_blocks = ref [] in
  for id = 0 to nseq - 1 do
    match plans.(id) with
    | [] -> ()
    | entries ->
      let m = metas.(id) in
      let fname = m.sm_func.Mfunc.name in
      let blabel = m.sm_block.Block.label in
      dirty_blocks := (fname, blabel) :: !dirty_blocks;
      let prev = Option.value ~default:[] (Hashtbl.find_opt func_plans fname) in
      Hashtbl.replace func_plans fname ((blabel, entries) :: prev)
  done;
  let rewrite_func (f : Mfunc.t) =
    match Hashtbl.find_opt func_plans f.name with
    | None -> f
    | Some blocks ->
      Mfunc.map_blocks
        (fun b ->
          match List.assoc_opt b.Block.label blocks with
          | None -> b
          | Some entries -> rewrite_block entries b)
        f
  in
  let new_funcs = List.rev !new_funcs in
  let p' = Program.replace_funcs p (List.map rewrite_func p.funcs @ new_funcs) in
  let dirty =
    {
      dirty_blocks = List.rev !dirty_blocks;
      dirty_new_funcs = List.map (fun (f : Mfunc.t) -> f.name) new_funcs;
    }
  in
  (p', !stats, dirty)

(* --- Decision-table application (thin-WPO phase 3) ---------------------- *)

(* Thin-WPO decides globally but rewrites per shard: the serial decision
   round hands every shard the same ranked assignment list, and each shard
   applies the assignments that name candidates it discovered locally.  The
   greedy overlap resolution is the same as [select_and_rewrite]'s, but the
   priority order and the outlined-symbol names are fixed by the caller
   (they come from the decision table, so they are identical whatever the
   worker count), and profitability is *not* re-checked against the
   locally surviving sites: the global decision is optimistic — other
   shards have already been rewritten against it, and the host must emit
   the body even if every local site was lost to overlap. *)

type assignment = {
  asg_cand : Candidate.t;
  asg_name : string;        (** decision-table symbol, stable across workers *)
  asg_rank : int;           (** global priority order of the decision *)
  asg_host : string option; (** [Some m]: this shard emits the body, with
                                [from_module = m] *)
}

(* Occupancy per (func, block label): thin-WPO phases work without the
   sequence table that [select_and_rewrite]'s int-indexed occupancy needs,
   and per-round site counts are small enough for string-keyed probes. *)
let make_occupancy (p : Program.t) =
  let block_len : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Mfunc.t) ->
      List.iter
        (fun (b : Block.t) ->
          Hashtbl.replace block_len (f.name, b.Block.label)
            (Array.length b.body))
        f.blocks)
    p.funcs;
  let consumed : (string * string, bool array) Hashtbl.t = Hashtbl.create 64 in
  let slots (s : Candidate.site) =
    let key = (s.Candidate.func, s.Candidate.block) in
    match Hashtbl.find_opt consumed key with
    | Some a -> a
    | None ->
      let n =
        match Hashtbl.find_opt block_len key with Some n -> n | None -> 0
      in
      let a = Array.make (n + 1) false in
      Hashtbl.replace consumed key a;
      a
  in
  let site_hi (s : Candidate.site) =
    if s.with_ret then s.start + s.len else s.start + s.len - 1
  in
  let site_free (s : Candidate.site) =
    let a = slots s in
    let free = ref true in
    for i = s.start to site_hi s do
      if a.(i) then free := false
    done;
    !free
  in
  let site_take (s : Candidate.site) =
    let a = slots s in
    for i = s.start to site_hi s do
      a.(i) <- true
    done
  in
  (site_free, site_take)

let apply_assignments (p : Program.t) (assignments : assignment list) =
  let site_free, site_take = make_occupancy p in
  let func_plans : (string, (string * plan_entry list) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_plan (s : Candidate.site) name =
    let cell =
      match Hashtbl.find_opt func_plans s.Candidate.func with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.replace func_plans s.Candidate.func c;
        c
    in
    let entry = { pe_site = s; pe_name = name } in
    match List.assoc_opt s.Candidate.block !cell with
    | Some _ ->
      cell :=
        List.map
          (fun (label, entries) ->
            if label = s.Candidate.block then (label, entry :: entries)
            else (label, entries))
          !cell
    | None -> cell := (s.Candidate.block, [ entry ]) :: !cell
  in
  let hosted = ref [] in
  let stats =
    ref
      {
        sequences_outlined = 0;
        functions_created = 0;
        outlined_bytes = 0;
        bytes_saved = 0;
      }
  in
  List.iter
    (fun a ->
      let c = a.asg_cand in
      let sites = List.filter site_free c.Candidate.sites in
      List.iter site_take sites;
      List.iter (fun s -> add_plan s a.asg_name) sites;
      let site_gain =
        List.fold_left
          (fun acc (s : Candidate.site) ->
            acc + Candidate.pattern_bytes c - Candidate.site_cost_bytes s.call)
          0 sites
      in
      let hosted_bytes =
        match a.asg_host with
        | None -> 0
        | Some from_module ->
          let f = make_outlined_function ~name:a.asg_name ~from_module c in
          hosted := (a.asg_rank, f) :: !hosted;
          Mfunc.size_bytes f
      in
      stats :=
        {
          sequences_outlined = !stats.sequences_outlined + List.length sites;
          functions_created =
            (!stats.functions_created
            + match a.asg_host with Some _ -> 1 | None -> 0);
          outlined_bytes = !stats.outlined_bytes + hosted_bytes;
          bytes_saved = !stats.bytes_saved + site_gain - hosted_bytes;
        })
    assignments;
  let rewrite_func (f : Mfunc.t) =
    match Hashtbl.find_opt func_plans f.name with
    | None -> f
    | Some blocks ->
      Mfunc.map_blocks
        (fun b ->
          match List.assoc_opt b.Block.label !blocks with
          | None -> b
          | Some entries -> rewrite_block entries b)
        f
  in
  let p' = Program.replace_funcs p (List.map rewrite_func p.funcs) in
  (p', List.rev !hosted, !stats)

(* --- Per-phase timing hooks -------------------------------------------- *)

let timed rp set f =
  match rp with
  | None -> f ()
  | Some rp ->
    let t0 = Unix.gettimeofday () in
    let r = f () in
    set rp (Unix.gettimeofday () -. t0);
    r

let set_seq rp d = rp.Profile.rp_seq_build <- rp.Profile.rp_seq_build +. d
let set_tree rp d = rp.Profile.rp_tree_build <- rp.Profile.rp_tree_build +. d
let set_enum rp d = rp.Profile.rp_enumerate <- rp.Profile.rp_enumerate +. d
let set_score rp d = rp.Profile.rp_score <- rp.Profile.rp_score +. d
let set_rewrite rp d = rp.Profile.rp_rewrite <- rp.Profile.rp_rewrite +. d

(* --- From-scratch engine ----------------------------------------------- *)

let run_round ?profile options (p : Program.t) =
  let rp = Option.map (fun pr -> Profile.new_round pr options.round) profile in
  let imap = Instr_map.create () in
  let seqs, metas = timed rp set_seq (fun () -> build_sequences imap p) in
  if seqs = [] then (p, { sequences_outlined = 0; functions_created = 0; outlined_bytes = 0; bytes_saved = 0 }, no_dirty)
  else begin
    let tree = timed rp set_tree (fun () -> Sufftree.Suffix_tree.build seqs) in
    let cands =
      timed rp set_enum (fun () ->
          let reps =
            Sufftree.Suffix_tree.repeats ~min_length:options.min_length tree
          in
          let callee_sp_unsafe = sp_unsafe_callees p in
          let liveness_cache : (string, Liveness.t) Hashtbl.t =
            Hashtbl.create 64
          in
          let liveness_of (f : Mfunc.t) =
            match Hashtbl.find_opt liveness_cache f.name with
            | Some lv -> lv
            | None ->
              let lv = Liveness.compute f in
              Hashtbl.replace liveness_cache f.name lv;
              lv
          in
          let lr_live = lr_live_memo metas liveness_of in
          List.filter_map
            (candidate_of_repeat options ~callee_sp_unsafe metas lr_live)
            reps)
    in
    let sorted = timed rp set_score (fun () -> score_candidates cands) in
    timed rp set_rewrite (fun () -> select_and_rewrite options metas sorted p)
  end

(* --- Incremental engine ------------------------------------------------ *)

type engine = {
  eng_imap : Instr_map.t;
  eng_seqs : (string, (string, int array) Hashtbl.t) Hashtbl.t;
      (** func -> block label -> interned symbol array, invalidated by the
          dirty set each round.  Two-level so the per-round walk hashes each
          function name once instead of allocating and hashing a
          (func, label) pair per block. *)
  eng_live : (string, Liveness.t) Hashtbl.t;
  eng_pool : Sufftree.Arena_tree.pool;
      (** backing store recycled across rounds; each round's tree dies when
          the next round builds *)
  eng_rewritten : (string * string, unit) Hashtbl.t;
      (** every (func, block) the rewriter dirtied during the current build.
          Within a build the per-round invalidation already dropped these,
          but later rounds re-cache them from their *post-rewrite* bodies; a
          fresh compile of the same source starts from the original bodies
          again, so a warm engine must drop them at the next build boundary
          (see [engine_begin_build]). *)
}

let create_engine () =
  {
    eng_imap = Instr_map.create ();
    eng_seqs = Hashtbl.create 1024;
    eng_live = Hashtbl.create 256;
    eng_pool = Sufftree.Arena_tree.create_pool ();
    eng_rewritten = Hashtbl.create 256;
  }

let reset_engine e =
  Hashtbl.reset e.eng_seqs;
  Hashtbl.reset e.eng_live;
  Hashtbl.reset e.eng_rewritten

(* Build-boundary invalidation for engines that outlive one build (the
   serve daemon).  The interner and arena pool are content-addressed and
   safe to share unconditionally; the per-block symbol arrays and liveness
   are keyed by (func, block label) and must be dropped whenever the name
   can rebind to different content:
   - functions absent from the incoming pre-outline program (outlined
     helpers from the previous build regenerate with the same names but
     possibly different bodies; deleted functions free their names);
   - functions from modules the caller reports changed;
   - blocks the previous build's rewriter touched (cached post-rewrite,
     while this build starts pre-rewrite). *)
let engine_begin_build e ~changed (p : Program.t) =
  let present = Hashtbl.create 512 in
  List.iter
    (fun (f : Mfunc.t) -> Hashtbl.replace present f.Mfunc.name f.from_module)
    p.Program.funcs;
  let stale_of tbl =
    Hashtbl.fold
      (fun name _ acc ->
        match Hashtbl.find_opt present name with
        | None -> name :: acc
        | Some m -> if changed m then name :: acc else acc)
      tbl []
  in
  List.iter
    (fun n ->
      Hashtbl.remove e.eng_seqs n;
      Hashtbl.remove e.eng_live n)
    (stale_of e.eng_seqs);
  List.iter (fun n -> Hashtbl.remove e.eng_live n) (stale_of e.eng_live);
  Hashtbl.iter
    (fun (fname, blabel) () ->
      (match Hashtbl.find_opt e.eng_seqs fname with
      | Some tbl -> Hashtbl.remove tbl blabel
      | None -> ());
      Hashtbl.remove e.eng_live fname)
    e.eng_rewritten;
  Hashtbl.reset e.eng_rewritten

(* Fault injection for the fuzz harness: when set, dirty blocks keep their
   stale cached sequences across rounds, so the incremental engine works on
   a corrupted view of the program.  The incremental-vs-scratch differential
   must catch the resulting divergence (see lib/fuzz). *)
let fault_skip_invalidation = ref false

let run_round_incremental ?profile engine options (p : Program.t) =
  let rp = Option.map (fun pr -> Profile.new_round pr options.round) profile in
  let seqs, metas =
    timed rp set_seq (fun () ->
        let seqs = ref [] and metas = ref [] in
        List.iter
          (fun (f : Mfunc.t) ->
            if not f.no_outline then begin
              let cache =
                match Hashtbl.find_opt engine.eng_seqs f.Mfunc.name with
                | Some tbl -> tbl
                | None ->
                  let tbl = Hashtbl.create 16 in
                  Hashtbl.replace engine.eng_seqs f.Mfunc.name tbl;
                  tbl
              in
              List.iter
                (fun (b : Block.t) ->
                  let has_ret = b.term = Block.Ret in
                  let n = Array.length b.body in
                  let len = if has_ret then n + 1 else n in
                  if len >= 1 then begin
                    let arr =
                      match Hashtbl.find_opt cache b.Block.label with
                      | Some arr -> arr
                      | None ->
                        let arr =
                          Instr_map.seq_of_block engine.eng_imap ~has_ret b.body
                        in
                        Hashtbl.replace cache b.Block.label arr;
                        arr
                    in
                    seqs := arr :: !seqs;
                    metas :=
                      { sm_func = f; sm_block = b; sm_has_ret = has_ret }
                      :: !metas
                  end)
                f.blocks
            end)
          p.funcs;
        (List.rev !seqs, Array.of_list (List.rev !metas)))
  in
  if seqs = [] then (p, { sequences_outlined = 0; functions_created = 0; outlined_bytes = 0; bytes_saved = 0 }, no_dirty)
  else begin
    let tree =
      timed rp set_tree (fun () ->
          Sufftree.Arena_tree.build ~pool:engine.eng_pool seqs)
    in
    let cands =
      timed rp set_enum (fun () ->
          let reps =
            Sufftree.Arena_tree.repeats ~min_length:options.min_length tree
          in
          let callee_sp_unsafe = sp_unsafe_callees p in
          let liveness_of (f : Mfunc.t) =
            match Hashtbl.find_opt engine.eng_live f.name with
            | Some lv -> lv
            | None ->
              let lv = Liveness.compute f in
              Hashtbl.replace engine.eng_live f.name lv;
              lv
          in
          let lr_live = lr_live_memo metas liveness_of in
          List.filter_map
            (candidate_of_repeat options ~callee_sp_unsafe metas lr_live)
            reps)
    in
    let sorted = timed rp set_score (fun () -> score_candidates cands) in
    let p', stats, dirty =
      timed rp set_rewrite (fun () -> select_and_rewrite options metas sorted p)
    in
    if not !fault_skip_invalidation then begin
      List.iter
        (fun ((fname, blabel) as key) ->
          Hashtbl.replace engine.eng_rewritten key ();
          (match Hashtbl.find_opt engine.eng_seqs fname with
          | Some tbl -> Hashtbl.remove tbl blabel
          | None -> ());
          Hashtbl.remove engine.eng_live fname)
        dirty.dirty_blocks
    end;
    (p', stats, dirty)
  end
