(** Per-instruction outlining legality, mirroring the AArch64 rules in
    LLVM's MachineOutliner:

    - instructions that read or write the link register cannot move into an
      outlined body (the call there redefines LR);
    - everything else in a block body is outlinable — including SP-relative
      accesses, because [BL] does not move SP on AArch64 (strategies that
      do adjust SP around the call are restricted separately, see
      {!Cost_model});
    - position-independent references ([ADR sym], [BL sym]) are legal since
      our symbols relocate. *)

type verdict =
  | Legal
  | Illegal

val classify : Machine.Insn.t -> verdict

val unsafe_outline_lr : bool ref
(** Fault-injection hook for the differential fuzzer's self-test: when set,
    the LR rule above is skipped, so LR-touching instructions become
    outlinable and repeated outlining silently corrupts return addresses.
    The fuzz harness flips this to prove it can catch and shrink a real
    outliner bug ([sizeopt fuzz --self-test]).  Never set it anywhere else. *)
