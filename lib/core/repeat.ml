let run ?(options = Outliner.default_options) ?profile
    ?(engine = `Incremental) ?use_engine ~rounds p =
  let eng =
    match (engine, use_engine) with
    | `Incremental, Some e -> Some e
    | `Incremental, None -> Some (Outliner.create_engine ())
    | `Scratch, _ -> None
  in
  let rec go round p acc =
    if round > rounds then (p, List.rev acc)
    else begin
      let opts = { options with Outliner.round = options.Outliner.round + round - 1 } in
      let p', stats, _dirty =
        match eng with
        | Some e -> Outliner.run_round_incremental ?profile e opts p
        | None -> Outliner.run_round ?profile opts p
      in
      if stats.Outliner.sequences_outlined = 0 then (p, List.rev acc)
      else go (round + 1) p' (stats :: acc)
    end
  in
  go 1 p []

let cumulative stats =
  let add (a : Outliner.round_stats) (b : Outliner.round_stats) =
    {
      Outliner.sequences_outlined = a.sequences_outlined + b.sequences_outlined;
      functions_created = a.functions_created + b.functions_created;
      outlined_bytes = a.outlined_bytes + b.outlined_bytes;
      bytes_saved = a.bytes_saved + b.bytes_saved;
    }
  in
  let zero =
    {
      Outliner.sequences_outlined = 0;
      functions_created = 0;
      outlined_bytes = 0;
      bytes_saved = 0;
    }
  in
  List.rev
    (snd
       (List.fold_left
          (fun (acc, out) s ->
            let acc = add acc s in
            (acc, acc :: out))
          (zero, []) stats))
