(** Mapping between machine instructions and suffix-tree symbols.

    Identical legal instructions share a symbol; every illegal instruction
    receives a fresh symbol so it can never participate in a repeat (the
    standard MachineOutliner trick).  A distinguished symbol stands for a
    block-terminating [ret]. *)

type t

val create : unit -> t
val symbol_of_insn : t -> Machine.Insn.t -> int
val ret_symbol : t -> int

val seq_of_block : t -> has_ret:bool -> Machine.Insn.t array -> int array
(** Interned symbol sequence for a whole block body ([has_ret] appends the
    ret symbol).  Memoized on block content hash so an interner kept alive
    across outline rounds re-derives sequences only for blocks whose content
    actually changed.  Illegal instructions still receive a fresh unique
    symbol on every call — only the legal (shareable) part of the result is
    cached — so cached sequences can never manufacture repeats through
    illegal instructions. *)

type desc =
  | Insn of Machine.Insn.t
  | Ret
  | Unique

val describe : t -> int -> desc
