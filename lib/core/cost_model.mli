(** The AArch64-flavoured outlining cost model (§II-C, §V).

    All quantities are bytes.  Outlining a pattern with [n] sites saves
    [n * pattern_bytes], costs [call_cost] at each site, and pays once for
    the outlined function body.  Profitability requires at least one byte
    of savings, as in the paper. *)

val outlined_function_bytes :
  Candidate.strategy -> needs_lr_frame:bool -> pattern_len:int -> int
(** Size of the function created for a pattern:
    - [Ends_with_ret]: the body including its [ret] — [4 * pattern_len];
    - [Thunk]: prefix plus a tail branch — [4 * pattern_len];
    - [Plain_call]: body plus an appended [ret] — [4 * (pattern_len + 1)];
    plus 8 bytes when the body contains interior calls and the outlined
    function must spill/reload LR around it ([needs_lr_frame]). *)

val benefit_of_counts :
  Candidate.strategy ->
  needs_lr_frame:bool ->
  pattern_len:int ->
  n_free:int ->
  n_save:int ->
  int
(** [benefit] expressed over site-kind counts ([n_free] {!Candidate.Call_free}
    sites, [n_save] {!Candidate.Call_save_lr} sites) instead of a site list,
    so the enumerator can reject unprofitable repeats before allocating any
    site records.  [benefit c] is exactly [benefit_of_counts] applied to
    [c]'s counts. *)

val benefit : Candidate.t -> int
(** Total bytes saved by outlining this candidate at all its sites; may be
    negative.  A candidate is worth outlining iff [benefit c >= 1]. *)

val profitable : Candidate.t -> bool
