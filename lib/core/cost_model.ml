let outlined_function_bytes strategy ~needs_lr_frame ~pattern_len =
  let frame = if needs_lr_frame then 8 else 0 in
  match (strategy : Candidate.strategy) with
  | Ends_with_ret | Thunk -> (4 * pattern_len) + frame
  | Plain_call -> (4 * (pattern_len + 1)) + frame

let benefit_of_counts strategy ~needs_lr_frame ~pattern_len ~n_free ~n_save =
  let inline_bytes = pattern_len * Machine.Insn.size_bytes in
  (n_free * (inline_bytes - Candidate.site_cost_bytes Candidate.Call_free))
  + (n_save * (inline_bytes - Candidate.site_cost_bytes Candidate.Call_save_lr))
  - outlined_function_bytes strategy ~needs_lr_frame ~pattern_len

let benefit (c : Candidate.t) =
  let n_free, n_save =
    List.fold_left
      (fun (f, s) (site : Candidate.site) ->
        match site.call with
        | Candidate.Call_free -> (f + 1, s)
        | Candidate.Call_save_lr -> (f, s + 1))
      (0, 0) c.sites
  in
  benefit_of_counts c.strategy ~needs_lr_frame:c.needs_lr_frame
    ~pattern_len:c.length ~n_free ~n_save

let profitable (c : Candidate.t) = List.length c.sites >= 2 && benefit c >= 1
