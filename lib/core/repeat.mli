(** Repeated machine outlining (§V-B): run the greedy outliner again on the
    rewritten program, so sequences that now contain calls to outlined
    functions — and the outlined functions themselves — become candidates.
    This is the paper's headline extension to LLVM's MachineOutliner. *)

val run :
  ?options:Outliner.options ->
  ?profile:Profile.t ->
  ?engine:[ `Incremental | `Scratch ] ->
  ?use_engine:Outliner.engine ->
  rounds:int ->
  Machine.Program.t ->
  Machine.Program.t * Outliner.round_stats list
(** [run ~rounds p] applies up to [rounds] rounds, stopping early when a
    round outlines nothing.  Returns the final program and per-round stats
    (length <= rounds).  Round numbers in generated names start from
    [options.round].

    [engine] selects the implementation (default [`Incremental], which
    carries interner/sequence/liveness caches between rounds via the dirty
    sets; [`Scratch] is the from-scratch reference).  Both produce
    byte-identical programs.  [profile] collects a per-round phase split.

    [use_engine] supplies a caller-owned incremental engine instead of a
    fresh one, letting warm state survive across whole builds (the serve
    daemon).  The caller must run {!Outliner.engine_begin_build} before
    each build; ignored under [`Scratch]. *)

val cumulative : Outliner.round_stats list -> Outliner.round_stats list
(** Per-round running totals, as presented in Table II of the paper. *)
