type strategy =
  | Ends_with_ret
  | Thunk
  | Plain_call

type site_call =
  | Call_free
  | Call_save_lr

type site = {
  func : string;
  block : string;
  block_id : int;
  start : int;
  len : int;
  with_ret : bool;
  call : site_call;
}

type t = {
  insns : Machine.Insn.t list;
  length : int;
  strategy : strategy;
  sites : site list;
  needs_lr_frame : bool;
  touches_sp : bool;
}

let site_cost_bytes = function
  | Call_free -> 4
  | Call_save_lr -> 12

let pattern_bytes c = c.length * Machine.Insn.size_bytes

let pp_strategy ppf = function
  | Ends_with_ret -> Format.pp_print_string ppf "ends-with-ret"
  | Thunk -> Format.pp_print_string ppf "thunk"
  | Plain_call -> Format.pp_print_string ppf "plain-call"

let pp ppf c =
  Format.fprintf ppf "pattern len=%d strategy=%a sites=%d@." c.length
    pp_strategy c.strategy (List.length c.sites);
  List.iter (fun i -> Format.fprintf ppf "    %a@." Machine.Insn.pp i) c.insns;
  if c.strategy = Ends_with_ret then Format.fprintf ppf "    ret@."
