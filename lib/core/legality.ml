type verdict =
  | Legal
  | Illegal

let unsafe_outline_lr = ref false

let classify i =
  if
    Machine.Insn.touches_lr i
    && (not (Machine.Insn.is_call i))
    && not !unsafe_outline_lr
  then Illegal
  else Legal
