(** Structured build-time profile for the outliner (§VII build-time
    discussion): per-round wall time split into the five phases of a round.
    Accumulated by {!Outliner.run_round} / the incremental engine when a
    profile is passed in, surfaced through {!Pipeline.result} and the
    [sizeopt build --profile] flag, and serialized into
    [BENCH_outline.json] by the bench harness. *)

type round_profile = {
  rp_round : int;
  mutable rp_seq_build : float;   (** interning blocks into symbol arrays *)
  mutable rp_tree_build : float;  (** suffix-tree construction *)
  mutable rp_enumerate : float;   (** repeat extraction + candidate legality *)
  mutable rp_score : float;       (** cost model + greedy ordering *)
  mutable rp_rewrite : float;     (** site selection + program rewrite *)
}

type t

val create : unit -> t

val new_round : t -> int -> round_profile
(** Append a fresh all-zero record for the given round number; the caller
    mutates its fields as phases finish. *)

val rounds : t -> round_profile list
(** Chronological order. *)

val round_total : round_profile -> float
val total : t -> float

val render : t -> string
(** Plain-text table, one line per round. *)

val to_json : t -> string
(** JSON array, one object per round — the [rounds_profile] field of the
    [BENCH_outline.json] schema (see README). *)
