type desc =
  | Insn of Machine.Insn.t
  | Ret
  | Unique

(* Block bodies can be long and [Hashtbl.hash] only inspects the first ~10
   meaningful nodes, which would collapse every block of a function into one
   bucket.  Hashing the whole body is too slow for the dirty-block refresh
   path, so sample up to 8 evenly-spaced instructions plus the length —
   enough spread that unequal blocks rarely share a bucket, while keeping
   the hash O(1) in body length.  Collisions only cost the structural
   [equal] probe. *)
module Block_key = struct
  type t = Machine.Insn.t array * bool

  let equal (a, ra) (b, rb) = Bool.equal ra rb && a = b

  let hash (body, has_ret) =
    let n = Array.length body in
    let h = ref ((n * 2) + Bool.to_int has_ret) in
    let samples = if n < 8 then n else 8 in
    let step = if samples = 0 then 1 else n / samples in
    for i = 0 to samples - 1 do
      h := (!h * 31) + Hashtbl.hash body.(i * step)
    done;
    !h land max_int
end

module Block_cache = Hashtbl.Make (Block_key)

type t = {
  shared : (Machine.Insn.t, int) Hashtbl.t;
  back : (int, desc) Hashtbl.t;
  mutable next : int;
  (* Content-hash template cache: (body, has_ret) -> symbol array with [-1]
     placeholders at illegal-instruction positions.  Templates survive across
     rounds; placeholders are re-materialized with fresh [Unique] ids on
     every use so identical illegal instructions never alias. *)
  blocks : int array Block_cache.t;
}

let create () =
  let t =
    {
      shared = Hashtbl.create 1024;
      back = Hashtbl.create 1024;
      next = 1;
      blocks = Block_cache.create 256;
    }
  in
  Hashtbl.replace t.back 0 Ret;
  t

let ret_symbol (_ : t) = 0

let fresh t desc =
  let id = t.next in
  t.next <- id + 1;
  Hashtbl.replace t.back id desc;
  id

let shared_symbol t insn =
  match Hashtbl.find_opt t.shared insn with
  | Some id -> id
  | None ->
    let id = fresh t (Insn insn) in
    Hashtbl.replace t.shared insn id;
    id

let symbol_of_insn t insn =
  match Legality.classify insn with
  | Legality.Illegal -> fresh t Unique
  | Legality.Legal -> shared_symbol t insn

let seq_of_block t ~has_ret body =
  let templ =
    let key = (body, has_ret) in
    match Block_cache.find_opt t.blocks key with
    | Some a -> a
    | None ->
      let n = Array.length body in
      let a = Array.make (if has_ret then n + 1 else n) 0 in
      (* slot [n] (if present) keeps the 0 from Array.make = ret symbol *)
      for i = 0 to n - 1 do
        a.(i) <-
          (match Legality.classify body.(i) with
          | Legality.Illegal -> -1
          | Legality.Legal -> shared_symbol t body.(i))
      done;
      Block_cache.replace t.blocks key a;
      a
  in
  if Array.exists (fun s -> s < 0) templ then begin
    let a = Array.copy templ in
    Array.iteri (fun i s -> if s < 0 then a.(i) <- fresh t Unique) a;
    a
  end
  else templ

let describe t id =
  match Hashtbl.find_opt t.back id with
  | Some d -> d
  | None -> invalid_arg "Instr_map.describe: unknown symbol"
