type round_profile = {
  rp_round : int;
  mutable rp_seq_build : float;
  mutable rp_tree_build : float;
  mutable rp_enumerate : float;
  mutable rp_score : float;
  mutable rp_rewrite : float;
}

type t = { mutable rev_rounds : round_profile list }

let create () = { rev_rounds = [] }

let new_round t round =
  let rp =
    {
      rp_round = round;
      rp_seq_build = 0.;
      rp_tree_build = 0.;
      rp_enumerate = 0.;
      rp_score = 0.;
      rp_rewrite = 0.;
    }
  in
  t.rev_rounds <- rp :: t.rev_rounds;
  rp

let rounds t = List.rev t.rev_rounds

let round_total rp =
  rp.rp_seq_build +. rp.rp_tree_build +. rp.rp_enumerate +. rp.rp_score
  +. rp.rp_rewrite

let total t = List.fold_left (fun acc rp -> acc +. round_total rp) 0. t.rev_rounds

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "round  seq-build  tree-build  enumerate  score   rewrite  total\n";
  List.iter
    (fun rp ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %9.4f  %10.4f  %9.4f  %6.4f  %7.4f  %6.4f\n"
           rp.rp_round rp.rp_seq_build rp.rp_tree_build rp.rp_enumerate
           rp.rp_score rp.rp_rewrite (round_total rp)))
    (rounds t);
  Buffer.add_string buf (Printf.sprintf "outliner total: %.4fs\n" (total t));
  Buffer.contents buf

let json_of_round rp =
  Printf.sprintf
    "{\"round\":%d,\"seq_build_s\":%.6f,\"tree_build_s\":%.6f,\"enumerate_s\":%.6f,\"score_s\":%.6f,\"rewrite_s\":%.6f,\"total_s\":%.6f}"
    rp.rp_round rp.rp_seq_build rp.rp_tree_build rp.rp_enumerate rp.rp_score
    rp.rp_rewrite (round_total rp)

let to_json t =
  "[" ^ String.concat "," (List.map json_of_round (rounds t)) ^ "]"
