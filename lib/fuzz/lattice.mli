(** The pipeline-config lattice and the differential oracle check.

    One generated Swiftlet program is compiled under every lattice point —
    {!Pipeline.mode} × outline rounds × each optional pass × the §VI
    [flag_semantics]/[data_order] link axes × the layout strategies
    (caller-affinity and the self-profiled profile-guided orders) — and
    every resulting machine program, executed under the placement it was
    linked with, must agree with the MIR reference interpreter on exit
    value and printed output.  Image size must also be monotonically
    non-increasing in the outline-round count, holding every other axis
    fixed.

    Legacy-semantics points are special-cased: a program whose modules
    carry {!Swiftgen.Mixed_compilers} flags is *required* to fail linking
    with a module-flag conflict there (and only there) — reproducing the
    §VI-2 spurious-conflict behaviour is part of the oracle.

    Thin-WPO rides on the same lattice: three [thin/r3/wN] points
    (workers 1, 2 and 4) run the sharded summary-exchange pipeline
    through the oracle, and two dedicated differentials check that the
    worker count never reaches the image (byte-identity across the three
    points) and that the thin image stays within a fixed bound of the
    full whole-program build (5% + 256 bytes of wp/r3).

    Two pass-manager differentials ride on every checked program:
    - each config point has a [/spec] twin whose config is the point's
      pipeline spec printed and parsed back ([Pipeline.spec_of_config] →
      [Passman.print] → [Passman.parse]); the twin build must be
      byte-identical to the flag-driven build (or fail identically);
    - the default configs (both modes) are built through the pass manager
      {e and} the preserved pre-refactor sequencing
      ([Pipeline.build_reference]) and must agree byte-for-byte — the
      transitional proof that the refactor is observationally exact.

    The compressed-size model ({!Linker.Compress}) is property-checked on
    the wp/r3 program: the estimate must be deterministic, never exceed
    the pure-literal bound, be content-total-invariant with the window
    disabled (every permutation agrees), and — when byte-identical
    function bodies exist — strictly beat the literal bound once the
    clones are placed adjacent. *)

type failure = {
  point : string;  (** label of the offending lattice point *)
  reason : string; (** what diverged, with both sides rendered *)
}

type verdict =
  | Pass of int       (** number of lattice points checked *)
  | Skip of string    (** front-end rejection or reference-oracle trap:
                          the program is outside the checkable domain *)
  | Fail of failure

val points : Pipeline.config -> (string * Pipeline.config) list
(** The labelled lattice, derived from a base config (normally
    [Pipeline.default_config]).  Exposed for the CLI's [--list-points]. *)

val attach_flags : Swiftgen.flag_style -> Ir.modul list -> Ir.modul list
(** Give each module an ["objc_gc"] flag in the requested style. *)

val check : ?verify_each:bool -> Swiftgen.program -> verdict
(** Compile, run the reference oracle, sweep the lattice (spec twins and
    the transition differential included).  [verify_each] additionally
    runs the stage invariants after every pass application at every
    point ([sizeopt fuzz --verify-each], the CI smoke configuration). *)

val check_thin : Swiftgen.program -> verdict
(** The thin-WPO slice of {!check}: reference oracle, the three
    [thin/r3/wN] points with their spec twins, and the two thin
    differentials — nothing else.  Cheap enough for the self-test's
    fault-injection loop, where the shrinker re-checks the program
    after every deletion attempt. *)

val check_gmerge : Swiftgen.program -> verdict
(** The global-merge slice: reference oracle, then round-0 [gmerge] points
    in per-module, whole-program and thin (workers 1 and 2) modes, with
    the thin pair required byte-identical.  This is what the self-test's
    dropped-rollback fault phase ({!Merge.fault_drop_rollback}) hunts and
    shrinks with: the fault manufactures fingerprint collisions and skips
    the serial confirmation round, so an unequal pair of functions gets
    merged and the oracle (or the validator) trips. *)

val check_serve : Swiftgen.program -> verdict
(** The serve slice: replay the program plus two single-module edits and a
    verbatim retry through one warm {!Serve.Server}, requiring every served
    image byte-identical to a from-scratch build of the same request and
    the retry to answer from the result cache with the previous bytes.
    This differential also rides on every {!check}; the standalone entry
    point is what the self-test's stale-cache fault phase
    ({!Serve.Server.fault_stale_cache_entry}) hunts and shrinks with. *)

val check_machine : Machine.Program.t -> verdict
(** Direct outliner stress for generated machine programs: the
    uninstrumented interpreter run is the oracle; {!Outcore.Repeat.run}
    at 1/3/5 rounds — with and without pre-canonicalization — must
    preserve it, keep {!Machine.Program.validate} happy, and shrink code
    size monotonically in the round count. *)
