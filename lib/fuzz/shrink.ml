(* Generic greedy fixpoint: repeatedly try candidate reductions, keep any
   that still fail, stop when a full sweep makes no progress or the check
   budget runs out. *)
let fixpoint ~max_checks ~candidates ~still_fails p0 f0 =
  let checks = ref 0 in
  let cur = ref p0 and fail = ref f0 in
  let progress = ref true in
  while !progress && !checks < max_checks do
    progress := false;
    let cands = candidates !cur in
    List.iter
      (fun reduce ->
        if !checks < max_checks then
          match reduce !cur with
          | None -> ()
          | Some q -> (
            incr checks;
            match still_fails q with
            | Some f ->
              cur := q;
              fail := f;
              progress := true
            | None -> ()))
      cands
  done;
  (!cur, !fail)

(* --- Swiftlet -------------------------------------------------------------- *)

let swiftlet_against ?(max_checks = 400) ~check p f0 =
  let still_fails q =
    match check q with
    | Lattice.Fail f -> Some f
    | _ -> None
  in
  let candidates (p : Swiftgen.program) =
    (* Delete from the back first: later nodes are more often leaves, and
       removing a leaf never invalidates earlier indices' meaning for the
       *next* candidate because every candidate re-reads the current
       program. *)
    List.init (Swiftgen.count_nodes p) (fun i q ->
        Swiftgen.delete_node q (Swiftgen.count_nodes q - 1 - i))
  in
  fixpoint ~max_checks ~candidates ~still_fails p f0

let swiftlet ?max_checks ?(verify_each = false) p f0 =
  swiftlet_against ?max_checks ~check:(Lattice.check ~verify_each) p f0

(* --- machine --------------------------------------------------------------- *)

let validate_opt p =
  match Machine.Program.validate p with Ok () -> Some p | Error _ -> None

let delete_func name (p : Machine.Program.t) =
  if name = "main" then None
  else
    let funcs = List.filter (fun (f : Machine.Mfunc.t) -> f.name <> name) p.funcs in
    if List.length funcs = List.length p.funcs then None
    else validate_opt { p with funcs }

let map_func name fn (p : Machine.Program.t) =
  let changed = ref false in
  let funcs =
    List.map
      (fun (f : Machine.Mfunc.t) ->
        if f.name = name then
          match fn f with
          | Some f' ->
            changed := true;
            f'
          | None -> f
        else f)
      p.funcs
  in
  if !changed then validate_opt { p with funcs } else None

let delete_block fname label p =
  map_func fname
    (fun f ->
      let blocks =
        List.filter (fun (b : Machine.Block.t) -> b.label <> label) f.blocks
      in
      if blocks = [] || List.length blocks = List.length f.blocks then None
      else Some { f with blocks })
    p

let delete_insn fname label idx p =
  map_func fname
    (fun f ->
      let changed = ref false in
      let blocks =
        List.map
          (fun (b : Machine.Block.t) ->
            if b.label = label && idx < Array.length b.body then begin
              changed := true;
              let body =
                Array.init
                  (Array.length b.body - 1)
                  (fun i -> if i < idx then b.body.(i) else b.body.(i + 1))
              in
              { b with body }
            end
            else b)
          f.blocks
      in
      if !changed then Some { f with blocks } else None)
    p

(* Turn a conditional terminator into one of its straight branches: this is
   what unlocks deleting the branched-to blocks afterwards. *)
let simplify_term fname label which p =
  map_func fname
    (fun f ->
      let changed = ref false in
      let blocks =
        List.map
          (fun (b : Machine.Block.t) ->
            if b.label <> label then b
            else
              match b.term with
              | Machine.Block.Bcond (_, taken, fall)
              | Machine.Block.Cbz (_, taken, fall)
              | Machine.Block.Cbnz (_, taken, fall) ->
                changed := true;
                { b with term = Machine.Block.B (if which then taken else fall) }
              | _ -> b)
          f.blocks
      in
      if !changed then Some { f with blocks } else None)
    p

(* Retarget one call to a different defined function, so intermediate
   frames in a deep call chain can then be deleted outright. *)
let retarget_call fname label idx target p =
  map_func fname
    (fun f ->
      let changed = ref false in
      let blocks =
        List.map
          (fun (b : Machine.Block.t) ->
            if b.label = label && idx < Array.length b.body then
              match b.body.(idx) with
              | Machine.Insn.Bl callee when callee <> target ->
                changed := true;
                let body = Array.copy b.body in
                body.(idx) <- Machine.Insn.Bl target;
                { b with body }
              | _ -> b
            else b)
          f.blocks
      in
      if !changed then Some { f with blocks } else None)
    p

(* Merge a [B target] block with its target when nothing else branches
   there: collapses the label/branch scaffolding that generated programs
   carry, which matters for reproducer line counts. *)
let merge_block fname label p =
  map_func fname
    (fun f ->
      let ref_count l =
        List.fold_left
          (fun acc (b : Machine.Block.t) ->
            acc
            + List.length
                (List.filter (String.equal l) (Machine.Block.successors b.term)))
          0 f.blocks
      in
      match
        List.find_opt (fun (b : Machine.Block.t) -> b.label = label) f.blocks
      with
      | Some ({ term = Machine.Block.B target; _ } as b)
        when target <> label && ref_count target = 1 -> (
        match
          List.find_opt (fun (x : Machine.Block.t) -> x.label = target) f.blocks
        with
        | Some bx ->
          let merged =
            { b with body = Array.append b.body bx.body; term = bx.term }
          in
          let blocks =
            List.filter_map
              (fun (x : Machine.Block.t) ->
                if x.label = label then Some merged
                else if x.label = target then None
                else Some x)
              f.blocks
          in
          Some { f with blocks }
        | None -> None)
      | _ -> None)
    p

let delete_data name (p : Machine.Program.t) =
  let data =
    List.filter (fun (d : Machine.Dataobj.t) -> d.name <> name) p.data
  in
  if List.length data = List.length p.data then None
  else validate_opt { p with data }

let machine ?(max_checks = 900) p f0 =
  let still_fails q =
    match Lattice.check_machine q with Lattice.Fail f -> Some f | _ -> None
  in
  let candidates (p : Machine.Program.t) =
    let fns = List.concat_map
        (fun (f : Machine.Mfunc.t) -> [ delete_func f.name ])
        p.funcs
    in
    let blocks =
      List.concat_map
        (fun (f : Machine.Mfunc.t) ->
          List.map
            (fun (b : Machine.Block.t) -> delete_block f.name b.label)
            f.blocks)
        p.funcs
    in
    let insns =
      List.concat_map
        (fun (f : Machine.Mfunc.t) ->
          List.concat_map
            (fun (b : Machine.Block.t) ->
              (* Back to front, so earlier indices stay valid as the body
                 shrinks across accepted deletions. *)
              List.init (Array.length b.body) (fun i ->
                  delete_insn f.name b.label (Array.length b.body - 1 - i)))
            f.blocks)
        p.funcs
    in
    let terms =
      List.concat_map
        (fun (f : Machine.Mfunc.t) ->
          List.concat_map
            (fun (b : Machine.Block.t) ->
              match b.term with
              | Machine.Block.Bcond _ | Machine.Block.Cbz _
              | Machine.Block.Cbnz _ ->
                [ simplify_term f.name b.label false;
                  simplify_term f.name b.label true ]
              | _ -> [])
            f.blocks)
        p.funcs
    in
    let fn_names = List.map (fun (f : Machine.Mfunc.t) -> f.name) p.funcs in
    let retargets =
      List.concat_map
        (fun (f : Machine.Mfunc.t) ->
          List.concat_map
            (fun (b : Machine.Block.t) ->
              List.concat
                (List.mapi
                   (fun i insn ->
                     match insn with
                     | Machine.Insn.Bl callee when callee <> "print_i64" ->
                       List.filter_map
                         (fun t ->
                           if t <> callee && t <> "main" then
                             Some (retarget_call f.name b.label i t)
                           else None)
                         fn_names
                     | _ -> [])
                   (Array.to_list b.body)))
            f.blocks)
        p.funcs
    in
    let merges =
      List.concat_map
        (fun (f : Machine.Mfunc.t) ->
          List.filter_map
            (fun (b : Machine.Block.t) ->
              match b.term with
              | Machine.Block.B _ -> Some (merge_block f.name b.label)
              | _ -> None)
            f.blocks)
        p.funcs
    in
    let datas =
      List.map (fun (d : Machine.Dataobj.t) -> delete_data d.name) p.data
    in
    (* Deleting one copy of a repeated instruction kills the repeat (and
       with it the failure); deleting both copies keeps the pattern alive
       one instruction shorter.  Quadratic, so only on small programs. *)
    let pairs =
      if Machine.Program.insn_count p > 150 then []
      else begin
        let sites = ref [] in
        List.iter
          (fun (f : Machine.Mfunc.t) ->
            List.iter
              (fun (b : Machine.Block.t) ->
                Array.iteri
                  (fun i insn -> sites := (f.name, b.label, i, insn) :: !sites)
                  b.body)
              f.blocks)
          p.funcs;
        let sites = !sites in
        List.concat_map
          (fun (f1, l1, i1, insn1) ->
            List.filter_map
              (fun (f2, l2, i2, insn2) ->
                let same_slot = f1 = f2 && l1 = l2 in
                let ordered =
                  if same_slot then i1 > i2
                  else (f1, l1, i1) < (f2, l2, i2)
                in
                if ordered && Machine.Insn.equal insn1 insn2 then
                  Some
                    (fun p ->
                      (* Higher index first within a block, so the second
                         deletion's index is still valid. *)
                      match delete_insn f1 l1 i1 p with
                      | None -> None
                      | Some p' -> delete_insn f2 l2 i2 p')
                else None)
              sites)
          sites
      end
    in
    fns @ blocks @ insns @ terms @ retargets @ merges @ datas @ pairs
  in
  fixpoint ~max_checks ~candidates ~still_fails p f0
