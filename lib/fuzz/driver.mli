(** The fuzzing loop and the harness self-test. *)

type stats = {
  programs : int;        (** generated (Swiftlet + machine) *)
  skipped : int;         (** outside the checkable domain (see {!Lattice}) *)
  points_checked : int;  (** lattice points that ran and agreed *)
}

val fuzz :
  ?log:(string -> unit) ->
  ?verify_each:bool ->
  seed:int ->
  count:int ->
  fuel:int ->
  unit ->
  (stats, string) result
(** Generate [count] programs from [seed] (three Swiftlet programs to one
    machine program) and sweep each across its lattice.  On the first
    divergence the failing case is shrunk and [Error report] returns the
    reduced source, the offending lattice point and both traces — the
    report's seed line reproduces the run bit-for-bit.  [verify_each]
    turns on per-pass invariant checking at every Swiftlet lattice
    point. *)

val self_test : ?log:(string -> unit) -> seed:int -> unit -> (string, string) result
(** Prove the harness catches real outliner bugs, one injected fault at a
    time: first flip {!Outcore.Legality.unsafe_outline_lr} and fuzz machine
    programs until the corrupted-LR divergence appears, then flip
    {!Outcore.Outliner.fault_skip_invalidation} so the incremental engine
    keeps stale dirty-block caches and require the incremental-vs-scratch
    differential to flag the divergence, then flip
    {!Thinwpo.Summary.fault_truncate_hash} so thin-WPO's decision table
    merges colliding patterns and require the thin lattice differentials
    ({!Lattice.check_thin}) to flag the corrupted rewrite, and finally
    flip {!Serve.Server.fault_stale_cache_entry} so the serve daemon's
    result cache ignores module content and require the serve-vs-cold
    replay differential ({!Lattice.check_serve}) to flag the stale
    bytes.  Each failure is shrunk and must fit in a small reproducer.
    [Ok report] carries all four shrunk reproducers; [Error] means the
    harness failed to catch or shrink a bug. *)
