type stats = {
  programs : int;
  skipped : int;
  points_checked : int;
}

let null_log _ = ()

(* Every program gets its own child rng, so a failure reproduces from
   (seed, index) alone no matter how much the generators drift between
   runs. *)
let rng_for ~seed ~index = Random.State.make [| seed; index |]

let swiftlet_report ~seed ~index p (f : Lattice.failure) =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "=== fuzz divergence (swiftlet) ===\n";
  Printf.bprintf buf "reproduce: sizeopt fuzz --seed %d --count %d  (program #%d)\n"
    seed (index + 1) index;
  Printf.bprintf buf "lattice point: %s\n" f.point;
  Printf.bprintf buf "%s\n" f.reason;
  Printf.bprintf buf "--- reduced program (%d lines) ---\n%s"
    (Swiftgen.source_lines p) (Swiftgen.print_source p);
  Buffer.contents buf

let machine_report ~seed ~index p (f : Lattice.failure) =
  let src = Machine.Asm_printer.to_source p in
  let lines =
    String.split_on_char '\n' src
    |> List.filter (fun l -> String.trim l <> "")
    |> List.length
  in
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "=== fuzz divergence (machine) ===\n";
  Printf.bprintf buf "reproduce: sizeopt fuzz --seed %d --count %d  (program #%d)\n"
    seed (index + 1) index;
  Printf.bprintf buf "lattice point: %s\n" f.point;
  Printf.bprintf buf "%s\n" f.reason;
  Printf.bprintf buf "--- reduced program (%d lines) ---\n%s" lines src;
  Buffer.contents buf

let fuzz ?(log = null_log) ?(verify_each = false) ~seed ~count ~fuel () =
  let skipped = ref 0 and points = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < count do
    let index = !i in
    let st = rng_for ~seed ~index in
    (* Three Swiftlet programs to one direct machine program. *)
    if index mod 4 = 3 then begin
      let p = Machgen.generate st ~fuel in
      match Lattice.check_machine p with
      | Lattice.Pass n -> points := !points + n
      | Lattice.Skip reason ->
        incr skipped;
        log (Printf.sprintf "#%d skipped (machine): %s" index reason)
      | Lattice.Fail f ->
        log (Printf.sprintf "#%d FAILED (machine) at %s; shrinking..." index
               f.point);
        let p', f' = Shrink.machine p f in
        failure := Some (machine_report ~seed ~index p' f')
    end
    else begin
      let p = Swiftgen.generate st ~fuel in
      match Lattice.check ~verify_each p with
      | Lattice.Pass n -> points := !points + n
      | Lattice.Skip reason ->
        incr skipped;
        log (Printf.sprintf "#%d skipped: %s" index reason)
      | Lattice.Fail f ->
        log (Printf.sprintf "#%d FAILED at %s; shrinking..." index f.point);
        let p', f' = Shrink.swiftlet ~verify_each p f in
        failure := Some (swiftlet_report ~seed ~index p' f')
    end;
    incr i
  done;
  match !failure with
  | Some report -> Error report
  | None -> Ok { programs = !i; skipped = !skipped; points_checked = !points }

(* --- self-test --------------------------------------------------------------- *)

let non_blank_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* One fault-injection phase: flip [flag], fuzz machine programs until the
   divergence appears, shrink it, and demand a small reproducer that still
   fails.  Each fault uses its own seed salt so the two phases explore
   independent program streams. *)
let fault_phase ?(log = null_log) ~seed ~salt ~flag ~fault_name
    ~max_reproducer_lines () =
  let max_attempts = 100 in
  flag := true;
  Fun.protect
    ~finally:(fun () -> flag := false)
    (fun () ->
      let found = ref None in
      let attempt = ref 0 in
      while !found = None && !attempt < max_attempts do
        let index = !attempt in
        let st = rng_for ~seed:(seed + salt) ~index in
        let p = Machgen.generate st ~fuel:8 in
        (match Lattice.check_machine p with
        | Lattice.Fail f ->
          log
            (Printf.sprintf
               "injected %s bug caught on attempt %d at %s; shrinking..."
               fault_name index f.point);
          found := Some (p, f)
        | Lattice.Pass _ | Lattice.Skip _ -> ());
        incr attempt
      done;
      match !found with
      | None ->
        Error
          (Printf.sprintf
             "self-test: the injected %s bug was NOT caught in %d random \
              machine programs"
             fault_name max_attempts)
      | Some (p, f) -> (
        let p', f' = Shrink.machine p f in
        let src = Machine.Asm_printer.to_source p' in
        let lines = non_blank_lines src in
        if lines > max_reproducer_lines then
          Error
            (Printf.sprintf
               "self-test: %s reproducer still %d lines after shrinking \
                (want <= %d)\n--- program ---\n%s"
               fault_name lines max_reproducer_lines src)
        else
          match Lattice.check_machine p' with
          | Lattice.Fail _ ->
            Ok
              (Printf.sprintf
                 "injected %s bug caught and shrunk to %d lines\n\
                  offending point: %s\n\
                  %s\n\
                  --- reproducer ---\n\
                  %s"
                 fault_name lines f'.point f'.reason src)
          | _ ->
            Error
              (Printf.sprintf
                 "self-test: shrunk %s reproducer no longer fails (unsound \
                  shrink)"
                 fault_name)))

(* Faults that need front-end programs (thin-WPO shards by module; the
   serve daemon replays source edits) die in their own differential slice,
   so their phases generate Swiftlet programs and run only [check] — the
   slice the fault must trip — both while hunting and while shrinking; a
   full lattice sweep per deletion attempt would dominate the self-test. *)
let swiftlet_fault_phase ?(log = null_log) ~seed ~salt ~flag ~fault_name
    ~check ~max_reproducer_lines () =
  let max_attempts = 100 in
  flag := true;
  Fun.protect
    ~finally:(fun () -> flag := false)
    (fun () ->
      let found = ref None in
      let attempt = ref 0 in
      while !found = None && !attempt < max_attempts do
        let index = !attempt in
        let st = rng_for ~seed:(seed + salt) ~index in
        let p = Swiftgen.generate st ~fuel:10 in
        (match check p with
        | Lattice.Fail f ->
          log
            (Printf.sprintf
               "injected %s bug caught on attempt %d at %s; shrinking..."
               fault_name index f.point);
          found := Some (p, f)
        | Lattice.Pass _ | Lattice.Skip _ -> ());
        incr attempt
      done;
      match !found with
      | None ->
        Error
          (Printf.sprintf
             "self-test: the injected %s bug was NOT caught in %d random \
              Swiftlet programs"
             fault_name max_attempts)
      | Some (p, f) -> (
        (* Each slice check builds the program several times over, so a
           full 400-check shrink budget would cost minutes; 150 checks
           reaches the same one-screen reproducer on tiny fuel-10
           programs. *)
        let p', f' = Shrink.swiftlet_against ~max_checks:150 ~check p f in
        let lines = Swiftgen.source_lines p' in
        if lines > max_reproducer_lines then
          Error
            (Printf.sprintf
               "self-test: %s reproducer still %d lines after shrinking \
                (want <= %d)\n--- program ---\n%s"
               fault_name lines max_reproducer_lines
               (Swiftgen.print_source p'))
        else
          match check p' with
          | Lattice.Fail _ ->
            Ok
              (Printf.sprintf
                 "injected %s bug caught and shrunk to %d lines\n\
                  offending point: %s\n\
                  %s\n\
                  --- reproducer ---\n\
                  %s"
                 fault_name lines f'.point f'.reason
                 (Swiftgen.print_source p'))
          | _ ->
            Error
              (Printf.sprintf
                 "self-test: shrunk %s reproducer no longer fails (unsound \
                  shrink)"
                 fault_name)))

let self_test ?(log = null_log) ~seed () =
  (* Phase 1: the LR-legality fault — execution-oracle divergence. *)
  match
    fault_phase ~log ~seed ~salt:7919
      ~flag:Outcore.Legality.unsafe_outline_lr ~fault_name:"LR-legality"
      ~max_reproducer_lines:30 ()
  with
  | Error _ as e -> e
  | Ok report1 -> (
    (* Phase 2: corrupt the incremental engine's dirty-set invalidation so
       it outlines from stale cached sequences; the incremental-vs-scratch
       differential must catch the stale-cache divergence. *)
    match
      fault_phase ~log ~seed ~salt:104729
        ~flag:Outcore.Outliner.fault_skip_invalidation
        ~fault_name:"stale-dirty-set" ~max_reproducer_lines:40 ()
    with
    | Error _ as e -> e
    | Ok report2 -> (
      (* Phase 3: truncate thin-WPO's summary content hashes to six bits
         so unrelated patterns collide in the global decision table and
         shards rewrite call sites against the wrong hosted body; the
         thin lattice differentials must catch the corruption. *)
      match
        swiftlet_fault_phase ~log ~seed ~salt:224737
          ~flag:Thinwpo.Summary.fault_truncate_hash
          ~fault_name:"summary-hash-truncation" ~check:Lattice.check_thin
          ~max_reproducer_lines:60 ()
      with
      | Error _ as e -> e
      | Ok report3 -> (
        (* Phase 4: drop the module-content component of the serve
           daemon's result-cache key, so an edited app hits the previous
           build's image; the serve-vs-cold replay differential must
           catch the stale bytes. *)
        match
          swiftlet_fault_phase ~log ~seed ~salt:1299709
            ~flag:Serve.Server.fault_stale_cache_entry
            ~fault_name:"stale-serve-cache" ~check:Lattice.check_serve
            ~max_reproducer_lines:60 ()
        with
        | Error _ as e -> e
        | Ok report4 -> (
          (* Phase 5: break the block splitter's elision test so it
             judges adjacency in the pre-split block order and drops
             branches layout must materialize; the stitch differential in
             check_machine must catch the dangling fallthrough, via
             Program.validate or oracle divergence. *)
          match
            fault_phase ~log ~seed ~salt:15485863
              ~flag:Blocklayout.fault_drop_materialized_branch
              ~fault_name:"dropped-materialized-branch"
              ~max_reproducer_lines:40 ()
          with
          | Error _ as e -> e
          | Ok report5 -> (
            (* Phase 6: truncate global-merge fingerprints to six bits so
               unequal functions land in one optimistic group AND skip the
               serial confirmation round that exists to reject exactly
               those groups; the gmerge slice must catch the surviving
               bad merge via the validator or oracle divergence. *)
            match
              swiftlet_fault_phase ~log ~seed ~salt:32452843
                ~flag:Merge.fault_drop_rollback
                ~fault_name:"dropped-merge-rollback"
                ~check:Lattice.check_gmerge ~max_reproducer_lines:60 ()
            with
            | Error _ as e -> e
            | Ok report6 ->
              Ok
                (report1 ^ "\n\n" ^ report2 ^ "\n\n" ^ report3 ^ "\n\n"
               ^ report4 ^ "\n\n" ^ report5 ^ "\n\n" ^ report6))))))
