(** Minimization of failing fuzz cases by greedy deletion.

    Swiftlet programs shrink by deleting AST print-nodes
    ({!Swiftgen.delete_node}); a deletion that breaks scoping or typing
    simply fails to compile, which {!Lattice.check} reports as [Skip], so
    it is rejected like any deletion that stops failing.  Machine programs
    shrink by deleting functions, blocks and instructions, with
    {!Machine.Program.validate} as the structural gate.  Both run to a
    greedy fixpoint under a check budget. *)

val swiftlet :
  ?max_checks:int ->
  ?verify_each:bool ->
  Swiftgen.program ->
  Lattice.failure ->
  Swiftgen.program * Lattice.failure
(** [swiftlet p f] assumes [Lattice.check p = Fail f] and returns a minimal
    still-failing program with its (possibly different) failure.
    [verify_each] must match the flag the failure was found under. *)

val swiftlet_against :
  ?max_checks:int ->
  check:(Swiftgen.program -> Lattice.verdict) ->
  Swiftgen.program ->
  Lattice.failure ->
  Swiftgen.program * Lattice.failure
(** {!swiftlet} against an arbitrary check — the self-test shrinks its
    thin-WPO fault reproducer against {!Lattice.check_thin}, which is two
    orders of magnitude cheaper per deletion attempt than the full
    lattice sweep. *)

val machine :
  ?max_checks:int ->
  Machine.Program.t ->
  Lattice.failure ->
  Machine.Program.t * Lattice.failure
(** Same contract against {!Lattice.check_machine}. *)
