type failure = {
  point : string;
  reason : string;
}

type verdict =
  | Pass of int
  | Skip of string
  | Fail of failure

(* --- lattice points -------------------------------------------------------- *)

let pass_combos =
  [
    ("plain", fun (c : Pipeline.config) -> c);
    ("nodce", fun c -> { c with Pipeline.run_dce = false });
    ("sil", fun c -> { c with Pipeline.run_sil_outline = true });
    ("merge", fun c -> { c with Pipeline.run_merge_functions = true });
    ("fmsa", fun c -> { c with Pipeline.run_fmsa = true });
    ("gmerge", fun c -> { c with Pipeline.run_global_merge = true });
    ("canon", fun c -> { c with Pipeline.run_canonicalize = true });
    ( "all",
      fun c ->
        {
          c with
          Pipeline.run_sil_outline = true;
          run_merge_functions = true;
          run_fmsa = true;
          run_global_merge = true;
          run_canonicalize = true;
        } );
  ]

let points base =
  let base =
    {
      base with
      Pipeline.flag_semantics = Link.Attributes;
      data_order = Link.Module_preserving;
      outlined_layout = `Append;
      layout_profile = None;
    }
  in
  let modes = [ ("pm", Pipeline.Per_module); ("wp", Pipeline.Whole_program) ] in
  let rounds = [ 0; 1; 3 ] in
  let main =
    List.concat_map
      (fun (mname, mode) ->
        List.concat_map
          (fun r ->
            List.map
              (fun (pname, f) ->
                ( Printf.sprintf "%s/r%d/%s" mname r pname,
                  f { base with Pipeline.mode; outline_rounds = r } ))
              pass_combos)
          rounds)
      modes
  in
  let wp3 = { base with Pipeline.mode = Whole_program; outline_rounds = 3 } in
  let thin_axes =
    (* Thin-WPO config points: the sharded summary-exchange engine must
       agree with the reference oracle at every worker count.  The
       byte-identity across these points and the size bound against the
       full whole-program build are checked by [thin_differential]. *)
    List.map
      (fun w ->
        ( Printf.sprintf "thin/r3/w%d" w,
          { base with Pipeline.mode = Thin_wpo { workers = w }; outline_rounds = 3 }
        ))
      [ 1; 2; 4 ]
  in
  let link_axes =
    [
      ("wp/r3/legacy-flags", { wp3 with Pipeline.flag_semantics = Link.Legacy });
      ( "wp/r3/interleaved",
        { wp3 with Pipeline.data_order = Link.Interleaved } );
      ( "wp/r3/legacy-interleaved",
        {
          wp3 with
          Pipeline.flag_semantics = Link.Legacy;
          data_order = Link.Interleaved;
        } );
      ( "wp/r3/caller-affinity",
        { wp3 with Pipeline.outlined_layout = `Caller_affinity } );
      (* Profile-guided layouts self-profile (no recorded profile in the
         lattice): the pipeline traces a [main] run and lays functions out
         from it.  Semantics must survive every placement. *)
      ( "wp/r3/layout-order-file",
        { wp3 with Pipeline.outlined_layout = `Order_file } );
      ("wp/r3/layout-c3", { wp3 with Pipeline.outlined_layout = `C3 });
      ( "wp/r3/layout-balanced",
        { wp3 with Pipeline.outlined_layout = `Balanced } );
      ( "wp/r3/layout-bp-compress",
        { wp3 with Pipeline.outlined_layout = `Bp_compress 0.5 } );
      (* Block-granularity placement also rewrites the program (hot/cold
         split, branch elision/materialization); the oracle run below
         executes the split program under the stitched order. *)
      ("wp/r3/layout-stitch", { wp3 with Pipeline.outlined_layout = `Stitch });
      ( "wp/r3/scratch-engine",
        { wp3 with Pipeline.outline_engine = `Scratch } );
    ]
  in
  main @ link_axes @ thin_axes

(* --- flags ------------------------------------------------------------------ *)

let attach_flags style modules =
  List.mapi
    (fun i (m : Ir.modul) ->
      let v =
        match style with
        | Swiftgen.Uniform_attrs -> Ir.Attrs [ ("gc_mode", 0) ]
        | Swiftgen.Uniform_packed ->
          Ir.Packed (Link.pack_objc_gc ~gc_mode:0 ~compiler_id:7 ~version:502)
        | Swiftgen.Mixed_compilers ->
          (* Same gc mode, different compiler identity/version bits: the
             §VI-2 spurious conflict under Legacy semantics. *)
          Ir.Packed
            (Link.pack_objc_gc ~gc_mode:0 ~compiler_id:(1 + i)
               ~version:(500 + i))
      in
      { m with Ir.flags = [ ("objc_gc", v) ] })
    modules

(* --- running one side -------------------------------------------------------- *)

let render_output l = "[" ^ String.concat "; " (List.map string_of_int l) ^ "]"

let render_run exit_value output =
  Printf.sprintf "exit=%d output=%s" exit_value (render_output output)

let interp_config =
  {
    Perfsim.Interp.default_config with
    model_perf = false;
    max_steps = 20_000_000;
  }

(* Tighter budget for the machine and thin-only checks: generated machine
   programs and fuel-10 thin reproducers finish in thousands of steps, and
   fault-corrupted variants routinely loop to whatever cap they get. *)
let machine_interp_config =
  { Perfsim.Interp.default_config with model_perf = false; max_steps = 2_000_000 }

(* A Legacy-semantics point over Mixed_compilers modules must die in
   llvm-link with the spurious flag conflict. *)
let expect_conflict (cfg : Pipeline.config) style n_modules =
  cfg.Pipeline.mode = Pipeline.Whole_program
  && cfg.Pipeline.flag_semantics = Link.Legacy
  && style = Swiftgen.Mixed_compilers
  && n_modules >= 2

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The pipeline-string differential: every config point has a twin
   expressed as a parsed-back pipeline spec, and the two must build
   byte-identical programs (or fail identically).  This checks the
   spec_of_config/parse/print round-trip and the spec-driven manager
   against the flag-driven lowering at every lattice point. *)
let spec_twin (cfg : Pipeline.config) =
  let specs = Pipeline.spec_of_config cfg in
  if specs = [] then Ok { cfg with Pipeline.passes = Some [] }
  else
    match Passman.parse (Passman.print specs) with
    | Error e -> Error ("pipeline-spec round-trip failed to parse: " ^ e)
    | Ok specs' ->
      if specs' <> specs then
        Error
          (Printf.sprintf "pipeline-spec round-trip not identity: %S vs %S"
             (Passman.print specs) (Passman.print specs'))
      else Ok { cfg with Pipeline.passes = Some specs' }

let run_spec_twin modules (label, cfg)
    (flag_result : (Pipeline.result, string) result) =
  let label = label ^ "/spec" in
  match spec_twin cfg with
  | Error reason -> Error { point = label; reason }
  | Ok spec_cfg -> (
    match (Pipeline.build ~config:spec_cfg modules, flag_result) with
    | Ok s, Ok f ->
      if
        Machine.Asm_printer.to_source s.Pipeline.program
        <> Machine.Asm_printer.to_source f.Pipeline.program
      then
        Error
          {
            point = label;
            reason =
              Printf.sprintf
                "spec-driven build diverged from the flag-driven build \
                 (passes %S)"
                (Passman.print (Pipeline.spec_of_config spec_cfg));
          }
      else Ok ()
    | Error es, Error ef ->
      if es = ef then Ok ()
      else
        Error
          {
            point = label;
            reason =
              Printf.sprintf
                "spec-driven build failed differently: %S vs flag-driven %S"
                es ef;
          }
    | Ok _, Error ef ->
      Error
        {
          point = label;
          reason = "spec-driven build succeeded where flags failed: " ^ ef;
        }
    | Error es, Ok _ ->
      Error
        {
          point = label;
          reason = "spec-driven build failed where flags succeeded: " ^ es;
        })

let run_point ?(interp = interp_config) modules (label, cfg) ~style ~ref_exit
    ~ref_output =
  let flag_result = Pipeline.build ~config:cfg modules in
  match run_spec_twin modules (label, cfg) flag_result with
  | Error f -> Error f
  | Ok () -> (
    match flag_result with
    | Error msg ->
      if expect_conflict cfg style (List.length modules) then
        if contains_substring msg "module flag conflict" then Ok None
        else
          Error
            {
              point = label;
              reason =
                "expected a module flag conflict under Legacy semantics, got \
                 a different failure: " ^ msg;
            }
      else Error { point = label; reason = "pipeline failed: " ^ msg }
    | Ok res ->
      if expect_conflict cfg style (List.length modules) then
        Error
          {
            point = label;
            reason =
              "Legacy flag semantics should have reported a module flag \
               conflict for mixed-compiler modules, but the build succeeded";
          }
      else begin
      (* Execute under the placement the pipeline actually linked with:
         a broken profile-guided order would surface here as a bad jump
         or divergence. *)
      match
        Perfsim.Interp.run ~config:interp ?order:res.function_order
          ~entry:"main" res.program
      with
      | Error e ->
        Error
          {
            point = label;
            reason =
              "machine execution failed: " ^ Perfsim.Interp.error_to_string e
              ^ " (reference: " ^ render_run ref_exit ref_output ^ ")";
          }
      | Ok r ->
        if r.exit_value <> ref_exit || r.output <> ref_output then
          Error
            {
              point = label;
              reason =
                Printf.sprintf "oracle divergence: reference %s, %s got %s"
                  (render_run ref_exit ref_output)
                  label
                  (render_run r.exit_value r.output);
            }
        else Ok (Some res)
      end)

(* Strip the round count out of a label so results can be grouped into
   monotonicity chains: same mode, same passes, same link axes. *)
let chain_key label cfg =
  match String.index_opt label '/' with
  | Some _ ->
    let parts = String.split_on_char '/' label in
    let parts = List.filter (fun p -> String.length p < 2 || String.sub p 0 1 <> "r"
                                       || not (String.for_all (fun c -> c >= '0' && c <= '9')
                                                 (String.sub p 1 (String.length p - 1)))) parts in
    String.concat "/" parts
  | None -> ignore cfg; label

let check_monotone results =
  (* [results]: (label, rounds, binary_size) list in lattice order. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (label, cfg, rounds, size) ->
      let key = chain_key label cfg in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((label, rounds, size) :: prev))
    results;
  Hashtbl.fold
    (fun _key chain acc ->
      match acc with
      | Some _ -> acc
      | None ->
        let chain = List.sort (fun (_, a, _) (_, b, _) -> compare a b) chain in
        let rec scan = function
          | (la, ra, sa) :: ((lb, rb, sb) :: _ as rest) ->
            if rb > ra && sb > sa then
              Some
                {
                  point = lb;
                  reason =
                    Printf.sprintf
                      "image size not monotone in outline rounds: %s = %d \
                       bytes but %s = %d bytes"
                      la sa lb sb;
                }
            else scan rest
          | _ -> None
        in
        scan chain)
    tbl None

(* The compressed-size model's property check: the estimate must be a
   deterministic function of placement that is sensitive to permutation
   only through window locality.  Theorem-shaped, never tuned:

   - determinism: estimating twice gives identical results;
   - content-total invariance: with the window disabled the estimate is a
     function of content alone, so every permutation agrees byte-for-byte
     (and raw bytes never change under any order);
   - soundness: the windowed estimate never exceeds the pure-literal
     bound under any order;
   - sensitivity: if the program carries byte-identical function bodies
     (render-keyed, exactly like [Linker.duplicate_function_bodies]),
     placing the clones adjacent must strictly beat the literal bound —
     redundancy inside the window has to be worth something. *)
let compress_property (p : Machine.Program.t) =
  let fail reason = Some { point = "compress/property"; reason } in
  let names = List.map (fun (f : Machine.Mfunc.t) -> f.name) p.Machine.Program.funcs in
  let rev = List.rev names in
  let est = Linker.compress_estimate p in
  let est2 = Linker.compress_estimate p in
  let est_rev = Linker.compress_estimate ~order:rev p in
  let lit = Linker.compress_estimate ~window:0 p in
  let lit_rev = Linker.compress_estimate ~window:0 ~order:rev p in
  if est <> est2 then fail "compressed-size estimate is not deterministic"
  else if est.Linker.Compress.raw_bytes <> est_rev.Linker.Compress.raw_bytes
  then
    fail
      (Printf.sprintf
         "content-stream length changed under permutation: %d vs %d"
         est.Linker.Compress.raw_bytes est_rev.Linker.Compress.raw_bytes)
  else if lit <> lit_rev then
    fail
      (Printf.sprintf
         "window-0 estimate is not content-total-invariant: %d vs %d under \
          a reversed placement"
         lit.Linker.Compress.compressed_bytes
         lit_rev.Linker.Compress.compressed_bytes)
  else if
    est.Linker.Compress.compressed_bytes > lit.Linker.Compress.compressed_bytes
    || est_rev.Linker.Compress.compressed_bytes
       > lit_rev.Linker.Compress.compressed_bytes
  then
    fail
      "windowed estimate exceeded the pure-literal bound under some \
       placement"
  else begin
    (* Sensitivity, guarded: only meaningful when a clone family exists
       whose body both clears the minimum match length and fits the
       window (adjacent copies must be reachable back-references). *)
    let by_render = Hashtbl.create 64 in
    List.iter
      (fun (f : Machine.Mfunc.t) ->
        let key = Content.render f in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_render key) in
        Hashtbl.replace by_render key (f.name :: prev))
      p.Machine.Program.funcs;
    let has_clone_family =
      Hashtbl.fold
        (fun key fs acc ->
          acc
          || (List.length fs >= 2
             && String.length key >= Linker.Compress.min_match
             && String.length key <= Linker.Compress.window_default / 2))
        by_render false
    in
    if not has_clone_family then None
    else begin
      (* Clones adjacent: sort names by render key, ties on name. *)
      let keyed =
        List.map
          (fun (f : Machine.Mfunc.t) -> (Content.render f, f.name))
          p.Machine.Program.funcs
      in
      let sorted = List.sort compare keyed in
      let adjacent = List.map snd sorted in
      let est_adj = Linker.compress_estimate ~order:adjacent p in
      if
        est_adj.Linker.Compress.compressed_bytes
        >= lit.Linker.Compress.compressed_bytes
      then
        fail
          (Printf.sprintf
             "placing byte-identical bodies adjacent did not beat the \
              literal bound: %d vs %d"
             est_adj.Linker.Compress.compressed_bytes
             lit.Linker.Compress.compressed_bytes)
      else None
    end
  end

(* --- the Swiftlet check ------------------------------------------------------ *)

(* The transition differential: the pass-manager pipeline must be
   observationally exact, so default-config builds are compared
   byte-for-byte against the preserved pre-refactor sequencing
   (Pipeline.build_reference) in both modes. *)
let transition_differential modules =
  let one name cfg =
    match
      ( Pipeline.build ~config:cfg modules,
        Pipeline.build_reference ~config:cfg modules )
    with
    | Ok a, Ok b ->
      if
        Machine.Asm_printer.to_source a.Pipeline.program
        <> Machine.Asm_printer.to_source b.Pipeline.program
      then
        Some
          {
            point = name;
            reason =
              "pass manager diverged from the pre-refactor sequencing \
               (default config must be byte-identical)";
          }
      else None
    | Error ea, Error eb ->
      if ea = eb then None
      else
        Some
          {
            point = name;
            reason =
              Printf.sprintf
                "pass manager failed differently from the pre-refactor \
                 sequencing: %S vs %S"
                ea eb;
          }
    | Ok _, Error e ->
      Some
        {
          point = name;
          reason =
            "pre-refactor sequencing failed where the pass manager \
             succeeded: " ^ e;
        }
    | Error e, Ok _ ->
      Some
        {
          point = name;
          reason =
            "pass manager failed where the pre-refactor sequencing \
             succeeded: " ^ e;
        }
  in
  match one "transition/wp-default" Pipeline.default_config with
  | Some f -> Some f
  | None -> one "transition/pm-default" Pipeline.default_ios_config

(* The refactor-exactness differential: the thin strategy instances over
   the lib/merge framework must reproduce the frozen pre-refactor passes
   ([Merge_reference]) byte-for-byte — per module and on the linked whole
   module, with the entry point kept, exactly as the pipeline runs them. *)
let merge_refactor_differential modules whole =
  let keep (f : Ir.func) = f.Ir.name = "main" in
  let pp m = Format.asprintf "%a" Ir.pp_modul m in
  let diff name (m : Ir.modul) =
    if
      pp (fst (Merge_functions.run ~keep m))
      <> pp (fst (Merge_reference.Merge_functions.run ~keep m))
    then
      Some
        {
          point = "refactor/merge-functions";
          reason =
            "lib/merge Merge_functions diverged from the frozen pre-refactor \
             pass on module " ^ name;
        }
    else if
      pp (fst (Fmsa.run ~keep m))
      <> pp (fst (Merge_reference.Fmsa.run ~keep m))
    then
      Some
        {
          point = "refactor/fmsa";
          reason =
            "lib/merge Fmsa diverged from the frozen pre-refactor pass on \
             module " ^ name;
        }
    else None
  in
  List.fold_left
    (fun acc (m : Ir.modul) ->
      match acc with Some _ -> acc | None -> diff m.Ir.m_name m)
    None
    (modules @ [ whole ])

(* The thin-WPO differentials.  Two properties ride on the thin points:

   - the worker count must never reach the image: every [thin/*] point
     builds a byte-identical program (ThinLTO's determinism contract,
     and the property a corrupted decision table breaks first);
   - the optimistic summary join must stay close to the full
     whole-program oracle — summaries carry counts, not bodies, so exact
     equality is not the contract, but a thin image more than 5% + 256
     bytes past the wp/r3 image means the exchange lost real patterns. *)
let thin_size_slack full = (full * 5 / 100) + 256

let thin_differential thins full_wpo =
  match thins with
  | [] -> None
  | (l0, src0, sz0) :: rest -> (
    match List.find_opt (fun (_, src, _) -> src <> src0) rest with
    | Some (l, _, _) ->
      Some
        {
          point = l;
          reason =
            Printf.sprintf
              "thin-WPO output depends on the worker count: %s and %s built \
               different programs"
              l0 l;
        }
    | None -> (
      match full_wpo with
      | None -> None
      | Some full ->
        let bound = full + thin_size_slack full in
        if sz0 > bound then
          Some
            {
              point = l0;
              reason =
                Printf.sprintf
                  "thin-WPO image strayed too far from full whole-program: \
                   %d bytes vs %d (bound %d)"
                  sz0 full bound;
            }
        else None))

(* The serve differential: replay a short commit stream (initial build,
   then [edits] single-module appends, then a verbatim retry) through one
   warm server and require every served image byte-identical to a scratch
   [Pipeline.build_sources] of the same request.  The retry must answer
   from the result cache with the previous bytes.  This is what catches a
   server that leaks warm engine state across edits or serves stale cache
   entries ([Serve.Server.fault_stale_cache_entry] in the self-test). *)
let serve_spec = "dce,outline(rounds=3)"

let serve_commits sources edits =
  let nmods = List.length sources in
  let rec go acc cur i =
    if i > edits then List.rev acc
    else begin
      let target = fst (List.nth cur ((i - 1) mod nmods)) in
      let next =
        List.map
          (fun (m, s) ->
            if String.equal m target then
              ( m,
                s
                ^ Printf.sprintf
                    "\nfunc srv_edit%d(v: Int) -> Int {\n  return v * %d + %d\n}\n"
                    i
                    ((2 * i) + 3)
                    i )
            else (m, s))
          cur
      in
      go (next :: acc) next (i + 1)
    end
  in
  go [ sources ] sources 1

let serve_differential ?(edits = 1) sources =
  let server = Serve.Server.create () in
  let cfg =
    match
      Pipeline.config_of_passes
        ~base:{ Pipeline.default_config with mode = Pipeline.Whole_program }
        serve_spec
    with
    | Ok c -> c
    | Error e -> invalid_arg ("serve_differential: bad spec: " ^ e)
  in
  let request i srcs =
    Serve.Protocol.print_request
      (Serve.Protocol.Build
         {
           br_id = Printf.sprintf "c%d" i;
           br_app = "fuzz";
           br_mode = "wp";
           br_workers = 0;
           br_passes = Some serve_spec;
           br_want_image = true;
           br_source = Serve.Protocol.Inline srcs;
         })
  in
  let serve i srcs =
    let payload, _ = Serve.Server.handle server (request i srcs) in
    Serve.Protocol.parse_response payload
  in
  let commits = serve_commits sources edits in
  let fail i reason = Some { point = Printf.sprintf "serve/commit%d" i; reason } in
  let failure = ref None in
  let last = ref None in
  List.iteri
    (fun i srcs ->
      if !failure = None then
        match (serve i srcs, Pipeline.build_sources ~config:cfg srcs) with
        | Error e, _ ->
          failure := fail i ("unparsable serve response: " ^ e)
        | Ok (Serve.Protocol.Error_reply { e_message; _ }), Ok _ ->
          failure :=
            fail i ("server failed where scratch succeeded: " ^ e_message)
        | Ok (Serve.Protocol.Built _), Error e ->
          failure := fail i ("server succeeded where scratch failed: " ^ e)
        | Ok (Serve.Protocol.Error_reply _), Error _ ->
          (* consistently rejected; nothing to compare *)
          last := None
        | Ok (Serve.Protocol.Built b), Ok res ->
          let scratch_img = Machine.Asm_printer.to_source res.Pipeline.program in
          if b.Serve.Protocol.b_image <> Some scratch_img then
            failure :=
              fail i
                "served image is not byte-identical to a from-scratch build \
                 of the same request"
          else if b.Serve.Protocol.b_binary_size <> res.Pipeline.binary_size
          then
            failure :=
              fail i
                (Printf.sprintf
                   "served binary size %d disagrees with scratch %d"
                   b.Serve.Protocol.b_binary_size res.Pipeline.binary_size)
          else last := Some (srcs, b)
        | Ok _, _ -> failure := fail i "unexpected response kind")
    commits;
  (match (!failure, !last) with
  | None, Some (srcs, prev) -> (
    (* CI-retry shape: same request again must hit and serve equal bytes *)
    match serve (edits + 1) srcs with
    | Ok (Serve.Protocol.Built b) ->
      if not b.Serve.Protocol.b_cache_hit then
        failure := fail (edits + 1) "request retry missed the result cache"
      else if b.Serve.Protocol.b_image <> prev.Serve.Protocol.b_image then
        failure :=
          fail (edits + 1)
            "cache hit served different bytes from the build that \
             populated the entry"
    | Ok (Serve.Protocol.Error_reply { e_message; _ }) ->
      failure := fail (edits + 1) ("retry failed: " ^ e_message)
    | Ok _ -> failure := fail (edits + 1) "unexpected response kind on retry"
    | Error e ->
      failure := fail (edits + 1) ("unparsable serve response: " ^ e))
  | _ -> ());
  !failure

let check ?(verify_each = false) (p : Swiftgen.program) =
  match Swiftlet.Compile.compile_program (Swiftgen.to_sources p) with
  | Error msg -> Skip ("front-end: " ^ msg)
  | Ok modules -> (
    let modules = attach_flags p.flag_style modules in
    match
      Link.link ~flag_semantics:Link.Attributes
        ~data_order:Link.Module_preserving ~name:"whole" modules
    with
    | Error e -> Skip ("reference link: " ^ Link.error_to_string e)
    | Ok whole -> (
      match Eval.run ~max_steps:5_000_000 ~entry:"main" whole with
      | Error e -> Skip ("reference eval: " ^ Eval.error_to_string e)
      | Ok ref_res -> (
        let ref_exit = ref_res.exit_value and ref_output = ref_res.output in
        let pts =
          points { Pipeline.default_config with Pipeline.verify_each }
        in
        let failure = ref (transition_differential modules) in
        if !failure = None then
          failure := merge_refactor_differential modules whole;
        let sizes = ref [] in
        let thins = ref [] in
        let full_wpo = ref None in
        let full_prog = ref None in
        List.iter
          (fun ((label, cfg) as pt) ->
            if !failure = None then
              match
                run_point modules pt ~style:p.flag_style ~ref_exit ~ref_output
              with
              | Error f -> failure := Some f
              | Ok None -> ()
              | Ok (Some res) ->
                sizes :=
                  (label, cfg, cfg.Pipeline.outline_rounds, res.binary_size)
                  :: !sizes;
                if label = "wp/r3/plain" then begin
                  full_wpo := Some res.binary_size;
                  full_prog := Some res.Pipeline.program
                end;
                (match cfg.Pipeline.mode with
                | Pipeline.Thin_wpo _ ->
                  thins :=
                    ( label,
                      Machine.Asm_printer.to_source res.Pipeline.program,
                      res.binary_size )
                    :: !thins
                | _ -> ()))
          pts;
        match !failure with
        | Some f -> Fail f
        | None -> (
          match check_monotone (List.rev !sizes) with
          | Some f -> Fail f
          | None -> (
            match thin_differential (List.rev !thins) !full_wpo with
            | Some f -> Fail f
            | None -> (
              match
                Option.join (Option.map compress_property !full_prog)
              with
              | Some f -> Fail f
              | None -> (
                match serve_differential (Swiftgen.to_sources p) with
                | Some f -> Fail f
                (* every point also ran its /spec twin, plus the two
                   transition-differential points, the two refactor-exactness
                   differentials (merge-functions and fmsa against their
                   frozen pre-refactor copies), the two thin-WPO
                   differentials, the compressed-size property check, and
                   the three serve replay steps (build, edit, retry) *)
                | None -> Pass ((2 * List.length pts) + 4 + 2 + 1 + 3))))))))

(* The thin-only check: reference oracle, the three thin points (spec
   twins included), and both thin differentials — nothing else.  This is
   what the self-test's fault phase and its shrink loop run: a full
   [check] sweeps fifty-odd points per program, which the greedy shrinker
   would multiply by hundreds of deletion attempts. *)
let check_thin (p : Swiftgen.program) =
  match Swiftlet.Compile.compile_program (Swiftgen.to_sources p) with
  | Error msg -> Skip ("front-end: " ^ msg)
  | Ok modules -> (
    let modules = attach_flags p.flag_style modules in
    match
      Link.link ~flag_semantics:Link.Attributes
        ~data_order:Link.Module_preserving ~name:"whole" modules
    with
    | Error e -> Skip ("reference link: " ^ Link.error_to_string e)
    | Ok whole -> (
      match Eval.run ~max_steps:5_000_000 ~entry:"main" whole with
      | Error e -> Skip ("reference eval: " ^ Eval.error_to_string e)
      | Ok ref_res -> (
        let ref_exit = ref_res.exit_value and ref_output = ref_res.output in
        let pts =
          List.filter
            (fun (_, (cfg : Pipeline.config)) ->
              match cfg.Pipeline.mode with
              | Pipeline.Thin_wpo _ -> true
              | _ -> false)
            (points Pipeline.default_config)
        in
        let wp3 =
          match
            Pipeline.build
              ~config:
                {
                  Pipeline.default_config with
                  Pipeline.mode = Whole_program;
                  outline_rounds = 3;
                  flag_semantics = Link.Attributes;
                  data_order = Link.Module_preserving;
                  outlined_layout = `Append;
                  layout_profile = None;
                }
              modules
          with
          | Ok res -> Some res.Pipeline.binary_size
          | Error _ -> None
        in
        let failure = ref None in
        let thins = ref [] in
        List.iter
          (fun ((label, _) as pt) ->
            if !failure = None then
              (* The corrupted programs this check hunts often loop until
                 the step budget; the full 20M-step allowance would make
                 the shrink loop crawl, and honest fuel-10 programs finish
                 within the machine check's 2M budget anyway. *)
              match
                run_point ~interp:machine_interp_config modules pt
                  ~style:p.flag_style ~ref_exit ~ref_output
              with
              | Error f -> failure := Some f
              | Ok None -> ()
              | Ok (Some res) ->
                thins :=
                  ( label,
                    Machine.Asm_printer.to_source res.Pipeline.program,
                    res.binary_size )
                  :: !thins)
          pts;
        match !failure with
        | Some f -> Fail f
        | None -> (
          match thin_differential (List.rev !thins) wp3 with
          | Some f -> Fail f
          | None -> Pass ((2 * List.length pts) + 2)))))

(* The serve-only check: front-end gate, then the serve replay differential
   with two edits — what the self-test's stale-cache fault phase and its
   shrink loop run (a full lattice sweep per deletion attempt would
   dominate the self-test, and the serve differential alone is what the
   fault must trip). *)
let check_serve (p : Swiftgen.program) =
  let sources = Swiftgen.to_sources p in
  match Swiftlet.Compile.compile_program sources with
  | Error msg -> Skip ("front-end: " ^ msg)
  | Ok _ -> (
    match serve_differential ~edits:2 sources with
    | Some f -> Fail f
    (* initial build + two edits + the retry *)
    | None -> Pass 4)

(* The global-merge-only check: reference oracle, then the optimistic
   merger at round 0 in all three modes, with a two-worker-count thin pair
   whose images must be byte-identical.  This is what the self-test's
   dropped-rollback fault phase and its shrink loop run: the fault lives
   entirely in Global_merge, so sweeping the full lattice per deletion
   attempt would bury the signal in unrelated points. *)
let check_gmerge (p : Swiftgen.program) =
  match Swiftlet.Compile.compile_program (Swiftgen.to_sources p) with
  | Error msg -> Skip ("front-end: " ^ msg)
  | Ok modules -> (
    let modules = attach_flags p.flag_style modules in
    match
      Link.link ~flag_semantics:Link.Attributes
        ~data_order:Link.Module_preserving ~name:"whole" modules
    with
    | Error e -> Skip ("reference link: " ^ Link.error_to_string e)
    | Ok whole -> (
      match Eval.run ~max_steps:5_000_000 ~entry:"main" whole with
      | Error e -> Skip ("reference eval: " ^ Eval.error_to_string e)
      | Ok ref_res -> (
        let ref_exit = ref_res.exit_value and ref_output = ref_res.output in
        let base =
          {
            Pipeline.default_config with
            Pipeline.flag_semantics = Link.Attributes;
            data_order = Link.Module_preserving;
            outlined_layout = `Append;
            layout_profile = None;
            run_global_merge = true;
            outline_rounds = 0;
          }
        in
        let pts =
          [
            ("gmerge/pm/r0", { base with Pipeline.mode = Per_module });
            ("gmerge/wp/r0", { base with Pipeline.mode = Whole_program });
            ( "gmerge/thin/r0/w1",
              { base with Pipeline.mode = Thin_wpo { workers = 1 } } );
            ( "gmerge/thin/r0/w2",
              { base with Pipeline.mode = Thin_wpo { workers = 2 } } );
          ]
        in
        let failure = ref None in
        let thins = ref [] in
        List.iter
          (fun ((label, cfg) as pt) ->
            if !failure = None then
              (* Corrupted merges routinely loop; the tight machine budget
                 keeps the shrink loop fast (honest round-0 programs finish
                 well within it). *)
              match
                run_point ~interp:machine_interp_config modules pt
                  ~style:p.flag_style ~ref_exit ~ref_output
              with
              | Error f -> failure := Some f
              | Ok None -> ()
              | Ok (Some res) -> (
                match cfg.Pipeline.mode with
                | Pipeline.Thin_wpo _ ->
                  thins :=
                    ( label,
                      Machine.Asm_printer.to_source res.Pipeline.program,
                      res.binary_size )
                    :: !thins
                | _ -> ()))
          pts;
        match !failure with
        | Some f -> Fail f
        | None -> (
          match thin_differential (List.rev !thins) None with
          | Some f -> Fail f
          | None -> Pass ((2 * List.length pts) + 1)))))

(* --- the machine check ------------------------------------------------------- *)

let machine_points = [ ("r1", 1, false); ("r3", 3, false); ("r5", 5, false);
                       ("canon-r3", 3, true) ]

let check_machine (p : Machine.Program.t) =
  match Perfsim.Interp.run ~config:machine_interp_config ~entry:"main" p with
  | Error e -> Skip ("base run: " ^ Perfsim.Interp.error_to_string e)
  | Ok base -> (
    let base_size = Machine.Program.code_size_bytes p in
    let failure = ref None in
    let last_size = ref None in
    List.iter
      (fun (label, rounds, canon) ->
        if !failure = None then begin
          let q = if canon then fst (Outcore.Canonicalize.run p) else p in
          let q', _stats = Outcore.Repeat.run ~engine:`Scratch ~rounds q in
          (* Incremental/scratch differential: the dirty-block engine must
             produce a byte-identical program at every point.  A stale
             cache can also crash the rewrite outright, so trap exceptions
             and report them as divergence. *)
          (match
             try
               Ok (fst (Outcore.Repeat.run ~engine:`Incremental ~rounds q))
             with e -> Error (Printexc.to_string e)
           with
          | Error msg ->
            failure :=
              Some
                {
                  point = label ^ "/incremental";
                  reason = "incremental engine raised: " ^ msg;
                }
          | Ok qi ->
            if
              Machine.Asm_printer.to_source qi
              <> Machine.Asm_printer.to_source q'
            then
              failure :=
                Some
                  {
                    point = label ^ "/incremental";
                    reason =
                      "incremental/scratch divergence: engines produced \
                       different programs";
                  });
          if !failure <> None then ()
          else
          match Machine.Program.validate q' with
          | Error msg ->
            failure :=
              Some { point = label; reason = "invalid after outlining: " ^ msg }
          | Ok () -> (
            let size = Machine.Program.code_size_bytes q' in
            if size > base_size then
              failure :=
                Some
                  {
                    point = label;
                    reason =
                      Printf.sprintf
                        "outlining grew the code: %d -> %d bytes" base_size size;
                  }
            else begin
              (match !last_size with
              | Some (prev_label, prev_rounds, prev_size)
                when (not canon) && rounds > prev_rounds && size > prev_size ->
                failure :=
                  Some
                    {
                      point = label;
                      reason =
                        Printf.sprintf
                          "code size not monotone in rounds: %s = %d, %s = %d"
                          prev_label prev_size label size;
                    }
              | _ -> ());
              if not canon then last_size := Some (label, rounds, size);
              if !failure = None then
                match
                  Perfsim.Interp.run ~config:machine_interp_config ~entry:"main"
                    q'
                with
                | Error e ->
                  failure :=
                    Some
                      {
                        point = label;
                        reason =
                          "execution failed after outlining: "
                          ^ Perfsim.Interp.error_to_string e
                          ^ " (base: "
                          ^ render_run base.exit_value base.output
                          ^ ")";
                      }
                | Ok r ->
                  if
                    r.exit_value <> base.exit_value || r.output <> base.output
                  then
                    failure :=
                      Some
                        {
                          point = label;
                          reason =
                            Printf.sprintf
                              "oracle divergence: base %s, %s got %s"
                              (render_run base.exit_value base.output)
                              label
                              (render_run r.exit_value r.output);
                        }
            end)
        end)
      machine_points;
    (* The split-then-place differential: collect a block-level profile of
       the base program, split its cold blocks to the __text_cold region,
       and require the split program — run under the stitched chain order,
       so the interpreter sees the exact placed byte sequence — to
       validate, reproduce the base result, and never grow.  This is the
       point the dropped-materialized-branch fault must trip. *)
    if !failure = None then begin
      let profile =
        Pgo.Collect.collect
          ~config:
            {
              Pgo.Collect.default_config with
              Perfsim.Interp.max_steps = 2_000_000;
            }
          ~workload:"fuzz" ~entries:[ "main" ] p
      in
      let split, order = Blocklayout.apply ~profile p in
      match Machine.Program.validate split with
      | Error msg ->
        failure :=
          Some { point = "stitch"; reason = "invalid after hot/cold split: " ^ msg }
      | Ok () -> (
        let size = Machine.Program.code_size_bytes split in
        if size > base_size then
          failure :=
            Some
              {
                point = "stitch";
                reason =
                  Printf.sprintf "hot/cold splitting grew the code: %d -> %d bytes"
                    base_size size;
              }
        else
          match
            Perfsim.Interp.run ~config:machine_interp_config ~order
              ~entry:"main" split
          with
          | Error e ->
            failure :=
              Some
                {
                  point = "stitch";
                  reason =
                    "execution failed after hot/cold split: "
                    ^ Perfsim.Interp.error_to_string e
                    ^ " (base: "
                    ^ render_run base.exit_value base.output
                    ^ ")";
                }
          | Ok r ->
            if r.exit_value <> base.exit_value || r.output <> base.output then
              failure :=
                Some
                  {
                    point = "stitch";
                    reason =
                      Printf.sprintf "oracle divergence: base %s, stitch got %s"
                        (render_run base.exit_value base.output)
                        (render_run r.exit_value r.output);
                  })
    end;
    match !failure with
    | Some f -> Fail f
    | None -> Pass (List.length machine_points + 1))
