type node =
  | Line of string
  | Block of string * node list
  | Block2 of string * node list * node list

type flag_style =
  | Uniform_attrs
  | Uniform_packed
  | Mixed_compilers

type program = {
  modules : (string * node list) list;
  flag_style : flag_style;
}

(* --- printing ------------------------------------------------------------- *)

let rec print_node buf indent n =
  let pad = String.make (2 * indent) ' ' in
  match n with
  | Line s -> Buffer.add_string buf (pad ^ s ^ "\n")
  | Block (header, body) ->
    Buffer.add_string buf (pad ^ header ^ " {\n");
    List.iter (print_node buf (indent + 1)) body;
    Buffer.add_string buf (pad ^ "}\n")
  | Block2 (header, a, b) ->
    Buffer.add_string buf (pad ^ header ^ " {\n");
    List.iter (print_node buf (indent + 1)) a;
    Buffer.add_string buf (pad ^ "} else {\n");
    List.iter (print_node buf (indent + 1)) b;
    Buffer.add_string buf (pad ^ "}\n")

let module_source nodes =
  let buf = Buffer.create 1024 in
  List.iter (print_node buf 0) nodes;
  Buffer.contents buf

let to_sources p = List.map (fun (name, nodes) -> (name, module_source nodes)) p.modules

let print_source p =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, nodes) ->
      Buffer.add_string buf (Printf.sprintf "// module %s\n" name);
      List.iter (print_node buf 0) nodes)
    p.modules;
  Buffer.contents buf

let source_lines p =
  String.split_on_char '\n' (print_source p)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* --- node counting / deletion --------------------------------------------- *)

let count_nodes p =
  let rec n_node = function
    | Line _ -> 1
    | Block (_, b) -> 1 + List.fold_left (fun a n -> a + n_node n) 0 b
    | Block2 (_, a, b) ->
      1
      + List.fold_left (fun acc n -> acc + n_node n) 0 a
      + List.fold_left (fun acc n -> acc + n_node n) 0 b
  in
  List.fold_left
    (fun acc (_, nodes) -> acc + List.fold_left (fun a n -> a + n_node n) 0 nodes)
    0 p.modules

(* Pre-order traversal; node [i] (and its subtree) is removed. *)
let delete_node p i =
  let k = ref 0 in
  let deleted = ref false in
  let rec del_list nodes =
    List.concat_map
      (fun n ->
        let here = !k in
        incr k;
        if here = i then begin
          deleted := true;
          (* Skip counting the subtree we removed: indices are only used
             within one call, and callers restart traversal after every
             deletion attempt, so no need to keep counters aligned. *)
          []
        end
        else
          match n with
          | Line _ -> [ n ]
          | Block (h, b) -> [ Block (h, del_list b) ]
          | Block2 (h, a, b) ->
            let a' = del_list a in
            [ Block2 (h, a', del_list b) ])
      nodes
  in
  let modules = List.map (fun (name, nodes) -> (name, del_list nodes)) p.modules in
  if !deleted then Some { p with modules } else None

(* --- rng helpers ----------------------------------------------------------- *)

let irange st lo hi = lo + Random.State.int st (hi - lo + 1)
let pick st l = List.nth l (Random.State.int st (List.length l))
let chance st pct = Random.State.int st 100 < pct

(* --- generator state ------------------------------------------------------- *)

type cls = {
  c_name : string;
  c_ints : string list;
  c_arr : string option;
  c_arr_len : int;
  c_getters : (string * int) list; (* name, #Int params; returns Int *)
  c_mutators : string list;        (* name; takes one Int, returns Void *)
  c_init_arity : int;
  c_throwing_init : bool;
}

type fn = {
  f_name : string;
  f_arity : int;
  f_throws : bool;
  f_hof : bool;
  f_cost : int; (* rough dynamic cost estimate, to bound nested-loop blowup *)
}

type ctx = {
  st : Random.State.t;
  mutable uid : int;
  mutable fns : fn list;
}

let fresh ctx prefix =
  ctx.uid <- ctx.uid + 1;
  Printf.sprintf "%s%d" prefix ctx.uid

type env = {
  mutable ints : string list;
  mutable muts : string list;
  mutable arrs : (string * int) list;
  mutable objs : (string * cls) list;
  mutable funs1 : string list; (* (Int) -> Int values *)
  e_throws : bool;
  classes : cls list;
  loop_mult : int;
  cost : int ref; (* shared across nested scopes of one function *)
}

(* Budget for one function's estimated dynamic cost; keeps the whole
   program's execution well under the oracle step limits. *)
let fn_budget = 25_000

let charge env c = env.cost := !(env.cost) + (c * env.loop_mult)

let callable_fns ctx env ~throws ~hof =
  List.filter
    (fun f ->
      f.f_throws = throws && f.f_hof = hof
      && f.f_cost * env.loop_mult < fn_budget
      && !(env.cost) < fn_budget)
    ctx.fns

(* --- expressions ----------------------------------------------------------- *)

let arith_ops = [ "+"; "-"; "*"; "&"; "|"; "^" ]
let cmp_ops = [ "<"; "<="; ">"; ">="; "=="; "!=" ]

let rec gen_expr ctx env depth =
  let st = ctx.st in
  let leaf () =
    if env.ints <> [] && chance st 65 then pick st env.ints
    else string_of_int (irange st 0 99)
  in
  if depth <= 0 then leaf ()
  else begin
    let fns = callable_fns ctx env ~throws:false ~hof:false in
    let hofs = callable_fns ctx env ~throws:false ~hof:true in
    let cases = ref [ `Leaf; `Leaf; `Bin; `Bin; `Bin; `Div; `Shift; `Neg ] in
    if fns <> [] then cases := `Call :: `Call :: !cases;
    if hofs <> [] && (env.funs1 <> [] || env.ints <> []) then cases := `Hof :: !cases;
    if env.funs1 <> [] then cases := `Clo :: !cases;
    if env.arrs <> [] then cases := `Arr :: `Len :: !cases;
    if List.exists (fun (_, c) -> c.c_ints <> []) env.objs then
      cases := `Field :: !cases;
    if List.exists (fun (_, c) -> c.c_getters <> []) env.objs then
      cases := `Method :: !cases;
    match pick st !cases with
    | `Leaf -> leaf ()
    | `Bin ->
      charge env 1;
      Printf.sprintf "(%s %s %s)" (gen_expr ctx env (depth - 1)) (pick st arith_ops)
        (gen_expr ctx env (depth - 1))
    | `Div ->
      charge env 1;
      Printf.sprintf "(%s %s %d)" (gen_expr ctx env (depth - 1))
        (pick st [ "/"; "%" ])
        (irange st 2 9)
    | `Shift ->
      charge env 1;
      Printf.sprintf "(%s %s %d)" (gen_expr ctx env (depth - 1))
        (pick st [ "<<"; ">>" ])
        (irange st 0 6)
    | `Neg -> Printf.sprintf "(0 - %s)" (gen_expr ctx env (depth - 1))
    | `Call ->
      let f = pick st fns in
      charge env f.f_cost;
      Printf.sprintf "%s(%s)" f.f_name (gen_args ctx env f.f_arity)
    | `Hof ->
      let h = pick st hofs in
      charge env (h.f_cost + 100);
      let fun_arg =
        if env.funs1 <> [] && chance st 40 then pick st env.funs1
        else begin
          (* A unary non-throwing named function also works as a value. *)
          let unary = List.filter (fun f -> f.f_arity = 1) fns in
          if unary <> [] && chance st 30 then (pick st unary).f_name
          else gen_closure ctx env
        end
      in
      Printf.sprintf "%s(%s, %s)" h.f_name fun_arg (gen_args ctx env h.f_arity)
    | `Clo ->
      charge env 10;
      Printf.sprintf "%s(%s)" (pick st env.funs1) (gen_expr ctx env (depth - 1))
    | `Arr ->
      charge env 1;
      let a, len = pick st env.arrs in
      Printf.sprintf "%s[%d]" a (irange st 0 (len - 1))
    | `Len ->
      let a, _ = pick st env.arrs in
      Printf.sprintf "len(%s)" a
    | `Field ->
      charge env 1;
      let o, c = pick st (List.filter (fun (_, c) -> c.c_ints <> []) env.objs) in
      Printf.sprintf "%s.%s" o (pick st c.c_ints)
    | `Method ->
      let o, c = pick st (List.filter (fun (_, c) -> c.c_getters <> []) env.objs) in
      let m, arity = pick st c.c_getters in
      charge env 20;
      Printf.sprintf "%s.%s(%s)" o m (gen_args ctx env arity)
  end

and gen_args ctx env arity =
  String.concat ", " (List.init arity (fun _ -> gen_expr ctx env 1))

and gen_closure ctx env =
  let x = fresh ctx "x" in
  let captures = List.filteri (fun i _ -> i < 3) env.ints in
  let inner =
    {
      env with
      ints = x :: captures;
      muts = [];
      arrs = [];
      objs = [];
      funs1 = [];
      loop_mult = env.loop_mult;
    }
  in
  Printf.sprintf "{ (%s: Int) in return %s }" x (gen_expr ctx inner 2)

let gen_cond ctx env =
  let st = ctx.st in
  let cmp () =
    charge env 1;
    Printf.sprintf "%s %s %s" (gen_expr ctx env 1) (pick st cmp_ops)
      (gen_expr ctx env 1)
  in
  match irange st 0 9 with
  | 0 -> Printf.sprintf "%s && %s" (cmp ()) (cmp ())
  | 1 -> Printf.sprintf "%s || %s" (cmp ()) (cmp ())
  | 2 -> Printf.sprintf "!(%s)" (cmp ())
  | _ -> cmp ()

(* --- statements ------------------------------------------------------------ *)

let sub_env ?(mult = 1) env =
  {
    env with
    loop_mult = env.loop_mult * mult;
    ints = env.ints;
    muts = env.muts;
    arrs = env.arrs;
    objs = env.objs;
    funs1 = env.funs1;
  }

let rec gen_stmts ctx env ~fuel =
  let st = ctx.st in
  let out = ref [] in
  let emit n = out := n :: !out in
  let budget = ref fuel in
  while !budget > 0 do
    decr budget;
    let throwing_fns = callable_fns ctx env ~throws:true ~hof:false in
    let cases = ref [ `Let; `Let; `Var; `Print; `If; `For; `ArrDecl; `Closure ] in
    if env.muts <> [] then cases := `Assign :: `Assign :: !cases;
    if env.arrs <> [] then cases := `ArrSet :: `ForArr :: !cases;
    if !budget > 2 then cases := `While :: !cases;
    if List.exists (fun c -> not c.c_throwing_init) env.classes then
      cases := `Obj :: !cases;
    if List.exists (fun c -> c.c_throwing_init) env.classes && !budget > 1 then
      cases := `ObjTry :: !cases;
    if List.exists (fun (_, c) -> c.c_ints <> []) env.objs then
      cases := `FieldSet :: !cases;
    if List.exists (fun (_, c) -> c.c_mutators <> []) env.objs then
      cases := `Mutate :: !cases;
    if List.exists (fun (_, c) -> c.c_arr <> None) env.objs then
      cases := `ObjArr :: !cases;
    if env.funs1 <> [] then cases := `CloUse :: !cases;
    if throwing_fns <> [] then cases := `TryOpt :: !cases;
    if throwing_fns <> [] && env.e_throws then cases := `Try :: !cases;
    if env.e_throws then cases := `Throw :: !cases;
    (match pick st !cases with
    | `Let ->
      let v = fresh ctx "v" in
      emit (Line (Printf.sprintf "let %s = %s" v (gen_expr ctx env 2)));
      env.ints <- v :: env.ints
    | `Var ->
      let v = fresh ctx "v" in
      emit (Line (Printf.sprintf "var %s = %s" v (gen_expr ctx env 2)));
      env.ints <- v :: env.ints;
      env.muts <- v :: env.muts
    | `Assign ->
      charge env 1;
      emit (Line (Printf.sprintf "%s = %s" (pick st env.muts) (gen_expr ctx env 2)))
    | `Print ->
      charge env 3;
      emit (Line (Printf.sprintf "print(%s)" (gen_expr ctx env 2)))
    | `If ->
      let c = gen_cond ctx env in
      let then_ = gen_stmts ctx (sub_env env) ~fuel:(irange st 1 2) in
      if chance st 50 then
        emit (Block2 (Printf.sprintf "if %s" c, then_,
                      gen_stmts ctx (sub_env env) ~fuel:(irange st 1 2)))
      else emit (Block (Printf.sprintf "if %s" c, then_))
    | `For ->
      let k = irange st 2 5 in
      let i = fresh ctx "i" in
      let inner = sub_env ~mult:k env in
      inner.ints <- i :: inner.ints;
      let body = gen_stmts ctx inner ~fuel:(irange st 1 3) in
      emit (Block (Printf.sprintf "for %s in 0 ..< %d" i k, body))
    | `ForArr ->
      let a, _len = pick st env.arrs in
      let i = fresh ctx "i" in
      let inner = sub_env ~mult:8 env in
      inner.ints <- i :: inner.ints;
      charge env 8;
      let update = Line (Printf.sprintf "%s[%s] = %s" a i (gen_expr ctx inner 1)) in
      let rest = gen_stmts ctx inner ~fuel:(irange st 0 1) in
      emit (Block (Printf.sprintf "for %s in 0 ..< len(%s)" i a, update :: rest))
    | `While ->
      let w = fresh ctx "w" in
      let k = irange st 1 5 in
      emit (Line (Printf.sprintf "var %s = %d" w k));
      let inner = sub_env ~mult:k env in
      inner.ints <- w :: inner.ints;
      let body = gen_stmts ctx inner ~fuel:(irange st 1 2) in
      charge env k;
      emit
        (Block (Printf.sprintf "while %s > 0" w,
                Line (Printf.sprintf "%s = %s - 1" w w) :: body))
    | `ArrDecl ->
      let a = fresh ctx "a" in
      let len = irange st 3 8 in
      charge env len;
      emit (Line (Printf.sprintf "let %s = array(%d)" a len));
      env.arrs <- (a, len) :: env.arrs
    | `ArrSet ->
      charge env 1;
      let a, len = pick st env.arrs in
      emit
        (Line (Printf.sprintf "%s[%d] = %s" a (irange st 0 (len - 1))
                 (gen_expr ctx env 2)))
    | `Obj ->
      let c = pick st (List.filter (fun c -> not c.c_throwing_init) env.classes) in
      let o = fresh ctx "o" in
      charge env 20;
      emit
        (Line (Printf.sprintf "let %s = %s(%s)" o c.c_name
                 (gen_args ctx env c.c_init_arity)));
      env.objs <- (o, c) :: env.objs
    | `ObjTry ->
      (* Guarded throwing-initializer use, as in the paper's decoding code:
         a failed [try?] init yields 0, so the object is only touched in the
         else branch.  The object deliberately does not join the scope. *)
      let c = pick st (List.filter (fun c -> c.c_throwing_init) env.classes) in
      let o = fresh ctx "o" in
      charge env 25;
      emit
        (Line (Printf.sprintf "let %s = try? %s(%s)" o c.c_name
                 (gen_args ctx env c.c_init_arity)));
      let use =
        match c.c_ints with
        | f :: _ -> Printf.sprintf "print(%s.%s)" o f
        | [] -> Printf.sprintf "print(%d)" (irange st 0 99)
      in
      emit
        (Block2 (Printf.sprintf "if %s == 0" o,
                 [ Line (Printf.sprintf "print(%d)" (irange st 100 199)) ],
                 [ Line use ]))
    | `FieldSet ->
      charge env 1;
      let o, c = pick st (List.filter (fun (_, c) -> c.c_ints <> []) env.objs) in
      emit
        (Line (Printf.sprintf "%s.%s = %s" o (pick st c.c_ints)
                 (gen_expr ctx env 2)))
    | `Mutate ->
      charge env 5;
      let o, c = pick st (List.filter (fun (_, c) -> c.c_mutators <> []) env.objs) in
      emit
        (Line (Printf.sprintf "%s.%s(%s)" o (pick st c.c_mutators)
                 (gen_expr ctx env 1)))
    | `ObjArr ->
      charge env 1;
      let o, c = pick st (List.filter (fun (_, c) -> c.c_arr <> None) env.objs) in
      let f = Option.get c.c_arr in
      let idx = irange st 0 (c.c_arr_len - 1) in
      if chance st 50 then
        emit
          (Line (Printf.sprintf "%s.%s[%d] = %s" o f idx (gen_expr ctx env 1)))
      else
        emit (Line (Printf.sprintf "print(%s.%s[%d])" o f idx))
    | `Closure ->
      let cvar = fresh ctx "c" in
      emit (Line (Printf.sprintf "let %s = %s" cvar (gen_closure ctx env)));
      env.funs1 <- cvar :: env.funs1
    | `CloUse ->
      charge env 10;
      let cvar = pick st env.funs1 in
      let v = fresh ctx "v" in
      emit (Line (Printf.sprintf "let %s = %s(%s)" v cvar (gen_expr ctx env 1)));
      env.ints <- v :: env.ints
    | `TryOpt ->
      let f = pick st throwing_fns in
      charge env f.f_cost;
      let v = fresh ctx "v" in
      emit
        (Line (Printf.sprintf "let %s = try? %s(%s)" v f.f_name
                 (gen_args ctx env f.f_arity)));
      env.ints <- v :: env.ints
    | `Try ->
      let f = pick st throwing_fns in
      charge env f.f_cost;
      let v = fresh ctx "v" in
      emit
        (Line (Printf.sprintf "let %s = try %s(%s)" v f.f_name
                 (gen_args ctx env f.f_arity)));
      env.ints <- v :: env.ints
    | `Throw ->
      emit
        (Block (Printf.sprintf "if %s" (gen_cond ctx env), [ Line "throw" ])))
  done;
  List.rev !out

(* --- declarations ----------------------------------------------------------- *)

let gen_class ctx =
  let st = ctx.st in
  let name = fresh ctx "K" in
  let n_ints = irange st 1 3 in
  let ints = List.init n_ints (fun i -> Printf.sprintf "g%d" i) in
  let has_arr = chance st 40 in
  let arr_len = 4 in
  let init_arity = irange st 1 2 in
  let throwing = chance st 30 in
  let getters = if chance st 80 then [ (fresh ctx "get", irange st 0 1) ] else [] in
  let mutators = if chance st 50 then [ fresh ctx "bump" ] else [] in
  let cls =
    {
      c_name = name;
      c_ints = ints;
      c_arr = (if has_arr then Some "items" else None);
      c_arr_len = arr_len;
      c_getters = getters;
      c_mutators = mutators;
      c_init_arity = init_arity;
      c_throwing_init = throwing;
    }
  in
  let fields =
    List.map (fun f -> Line (Printf.sprintf "var %s: Int" f)) ints
    @ (if has_arr then [ Line "var items: [Int]" ] else [])
  in
  let init_params =
    String.concat ", "
      (List.init init_arity (fun i -> Printf.sprintf "a%d: Int" i))
  in
  let init_body =
    (if throwing then [ Line "if a0 < 0 { throw }" ] else [])
    @ List.mapi
        (fun i f ->
          let src = Printf.sprintf "a%d" (i mod init_arity) in
          if i = 0 then Line (Printf.sprintf "self.%s = %s" f src)
          else Line (Printf.sprintf "self.%s = %s + %d" f src i))
        ints
    @
    if has_arr then
      [
        Line (Printf.sprintf "self.items = array(%d)" arr_len);
        Line "self.items[0] = a0";
      ]
    else []
  in
  let init_hdr =
    if throwing then Printf.sprintf "init(%s) throws" init_params
    else Printf.sprintf "init(%s)" init_params
  in
  let methods =
    List.map
      (fun (m, arity) ->
        let params =
          String.concat ", " (List.init arity (fun i -> Printf.sprintf "p%d: Int" i))
        in
        let terms =
          List.map (fun f -> "self." ^ f) ints
          @ List.init arity (fun i -> Printf.sprintf "p%d" i)
        in
        let expr =
          match terms with
          | [ t ] -> t
          | t :: rest -> List.fold_left (fun acc u -> Printf.sprintf "(%s + %s)" acc u) t rest
          | [] -> "0"
        in
        Block (Printf.sprintf "func %s(%s) -> Int" m params, [ Line ("return " ^ expr) ]))
      getters
    @ List.map
        (fun m ->
          let f = List.hd ints in
          Block (Printf.sprintf "func %s(d: Int)" m,
                 [ Line (Printf.sprintf "self.%s = self.%s + d" f f) ]))
        mutators
  in
  (cls, Block ("class " ^ name, fields @ [ Block (init_hdr, init_body) ] @ methods))

let gen_hof ctx =
  let st = ctx.st in
  let name = fresh ctx "h" in
  let k = irange st 2 4 in
  let m = irange st 5 20 in
  let node =
    Block
      (Printf.sprintf "func %s(f: (Int) -> Int, a0: Int) -> Int" name,
       [
         Line "var acc = a0";
         Block
           (Printf.sprintf "for i in 0 ..< %d" k,
            [ Line (Printf.sprintf "acc = acc + f((acc %% %d) + i)" m) ]);
         Line "return acc";
       ])
  in
  let fn = { f_name = name; f_arity = 1; f_throws = false; f_hof = true; f_cost = k * 60 } in
  ctx.fns <- fn :: ctx.fns;
  node

let gen_function ctx classes ~throws ~fuel =
  let st = ctx.st in
  let name = fresh ctx (if throws then "t" else "f") in
  let arity = irange st 1 3 in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let env =
    {
      ints = params;
      muts = [];
      arrs = [];
      objs = [];
      funs1 = [];
      e_throws = throws;
      classes;
      loop_mult = 1;
      cost = ref 10;
    }
  in
  let guard =
    if throws then [ Line (Printf.sprintf "if p0 < (0 - %d) { throw }" (irange st 50 500)) ]
    else []
  in
  let body = gen_stmts ctx env ~fuel in
  let ret = Line (Printf.sprintf "return %s" (gen_expr ctx env 2)) in
  let sig_ =
    String.concat ", " (List.map (fun p -> p ^ ": Int") params)
  in
  let hdr =
    if throws then Printf.sprintf "func %s(%s) throws -> Int" name sig_
    else Printf.sprintf "func %s(%s) -> Int" name sig_
  in
  let node = Block (hdr, guard @ body @ [ ret ]) in
  let fn = { f_name = name; f_arity = arity; f_throws = throws; f_hof = false;
             f_cost = !(env.cost) + 10 } in
  ctx.fns <- fn :: ctx.fns;
  node

let gen_main ctx classes ~fuel =
  let env =
    {
      ints = [];
      muts = [];
      arrs = [];
      objs = [];
      funs1 = [];
      e_throws = false;
      classes;
      loop_mult = 1;
      cost = ref 10;
    }
  in
  let body = gen_stmts ctx env ~fuel in
  let ret = Line (Printf.sprintf "return (%s & 255)" (gen_expr ctx env 2)) in
  Block ("func main() -> Int", body @ [ ret ])

let generate st ~fuel =
  let fuel = max 2 fuel in
  let ctx = { st; uid = 0; fns = [] } in
  let n_modules = min 4 (1 + irange st 0 (fuel / 4)) in
  let modules =
    List.init n_modules (fun mi ->
        let m_name = Printf.sprintf "m%d" mi in
        let classes = ref [] in
        let decls = ref [] in
        let n_classes = if chance st 60 then irange st 1 2 else 0 in
        for _ = 1 to n_classes do
          let cls, node = gen_class ctx in
          classes := cls :: !classes;
          decls := node :: !decls
        done;
        if chance st 40 then decls := gen_hof ctx :: !decls;
        let n_funcs = irange st 1 (max 1 (fuel / 3)) in
        for _ = 1 to n_funcs do
          let throws = chance st 25 in
          decls :=
            gen_function ctx !classes ~throws ~fuel:(irange st 2 fuel) :: !decls
        done;
        if mi = n_modules - 1 then
          decls := gen_main ctx !classes ~fuel:(max 3 fuel) :: !decls;
        (m_name, List.rev !decls))
  in
  let flag_style =
    match irange st 0 9 with
    | 0 | 1 -> Uniform_packed
    | 2 | 3 -> Mixed_compilers
    | _ -> Uniform_attrs
  in
  { modules; flag_style }
