(** Seeded random machine-program generator, for direct outliner stress.

    Programs are safe by construction:

    - the call graph is acyclic: functions are arranged in "generations",
      and a function only ever calls into strictly later generations;
    - every branch inside a function is forward-only, so execution
      terminates without relying on the interpreter's step limit;
    - each generation [g] saves LR into its own callee-saved register
      [x(19+g)] ([main] uses x28) with a prologue shared verbatim by the
      functions of that generation — so the LR save/restore motif repeats
      and becomes an outlining candidate the moment the legality rule for
      LR is broken (see {!Outcore.Legality.unsafe_outline_lr});
    - address-valued registers (the LR saves, and x8 which holds [Adr]
      results) never flow into [print_i64], [exit_value] or stored data,
      so correct outlining — which legitimately moves code around —
      cannot change observable behaviour. *)

val generate : Random.State.t -> fuel:int -> Machine.Program.t
(** Deterministic in the state.  [fuel] scales generation count, functions
    per generation and block/instruction counts.  The program defines
    [main], declares [print_i64] as its only extern, and validates. *)
