(** Seeded random Swiftlet program generator.

    Programs are built as a tree of printable nodes so the shrinker can
    minimize failing cases by subtree deletion ({!delete_node}) and simply
    re-print and re-compile: deletions that break scoping or typing are
    rejected by the compile step, not by bookkeeping here.

    The generator only produces programs that are well-typed and
    deterministic by construction: divisors and shift amounts are
    constants, array indices are loop-bounded or in-range literals, loops
    are bounded, the call graph is acyclic, and no address-valued
    expression (class reference) ever reaches [print] or [main]'s return
    value — so the MIR evaluator and the machine interpreter must agree
    exactly, under every pipeline configuration. *)

type node =
  | Line of string
  | Block of string * node list              (** [header { body }] *)
  | Block2 of string * node list * node list (** [header { a } else { b }] *)

(** How module metadata flags are emitted, to exercise the §VI-2
    [llvm-link] conflict across the lattice's [flag_semantics] axis. *)
type flag_style =
  | Uniform_attrs    (** every module uses the attribute encoding *)
  | Uniform_packed   (** every module packs the same legacy word *)
  | Mixed_compilers  (** packed words with different compiler id/version
                         bits per module: conflicts under [Legacy],
                         links fine under [Attributes] *)

type program = {
  modules : (string * node list) list;  (** (module name, declarations) *)
  flag_style : flag_style;
}

val generate : Random.State.t -> fuel:int -> program
(** Deterministic in the state: same seed, same program.  [fuel] scales
    module count, declarations per module and statements per function. *)

val to_sources : program -> (string * string) list
(** (module name, Swiftlet source) pairs, ready for
    [Swiftlet.Compile.compile_program]. *)

val print_source : program -> string
(** All modules concatenated with [// module] headers, for reports. *)

val source_lines : program -> int
(** Non-blank source lines across all modules. *)

val count_nodes : program -> int
(** Number of deletable nodes (pre-order over all modules). *)

val delete_node : program -> int -> program option
(** Remove the n-th node (and its subtree); [None] if out of range. *)
