open Machine

let irange st lo hi = lo + Random.State.int st (hi - lo + 1)
let pick st l = List.nth l (Random.State.int st (List.length l))
let chance st pct = Random.State.int st 100 < pct

(* Register roles.  Arithmetic lives in x0..x7, x8 holds addresses, x9..x12
   are prologue-filler scratch, x(19+g)/x28 hold saved LRs.  Keeping the
   roles disjoint is what makes outlining-induced address motion invisible
   to the program's output. *)
let arith_reg st = Reg.x (irange st 0 7)
let addr_reg = Reg.x 8

let buf_words = 8

let arith_ops = [ Insn.Add; Sub; Mul; And; Orr; Eor ]

(* One straight-line instruction that cannot trap and cannot observe an
   address: constant divisors, small constant shifts, in-bounds [buf]
   offsets. *)
let gen_body_insn st =
  match irange st 0 9 with
  | 0 | 1 | 2 ->
    Insn.Binop (pick st arith_ops, arith_reg st, arith_reg st, Rop (arith_reg st))
  | 3 | 4 ->
    Insn.Binop (pick st arith_ops, arith_reg st, arith_reg st, Imm (irange st 0 99))
  | 5 -> Insn.Mov (arith_reg st, Imm (irange st 0 99))
  | 6 -> Insn.Binop (Sdiv, arith_reg st, arith_reg st, Imm (irange st 2 9))
  | 7 ->
    Insn.Binop (pick st [ Insn.Lsl; Lsr; Asr ], arith_reg st, arith_reg st,
                Imm (irange st 0 6))
  | 8 ->
    Insn.Ldr (arith_reg st,
              { base = addr_reg; off = 8 * irange st 0 (buf_words - 1);
                mode = Offset })
  | _ ->
    Insn.Str (arith_reg st,
              { base = addr_reg; off = 8 * irange st 0 (buf_words - 1);
                mode = Offset })

(* The shared prologue of one generation: the LR save followed by identical
   filler so the repeated pattern is long enough to be profitable once the
   legality rule stops protecting it. *)
let gen_prologue st ~save_reg =
  let fillers =
    List.init (irange st 5 8) (fun i ->
        let r = Reg.x (9 + (i mod 4)) in
        match irange st 0 2 with
        | 0 -> Insn.Mov (r, Imm (irange st 0 99))
        | 1 -> Insn.Binop (Add, r, r, Imm (irange st 1 9))
        | _ -> Insn.Binop (Eor, r, r, Rop (Reg.x (9 + ((i + 1) mod 4)))))
  in
  Insn.mov_r save_reg Reg.lr :: fillers

(* A motif shared across several functions of different generations, so the
   *correct* outliner always has something to chew on too. *)
let gen_shared_motif st =
  List.init (irange st 3 6) (fun _ -> gen_body_insn st)

let gen_function st ~name ~prologue ~save_reg ~callees ~motifs ~may_print =
  let n_blocks = irange st 1 3 in
  let label i = Printf.sprintf "%s_b%d" name i in
  let ret_label = Printf.sprintf "%s_ret" name in
  let calls_left = ref (if callees = [] then 0 else irange st 0 2) in
  let block i =
    let body = ref [] in
    let n = irange st 2 5 in
    for _ = 1 to n do
      body := gen_body_insn st :: !body
    done;
    if motifs <> [] && chance st 60 then body := List.rev (pick st motifs) @ !body;
    if !calls_left > 0 && chance st 60 then begin
      decr calls_left;
      body := Insn.Bl (pick st callees) :: !body
    end;
    if may_print && chance st 35 then
      body :=
        Insn.Bl "print_i64"
        :: Insn.Binop (And, Reg.x 0, arith_reg st, Imm 1023)
        :: !body;
    let next = if i + 1 < n_blocks then label (i + 1) else ret_label in
    let term =
      if i + 1 >= n_blocks then Block.B next
      else
        match irange st 0 3 with
        | 0 -> Block.B next
        | 1 -> Block.Cbz (arith_reg st, ret_label, next)
        | 2 -> Block.Cbnz (arith_reg st, ret_label, next)
        | _ ->
          body := Insn.Cmp (arith_reg st, Imm (irange st 0 50)) :: !body;
          Block.Bcond
            (pick st [ Cond.Eq; Ne; Lt; Le; Gt; Ge ], ret_label, next)
    in
    Block.make ~label:(label i) (List.rev !body) term
  in
  let entry_prologue = Insn.Adr (addr_reg, "buf") :: prologue in
  let blocks = List.init n_blocks block in
  let blocks =
    match blocks with
    | (b : Block.t) :: rest ->
      { b with body = Array.append (Array.of_list entry_prologue) b.body }
      :: rest
    | [] -> assert false
  in
  let ret_block =
    Block.make ~label:ret_label [ Insn.mov_r Reg.lr save_reg ] Block.Ret
  in
  Mfunc.make ~from_module:"fuzz" ~name (blocks @ [ ret_block ])

let generate st ~fuel =
  let fuel = max 2 fuel in
  let n_gens = 2 + irange st 0 (min 2 (fuel / 4)) in
  let per_gen = 2 + irange st 0 1 in
  let motifs = List.init 3 (fun _ -> gen_shared_motif st) in
  (* Deepest generation first, so every function's callee list is closed. *)
  let funcs = ref [] in
  let callees = ref [] in
  for g = n_gens - 1 downto 0 do
    (* Same-generation functions share one prologue verbatim: that is the
       repeated sequence the outliner sees. *)
    let save_reg = Reg.x (19 + g) in
    let prologue = gen_prologue st ~save_reg in
    let gen_names = ref [] in
    for i = 0 to per_gen - 1 do
      let name = Printf.sprintf "g%d_f%d" g i in
      gen_names := name :: !gen_names;
      funcs :=
        gen_function st ~name ~prologue ~save_reg ~callees:!callees ~motifs
          ~may_print:true
        :: !funcs
    done;
    callees := !gen_names @ !callees
  done;
  let main_save = Reg.x 28 in
  let main =
    gen_function st ~name:"main" ~prologue:(gen_prologue st ~save_reg:main_save)
      ~save_reg:main_save ~callees:!callees ~motifs ~may_print:true
  in
  (* Force a deterministic exit value in [0, 255]. *)
  let main =
    let rec patch = function
      | [] -> []
      | [ (b : Block.t) ] when b.term = Block.Ret ->
        [ { b with
            body =
              Array.append b.body
                [| Insn.Binop (And, Reg.x 0, Reg.x 0, Imm 255) |];
          } ]
      | b :: rest -> b :: patch rest
    in
    { main with Mfunc.blocks = patch main.Mfunc.blocks }
  in
  let data =
    [ Dataobj.make ~from_module:"fuzz" ~name:"buf"
        (List.init buf_words (fun i -> Dataobj.Word ((i * 37) + 5))) ]
  in
  let p = Program.make ~data ~externs:[ "print_i64" ] (main :: !funcs) in
  (match Program.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg ("Machgen.generate produced invalid program: " ^ e));
  p
