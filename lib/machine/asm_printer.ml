let insn_to_source i =
  match i with
  | Insn.Mov (d, Insn.Rop s) ->
    Printf.sprintf "orr %s, xzr, %s" (Reg.to_string d) (Reg.to_string s)
  | Insn.Mov (d, Insn.Imm n) -> Printf.sprintf "mov %s, #%d" (Reg.to_string d) n
  | other -> Insn.to_string other

let term_to_source = function
  | Block.Ret -> "ret"
  | Block.B l -> Printf.sprintf "b %s" l
  | Block.Bcond (c, a, b) -> Printf.sprintf "b.%s %s, %s" (Cond.to_string c) a b
  | Block.Cbz (r, a, b) -> Printf.sprintf "cbz %s, %s, %s" (Reg.to_string r) a b
  | Block.Cbnz (r, a, b) -> Printf.sprintf "cbnz %s, %s, %s" (Reg.to_string r) a b
  | Block.Tail_call s -> Printf.sprintf "b %s" s
  | Block.Fallthrough l -> Printf.sprintf "fall %s" l

let func_to_source (f : Mfunc.t) =
  let buf = Buffer.create 512 in
  let opts =
    (if f.from_module = "" then "" else Printf.sprintf " module=%s" f.from_module)
    ^ (if f.no_outline then " no_outline" else "")
    ^
    match f.cold_from with
    | None -> ""
    | Some l -> Printf.sprintf " cold=%s" l
  in
  Buffer.add_string buf (Printf.sprintf "func %s%s:\n" f.name opts);
  List.iter
    (fun (b : Block.t) ->
      Buffer.add_string buf (b.label ^ ":\n");
      Array.iter
        (fun i -> Buffer.add_string buf ("  " ^ insn_to_source i ^ "\n"))
        b.body;
      Buffer.add_string buf ("  " ^ term_to_source b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

let to_source (p : Program.t) =
  let buf = Buffer.create 4096 in
  List.iter (fun e -> Buffer.add_string buf (Printf.sprintf "extern %s\n" e)) p.externs;
  List.iter
    (fun (d : Dataobj.t) ->
      Buffer.add_string buf (Printf.sprintf "data %s:" d.name);
      Array.iter
        (fun init ->
          match init with
          | Dataobj.Word w -> Buffer.add_string buf (Printf.sprintf " %d" w)
          | Dataobj.Sym s -> Buffer.add_string buf (Printf.sprintf " @%s" s))
        d.words;
      Buffer.add_char buf '\n')
    p.data;
  List.iter (fun f -> Buffer.add_string buf (func_to_source f)) p.funcs;
  Buffer.contents buf
