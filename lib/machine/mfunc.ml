type t = {
  name : string;
  blocks : Block.t list;
  from_module : string;
  is_outlined : bool;
  no_outline : bool;
  cold_from : string option;
}

let make ?(from_module = "") ?(is_outlined = false) ?(no_outline = false)
    ?cold_from ~name blocks =
  { name; blocks; from_module; is_outlined; no_outline; cold_from }

let size_bytes f =
  List.fold_left (fun acc b -> acc + Block.size_bytes b) 0 f.blocks

let insn_count f =
  List.fold_left (fun acc (b : Block.t) -> acc + Array.length b.body + 1) 0
    f.blocks

let find_block f label =
  List.find (fun (b : Block.t) -> String.equal b.label label) f.blocks

let entry f =
  match f.blocks with
  | [] -> invalid_arg ("Mfunc.entry: empty function " ^ f.name)
  | b :: _ -> b

let map_blocks g f = { f with blocks = List.map g f.blocks }

(* The cold chain is a suffix of the block list: everything from the first
   block labelled [cold_from] onwards.  A [cold_from] label that names no
   block yields an empty cold chain (rejected by Program.validate). *)
let partition f =
  match f.cold_from with
  | None -> (f.blocks, [])
  | Some l ->
    let rec go hot = function
      | [] -> (List.rev hot, [])
      | (b : Block.t) :: _ as cold when String.equal b.label l ->
        (List.rev hot, cold)
      | b :: rest -> go (b :: hot) rest
    in
    go [] f.blocks

let hot_blocks f = fst (partition f)
let cold_blocks f = snd (partition f)
let is_split f = cold_blocks f <> []

let sum_blocks bs =
  List.fold_left (fun acc b -> acc + Block.size_bytes b) 0 bs

let hot_size_bytes f = sum_blocks (hot_blocks f)
let cold_size_bytes f = sum_blocks (cold_blocks f)

let pp ppf f =
  Format.fprintf ppf "%s:  ; module=%s%s%s@." f.name f.from_module
    (if f.is_outlined then " [outlined]" else "")
    (match f.cold_from with
    | None -> ""
    | Some l -> Printf.sprintf " [cold from %s]" l);
  List.iter (fun b -> Block.pp ppf b) f.blocks
