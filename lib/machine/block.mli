(** Basic blocks: a straight-line body of instructions followed by exactly
    one terminator. *)

type terminator =
  | Ret                                   (** return via LR *)
  | B of string                           (** unconditional branch to a block label *)
  | Bcond of Cond.t * string * string     (** conditional branch: taken / fallthrough labels *)
  | Cbz of Reg.t * string * string        (** branch to first label if register is zero *)
  | Cbnz of Reg.t * string * string
  | Tail_call of string                   (** [B symbol]: jump to another function *)
  | Fallthrough of string                 (** elided branch: the target block is
                                              placed immediately after this one,
                                              so no branch bytes are emitted *)

type t = {
  label : string;
  body : Insn.t array;
  term : terminator;
}

val make : label:string -> Insn.t list -> terminator -> t

val term_size_bytes : terminator -> int
(** [Bcond]/[Cbz]/[Cbnz] lower to a conditional branch plus an unconditional
    branch when the fallthrough is not adjacent; we charge a flat 4 bytes and
    let layout elide the extra branch, as real assemblers do.  [Fallthrough]
    is the elision made explicit: 0 bytes, valid only when the target block
    is placed immediately after this one (checked by [Program.validate]). *)

val size_bytes : t -> int
(** Body plus terminator. *)

val successors : terminator -> string list
val term_uses : terminator -> Regset.t
val equal_terminator : terminator -> terminator -> bool
val pp_terminator : Format.formatter -> terminator -> unit
val pp : Format.formatter -> t -> unit
