type t = {
  funcs : Mfunc.t list;
  data : Dataobj.t list;
  externs : string list;
}

let make ?(data = []) ?(externs = []) funcs = { funcs; data; externs }
let empty = { funcs = []; data = []; externs = [] }

let concat units =
  let funcs = List.concat_map (fun u -> u.funcs) units in
  let data = List.concat_map (fun u -> u.data) units in
  let externs =
    List.sort_uniq String.compare (List.concat_map (fun u -> u.externs) units)
  in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (f : Mfunc.t) ->
      if Hashtbl.mem seen f.name then
        invalid_arg ("Program.concat: duplicate function " ^ f.name)
      else Hashtbl.add seen f.name ())
    funcs;
  { funcs; data; externs }

let code_size_bytes p =
  List.fold_left (fun acc f -> acc + Mfunc.size_bytes f) 0 p.funcs

let data_size_bytes p =
  List.fold_left (fun acc d -> acc + Dataobj.size_bytes d) 0 p.data

let insn_count p =
  List.fold_left (fun acc f -> acc + Mfunc.insn_count f) 0 p.funcs

let find_func p name =
  List.find_opt (fun (f : Mfunc.t) -> String.equal f.name name) p.funcs

let replace_funcs p funcs = { p with funcs }
let add_funcs p funcs = { p with funcs = p.funcs @ funcs }

let validate p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let fnames = Hashtbl.create 1024 in
  let dup =
    List.find_opt
      (fun (f : Mfunc.t) ->
        if Hashtbl.mem fnames f.name then true
        else (Hashtbl.add fnames f.name (); false))
      p.funcs
  in
  match dup with
  | Some f -> err "duplicate function %s" f.name
  | None ->
    let syms = Hashtbl.create 1024 in
    List.iter (fun (f : Mfunc.t) -> Hashtbl.replace syms f.name ()) p.funcs;
    List.iter (fun (d : Dataobj.t) -> Hashtbl.replace syms d.name ()) p.data;
    List.iter (fun e -> Hashtbl.replace syms e ()) p.externs;
    let check_func (f : Mfunc.t) =
      let labels = Hashtbl.create 16 in
      let bad_label =
        List.find_opt
          (fun (b : Block.t) ->
            if Hashtbl.mem labels b.label then true
            else (Hashtbl.add labels b.label (); false))
          f.blocks
      in
      match bad_label with
      | Some b -> err "function %s: duplicate label %s" f.name b.label
      | None ->
        let check_block (b : Block.t) =
          let bad_target =
            List.find_opt
              (fun l -> not (Hashtbl.mem labels l))
              (Block.successors b.term)
          in
          match bad_target with
          | Some l -> err "function %s: branch to unknown label %s" f.name l
          | None ->
            let bad_sym = ref None in
            Array.iter
              (fun i ->
                match i with
                | Insn.Bl s when not (Hashtbl.mem syms s) -> bad_sym := Some s
                | Insn.Adr (_, s) when not (Hashtbl.mem syms s) ->
                  bad_sym := Some s
                | _ -> ())
              b.body;
            (match b.term with
            | Block.Tail_call s when not (Hashtbl.mem syms s) ->
              bad_sym := Some s
            | _ -> ());
            (match !bad_sym with
            | Some s -> err "function %s: reference to unknown symbol %s" f.name s
            | None -> Ok ())
        in
        (* Chain structure: cold_from must name a non-entry block, and a
           Fallthrough is only valid when its target is the block placed
           immediately after it within the same (hot or cold) section. *)
        let check_chain section blocks =
          let rec go = function
            | [] -> Ok ()
            | [ (b : Block.t) ] -> (
              match b.term with
              | Block.Fallthrough l ->
                err "function %s: fallthrough to %s at the end of the %s chain"
                  f.name l section
              | _ -> Ok ())
            | (b : Block.t) :: ((next : Block.t) :: _ as rest) -> (
              match b.term with
              | Block.Fallthrough l when not (String.equal next.label l) ->
                err "function %s: fallthrough to %s but %s is placed next"
                  f.name l next.label
              | _ -> go rest)
          in
          go blocks
        in
        let check_chains () =
          let hot, cold = Mfunc.partition f in
          match f.cold_from with
          | Some l when cold = [] ->
            err "function %s: cold_from %s names no block" f.name l
          | Some l when hot = [] ->
            err "function %s: cold_from %s would split off the entry block"
              f.name l
          | _ -> (
            match check_chain "hot" hot with
            | Error _ as e -> e
            | Ok () -> check_chain "cold" cold)
        in
        let blocks_ok =
          List.fold_left
            (fun acc b ->
              match acc with Error _ -> acc | Ok () -> check_block b)
            (Ok ()) f.blocks
        in
        (match blocks_ok with Error _ -> blocks_ok | Ok () -> check_chains ())
    in
    List.fold_left
      (fun acc f -> match acc with Error _ -> acc | Ok () -> check_func f)
      (Ok ()) p.funcs

let pp ppf p =
  List.iter (fun f -> Mfunc.pp ppf f) p.funcs;
  if p.data <> [] then begin
    Format.fprintf ppf ".data:@.";
    List.iter (fun d -> Dataobj.pp ppf d) p.data
  end
