exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokenize s =
  (* Split on whitespace and commas; brackets and #/!/@ stay attached. *)
  let buf = Buffer.create 16 in
  let toks = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !toks

let parse_reg line s =
  match Reg.of_string s with
  | Some r -> r
  | None -> fail line "expected register, got %S" s

let parse_imm line s =
  let s = if String.length s > 0 && s.[0] = '#' then String.sub s 1 (String.length s - 1) else s in
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line "expected immediate, got %S" s

let parse_operand line s =
  match Reg.of_string s with
  | Some r -> Insn.Rop r
  | None -> Insn.Imm (parse_imm line s)

(* Address syntax arrives as tokens like "[sp" "#16]" or "[sp]" or
   "[sp" "#-16]!" or "[sp]" "#16" (post-indexed). *)
let parse_addr line toks =
  match toks with
  | [ one ] ->
    let n = String.length one in
    if n >= 2 && one.[0] = '[' && one.[n - 1] = ']' then
      { Insn.base = parse_reg line (String.sub one 1 (n - 2)); off = 0; mode = Insn.Offset }
    else fail line "bad address %S" one
  | [ base; off ] when String.length base > 0 && base.[0] = '[' ->
    let base_s = String.sub base 1 (String.length base - 1) in
    if String.length base_s > 0 && base_s.[String.length base_s - 1] = ']' then
      (* "[sp]" "#16" : post-indexed *)
      let base_r = parse_reg line (String.sub base_s 0 (String.length base_s - 1)) in
      { Insn.base = base_r; off = parse_imm line off; mode = Insn.Post }
    else
      let base_r = parse_reg line base_s in
      let n = String.length off in
      if n >= 2 && off.[n - 1] = '!' && off.[n - 2] = ']' then
        { Insn.base = base_r; off = parse_imm line (String.sub off 0 (n - 2)); mode = Insn.Pre }
      else if n >= 1 && off.[n - 1] = ']' then
        { Insn.base = base_r; off = parse_imm line (String.sub off 0 (n - 1)); mode = Insn.Offset }
      else fail line "bad address offset %S" off
  | _ -> fail line "bad address"

let binop_of_string = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "mul" -> Some Insn.Mul
  | "sdiv" -> Some Insn.Sdiv
  | "and" -> Some Insn.And
  | "orr" -> Some Insn.Orr
  | "eor" -> Some Insn.Eor
  | "lsl" -> Some Insn.Lsl
  | "lsr" -> Some Insn.Lsr
  | "asr" -> Some Insn.Asr
  | _ -> None

type parsed_line =
  | L_func of string * string * bool * string option
      (* name, module, no_outline, cold_from *)
  | L_label of string
  | L_insn of Insn.t
  | L_term_ret
  | L_term_b of string                (* branch or tail call, resolved later *)
  | L_term_fall of string
  | L_term_bcond of Cond.t * string * string
  | L_term_cbz of Reg.t * string * string
  | L_term_cbnz of Reg.t * string * string
  | L_data of Dataobj.t
  | L_extern of string
  | L_blank

let parse_line lineno raw =
  let s = String.trim (strip_comment raw) in
  if s = "" then L_blank
  else
    let toks = tokenize s in
    match toks with
    | [] -> L_blank
    | kw :: rest -> (
      match kw, rest with
      | "func", _ ->
        let rest_s = String.concat " " rest in
        let n = String.length rest_s in
        if n = 0 || rest_s.[n - 1] <> ':' then fail lineno "func line must end with ':'"
        else
          let parts = String.split_on_char ' ' (String.sub rest_s 0 (n - 1)) in
          (match parts with
          | name :: opts ->
            let module_ = ref "" and no_outline = ref false in
            let cold_from = ref None in
            List.iter
              (fun o ->
                if o = "" then ()
                else if o = "no_outline" then no_outline := true
                else if String.length o > 7 && String.sub o 0 7 = "module=" then
                  module_ := String.sub o 7 (String.length o - 7)
                else if String.length o > 5 && String.sub o 0 5 = "cold=" then
                  cold_from := Some (String.sub o 5 (String.length o - 5))
                else fail lineno "unknown func option %S" o)
              opts;
            L_func (name, !module_, !no_outline, !cold_from)
          | [] -> fail lineno "func needs a name")
      | "extern", [ name ] -> L_extern name
      | "data", name_colon :: inits when String.length name_colon > 0 ->
        let name, from_module =
          let n = String.length name_colon in
          if name_colon.[n - 1] = ':' then (String.sub name_colon 0 (n - 1), "")
          else
            match inits with
            | m :: _ when String.length m > 7 && String.sub m 0 7 = "module=" ->
              (name_colon, String.sub m 7 (String.length m - 7))
            | _ -> fail lineno "data line must have 'name:'"
        in
        let inits =
          if from_module = "" then inits
          else match inits with _ :: r -> r | [] -> []
        in
        let inits =
          List.map
            (fun t ->
              if String.length t > 1 && t.[0] = '@' then
                Dataobj.Sym (String.sub t 1 (String.length t - 1))
              else Dataobj.Word (parse_imm lineno t))
            (List.filter (fun t -> t <> "") inits)
        in
        L_data (Dataobj.make ~from_module ~name inits)
      | "ret", [] -> L_term_ret
      | "b", [ l ] -> L_term_b l
      | "fall", [ l ] -> L_term_fall l
      | "b.eq", [ a; b ] -> L_term_bcond (Cond.Eq, a, b)
      | "b.ne", [ a; b ] -> L_term_bcond (Cond.Ne, a, b)
      | "b.lt", [ a; b ] -> L_term_bcond (Cond.Lt, a, b)
      | "b.le", [ a; b ] -> L_term_bcond (Cond.Le, a, b)
      | "b.gt", [ a; b ] -> L_term_bcond (Cond.Gt, a, b)
      | "b.ge", [ a; b ] -> L_term_bcond (Cond.Ge, a, b)
      | "cbz", [ r; a; b ] -> L_term_cbz (parse_reg lineno r, a, b)
      | "cbnz", [ r; a; b ] -> L_term_cbnz (parse_reg lineno r, a, b)
      | "mov", [ d; src ] -> L_insn (Insn.Mov (parse_reg lineno d, parse_operand lineno src))
      | "orr", [ d; z; src ] when z = "xzr" ->
        L_insn (Insn.Mov (parse_reg lineno d, parse_operand lineno src))
      | "cmp", [ a; b ] -> L_insn (Insn.Cmp (parse_reg lineno a, parse_operand lineno b))
      | "cset", [ d; c ] -> (
        match Cond.of_string c with
        | Some c -> L_insn (Insn.Cset (parse_reg lineno d, c))
        | None -> fail lineno "bad condition %S" c)
      | "csel", [ d; a; b; c ] -> (
        match Cond.of_string c with
        | Some c ->
          L_insn (Insn.Csel (parse_reg lineno d, parse_reg lineno a, parse_reg lineno b, c))
        | None -> fail lineno "bad condition %S" c)
      | "ldr", d :: addr -> L_insn (Insn.Ldr (parse_reg lineno d, parse_addr lineno addr))
      | "str", s :: addr -> L_insn (Insn.Str (parse_reg lineno s, parse_addr lineno addr))
      | "ldp", d1 :: d2 :: addr ->
        L_insn (Insn.Ldp (parse_reg lineno d1, parse_reg lineno d2, parse_addr lineno addr))
      | "stp", s1 :: s2 :: addr ->
        L_insn (Insn.Stp (parse_reg lineno s1, parse_reg lineno s2, parse_addr lineno addr))
      | "adr", [ d; sym ] -> L_insn (Insn.Adr (parse_reg lineno d, sym))
      | "bl", [ sym ] -> L_insn (Insn.Bl sym)
      | "blr", [ r ] -> L_insn (Insn.Blr (parse_reg lineno r))
      | "nop", [] -> L_insn Insn.Nop
      | _, _ -> (
        match binop_of_string kw, rest with
        | Some op, [ d; a; b ] ->
          L_insn (Insn.Binop (op, parse_reg lineno d, parse_reg lineno a, parse_operand lineno b))
        | Some _, _ -> fail lineno "binop takes 3 operands"
        | None, _ ->
          let n = String.length kw in
          if n > 1 && kw.[n - 1] = ':' && rest = [] then
            L_label (String.sub kw 0 (n - 1))
          else fail lineno "cannot parse %S" s))

type pending_block = {
  pb_label : string;
  mutable pb_body : Insn.t list;  (* reversed *)
  mutable pb_term : Block.terminator option;
}

type pending_func = {
  pf_name : string;
  pf_module : string;
  pf_no_outline : bool;
  pf_cold_from : string option;
  mutable pf_blocks : pending_block list;  (* reversed *)
}

let finish_func lineno (pf : pending_func) =
  let blocks =
    List.rev_map
      (fun pb ->
        match pb.pb_term with
        | None -> fail lineno "block %s of %s has no terminator" pb.pb_label pf.pf_name
        | Some t -> Block.make ~label:pb.pb_label (List.rev pb.pb_body) t)
      pf.pf_blocks
  in
  (* Resolve `b target`: block label => branch, else tail call. *)
  let labels = List.map (fun (b : Block.t) -> b.label) blocks in
  let resolve (b : Block.t) =
    match b.term with
    | Block.B l when not (List.mem l labels) -> { b with term = Block.Tail_call l }
    | _ -> b
  in
  Mfunc.make ~from_module:pf.pf_module ~no_outline:pf.pf_no_outline
    ?cold_from:pf.pf_cold_from ~name:pf.pf_name (List.map resolve blocks)

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let funcs = ref [] and data = ref [] and externs = ref [] in
  let cur_func : pending_func option ref = ref None in
  let cur_block : pending_block option ref = ref None in
  let close_block lineno =
    match !cur_block, !cur_func with
    | Some pb, Some pf ->
      if pb.pb_term = None then fail lineno "block %s has no terminator" pb.pb_label;
      pf.pf_blocks <- pb :: pf.pf_blocks;
      cur_block := None
    | Some _, None -> assert false
    | None, _ -> ()
  in
  let close_func lineno =
    close_block lineno;
    match !cur_func with
    | Some pf ->
      funcs := finish_func lineno pf :: !funcs;
      cur_func := None
    | None -> ()
  in
  let in_block lineno f =
    match !cur_block with
    | Some pb -> f pb
    | None -> fail lineno "instruction outside a block"
  in
  try
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        match parse_line lineno raw with
        | L_blank -> ()
        | L_func (name, m, no_outline, cold_from) ->
          close_func lineno;
          cur_func :=
            Some { pf_name = name; pf_module = m; pf_no_outline = no_outline;
                   pf_cold_from = cold_from; pf_blocks = [] }
        | L_label l -> (
          match !cur_func with
          | None -> fail lineno "label outside a function"
          | Some _ ->
            close_block lineno;
            cur_block := Some { pb_label = l; pb_body = []; pb_term = None })
        | L_insn insn -> in_block lineno (fun pb -> pb.pb_body <- insn :: pb.pb_body)
        | L_term_ret -> in_block lineno (fun pb -> pb.pb_term <- Some Block.Ret)
        | L_term_b l -> in_block lineno (fun pb -> pb.pb_term <- Some (Block.B l))
        | L_term_fall l ->
          in_block lineno (fun pb -> pb.pb_term <- Some (Block.Fallthrough l))
        | L_term_bcond (c, a, b) ->
          in_block lineno (fun pb -> pb.pb_term <- Some (Block.Bcond (c, a, b)))
        | L_term_cbz (r, a, b) ->
          in_block lineno (fun pb -> pb.pb_term <- Some (Block.Cbz (r, a, b)))
        | L_term_cbnz (r, a, b) ->
          in_block lineno (fun pb -> pb.pb_term <- Some (Block.Cbnz (r, a, b)))
        | L_data d -> data := d :: !data
        | L_extern e -> externs := e :: !externs)
      lines;
    close_func (List.length lines);
    Ok (Program.make ~data:(List.rev !data) ~externs:(List.rev !externs) (List.rev !funcs))
  with Parse_error (l, m) -> Error (Printf.sprintf "line %d: %s" l m)

let parse_func text =
  match parse_program text with
  | Error _ as e -> e
  | Ok p -> (
    match p.Program.funcs with
    | [ f ] -> Ok f
    | fs -> Error (Printf.sprintf "expected exactly one function, got %d" (List.length fs)))
