(** Backward register liveness over a machine function.

    The outliner uses this to decide whether the link register (and hence a
    plain [BL] to the outlined body) is free at a candidate site, and to
    refresh liveness after rewriting — the detail §V-B of the paper notes
    repeated outlining depends on. *)

type t

val compute : Mfunc.t -> t

val live_before : t -> label:string -> int -> Regset.t
(** [live_before t ~label i] is the set of registers live immediately before
    instruction [i] of block [label]'s body.  [i] may equal the body length,
    denoting the point just before the terminator.  Raises [Not_found] for
    an unknown label and [Invalid_argument] for an out-of-range index. *)

val live_out : t -> label:string -> Regset.t
(** Live registers at block exit (after the terminator transfers). *)

val lr_live_before : t -> label:string -> int -> bool
(** Convenience: is LR live just before instruction [i]?  Inserting a [BL]
    there clobbers LR, so this gates the no-save call strategy. *)

val points : t -> label:string -> Regset.t array
(** The whole per-point table for one block: [arr.(i)] is the set live
    before body instruction [i], [arr.(len)] the set before the terminator.
    Callers probing many points of the same block should fetch this once
    instead of paying the label lookup inside {!live_before} per probe.
    Raises [Not_found] for an unknown label. *)
