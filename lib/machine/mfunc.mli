(** Machine functions: a named list of basic blocks, entry first. *)

type t = {
  name : string;
  blocks : Block.t list;     (** entry block first; labels unique within the function *)
  from_module : string;      (** provenance, for data/code-affinity experiments *)
  is_outlined : bool;        (** created by the outliner *)
  no_outline : bool;         (** outlining may not harvest sequences from this function *)
  cold_from : string option; (** when set, the blocks from the first block with
                                 this label onwards form the function's cold
                                 chain, placed in the [__text_cold] region; the
                                 preceding blocks (always including the entry)
                                 form the hot chain *)
}

val make : ?from_module:string -> ?is_outlined:bool -> ?no_outline:bool ->
  ?cold_from:string -> name:string -> Block.t list -> t

val size_bytes : t -> int
val insn_count : t -> int
val find_block : t -> string -> Block.t
(** Raises [Not_found] if the label is absent. *)

val entry : t -> Block.t
(** Raises [Invalid_argument] on a function with no blocks. *)

val map_blocks : (Block.t -> Block.t) -> t -> t

val partition : t -> Block.t list * Block.t list
(** [(hot, cold)] chains.  [cold] is empty unless [cold_from] names a block. *)

val hot_blocks : t -> Block.t list
val cold_blocks : t -> Block.t list
val is_split : t -> bool
val hot_size_bytes : t -> int
val cold_size_bytes : t -> int

val pp : Format.formatter -> t -> unit
