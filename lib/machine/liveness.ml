type t = {
  per_point : (string, Regset.t array) Hashtbl.t;
      (* arr.(i) = live before body insn i; arr.(len) = live before terminator *)
  out : (string, Regset.t) Hashtbl.t;
}

(* Transfer a single instruction backwards: live_before = uses U (live_after \ defs). *)
let transfer insn live_after =
  Regset.union (Insn.uses insn) (Regset.diff live_after (Insn.defs insn))

let block_live_in (b : Block.t) live_out =
  let live = ref (Regset.union (Block.term_uses b.term) live_out) in
  for i = Array.length b.body - 1 downto 0 do
    live := transfer b.body.(i) !live
  done;
  !live

let compute (f : Mfunc.t) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let idx = Hashtbl.create (2 * n) in
  Array.iteri (fun i (b : Block.t) -> Hashtbl.replace idx b.label i) blocks;
  let live_in = Array.make n Regset.empty in
  let live_out_arr = Array.make n Regset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let b = blocks.(i) in
      let out =
        List.fold_left
          (fun acc l -> Regset.union acc live_in.(Hashtbl.find idx l))
          Regset.empty
          (Block.successors b.term)
      in
      live_out_arr.(i) <- out;
      let inn = block_live_in b out in
      if not (Regset.equal inn live_in.(i)) then begin
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  let per_point = Hashtbl.create (2 * n) in
  let out = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i (b : Block.t) ->
      let len = Array.length b.body in
      let arr = Array.make (len + 1) Regset.empty in
      let live = ref (Regset.union (Block.term_uses b.term) live_out_arr.(i)) in
      arr.(len) <- !live;
      for j = len - 1 downto 0 do
        live := transfer b.body.(j) !live;
        arr.(j) <- !live
      done;
      Hashtbl.replace per_point b.label arr;
      Hashtbl.replace out b.label live_out_arr.(i))
    blocks;
  { per_point; out }

let live_before t ~label i =
  let arr = Hashtbl.find t.per_point label in
  if i < 0 || i >= Array.length arr then
    invalid_arg "Liveness.live_before: index out of range"
  else arr.(i)

let live_out t ~label = Hashtbl.find t.out label
let lr_live_before t ~label i = Regset.mem Reg.lr (live_before t ~label i)
let points t ~label = Hashtbl.find t.per_point label
