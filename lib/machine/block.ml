type terminator =
  | Ret
  | B of string
  | Bcond of Cond.t * string * string
  | Cbz of Reg.t * string * string
  | Cbnz of Reg.t * string * string
  | Tail_call of string
  | Fallthrough of string

type t = {
  label : string;
  body : Insn.t array;
  term : terminator;
}

let make ~label body term = { label; body = Array.of_list body; term }

let term_size_bytes = function
  | Fallthrough _ -> 0
  | Ret | B _ | Bcond _ | Cbz _ | Cbnz _ | Tail_call _ -> 4

let size_bytes b = (Array.length b.body * Insn.size_bytes) + term_size_bytes b.term

let successors = function
  | Ret | Tail_call _ -> []
  | B l | Fallthrough l -> [ l ]
  | Bcond (_, a, b) | Cbz (_, a, b) | Cbnz (_, a, b) -> [ a; b ]

let term_uses = function
  | Ret -> Regset.singleton Reg.lr
  | B _ | Fallthrough _ -> Regset.empty
  | Bcond (_, _, _) -> Regset.singleton Reg.NZCV
  | Cbz (r, _, _) | Cbnz (r, _, _) -> Regset.singleton r
  | Tail_call _ ->
    (* A tail call hands the argument registers to the target, and the
       target returns through the *current* LR — so LR is live here. *)
    let rec go i s =
      if i >= Reg.max_args then s else go (i + 1) (Regset.add (Reg.arg i) s)
    in
    go 0 (Regset.singleton Reg.lr)

let equal_terminator (a : terminator) b = a = b

let pp_terminator ppf = function
  | Ret -> Format.pp_print_string ppf "ret"
  | B l -> Format.fprintf ppf "b %s" l
  | Bcond (c, t, f) -> Format.fprintf ppf "b.%a %s (else %s)" Cond.pp c t f
  | Cbz (r, t, f) -> Format.fprintf ppf "cbz %a, %s (else %s)" Reg.pp r t f
  | Cbnz (r, t, f) -> Format.fprintf ppf "cbnz %a, %s (else %s)" Reg.pp r t f
  | Tail_call s -> Format.fprintf ppf "b %s" s
  | Fallthrough l -> Format.fprintf ppf "fall %s" l

let pp ppf b =
  Format.fprintf ppf "%s:@." b.label;
  Array.iter (fun i -> Format.fprintf ppf "  %a@." Insn.pp i) b.body;
  Format.fprintf ppf "  %a@." pp_terminator b.term
