(* Arena-allocated generalized suffix tree.  Same algorithm and reported
   repeats as {!Suffix_tree} (Ukkonen over the concatenation with unique
   negative sentinels), but engineered for the whole-program hot path:

   - nodes live in parallel int arrays (struct-of-arrays), preallocated to
     the 2n+2 Ukkonen bound — no per-node records, options, or hashtables;
   - all children edges share one open-addressing table with packed int
     keys [node * span + (symbol + nseq)] — no tuple/box allocation per
     probe and no per-node table headers;
   - repeats are extracted in a single Euler-tour DFS: leaves are collected
     in visit order so every internal node's occurrence set is a contiguous
     slice [lo, hi) of one shared array, instead of a per-node DFS.

   The construction allocates O(n) words total and nothing per probe, which
   is what cuts GC pressure on the uber_rider whole-program build. *)

type t = {
  n : int;                      (* concatenated text length *)
  text : int array;
  seq_of_pos : int array;
  seq_start : int array;
  n_nodes : int;
  starts : int array;           (* edge start into node *)
  stops : int array;            (* exclusive end (leaves closed to [n]) *)
  sfx : int array;              (* leaves: suffix start; -1 otherwise *)
  child_off : int array;        (* node -> first child slot, length n_nodes+1 *)
  child_nodes : int array;
  sd : int array;               (* string depth including the incoming edge *)
  lo : int array;               (* node's leaves = leaf_order.[lo, hi) *)
  hi : int array;
  leaf_order : int array;       (* suffix starts in DFS visit order *)
}

let next_pow2 x =
  let r = ref 16 in
  while !r < x do
    r := !r * 2
  done;
  !r

(* Reusable backing store.  A whole-program build touches ~10 arrays of
   O(n) ints; allocating them fresh every round puts megabytes on the major
   heap per round and the collector's slices show up as noise across every
   phase.  A pool hands out the previous round's arrays when they are big
   enough — callers must treat the returned tree as dead once the pool is
   used for another build. *)
type pool = { mutable slots : int array array }

let create_pool () = { slots = Array.make 32 [||] }

(* A pooled array may be longer than requested; every consumer indexes
   through explicit bounds ([n], [cap], [n_nodes]) so the slack is inert.
   Slots with a read-before-write pattern are re-filled by the caller. *)
let pool_get pool i size =
  let a = pool.slots.(i) in
  if Array.length a >= size then a
  else begin
    let a = Array.make size 0 in
    pool.slots.(i) <- a;
    a
  end

let build ?pool seqs =
  (* Without a pool every array is freshly allocated, so distinct trees
     never alias; with one, the newest build owns the backing store. *)
  let alloc i size =
    match pool with
    | Some p -> pool_get p i size
    | None -> Array.make size 0
  in
  List.iter
    (fun s ->
      Array.iter
        (fun x -> if x < 0 then invalid_arg "Arena_tree.build: negative symbol")
        s)
    seqs;
  let total = List.fold_left (fun acc s -> acc + Array.length s + 1) 0 seqs in
  let n = total in
  let text = alloc 0 (max n 1) in
  let seq_of_pos = alloc 1 (max n 1) in
  let nseq = List.length seqs in
  let seq_start = alloc 2 (max nseq 1) in
  let max_sym = ref 0 in
  let off = ref 0 in
  List.iteri
    (fun si s ->
      seq_start.(si) <- !off;
      Array.iteri
        (fun j x ->
          if x > !max_sym then max_sym := x;
          text.(!off + j) <- x;
          seq_of_pos.(!off + j) <- si)
        s;
      off := !off + Array.length s;
      text.(!off) <- -(si + 1);
      seq_of_pos.(!off) <- si;
      incr off)
    seqs;
  (* Node arena.  Ukkonen creates at most 2n+2 nodes including the root. *)
  let cap_nodes = (2 * n) + 3 in
  let starts = alloc 3 cap_nodes in
  let stops = alloc 4 cap_nodes in
  let slink = alloc 5 cap_nodes in
  Array.fill slink 0 cap_nodes 0;
  let sfx = alloc 6 cap_nodes in
  Array.fill sfx 0 cap_nodes (-1);
  let n_nodes = ref 1 in
  starts.(0) <- -1;
  stops.(0) <- -1;
  let new_node ~start ~stop =
    let id = !n_nodes in
    incr n_nodes;
    starts.(id) <- start;
    stops.(id) <- stop;
    id
  in
  (* Shared children table.  Packed key: [node * span + (sym + nseq)] where
     symbols range over [-(nseq) .. max_sym]; every key is >= 0, so -1
     marks an empty slot.  Machine code yields ~1.2n edges in practice
     (2n+1 is the theoretical cap), so capacity 2.5n keeps the load factor
     under ~0.5 with no resizing while halving the table's cache footprint
     versus the conservative 4n. *)
  let span = !max_sym + nseq + 1 in
  let cap = next_pow2 ((5 * n / 2) + 16) in
  let mask = cap - 1 in
  let keys = alloc 7 cap in
  Array.fill keys 0 cap (-1);
  let vals = alloc 8 cap in
  let slot k =
    let h = k * 0x2545F4914F6CDD1D in
    let i = ref ((h lxor (h lsr 29)) land mask) in
    while keys.(!i) <> -1 && keys.(!i) <> k do
      i := (!i + 1) land mask
    done;
    !i
  in
  let find node sym =
    let i = slot ((node * span) + sym + nseq) in
    if keys.(i) = -1 then -1 else vals.(i)
  in
  let set node sym child =
    let k = (node * span) + sym + nseq in
    let i = slot k in
    keys.(i) <- k;
    vals.(i) <- child
  in
  (* Ukkonen's online construction (identical control flow to
     Suffix_tree.ukkonen; node 0 is the root, slink defaults to the root). *)
  let active_node = ref 0 in
  let active_edge = ref 0 in
  let active_length = ref 0 in
  let remainder = ref 0 in
  for i = 0 to n - 1 do
    let last_new = ref (-1) in
    incr remainder;
    let continue = ref true in
    while !continue && !remainder > 0 do
      if !active_length = 0 then active_edge := i;
      let nxt = find !active_node text.(!active_edge) in
      if nxt = -1 then begin
        let leaf = new_node ~start:i ~stop:max_int in
        set !active_node text.(!active_edge) leaf;
        if !last_new >= 0 then begin
          slink.(!last_new) <- !active_node;
          last_new := -1
        end;
        decr remainder;
        if !active_node = 0 && !active_length > 0 then begin
          decr active_length;
          active_edge := i - !remainder + 1
        end
        else if !active_node <> 0 then active_node := slink.(!active_node)
      end
      else begin
        let el = min stops.(nxt) (i + 1) - starts.(nxt) in
        if !active_length >= el then begin
          active_node := nxt;
          active_edge := !active_edge + el;
          active_length := !active_length - el
        end
        else if text.(starts.(nxt) + !active_length) = text.(i) then begin
          if !last_new >= 0 then begin
            slink.(!last_new) <- !active_node;
            last_new := -1
          end;
          incr active_length;
          continue := false
        end
        else begin
          let split =
            new_node ~start:starts.(nxt) ~stop:(starts.(nxt) + !active_length)
          in
          set !active_node text.(!active_edge) split;
          let leaf = new_node ~start:i ~stop:max_int in
          set split text.(i) leaf;
          starts.(nxt) <- starts.(nxt) + !active_length;
          set split text.(starts.(nxt)) nxt;
          if !last_new >= 0 then slink.(!last_new) <- split;
          last_new := split;
          decr remainder;
          if !active_node = 0 && !active_length > 0 then begin
            decr active_length;
            active_edge := i - !remainder + 1
          end
          else if !active_node <> 0 then active_node := slink.(!active_node)
        end
      end
    done
  done;
  let n_nodes = !n_nodes in
  (* Rebuild adjacency from the live table slots (overwritten slots always
     hold the current edge target) with a counting sort on parent ids. *)
  let child_off = alloc 9 (n_nodes + 1) in
  Array.fill child_off 0 (n_nodes + 1) 0;
  for i = 0 to cap - 1 do
    if keys.(i) >= 0 then begin
      let parent = keys.(i) / span in
      child_off.(parent + 1) <- child_off.(parent + 1) + 1
    end
  done;
  for v = 1 to n_nodes do
    child_off.(v) <- child_off.(v) + child_off.(v - 1)
  done;
  let n_edges = child_off.(n_nodes) in
  let child_nodes = alloc 10 (max n_edges 1) in
  let cursor = alloc 11 (n_nodes + 1) in
  Array.blit child_off 0 cursor 0 (n_nodes + 1);
  for i = 0 to cap - 1 do
    if keys.(i) >= 0 then begin
      let parent = keys.(i) / span in
      child_nodes.(cursor.(parent)) <- vals.(i);
      cursor.(parent) <- cursor.(parent) + 1
    end
  done;
  (* One Euler-tour DFS closes leaves, assigns suffix indices, computes
     string depths, and records every node's leaf set as a contiguous slice
     of [leaf_order] — {!repeats} then only has to scan the node arrays.
     Stack entries are [2*node] for enter and [2*node+1] for exit; [dstack]
     carries the string depth above each entered node's incoming edge. *)
  let sd = alloc 12 n_nodes in
  let lo = alloc 13 n_nodes in
  let hi = alloc 14 n_nodes in
  let leaf_order = alloc 15 (max n 1) in
  let cursor = ref 0 in
  let stack = alloc 16 (2 * (n_nodes + 1)) in
  let dstack = alloc 17 (2 * (n_nodes + 1)) in
  let sp = ref 0 in
  stack.(0) <- 0;
  dstack.(0) <- 0;
  incr sp;
  while !sp > 0 do
    decr sp;
    let x = stack.(!sp) in
    let nd = x lsr 1 in
    if x land 1 = 1 then hi.(nd) <- !cursor
    else begin
      let depth = dstack.(!sp) in
      lo.(nd) <- !cursor;
      if nd <> 0 && child_off.(nd + 1) = child_off.(nd) then begin
        (* Leaf: close the open edge and record its suffix start. *)
        if stops.(nd) = max_int then begin
          stops.(nd) <- n;
          sfx.(nd) <- n - (depth + (n - starts.(nd)))
        end;
        sd.(nd) <- depth + (stops.(nd) - starts.(nd));
        leaf_order.(!cursor) <- sfx.(nd);
        incr cursor;
        hi.(nd) <- !cursor
      end
      else begin
        let d = if nd = 0 then 0 else depth + (stops.(nd) - starts.(nd)) in
        sd.(nd) <- d;
        stack.(!sp) <- (2 * nd) + 1;
        incr sp;
        for c = child_off.(nd) to child_off.(nd + 1) - 1 do
          stack.(!sp) <- 2 * child_nodes.(c);
          dstack.(!sp) <- d;
          incr sp
        done
      end
    end
  done;
  {
    n;
    text;
    seq_of_pos;
    seq_start;
    n_nodes;
    starts;
    stops;
    sfx;
    child_off;
    child_nodes;
    sd;
    lo;
    hi;
    leaf_order;
  }

let is_leaf t nd = t.child_off.(nd + 1) = t.child_off.(nd)

let count_leaves t =
  let c = ref 0 in
  for nd = 1 to t.n_nodes - 1 do
    if is_leaf t nd then incr c
  done;
  !c

let repeats ?(min_length = 2) t =
  if t.n = 0 then []
  else begin
    (* The Euler tour already ran inside {!build}: [t.sd] holds string
       depths and [t.leaf_order].[lo, hi) each node's leaf set, so this is
       a flat scan over the node arrays. *)
    let out = ref [] in
    for nd = 1 to t.n_nodes - 1 do
      if
        (not (is_leaf t nd))
        && t.sd.(nd) >= min_length
        && t.hi.(nd) - t.lo.(nd) >= 2
      then begin
        (* Each node sorts a copy of its slice: sorting [leaf_order] itself
           would shuffle leaves across the sub-ranges of nodes not yet
           visited.  The occurrence list is built straight off the sorted
           copy, back to front. *)
        let slice = Array.sub t.leaf_order t.lo.(nd) (t.hi.(nd) - t.lo.(nd)) in
        Array.sort Int.compare slice;
        let occs = ref [] in
        for i = Array.length slice - 1 downto 0 do
          let gpos = slice.(i) in
          let seq = t.seq_of_pos.(gpos) in
          occs := { Suffix_tree.seq; pos = gpos - t.seq_start.(seq) } :: !occs
        done;
        out := { Suffix_tree.length = t.sd.(nd); occs = !occs } :: !out
      end
    done;
    !out
  end
