(** Arena-allocated generalized suffix tree: same inputs and reported
    repeats as {!Suffix_tree} but with struct-of-arrays nodes and one shared
    open-addressing children table, for the whole-program outlining hot
    path.  {!Suffix_tree} remains the readable reference implementation;
    the two are compared in the test suite. *)

type t

type pool
(** Reusable backing store for {!build}.  Rebuilding a whole-program tree
    every outlining round allocates megabytes of int arrays; a pool lets
    consecutive builds recycle the previous round's arrays once they are
    large enough. *)

val create_pool : unit -> pool

val build : ?pool:pool -> int array list -> t
(** Symbols must be [>= 0]; raises [Invalid_argument] otherwise.  When
    [pool] is given, the tree borrows the pool's arrays: it becomes invalid
    the moment the same pool is passed to another [build], so at most one
    pooled tree per pool may be alive at a time. *)

val repeats : ?min_length:int -> t -> Suffix_tree.repeat list
(** Same contract as {!Suffix_tree.repeats}: all right-maximal repeats with
    occurrences in increasing text order.  The list order of repeats may
    differ from the reference tree; callers needing determinism must sort. *)

val count_leaves : t -> int
(** Total number of suffixes indexed (for testing). *)
