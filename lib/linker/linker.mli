(** The system-linker stand-in: lay out text and data, resolve symbols to
    addresses, and account for binary size the way §VII-A does (binary =
    code section + data section + fixed image overhead). *)

type symbol_kind =
  | Text
  | Data
  | Extern

type layout = {
  addresses : (string, int) Hashtbl.t;   (** symbol -> virtual address *)
  kinds : (string, symbol_kind) Hashtbl.t;
  text_base : int;
  text_size : int;
  data_base : int;
  data_size : int;
  image_overhead : int;   (** headers, load commands, linkedit stand-in *)
}

val text_base_default : int
val image_overhead_default : int

val link :
  ?text_base:int -> ?image_overhead:int -> ?order:string list ->
  Machine.Program.t -> layout
(** Functions are placed consecutively in program order, 4-byte aligned
    (they already are); data objects consecutively after text, 8-byte
    aligned.  Extern symbols receive distinct high addresses so indirect
    calls to them can be recognized.

    [?order] overrides text placement: functions named in the list are
    laid out first, in that order, and the remainder follow in program
    order.  Unknown and duplicate names are ignored, so a stale profile
    cannot break linking.  Placement is pure reordering — [text_size]
    and every function's bytes are unchanged; only addresses move. *)

val binary_size : layout -> int
(** [text_size + data_size + image_overhead]. *)

val address_of : layout -> string -> int
(** Raises [Not_found] for undefined symbols. *)

val symbolize : layout -> int -> string option
(** ["sym+0xoff"] for an address inside the text segment: the nearest
    Text symbol at or below it.  [None] outside text.  Used by the
    interpreter's failure trace dump. *)

val duplicate_function_bodies : Machine.Program.t -> (int * int) list
(** Groups of functions with byte-identical bodies: returns
    [(group_size, bytes_per_body)] for each group with two or more members.
    Used to show how per-module outlining leaves clones behind (§V-A). *)
