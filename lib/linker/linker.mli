(** The system-linker stand-in: lay out text and data, resolve symbols to
    addresses, and account for binary size the way §VII-A does (binary =
    code section + data section + fixed image overhead). *)

type symbol_kind =
  | Text
  | Data
  | Extern

(** The LZ-style download-size model: a deterministic greedy
    sliding-window parse over the image's rendered content stream —
    literals at 9 bits, back-references at a flat 25 bits (flag + offset
    + 8-bit length, matches of [min_match]..[max_match] stream bytes).
    No entropy coding: the model only has to {e rank} layouts, and what
    ranks them is how much redundancy lands inside the window, which is
    what function order controls.  [window <= 0] disables matching
    entirely (the pure-literal bound, a function of content alone and
    therefore identical under every permutation). *)
module Compress : sig
  type estimate = {
    raw_bytes : int;        (** rendered content-stream length *)
    compressed_bytes : int; (** model output for that stream *)
    match_count : int;      (** back-references the parse emitted *)
  }

  val window_default : int
  (** 64 KiB *)

  val min_match : int
  val max_match : int

  val estimate_stream : ?window:int -> string -> estimate
end

type layout = {
  addresses : (string, int) Hashtbl.t;   (** symbol -> virtual address *)
  kinds : (string, symbol_kind) Hashtbl.t;
  text_base : int;
  text_size : int;
  hot_text_size : int;
      (** bytes of hot chains only; equals [text_size] when nothing is
          split, otherwise the __text_cold region accounts for the rest *)
  data_base : int;
  data_size : int;
  image_overhead : int;   (** headers, load commands, linkedit stand-in *)
  compressed : Compress.estimate Lazy.t;
      (** the download-size estimate for this placement; lazy because the
          interpreter links on every run and never reads it *)
}

val text_base_default : int
val image_overhead_default : int

val cold_symbol : string -> string
(** The Text symbol a split function's cold chain is placed under
    (["f.cold"] for function [f]), so {!symbolize} and backtraces
    attribute cold-region addresses to their source function. *)

val link :
  ?text_base:int -> ?image_overhead:int -> ?order:string list ->
  Machine.Program.t -> layout
(** Functions are placed consecutively in program order, 4-byte aligned
    (they already are); data objects consecutively after text, 8-byte
    aligned.  Extern symbols receive distinct high addresses so indirect
    calls to them can be recognized.

    [?order] overrides text placement: functions named in the list are
    laid out first, in that order, and the remainder follow in program
    order.  Unknown and duplicate names are ignored, so a stale profile
    cannot break linking.  Placement is pure reordering — [text_size]
    and every function's bytes are unchanged; only addresses move.

    Split functions ({!Machine.Mfunc.cold_from}) place only their hot
    chain under the function's own symbol; the cold chains form a
    __text_cold region directly after hot text, each under its
    {!cold_symbol}.  [?order] entries naming cold symbols direct that
    region; unnamed cold chains keep their hot chain's order. *)

val binary_size : layout -> int
(** [text_size + data_size + image_overhead]. *)

val compressed_size : layout -> int
(** Forces the layout's lazy {!Compress.estimate} and returns its
    [compressed_bytes] — the estimated download size of this placement. *)

val compress_estimate :
  ?window:int -> ?order:string list -> Machine.Program.t -> Compress.estimate
(** The compression model over the program's content stream under a
    placement, without building a full layout.  [?order] as in {!link}. *)

val address_of : layout -> string -> int
(** Raises [Not_found] for undefined symbols. *)

val symbolize : layout -> int -> string option
(** ["sym+0xoff"] for an address inside the text segment: the nearest
    Text symbol at or below it.  [None] outside text.  Used by the
    interpreter's failure trace dump. *)

val duplicate_function_bodies : Machine.Program.t -> (int * int) list
(** Groups of functions with byte-identical bodies: returns
    [(group_size, bytes_per_body)] for each group with two or more members.
    Used to show how per-module outlining leaves clones behind (§V-A). *)
