open Machine

type symbol_kind =
  | Text
  | Data
  | Extern

type layout = {
  addresses : (string, int) Hashtbl.t;
  kinds : (string, symbol_kind) Hashtbl.t;
  text_base : int;
  text_size : int;
  data_base : int;
  data_size : int;
  image_overhead : int;
}

let text_base_default = 0x1_0000
let image_overhead_default = 16_384 (* headers + load commands stand-in *)

let align n a = (n + a - 1) / a * a

(* Realize an explicit placement order: named functions first, in the
   given order; everything unnamed keeps its program order at the tail.
   Unknown and duplicate names are ignored, so any permutation source
   (profile, heuristic, hand-written order file) is safe to pass. *)
let ordered_funcs order (p : Program.t) =
  match order with
  | None -> p.funcs
  | Some names ->
    let by_name = Hashtbl.create (List.length p.funcs) in
    List.iter (fun (f : Mfunc.t) -> Hashtbl.replace by_name f.name f) p.funcs;
    let placed = Hashtbl.create (List.length names) in
    let first =
      List.filter_map
        (fun n ->
          match Hashtbl.find_opt by_name n with
          | Some f when not (Hashtbl.mem placed n) ->
            Hashtbl.replace placed n ();
            Some f
          | Some _ | None -> None)
        names
    in
    let rest =
      List.filter (fun (f : Mfunc.t) -> not (Hashtbl.mem placed f.name)) p.funcs
    in
    first @ rest

let link ?(text_base = text_base_default)
    ?(image_overhead = image_overhead_default) ?order (p : Program.t) =
  let addresses = Hashtbl.create 1024 in
  let kinds = Hashtbl.create 1024 in
  let cursor = ref text_base in
  List.iter
    (fun (f : Mfunc.t) ->
      Hashtbl.replace addresses f.name !cursor;
      Hashtbl.replace kinds f.name Text;
      cursor := !cursor + Mfunc.size_bytes f)
    (ordered_funcs order p);
  let text_size = !cursor - text_base in
  (* Segments are page-aligned, as in Mach-O (16 KiB pages on iOS). *)
  let data_base = align !cursor 16384 in
  cursor := data_base;
  List.iter
    (fun (d : Dataobj.t) ->
      Hashtbl.replace addresses d.name !cursor;
      Hashtbl.replace kinds d.name Data;
      cursor := !cursor + align (Dataobj.size_bytes d) 8)
    p.data;
  let data_size = !cursor - data_base in
  (* Externs live far above the image; spacing keeps them distinct. *)
  let extern_base = 0x7000_0000 in
  List.iteri
    (fun i e ->
      if not (Hashtbl.mem addresses e) then begin
        Hashtbl.replace addresses e (extern_base + (i * 16));
        Hashtbl.replace kinds e Extern
      end)
    p.externs;
  { addresses; kinds; text_base; text_size; data_base; data_size; image_overhead }

let binary_size l = l.text_size + l.data_size + l.image_overhead
let address_of l s = Hashtbl.find l.addresses s

let symbolize l addr =
  if addr < l.text_base || addr >= l.text_base + l.text_size then None
  else begin
    (* Greatest Text symbol at or below [addr]. *)
    let best = ref None in
    Hashtbl.iter
      (fun sym a ->
        if a <= addr && Hashtbl.find_opt l.kinds sym = Some Text then
          match !best with
          | Some (_, ba) when ba >= a -> ()
          | _ -> best := Some (sym, a))
      l.addresses;
    match !best with
    | Some (sym, a) -> Some (Printf.sprintf "%s+0x%x" sym (addr - a))
    | None -> None
  end

let duplicate_function_bodies (p : Program.t) =
  (* Key: printed body with the function name erased (labels are local). *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (f : Mfunc.t) ->
      let key =
        Format.asprintf "%a"
          (fun ppf () ->
            List.iter
              (fun (b : Block.t) ->
                Format.fprintf ppf "%s:" b.label;
                Array.iter (fun i -> Format.fprintf ppf "%a;" Insn.pp i) b.body;
                Format.fprintf ppf "%a|" Block.pp_terminator b.term)
              f.blocks)
          ()
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (f :: prev))
    p.funcs;
  Hashtbl.fold
    (fun _ fs acc ->
      match fs with
      | [] | [ _ ] -> acc
      | f :: _ -> (List.length fs, Mfunc.size_bytes f) :: acc)
    tbl []
