open Machine

type symbol_kind =
  | Text
  | Data
  | Extern

(* --- LZ-style compressed-size model ----------------------------------------- *)

(* Function-content rendering (name-erased byte streams) and FNV hashing
   live in lib/content; the estimator below only consumes the rendered
   stream. *)

(* App-store delivery is compressed, so raw bytes are not what users
   download.  This is a deterministic stand-in for the LZ family every
   store uses: a greedy sliding-window parse over the image's rendered
   content stream, literals at 9 bits, back-references at a flat 25 bits
   (flag + window offset + 8-bit length).  No entropy coding — the model
   only has to rank layouts, and what ranks them is how much redundancy
   falls inside the match window, which is exactly what function order
   controls. *)
module Compress = struct
  type estimate = {
    raw_bytes : int;        (* rendered content-stream length *)
    compressed_bytes : int; (* model output for that stream *)
    match_count : int;      (* back-references the parse emitted *)
  }

  let window_default = 64 * 1024
  let min_match = 8
  let max_match = 255 + min_match
  let literal_bits = 9
  let match_bits = 25

  let estimate_stream ?(window = window_default) s =
    let n = String.length s in
    if window <= 0 || n < min_match then
      { raw_bytes = n;
        compressed_bytes = ((n * literal_bits) + 7) / 8;
        match_count = 0 }
    else begin
      let hsize = 1 lsl 15 in
      let head = Array.make hsize (-1) in
      let prev = Array.make n (-1) in
      let hash i =
        (Char.code s.[i]
        + (131 * Char.code s.[i + 1])
        + (131 * 131 * Char.code s.[i + 2])
        + (131 * 131 * 131 * Char.code s.[i + 3]))
        land (hsize - 1)
      in
      let insert i =
        if i + 4 <= n then begin
          let h = hash i in
          prev.(i) <- head.(h);
          head.(h) <- i
        end
      in
      let bits = ref 0 and pos = ref 0 and matches = ref 0 in
      while !pos < n do
        let p = !pos in
        let best_len = ref 0 in
        if p + min_match <= n then begin
          let limit = p - window in
          let cand = ref head.(hash p) in
          let tries = ref 0 in
          (* Chains are most-recent-first, so the first position below the
             window cuts the walk; the try cap keeps the parse linear. *)
          while !cand >= 0 && !cand >= limit && !tries < 64 do
            let j = !cand in
            let len = ref 0 in
            let maxl = min (n - p) max_match in
            while !len < maxl && s.[j + !len] = s.[p + !len] do incr len done;
            if !len > !best_len then best_len := !len;
            cand := prev.(j);
            incr tries
          done
        end;
        if !best_len >= min_match then begin
          bits := !bits + match_bits;
          incr matches;
          for k = p to p + !best_len - 1 do
            insert k
          done;
          pos := p + !best_len
        end
        else begin
          bits := !bits + literal_bits;
          insert p;
          pos := p + 1
        end
      done;
      { raw_bytes = n;
        compressed_bytes = (!bits + 7) / 8;
        match_count = !matches }
    end

  (* Placement-faithful content stream: every function's hot chain in
     placement order, then the cold chains of split functions.  For a
     program with no split functions this is byte-identical to rendering
     whole functions back to back. *)
  let stream_of_chains ~hot ~cold =
    let buf = Buffer.create 65536 in
    List.iter (fun (f : Mfunc.t) -> Content.add_blocks buf (Mfunc.hot_blocks f)) hot;
    List.iter (fun (f : Mfunc.t) -> Content.add_blocks buf (Mfunc.cold_blocks f)) cold;
    Buffer.contents buf

  let stream_of_funcs funcs =
    stream_of_chains ~hot:funcs
      ~cold:(List.filter (fun f -> Mfunc.is_split f) funcs)
end

type layout = {
  addresses : (string, int) Hashtbl.t;
  kinds : (string, symbol_kind) Hashtbl.t;
  text_base : int;
  text_size : int;
  hot_text_size : int;
  data_base : int;
  data_size : int;
  image_overhead : int;
  compressed : Compress.estimate Lazy.t;
}

let text_base_default = 0x1_0000
let image_overhead_default = 16_384 (* headers + load commands stand-in *)

(* A split function's cold chain is placed under its own Text symbol in
   the __text_cold region, so symbolize/backtraces read "f.cold+0x...". *)
let cold_symbol name = name ^ ".cold"

let align n a = (n + a - 1) / a * a

(* Realize an explicit placement order: named functions first, in the
   given order; everything unnamed keeps its program order at the tail.
   Unknown and duplicate names are ignored, so any permutation source
   (profile, heuristic, hand-written order file) is safe to pass. *)
let ordered_funcs order (p : Program.t) =
  match order with
  | None -> p.funcs
  | Some names ->
    let by_name = Hashtbl.create (List.length p.funcs) in
    List.iter (fun (f : Mfunc.t) -> Hashtbl.replace by_name f.name f) p.funcs;
    let placed = Hashtbl.create (List.length names) in
    let first =
      List.filter_map
        (fun n ->
          match Hashtbl.find_opt by_name n with
          | Some f when not (Hashtbl.mem placed n) ->
            Hashtbl.replace placed n ();
            Some f
          | Some _ | None -> None)
        names
    in
    let rest =
      List.filter (fun (f : Mfunc.t) -> not (Hashtbl.mem placed f.name)) p.funcs
    in
    first @ rest

let link ?(text_base = text_base_default)
    ?(image_overhead = image_overhead_default) ?order (p : Program.t) =
  let addresses = Hashtbl.create 1024 in
  let kinds = Hashtbl.create 1024 in
  let cursor = ref text_base in
  let funcs = ordered_funcs order p in
  (* Hot text: every function's hot chain (the whole function when it is
     not split), in placement order. *)
  List.iter
    (fun (f : Mfunc.t) ->
      Hashtbl.replace addresses f.name !cursor;
      Hashtbl.replace kinds f.name Text;
      cursor := !cursor + Mfunc.hot_size_bytes f)
    funcs;
  let hot_text_size = !cursor - text_base in
  (* __text_cold: the cold chains of split functions, contiguously after
     hot text.  An explicit order may direct the region by naming cold
     symbols; the rest keep their hot chain's placement order. *)
  let split_funcs = List.filter Mfunc.is_split funcs in
  let cold_funcs =
    match order with
    | None -> split_funcs
    | Some names ->
      let by_cold = Hashtbl.create 16 in
      List.iter
        (fun (f : Mfunc.t) -> Hashtbl.replace by_cold (cold_symbol f.name) f)
        split_funcs;
      let placed = Hashtbl.create 16 in
      let first =
        List.filter_map
          (fun n ->
            match Hashtbl.find_opt by_cold n with
            | Some f when not (Hashtbl.mem placed f.Mfunc.name) ->
              Hashtbl.replace placed f.Mfunc.name ();
              Some f
            | Some _ | None -> None)
          names
      in
      first
      @ List.filter
          (fun (f : Mfunc.t) -> not (Hashtbl.mem placed f.name))
          split_funcs
  in
  List.iter
    (fun (f : Mfunc.t) ->
      Hashtbl.replace addresses (cold_symbol f.name) !cursor;
      Hashtbl.replace kinds (cold_symbol f.name) Text;
      cursor := !cursor + Mfunc.cold_size_bytes f)
    cold_funcs;
  let text_size = !cursor - text_base in
  (* Segments are page-aligned, as in Mach-O (16 KiB pages on iOS). *)
  let data_base = align !cursor 16384 in
  cursor := data_base;
  List.iter
    (fun (d : Dataobj.t) ->
      Hashtbl.replace addresses d.name !cursor;
      Hashtbl.replace kinds d.name Data;
      cursor := !cursor + align (Dataobj.size_bytes d) 8)
    p.data;
  let data_size = !cursor - data_base in
  (* Externs live far above the image; spacing keeps them distinct. *)
  let extern_base = 0x7000_0000 in
  List.iteri
    (fun i e ->
      if not (Hashtbl.mem addresses e) then begin
        Hashtbl.replace addresses e (extern_base + (i * 16));
        Hashtbl.replace kinds e Extern
      end)
    p.externs;
  {
    addresses;
    kinds;
    text_base;
    text_size;
    hot_text_size;
    data_base;
    data_size;
    image_overhead;
    (* The download-size model rides every layout, but rendering and
       parsing the content stream is far too slow for the interpreter's
       per-run links — so it is lazy, forced only by callers that report
       it (sizeopt build, bench). *)
    compressed =
      lazy
        (Compress.estimate_stream
           (Compress.stream_of_chains ~hot:funcs ~cold:cold_funcs));
  }

let binary_size l = l.text_size + l.data_size + l.image_overhead
let compressed_size l = (Lazy.force l.compressed).Compress.compressed_bytes

let compress_estimate ?window ?order (p : Program.t) =
  Compress.estimate_stream ?window
    (Compress.stream_of_funcs (ordered_funcs order p))
let address_of l s = Hashtbl.find l.addresses s

let symbolize l addr =
  if addr < l.text_base || addr >= l.text_base + l.text_size then None
  else begin
    (* Greatest Text symbol at or below [addr]. *)
    let best = ref None in
    Hashtbl.iter
      (fun sym a ->
        if a <= addr && Hashtbl.find_opt l.kinds sym = Some Text then
          match !best with
          | Some (_, ba) when ba >= a -> ()
          | _ -> best := Some (sym, a))
      l.addresses;
    match !best with
    | Some (sym, a) -> Some (Printf.sprintf "%s+0x%x" sym (addr - a))
    | None -> None
  end

let duplicate_function_bodies (p : Program.t) =
  (* Key: printed body with the function name erased (labels are local). *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (f : Mfunc.t) ->
      let key =
        Format.asprintf "%a"
          (fun ppf () ->
            List.iter
              (fun (b : Block.t) ->
                Format.fprintf ppf "%s:" b.label;
                Array.iter (fun i -> Format.fprintf ppf "%a;" Insn.pp i) b.body;
                Format.fprintf ppf "%a|" Block.pp_terminator b.term)
              f.blocks)
          ()
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (f :: prev))
    p.funcs;
  Hashtbl.fold
    (fun _ fs acc ->
      match fs with
      | [] | [ _ ] -> acc
      | f :: _ -> (List.length fs, Mfunc.size_bytes f) :: acc)
    tbl []
