(* The unified pass manager: pipeline-spec grammar, the shared pass
   context (bisect gating, per-pass timings and size deltas, verify-each,
   print-after), the generic runner, and the concrete MIR/machine pass
   registries.  See passman.mli for the overview. *)

(* --- pipeline specs -------------------------------------------------------- *)

type spec = {
  sp_name : string;
  sp_params : (string * string) list;
}

let is_name_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let is_value_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = ':'

let valid_name s = s <> "" && String.for_all is_name_char s
let valid_value s = s <> "" && String.for_all is_value_char s

(* Split on commas that sit outside parentheses. *)
let split_top s =
  let segs = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        segs := Buffer.contents buf :: !segs;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  segs := Buffer.contents buf :: !segs;
  if !depth <> 0 then Error "unbalanced parentheses"
  else Ok (List.rev_map String.trim !segs)

let parse_param seg =
  match String.index_opt seg '=' with
  | None -> Error (Printf.sprintf "parameter %S is not key=value" seg)
  | Some i ->
    let key = String.trim (String.sub seg 0 i) in
    let value = String.trim (String.sub seg (i + 1) (String.length seg - i - 1)) in
    if not (valid_name key) then Error (Printf.sprintf "bad parameter key %S" key)
    else if not (valid_value value) then
      Error (Printf.sprintf "bad parameter value %S for key %S" value key)
    else Ok (key, value)

let parse_pass seg =
  match String.index_opt seg '(' with
  | None ->
    if valid_name seg then Ok { sp_name = seg; sp_params = [] }
    else Error (Printf.sprintf "bad pass name %S" seg)
  | Some i ->
    let name = String.trim (String.sub seg 0 i) in
    if not (valid_name name) then Error (Printf.sprintf "bad pass name %S" name)
    else if seg.[String.length seg - 1] <> ')' then
      Error (Printf.sprintf "missing ) in %S" seg)
    else begin
      let inside = String.sub seg (i + 1) (String.length seg - i - 2) in
      let rec params = function
        | [] -> Ok []
        | seg :: rest -> (
          match parse_param (String.trim seg) with
          | Error _ as e -> e
          | Ok p -> (
            match params rest with Error _ as e -> e | Ok ps -> Ok (p :: ps)))
      in
      if String.trim inside = "" then
        Error (Printf.sprintf "empty parameter list in %S" seg)
      else
        match params (String.split_on_char ',' inside) with
        | Error _ as e -> e
        | Ok ps -> Ok { sp_name = name; sp_params = ps }
    end

let parse s =
  match split_top s with
  | Error _ as e -> e
  | Ok segs -> (
    if List.for_all (fun s -> s = "") segs then Error "empty pipeline spec"
    else if List.exists (fun s -> s = "") segs then
      Error "empty pass name in pipeline spec"
    else
      let rec go = function
        | [] -> Ok []
        | seg :: rest -> (
          match parse_pass seg with
          | Error _ as e -> e
          | Ok sp -> (
            match go rest with Error _ as e -> e | Ok sps -> Ok (sp :: sps)))
      in
      go segs)

let print_spec sp =
  if sp.sp_params = [] then sp.sp_name
  else
    sp.sp_name ^ "("
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sp.sp_params)
    ^ ")"

let print specs = String.concat "," (List.map print_spec specs)

let int_param sp key ~default =
  match List.assoc_opt key sp.sp_params with
  | None -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      failwith
        (Printf.sprintf "pass %s: parameter %s=%s is not an integer" sp.sp_name
           key v))

(* --- the pass context ------------------------------------------------------ *)

type print_after = [ `Never | `All | `Passes of string list ]

type step = {
  st_pass : string;
  st_detail : string;
  st_unit : string;
  st_applied : bool;
  st_seconds : float;
  st_before : int;
  st_after : int;
}

let step_label st =
  let name =
    if st.st_detail = "" then st.st_pass else st.st_pass ^ " " ^ st.st_detail
  in
  if st.st_unit = "" then name else st.st_unit ^ "/" ^ name

type ctx = {
  cx_verify_each : bool;
  cx_print_after : print_after;
  cx_bisect_limit : int option;
  cx_dump : string -> string -> unit;
  mutable cx_counter : int;          (* bisect steps counted so far *)
  mutable cx_rev_steps : step list;
  cx_forked : (string * string) list ref option;
      (* a forked shard context buffers its print-after dumps here so the
         parent can replay them in shard order at [join] *)
}

let default_dump label text =
  Printf.eprintf "*** IR Dump After %s ***\n%s%s" label text
    (if String.length text > 0 && text.[String.length text - 1] = '\n' then ""
     else "\n")

let create_ctx ?(verify_each = false) ?(print_after = `Never) ?bisect_limit
    ?(dump = default_dump) () =
  {
    cx_verify_each = verify_each;
    cx_print_after = print_after;
    cx_bisect_limit = bisect_limit;
    cx_dump = dump;
    cx_counter = 0;
    cx_rev_steps = [];
    cx_forked = None;
  }

(* --- sharded contexts (thin-WPO's parallel per-module phase) --------------- *)

(* Bisect-step numbering must be a function of the pipeline alone, not of
   domain scheduling, so a parallel phase cannot share the parent's mutable
   counter.  Instead each shard forks a context whose counter starts at a
   precomputed offset ([reserved_steps] per preceding shard); the parent
   then joins the shards in deterministic order, appending their step logs
   and replaying their buffered dumps, and advances its own counter by the
   whole reservation — whether or not the shards used every reserved step
   (a self-gated pass that stops early leaves its remaining step numbers
   unused, exactly like a skipped round under a bisect limit). *)

let reserved_steps specs =
  List.fold_left
    (fun acc sp ->
      acc
      +
      match sp.sp_name with
      | "outline" | "thin-outline" -> int_param sp "rounds" ~default:5
      | _ -> 1)
    0 specs

let fork ctx ~offset =
  let buf = ref [] in
  {
    ctx with
    cx_dump = (fun label text -> buf := (label, text) :: !buf);
    cx_counter = ctx.cx_counter + offset;
    cx_rev_steps = [];
    cx_forked = Some buf;
  }

let join ctx ~advance children =
  List.iter
    (fun child ->
      (match child.cx_forked with
      | Some buf -> List.iter (fun (l, t) -> ctx.cx_dump l t) (List.rev !buf)
      | None -> ());
      ctx.cx_rev_steps <- child.cx_rev_steps @ ctx.cx_rev_steps)
    children;
  ctx.cx_counter <- ctx.cx_counter + advance

let gate ctx ~pass:_ ~detail:_ =
  ctx.cx_counter <- ctx.cx_counter + 1;
  match ctx.cx_bisect_limit with
  | None -> true
  | Some limit -> ctx.cx_counter <= limit

let record ctx st = ctx.cx_rev_steps <- st :: ctx.cx_rev_steps
let steps ctx = List.rev ctx.cx_rev_steps

let steps_applied ctx =
  List.fold_left
    (fun n st -> if st.st_applied then n + 1 else n)
    0 ctx.cx_rev_steps

let verify_each ctx = ctx.cx_verify_each

let should_print_after ctx name =
  match ctx.cx_print_after with
  | `Never -> false
  | `All -> true
  | `Passes names -> List.mem name names

let dump ctx label text = ctx.cx_dump label text

(* --- stages and passes ----------------------------------------------------- *)

type 'ir stage = {
  stage_name : string;
  stage_verify : 'ir -> (unit, string) result;
  stage_print : 'ir -> string;
  stage_size : 'ir -> int;
}

type 'ir pass = {
  p_name : string;
  p_params : string list;
  p_self_gated : bool;
  p_linked : bool;
  p_run : ctx -> spec -> 'ir -> 'ir;
}

let find_pass passes name = List.find_opt (fun p -> p.p_name = name) passes

let validate_specs ~known specs =
  let rec go = function
    | [] -> Ok ()
    | sp :: rest -> (
      match known sp.sp_name with
      | None -> Error (Printf.sprintf "unknown pass %S" sp.sp_name)
      | Some keys -> (
        match
          List.find_opt (fun (k, _) -> not (List.mem k keys)) sp.sp_params
        with
        | Some (k, _) ->
          Error
            (Printf.sprintf "pass %s: unknown parameter %S (accepts: %s)"
               sp.sp_name k
               (if keys = [] then "none" else String.concat ", " keys))
        | None -> go rest))
  in
  go specs

let check_params pass sp =
  List.iter
    (fun (k, _) ->
      if not (List.mem k pass.p_params) then
        failwith
          (Printf.sprintf "pass %s: unknown parameter %S" pass.p_name k))
    sp.sp_params

let unit_label unit_name name =
  if unit_name = "" then name else unit_name ^ "/" ^ name

let run_passes ctx stage passes ?(unit_name = "") specs ir =
  List.fold_left
    (fun ir sp ->
      match find_pass passes sp.sp_name with
      | None ->
        failwith
          (Printf.sprintf "%s pipeline: unknown pass %S" stage.stage_name
             sp.sp_name)
      | Some pass ->
        check_params pass sp;
        let finish ir' =
          if verify_each ctx && not pass.p_self_gated then begin
            match stage.stage_verify ir' with
            | Error e ->
              failwith
                (Printf.sprintf "verify-each after %s: %s"
                   (unit_label unit_name pass.p_name)
                   e)
            | Ok () -> ()
          end;
          if should_print_after ctx pass.p_name then
            dump ctx (unit_label unit_name pass.p_name) (stage.stage_print ir');
          ir'
        in
        if pass.p_self_gated then finish (pass.p_run ctx sp ir)
        else if gate ctx ~pass:pass.p_name ~detail:"" then begin
          let before = stage.stage_size ir in
          let t0 = Unix.gettimeofday () in
          let ir' = pass.p_run ctx sp ir in
          record ctx
            {
              st_pass = pass.p_name;
              st_detail = "";
              st_unit = unit_name;
              st_applied = true;
              st_seconds = Unix.gettimeofday () -. t0;
              st_before = before;
              st_after = stage.stage_size ir';
            };
          finish ir'
        end
        else begin
          let size = stage.stage_size ir in
          record ctx
            {
              st_pass = pass.p_name;
              st_detail = "";
              st_unit = unit_name;
              st_applied = false;
              st_seconds = 0.;
              st_before = size;
              st_after = size;
            };
          ir
        end)
    ir specs

(* --- opt-bisect ------------------------------------------------------------ *)

let bisect ~hi ~fails =
  if hi < 1 || not (fails hi) then None
  else
    (* invariant: fails hi; the answer lies in [lo..hi] *)
    let rec go lo hi =
      if lo >= hi then Some hi
      else
        let mid = (lo + hi) / 2 in
        if fails mid then go lo mid else go (mid + 1) hi
    in
    go 1 hi

(* --- timing tree ----------------------------------------------------------- *)

type timing = {
  t_name : string;
  t_seconds : float;
  t_note : string;
  t_children : timing list;
}

let leaf ?(note = "") name seconds =
  { t_name = name; t_seconds = seconds; t_note = note; t_children = [] }

let node ?(note = "") ?seconds name children =
  let seconds =
    match seconds with
    | Some s -> s
    | None -> List.fold_left (fun a c -> a +. c.t_seconds) 0. children
  in
  { t_name = name; t_seconds = seconds; t_note = note; t_children = children }

let render_tree ts =
  let buf = Buffer.create 1024 in
  let rec go depth t =
    let name = String.make (2 * depth) ' ' ^ t.t_name in
    Buffer.add_string buf
      (Printf.sprintf "%-34s %9.4fs%s\n" name t.t_seconds
         (if t.t_note = "" then "" else "  " ^ t.t_note));
    List.iter (go (depth + 1)) t.t_children
  in
  List.iter (go 0) ts;
  Buffer.contents buf

(* --- the concrete registries ----------------------------------------------- *)

let mir_stage =
  {
    stage_name = "mir";
    stage_verify = (fun m -> Ir.validate m);
    stage_print = (fun m -> Format.asprintf "%a" Ir.pp_modul m);
    stage_size = Ir.module_instr_count;
  }

let machine_stage =
  {
    stage_name = "machine";
    stage_verify = Machine.Program.validate;
    stage_print = Machine.Asm_printer.to_source;
    stage_size = Machine.Program.code_size_bytes;
  }

let mir_passes ~keep =
  [
    {
      p_name = "dce";
      p_params = [];
      p_self_gated = false;
      p_linked = false;
      p_run = (fun _ _ m -> fst (Dce.run m));
    };
    {
      p_name = "sil-outline";
      p_params = [ "min" ];
      p_self_gated = false;
      p_linked = false;
      p_run =
        (fun _ sp m ->
          let min_occurrences = int_param sp "min" ~default:8 in
          fst (Swiftlet.Sil_outline.run ~min_occurrences m));
    };
    {
      p_name = "merge-functions";
      p_params = [];
      p_self_gated = false;
      p_linked = false;
      p_run = (fun _ _ m -> fst (Merge_functions.run ~keep m));
    };
    {
      p_name = "fmsa";
      p_params = [];
      p_self_gated = false;
      p_linked = false;
      p_run = (fun _ _ m -> fst (Fmsa.run ~keep m));
    };
    {
      p_name = "global-merge";
      p_params = [ "min"; "max-holes" ];
      p_self_gated = false;
      p_linked = false;
      p_run =
        (fun _ sp m ->
          let min_instrs = int_param sp "min" ~default:4 in
          let max_holes = int_param sp "max-holes" ~default:6 in
          fst (Global_merge.run_module ~min_instrs ~max_holes ~keep m));
    };
  ]

type machine_env = {
  me_engine : [ `Incremental | `Scratch ];
  me_scope : string;
  me_profile : Outcore.Profile.t;
  me_on_stats : Outcore.Outliner.round_stats list -> unit;
  me_thin_workers : int;
  me_thin_report : Thinwpo.Engine.Report.t;
  me_warm : (Outcore.Outliner.engine * (string -> bool)) option;
}

(* The repeated outliner as a self-gated pass: every round is one bisect
   step, so --opt-bisect-limit can cut the repetition mid-way and
   localization lands on a single round.  The loop mirrors
   Outcore.Repeat.run exactly (same options, same early stop discarding a
   round that outlined nothing) — the fuzz lattice's byte-identity
   differential depends on it. *)
let outline_pass env unit_name =
  {
    p_name = "outline";
    p_params = [ "rounds" ];
    p_self_gated = true;
    p_linked = false;
    p_run =
      (fun ctx sp p ->
        let rounds = int_param sp "rounds" ~default:5 in
        let eng =
          match (env.me_engine, env.me_warm) with
          | `Incremental, Some (e, changed) ->
            (* Warm engine from the serve daemon: invalidate at the build
               boundary, then reuse its caches across this build's rounds. *)
            Outcore.Outliner.engine_begin_build e ~changed p;
            Some e
          | `Incremental, None -> Some (Outcore.Outliner.create_engine ())
          | `Scratch, _ -> None
        in
        let options =
          { Outcore.Outliner.default_options with scope_name = env.me_scope }
        in
        let stats_acc = ref [] in
        let rec go round p =
          if round > rounds then p
          else begin
            let detail = Printf.sprintf "round %d" round in
            if not (gate ctx ~pass:"outline" ~detail) then begin
              let size = Machine.Program.code_size_bytes p in
              record ctx
                {
                  st_pass = "outline";
                  st_detail = detail;
                  st_unit = unit_name;
                  st_applied = false;
                  st_seconds = 0.;
                  st_before = size;
                  st_after = size;
                };
              p
            end
            else begin
              let before = Machine.Program.code_size_bytes p in
              let t0 = Unix.gettimeofday () in
              let opts =
                {
                  options with
                  Outcore.Outliner.round =
                    options.Outcore.Outliner.round + round - 1;
                }
              in
              let p', stats, _dirty =
                match eng with
                | Some e ->
                  Outcore.Outliner.run_round_incremental ~profile:env.me_profile
                    e opts p
                | None ->
                  Outcore.Outliner.run_round ~profile:env.me_profile opts p
              in
              (* A round that outlines nothing ends the repetition with the
                 pre-round program, as Repeat.run does. *)
              let result =
                if stats.Outcore.Outliner.sequences_outlined = 0 then p else p'
              in
              record ctx
                {
                  st_pass = "outline";
                  st_detail = detail;
                  st_unit = unit_name;
                  st_applied = true;
                  st_seconds = Unix.gettimeofday () -. t0;
                  st_before = before;
                  st_after = Machine.Program.code_size_bytes result;
                };
              if verify_each ctx then begin
                match Machine.Program.validate result with
                | Error e ->
                  failwith
                    (Printf.sprintf "verify-each after %s: %s"
                       (unit_label unit_name ("outline " ^ detail))
                       e)
                | Ok () -> ()
              end;
              if stats.Outcore.Outliner.sequences_outlined = 0 then p
              else begin
                stats_acc := stats :: !stats_acc;
                go (round + 1) p'
              end
            end
          end
        in
        let final = go 1 p in
        env.me_on_stats (List.rev !stats_acc);
        final);
  }

(* Thin-WPO as a self-gated linked pass: it wants the system-linker-merged
   program (it re-shards it by originating module itself), and every
   three-phase round is one bisect step — the serial global decision is the
   natural gating unit, since cutting inside a round would leave shards
   rewritten against half a decision table.  Round bookkeeping mirrors
   [outline_pass]: a round that rewrites nothing ends the repetition with
   the pre-round program. *)
let thin_outline_pass env =
  {
    p_name = "thin-outline";
    p_params = [ "workers"; "rounds"; "min" ];
    p_self_gated = true;
    p_linked = true;
    p_run =
      (fun ctx sp p ->
        let workers =
          Thinwpo.Pool.resolve_workers
            (int_param sp "workers" ~default:env.me_thin_workers)
        in
        let rounds = int_param sp "rounds" ~default:5 in
        let min_length = int_param sp "min" ~default:2 in
        let facts = Thinwpo.Engine.create_facts () in
        let stats_acc = ref [] in
        let rec go round p =
          if round > rounds then p
          else begin
            let detail = Printf.sprintf "round %d" round in
            if not (gate ctx ~pass:"thin-outline" ~detail) then begin
              let size = Machine.Program.code_size_bytes p in
              record ctx
                {
                  st_pass = "thin-outline";
                  st_detail = detail;
                  st_unit = "";
                  st_applied = false;
                  st_seconds = 0.;
                  st_before = size;
                  st_after = size;
                };
              p
            end
            else begin
              let before = Machine.Program.code_size_bytes p in
              let t0 = Unix.gettimeofday () in
              let options =
                {
                  Outcore.Outliner.default_options with
                  round;
                  min_length;
                }
              in
              let p', stats =
                Thinwpo.Engine.run_round ~report:env.me_thin_report ~workers
                  ~facts ~options p
              in
              let result =
                if stats.Outcore.Outliner.sequences_outlined = 0 then p else p'
              in
              record ctx
                {
                  st_pass = "thin-outline";
                  st_detail = detail;
                  st_unit = "";
                  st_applied = true;
                  st_seconds = Unix.gettimeofday () -. t0;
                  st_before = before;
                  st_after = Machine.Program.code_size_bytes result;
                };
              if verify_each ctx then begin
                match Machine.Program.validate result with
                | Error e ->
                  failwith
                    (Printf.sprintf "verify-each after thin-outline %s: %s"
                       detail e)
                | Ok () -> ()
              end;
              if stats.Outcore.Outliner.sequences_outlined = 0 then p
              else begin
                stats_acc := stats :: !stats_acc;
                go (round + 1) p'
              end
            end
          end
        in
        let final = go 1 p in
        env.me_on_stats (List.rev !stats_acc);
        final);
  }

let machine_passes env =
  [
    {
      p_name = "canonicalize";
      p_params = [];
      p_self_gated = false;
      p_linked = false;
      p_run = (fun _ _ p -> fst (Outcore.Canonicalize.run p));
    };
    outline_pass env env.me_scope;
    thin_outline_pass env;
    {
      p_name = "caller-affinity-layout";
      p_params = [];
      p_self_gated = false;
      p_linked = true;
      p_run = (fun _ _ p -> Outcore.Layout.optimize p);
    };
    {
      p_name = "pgo-layout";
      p_params = [ "strategy"; "w" ];
      p_self_gated = false;
      p_linked = true;
      (* A marker pass: profile-guided placement is pure reordering
         realized at link time ([Linker.link ~order]) after the program
         is final, so the pass body is the identity.  Registering it
         makes the strategy — order-file, c3, balanced, bp-compress(w) —
         a validated, parameterized member of the pipeline spec that the
         pipeline raises back onto [config.outlined_layout]. *)
      p_run = (fun _ _ p -> p);
    };
    {
      p_name = "stitch";
      p_params = [];
      p_self_gated = false;
      p_linked = true;
      (* Marker pass for block-granularity placement, same contract as
         pgo-layout: the real transform (hot/cold splitting plus
         interprocedural chain stitching, [Blocklayout.apply]) runs in
         the pipeline's layout phase on the linked program, so the pass
         body is the identity and registering it only makes "stitch" a
         validated pipeline-spec member. *)
      p_run = (fun _ _ p -> p);
    };
  ]

let registered_names =
  [
    "dce";
    "sil-outline";
    "merge-functions";
    "fmsa";
    "global-merge";
    "canonicalize";
    "outline";
    "thin-outline";
    "caller-affinity-layout";
    "pgo-layout";
    "stitch";
  ]
