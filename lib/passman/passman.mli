(** The unified pass manager.

    LLVM's pipeline gives every transformation a name, a parameter list,
    per-pass timing, [-verify-each], [-print-after], a textual pipeline
    spec, and [-opt-bisect-limit] for free; our reproduction hardcoded the
    same sequencing as ad-hoc control flow in [Pipeline.build].  This
    module is the generic framework that replaces it: a uniform pass
    signature over each IR stage (MIR modules and machine programs), a
    shared context that owns bisect gating, per-pass timings, size deltas
    and diagnostics, and a textual pipeline-spec grammar

    {v pipeline := pass ("," pass)*
   pass     := name | name "(" param ("," param)* ")"
   param    := key "=" value v}

    e.g. ["dce,sil-outline(min=8),merge-functions,outline(rounds=5)"].
    The concrete pass registries (the passes named above plus
    [canonicalize], [fmsa] and [caller-affinity-layout]) live at the
    bottom of this module; [Pipeline.config] lowers onto specs via
    [Pipeline.spec_of_config]. *)

(* --- pipeline specs -------------------------------------------------------- *)

type spec = {
  sp_name : string;                       (** pass name, e.g. ["outline"] *)
  sp_params : (string * string) list;     (** ordered [key=value] pairs *)
}

val parse : string -> (spec list, string) result
(** Parse a pipeline string.  Pass names are [[a-z0-9-]+]; parameters are
    [key=value] with non-empty alphanumeric keys.  Whitespace around
    separators is tolerated; [print] emits the canonical form. *)

val print : spec list -> string
(** Canonical rendering; [parse (print s) = Ok s] for any well-formed [s]. *)

val int_param : spec -> string -> default:int -> int
(** Look up an integer parameter; raises [Failure] (caught by
    [Pipeline.build]'s error wrapper) when the value is not an integer. *)

(* --- the pass context ------------------------------------------------------ *)

type print_after = [ `Never | `All | `Passes of string list ]

type step = {
  st_pass : string;    (** registered pass name *)
  st_detail : string;  (** sub-step, e.g. ["round 3"] of the outliner; [""] *)
  st_unit : string;    (** compilation unit ([""] = whole program) *)
  st_applied : bool;   (** false: skipped by the bisect limit *)
  st_seconds : float;
  st_before : int;     (** stage size metric before the step *)
  st_after : int;      (** … and after (instrs for MIR, bytes for machine) *)
}

val step_label : step -> string
(** ["unit/pass detail"], unit and detail omitted when empty. *)

type ctx
(** One per pipeline run, shared by every stage so the bisect counter and
    the step log span MIR and machine passes. *)

val create_ctx :
  ?verify_each:bool ->
  ?print_after:print_after ->
  ?bisect_limit:int ->
  ?dump:(string -> string -> unit) ->
  unit ->
  ctx
(** [dump label text] receives [--print-after] output; the default prints
    an LLVM-style ["*** IR Dump After <label> ***"] banner to stderr. *)

val gate : ctx -> pass:string -> detail:string -> bool
(** Count one bisect step and say whether it may run: step index starts at
    1 and steps numbered beyond the limit are skipped (LLVM's
    [-opt-bisect-limit] contract; no limit means run everything).
    Self-gated passes call this once per sub-step. *)

val record : ctx -> step -> unit

val steps : ctx -> step list
(** Chronological. *)

val steps_applied : ctx -> int
(** Bisect steps that actually ran. *)

val verify_each : ctx -> bool
val should_print_after : ctx -> string -> bool
val dump : ctx -> string -> string -> unit

(* --- sharded contexts (thin-WPO's parallel per-module phase) --------------- *)

val reserved_steps : spec list -> int
(** How many bisect steps one unit running [specs] may consume: 1 per pass,
    except the self-gated outliners, which reserve their [rounds] (they may
    stop early, leaving step numbers unused — harmless, and the price of a
    numbering that is a function of the pipeline alone). *)

val fork : ctx -> offset:int -> ctx
(** A shard context for one unit of a parallel phase: same configuration,
    private step log, bisect counter pre-advanced [offset] steps past the
    parent's, print-after dumps buffered for deterministic replay.  Shards
    of one phase must receive disjoint reservations
    ([offset = i * reserved_steps unit_specs] for the i-th unit). *)

val join : ctx -> advance:int -> ctx list -> unit
(** Merge forked shard contexts back in list order (append their steps,
    replay their dumps through the parent's sink) and advance the parent's
    bisect counter by [advance] — the phase's whole reservation, however
    many steps the shards actually used. *)

(* --- stages and passes ----------------------------------------------------- *)

type 'ir stage = {
  stage_name : string;                       (** ["mir"] or ["machine"] *)
  stage_verify : 'ir -> (unit, string) result;
  stage_print : 'ir -> string;
  stage_size : 'ir -> int;
}

type 'ir pass = {
  p_name : string;
  p_params : string list;  (** accepted parameter keys; others are errors *)
  p_self_gated : bool;
      (** the pass calls {!gate} itself, once per internal step (the
          outliner gates each round); the manager then neither gates nor
          records it as a single step *)
  p_linked : bool;
      (** machine pass that needs the merged program: in the per-module
          pipeline it runs after the system-linker merge, not per unit *)
  p_run : ctx -> spec -> 'ir -> 'ir;
}

val find_pass : 'ir pass list -> string -> 'ir pass option

val validate_specs :
  known:(string -> string list option) -> spec list -> (unit, string) result
(** [known name] returns the accepted parameter keys of a registered pass,
    or [None] for an unknown name.  Checks every spec's name, parameter
    keys, and that integer-looking values parse. *)

val run_passes :
  ctx -> 'ir stage -> 'ir pass list -> ?unit_name:string -> spec list -> 'ir -> 'ir
(** Run the named passes in order through the shared context: bisect-gate
    each (non-self-gated) application, time it, record the size delta,
    then — per the context — verify the stage invariants and dump the IR.
    Raises [Failure] on an unknown pass/parameter or a [--verify-each]
    violation (naming the offending pass). *)

(* --- opt-bisect ------------------------------------------------------------ *)

val bisect : hi:int -> fails:(int -> bool) -> int option
(** Smallest [n] in [1..hi] with [fails n], by binary search, assuming
    monotonicity ([fails] true stays true as [n] grows); [None] when even
    [fails hi] is false.  [fails n] typically rebuilds with
    [bisect_limit = n] and compares against a reference, so the returned
    [n] indexes the first faulty step in {!steps}. *)

(* --- timing tree ----------------------------------------------------------- *)

type timing = {
  t_name : string;
  t_seconds : float;
  t_note : string;             (** e.g. a size delta; [""] for none *)
  t_children : timing list;
}

val leaf : ?note:string -> string -> float -> timing
val node : ?note:string -> ?seconds:float -> string -> timing list -> timing
(** [node] sums its children's seconds unless [seconds] (the measured wall
    time of the enclosing phase) is given. *)

val render_tree : timing list -> string
(** Indented table: name, seconds, note. *)

(* --- the concrete registries ----------------------------------------------- *)

val mir_stage : Ir.modul stage
val machine_stage : Machine.Program.t stage

val mir_passes : keep:(Ir.func -> bool) -> Ir.modul pass list
(** [dce], [sil-outline(min=N)] (helper threshold, the old hardcoded 8),
    [merge-functions], [fmsa].  [keep] exempts entry points from being
    thunked by the two merging baselines. *)

type machine_env = {
  me_engine : [ `Incremental | `Scratch ];
  me_scope : string;  (** outlined-symbol scope: module name or [""] *)
  me_profile : Outcore.Profile.t;
  me_on_stats : Outcore.Outliner.round_stats list -> unit;
  me_thin_workers : int;
      (** default worker count for [thin-outline] when the spec does not
          say ([workers=N] wins); [<= 0] auto-detects *)
  me_thin_report : Thinwpo.Engine.Report.t;
      (** per-shard/per-round wall-time split of every [thin-outline] run,
          woven into the [--profile] tree by [Pipeline.build] *)
  me_warm : (Outcore.Outliner.engine * (string -> bool)) option;
      (** warm incremental engine owned by a caller that outlives one build
          (the serve daemon), with the changed-module predicate for its
          build-boundary invalidation.  When present (and [me_engine] is
          [`Incremental]) the [outline] pass calls
          {!Outcore.Outliner.engine_begin_build} and reuses this engine
          instead of creating a fresh one per run.  [None] everywhere else. *)
}

val machine_passes : machine_env -> Machine.Program.t pass list
(** [canonicalize], [outline(rounds=N)] (self-gated: every round is one
    bisect step, recorded as ["round K"] details), the linked self-gated
    [thin-outline(workers=N,rounds=N,min=N)] (sharded parallel
    whole-program outlining; each three-phase round is one bisect step),
    and the linked [caller-affinity-layout]. *)

val registered_names : string list
(** Every pass name in both registries, for completeness checks. *)
