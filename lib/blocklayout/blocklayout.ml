(* Block-granularity placement (Codestitcher-style): split cold basic
   blocks out of each function into the linker's __text_cold region, then
   stitch hot chains along the hottest interprocedural call edges so that
   caller and callee bytes land on the same pages and cache lines.

   The unit of placement becomes the *block chain*: a function's hot
   prefix under its own symbol and (when split) a cold suffix under
   [Linker.cold_symbol].  Within a chain, an unconditional branch to the
   block placed immediately next is elided to a zero-byte
   [Block.Fallthrough]; conversely, a fallthrough pair separated by the
   split has its branch materialized back to [Block.B].  Both directions
   are pure byte-layout transformations — observable behavior is
   preserved, which the perfsim differential and the fuzz lattice
   enforce. *)

open Machine

(* Fault injection for `sizeopt fuzz --self-test`: a splitter that drops
   branches layout must materialize — its elision test judges adjacency
   in the ORIGINAL block order, so when the split moves a cold run away
   from its originally-next block the branch back is elided anyway,
   leaving a fallthrough edge that does not reach its target.  Caught by
   Program.validate and by the interp differential (chains execute in
   address order, so a bad fallthrough runs the wrong bytes). *)
let fault_drop_materialized_branch = ref false

(* --- cold-block classification --------------------------------------------- *)

let static_trap_symbols = [ "swift_bounds_fail" ]

(* Static never-executed heuristic: trap-calling blocks (bounds-check
   failure paths) seed the cold set, which then absorbs every non-entry
   block reachable only from cold blocks (unreachable blocks included —
   they have no hot predecessor). *)
let classify_static (f : Mfunc.t) =
  match f.blocks with
  | [] | [ _ ] -> fun _ -> false
  | (entry : Block.t) :: _ ->
    let seeded (b : Block.t) =
      Array.exists
        (function
          | Insn.Bl s -> List.mem s static_trap_symbols
          | _ -> false)
        b.body
    in
    let preds = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun l ->
            Hashtbl.replace preds l
              (b.label :: Option.value ~default:[] (Hashtbl.find_opt preds l)))
          (Block.successors b.term))
      f.blocks;
    let cold = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        if seeded b && not (String.equal b.label entry.label) then
          Hashtbl.replace cold b.label ())
      f.blocks;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (b : Block.t) ->
          if
            (not (Hashtbl.mem cold b.label))
            && not (String.equal b.label entry.label)
          then
            let ps = Option.value ~default:[] (Hashtbl.find_opt preds b.label) in
            let only_cold = List.for_all (Hashtbl.mem cold) ps in
            if only_cold then begin
              Hashtbl.replace cold b.label ();
              changed := true
            end)
        f.blocks
    done;
    Hashtbl.mem cold

(* Profile-based classification: a block of an executed function is cold
   iff the traces never entered it.  Functions the workload never touched
   are left whole — function-level ordering already sends them to the
   tail, and splitting them would only mint symbols. *)
let classify ?profile (f : Mfunc.t) =
  match profile with
  | Some prof
    when Pgo.Profile.has_block_counts prof && Pgo.Profile.executed prof f.name
    ->
    fun label -> Pgo.Profile.block_count prof ~func:f.name ~label = 0
  | Some prof when Pgo.Profile.has_block_counts prof ->
    (* never executed: keep whole *)
    ignore prof;
    fun _ -> false
  | Some _ | None -> classify_static f

(* --- splitting and branch elision ------------------------------------------- *)

let split_func ~cold (f : Mfunc.t) =
  match f.blocks with
  | [] | [ _ ] -> f
  | (entry : Block.t) :: _ ->
    let is_cold (b : Block.t) =
      (not (String.equal b.label entry.label)) && cold b.label
    in
    let hot, coldb = List.partition (fun b -> not (is_cold b)) f.blocks in
    let n_hot = List.length hot in
    let arranged = hot @ coldb in
    let pos = Hashtbl.create 16 and orig_pos = Hashtbl.create 16 in
    List.iteri (fun i (b : Block.t) -> Hashtbl.replace pos b.label i) arranged;
    List.iteri (fun i (b : Block.t) -> Hashtbl.replace orig_pos b.label i) f.blocks;
    let same_section i j = i < n_hot = (j < n_hot) in
    let elide_ok i cur l =
      if !fault_drop_materialized_branch then
        (* faulty: adjacency judged in the pre-split order, so a branch
           whose pair the arrangement separated is elided instead of
           materialized *)
        match (Hashtbl.find_opt orig_pos l, Hashtbl.find_opt orig_pos cur) with
        | Some jo, Some io -> jo = io + 1
        | _ -> false
      else
        match Hashtbl.find_opt pos l with
        | None -> false
        | Some j -> j = i + 1 && same_section i j
    in
    let arranged =
      List.mapi
        (fun i (b : Block.t) ->
          match b.term with
          | Block.B l | Block.Fallthrough l ->
            if elide_ok i b.label l then { b with term = Block.Fallthrough l }
            else { b with term = Block.B l }
          | Block.Ret | Block.Bcond _ | Block.Cbz _ | Block.Cbnz _
          | Block.Tail_call _ ->
            b)
        arranged
    in
    let cold_from =
      match coldb with [] -> None | (b : Block.t) :: _ -> Some b.label
    in
    { f with blocks = arranged; cold_from }

let split_program ?profile (p : Program.t) =
  Program.replace_funcs p
    (List.map (fun f -> split_func ~cold:(classify ?profile f) f) p.funcs)

(* --- interprocedural chain stitching ----------------------------------------

   Codestitcher's layout step, at chain granularity: process dynamic call
   edges from hottest to coldest and concatenate the callee's chain
   sequence after the caller's whenever the caller currently ends a
   sequence and the callee begins one — the block-layout analogue of
   C3's dominant-caller clustering.  Sequences are emitted in first-touch
   order (earliest member first), never-executed functions keep program
   order at the tail, and the cold chains of split functions close the
   image in the same order as their hot counterparts. *)
let stitch_order ?profile (p : Program.t) =
  let names = List.map (fun (f : Mfunc.t) -> f.name) p.funcs in
  let hot_order =
    match profile with
    | None -> names
    | Some prof ->
      let rank = Hashtbl.create 64 in
      List.iteri
        (fun i f -> if not (Hashtbl.mem rank f) then Hashtbl.add rank f i)
        prof.Pgo.Profile.first_touch;
      let known = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace known n ()) names;
      let executed f = Hashtbl.mem rank f && Hashtbl.mem known f in
      let next = Hashtbl.create 64 and prev = Hashtbl.create 64 in
      let rec head_of u =
        match Hashtbl.find_opt prev u with None -> u | Some v -> head_of v
      in
      let edges =
        List.sort
          (fun ((c1, e1), w1) ((c2, e2), w2) ->
            match Int.compare w2 w1 with
            | 0 -> (
              match String.compare c1 c2 with
              | 0 -> String.compare e1 e2
              | n -> n)
            | n -> n)
          prof.Pgo.Profile.edges
      in
      List.iter
        (fun ((caller, callee), w) ->
          if
            w > 0 && executed caller && executed callee
            && (not (Hashtbl.mem next caller))
            && (not (Hashtbl.mem prev callee))
            && not (String.equal (head_of caller) (head_of callee))
          then begin
            Hashtbl.replace next caller callee;
            Hashtbl.replace prev callee caller
          end)
        edges;
      let emitted = Hashtbl.create 64 in
      let sequences =
        List.filter_map
          (fun n ->
            if executed n && not (Hashtbl.mem prev n) then begin
              let rec walk u acc =
                match Hashtbl.find_opt next u with
                | Some v -> walk v (v :: acc)
                | None -> List.rev acc
              in
              let seq = walk n [ n ] in
              let r =
                List.fold_left
                  (fun a u ->
                    min a
                      (Option.value ~default:max_int (Hashtbl.find_opt rank u)))
                  max_int seq
              in
              Some (r, seq)
            end
            else None)
          names
      in
      let sequences =
        List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2) sequences
      in
      let out = ref [] in
      List.iter
        (fun (_, seq) ->
          List.iter
            (fun u ->
              if not (Hashtbl.mem emitted u) then begin
                Hashtbl.replace emitted u ();
                out := u :: !out
              end)
            seq)
        sequences;
      (* never-executed functions: program order, after the hot tail *)
      List.iter
        (fun n ->
          if not (Hashtbl.mem emitted n) then begin
            Hashtbl.replace emitted n ();
            out := n :: !out
          end)
        names;
      List.rev !out
  in
  let split = Hashtbl.create 16 in
  List.iter
    (fun (f : Mfunc.t) ->
      if Mfunc.is_split f then Hashtbl.replace split f.name ())
    p.funcs;
  hot_order
  @ List.filter_map
      (fun n ->
        if Hashtbl.mem split n then Some (Linker.cold_symbol n) else None)
      hot_order

let apply ?profile (p : Program.t) =
  let p = split_program ?profile p in
  (p, stitch_order ?profile p)
