(** Block-granularity placement: hot/cold splitting and Codestitcher-style
    interprocedural chain stitching.

    The linker's unit of placement becomes the block chain — a function's
    hot prefix under its own symbol and, when split, a cold suffix placed
    in the [__text_cold] region under [Linker.cold_symbol].  Splitting and
    stitching only move bytes: unconditional branches to the next placed
    block are elided to zero-byte fallthroughs, and fallthroughs broken by
    the split are materialized back to branches, so observable behavior is
    unchanged (enforced by the perfsim differential on the fuzz lattice). *)

val fault_drop_materialized_branch : bool ref
(** Fault injection for [sizeopt fuzz --self-test]: the splitter's elision
    test judges adjacency in the pre-split block order, so branches whose
    pair the split separated are elided instead of materialized, leaving
    fallthrough edges that do not reach their target.  Caught by
    [Program.validate] and by interp-vs-oracle divergence. *)

val classify : ?profile:Pgo.Profile.t -> Machine.Mfunc.t -> string -> bool
(** Cold predicate over block labels.  With a block-level profile, a
    block of an executed function is cold iff its execution count is zero
    (never-executed functions are left whole).  Otherwise a static
    heuristic applies: blocks calling trap symbols ([swift_bounds_fail])
    seed the cold set, which absorbs every non-entry block reachable only
    from cold blocks.  The entry block is never cold. *)

val split_func : cold:(string -> bool) -> Machine.Mfunc.t -> Machine.Mfunc.t
(** Reorder blocks to hot-prefix/cold-suffix per [cold], set
    [cold_from], and rewrite unconditional terminators: elide
    branch-to-next within a section, materialize fallthroughs the split
    separated.  Single-block functions are returned unchanged. *)

val split_program : ?profile:Pgo.Profile.t -> Machine.Program.t -> Machine.Program.t
(** [split_func] over every function, classifying with [classify]. *)

val stitch_order : ?profile:Pgo.Profile.t -> Machine.Program.t -> string list
(** Placement order over chains for [Linker.link]: greedily concatenate
    callee sequences after callers along the hottest dynamic call edges
    (hottest first, lexicographic tiebreak — deterministic), emit
    sequences in first-touch order, never-executed functions in program
    order after them, and the cold chains of split functions last, in hot
    order.  Without a profile this degenerates to program order plus
    trailing cold chains. *)

val apply :
  ?profile:Pgo.Profile.t ->
  Machine.Program.t ->
  Machine.Program.t * string list
(** [split_program] then [stitch_order] on the split result. *)
