(** The thin-WPO round engine: shard the merged program by originating
    module, discover outline candidates per shard in parallel (phase 1),
    take one serial global decision over the exchanged summaries (phase 2),
    and rewrite every shard in parallel against the decision table
    (phase 3).

    Determinism contract: the output program is a function of the input
    program and the options alone — {e never} of [workers] or domain
    scheduling.  Shards are formed in first-appearance order, workers write
    results into index-addressed slots, the decision table is ranked by
    (benefit, hash), outlined symbols are named from (round, rank), and
    hosted bodies are appended in rank order.  The fuzz lattice holds a
    byte-identity differential between [workers = 1] and [workers = 4]
    over exactly this contract. *)

type facts
(** The cross-round global facts table: thin-outlined symbols whose bodies
    are not SP-neutral callees.  Shared by every shard of every later
    round, because the callee's body may be hosted anywhere. *)

val create_facts : unit -> facts
val fact_sp_unsafe : facts -> string -> bool

module Report : sig
  (** Per-round wall-time split for [--profile] and the bench harness: one
      entry per shard (discovery and rewrite seconds) plus the serial
      global decision round. *)

  type shard = {
    rs_module : string;
    rs_funcs : int;
    rs_discover : float;
    rs_rewrite : float;
  }

  type round = {
    rr_round : int;
    rr_shards : shard list;      (** shard order *)
    rr_decide : float;
    rr_selected : int;           (** decision-table entries *)
  }

  type t

  val create : unit -> t
  val rounds : t -> round list   (** chronological *)

  val to_json : t -> string
  (** JSON array, one object per round, for BENCH_thinwpo.json. *)
end

val run_round :
  ?report:Report.t ->
  workers:int ->
  facts:facts ->
  options:Outcore.Outliner.options ->
  Machine.Program.t ->
  Machine.Program.t * Outcore.Outliner.round_stats
(** One three-phase round on [workers] domains ([options.round] names the
    round; [options.scope_name] is ignored — thin symbols are named from
    the decision table).  Newly selected sp-unsafe symbols are added to
    [facts].  When no global site is rewritten the input program is
    returned unchanged (mirroring the serial outliner's early stop), and
    [sequences_outlined = 0] tells the driver to stop iterating. *)
