let resolve_workers w = if w <= 0 then Domain.recommended_domain_count () else w

let map_init ~workers ~init ~f arr =
  let n = Array.length arr in
  let workers = min (max workers 1) n in
  if workers <= 1 then begin
    let st = init () in
    Array.map (f st) arr
  end
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let st = init () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f st arr.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* Each cell is written by exactly one domain and the joins establish
       the happens-before edge, so the reads below see every write.  Raise
       for the smallest failing index: deterministic whatever the
       scheduling was. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ~workers f arr = map_init ~workers ~init:(fun () -> ()) ~f:(fun () x -> f x) arr
