(** Module summaries and the serial global decision round of thin-WPO.

    Phase 1 workers compress each shard's outline candidates into a
    summary: one entry per pattern, carrying a stable 64-bit content hash,
    the pattern's length and strategy, its legality bits, and the shard's
    pruned occurrence counts by call kind.  {e No instruction bodies cross
    the summary boundary} — the decision round joins entries by hash and
    runs the cost model on summed counts alone; the bodies stay in the
    worker that discovered them until phase 3 rewrites its own shard.

    The hash is FNV-1a over a canonical rendering of the pattern
    (strategy, LR-frame bit, symbol count, then each instruction's
    printed form), so it is independent of interner symbol numbering,
    worker count, and scheduling order — two shards that discovered the
    same pattern always produce the same hash, which is what makes the
    optimistic cross-shard join sound. *)

type pattern = {
  ps_hash : int64;
  ps_length : int;                      (** symbols, including any ret *)
  ps_strategy : Outcore.Candidate.strategy;
  ps_needs_lr_frame : bool;
  ps_touches_sp : bool;
      (** legality bit: the outlined body would not be an SP-neutral
          callee; selected patterns with it set enter the global
          sp-unsafe facts table for later rounds *)
  ps_n_free : int;                      (** pruned [Call_free] sites here *)
  ps_n_save : int;                      (** pruned [Call_save_lr] sites *)
}

type t = {
  sm_module : string;
  sm_patterns : pattern list;  (** deterministic per-shard order *)
}

val hash_candidate : Outcore.Candidate.t -> int64
(** Stable content hash (see above).  Subject to {!fault_truncate_hash}. *)

val hasher : unit -> Outcore.Candidate.t -> int64
(** {!hash_candidate} with a private instruction-rendering cache — the
    window-probing phase hashes heavily overlapping candidates, so each
    distinct instruction is rendered once per shard instead of once per
    window.  The cache is mutable: keep each hasher on one domain. *)

val of_candidates : modul:string -> (int64 * Outcore.Candidate.t) list -> t
(** Group a shard's (hash, candidate) pairs into summary entries.  Distinct
    candidates never share a hash in honest runs; if they do (fault
    injection), the first pair's metadata wins and the counts sum — the
    silent merge whose downstream corruption the fuzz differentials must
    catch. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Textual round-trip: [of_string (to_string s) = Ok s]. *)

type decision = {
  dc_hash : int64;
  dc_name : string;     (** stable outlined symbol: rank under this round *)
  dc_host : string;     (** lexicographically least contributing module;
                            its shard emits the one shared body *)
  dc_benefit : int;     (** cost-model benefit of the summed global counts *)
  dc_rank : int;        (** 0-based position in the global priority order *)
  dc_sp_unsafe : bool;  (** record the new symbol in the sp-unsafe facts *)
}

val decide : round:int -> t list -> decision list
(** The serial global decision round: join summaries by hash, sum the
    occurrence counts, keep patterns with at least two global sites whose
    {!Outcore.Cost_model.benefit_of_counts} is positive, and rank them by
    (benefit descending, hash ascending) — a total order on honest inputs,
    so names and priorities are byte-identical whatever the worker count
    or summary arrival order. *)

val fault_truncate_hash : bool ref
(** Fault injection for [sizeopt fuzz --self-test]: truncate every content
    hash to its low 6 bits, manufacturing collisions so unrelated patterns
    merge in the decision table and shards rewrite call sites against the
    wrong hosted body.  The thin-WPO lattice differentials must catch the
    corruption. *)
