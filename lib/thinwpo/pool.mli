(** A fixed-size domain pool with deterministic result placement.

    Thin-WPO's parallel phases all have the same shape: an array of
    independent shard jobs, executed by [workers] domains that pull the
    next unclaimed index from a shared atomic counter.  Results land in an
    index-addressed array, so the output is identical whatever order the
    domains finish in, and exceptions are re-raised for the {e smallest}
    failing index — again independent of scheduling — after every domain
    has been joined. *)

val resolve_workers : int -> int
(** [<= 0] means auto-detect: {!Domain.recommended_domain_count}. *)

val map : workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~workers f arr] with [min workers (Array.length arr)] domains
    ([workers <= 1] runs inline on the calling domain, spawning nothing). *)

val map_init :
  workers:int -> init:(unit -> 's) -> f:('s -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, but each worker first creates its own private state with
    [init] and threads it through every job it claims — the home for
    domain-local mutable structures (instruction interners, arena-pooled
    suffix trees) that must never be shared across domains. *)
