open Outcore

type pattern = {
  ps_hash : int64;
  ps_length : int;
  ps_strategy : Candidate.strategy;
  ps_needs_lr_frame : bool;
  ps_touches_sp : bool;
  ps_n_free : int;
  ps_n_save : int;
}

type t = {
  sm_module : string;
  sm_patterns : pattern list;
}

let fault_truncate_hash = ref false

(* --- stable content hashing -------------------------------------------- *)

(* One FNV-1a definition (lib/content) serves the whole repo: the
   linker's compression model, the bp-compress layout objective and the
   merge layer hash the same way summaries do, so "same content" means
   the same thing everywhere. *)
let fnv_offset = Content.fnv_offset
let fnv_byte = Content.fnv_byte
let fnv_string = Content.fnv_string

let strategy_tag = function
  | Candidate.Ends_with_ret -> 1
  | Candidate.Thunk -> 2
  | Candidate.Plain_call -> 3

let hash_with render (c : Candidate.t) =
  let h = fnv_offset in
  let h = fnv_byte h (strategy_tag c.strategy) in
  let h = fnv_byte h (if c.needs_lr_frame then 1 else 0) in
  let h = fnv_byte h c.length in
  let h = fnv_byte h (c.length lsr 8) in
  let h =
    List.fold_left (fun h i -> fnv_byte (fnv_string h (render i)) 0) h c.insns
  in
  if !fault_truncate_hash then Int64.logand h 0x3fL else h

let hash_candidate (c : Candidate.t) = hash_with Machine.Insn.to_string c

let hasher () =
  let cache : (Machine.Insn.t, string) Hashtbl.t = Hashtbl.create 512 in
  let render i =
    match Hashtbl.find_opt cache i with
    | Some s -> s
    | None ->
      let s = Machine.Insn.to_string i in
      Hashtbl.replace cache i s;
      s
  in
  fun c -> hash_with render c

(* --- shard-side grouping ------------------------------------------------ *)

let count_sites (c : Candidate.t) =
  List.fold_left
    (fun (free, save) (s : Candidate.site) ->
      match s.call with
      | Candidate.Call_free -> (free + 1, save)
      | Candidate.Call_save_lr -> (free, save + 1))
    (0, 0) c.sites

let of_candidates ~modul pairs =
  let tbl : (int64, pattern ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (h, (c : Candidate.t)) ->
      let n_free, n_save = count_sites c in
      match Hashtbl.find_opt tbl h with
      | Some p ->
        p :=
          {
            !p with
            ps_n_free = !p.ps_n_free + n_free;
            ps_n_save = !p.ps_n_save + n_save;
          }
      | None ->
        let p =
          ref
            {
              ps_hash = h;
              ps_length = c.length;
              ps_strategy = c.strategy;
              ps_needs_lr_frame = c.needs_lr_frame;
              ps_touches_sp = c.touches_sp;
              ps_n_free = n_free;
              ps_n_save = n_save;
            }
        in
        Hashtbl.replace tbl h p;
        order := p :: !order)
    pairs;
  { sm_module = modul; sm_patterns = List.rev_map (fun p -> !p) !order }

(* --- serialization ------------------------------------------------------ *)

let strategy_name = function
  | Candidate.Ends_with_ret -> "ret"
  | Candidate.Thunk -> "thunk"
  | Candidate.Plain_call -> "call"

let strategy_of_name = function
  | "ret" -> Some Candidate.Ends_with_ret
  | "thunk" -> Some Candidate.Thunk
  | "call" -> Some Candidate.Plain_call
  | _ -> None

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "thin-summary module=%s patterns=%d\n" s.sm_module
       (List.length s.sm_patterns));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%016Lx len=%d strat=%s lr=%d sp=%d free=%d save=%d\n"
           p.ps_hash p.ps_length
           (strategy_name p.ps_strategy)
           (if p.ps_needs_lr_frame then 1 else 0)
           (if p.ps_touches_sp then 1 else 0)
           p.ps_n_free p.ps_n_save))
    s.sm_patterns;
  Buffer.contents buf

let of_string text =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char '\n' (String.trim text) with
  | [] -> fail "empty summary"
  | header :: lines -> (
    match
      Scanf.sscanf header "thin-summary module=%s@ patterns=%d" (fun m n ->
          (m, n))
    with
    | exception _ -> fail "malformed summary header: %S" header
    | modul, n ->
      if List.length lines <> n then
        fail "summary for %s declares %d patterns but carries %d" modul n
          (List.length lines)
      else begin
        let parse line =
          match
            Scanf.sscanf line "%Lx len=%d strat=%s@ lr=%d sp=%d free=%d save=%d"
              (fun h len strat lr sp free save ->
                (h, len, strat, lr, sp, free, save))
          with
          | exception _ -> Error (Printf.sprintf "malformed pattern: %S" line)
          | h, len, strat, lr, sp, free, save -> (
            match strategy_of_name strat with
            | None -> Error (Printf.sprintf "unknown strategy: %S" strat)
            | Some strategy ->
              Ok
                {
                  ps_hash = h;
                  ps_length = len;
                  ps_strategy = strategy;
                  ps_needs_lr_frame = lr <> 0;
                  ps_touches_sp = sp <> 0;
                  ps_n_free = free;
                  ps_n_save = save;
                })
        in
        let rec go acc = function
          | [] -> Ok { sm_module = modul; sm_patterns = List.rev acc }
          | line :: rest -> (
            match parse line with
            | Error e -> Error e
            | Ok p -> go (p :: acc) rest)
        in
        go [] lines
      end)

(* --- the global decision round ------------------------------------------ *)

type decision = {
  dc_hash : int64;
  dc_name : string;
  dc_host : string;
  dc_benefit : int;
  dc_rank : int;
  dc_sp_unsafe : bool;
}

type merged = {
  mutable mg_meta : pattern;  (** first contributor's entry, in shard order *)
  mutable mg_host : string;   (** least contributing module name *)
  mutable mg_free : int;
  mutable mg_save : int;
}

let decide ~round summaries =
  let tbl : (int64, merged) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt tbl p.ps_hash with
          | Some m ->
            m.mg_free <- m.mg_free + p.ps_n_free;
            m.mg_save <- m.mg_save + p.ps_n_save;
            if s.sm_module < m.mg_host then m.mg_host <- s.sm_module
          | None ->
            let m =
              {
                mg_meta = p;
                mg_host = s.sm_module;
                mg_free = p.ps_n_free;
                mg_save = p.ps_n_save;
              }
            in
            Hashtbl.replace tbl p.ps_hash m;
            order := m :: !order)
        s.sm_patterns)
    summaries;
  let profitable =
    List.filter_map
      (fun m ->
        let p = m.mg_meta in
        if m.mg_free + m.mg_save < 2 then None
        else
          let benefit =
            Cost_model.benefit_of_counts p.ps_strategy
              ~needs_lr_frame:p.ps_needs_lr_frame ~pattern_len:p.ps_length
              ~n_free:m.mg_free ~n_save:m.mg_save
          in
          if benefit < 1 then None else Some (benefit, m))
      (List.rev !order)
  in
  let ranked =
    List.sort
      (fun (b1, m1) (b2, m2) ->
        match Int.compare b2 b1 with
        | 0 -> Int64.unsigned_compare m1.mg_meta.ps_hash m2.mg_meta.ps_hash
        | c -> c)
      profitable
  in
  List.mapi
    (fun rank (benefit, m) ->
      let p = m.mg_meta in
      {
        dc_hash = p.ps_hash;
        dc_name = Printf.sprintf "OUTLINED_THIN_%d_%d" round rank;
        dc_host = m.mg_host;
        dc_benefit = benefit;
        dc_rank = rank;
        dc_sp_unsafe = p.ps_touches_sp || p.ps_needs_lr_frame;
      })
    ranked
