open Machine
open Outcore

type facts = (string, unit) Hashtbl.t

let create_facts () : facts = Hashtbl.create 16
let fact_sp_unsafe (facts : facts) name = Hashtbl.mem facts name

module Report = struct
  type shard = {
    rs_module : string;
    rs_funcs : int;
    rs_discover : float;
    rs_rewrite : float;
  }

  type round = {
    rr_round : int;
    rr_shards : shard list;
    rr_decide : float;
    rr_selected : int;
  }

  type t = { mutable rev_rounds : round list }

  let create () = { rev_rounds = [] }
  let rounds t = List.rev t.rev_rounds
  let add t r = t.rev_rounds <- r :: t.rev_rounds

  let to_json t =
    let shard s =
      Printf.sprintf
        "{\"module\":\"%s\",\"funcs\":%d,\"discover_s\":%.6f,\"rewrite_s\":%.6f}"
        s.rs_module s.rs_funcs s.rs_discover s.rs_rewrite
    in
    let round r =
      Printf.sprintf
        "{\"round\":%d,\"decide_s\":%.6f,\"selected\":%d,\"shards\":[%s]}"
        r.rr_round r.rr_decide r.rr_selected
        (String.concat "," (List.map shard r.rr_shards))
    in
    "[" ^ String.concat "," (List.map round (rounds t)) ^ "]"
end

(* Shards in first-appearance order of [from_module], functions in program
   order within each shard — a pure function of the program, so every
   worker count sees the same shard array. *)
let shard_by_module (p : Program.t) =
  let tbl : (string, Mfunc.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (f : Mfunc.t) ->
      match Hashtbl.find_opt tbl f.from_module with
      | Some cell -> cell := f :: !cell
      | None ->
        let cell = ref [ f ] in
        Hashtbl.replace tbl f.from_module cell;
        order := (f.from_module, cell) :: !order)
    p.funcs;
  List.rev !order
  |> List.map (fun (m, cell) -> (m, List.rev !cell))
  |> Array.of_list

let sum_stats =
  Array.fold_left
    (fun acc (s : Outliner.round_stats) ->
      {
        Outliner.sequences_outlined =
          acc.Outliner.sequences_outlined + s.Outliner.sequences_outlined;
        functions_created = acc.functions_created + s.functions_created;
        outlined_bytes = acc.outlined_bytes + s.outlined_bytes;
        bytes_saved = acc.bytes_saved + s.bytes_saved;
      })
    {
      Outliner.sequences_outlined = 0;
      functions_created = 0;
      outlined_bytes = 0;
      bytes_saved = 0;
    }

(* Window fingerprinting is exhaustive up to this pattern length (symbols,
   counting a trailing [ret]); longer patterns rely on per-shard suffix
   trees plus the post-ranking probe. *)
let window_scan_max = 32

let run_round ?report ~workers ~facts ~(options : Outliner.options)
    (p : Program.t) =
  let shards = shard_by_module p in
  let extern_sp_unsafe name = fact_sp_unsafe facts name in
  (* Phase 1: parallel discovery.  Each worker owns one arena pool, reused
     across every shard it claims; candidates stay in the per-shard result
     slot and only the raw-count summary crosses into the decision round.

     Discovery is window-complete up to [window_scan_max]: every legal
     instruction window of those lengths is fingerprinted, so a pattern a
     shard contains only {e once} still reaches the decision round and can
     join counts with the other shards (the class a per-shard suffix tree
     is structurally blind to).  Beyond the cap the suffix tree takes
     over, so long patterns are still caught whenever they repeat within
     at least one shard — the one remaining optimistic loss. *)
  let win_lengths =
    if options.min_length > window_scan_max then []
    else
      List.init
        (window_scan_max - options.min_length + 1)
        (fun i -> options.min_length + i)
  in
  let tree_min = max options.min_length (window_scan_max + 1) in
  let discovered =
    Pool.map_init ~workers
      ~init:(fun () -> (Sufftree.Arena_tree.create_pool (), Summary.hasher ()))
      ~f:(fun (pool, hash) (modul, funcs) ->
        let t0 = Unix.gettimeofday () in
        let shard_p = Program.replace_funcs p funcs in
        let long_cands =
          Outliner.enumerate ~min_length:tree_min ~options ~all:true
            ~extern_sp_unsafe ~pool shard_p
        in
        let win_cands =
          Outliner.probe_windows ~options ~extern_sp_unsafe
            ~lengths:win_lengths shard_p
        in
        let pairs = List.map (fun c -> (hash c, c)) (win_cands @ long_cands) in
        let raw = Summary.of_candidates ~modul pairs in
        (shard_p, pairs, raw, Unix.gettimeofday () -. t0))
      shards
  in
  (* Phase 2 is the summary exchange, serial decision work interleaved
     with one cheap parallel step.  Raw per-shard counts double-count
     nested repeats (a length-10 repeat carries length-9, length-8, ...
     candidates over the same instructions), exactly like the site lists
     the serial selector scores before its greedy occupancy pass — so the
     first decision over summed raw counts reproduces the serial ranking,
     and a second, ranked local site-assignment pass makes every reported
     count disjoint.  The final decision over those disjoint counts is
     then exactly realizable: phase 3 never loses a selected site to
     overlap (in honest runs — fault-injected hash collisions can, which
     the occupancy guard in [apply_assignments] tolerates and the fuzz
     differentials catch). *)
  let t0 = Unix.gettimeofday () in
  let provisional =
    Summary.decide ~round:options.round
      (Array.to_list (Array.map (fun (_, _, raw, _) -> raw) discovered))
  in
  let prov_rank : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (d : Summary.decision) ->
      if not (Hashtbl.mem prov_rank d.dc_hash) then
        Hashtbl.replace prov_rank d.dc_hash d.dc_rank)
    provisional;
  (* The advertised pattern lengths, for window probing: a shard holding a
     provisionally ranked pattern only {e once} has no local repeat for
     the suffix tree to find, but it can hash its own windows of the
     advertised lengths and match foreign discoveries by content. *)
  let prov_len : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (_, _, (raw : Summary.t), _) ->
      List.iter
        (fun (pt : Summary.pattern) ->
          if
            Hashtbl.mem prov_rank pt.ps_hash
            && not (Hashtbl.mem prov_len pt.ps_hash)
          then Hashtbl.replace prov_len pt.ps_hash pt.ps_length)
        raw.Summary.sm_patterns)
    discovered;
  let prov_s = Unix.gettimeofday () -. t0 in
  (* Ranked local site assignment: each shard walks the provisional table
     in global rank order and greedily claims disjoint sites; candidates
     the provisional round rejected claim nothing (the serial selector's
     profitability filter).  [prov_rank] is read-only here, so sharing it
     across domains is safe. *)
  let refined =
    Pool.map ~workers
      (fun i ->
        let modul, _ = shards.(i) in
        let shard_p, pairs, _, _ = discovered.(i) in
        let t0 = Unix.gettimeofday () in
        let local : (int64, unit) Hashtbl.t =
          Hashtbl.create (List.length pairs)
        in
        List.iter (fun (h, _) -> Hashtbl.replace local h ()) pairs;
        let missing_lengths =
          (* Windows up to the scan cap were fingerprinted exhaustively in
             phase 1, so a locally missing hash of such a length really is
             absent — only longer patterns are worth probing for. *)
          Hashtbl.fold
            (fun h len acc ->
              if len <= window_scan_max || Hashtbl.mem local h then acc
              else len :: acc)
            prov_len []
        in
        let probed =
          if missing_lengths = [] then []
          else begin
            let hash = Summary.hasher () in
            Outliner.probe_windows ~options ~extern_sp_unsafe
              ~lengths:missing_lengths shard_p
            |> List.filter_map (fun c ->
                   let h = hash c in
                   if Hashtbl.mem prov_rank h && not (Hashtbl.mem local h)
                   then Some (h, c)
                   else None)
          end
        in
        let ranked =
          List.filter_map
            (fun (h, c) ->
              Option.map (fun r -> (r, h, c)) (Hashtbl.find_opt prov_rank h))
            (pairs @ probed)
          |> List.stable_sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
        in
        let site_free, site_take = Outliner.make_occupancy shard_p in
        let survivors =
          List.filter_map
            (fun (_, h, c) ->
              let sites = List.filter site_free c.Candidate.sites in
              if sites = [] then None
              else begin
                List.iter site_take sites;
                Some (h, { c with Candidate.sites })
              end)
            ranked
        in
        let retained : (int64, Candidate.t) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (h, c) ->
            match Hashtbl.find_opt retained h with
            | None -> Hashtbl.replace retained h c
            | Some c0 ->
              (* Several windows of one content (or, under fault-injected
                 hash truncation, unrelated patterns): occupancy already
                 made the site lists disjoint, so concatenate them under
                 the first candidate's metadata. *)
              Hashtbl.replace retained h
                {
                  c0 with
                  Candidate.sites = c0.Candidate.sites @ c.Candidate.sites;
                })
          survivors;
        ( Summary.of_candidates ~modul survivors,
          retained,
          Unix.gettimeofday () -. t0 ))
      (Array.init (Array.length shards) Fun.id)
  in
  (* The final, exact decision over disjoint counts. *)
  let t0 = Unix.gettimeofday () in
  let decisions =
    Summary.decide ~round:options.round
      (Array.to_list (Array.map (fun (s, _, _) -> s) refined))
  in
  List.iter
    (fun (d : Summary.decision) ->
      if d.dc_sp_unsafe then Hashtbl.replace facts d.dc_name ())
    decisions;
  let decide_s = prov_s +. (Unix.gettimeofday () -. t0) in
  (* Phase 3: parallel rewrite against the decision table. *)
  let jobs =
    Array.mapi (fun i (modul, funcs) ->
        let _, retained, _ = refined.(i) in
        (modul, funcs, retained))
      shards
  in
  let rewritten =
    if decisions = [] then
      Array.map
        (fun (_, funcs, _) ->
          ( funcs,
            ([] : (int * Mfunc.t) list),
            {
              Outliner.sequences_outlined = 0;
              functions_created = 0;
              outlined_bytes = 0;
              bytes_saved = 0;
            },
            0. ))
        jobs
    else
      Pool.map ~workers
        (fun (modul, funcs, retained) ->
          let t0 = Unix.gettimeofday () in
          let asgs =
            List.filter_map
              (fun (d : Summary.decision) ->
                match Hashtbl.find_opt retained d.dc_hash with
                | None -> None
                | Some c ->
                  Some
                    {
                      Outliner.asg_cand = c;
                      asg_name = d.dc_name;
                      asg_rank = d.dc_rank;
                      asg_host =
                        (if d.dc_host = modul then Some modul else None);
                    })
              decisions
          in
          if asgs = [] then
            ( funcs,
              [],
              {
                Outliner.sequences_outlined = 0;
                functions_created = 0;
                outlined_bytes = 0;
                bytes_saved = 0;
              },
              Unix.gettimeofday () -. t0 )
          else begin
            let shard_p = Program.replace_funcs p funcs in
            let shard_p', hosted, stats =
              Outliner.apply_assignments shard_p asgs
            in
            (shard_p'.Program.funcs, hosted, stats, Unix.gettimeofday () -. t0)
          end)
        jobs
  in
  (match report with
  | None -> ()
  | Some rep ->
    let shard_reports =
      Array.to_list
        (Array.mapi
           (fun i (modul, funcs) ->
             let _, _, _, enum_s = discovered.(i) in
             let _, _, refine_s = refined.(i) in
             let _, _, _, rewrite_s = rewritten.(i) in
             {
               Report.rs_module = modul;
               rs_funcs = List.length funcs;
               rs_discover = enum_s +. refine_s;
               rs_rewrite = rewrite_s;
             })
           shards)
    in
    Report.add rep
      {
        Report.rr_round = options.round;
        rr_shards = shard_reports;
        rr_decide = decide_s;
        rr_selected = List.length decisions;
      });
  let stats = sum_stats (Array.map (fun (_, _, s, _) -> s) rewritten) in
  if stats.Outliner.sequences_outlined = 0 then (p, stats)
  else begin
    let funcs' =
      List.concat_map
        (fun (funcs, _, _, _) -> funcs)
        (Array.to_list rewritten)
    in
    let hosted =
      List.concat_map (fun (_, hosted, _, _) -> hosted)
        (Array.to_list rewritten)
      |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)
      |> List.map snd
    in
    (Program.replace_funcs p (funcs' @ hosted), stats)
  end
