let current_version = 2

type t = {
  workload : string;
  entries : string list;
  first_touch : string list;
  counts : (string * int) list;
  edges : ((string * string) * int) list;
  blocks : ((string * string) * int) list;
}

let compare_edge ((c1, e1), _) ((c2, e2), _) =
  match String.compare c1 c2 with 0 -> String.compare e1 e2 | n -> n

let make ?(blocks = []) ~workload ~entries ~first_touch ~counts ~edges () =
  {
    workload;
    entries;
    first_touch;
    counts = List.sort (fun (a, _) (b, _) -> String.compare a b) counts;
    edges = List.sort compare_edge edges;
    blocks = List.sort compare_edge blocks;
  }

let empty ~workload =
  make ~workload ~entries:[] ~first_touch:[] ~counts:[] ~edges:[] ()

let count p f = Option.value ~default:0 (List.assoc_opt f p.counts)
let edge_weight p ~caller ~callee =
  Option.value ~default:0 (List.assoc_opt (caller, callee) p.edges)

let block_count p ~func ~label =
  Option.value ~default:0 (List.assoc_opt (func, label) p.blocks)

let has_block_counts p = p.blocks <> []

let executed p f = List.mem f p.first_touch

let total_edge_weight p = List.fold_left (fun a (_, w) -> a + w) 0 p.edges

let equal a b =
  a.workload = b.workload && a.entries = b.entries
  && a.first_touch = b.first_touch && a.counts = b.counts && a.edges = b.edges
  && a.blocks = b.blocks

(* --- serialization --------------------------------------------------------

   A line-oriented versioned text format so profiles can be recorded once
   (`sizeopt profile`) and replayed (`sizeopt build --profile-in`):

     pgo-profile v2
     workload <name>
     entry <symbol>             # traced entry points, in run order
     touch <func>               # first-touch order, oldest first
     count <func> <n>           # function entry counts, sorted by name
     edge <caller> <callee> <n> # dynamic call edges, sorted
     block <func> <label> <n>   # basic-block execution counts, sorted

   v1 profiles (no block lines) still parse; they simply carry no
   block-granularity data, so consumers fall back to function-level
   heuristics.  Serialization is canonical (sorted counts/edges/blocks),
   so equal profiles render byte-identically — the determinism property
   the tests pin. *)

let to_string p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "pgo-profile v%d\n" current_version);
  Buffer.add_string buf (Printf.sprintf "workload %s\n" p.workload);
  List.iter (fun e -> Buffer.add_string buf (Printf.sprintf "entry %s\n" e)) p.entries;
  List.iter (fun f -> Buffer.add_string buf (Printf.sprintf "touch %s\n" f)) p.first_touch;
  List.iter
    (fun (f, n) -> Buffer.add_string buf (Printf.sprintf "count %s %d\n" f n))
    p.counts;
  List.iter
    (fun ((c, e), n) ->
      Buffer.add_string buf (Printf.sprintf "edge %s %s %d\n" c e n))
    p.edges;
  List.iter
    (fun ((f, l), n) ->
      Buffer.add_string buf (Printf.sprintf "block %s %s %d\n" f l n))
    p.blocks;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] -> Error "empty profile"
  | header :: rest ->
    let version =
      if header = "pgo-profile v1" then Some 1
      else if header = "pgo-profile v2" then Some 2
      else None
    in
    (match version with
    | None ->
      Error
        (Printf.sprintf
           "unsupported profile header %S (expected \"pgo-profile v%d\")" header
           current_version)
    | Some version ->
      let workload = ref "" in
      let entries = ref [] and touches = ref [] in
      let counts = ref [] and edges = ref [] and blocks = ref [] in
      let err = ref None in
      List.iteri
        (fun i line ->
          if !err = None then
            let fail msg =
              err := Some (Printf.sprintf "line %d: %s: %S" (i + 2) msg line)
            in
            match String.split_on_char ' ' line with
            | "workload" :: rest when rest <> [] ->
              workload := String.concat " " rest
            | [ "entry"; e ] -> entries := e :: !entries
            | [ "touch"; f ] -> touches := f :: !touches
            | [ "count"; f; n ] -> (
              match int_of_string_opt n with
              | Some n -> counts := (f, n) :: !counts
              | None -> fail "bad count")
            | [ "edge"; c; e; n ] -> (
              match int_of_string_opt n with
              | Some n -> edges := ((c, e), n) :: !edges
              | None -> fail "bad edge weight")
            | [ "block"; f; l; n ] when version >= 2 -> (
              match int_of_string_opt n with
              | Some n -> blocks := ((f, l), n) :: !blocks
              | None -> fail "bad block count")
            | _ -> fail "unknown directive")
        rest;
      match !err with
      | Some e -> Error e
      | None ->
        Ok
          (make ~workload:!workload ~entries:(List.rev !entries)
             ~first_touch:(List.rev !touches) ~counts:!counts ~edges:!edges
             ~blocks:!blocks ()))

let save path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

let load path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  with Sys_error e -> Error e
