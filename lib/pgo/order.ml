open Machine

type strategy = [ `Order_file | `C3 | `Balanced | `Bp_compress of float ]

let strategy_name = function
  | `Order_file -> "order-file"
  | `C3 -> "c3"
  | `Balanced -> "balanced"
  | `Bp_compress w -> Printf.sprintf "bp-compress(w=%g)" w

let name_of (f : Mfunc.t) = f.Mfunc.name

(* Hot = first-touched during the profiled runs (a function can only start
   executing at its entry, so touched and executed coincide).  Cold
   functions go to the image tail in program order — the hot/cold split
   every strategy shares. *)
let split_hot_cold (profile : Profile.t) (p : Program.t) =
  let hot_set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace hot_set f ()) profile.Profile.first_touch;
  List.partition (fun (f : Mfunc.t) -> Hashtbl.mem hot_set f.name) p.funcs

let touch_rank (profile : Profile.t) =
  let rank = Hashtbl.create 256 in
  List.iteri
    (fun i f -> if not (Hashtbl.mem rank f) then Hashtbl.replace rank f i)
    profile.Profile.first_touch;
  rank

(* --- startup order file ---------------------------------------------------- *)

let order_file (profile : Profile.t) (p : Program.t) =
  let by_name = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace by_name (name_of f) ()) p.funcs;
  let placed = Hashtbl.create 256 in
  let startup =
    List.filter
      (fun f ->
        if Hashtbl.mem by_name f && not (Hashtbl.mem placed f) then begin
          Hashtbl.replace placed f ();
          true
        end
        else false)
      profile.Profile.first_touch
  in
  let rest =
    List.filter_map
      (fun f -> if Hashtbl.mem placed (name_of f) then None else Some (name_of f))
      p.funcs
  in
  startup @ rest

(* --- C3-style call-chain clustering ---------------------------------------- *)

(* Coalesce the dynamic call graph into page-bounded chains: process edges
   by decreasing weight, appending the callee's cluster after the caller's
   when both fit in one cluster AND the edge carries at least half of the
   callee's incoming dynamic weight; then emit clusters in startup order
   (the minimum first-touch rank of any member).  The dominance condition
   is what saves shared outlined helpers from the caller-affinity fate:
   a helper every span calls has no dominant caller, stays unmerged, and
   is placed densely by first-touch rank instead of being dragged into
   one arbitrary caller's chain far from the others. *)
let c3 ?(max_cluster_bytes = 16 * 1024) (profile : Profile.t) (p : Program.t) =
  let hot, cold = split_hot_cold profile p in
  let hot = Array.of_list hot in
  let n = Array.length hot in
  let idx_of = Hashtbl.create n in
  Array.iteri (fun i f -> Hashtbl.replace idx_of (name_of f) i) hot;
  let cluster_of = Array.init n (fun i -> i) in
  let members = Array.init n (fun i -> [ i ]) in
  let csize = Array.init n (fun i -> Mfunc.size_bytes hot.(i)) in
  let edges =
    List.filter_map
      (fun (((u, v) as key), w) ->
        match (Hashtbl.find_opt idx_of u, Hashtbl.find_opt idx_of v) with
        | Some ui, Some vi when ui <> vi -> Some (key, w, ui, vi)
        | _ -> None)
      profile.Profile.edges
    |> List.sort (fun ((u1, v1), w1, _, _) ((u2, v2), w2, _, _) ->
           match Int.compare w2 w1 with
           | 0 -> (
             match String.compare u1 u2 with
             | 0 -> String.compare v1 v2
             | c -> c)
           | c -> c)
  in
  let in_weight = Hashtbl.create n in
  List.iter
    (fun ((_, v), w) ->
      Hashtbl.replace in_weight v
        (w + Option.value ~default:0 (Hashtbl.find_opt in_weight v)))
    profile.Profile.edges;
  List.iter
    (fun ((_, v), w, ui, vi) ->
      let cu = cluster_of.(ui) and cv = cluster_of.(vi) in
      let total_in = Option.value ~default:0 (Hashtbl.find_opt in_weight v) in
      if
        cu <> cv
        && 2 * w >= total_in
        && csize.(cu) + csize.(cv) <= max_cluster_bytes
      then begin
        members.(cu) <- members.(cu) @ members.(cv);
        List.iter (fun m -> cluster_of.(m) <- cu) members.(cv);
        csize.(cu) <- csize.(cu) + csize.(cv);
        members.(cv) <- []
      end)
    edges;
  let rank = touch_rank profile in
  let rank_of i =
    Option.value ~default:max_int (Hashtbl.find_opt rank (name_of hot.(i)))
  in
  let clusters =
    Array.to_list members
    |> List.filter (fun ms -> ms <> [])
    |> List.map (fun ms -> (List.fold_left (fun a m -> min a (rank_of m)) max_int ms, ms))
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.concat_map (fun (_, ms) -> List.map (fun i -> name_of hot.(i)) ms) clusters
  @ List.map name_of cold

(* --- recursive-bisection balanced partitioning ----------------------------- *)

(* The BP algorithm over utility sets: each hot function is a "document"
   whose utilities are its dynamic call-graph neighbours; recursively
   bisect the current order, locally swapping equal-sized batches between
   the halves to minimize the log-gap cost, so functions sharing utilities
   (e.g. the same callers) converge to the same half — and finally the
   same page.  Recursion stops once a half fits in [leaf_bytes] (default
   4 KiB, a quarter of an iOS page): below a few KiB the fully-associative
   iTLB no longer distinguishes orders, so BP's objective is pure noise
   there, while keeping the initial first-touch order inside each leaf is
   exactly what the icache wants (sequential startup streaming). *)
(* The shared core, parameterized on the compression weight [w] of the
   bp-compress objective.  Each hot function is a document whose weighted
   utilities are its dynamic call-graph neighbours (weight 1-w) plus, when
   w > 0, its content shingles (weight w, FNV k-grams from
   lib/content): the BP paper's extension, where co-locating functions
   that share instruction subsequences puts their redundancy inside the
   compressor's window.  At w = 0 the shingle utilities are not built at
   all and every locality weight is exactly 1.0, so the arithmetic — and
   therefore the order — is bit-identical to the original balanced
   partitioner; the w=0 degeneration test holds this. *)
let balanced_core ?max_depth ?(passes = 10) ?(leaf_bytes = 4096)
    ~content_weight (profile : Profile.t) (p : Program.t) =
  let hot, cold = split_hot_cold profile p in
  let hot_bytes =
    List.fold_left (fun a f -> a + Mfunc.size_bytes f) 0 hot
  in
  let max_depth =
    match max_depth with
    | Some d -> d
    | None ->
      let rec depth_for bytes acc =
        if bytes <= leaf_bytes then acc else depth_for (bytes / 2) (acc + 1)
      in
      depth_for hot_bytes 0
  in
  let rank = touch_rank profile in
  let hot =
    List.sort
      (fun a b ->
        Int.compare
          (Option.value ~default:max_int (Hashtbl.find_opt rank (name_of a)))
          (Option.value ~default:max_int (Hashtbl.find_opt rank (name_of b))))
      hot
  in
  let ord = Array.of_list (List.map name_of hot) in
  let n = Array.length ord in
  (* Utility ids: undirected neighbours in the dynamic call graph, plus
     the function itself so isolated functions still carry a signature. *)
  let uid_tbl = Hashtbl.create 256 in
  let next_uid = ref 0 in
  let uid s =
    match Hashtbl.find_opt uid_tbl s with
    | Some i -> i
    | None ->
      let i = !next_uid in
      incr next_uid;
      Hashtbl.replace uid_tbl s i;
      i
  in
  let neighbours = Hashtbl.create 256 in
  let add_n a b =
    let prev = Option.value ~default:[] (Hashtbl.find_opt neighbours a) in
    if not (List.mem b prev) then Hashtbl.replace neighbours a (b :: prev)
  in
  List.iter
    (fun ((u, v), _) ->
      add_n u v;
      add_n v u)
    profile.Profile.edges;
  let locality_weight = 1.0 -. content_weight in
  let shingle_uids =
    if content_weight <= 0.0 then fun _ -> []
    else begin
      let by_name = Hashtbl.create n in
      List.iter (fun f -> Hashtbl.replace by_name (name_of f) f) hot;
      let tbl = Hashtbl.create n in
      Array.iter
        (fun name ->
          match Hashtbl.find_opt by_name name with
          | None -> ()
          | Some f ->
            Hashtbl.replace tbl name
              (List.map
                 (fun h -> uid (Printf.sprintf "#%Lx" h))
                 (Content.shingles f)))
        ord;
      fun name -> Option.value ~default:[] (Hashtbl.find_opt tbl name)
    end
  in
  let utils_of = Hashtbl.create n in
  Array.iter
    (fun f ->
      let ns = Option.value ~default:[] (Hashtbl.find_opt neighbours f) in
      let locality =
        if locality_weight <= 0.0 then []
        else
          List.map
            (fun u -> (u, locality_weight))
            (List.sort_uniq Int.compare (uid f :: List.map uid ns))
      in
      let content =
        List.map (fun u -> (u, content_weight)) (shingle_uids f)
      in
      Hashtbl.replace utils_of f (locality @ content))
    ord;
  let utils f = Option.value ~default:[] (Hashtbl.find_opt utils_of f) in
  let log2 x = log x /. log 2. in
  let bits x half = float_of_int x *. log2 (float_of_int (half + 1) /. (float_of_int x +. 1.)) in
  let rec bisect lo hi depth =
    let len = hi - lo in
    if len > 2 && depth > 0 then begin
      let mid = lo + (len / 2) in
      let n_l = mid - lo and n_r = hi - mid in
      let continue_ = ref true in
      let pass = ref 0 in
      while !continue_ && !pass < passes do
        incr pass;
        let deg_l = Hashtbl.create 64 and deg_r = Hashtbl.create 64 in
        let bump tbl (u, _w) =
          Hashtbl.replace tbl u (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u))
        in
        for i = lo to mid - 1 do
          List.iter (bump deg_l) (utils ord.(i))
        done;
        for i = mid to hi - 1 do
          List.iter (bump deg_r) (utils ord.(i))
        done;
        let deg tbl u = Option.value ~default:0 (Hashtbl.find_opt tbl u) in
        let move_gain ~from_left f =
          List.fold_left
            (fun acc (u, w) ->
              let l = deg deg_l u and r = deg deg_r u in
              let before = bits l n_l +. bits r n_r in
              let after =
                if from_left then bits (l - 1) n_l +. bits (r + 1) n_r
                else bits (l + 1) n_l +. bits (r - 1) n_r
              in
              acc +. (w *. (before -. after)))
            0. (utils f)
        in
        let by_gain idxs from_left =
          List.map (fun i -> (move_gain ~from_left ord.(i), i)) idxs
          |> List.sort (fun (ga, ia) (gb, ib) ->
                 match Float.compare gb ga with
                 | 0 -> String.compare ord.(ia) ord.(ib)
                 | c -> c)
        in
        let left = by_gain (List.init n_l (fun i -> lo + i)) true in
        let right = by_gain (List.init n_r (fun i -> mid + i)) false in
        let rec swap_pairs ls rs swapped =
          match (ls, rs) with
          | (gl, il) :: ls', (gr, ir) :: rs' when gl +. gr > 1e-9 ->
            let tmp = ord.(il) in
            ord.(il) <- ord.(ir);
            ord.(ir) <- tmp;
            swap_pairs ls' rs' true
          | _ -> swapped
        in
        continue_ := swap_pairs left right false
      done;
      bisect lo mid (depth - 1);
      bisect mid hi (depth - 1)
    end
  in
  bisect 0 n max_depth;
  Array.to_list ord @ List.map name_of cold

let balanced ?max_depth ?passes ?leaf_bytes profile p =
  balanced_core ?max_depth ?passes ?leaf_bytes ~content_weight:0.0 profile p

let default_w = 0.5

let bp_compress ?max_depth ?passes ?leaf_bytes ?(w = default_w) profile p =
  let w = Float.max 0.0 (Float.min 1.0 w) in
  balanced_core ?max_depth ?passes ?leaf_bytes ~content_weight:w profile p

let compute (s : strategy) profile p =
  match s with
  | `Order_file -> order_file profile p
  | `C3 -> c3 profile p
  | `Balanced -> balanced profile p
  | `Bp_compress w -> bp_compress ~w profile p
