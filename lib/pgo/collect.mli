(** Trace collection: turn {!Perfsim.Interp} trace events into a
    {!Profile.t}.

    The simulator is deterministic, so the same program + the same
    entries produce a byte-identical serialized profile — profiles can
    be recorded in one build and replayed in another. *)

type t
(** Mutable collector state, accumulating across several runs. *)

val create : unit -> t

val hook : t -> Perfsim.Interp.trace_event -> unit
(** The function to install as {!Perfsim.Interp.config.trace}. *)

val record_entry : t -> string -> unit
(** Note an entry point about to be traced (recorded in the profile's
    [entries] list). *)

val profile : t -> workload:string -> Profile.t

val default_config : Perfsim.Interp.config
(** Cost model off (events are unaffected), unknown externs no-op,
    50M-step budget. *)

val collect :
  ?config:Perfsim.Interp.config ->
  ?args_for:(string -> int list) ->
  workload:string ->
  entries:string list ->
  Machine.Program.t ->
  Profile.t
(** Run every entry under the tracing interpreter and distill one
    profile.  Failed runs (missing entry, trap, step limit) contribute
    the events up to the failure; [args_for] supplies per-entry integer
    arguments. *)
