(** Execution profiles for profile-guided code layout.

    A profile is what one deterministic simulator run (or several, one
    per entry point) distills into: the weighted dynamic call graph,
    per-function entry counts, and the startup first-touch order.  It is
    the record-once / replay-many artifact of the profile→layout loop:
    [sizeopt profile] writes it, [sizeopt build --profile-in] and the
    {!Order} algorithms consume it. *)

type t = {
  workload : string;             (** e.g. the app profile name *)
  entries : string list;         (** traced entry points, in run order *)
  first_touch : string list;     (** functions in first-execution order *)
  counts : (string * int) list;  (** function entry counts, sorted by name *)
  edges : ((string * string) * int) list;
      (** dynamic call edges (caller, callee) -> weight, sorted *)
  blocks : ((string * string) * int) list;
      (** basic-block execution counts (func, label) -> count, sorted;
          empty for v1 profiles, which predate block-level events *)
}

val current_version : int

val make :
  ?blocks:((string * string) * int) list ->
  workload:string ->
  entries:string list ->
  first_touch:string list ->
  counts:(string * int) list ->
  edges:((string * string) * int) list ->
  unit ->
  t
(** Canonicalizes: counts, edges and blocks are sorted, so {!to_string}
    is a deterministic function of the profile's contents. *)

val empty : workload:string -> t

val count : t -> string -> int
val edge_weight : t -> caller:string -> callee:string -> int

val block_count : t -> func:string -> label:string -> int
val has_block_counts : t -> bool
(** Whether the profile carries any block-granularity data; when it does
    not, block-level consumers (hot/cold splitting) must fall back to
    static heuristics. *)

val executed : t -> string -> bool
(** A function is "hot" iff it was first-touched; never-executed
    functions are what hot/cold splitting sends to the image tail. *)

val total_edge_weight : t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** The versioned text serialization (header ["pgo-profile v2"]).
    Canonical: structurally equal profiles serialize byte-identically. *)

val of_string : string -> (t, string) result
(** Accepts v1 (no block counts) and v2 headers; rejects unknown
    versions and malformed directives with a line-numbered error. *)

val save : string -> t -> unit
val load : string -> (t, string) result
