(** Execution profiles for profile-guided code layout.

    A profile is what one deterministic simulator run (or several, one
    per entry point) distills into: the weighted dynamic call graph,
    per-function entry counts, and the startup first-touch order.  It is
    the record-once / replay-many artifact of the profile→layout loop:
    [sizeopt profile] writes it, [sizeopt build --profile-in] and the
    {!Order} algorithms consume it. *)

type t = {
  workload : string;             (** e.g. the app profile name *)
  entries : string list;         (** traced entry points, in run order *)
  first_touch : string list;     (** functions in first-execution order *)
  counts : (string * int) list;  (** function entry counts, sorted by name *)
  edges : ((string * string) * int) list;
      (** dynamic call edges (caller, callee) -> weight, sorted *)
}

val current_version : int

val make :
  workload:string ->
  entries:string list ->
  first_touch:string list ->
  counts:(string * int) list ->
  edges:((string * string) * int) list ->
  t
(** Canonicalizes: counts and edges are sorted, so {!to_string} is a
    deterministic function of the profile's contents. *)

val empty : workload:string -> t

val count : t -> string -> int
val edge_weight : t -> caller:string -> callee:string -> int
val executed : t -> string -> bool
(** A function is "hot" iff it was first-touched; never-executed
    functions are what hot/cold splitting sends to the image tail. *)

val total_edge_weight : t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** The versioned text serialization (header ["pgo-profile v1"]).
    Canonical: structurally equal profiles serialize byte-identically. *)

val of_string : string -> (t, string) result
(** Rejects unknown versions and malformed directives with a line-
    numbered error. *)

val save : string -> t -> unit
val load : string -> (t, string) result
