(** Profile-guided function-ordering algorithms.

    Every algorithm maps (profile, program) to a complete permutation of
    the program's function names, suitable for [Linker.link ~order] or
    [Perfsim.Interp.run ~order].  They are pure placement: no code byte
    changes, and the interp differential (same exit value and output
    under every order) is part of the test suite.

    All strategies share the hot/cold split: functions never executed in
    the profile are placed at the image tail in program order, so startup
    and steady-state never page them in. *)

type strategy = [ `Order_file | `C3 | `Balanced | `Bp_compress of float ]
(** [`Bp_compress w] is {!balanced} with the compression term of weight
    [w] (0 = pure locality, 1 = pure compression) mixed into the
    objective; see {!bp_compress}. *)

val strategy_name : strategy -> string

val order_file : Profile.t -> Machine.Program.t -> string list
(** Startup placement: functions in first-touch order, then everything
    else in program order — the "order file" linkers consume. *)

val c3 : ?max_cluster_bytes:int -> Profile.t -> Machine.Program.t -> string list
(** C³-style call-chain clustering (Codestitcher-family): coalesce the
    weighted dynamic call graph into clusters bounded by
    [max_cluster_bytes] (default one 16 KiB page), heaviest edges first,
    and emit clusters by startup order.  Shared outlined helpers land
    inside their hottest caller's chain instead of next to an arbitrary
    static caller. *)

val balanced :
  ?max_depth:int ->
  ?passes:int ->
  ?leaf_bytes:int ->
  Profile.t ->
  Machine.Program.t ->
  string list
(** Recursive-bisection balanced partitioning over utility sets (the
    Hoag et al. mobile-startup algorithm): hot functions are documents,
    their dynamic call-graph neighbours the utilities; recursive local
    search keeps functions with shared utilities in the same half, hence
    on nearby pages.  Unless [max_depth] overrides it, recursion stops
    at [leaf_bytes]-sized leaves (default 4 KiB), which keep their
    first-touch order — below a few KiB the fully-associative iTLB sees
    no difference, while touch order still helps the icache.
    Deterministic: ties break on function name. *)

val default_w : float
(** The default compression weight (0.5) used when [bp-compress] is
    requested without an explicit [w]. *)

val bp_compress :
  ?max_depth:int ->
  ?passes:int ->
  ?leaf_bytes:int ->
  ?w:float ->
  Profile.t ->
  Machine.Program.t ->
  string list
(** {!balanced} with a compression-friendly term in the objective (the
    BP paper's extension): each hot function's utility set additionally
    carries its content shingles ({!Content.shingles}) at weight
    [w], while call-graph-locality utilities carry weight [1-w].
    Co-locating functions that share instruction subsequences puts their
    redundancy inside the compressor's sliding window, shrinking the
    estimated download size at some cost in locality.  [w] is clamped to
    [0..1]; [w = 0] produces exactly the {!balanced} order (the shingle
    utilities are never built and locality weights are exactly 1.0). *)

val compute : strategy -> Profile.t -> Machine.Program.t -> string list
