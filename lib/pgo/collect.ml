type t = {
  mutable entries_rev : string list;
  counts : (string, int) Hashtbl.t;
  edges : (string * string, int) Hashtbl.t;
  blocks : (string * string, int) Hashtbl.t;
  mutable touch_rev : string list;
  touched : (string, unit) Hashtbl.t;
}

let create () =
  {
    entries_rev = [];
    counts = Hashtbl.create 256;
    edges = Hashtbl.create 1024;
    blocks = Hashtbl.create 4096;
    touch_rev = [];
    touched = Hashtbl.create 256;
  }

let hook c (ev : Perfsim.Interp.trace_event) =
  match ev with
  | Perfsim.Interp.Ev_entry f ->
    Hashtbl.replace c.counts f (1 + Option.value ~default:0 (Hashtbl.find_opt c.counts f))
  | Perfsim.Interp.Ev_call { caller; callee; tail = _ } ->
    let key = (caller, callee) in
    Hashtbl.replace c.edges key
      (1 + Option.value ~default:0 (Hashtbl.find_opt c.edges key))
  | Perfsim.Interp.Ev_first_touch f ->
    (* First-touch is per run; across runs keep the earliest global order. *)
    if not (Hashtbl.mem c.touched f) then begin
      Hashtbl.replace c.touched f ();
      c.touch_rev <- f :: c.touch_rev
    end
  | Perfsim.Interp.Ev_block { func; label } ->
    let key = (func, label) in
    Hashtbl.replace c.blocks key
      (1 + Option.value ~default:0 (Hashtbl.find_opt c.blocks key))

let record_entry c e = c.entries_rev <- e :: c.entries_rev

let profile c ~workload =
  Profile.make ~workload
    ~entries:(List.rev c.entries_rev)
    ~first_touch:(List.rev c.touch_rev)
    ~counts:(Hashtbl.fold (fun f n acc -> (f, n) :: acc) c.counts [])
    ~edges:(Hashtbl.fold (fun k n acc -> (k, n) :: acc) c.edges [])
    ~blocks:(Hashtbl.fold (fun k n acc -> (k, n) :: acc) c.blocks [])
    ()

(* Profiling wants events, not timings: the cost model off makes the run
   cheaper without changing a single event.  Unknown externs are no-ops so
   partially-modelled programs still yield a usable (partial) profile. *)
let default_config =
  {
    Perfsim.Interp.default_config with
    model_perf = false;
    unknown_extern = `Noop;
    max_steps = 50_000_000;
  }

let collect ?(config = default_config) ?(args_for = fun _ -> []) ~workload
    ~entries program =
  let c = create () in
  List.iter
    (fun entry ->
      record_entry c entry;
      let cfg = { config with Perfsim.Interp.trace = Some (hook c) } in
      (* Errors (missing entry, trap, step limit) keep the events seen so
         far: a crashing span still contributes its prefix. *)
      ignore (Perfsim.Interp.run ~config:cfg ~args:(args_for entry) ~entry program))
    entries;
  profile c ~workload
