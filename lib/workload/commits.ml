type commit = {
  c_index : int;
  c_week : int;
  c_dirty : string list;
  c_sources : (string * string) list;
}

(* A small valid Swiftlet function, unique per (commit, module) so it can
   never collide with generated code or another edit.  The body mixes the
   argument through shifts and masks like the appgen helpers do, so the
   outliner sees realistic (and occasionally repeated) tails. *)
let edit_snippet st ~index ~mname =
  let c1 = 1 + Random.State.int st 4093 in
  let sh = 3 + Random.State.int st 13 in
  let c2 = 2654435761 + Random.State.int st 97 in
  Printf.sprintf
    "\nfunc commit%d_%s(v: Int) -> Int {\n\
    \  var h = v + %d\n\
    \  h = (h ^ (h >> %d)) * %d\n\
    \  h = h ^ (h >> %d)\n\
    \  return h & 1073741823\n\
     }\n"
    index mname c1 sh c2 (sh + 2)

let stream ?(seed = 11) ?(commits_per_week = 6) ?(retry_every = 5) ~profile
    ~weeks () =
  let st = Random.State.make [| seed; 0x5e57e; profile.Appgen.seed |] in
  (* accumulated edits: module -> snippets in application order *)
  let edits : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let apply_edits sources =
    List.map
      (fun (name, src) ->
        match Hashtbl.find_opt edits name with
        | None -> (name, src)
        | Some snippets -> (name, src ^ String.concat "" (List.rev snippets)))
      sources
  in
  let commits = ref [] in
  let index = ref 0 in
  let prev_sources = ref None in
  for week = 0 to weeks - 1 do
    let base = Appgen.generate_sources (Appgen.at_week profile week) in
    (* "system" plays the OS frameworks: never edited by app commits *)
    let editable =
      List.filter (fun (n, _) -> n <> "system") base |> List.map fst
    in
    for _k = 1 to commits_per_week do
      let i = !index in
      let retry =
        retry_every > 0 && i > 0 && (i + 1) mod retry_every = 0
        && !prev_sources <> None
      in
      let sources, dirty =
        if retry then
          (* a CI retry rebuilds the previous commit verbatim, even across
             a week boundary *)
          (Option.get !prev_sources, [])
        else begin
          let n_dirty = 1 + Random.State.int st 3 in
          let picked = ref [] in
          while List.length !picked < n_dirty do
            let m =
              List.nth editable (Random.State.int st (List.length editable))
            in
            if not (List.mem m !picked) then picked := m :: !picked
          done;
          let dirty = List.rev !picked in
          List.iter
            (fun m ->
              let snippet = edit_snippet st ~index:i ~mname:m in
              let prev = Option.value ~default:[] (Hashtbl.find_opt edits m) in
              Hashtbl.replace edits m (snippet :: prev))
            dirty;
          (apply_edits base, dirty)
        end
      in
      commits :=
        { c_index = i; c_week = week; c_dirty = dirty; c_sources = sources }
        :: !commits;
      prev_sources := Some sources;
      incr index
    done
  done;
  List.rev !commits
