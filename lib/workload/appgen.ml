type profile = {
  app_name : string;
  seed : int;
  n_modules : int;
  n_vendor : int;
  features_per_module : int;
  decode_classes_per_module : int;
  big_decode_every : int;
  objc_fraction : float;
  week : int;
}

let uber_rider =
  {
    app_name = "UberRider";
    seed = 20200101;
    n_modules = 24;
    n_vendor = 5;
    features_per_module = 6;
    decode_classes_per_module = 3;
    big_decode_every = 7;
    objc_fraction = 0.17;
    week = 0;
  }

let uber_driver =
  {
    uber_rider with
    app_name = "UberDriver";
    seed = 20200202;
    n_modules = 26;
    n_vendor = 4;
    objc_fraction = 0.23;
    features_per_module = 5;
  }

let uber_eats =
  {
    uber_rider with
    app_name = "UberEats";
    seed = 20200303;
    n_modules = 22;
    n_vendor = 6;
    objc_fraction = 0.34;
    decode_classes_per_module = 4;
  }

let small =
  {
    app_name = "SmallApp";
    seed = 7;
    n_modules = 4;
    n_vendor = 2;
    features_per_module = 3;
    decode_classes_per_module = 2;
    big_decode_every = 3;
    objc_fraction = 0.25;
    week = 0;
  }

let at_week p week =
  { p with week; n_modules = p.n_modules + (week / 4) }

let scaled ?seed ~mult p =
  if mult < 1 then invalid_arg "Appgen.scaled: mult must be >= 1";
  {
    p with
    app_name = Printf.sprintf "%s_x%d" p.app_name mult;
    seed = (match seed with Some s -> s | None -> p.seed);
    n_modules = p.n_modules * mult;
  }

let span_entries = List.init 9 (fun i -> Printf.sprintf "span%d" (i + 1))

(* --- helpers -------------------------------------------------------------- *)

let irange st lo hi = lo + Random.State.int st (hi - lo + 1)
let add = Buffer.add_string

(* --- the shared core module ---------------------------------------------- *)

let core_source =
  {|
// Core helpers shared by every feature module.
func core_decode_i64(json: [Int], k: Int) throws -> Int {
  if k >= len(json) { throw }
  let v = json[k]
  if v < 0 { throw }
  return v
}
func core_decode_arr(json: [Int], k: Int) throws -> [Int] {
  let n = try core_decode_i64(json, k)
  let a = array(n % 8 + 1)
  for i in 0 ..< len(a) { a[i] = n + i }
  return a
}
func core_apply(f: (Int) -> Int, n: Int) -> Int {
  var acc = 0
  for i in 0 ..< n { acc = acc + f(i) }
  return acc
}
func core_fold(f: (Int) -> Int, n: Int, z: Int) -> Int {
  var acc = z
  for i in 0 ..< n { acc = f(acc + i) }
  return acc
}
func core_hash(v: Int) -> Int {
  var h = v
  h = (h ^ (h >> 16)) * 2246822519
  h = (h ^ (h >> 13)) * 3266489917
  return (h ^ (h >> 16)) & 1073741823
}
func core_clamp(v: Int, lo: Int, hi: Int) -> Int {
  if v < lo { return lo }
  if v > hi { return hi }
  return v
}
|}

(* --- the system-framework module ------------------------------------------ *)

(* Stand-in for UIKit/CoreAnimation-style framework work: loop-heavy code
   that dominates a span's cycles but ships outside the app binary (the
   pipeline marks this module no_outline).  This is what makes the dynamic
   share of outlined instructions small (~3% in the paper) even though the
   static share is large. *)
let system_source =
  {|
// System frameworks: rendering, blending, layout, animation.
func sys_render(w: Int, h: Int) -> Int {
  var acc = 0
  for y in 0 ..< h {
    var rowacc = y * 131 + 7
    for x in 0 ..< w {
      rowacc = (rowacc * 29 + x) & 1048575
      acc = acc + (rowacc >> 7)
    }
  }
  return acc & 65535
}
func sys_blend(a: Int, b: Int, n: Int) -> Int {
  var acc = a
  for i in 0 ..< n {
    acc = (acc * 7 + b * 3 + i) & 16777215
    acc = acc ^ (acc >> 9)
  }
  return acc
}
func sys_layout_pass(n: Int) -> Int {
  var total = 0
  var width = 375
  for i in 0 ..< n {
    let item = (i * 97 + 13) % 211
    width = width - item % 17
    if width < 40 { width = 375 }
    total = total + width * item % 1021
  }
  return total
}
func sys_anim_tick(t: Int, n: Int) -> Int {
  var v = t
  for i in 0 ..< n {
    v = v + (n - i) * 3
    v = v - (v >> 4)
  }
  return v
}
func sys_frame(ctx: Int) -> Int {
  var acc = ctx
  acc = acc + sys_render(40, 22)
  acc = acc + sys_blend(acc, ctx, 380)
  acc = acc + sys_layout_pass(290)
  acc = acc + sys_anim_tick(acc % 997, 430)
  return acc & 1048575
}
|}

(* --- vendor modules -------------------------------------------------------- *)

let vendor_source st j =
  let buf = Buffer.create 1024 in
  let c1 = irange st 3 97 and c2 = irange st 3 97 and c3 = irange st 11 9973 in
  add buf (Printf.sprintf "// Vendor library %d.\n" j);
  add buf
    (Printf.sprintf
       {|
func vendor%d_mix(a: Int, b: Int) -> Int {
  return (a * %d + b * %d) %% %d
}
func vendor%d_clamp(v: Int, lo: Int, hi: Int) -> Int {
  if v < lo { return lo }
  if v > hi { return hi }
  return v
}
func vendor%d_hash(v: Int) -> Int {
  var h = v + %d
  h = (h ^ (h >> %d)) * %d
  return h & 1073741823
}
func vendor%d_scan(a: [Int]) -> Int {
  var acc = %d
  for i in 0 ..< len(a) {
    acc = acc + a[i] * %d
  }
  return acc
}
func vendor%d_lerp(a: Int, b: Int, t: Int) -> Int {
  return a + (b - a) * t / %d
}
|}
       j c1 c2 c3 j j (irange st 1 999)
       (irange st 7 19)
       (irange st 1000 999999)
       j (irange st 0 9) (irange st 2 9) j (irange st 16 256));
  (* A few vendors ship near-duplicate utility families (FMSA fodder). *)
  for k = 0 to irange st 1 3 do
    add buf
      (Printf.sprintf
         {|
func vendor%d_step%d(v: Int) -> Int {
  let t = v * %d + %d
  let u = t ^ (t >> 5)
  return u %% %d
}
|}
         j k (irange st 3 31) (irange st 1 99) (irange st 101 997))
  done;
  Buffer.contents buf

(* --- feature modules ------------------------------------------------------- *)

let decode_class_source st ~mname ~idx ~nfields =
  let buf = Buffer.create 1024 in
  let cname = Printf.sprintf "%s_Rec%d" (String.capitalize_ascii mname) idx in
  (* Roughly a quarter of the fields are reference-typed arrays; the exact
     pattern is per-class, so decode classes are near- but not exact clones
     (matching the paper's PMD observation of little whole-function
     replication despite massive machine-level repetition). *)
  let pattern = Array.init nfields (fun k -> k > 0 && irange st 0 3 = 3) in
  let field_ty k = if pattern.(k) then `Arr else `Int in
  (* Per-class field names: real decode classes name their fields after
     their payloads, so textual whole-function clones are rare.  Field 0
     keeps the stable name the feature templates rely on. *)
  let tag = irange st 0 99999 in
  let fname k = if k = 0 then "f0" else Printf.sprintf "f%d_%d" k tag in
  add buf (Printf.sprintf "class %s {\n" cname);
  for k = 0 to nfields - 1 do
    match field_ty k with
    | `Int -> add buf (Printf.sprintf "  var %s: Int\n" (fname k))
    | `Arr -> add buf (Printf.sprintf "  var %s: [Int]\n" (fname k))
  done;
  add buf "  init(json: [Int]) throws {\n";
  for k = 0 to nfields - 1 do
    match field_ty k with
    | `Int ->
      add buf (Printf.sprintf "    self.%s = try core_decode_i64(json, %d)\n" (fname k) k)
    | `Arr ->
      add buf (Printf.sprintf "    self.%s = try core_decode_arr(json, %d)\n" (fname k) k)
  done;
  add buf "  }\n";
  (* Swift synthesizes accessors per property; they are tiny leaf functions
     whose bodies end in ret — the paper's dominant candidate family. *)
  for k = 0 to min (nfields - 1) 5 do
    match field_ty k with
    | `Int ->
      add buf
        (Printf.sprintf "  func get_%s() -> Int { return self.%s }\n" (fname k) (fname k));
      add buf
        (Printf.sprintf "  func set_%s(v: Int) { self.%s = v }\n" (fname k) (fname k))
    | `Arr ->
      add buf
        (Printf.sprintf "  func count_%s() -> Int { return len(self.%s) }\n" (fname k) (fname k))
  done;
  add buf "  func total() -> Int {\n    var acc = 0\n";
  for k = 0 to nfields - 1 do
    match field_ty k with
    | `Int -> add buf (Printf.sprintf "    acc = acc + self.%s\n" (fname k))
    | `Arr -> add buf (Printf.sprintf "    acc = acc + len(self.%s)\n" (fname k))
  done;
  add buf "    return acc\n  }\n}\n";
  (cname, nfields, Buffer.contents buf)

let view_class_source st ~mname ~idx =
  let cname = Printf.sprintf "%s_View%d" (String.capitalize_ascii mname) idx in
  let c1 = irange st 1 40 and c2 = irange st 1 40 in
  ( cname,
    Printf.sprintf
      {|
class %s {
  var x: Int
  var y: Int
  var w: Int
  var h: Int
  init(x: Int, y: Int) {
    self.x = x
    self.y = y
    self.w = x + %d
    self.h = y + %d
  }
  func layout(pad: Int) {
    self.w = self.w + pad * 2
    self.h = self.h + pad * 2
    self.x = self.x - pad
    self.y = self.y - pad
  }
  func measure() -> Int {
    return self.w * self.h + self.x - self.y
  }
  func get_x() -> Int { return self.x }
  func get_y() -> Int { return self.y }
  func get_w() -> Int { return self.w }
  func get_h() -> Int { return self.h }
  func set_x(v: Int) { self.x = v }
  func set_y(v: Int) { self.y = v }
}
|}
      cname c1 c2 )

(* A random arithmetic expression chain: essentially unique code per
   feature, keeping the app's repetition fraction realistic. *)
let unique_math_block st ~idx =
  let buf = Buffer.create 256 in
  let v = Printf.sprintf "t%d" idx in
  add buf (Printf.sprintf "  var %s = acc + %d\n" v (irange st 1 99999));
  let n_ops = irange st 4 12 in
  for _ = 1 to n_ops do
    let c = irange st 2 99999 in
    (match irange st 0 6 with
    | 0 -> add buf (Printf.sprintf "  %s = %s * %d + acc\n" v v (irange st 2 17))
    | 1 -> add buf (Printf.sprintf "  %s = (%s ^ %d) & %d\n" v v c (irange st 255 1048575))
    | 2 -> add buf (Printf.sprintf "  %s = %s + (%s >> %d)\n" v v v (irange st 1 13))
    | 3 -> add buf (Printf.sprintf "  %s = %s - acc %% %d\n" v v (irange st 3 997))
    | 4 -> add buf (Printf.sprintf "  %s = %s | (acc << %d)\n" v v (irange st 1 7))
    | 5 -> add buf (Printf.sprintf "  if %s > %d { %s = %s - %d }\n" v c v v (irange st 1 c))
    | _ -> add buf (Printf.sprintf "  %s = %s %% %d + %d\n" v v (irange st 11 9973) (irange st 0 999)));
  done;
  add buf (Printf.sprintf "  acc = acc + %s %% %d\n" v (irange st 101 99991));
  Buffer.contents buf

(* One feature function body: a few randomly chosen idiom blocks.
   Growth features (added in later weeks) are idiom-dominated: new product
   code reuses existing decode/view/vendor abstractions, so its machine
   code is far more outlinable than the original hand-rolled logic — this
   is what bends Figure 1's optimized growth line. *)
let feature_source st ~mname ~idx ~is_growth ~decode_classes ~view_classes ~vendors =
  let buf = Buffer.create 1024 in
  add buf (Printf.sprintf "func %s_feature%d(ctx: Int) -> Int {\n" mname idx);
  add buf "  var acc = ctx\n";
  (* Original features carry two unique-math blocks; growth features get at
     most a small one, rarely. *)
  if not is_growth then begin
    add buf (unique_math_block st ~idx:(100 + idx));
    add buf (unique_math_block st ~idx:(150 + idx))
  end
  else if irange st 0 7 = 0 then add buf (unique_math_block st ~idx:(100 + idx));
  let n_blocks = if is_growth then irange st 4 8 else irange st 2 4 in
  for blk = 1 to n_blocks do
    if (not is_growth) && irange st 0 1 = 0 then
      add buf (unique_math_block st ~idx:(200 + (10 * idx) + blk));
    match irange st 0 5 with
    | 0 ->
      (* array math; growth code reuses a handful of blessed constants
         (common strides, page sizes, flag masks) where original code had
         bespoke ones. *)
      let pick l = List.nth l (irange st 0 (List.length l - 1)) in
      let n = if is_growth then pick [ 8; 16 ] else irange st 8 24 in
      let c1 = if is_growth then pick [ 3; 5; 17 ] else irange st 3 31 in
      let c2 = if is_growth then pick [ 64; 101 ] else irange st 7 101 in
      add buf
        (Printf.sprintf
           "  let data%d = array(%d)\n\
           \  for i in 0 ..< %d { data%d[i] = (i * %d + acc) %% %d }\n\
           \  for i in 0 ..< %d { acc = acc + data%d[i] }\n"
           idx n n idx c1 c2 n idx)
    | 1 when decode_classes <> [] ->
      (* decode a record with try? *)
      let cname, nfields = List.nth decode_classes (Random.State.int st (List.length decode_classes)) in
      let jn = nfields + 2 in
      add buf
        (Printf.sprintf
           "  let json%d = array(%d)\n\
           \  for i in 0 ..< %d { json%d[i] = i + acc %% 17 }\n\
           \  let rec%d = try? %s(json%d)\n\
           \  if rec%d == 0 { acc = acc + 1 } else { acc = acc + (rec%d).total() + (rec%d).get_f0() }\n"
           idx jn jn idx idx cname idx idx idx idx)
    | 2 ->
      (* closure passed to a shared generic helper: specialization bait *)
      let c1 = irange st 2 19 and c2 = irange st 1 9 and n = irange st 4 12 in
      add buf
        (Printf.sprintf
           "  acc = acc + core_apply({ (x: Int) in return x * %d + %d }, %d)\n"
           c1 c2 n)
    | 3 when view_classes <> [] ->
      let cname = List.nth view_classes (Random.State.int st (List.length view_classes)) in
      add buf
        (Printf.sprintf
           "  let v%d = %s(acc %% 101, %d)\n\
           \  v%d.layout(%d)\n\
           \  v%d.set_x(v%d.get_x() + %d)\n\
           \  v%d.set_y(v%d.get_y() + v%d.get_w() %% 37)\n\
           \  acc = acc + v%d.measure() %% 1009\n"
           idx cname (irange st 1 60) idx (irange st 1 8) idx idx (irange st 1 30)
           idx idx idx idx)
    | 4 when vendors > 0 ->
      let j = Random.State.int st vendors in
      add buf
        (Printf.sprintf
           "  acc = vendor%d_mix(acc, %d) + vendor%d_hash(acc) %% %d\n" j
           (irange st 1 99) j (irange st 17 997))
    | _ ->
      let pick l = List.nth l (irange st 0 (List.length l - 1)) in
      let c1 = if is_growth then pick [ 2; 3 ] else irange st 2 9 in
      let c2 = if is_growth then pick [ 7; 16 ] else irange st 1 99 in
      let c3 = if is_growth then pick [ 50; 100 ] else irange st 3 200 in
      add buf
        (Printf.sprintf
           "  if acc %% 2 == 0 { acc = acc * %d + 1 } else { acc = acc - %d }\n\
           \  while acc > %d { acc = acc / 2 }\n\
           \  acc = core_clamp(acc, 0, 1000000)\n"
           c1 c2 c3)
  done;
  add buf "  return core_hash(acc) % 65536\n}\n";
  Buffer.contents buf

let module_source st profile ~mname ~mindex =
  let buf = Buffer.create 8192 in
  add buf (Printf.sprintf "// Feature module %s (auto-generated).\n" mname);
  (* Decode classes, with an occasional very wide one (Listing 10). *)
  let decode_classes = ref [] in
  for k = 0 to profile.decode_classes_per_module - 1 do
    let big =
      profile.big_decode_every > 0
      && (mindex * profile.decode_classes_per_module + k) mod profile.big_decode_every = 0
    in
    let nfields = if big then irange st 30 60 else irange st 4 12 in
    let cname, nf, src = decode_class_source st ~mname ~idx:k ~nfields in
    decode_classes := (cname, nf) :: !decode_classes;
    add buf src
  done;
  (* View classes. *)
  let view_classes = ref [] in
  for k = 0 to 1 do
    let cname, src = view_class_source st ~mname ~idx:k in
    view_classes := cname :: !view_classes;
    add buf src
  done;
  (* Features; the week parameter appends extra, idiom-heavy ones
     (Figure 1 growth). *)
  let base_features = profile.features_per_module in
  let nfeatures = base_features + (profile.week * 2 / 3) in
  for k = 0 to nfeatures - 1 do
    add buf
      (feature_source st ~mname ~idx:k ~is_growth:(k >= base_features)
         ~decode_classes:!decode_classes ~view_classes:!view_classes
         ~vendors:profile.n_vendor)
  done;
  (* Module entry: run every feature. *)
  add buf (Printf.sprintf "func %s_entry(x: Int) -> Int {\n  var acc = x\n" mname);
  for k = 0 to nfeatures - 1 do
    add buf (Printf.sprintf "  acc = acc + %s_feature%d(acc %% 251)\n" mname k)
  done;
  add buf "  return acc % 1000003\n}\n";
  Buffer.contents buf

(* --- spans and main --------------------------------------------------------- *)

(* Each span exercises a distinct slice of the app.  UI-intensive spans are
   broad and mostly cold — "a large fraction of the code is run only once
   in a typical usage scenario" (§VII-B) — while span 7 is the narrow, hot
   exception where outlining overhead can show (the paper's short span). *)
let span_profile k n_modules =
  let mods = List.init n_modules (fun i -> i) in
  match k with
  | 1 -> (mods, 1)                                                  (* app start: everything once *)
  | 2 -> (List.filter (fun i -> i mod 3 <> 0) mods, 2)
  | 3 -> (List.filter (fun i -> i mod 3 <> 1) mods, 2)
  | 4 -> (List.filter (fun i -> i mod 3 <> 2) mods, 3)
  | 5 -> (List.filter (fun i -> i mod 2 = 0) mods, 3)
  | 6 -> (List.filter (fun i -> i mod 5 < 2) mods, 5)               (* warm *)
  | 7 -> ([ 0 ], 40)                                                (* narrow + hot *)
  | 8 -> (mods, 3)
  | _ -> (List.filter (fun i -> i mod 2 = 1) mods, 2)

let main_source profile =
  let buf = Buffer.create 2048 in
  for k = 1 to 9 do
    let mods, iters = span_profile k profile.n_modules in
    add buf (Printf.sprintf "func span%d(n: Int) -> Int {\n  var acc = n\n" k);
    add buf (Printf.sprintf "  for it in 0 ..< n * %d {\n" iters);
    List.iter
      (fun i ->
        add buf (Printf.sprintf "    acc = acc + m%d_entry((acc + it) %% 509)\n" i);
        add buf "    acc = acc + sys_frame(acc)\n")
      mods;
    add buf "  }\n  return acc % 1000003\n}\n"
  done;
  add buf "func main() -> Int {\n  var acc = 0\n";
  for k = 1 to 9 do
    add buf (Printf.sprintf "  acc = acc + span%d(1)\n" k)
  done;
  add buf "  return acc % 1000003\n}\n";
  Buffer.contents buf

let generate_sources profile =
  let st = Random.State.make [| profile.seed; profile.week * 7919 |] in
  let vendor_modules =
    List.init profile.n_vendor (fun j ->
        (Printf.sprintf "vendorlib%d" j, vendor_source st j))
  in
  let feature_modules =
    List.init profile.n_modules (fun i ->
        let mname = Printf.sprintf "m%d" i in
        (mname, module_source st profile ~mname ~mindex:i))
  in
  (("core", core_source) :: ("system", system_source) :: vendor_modules)
  @ feature_modules
  @ [ ("appmain", main_source profile) ]

(* --- per-module configuration data ------------------------------------------ *)

(* Each feature module ships a configuration table its entry function reads
   (feature flags, localized layout constants, ...).  Developers "put all the
   data needed by a feature in its relevant module" (§VI-3); whether the
   linker preserves that affinity is exactly the data-layout experiment.
   The loads are folded into the entry's return value through [x ^ x = 0],
   so behaviour is independent of where the linker places the tables — only
   page-touch counts differ. *)
let config_tables = 64   (* small globals per module *)
let config_table_words = 64  (* 512 B each: 32 KiB of data per module *)

let add_module_data (m : Ir.modul) =
  if not (String.length m.Ir.m_name >= 2 && m.Ir.m_name.[0] = 'm'
          && m.Ir.m_name.[1] >= '0' && m.Ir.m_name.[1] <= '9')
  then m
  else begin
    let table_name k = Printf.sprintf "%s_cfg%d" m.Ir.m_name k in
    let globals =
      List.init config_tables (fun k ->
          {
            Ir.g_name = table_name k;
            g_init =
              List.init config_table_words (fun i ->
                  Ir.Gword (((i + (k * 131)) * 2654435761) land 0xffff));
            g_module = m.Ir.m_name;
          })
    in
    let entry_name = m.Ir.m_name ^ "_entry" in
    let touched = [ 0; 5; 11; 17; 23; 29; 35; 41; 47; 53; 59; 63 ] in
    let funcs =
      List.map
        (fun (f : Ir.func) ->
          if not (String.equal f.Ir.name entry_name) then f
          else begin
            let next = ref f.Ir.next_value in
            let fresh () =
              let v = !next in
              incr next;
              v
            in
            let loads =
              List.map
                (fun k ->
                  let gv = fresh () in
                  let lv = fresh () in
                  (k, gv, lv))
                touched
            in
            let mix0 = fresh () in
            let zero = fresh () in
            let lv_of i = (fun (_, _, lv) -> lv) (List.nth loads i) in
            let prefix =
              List.concat_map
                (fun (k, gv, lv) ->
                  [
                    Ir.Assign (gv, Ir.Global (table_name k));
                    Ir.Load (lv, Ir.V gv, 8 * (k mod config_table_words));
                  ])
                loads
              @ [
                  Ir.Binop (mix0, Ir.Add, Ir.V (lv_of 0), Ir.V (lv_of 3));
                  Ir.Binop (zero, Ir.Xor, Ir.V mix0, Ir.V mix0);
                ]
            in
            let blocks =
              List.mapi
                (fun i (b : Ir.block) ->
                  let b =
                    if i = 0 then { b with Ir.instrs = prefix @ b.Ir.instrs } else b
                  in
                  match b.Ir.term with
                  | Ir.Ret o ->
                    let r = fresh () in
                    {
                      b with
                      Ir.instrs = b.Ir.instrs @ [ Ir.Binop (r, Ir.Add, o, Ir.V zero) ];
                      term = Ir.Ret (Ir.V r);
                    }
                  | Ir.Br _ | Ir.Cond_br _ | Ir.Unreachable -> b)
                f.Ir.blocks
            in
            { f with Ir.blocks; next_value = !next }
          end)
        m.Ir.funcs
    in
    { m with Ir.funcs; globals = globals @ m.Ir.globals }
  end

(* --- Objective-C module post-processing ------------------------------------- *)

let retarget_objc (m : Ir.modul) =
  let rewrite_instr = function
    | Ir.Retain o -> Ir.Call (None, "objc_retain", [ o ])
    | Ir.Release o -> Ir.Call (None, "objc_release", [ o ])
    | i -> i
  in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        {
          f with
          Ir.blocks =
            List.map
              (fun (b : Ir.block) ->
                { b with Ir.instrs = List.map rewrite_instr b.instrs })
              f.blocks;
        })
      m.Ir.funcs
  in
  let externs =
    List.sort_uniq String.compare ("objc_retain" :: "objc_release" :: m.Ir.externs)
  in
  { m with Ir.funcs; externs }

let generate_modules profile =
  let sources = generate_sources profile in
  match Swiftlet.Compile.compile_program sources with
  | Error e -> Error e
  | Ok mods ->
    let st = Random.State.make [| profile.seed + 17 |] in
    let tagged =
      List.map
        (fun (m : Ir.modul) ->
          let is_objc =
            (match m.Ir.m_name with
            | "core" | "appmain" | "system" -> false
            | _ -> Random.State.float st 1.0 < profile.objc_fraction)
          in
          let flag =
            if is_objc then
              Link.pack_objc_gc ~gc_mode:0 ~compiler_id:2 ~version:900
            else Link.pack_objc_gc ~gc_mode:0 ~compiler_id:1 ~version:502
          in
          let m = if is_objc then retarget_objc m else m in
          let m = add_module_data m in
          { m with Ir.flags = [ ("objc_gc", Ir.Packed flag) ] })
        mods
    in
    Ok tagged
