(** Seeded generator for UberRider-class synthetic apps (§II-B): many
    feature modules plus vendor libraries, written in Swiftlet and compiled
    through the real front end, so every machine-level repetition pattern
    the paper catalogues arises from actual compilation:

    - JSON-decoding classes with throwing initializers (some with very many
      fields — the Listing 10 heavy tail);
    - view-like classes with setters (retain+store), UI glue functions;
    - closures passed to shared generic helpers (specialization clones);
    - vendor modules whose utilities repeat with different constants.

    A fraction of modules is marked Objective-C: their compiled IR uses
    [objc_retain]/[objc_release] and carries the legacy packed "objc_gc"
    module flag with a different compiler identity — which makes linking
    with [Link.Legacy] semantics fail exactly as in §VI-2. *)

type profile = {
  app_name : string;
  seed : int;
  n_modules : int;
  n_vendor : int;
  features_per_module : int;
  decode_classes_per_module : int;
  big_decode_every : int;  (** every k-th decode class gets 30–60 fields *)
  objc_fraction : float;
  week : int;              (** growth: extra modules/features accrue weekly *)
}

val uber_rider : profile
val uber_driver : profile
val uber_eats : profile
val small : profile
(** A fast profile for tests. *)

val at_week : profile -> int -> profile
(** The growth model behind Figure 1: each week adds features to existing
    modules and occasionally a whole module. *)

val scaled : ?seed:int -> mult:int -> profile -> profile
(** [scaled ~mult p] is [p] with [mult]× the module count (app name gains
    an [_x<mult>] suffix); [?seed] overrides the generator seed.  The one
    deterministic scaling knob shared by [bench thinwpo] and the fuzz
    lattice, so both exercise the same corpus shapes. *)

val generate_sources : profile -> (string * string) list
(** (module name, Swiftlet source); includes a core-helpers module and a
    main module defining [main] plus the span entry points [span1..span9]. *)

val generate_modules : profile -> (Ir.modul list, string) Stdlib.result
(** Compile all sources and post-process: Objective-C modules get their
    refcounting retargeted to the objc runtime and every module receives
    its packed "objc_gc" flag. *)

val span_entries : string list
(** ["span1"; ...; "span9"] — the core-span entry points (Figure 13). *)
