(** Seeded multi-week commit streams over an {!Appgen} app — the replay
    workload for the serve daemon ([bench serve] and the serve-vs-cold fuzz
    differential).

    Each week starts from [Appgen.at_week profile w]'s sources; commits
    within the week append small valid Swiftlet functions to a few modules
    (the "dirty few modules per commit" shape of a CI stream).  Edits
    accumulate: commit [k]'s sources contain every earlier edit that targets
    a module still present.  Every [retry_every]-th commit repeats the
    previous sources verbatim — a CI retry, which a warm server should
    answer from its result cache.

    Fully deterministic in [(seed, profile, weeks, commits_per_week)]. *)

type commit = {
  c_index : int;
  c_week : int;
  c_dirty : string list;
      (** modules this commit edited; [[]] for a retry commit.  The first
          commit of a week also picks up the profile's own weekly growth,
          which may touch modules beyond this list — consumers that need
          the exact delta should diff hashes, as the serve daemon does. *)
  c_sources : (string * string) list;
}

val stream :
  ?seed:int ->
  ?commits_per_week:int ->
  ?retry_every:int ->
  profile:Appgen.profile ->
  weeks:int ->
  unit ->
  commit list
(** Defaults: [seed = 11], [commits_per_week = 6], [retry_every = 5]
    ([<= 0] disables retries). *)
