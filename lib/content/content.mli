(** Stable function-content machinery: FNV-1a 64-bit hashing, name-erased
    rendered instruction streams, and k-gram shingles.  The single
    definition of "content" shared by the compressed-size model and the
    bp-compress layout objective ({!Linker.Compress}, {!Pgo.Order}),
    thin-WPO's summary hashing ({!Thinwpo.Summary}), the merge layer's
    function fingerprints ({!Merge}), and the serve daemon's cache keys.
    The rendered stream erases the function name, so byte-identical
    bodies render identically. *)

val fnv_offset : int64
val fnv_prime : int64
val fnv_byte : int64 -> int -> int64
val fnv_string : int64 -> string -> int64

val hash_string : string -> int64
(** [fnv_string fnv_offset s] — the full FNV-1a hash of one string. *)

val add_blocks : Buffer.t -> Machine.Block.t list -> unit
(** Append the blocks' rendered content stream (label, printed
    instructions, terminator) to [buf]. *)

val add_func : Buffer.t -> Machine.Mfunc.t -> unit

val render : Machine.Mfunc.t -> string
(** The function's blocks as printed instructions and terminators,
    name erased — the byte stream the compression model slides over. *)

val shingles : ?k:int -> Machine.Mfunc.t -> int64 list
(** Deduplicated FNV hashes of every [k] (default 2) consecutive
    rendered instructions: the content-utility ids bp-compress feeds
    to balanced partitioning. *)
