open Machine

(* Stable function-content machinery: FNV-1a hashing, name-erased rendered
   instruction streams, and k-gram shingles.  One definition of "content"
   shared by the layers that fingerprint functions — the compressed-size
   model and bp-compress objective in lib/linker / lib/pgo, thin-WPO's
   summary exchange, the merge layer's fingerprints, and the serve
   daemon's cache keys. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let hash_string s = fnv_string fnv_offset s

let add_blocks buf blocks =
  List.iter
    (fun (b : Block.t) ->
      Buffer.add_string buf b.Block.label;
      Buffer.add_char buf ':';
      Array.iter
        (fun i ->
          Buffer.add_string buf (Insn.to_string i);
          Buffer.add_char buf ';')
        b.Block.body;
      Buffer.add_string buf
        (Format.asprintf "%a" Block.pp_terminator b.Block.term);
      Buffer.add_char buf '|')
    blocks

let add_func buf (f : Mfunc.t) = add_blocks buf f.Mfunc.blocks

let render (f : Mfunc.t) =
  let buf = Buffer.create 256 in
  add_func buf f;
  Buffer.contents buf

(* k-gram shingles over the instruction stream: every window of [k]
   consecutive rendered instructions (terminators included) hashes to
   one utility id, deduplicated.  Functions sharing instruction
   subsequences — outlined-clone families, merge-function survivors,
   codegen idioms — share shingles. *)
let shingles ?(k = 2) (f : Mfunc.t) =
  let insns = ref [] in
  List.iter
    (fun (b : Block.t) ->
      Array.iter (fun i -> insns := Insn.to_string i :: !insns) b.Block.body;
      insns :=
        Format.asprintf "%a" Block.pp_terminator b.Block.term :: !insns)
    f.blocks;
  let insns = Array.of_list (List.rev !insns) in
  let n = Array.length insns in
  if n = 0 then []
  else begin
    let k = min k n in
    let out = ref [] in
    for i = 0 to n - k do
      let h = ref fnv_offset in
      for j = i to i + k - 1 do
        h := fnv_byte (fnv_string !h insns.(j)) 0
      done;
      out := !h :: !out
    done;
    List.sort_uniq Int64.compare !out
  end
