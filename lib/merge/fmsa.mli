(** The FMSA baseline (Function Merging by Sequence Alignment, Table I).

    The published FMSA aligns arbitrary function pairs; our substitute
    captures its essence at a fraction of the complexity (documented in
    DESIGN.md): functions whose bodies are alpha-equivalent {e up to
    immediate operands} are merged into one function that takes the
    differing immediates as extra parameters; the originals become thunks
    passing their literals.  This catches the "same code, different
    constants" near-clones that exact MergeFunction misses, and like the
    paper's measurement it recovers a little more than MergeFunction but
    far less than machine outlining.

    A thin instance of the {!Merge} framework under {!Merge.fmsa_policy};
    output is byte-identical to the pre-refactor pass (enforced against
    {!Merge_reference} by the fuzz lattice). *)

type stats = {
  groups : int;
  funcs_merged : int;
  instrs_saved : int;
  merged_created : int;
}

val run :
  ?max_holes:int ->
  ?min_instrs:int ->
  ?keep:(Ir.func -> bool) ->
  Ir.modul ->
  Ir.modul * stats
(** [max_holes] bounds the number of differing immediates per group
    (default 6); [min_instrs] skips functions too small to be worth a thunk
    (default 4); [keep] exempts functions from being thunked. *)
