(* Optimistic cross-module function merging in thin-WPO's summary-exchange
   shape (DESIGN.md "Optimistic global merging"):

   Round 1 (parallel): each module is summarized independently — for every
   eligible function, a body-free entry carrying only the 64-bit FNV
   fingerprint of its global-policy merge key, its name and its size.  No
   bodies or keys cross the shard boundary, which is what keeps the round
   cheap; the price is that a fingerprint group is only {e optimistically}
   mergeable.

   Round 2 (serial): fingerprint groups are joined in first-appearance
   order (module index, then within-module order — byte-deterministic for
   any worker count).  Each group of two or more is confirmed by
   recomputing the exact keys of just the grouped members; members whose
   keys disagree with their group are split off, and sub-groups that end up
   alone, unprofitable, or name-colliding are rolled back.

   Round 3 (parallel): each module rewrites its decided members into
   forwarding thunks; the host module (the first member's home) gains the
   shared merged function, and every other member module gains an extern
   for it.  The decision tables are frozen before the round starts, so the
   workers only read shared state. *)

type summary = {
  se_fp : int64;
  se_module : int;
  se_name : string;
  se_instrs : int;
}

type stats = {
  groups : int;
  funcs_merged : int;
  instrs_saved : int;
  merged_created : int;
  rolled_back : int;
}

let policy = Merge.global_policy

let fingerprint_of_key key =
  let fp = Content.hash_string key in
  if !Merge.fault_drop_rollback then Int64.logand fp 0x3fL else fp

(* Round 1: body-free summaries for one module. *)
let summarize ~min_instrs ~max_holes ~keep idx (m : Ir.modul) =
  List.filter_map
    (fun (f : Ir.func) ->
      if Ir.instr_count f < min_instrs || keep f then None
      else
        let key, holes = Merge.key ~policy f in
        if
          List.length holes <= max_holes
          && List.length f.Ir.params + List.length holes
             <= Machine.Reg.max_args
        then
          Some
            {
              se_fp = fingerprint_of_key key;
              se_module = idx;
              se_name = f.Ir.name;
              se_instrs = Ir.instr_count f;
            }
        else None)
    m.funcs

let run_modules ?(workers = 1) ?(min_instrs = 4) ?(max_holes = 6)
    ?(keep = fun _ -> false) (ms : Ir.modul list) =
  let mods = Array.of_list ms in
  (* Round 1 — parallel summaries, results in module-index order. *)
  let summaries =
    Thinwpo.Pool.map ~workers
      (fun idx -> summarize ~min_instrs ~max_holes ~keep idx mods.(idx))
      (Array.init (Array.length mods) Fun.id)
  in
  let all = List.concat (Array.to_list summaries) in
  (* Round 2 — serial join in first-appearance order, then confirm. *)
  let byfp : (int64, summary list) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt byfp s.se_fp with
      | None ->
        Hashtbl.replace byfp s.se_fp [ s ];
        order := s.se_fp :: !order
      | Some prev -> Hashtbl.replace byfp s.se_fp (s :: prev))
    all;
  let taken = Hashtbl.create 1024 in
  Array.iter
    (fun (m : Ir.modul) ->
      List.iter (fun (f : Ir.func) -> Hashtbl.replace taken f.Ir.name ()) m.funcs;
      List.iter (fun (g : Ir.global) -> Hashtbl.replace taken g.Ir.g_name ()) m.globals)
    mods;
  let repl : (string, string * Ir.operand list) Hashtbl.t array =
    Array.init (Array.length mods) (fun _ -> Hashtbl.create 16)
  in
  let adds = Array.make (Array.length mods) [] in
  let extern_adds = Array.make (Array.length mods) [] in
  let ngroups = ref 0 and merged = ref 0 and saved = ref 0 in
  let created = ref 0 and rolled = ref 0 in
  List.iter
    (fun fp ->
      match List.rev (Hashtbl.find byfp fp) with
      | [] | [ _ ] -> ()
      | members ->
        let optimistic = List.length members in
        let annotated =
          List.map
            (fun s ->
              let f =
                Option.get (Ir.find_func mods.(s.se_module) s.se_name)
              in
              let key, holes = Merge.key ~policy f in
              (s, f, key, holes))
            members
        in
        (* Confirmation: split the optimistic group by exact key.  The
           injected fault skips this — collided members stay together. *)
        let subgroups =
          if !Merge.fault_drop_rollback then [ annotated ]
          else begin
            let bykey : (string, (summary * Ir.func * string * Merge.hole list) list) Hashtbl.t =
              Hashtbl.create 8
            in
            let korder = ref [] in
            List.iter
              (fun ((_, _, key, _) as entry) ->
                match Hashtbl.find_opt bykey key with
                | None ->
                  Hashtbl.replace bykey key [ entry ];
                  korder := key :: !korder
                | Some prev -> Hashtbl.replace bykey key (entry :: prev))
              annotated;
            List.map (fun k -> List.rev (Hashtbl.find bykey k)) (List.rev !korder)
          end
        in
        let committed = ref 0 in
        List.iteri
          (fun k members ->
            match members with
            | [] | [ _ ] -> ()
            | members ->
              let base_s, base_f, _, _ = List.hd members in
              let merged_name =
                if k = 0 then Printf.sprintf "gm_%016Lx" fp
                else Printf.sprintf "gm_%016Lx_%d" fp k
              in
              if not (Hashtbl.mem taken merged_name) then begin
                let merged_func =
                  Merge.parameterize ~policy base_f ~merged_name
                in
                let benefit =
                  List.fold_left
                    (fun acc ((s : summary), _, _, _) -> acc + s.se_instrs - 1)
                    0 members
                  - Ir.instr_count merged_func
                in
                if benefit >= 1 then begin
                  Hashtbl.replace taken merged_name ();
                  incr ngroups;
                  incr created;
                  let host = base_s.se_module in
                  adds.(host) <- merged_func :: adds.(host);
                  saved := !saved + benefit;
                  List.iter
                    (fun ((s : summary), _, _, holes) ->
                      incr merged;
                      incr committed;
                      Hashtbl.replace repl.(s.se_module) s.se_name
                        (merged_name, Merge.extras_of_holes holes);
                      if
                        s.se_module <> host
                        && not (List.mem merged_name extern_adds.(s.se_module))
                      then
                        extern_adds.(s.se_module) <-
                          merged_name :: extern_adds.(s.se_module))
                    members
                end
              end)
          subgroups;
        rolled := !rolled + optimistic - !committed)
    (List.rev !order);
  (* Round 3 — parallel rewrite; decision tables are read-only from here. *)
  let out =
    Thinwpo.Pool.map ~workers
      (fun idx ->
        let m = mods.(idx) in
        let funcs =
          List.map
            (fun (f : Ir.func) ->
              match Hashtbl.find_opt repl.(idx) f.Ir.name with
              | Some (target, extras) -> Merge.make_thunk f ~target extras
              | None -> f)
            m.funcs
          @ List.rev adds.(idx)
        in
        let externs =
          m.externs
          @ List.filter
              (fun e -> not (List.mem e m.externs))
              (List.rev extern_adds.(idx))
        in
        { m with Ir.funcs; externs })
      (Array.init (Array.length mods) Fun.id)
  in
  ( Array.to_list out,
    {
      groups = !ngroups;
      funcs_merged = !merged;
      instrs_saved = !saved;
      merged_created = !created;
      rolled_back = !rolled;
    } )

let run_module ?min_instrs ?max_holes ?keep (m : Ir.modul) =
  let ms, st =
    run_modules ~workers:1 ?min_instrs ?max_holes ?keep [ m ]
  in
  (List.hd ms, st)
