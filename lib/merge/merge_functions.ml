type stats = {
  groups : int;
  funcs_merged : int;
  instrs_saved : int;
}

(* The exact strategy: only alpha-equivalent duplicates share a key
   (immediates and symbols verbatim).  [Merge.key] under [exact_policy]
   records no holes and is byte-identical to the pre-refactor
   [normalize_key]. *)
let normalize_key (f : Ir.func) = fst (Merge.key ~policy:Merge.exact_policy f)

let make_thunk (f : Ir.func) target = Merge.make_thunk f ~target []

let run ?(min_instrs = 8) ?(keep = fun _ -> false) (m : Ir.modul) =
  let groups = Hashtbl.create 256 in
  List.iter
    (fun (f : Ir.func) ->
      if Ir.instr_count f >= min_instrs then begin
        let key = normalize_key f in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (f :: prev)
      end)
    m.funcs;
  let canon : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let ngroups = ref 0 in
  Hashtbl.iter
    (fun _ fs ->
      match fs with
      | [] | [ _ ] -> ()
      | fs -> (
        (* Prefer a keep-exempt function as canonical representative. *)
        let fs = List.rev fs in
        let representative =
          match List.find_opt keep fs with Some f -> f | None -> List.hd fs
        in
        incr ngroups;
        List.iter
          (fun (f : Ir.func) ->
            if f.name <> representative.Ir.name && not (keep f) then
              Hashtbl.replace canon f.name representative.Ir.name)
          fs))
    groups;
  let merged = ref 0 and saved = ref 0 in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        match Hashtbl.find_opt canon f.name with
        | None -> f
        | Some target ->
          incr merged;
          let thunk = make_thunk f target in
          saved := !saved + Ir.instr_count f - Ir.instr_count thunk;
          thunk)
      m.funcs
  in
  ({ m with funcs }, { groups = !ngroups; funcs_merged = !merged; instrs_saved = !saved })
