(* Frozen verbatim copies of the pre-refactor lib/mir passes.  These are
   NOT used by the pipeline: they exist so the fuzz lattice can enforce
   the refactor-exactness contract — the thin strategy instances in
   Merge_functions/Fmsa must produce byte-identical modules to these on
   every lattice program.  Do not edit the bodies. *)

module Merge_functions = struct
type stats = {
  groups : int;
  funcs_merged : int;
  instrs_saved : int;
}

(* Alpha-normalize: rename values in order of first appearance (params
   first), labels likewise, then print.  Immediates and symbols are kept
   verbatim, so only exact duplicates share a key. *)
let normalize_key (f : Ir.func) =
  let vmap = Hashtbl.create 64 and vnext = ref 0 in
  let lmap = Hashtbl.create 16 and lnext = ref 0 in
  let v x =
    match Hashtbl.find_opt vmap x with
    | Some i -> i
    | None ->
      let i = !vnext in
      incr vnext;
      Hashtbl.replace vmap x i;
      i
  in
  let l x =
    match Hashtbl.find_opt lmap x with
    | Some i -> i
    | None ->
      let i = !lnext in
      incr lnext;
      Hashtbl.replace lmap x i;
      i
  in
  List.iter (fun p -> ignore (v p)) f.Ir.params;
  List.iter (fun (b : Ir.block) -> ignore (l b.label)) f.Ir.blocks;
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let op = function
    | Ir.V x -> "v" ^ string_of_int (v x)
    | Ir.Imm n -> "#" ^ string_of_int n
    | Ir.Global g -> "@" ^ g
    | Ir.Fn g -> "&" ^ g
  in
  add "params:%d;" (List.length f.Ir.params);
  List.iter
    (fun (b : Ir.block) ->
      add "L%d:" (l b.label);
      List.iter
        (fun (p : Ir.phi) ->
          add "phi v%d=" (v p.phi_dst);
          List.iter (fun (lbl, o) -> add "[L%d %s]" (l lbl) (op o)) p.incoming)
        b.phis;
      List.iter
        (fun i ->
          (match Ir.def_of_instr i with
          | Some d -> add "v%d=" (v d)
          | None -> ());
          (match i with
          | Ir.Assign (_, o) -> add "asn %s" (op o)
          | Ir.Binop (_, o2, a, b2) ->
            let tag =
              match o2 with
              | Ir.Add -> "add"
              | Ir.Sub -> "sub"
              | Ir.Mul -> "mul"
              | Ir.Div -> "div"
              | Ir.And -> "and"
              | Ir.Or -> "or"
              | Ir.Xor -> "xor"
              | Ir.Shl -> "shl"
              | Ir.Lshr -> "lshr"
              | Ir.Ashr -> "ashr"
            in
            add "bin.%s %s %s" tag (op a) (op b2)
          | Ir.Icmp (_, c, a, b2) ->
            add "icmp %s %s %s" (Machine.Cond.to_string c) (op a) (op b2)
          | Ir.Load (_, base, off) -> add "ld %s %d" (op base) off
          | Ir.Store (x, base, off) -> add "st %s %s %d" (op x) (op base) off
          | Ir.Call (_, fn, args) ->
            add "call %s" fn;
            List.iter (fun a -> add " %s" (op a)) args
          | Ir.Call_indirect (_, fn, args) ->
            add "calli %s" (op fn);
            List.iter (fun a -> add " %s" (op a)) args
          | Ir.Retain o -> add "retain %s" (op o)
          | Ir.Release o -> add "release %s" (op o)
          | Ir.Alloc_object (_, meta, size) -> add "alloco %s %d" meta size
          | Ir.Alloc_array (_, n) -> add "alloca %s" (op n));
          add ";")
        b.instrs;
      (match b.term with
      | Ir.Ret o -> add "ret %s" (op o)
      | Ir.Br lbl -> add "br L%d" (l lbl)
      | Ir.Cond_br (o, a, b2) -> add "cbr %s L%d L%d" (op o) (l a) (l b2)
      | Ir.Unreachable -> add "unreachable");
      add "|")
    f.Ir.blocks;
  Buffer.contents buf

let make_thunk (f : Ir.func) target =
  let ret = f.Ir.next_value in
  {
    f with
    blocks =
      [
        {
          Ir.label = "entry";
          phis = [];
          instrs =
            [ Ir.Call (Some ret, target, List.map (fun p -> Ir.V p) f.Ir.params) ];
          term = Ir.Ret (Ir.V ret);
        };
      ];
    next_value = ret + 1;
  }

let run ?(min_instrs = 8) ?(keep = fun _ -> false) (m : Ir.modul) =
  let groups = Hashtbl.create 256 in
  List.iter
    (fun (f : Ir.func) ->
      if Ir.instr_count f >= min_instrs then begin
        let key = normalize_key f in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (f :: prev)
      end)
    m.funcs;
  let canon : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let ngroups = ref 0 in
  Hashtbl.iter
    (fun _ fs ->
      match fs with
      | [] | [ _ ] -> ()
      | fs -> (
        (* Prefer a keep-exempt function as canonical representative. *)
        let fs = List.rev fs in
        let representative =
          match List.find_opt keep fs with Some f -> f | None -> List.hd fs
        in
        incr ngroups;
        List.iter
          (fun (f : Ir.func) ->
            if f.name <> representative.Ir.name && not (keep f) then
              Hashtbl.replace canon f.name representative.Ir.name)
          fs))
    groups;
  let merged = ref 0 and saved = ref 0 in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        match Hashtbl.find_opt canon f.name with
        | None -> f
        | Some target ->
          incr merged;
          let thunk = make_thunk f target in
          saved := !saved + Ir.instr_count f - Ir.instr_count thunk;
          thunk)
      m.funcs
  in
  ({ m with funcs }, { groups = !ngroups; funcs_merged = !merged; instrs_saved = !saved })
end

module Fmsa = struct
type stats = {
  groups : int;
  funcs_merged : int;
  instrs_saved : int;
  merged_created : int;
}

(* Normalized key with immediates replaced by holes; returns the key and the
   immediates in traversal order.  Phis and terminator operands keep their
   immediates verbatim (holes there would need more plumbing than the
   experiment warrants). *)
let key_with_holes (f : Ir.func) =
  let vmap = Hashtbl.create 64 and vnext = ref 0 in
  let lmap = Hashtbl.create 16 and lnext = ref 0 in
  let v x =
    match Hashtbl.find_opt vmap x with
    | Some i -> i
    | None ->
      let i = !vnext in
      incr vnext;
      Hashtbl.replace vmap x i;
      i
  in
  let l x =
    match Hashtbl.find_opt lmap x with
    | Some i -> i
    | None ->
      let i = !lnext in
      incr lnext;
      Hashtbl.replace lmap x i;
      i
  in
  List.iter (fun p -> ignore (v p)) f.Ir.params;
  List.iter (fun (b : Ir.block) -> ignore (l b.label)) f.Ir.blocks;
  let holes = ref [] in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let op_hole = function
    | Ir.V x -> "v" ^ string_of_int (v x)
    | Ir.Imm n ->
      holes := n :: !holes;
      "?"
    | Ir.Global g -> "@" ^ g
    | Ir.Fn g -> "&" ^ g
  in
  let op_exact = function
    | Ir.V x -> "v" ^ string_of_int (v x)
    | Ir.Imm n -> "#" ^ string_of_int n
    | Ir.Global g -> "@" ^ g
    | Ir.Fn g -> "&" ^ g
  in
  add "params:%d;" (List.length f.Ir.params);
  List.iter
    (fun (b : Ir.block) ->
      add "L%d:" (l b.label);
      List.iter
        (fun (p : Ir.phi) ->
          add "phi v%d=" (v p.phi_dst);
          List.iter (fun (lbl, o) -> add "[L%d %s]" (l lbl) (op_exact o)) p.incoming)
        b.phis;
      List.iter
        (fun i ->
          (match Ir.def_of_instr i with
          | Some d -> add "v%d=" (v d)
          | None -> ());
          (match i with
          | Ir.Assign (_, o) -> add "asn %s" (op_hole o)
          | Ir.Binop (_, o2, a, b2) ->
            let tag =
              match o2 with
              | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul"
              | Ir.Div -> "div" | Ir.And -> "and" | Ir.Or -> "or"
              | Ir.Xor -> "xor" | Ir.Shl -> "shl" | Ir.Lshr -> "lshr"
              | Ir.Ashr -> "ashr"
            in
            add "bin.%s %s %s" tag (op_hole a) (op_hole b2)
          | Ir.Icmp (_, c, a, b2) ->
            add "icmp %s %s %s" (Machine.Cond.to_string c) (op_hole a) (op_hole b2)
          | Ir.Load (_, base, off) -> add "ld %s %d" (op_exact base) off
          | Ir.Store (x, base, off) ->
            add "st %s %s %d" (op_hole x) (op_exact base) off
          | Ir.Call (_, fn, args) ->
            add "call %s" fn;
            List.iter (fun a -> add " %s" (op_hole a)) args
          | Ir.Call_indirect (_, fn, args) ->
            add "calli %s" (op_exact fn);
            List.iter (fun a -> add " %s" (op_hole a)) args
          | Ir.Retain o -> add "retain %s" (op_exact o)
          | Ir.Release o -> add "release %s" (op_exact o)
          | Ir.Alloc_object (_, meta, size) -> add "alloco %s %d" meta size
          | Ir.Alloc_array (_, n) -> add "alloca %s" (op_exact n));
          add ";")
        b.instrs;
      (match b.term with
      | Ir.Ret o -> add "ret %s" (op_exact o)
      | Ir.Br lbl -> add "br L%d" (l lbl)
      | Ir.Cond_br (o, a, b2) -> add "cbr %s L%d L%d" (op_exact o) (l a) (l b2)
      | Ir.Unreachable -> add "unreachable");
      add "|")
    f.Ir.blocks;
  (Buffer.contents buf, List.rev !holes)

(* Rebuild a function body with its hole-immediates replaced by fresh
   parameters, in the same traversal order as [key_with_holes]. *)
let parameterize (f : Ir.func) ~merged_name =
  let next = ref f.Ir.next_value in
  let new_params = ref [] in
  let sub = function
    | Ir.Imm _ ->
      let p = !next in
      incr next;
      new_params := p :: !new_params;
      Ir.V p
    | o -> o
  in
  let instr i =
    match i with
    | Ir.Assign (d, o) -> Ir.Assign (d, sub o)
    | Ir.Binop (d, op, a, b) -> Ir.Binop (d, op, sub a, sub b)
    | Ir.Icmp (d, c, a, b) -> Ir.Icmp (d, c, sub a, sub b)
    | Ir.Load (_, _, _) -> i
    | Ir.Store (x, base, off) -> Ir.Store (sub x, base, off)
    | Ir.Call (d, fn, args) -> Ir.Call (d, fn, List.map sub args)
    | Ir.Call_indirect (d, fn, args) -> Ir.Call_indirect (d, fn, List.map sub args)
    | Ir.Retain _ | Ir.Release _ | Ir.Alloc_object _ | Ir.Alloc_array _ -> i
  in
  let blocks =
    List.map
      (fun (b : Ir.block) -> { b with Ir.instrs = List.map instr b.instrs })
      f.Ir.blocks
  in
  {
    f with
    Ir.name = merged_name;
    params = f.Ir.params @ List.rev !new_params;
    blocks;
    next_value = !next;
  }

let make_thunk (f : Ir.func) target extra_imms =
  let ret = f.Ir.next_value in
  let args =
    List.map (fun p -> Ir.V p) f.Ir.params
    @ List.map (fun n -> Ir.Imm n) extra_imms
  in
  {
    f with
    Ir.blocks =
      [
        {
          Ir.label = "entry";
          phis = [];
          instrs = [ Ir.Call (Some ret, target, args) ];
          term = Ir.Ret (Ir.V ret);
        };
      ];
    next_value = ret + 1;
  }

let run ?(max_holes = 6) ?(min_instrs = 4) ?(keep = fun _ -> false)
    (m : Ir.modul) =
  let groups : (string, (Ir.func * int list) list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (f : Ir.func) ->
      if Ir.instr_count f >= min_instrs && not (keep f) then begin
        let key, holes = key_with_holes f in
        (* The merged function gains one parameter per hole; stay within
           the register-passed argument budget or the back end cannot
           lower calls to it (caught by the differential fuzzer). *)
        if
          List.length holes <= max_holes
          && List.length f.Ir.params + List.length holes
             <= Machine.Reg.max_args
        then
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key ((f, holes) :: prev)
      end)
    m.funcs;
  let replacements : (string, Ir.func) Hashtbl.t = Hashtbl.create 64 in
  let created = ref [] in
  let ngroups = ref 0 and merged = ref 0 and saved = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      match members with
      | [] | [ _ ] -> ()
      | members ->
        (* All members share a hole-normalized shape with identical arity
           and hole count.  If all hole vectors are equal, MergeFunctions
           territory; still fine to merge here. *)
        let members = List.rev members in
        let base, _ = List.hd members in
        incr ngroups;
        let merged_name = Printf.sprintf "fmsa_merged_%s" base.Ir.name in
        let merged_func = parameterize base ~merged_name in
        created := merged_func :: !created;
        List.iter
          (fun ((f : Ir.func), holes) ->
            let thunk = make_thunk f merged_name holes in
            Hashtbl.replace replacements f.name thunk;
            incr merged;
            saved := !saved + Ir.instr_count f - Ir.instr_count thunk)
          members;
        saved := !saved - Ir.instr_count merged_func)
    groups;
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        match Hashtbl.find_opt replacements f.name with
        | Some thunk -> thunk
        | None -> f)
      m.funcs
    @ List.rev !created
  in
  ( { m with funcs },
    {
      groups = !ngroups;
      funcs_merged = !merged;
      instrs_saved = !saved;
      merged_created = List.length !created;
    } )
end
