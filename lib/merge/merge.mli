(** Strategy-agnostic core of the IR function-merging passes.

    A {e merge strategy} is a {!policy}: a decision, per operand site, of
    which operands are "holes" — positions allowed to differ between the
    functions being merged.  {!key} renders an alpha-normalized body with
    holes printed as ["?"] and returns the concrete operands that fell into
    them; two functions merge under a policy iff their keys are equal.
    {!parameterize} rebuilds a body with each hole replaced by a fresh
    trailing parameter (same traversal order as {!key}), and
    {!make_thunk} rewrites a merged-away function into a single forwarding
    call that passes its own hole operands ({!extras_of_holes}).

    The three strategies: {!exact_policy} (no holes — MergeFunction),
    {!fmsa_policy} (immediates at value sites — the FMSA substitute), and
    {!global_policy} (immediates, address-constant operands {e and} direct
    call targets — {!Global_merge}'s cross-module strategy).

    Byte-compatibility contract: under [exact_policy] and [fmsa_policy] the
    outputs are byte-identical to the pre-refactor [lib/mir] passes, frozen
    in {!Merge_reference} and enforced by the fuzz lattice's
    refactor-exactness differential. *)

type hole =
  | H_imm of int       (** differing immediate: thunk passes [Imm n] *)
  | H_op of Ir.operand (** differing [Global]/[Fn] operand *)
  | H_target of string
      (** differing direct-call target: thunk passes [Fn g] and the merged
          body calls indirectly through the parameter *)

(** Operand positions, named so a policy can decide hole-ability per site. *)
type site =
  | S_phi
  | S_assign
  | S_binop
  | S_icmp
  | S_load_base
  | S_store_val
  | S_store_base
  | S_calli_fn
  | S_call_arg
  | S_calli_arg
  | S_retain
  | S_release
  | S_alloc_len
  | S_term

type policy = {
  imm_hole : site -> bool;
  sym_hole : site -> bool;
  target_hole : bool;
}

val exact_policy : policy
val fmsa_policy : policy
val global_policy : policy

val value_sites : site -> bool
(** The sites where holing is structurally safe without extra plumbing:
    assign/binop/icmp sources, stored values and call arguments. *)

val key : policy:policy -> Ir.func -> string * hole list
(** Alpha-normalized body rendering plus the holes in traversal order.
    Equal keys (same policy) = mergeable; identical hole {e counts} are
    implied by equal keys, identical hole {e values} are not. *)

val fingerprint : policy:policy -> Ir.func -> int64
(** FNV-1a of [fst (key ~policy f)] — the body-free summary entry
    {!Global_merge} ships between shards. *)

val parameterize : policy:policy -> Ir.func -> merged_name:string -> Ir.func
(** The shared merged function: holes become fresh trailing parameters;
    a holed direct call becomes an indirect call through its parameter. *)

val extras_of_holes : hole list -> Ir.operand list

val make_thunk : Ir.func -> target:string -> Ir.operand list -> Ir.func
(** Replace [f]'s body with [call target (params @ extras); ret]. *)

val fault_drop_rollback : bool ref
(** Fault injection for [sizeopt fuzz --self-test]: truncates global-merge
    fingerprints to 6 bits (manufacturing collisions) {e and} skips the
    serial confirmation round that exists to absorb them, so optimistic
    merges of unequal functions survive into the output. *)
