type stats = {
  groups : int;
  funcs_merged : int;
  instrs_saved : int;
  merged_created : int;
}

(* The immediate-holing strategy: [Merge.key] under [fmsa_policy] holes
   immediates at value sites and keeps everything else verbatim; the
   key/hole pair is byte-identical to the pre-refactor [key_with_holes]
   (holes are all [H_imm]). *)
let key_with_holes (f : Ir.func) = Merge.key ~policy:Merge.fmsa_policy f

let parameterize (f : Ir.func) ~merged_name =
  Merge.parameterize ~policy:Merge.fmsa_policy f ~merged_name

let make_thunk (f : Ir.func) target holes =
  Merge.make_thunk f ~target (Merge.extras_of_holes holes)

let run ?(max_holes = 6) ?(min_instrs = 4) ?(keep = fun _ -> false)
    (m : Ir.modul) =
  let groups : (string, (Ir.func * Merge.hole list) list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (f : Ir.func) ->
      if Ir.instr_count f >= min_instrs && not (keep f) then begin
        let key, holes = key_with_holes f in
        (* The merged function gains one parameter per hole; stay within
           the register-passed argument budget or the back end cannot
           lower calls to it (caught by the differential fuzzer). *)
        if
          List.length holes <= max_holes
          && List.length f.Ir.params + List.length holes
             <= Machine.Reg.max_args
        then
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key ((f, holes) :: prev)
      end)
    m.funcs;
  let replacements : (string, Ir.func) Hashtbl.t = Hashtbl.create 64 in
  let created = ref [] in
  let ngroups = ref 0 and merged = ref 0 and saved = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      match members with
      | [] | [ _ ] -> ()
      | members ->
        (* All members share a hole-normalized shape with identical arity
           and hole count.  If all hole vectors are equal, MergeFunctions
           territory; still fine to merge here. *)
        let members = List.rev members in
        let base, _ = List.hd members in
        incr ngroups;
        let merged_name = Printf.sprintf "fmsa_merged_%s" base.Ir.name in
        let merged_func = parameterize base ~merged_name in
        created := merged_func :: !created;
        List.iter
          (fun ((f : Ir.func), holes) ->
            let thunk = make_thunk f merged_name holes in
            Hashtbl.replace replacements f.name thunk;
            incr merged;
            saved := !saved + Ir.instr_count f - Ir.instr_count thunk)
          members;
        saved := !saved - Ir.instr_count merged_func)
    groups;
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        match Hashtbl.find_opt replacements f.name with
        | Some thunk -> thunk
        | None -> f)
      m.funcs
    @ List.rev !created
  in
  ( { m with funcs },
    {
      groups = !ngroups;
      funcs_merged = !merged;
      instrs_saved = !saved;
      merged_created = List.length !created;
    } )
