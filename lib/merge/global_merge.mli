(** Optimistic global (cross-module) function merging — the [global-merge]
    pass.

    Where {!Merge_functions} needs byte-equal bodies and {!Fmsa} holes only
    immediates within one module, this strategy ({!Merge.global_policy})
    also holes address-constant operands and direct call targets, and
    merges across module boundaries.  The protocol borrows thin-WPO's
    summary-exchange shape: a parallel round of body-free fingerprint
    summaries, a cheap serial round that joins groups optimistically and
    confirms them by recomputing exact keys of grouped members only
    (rolling back fingerprint collisions, unprofitable and singleton
    sub-groups), and a parallel rewrite round.  Output is byte-identical
    for any [workers] value. *)

type stats = {
  groups : int;         (** confirmed merge groups *)
  funcs_merged : int;   (** members rewritten into forwarding thunks *)
  instrs_saved : int;   (** IR instructions eliminated, net of thunks and
                            the created merged functions *)
  merged_created : int; (** shared merged functions added to host modules *)
  rolled_back : int;    (** optimistically grouped members the serial
                            confirmation round rejected *)
}

val run_modules :
  ?workers:int ->
  ?min_instrs:int ->
  ?max_holes:int ->
  ?keep:(Ir.func -> bool) ->
  Ir.modul list ->
  Ir.modul list * stats
(** [min_instrs] defaults to 4, [max_holes] to 6 (the per-function budget
    of differing operands; the register-passed argument limit is enforced
    on top).  [keep] exempts functions (entry points) from merging.
    [workers <= 1] runs the parallel rounds inline. *)

val run_module :
  ?min_instrs:int ->
  ?max_holes:int ->
  ?keep:(Ir.func -> bool) ->
  Ir.modul ->
  Ir.modul * stats
(** Single-module convenience used by the pass manager: in whole-program
    mode the modules were already linked into one, so cross-"module"
    merging degenerates to intra-module merging with the global policy. *)
