(** The MergeFunction baseline (Table I): collapse functions with
    structurally identical bodies (alpha-equivalent values and labels) into
    one, turning the duplicates into tail-call thunks.  On the UberRider app
    this saved less than 0.9% — the point of the row is that IR-level
    identity is far too coarse compared to machine-level repeats.

    A thin instance of the {!Merge} framework under {!Merge.exact_policy};
    output is byte-identical to the pre-refactor pass (enforced against
    {!Merge_reference} by the fuzz lattice). *)

type stats = {
  groups : int;           (** duplicate groups found *)
  funcs_merged : int;     (** functions replaced by thunks *)
  instrs_saved : int;     (** IR instructions eliminated (net of thunks) *)
}

val normalize_key : Ir.func -> string
(** Alpha-normalized rendering of a function body; equal keys = mergeable. *)

val run :
  ?min_instrs:int -> ?keep:(Ir.func -> bool) -> Ir.modul -> Ir.modul * stats
(** [min_instrs] (default 8) skips functions too small for a thunk to pay
    off; [keep f] exempts a function from being turned into a thunk (it may
    still be the canonical representative); defaults to exempting none. *)
