(* The strategy-agnostic core of function merging: one alpha-normalizing
   key builder parameterized on a hole policy, one thunk constructor, and
   one body parameterizer.  The three merge strategies — exact
   [Merge_functions], immediate-holing [Fmsa], and the optimistic
   [Global_merge] — are thin instances over these.

   Byte-compatibility contract: under {!exact_policy} the key is
   byte-identical to the pre-refactor [Merge_functions.normalize_key], and
   under {!fmsa_policy} the key/hole pair and {!parameterize} reproduce
   the pre-refactor [Fmsa] exactly (the fuzz lattice enforces this against
   the frozen copies in [Merge_reference]).  The hole recording order is
   coupled to OCaml's right-to-left evaluation of [add]'s arguments the
   same way the originals were — keep the expression shapes below in sync
   with [parameterize]. *)

type hole =
  | H_imm of int       (* differing immediate: thunk passes [Imm n] *)
  | H_op of Ir.operand (* differing Global/Fn operand: thunk passes it *)
  | H_target of string (* differing direct-call target: thunk passes [Fn g],
                          the merged body calls through the parameter *)

(* Operand sites, named so a policy can decide hole-ability per position.
   Phis, load/store bases, calli callees, retain/release, alloc lengths
   and terminators never hole — holes there would need more plumbing than
   the strategies warrant (same judgement as the original FMSA pass). *)
type site =
  | S_phi
  | S_assign
  | S_binop
  | S_icmp
  | S_load_base
  | S_store_val
  | S_store_base
  | S_calli_fn
  | S_call_arg
  | S_calli_arg
  | S_retain
  | S_release
  | S_alloc_len
  | S_term

type policy = {
  imm_hole : site -> bool;   (* hole an [Imm] at this site? *)
  sym_hole : site -> bool;   (* hole a [Global]/[Fn] operand at this site? *)
  target_hole : bool;        (* hole direct-call targets? *)
}

let exact_policy =
  { imm_hole = (fun _ -> false); sym_hole = (fun _ -> false);
    target_hole = false }

let value_sites = function
  | S_assign | S_binop | S_icmp | S_store_val | S_call_arg | S_calli_arg ->
    true
  | S_phi | S_load_base | S_store_base | S_calli_fn | S_retain | S_release
  | S_alloc_len | S_term ->
    false

let fmsa_policy =
  { imm_hole = value_sites; sym_hole = (fun _ -> false); target_hole = false }

let global_policy =
  { imm_hole = value_sites; sym_hole = value_sites; target_hole = true }

(* Alpha-normalize: rename values in order of first appearance (params
   first), labels likewise, then print; operands the policy holes print
   ["?"] and are recorded in traversal order.  Equal keys = mergeable
   under the policy. *)
let key ~policy (f : Ir.func) =
  let vmap = Hashtbl.create 64 and vnext = ref 0 in
  let lmap = Hashtbl.create 16 and lnext = ref 0 in
  let v x =
    match Hashtbl.find_opt vmap x with
    | Some i -> i
    | None ->
      let i = !vnext in
      incr vnext;
      Hashtbl.replace vmap x i;
      i
  in
  let l x =
    match Hashtbl.find_opt lmap x with
    | Some i -> i
    | None ->
      let i = !lnext in
      incr lnext;
      Hashtbl.replace lmap x i;
      i
  in
  List.iter (fun p -> ignore (v p)) f.Ir.params;
  List.iter (fun (b : Ir.block) -> ignore (l b.label)) f.Ir.blocks;
  let holes = ref [] in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let op site o =
    match o with
    | Ir.V x -> "v" ^ string_of_int (v x)
    | Ir.Imm n ->
      if policy.imm_hole site then begin
        holes := H_imm n :: !holes;
        "?"
      end
      else "#" ^ string_of_int n
    | Ir.Global g ->
      if policy.sym_hole site then begin
        holes := H_op o :: !holes;
        "?"
      end
      else "@" ^ g
    | Ir.Fn g ->
      if policy.sym_hole site then begin
        holes := H_op o :: !holes;
        "?"
      end
      else "&" ^ g
  in
  add "params:%d;" (List.length f.Ir.params);
  List.iter
    (fun (b : Ir.block) ->
      add "L%d:" (l b.label);
      List.iter
        (fun (p : Ir.phi) ->
          add "phi v%d=" (v p.phi_dst);
          List.iter
            (fun (lbl, o) -> add "[L%d %s]" (l lbl) (op S_phi o))
            p.incoming)
        b.phis;
      List.iter
        (fun i ->
          (match Ir.def_of_instr i with
          | Some d -> add "v%d=" (v d)
          | None -> ());
          (match i with
          | Ir.Assign (_, o) -> add "asn %s" (op S_assign o)
          | Ir.Binop (_, o2, a, b2) ->
            let tag =
              match o2 with
              | Ir.Add -> "add"
              | Ir.Sub -> "sub"
              | Ir.Mul -> "mul"
              | Ir.Div -> "div"
              | Ir.And -> "and"
              | Ir.Or -> "or"
              | Ir.Xor -> "xor"
              | Ir.Shl -> "shl"
              | Ir.Lshr -> "lshr"
              | Ir.Ashr -> "ashr"
            in
            add "bin.%s %s %s" tag (op S_binop a) (op S_binop b2)
          | Ir.Icmp (_, c, a, b2) ->
            add "icmp %s %s %s" (Machine.Cond.to_string c) (op S_icmp a)
              (op S_icmp b2)
          | Ir.Load (_, base, off) -> add "ld %s %d" (op S_load_base base) off
          | Ir.Store (x, base, off) ->
            add "st %s %s %d" (op S_store_val x) (op S_store_base base) off
          | Ir.Call (_, fn, args) ->
            if policy.target_hole then begin
              holes := H_target fn :: !holes;
              add "call ?"
            end
            else add "call %s" fn;
            List.iter (fun a -> add " %s" (op S_call_arg a)) args
          | Ir.Call_indirect (_, fn, args) ->
            add "calli %s" (op S_calli_fn fn);
            List.iter (fun a -> add " %s" (op S_calli_arg a)) args
          | Ir.Retain o -> add "retain %s" (op S_retain o)
          | Ir.Release o -> add "release %s" (op S_release o)
          | Ir.Alloc_object (_, meta, size) -> add "alloco %s %d" meta size
          | Ir.Alloc_array (_, n) -> add "alloca %s" (op S_alloc_len n));
          add ";")
        b.instrs;
      (match b.term with
      | Ir.Ret o -> add "ret %s" (op S_term o)
      | Ir.Br lbl -> add "br L%d" (l lbl)
      | Ir.Cond_br (o, a, b2) -> add "cbr %s L%d L%d" (op S_term o) (l a) (l b2)
      | Ir.Unreachable -> add "unreachable");
      add "|")
    f.Ir.blocks;
  (Buffer.contents buf, List.rev !holes)

let fingerprint ~policy f = Content.hash_string (fst (key ~policy f))

(* Rebuild a function body with its holes replaced by fresh parameters,
   in the same traversal order as [key] (the expression shapes mirror
   [key]'s so the side-effect order matches site for site).  A holed
   direct call becomes an indirect call through its target parameter. *)
let parameterize ~policy (f : Ir.func) ~merged_name =
  let next = ref f.Ir.next_value in
  let new_params = ref [] in
  let fresh () =
    let p = !next in
    incr next;
    new_params := p :: !new_params;
    Ir.V p
  in
  let sub site o =
    match o with
    | Ir.Imm _ -> if policy.imm_hole site then fresh () else o
    | Ir.Global _ | Ir.Fn _ -> if policy.sym_hole site then fresh () else o
    | Ir.V _ -> o
  in
  let instr i =
    match i with
    | Ir.Assign (d, o) -> Ir.Assign (d, sub S_assign o)
    | Ir.Binop (d, op, a, b) ->
      Ir.Binop (d, op, sub S_binop a, sub S_binop b)
    | Ir.Icmp (d, c, a, b) -> Ir.Icmp (d, c, sub S_icmp a, sub S_icmp b)
    | Ir.Load (_, _, _) -> i
    | Ir.Store (x, base, off) -> Ir.Store (sub S_store_val x, base, off)
    | Ir.Call (d, fn, args) ->
      if policy.target_hole then begin
        let target = fresh () in
        Ir.Call_indirect (d, target, List.map (sub S_call_arg) args)
      end
      else Ir.Call (d, fn, List.map (sub S_call_arg) args)
    | Ir.Call_indirect (d, fn, args) ->
      Ir.Call_indirect (d, fn, List.map (sub S_calli_arg) args)
    | Ir.Retain _ | Ir.Release _ | Ir.Alloc_object _ | Ir.Alloc_array _ -> i
  in
  let blocks =
    List.map
      (fun (b : Ir.block) -> { b with Ir.instrs = List.map instr b.instrs })
      f.Ir.blocks
  in
  {
    f with
    Ir.name = merged_name;
    params = f.Ir.params @ List.rev !new_params;
    blocks;
    next_value = !next;
  }

(* The operand a thunk passes for each of its holes, in hole order. *)
let extras_of_holes holes =
  List.map
    (function
      | H_imm n -> Ir.Imm n
      | H_op o -> o
      | H_target g -> Ir.Fn g)
    holes

(* One entry block: forward the original parameters (plus the hole
   operands) to [target] and return its result. *)
let make_thunk (f : Ir.func) ~target extras =
  let ret = f.Ir.next_value in
  let args = List.map (fun p -> Ir.V p) f.Ir.params @ extras in
  {
    f with
    Ir.blocks =
      [
        {
          Ir.label = "entry";
          phis = [];
          instrs = [ Ir.Call (Some ret, target, args) ];
          term = Ir.Ret (Ir.V ret);
        };
      ];
    next_value = ret + 1;
  }

(* Fault injection for [sizeopt fuzz --self-test]: the global merger's
   serial decision round exists to reject optimistic fingerprint groups
   whose members do not actually share a key.  Honest 64-bit FNV
   fingerprints essentially never collide, so the fault both truncates
   fingerprints to 6 bits (manufacturing the collisions the rollback is
   there to absorb) and drops the rollback itself — an optimistic merge
   that survives global rejection.  The merge lattice points must catch
   the corruption. *)
let fault_drop_rollback = ref false
