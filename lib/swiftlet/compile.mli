(** Front-end driver: source text to a MIR module. *)

val compile_module :
  ?externals:(string * Sigs.fsig) list ->
  name:string ->
  string ->
  (Ir.modul, string) result
(** Parse, type-check and lower one module. *)

val signatures_of :
  name:string -> string -> ((string * Sigs.fsig) list, string) result
(** Exported free-function signatures of one module, in declaration order —
    exactly the externals {!compile_program} feeds every *other* module.
    Exposed so callers that cache per-module front-end results (the serve
    daemon) can key them on (own source, other modules' signatures). *)

val compile_program :
  (string * string) list ->
  (Ir.modul list, string) result
(** Compile a list of (module name, source) pairs.  Free functions of every
    module are visible to all modules (mutual imports); classes stay
    module-local. *)
