let error_global = "swift_error"

(* Module-level lowering state. *)
type lctx = {
  env : Sigs.t;
  module_name : string;
  decls : (string, Ast.func_decl) Hashtbl.t;
  defined : (string, unit) Hashtbl.t;        (* symbols defined in this module *)
  called : (string, unit) Hashtbl.t;         (* symbols referenced *)
  mutable extra_funcs : Ir.func list;        (* lifted closures, specializations *)
  mutable clos_counter : int;
  mutable spec_counter : int;
  fn_thunks : (string, string) Hashtbl.t;    (* function-as-value wrappers *)
}

type binding = {
  op : Ir.operand;
  ty : Ast.ty;
  owned : bool;
}

type venv = (string * binding) list

(* Per-function lowering state. *)
type fctx = {
  l : lctx;
  b : Builder.t;
  fn_name : string;
  throws : bool;
  init_info : (Sigs.class_info * Ir.operand) option;  (* class, self *)
  mutable err_edges : (string * int) list;   (* init: pred label, #ref assigns done *)
  mutable ref_assign_offsets : int list;     (* init: offsets in assignment order, reversed *)
  mutable rethrow_label : string option;     (* plain throwing functions *)
  mutable fail_label : string option;        (* shared bounds-failure block *)
  mutable phi_patches : (string * Ir.value * (string * Ir.operand)) list;
  spec_depth : int;
}

let meta_symbol lctx cls = Printf.sprintf "%s_meta_%s" lctx.module_name cls

let note_call fctx name = Hashtbl.replace fctx.l.called name ()

let lookup_binding venv name = List.assoc_opt name venv

let set_binding venv name b =
  (name, b) :: List.remove_assoc name venv

(* --- bounds-failure and rethrow blocks ----------------------------------- *)

let bounds_fail_label fctx =
  match fctx.fail_label with
  | Some l -> l
  | None ->
    let l = Builder.fresh_label fctx.b "bounds_fail" in
    fctx.fail_label <- Some l;
    l

let rethrow_target fctx ~n_ref_assigns_so_far =
  match fctx.init_info with
  | Some _ ->
    (* Error edges in initializers go to the cleanup block L; the caller
       records the edge itself (it needs the pred label). *)
    ignore n_ref_assigns_so_far;
    "cleanup_L"
  | None -> (
    match fctx.rethrow_label with
    | Some l -> l
    | None ->
      let l = Builder.fresh_label fctx.b "rethrow" in
      fctx.rethrow_label <- Some l;
      l)

(* --- expressions ---------------------------------------------------------- *)

let binop_map : (Ast.binop * Ir.binop) list =
  [
    (Ast.Add, Ir.Add); (Ast.Sub, Ir.Sub); (Ast.Mul, Ir.Mul); (Ast.Div, Ir.Div);
    (Ast.BAnd, Ir.And); (Ast.BOr, Ir.Or); (Ast.BXor, Ir.Xor);
    (Ast.Shl, Ir.Shl); (Ast.Shr, Ir.Ashr);
  ]

let cmp_map : (Ast.binop * Machine.Cond.t) list =
  [
    (Ast.Eq, Machine.Cond.Eq); (Ast.Ne, Machine.Cond.Ne);
    (Ast.Lt, Machine.Cond.Lt); (Ast.Le, Machine.Cond.Le);
    (Ast.Gt, Machine.Cond.Gt); (Ast.Ge, Machine.Cond.Ge);
  ]

let class_of_ty env = function
  | Ast.T_class c -> (
    match Sigs.lookup_class env c with
    | Some ci -> ci
    | None -> invalid_arg ("Lower: unknown class " ^ c))
  | t -> invalid_arg (Format.asprintf "Lower: expected class, got %a" Ast.pp_ty t)

(* Syntactically assigned variables, for loop phi placement. *)
let rec assigned_in_stmts acc stmts = List.fold_left assigned_in_stmt acc stmts

and assigned_in_stmt acc = function
  | Ast.Assign (Ast.L_var v, _) -> if List.mem v acc then acc else v :: acc
  | Ast.Assign ((Ast.L_field _ | Ast.L_index _), _) -> acc
  | Ast.If (_, a, b) -> assigned_in_stmts (assigned_in_stmts acc a) b
  | Ast.While (_, b) -> assigned_in_stmts acc b
  | Ast.For (_, _, _, b) -> assigned_in_stmts acc b
  | Ast.Let _ | Ast.Return _ | Ast.Throw | Ast.Print _ | Ast.Expr_stmt _ -> acc

(* Free variables of an expression/stmt list (for closure capture). *)
let rec free_expr bound acc = function
  | Ast.Int_lit _ | Ast.Bool_lit _ -> acc
  | Ast.Var v -> if List.mem v bound || List.mem v acc then acc else v :: acc
  | Ast.Binop (_, a, b) -> free_expr bound (free_expr bound acc a) b
  | Ast.Neg a | Ast.Not a | Ast.Try a | Ast.Try_opt a | Ast.Array_make a
  | Ast.Array_len a ->
    free_expr bound acc a
  | Ast.Call (_, args) -> List.fold_left (free_expr bound) acc args
  | Ast.Call_expr (f, args) -> List.fold_left (free_expr bound) (free_expr bound acc f) args
  | Ast.Method_call (r, _, args) -> List.fold_left (free_expr bound) (free_expr bound acc r) args
  | Ast.Field (r, _) -> free_expr bound acc r
  | Ast.Index (a, i) -> free_expr bound (free_expr bound acc a) i
  | Ast.Closure (ps, body) ->
    let bound' = List.map fst ps @ bound in
    free_stmts bound' acc body

and free_stmts bound acc stmts =
  let bound = ref bound and acc = ref acc in
  List.iter
    (fun s ->
      match s with
      | Ast.Let (v, _, e) ->
        acc := free_expr !bound !acc e;
        bound := v :: !bound
      | Ast.Assign (lv, e) ->
        (match lv with
        | Ast.L_var v -> if not (List.mem v !bound) && not (List.mem v !acc) then acc := v :: !acc
        | Ast.L_field (r, _) -> acc := free_expr !bound !acc r
        | Ast.L_index (a, i) -> acc := free_expr !bound (free_expr !bound !acc a) i);
        acc := free_expr !bound !acc e
      | Ast.If (c, a, b) ->
        acc := free_expr !bound !acc c;
        acc := free_stmts !bound !acc a;
        acc := free_stmts !bound !acc b
      | Ast.While (c, b) ->
        acc := free_expr !bound !acc c;
        acc := free_stmts !bound !acc b
      | Ast.For (v, lo, hi, b) ->
        acc := free_expr !bound (free_expr !bound !acc lo) hi;
        acc := free_stmts (v :: !bound) !acc b
      | Ast.Return (Some e) | Ast.Print e | Ast.Expr_stmt e ->
        acc := free_expr !bound !acc e
      | Ast.Return None | Ast.Throw -> ())
    stmts;
  !acc

let rec lower_expr (f : fctx) (venv : venv) (e : Ast.expr) : Ir.operand * Ast.ty =
  match e with
  | Ast.Int_lit n -> (Ir.Imm n, Ast.T_int)
  | Ast.Bool_lit b -> (Ir.Imm (if b then 1 else 0), Ast.T_bool)
  | Ast.Var name -> (
    match lookup_binding venv name with
    | Some b -> (b.op, b.ty)
    | None -> (
      (* A function used as a value: wrap in a closure object so that all
         indirect calls share one convention. *)
      match Sigs.lookup_func f.l.env name with
      | Some fs ->
        let thunk = fn_value_thunk f name fs in
        let c = Builder.alloc_array f.b (Ir.Imm 1) in
        Builder.store f.b (Ir.Fn thunk) (Ir.V c) 16;
        (Ir.V c, Ast.T_func (fs.fs_params, fs.fs_ret))
      | None -> invalid_arg ("Lower: unknown variable " ^ name)))
  | Ast.Binop (op, a, bb) -> lower_binop f venv op a bb
  | Ast.Neg a ->
    let va, _ = lower_expr f venv a in
    (Ir.V (Builder.binop f.b Ir.Sub (Ir.Imm 0) va), Ast.T_int)
  | Ast.Not a ->
    let va, _ = lower_expr f venv a in
    (Ir.V (Builder.binop f.b Ir.Xor va (Ir.Imm 1)), Ast.T_bool)
  | Ast.Call (name, args) -> lower_call f venv name args ~try_kind:`No
  | Ast.Call_expr (fn, args) -> (
    let fop, fty = lower_expr f venv fn in
    let rty =
      match fty with
      | Ast.T_func (_, r) -> r
      | _ -> invalid_arg "Lower: calling a non-function value"
    in
    let argvals = List.map (fun a -> fst (lower_expr f venv a)) args in
    match fop with
    | Ir.V _ | Ir.Global _ ->
      let fnptr = Builder.load f.b fop 16 in
      let r = Builder.fresh f.b in
      Builder.instr f.b (Ir.Call_indirect (Some r, Ir.V fnptr, fop :: argvals));
      (Ir.V r, rty)
    | Ir.Fn _ | Ir.Imm _ -> invalid_arg "Lower: bad function value")
  | Ast.Method_call (recv, m, args) ->
    let rv, rty = lower_expr f venv recv in
    let ci = class_of_ty f.l.env rty in
    let mangled = Sigs.mangle_method ci.ci_name m in
    note_call f mangled;
    let argvals = List.map (fun a -> fst (lower_expr f venv a)) args in
    let fs =
      match Sigs.lookup_func f.l.env mangled with
      | Some fs -> fs
      | None -> invalid_arg ("Lower: unknown method " ^ mangled)
    in
    let r = Builder.call f.b mangled (rv :: argvals) in
    (Ir.V r, fs.fs_ret)
  | Ast.Field (recv, field) ->
    let rv, rty = lower_expr f venv recv in
    let ci = class_of_ty f.l.env rty in
    let off =
      match Sigs.field_offset ci field with
      | Some o -> o
      | None -> invalid_arg ("Lower: unknown field " ^ field)
    in
    let fty = Option.get (Sigs.field_type ci field) in
    (Ir.V (Builder.load f.b rv off), fty)
  | Ast.Index (a, i) ->
    let av, _ = lower_expr f venv a in
    let iv, _ = lower_expr f venv i in
    let addr = checked_element_address f av iv in
    (Ir.V (Builder.load f.b (Ir.V addr) 0), Ast.T_int)
  | Ast.Array_make n ->
    let nv, _ = lower_expr f venv n in
    note_call f "swift_allocArray";
    (Ir.V (Builder.alloc_array f.b nv), Ast.T_array)
  | Ast.Array_len a ->
    let av, _ = lower_expr f venv a in
    (Ir.V (Builder.load f.b av 8), Ast.T_int)
  | Ast.Try inner -> (
    match inner with
    | Ast.Call (name, args) -> lower_call f venv name args ~try_kind:`Propagate
    | _ -> invalid_arg "Lower: try must wrap a call")
  | Ast.Try_opt inner -> (
    match inner with
    | Ast.Call (name, args) -> lower_call f venv name args ~try_kind:`Optional
    | _ -> invalid_arg "Lower: try? must wrap a call")
  | Ast.Closure (params, body) -> lower_closure f venv params body

and lower_binop f venv op a bb =
  match List.assoc_opt op binop_map with
  | Some irop ->
    let va, _ = lower_expr f venv a in
    let vb, _ = lower_expr f venv bb in
    (Ir.V (Builder.binop f.b irop va vb), Ast.T_int)
  | None -> (
    match List.assoc_opt op cmp_map with
    | Some cond ->
      let va, _ = lower_expr f venv a in
      let vb, _ = lower_expr f venv bb in
      (Ir.V (Builder.icmp f.b cond va vb), Ast.T_bool)
    | None -> (
      match op with
      | Ast.Mod ->
        let va, _ = lower_expr f venv a in
        let vb, _ = lower_expr f venv bb in
        let q = Builder.binop f.b Ir.Div va vb in
        let p = Builder.binop f.b Ir.Mul (Ir.V q) vb in
        (Ir.V (Builder.binop f.b Ir.Sub va (Ir.V p)), Ast.T_int)
      | Ast.LAnd | Ast.LOr ->
        (* Short circuit: a && b  ==  if a then b else false. *)
        let va, _ = lower_expr f venv a in
        let l_from = Builder.current_label f.b in
        let rhs_l = Builder.fresh_label f.b "sc_rhs" in
        let join_l = Builder.fresh_label f.b "sc_join" in
        let short_circuit_value = if op = Ast.LAnd then 0 else 1 in
        (if op = Ast.LAnd then
           Builder.terminate f.b (Ir.Cond_br (va, rhs_l, join_l))
         else Builder.terminate f.b (Ir.Cond_br (va, join_l, rhs_l)));
        Builder.start_block f.b rhs_l;
        let vb, _ = lower_expr f venv bb in
        let rhs_end = Builder.current_label f.b in
        Builder.terminate f.b (Ir.Br join_l);
        Builder.start_block f.b join_l;
        let dst = Builder.fresh f.b in
        Builder.add_phi f.b dst
          [ (l_from, Ir.Imm short_circuit_value); (rhs_end, vb) ];
        (Ir.V dst, Ast.T_bool)
      | _ -> invalid_arg "Lower: unhandled binop"))

(* Bounds-checked address of a[i]; shares the function's failure block. *)
and checked_element_address f av iv =
  note_call f "swift_bounds_fail";
  let len = Builder.load f.b av 8 in
  let ok1 = Builder.icmp f.b Machine.Cond.Ge iv (Ir.Imm 0) in
  let fail_l = bounds_fail_label f in
  let mid_l = Builder.fresh_label f.b "idx_ok1_" in
  Builder.terminate f.b (Ir.Cond_br (Ir.V ok1, mid_l, fail_l));
  Builder.start_block f.b mid_l;
  let ok2 = Builder.icmp f.b Machine.Cond.Lt iv (Ir.V len) in
  let cont_l = Builder.fresh_label f.b "idx_ok2_" in
  Builder.terminate f.b (Ir.Cond_br (Ir.V ok2, cont_l, fail_l));
  Builder.start_block f.b cont_l;
  let scaled = Builder.binop f.b Ir.Shl iv (Ir.Imm 3) in
  let off = Builder.binop f.b Ir.Add (Ir.V scaled) (Ir.Imm 16) in
  (* av + off *)
  let addr_base =
    match av with
    | Ir.V v -> Ir.V v
    | other -> Ir.V (Builder.assign f.b other)
  in
  Builder.binop f.b Ir.Add addr_base (Ir.V off)

and fn_value_thunk f name (fs : Sigs.fsig) =
  match Hashtbl.find_opt f.l.fn_thunks name with
  | Some t -> t
  | None ->
    (* Thunks are emitted per referencing module; qualify the symbol so two
       modules taking the same function's value don't collide at link time
       (found by the differential fuzzer). *)
    let thunk_name = name ^ "_fnthunk_" ^ f.l.module_name in
    Hashtbl.replace f.l.fn_thunks name thunk_name;
    Hashtbl.replace f.l.defined thunk_name ();
    note_call f name;
    let nparams = 1 + List.length fs.fs_params in
    let b = Builder.create ~name:thunk_name ~from_module:f.l.module_name ~nparams () in
    let params = Builder.params b in
    let args = List.map (fun p -> Ir.V p) (List.tl params) in
    let r = Builder.call b name args in
    Builder.terminate b (Ir.Ret (Ir.V r));
    f.l.extra_funcs <- Builder.finish b :: f.l.extra_funcs;
    thunk_name

(* Calls, including throwing calls and constructor calls. *)
and lower_call f venv name args ~try_kind =
  let fs =
    match Sigs.lookup_func f.l.env name with
    | Some fs -> Some fs
    | None -> None
  in
  match fs with
  | None -> (
    (* Calling a local function-typed variable. *)
    match lookup_binding venv name with
    | Some { op; ty = Ast.T_func (_, r); _ } ->
      let argvals = List.map (fun a -> fst (lower_expr f venv a)) args in
      let fnptr = Builder.load f.b op 16 in
      let res = Builder.fresh f.b in
      Builder.instr f.b (Ir.Call_indirect (Some res, Ir.V fnptr, op :: argvals));
      (Ir.V res, r)
    | Some _ | None -> invalid_arg ("Lower: unknown function " ^ name))
  | Some fs -> (
    (* Specialization: calls passing closure literals to module-local
       functions get their own clone of the callee (Listing 9's blow-up). *)
    let name =
      if
        f.spec_depth < 2
        && Hashtbl.mem f.l.decls name
        && List.exists (function Ast.Closure _ -> true | _ -> false) args
      then specialize_callee f name
      else name
    in
    let is_ctor = Sigs.lookup_class f.l.env name <> None in
    let argvals = List.map (fun a -> fst (lower_expr f venv a)) args in
    let target = if is_ctor then name ^ "_ctor" else name in
    note_call f target;
    let r = Builder.call f.b target argvals in
    let result = Ir.V r in
    match try_kind with
    | `No -> (result, fs.fs_ret)
    | `Propagate ->
      (* err -> init cleanup / rethrow block. *)
      let err = Builder.load f.b (Ir.Global error_global) 0 in
      (match f.init_info with
      | Some _ ->
        let err_l = Builder.fresh_label f.b "try_err" in
        let cont_l = Builder.fresh_label f.b "try_ok" in
        Builder.terminate f.b (Ir.Cond_br (Ir.V err, err_l, cont_l));
        Builder.start_block f.b err_l;
        f.err_edges <- (err_l, List.length f.ref_assign_offsets) :: f.err_edges;
        Builder.terminate f.b (Ir.Br "cleanup_L");
        Builder.start_block f.b cont_l
      | None ->
        let rt = rethrow_target f ~n_ref_assigns_so_far:0 in
        let cont_l = Builder.fresh_label f.b "try_ok" in
        Builder.terminate f.b (Ir.Cond_br (Ir.V err, rt, cont_l));
        Builder.start_block f.b cont_l);
      (result, fs.fs_ret)
    | `Optional ->
      let err = Builder.load f.b (Ir.Global error_global) 0 in
      let eb = Builder.fresh_label f.b "tryq_err" in
      let okb = Builder.fresh_label f.b "tryq_ok" in
      let join = Builder.fresh_label f.b "tryq_join" in
      Builder.terminate f.b (Ir.Cond_br (Ir.V err, eb, okb));
      Builder.start_block f.b eb;
      Builder.store f.b (Ir.Imm 0) (Ir.Global error_global) 0;
      Builder.terminate f.b (Ir.Br join);
      Builder.start_block f.b okb;
      Builder.terminate f.b (Ir.Br join);
      Builder.start_block f.b join;
      let dst = Builder.fresh f.b in
      Builder.add_phi f.b dst [ (eb, Ir.Imm 0); (okb, result) ];
      (Ir.V dst, fs.fs_ret))

and specialize_callee f name =
  let fd = Hashtbl.find f.l.decls name in
  f.l.spec_counter <- f.l.spec_counter + 1;
  let spec_name = Printf.sprintf "%s_spec%d" name f.l.spec_counter in
  Hashtbl.replace f.l.defined spec_name ();
  (* Register the callee signature under the clone's name. *)
  (match Sigs.lookup_func f.l.env name with
  | Some fs -> Hashtbl.replace f.l.env.Sigs.funcs spec_name fs
  | None -> ());
  let clone = { fd with Ast.fd_name = spec_name } in
  let lowered = lower_free_func f.l ~spec_depth:(f.spec_depth + 1) clone in
  f.l.extra_funcs <- lowered @ f.l.extra_funcs;
  spec_name

and lower_closure f venv params body =
  let bound = List.map fst params in
  let frees = free_stmts bound [] body in
  (* Capture only names bound in the current venv (globals/functions are
     resolved by name inside the lifted body). *)
  let captures =
    List.filter_map
      (fun v -> match lookup_binding venv v with Some b -> Some (v, b) | None -> None)
      frees
  in
  f.l.clos_counter <- f.l.clos_counter + 1;
  let lifted_name = Printf.sprintf "%s_clos%d" f.fn_name f.l.clos_counter in
  Hashtbl.replace f.l.defined lifted_name ();
  (* Lift: params are (env, closure params...). *)
  let nparams = 1 + List.length params in
  let lb = Builder.create ~name:lifted_name ~from_module:f.l.module_name ~nparams () in
  let lf =
    {
      l = f.l;
      b = lb;
      fn_name = lifted_name;
      throws = false;
      init_info = None;
      err_edges = [];
      ref_assign_offsets = [];
      rethrow_label = None;
      fail_label = None;
      phi_patches = [];
      spec_depth = f.spec_depth;
    }
  in
  let env_param, rest_params =
    match Builder.params lb with
    | e :: rest -> (e, rest)
    | [] -> assert false
  in
  let venv0 =
    List.map2
      (fun (pname, pty) pval -> (pname, { op = Ir.V pval; ty = pty; owned = false }))
      params rest_params
  in
  (* Load captures from the environment object. *)
  let venv1, _ =
    List.fold_left
      (fun (acc, i) (cname, (cb : binding)) ->
        let v = Builder.load lb (Ir.V env_param) (24 + (8 * i)) in
        ((cname, { op = Ir.V v; ty = cb.ty; owned = false }) :: acc, i + 1))
      (venv0, 0) captures
  in
  (match lower_stmts lf venv1 body with
  | Some _ -> finish_function lf venv1 None
  | None -> ());
  f.l.extra_funcs <- finalize_func lf :: f.l.extra_funcs;
  (* Create the closure object: [rc; len; fnptr; captures...]. *)
  note_call f "swift_allocArray";
  let c = Builder.alloc_array f.b (Ir.Imm (1 + List.length captures)) in
  Builder.store f.b (Ir.Fn lifted_name) (Ir.V c) 16;
  List.iteri
    (fun i (_, (cb : binding)) ->
      if Ast.is_ref_type cb.ty then Builder.retain f.b cb.op;
      Builder.store f.b cb.op (Ir.V c) (24 + (8 * i)))
    captures;
  let ptys = List.map snd params in
  (* Closure results are machine words regardless of their surface type, so
     Int is an adequate return type at this level. *)
  (Ir.V c, Ast.T_func (ptys, Ast.T_int))

(* --- statements ------------------------------------------------------------ *)

(* Returns the venv after the statement, or None if control flow left. *)
and lower_stmt (f : fctx) (venv : venv) (s : Ast.stmt) : venv option =
  match s with
  | Ast.Let (name, _, e) ->
    let op, ty = lower_expr f venv e in
    let owned, op =
      if Ast.is_ref_type ty then begin
        match e with
        | Ast.Var _ | Ast.Field _ ->
          (* Copying an existing reference: retain (Listing 1's source). *)
          Builder.retain f.b op;
          (true, op)
        | _ -> (true, op) (* fresh reference: already +1 *)
      end
      else (false, op)
    in
    (* Bind immediates through a value so later phis have a def. *)
    let op = match op with Ir.Imm _ -> Ir.V (Builder.assign f.b op) | o -> o in
    Some (set_binding venv name { op; ty; owned })
  | Ast.Assign (Ast.L_var name, e) ->
    let op, ty = lower_expr f venv e in
    (if Ast.is_ref_type ty then
       match e with
       | Ast.Var _ | Ast.Field _ -> Builder.retain f.b op
       | _ -> ());
    let op = match op with Ir.Imm _ -> Ir.V (Builder.assign f.b op) | o -> o in
    let owned = Ast.is_ref_type ty in
    Some (set_binding venv name { op; ty; owned })
  | Ast.Assign (Ast.L_field (recv, field), e) ->
    let rv, rty = lower_expr f venv recv in
    let ci = class_of_ty f.l.env rty in
    let off = Option.get (Sigs.field_offset ci field) in
    let fty = Option.get (Sigs.field_type ci field) in
    let ev, _ = lower_expr f venv e in
    if Ast.is_ref_type fty then begin
      Builder.retain f.b ev;
      (* In initializers, record the assignment order of reference fields
         for the cleanup cascade (Figure 9). *)
      match f.init_info with
      | Some (_, self_op) when self_op = rv ->
        f.ref_assign_offsets <- off :: f.ref_assign_offsets
      | Some _ | None -> ()
    end;
    Builder.store f.b ev rv off;
    Some venv
  | Ast.Assign (Ast.L_index (a, i), e) ->
    let av, _ = lower_expr f venv a in
    let iv, _ = lower_expr f venv i in
    let ev, _ = lower_expr f venv e in
    let addr = checked_element_address f av iv in
    Builder.store f.b ev (Ir.V addr) 0;
    Some venv
  | Ast.Print e ->
    let v, _ = lower_expr f venv e in
    note_call f "print_i64";
    Builder.call_void f.b "print_i64" [ v ];
    Some venv
  | Ast.Expr_stmt e ->
    let _ = lower_expr f venv e in
    Some venv
  | Ast.Return eopt ->
    let rv =
      match eopt with
      | Some e -> fst (lower_expr f venv e)
      | None -> Ir.Imm 0
    in
    let keep = match eopt with Some (Ast.Var v) -> Some v | _ -> None in
    finish_function f ?keep venv (Some rv);
    None
  | Ast.Throw ->
    Builder.store f.b (Ir.Imm 1) (Ir.Global error_global) 0;
    (match f.init_info with
    | Some _ ->
      let l = Builder.current_label f.b in
      f.err_edges <- (l, List.length f.ref_assign_offsets) :: f.err_edges;
      Builder.terminate f.b (Ir.Br "cleanup_L")
    | None ->
      let rt = rethrow_target f ~n_ref_assigns_so_far:0 in
      Builder.terminate f.b (Ir.Br rt));
    None
  | Ast.If (c, then_s, else_s) -> lower_if f venv c then_s else_s
  | Ast.While (c, body) ->
    let assigned =
      List.filter (fun v -> lookup_binding venv v <> None) (assigned_in_stmts [] body)
    in
    lower_loop f venv ~assigned
      ~cond:(fun f venv -> fst (lower_expr f venv c))
      ~body:(fun f venv -> lower_scoped_stmts f venv body)
  | Ast.For (v, lo, hi, body) ->
    let lov, _ = lower_expr f venv lo in
    let hiv, _ = lower_expr f venv hi in
    let hiv = match hiv with Ir.Imm _ -> Ir.V (Builder.assign f.b hiv) | o -> o in
    let iv = Builder.assign f.b lov in
    let shadowed_loop_var = lookup_binding venv v in
    let venv = set_binding venv v { op = Ir.V iv; ty = Ast.T_int; owned = false } in
    let assigned =
      v
      :: List.filter (fun x -> lookup_binding venv x <> None) (assigned_in_stmts [] body)
    in
    let result =
      lower_loop f venv ~assigned
        ~cond:(fun f venv ->
          let cur = (Option.get (lookup_binding venv v)).op in
          Ir.V (Builder.icmp f.b Machine.Cond.Lt cur hiv))
        ~body:(fun f venv ->
          match lower_scoped_stmts f venv body with
          | None -> None
          | Some venv' ->
            let cur = (Option.get (lookup_binding venv' v)).op in
            let nxt = Builder.binop f.b Ir.Add cur (Ir.Imm 1) in
            Some (set_binding venv' v { op = Ir.V nxt; ty = Ast.T_int; owned = false }))
    in
    (* The loop variable goes out of scope; a shadowed outer binding
       reappears. *)
    Option.map
      (fun ve ->
        match shadowed_loop_var with
        | Some b -> set_binding ve v b
        | None -> List.remove_assoc v ve)
      result

and lower_stmts f venv stmts =
  List.fold_left
    (fun acc s -> match acc with None -> None | Some venv -> lower_stmt f venv s)
    (Some venv) stmts

(* A nested block scope: names introduced by top-level [let]s inside it
   revert to their previous binding (or vanish) on exit, while mutations of
   pre-existing names persist. *)
and lower_scoped_stmts f venv stmts =
  let let_names =
    List.filter_map (function Ast.Let (n, _, _) -> Some n | _ -> None) stmts
    |> List.sort_uniq String.compare
  in
  let saved = List.map (fun n -> (n, lookup_binding venv n)) let_names in
  match lower_stmts f venv stmts with
  | None -> None
  | Some venv' ->
    Some
      (List.fold_left
         (fun acc (n, prev) ->
           match prev with
           | Some b -> set_binding acc n b
           | None -> List.remove_assoc n acc)
         venv' saved)

and lower_if f venv c then_s else_s =
  let cv, _ = lower_expr f venv c in
  let then_l = Builder.fresh_label f.b "if_then" in
  let else_l = Builder.fresh_label f.b "if_else" in
  let join_l = Builder.fresh_label f.b "if_join" in
  Builder.terminate f.b (Ir.Cond_br (cv, then_l, else_l));
  Builder.start_block f.b then_l;
  let then_res = lower_scoped_stmts f venv then_s in
  let then_end =
    match then_res with
    | Some _ ->
      let l = Builder.current_label f.b in
      Builder.terminate f.b (Ir.Br join_l);
      Some l
    | None -> None
  in
  Builder.start_block f.b else_l;
  let else_res = lower_scoped_stmts f venv else_s in
  let else_end =
    match else_res with
    | Some _ ->
      let l = Builder.current_label f.b in
      Builder.terminate f.b (Ir.Br join_l);
      Some l
    | None -> None
  in
  (* Only names from the pre-branch scope survive the join; branch-local
     lets must not leak (their definitions do not dominate the join). *)
  let restrict ve =
    List.filter_map
      (fun (name, _) -> Option.map (fun b -> (name, b)) (List.assoc_opt name ve))
      venv
  in
  match (then_res, then_end, else_res, else_end) with
  | None, _, None, _ -> None
  | Some ve, Some _, None, _ ->
    Builder.start_block f.b join_l;
    Some (restrict ve)
  | None, _, Some ve, Some _ ->
    Builder.start_block f.b join_l;
    Some (restrict ve)
  | Some ve_t, Some end_t, Some ve_e, Some end_e ->
    Builder.start_block f.b join_l;
    (* Merge bindings that differ with phis. *)
    let merged =
      List.map
        (fun (name, (bt : binding)) ->
          match List.assoc_opt name ve_e with
          | Some (be : binding) when be.op <> bt.op ->
            let dst = Builder.fresh f.b in
            Builder.add_phi f.b dst [ (end_t, bt.op); (end_e, be.op) ];
            (name, { bt with op = Ir.V dst })
          | Some _ | None -> (name, bt))
        (restrict ve_t)
    in
    Some merged
  | Some _, None, _, _ | _, _, Some _, None -> assert false

(* Generic loop skeleton with header phis for assigned variables. *)
and lower_loop f venv ~assigned ~cond ~body =
  let pre_l = Builder.current_label f.b in
  let header_l = Builder.fresh_label f.b "loop_head" in
  let body_l = Builder.fresh_label f.b "loop_body" in
  let exit_l = Builder.fresh_label f.b "loop_exit" in
  Builder.terminate f.b (Ir.Br header_l);
  Builder.start_block f.b header_l;
  (* One phi per assigned variable. *)
  let phis =
    List.map
      (fun name ->
        let b0 = Option.get (lookup_binding venv name) in
        let dst = Builder.fresh f.b in
        Builder.add_phi f.b dst [ (pre_l, b0.op) ];
        (name, b0, dst))
      assigned
  in
  let venv_h =
    List.fold_left
      (fun acc (name, (b0 : binding), dst) ->
        set_binding acc name { b0 with op = Ir.V dst })
      venv phis
  in
  let cv = cond f venv_h in
  Builder.terminate f.b (Ir.Cond_br (cv, body_l, exit_l));
  Builder.start_block f.b body_l;
  (match body f venv_h with
  | Some venv_b ->
    let back_l = Builder.current_label f.b in
    Builder.terminate f.b (Ir.Br header_l);
    (* Patch the header phis with the back edge values. *)
    List.iter
      (fun (name, _, dst) ->
        let bb = Option.get (lookup_binding venv_b name) in
        f.phi_patches <- (header_l, dst, (back_l, bb.op)) :: f.phi_patches)
      phis
  | None -> ());
  Builder.start_block f.b exit_l;
  Some venv_h

(* Emit releases of owned locals, the error-flag convention, and the return. *)
and finish_function f ?keep venv ret =
  List.iter
    (fun (name, (b : binding)) ->
      if b.owned && Ast.is_ref_type b.ty && Some name <> keep then
        Builder.release f.b b.op)
    venv;
  if f.throws then Builder.store f.b (Ir.Imm 0) (Ir.Global error_global) 0;
  let rv = match ret with Some v -> v | None -> Ir.Imm 0 in
  Builder.terminate f.b (Ir.Ret rv)

(* Apply recorded phi patches and emit deferred blocks, then finish. *)
and finalize_func (f : fctx) =
  (* Bounds-failure block. *)
  (match f.fail_label with
  | Some l ->
    Builder.start_block f.b l;
    Builder.call_void f.b "swift_bounds_fail" [];
    Builder.terminate f.b Ir.Unreachable
  | None -> ());
  (* Rethrow block for plain throwing functions. *)
  (match f.rethrow_label with
  | Some l ->
    Builder.start_block f.b l;
    Builder.terminate f.b (Ir.Ret (Ir.Imm 0))
  | None -> ());
  (* Initializer cleanup block L with the per-property Init-flag phis. *)
  (match f.init_info with
  | Some (_, self_op) when f.err_edges <> [] ->
    let offsets = List.rev f.ref_assign_offsets in
    let n = List.length offsets in
    Builder.start_block f.b "cleanup_L";
    let flags =
      List.mapi
        (fun k _off ->
          let dst = Builder.fresh f.b in
          Builder.add_phi f.b dst
            (List.rev_map
               (fun (pred, count) -> (pred, Ir.Imm (if k < count then 1 else 0)))
               f.err_edges);
          dst)
        offsets
    in
    (* Conditional release cascade, one check per flag (Figure 9, lower
       half). *)
    List.iteri
      (fun k off ->
        let rel_l = Builder.fresh_label f.b "cleanup_rel" in
        let next_l =
          if k = n - 1 then "cleanup_done" else Printf.sprintf "cleanup_chk%d" (k + 1)
        in
        Builder.terminate f.b (Ir.Cond_br (Ir.V (List.nth flags k), rel_l, next_l));
        Builder.start_block f.b rel_l;
        let fv = Builder.load f.b self_op off in
        Builder.release f.b (Ir.V fv);
        Builder.terminate f.b (Ir.Br next_l);
        Builder.start_block f.b next_l)
      offsets;
    if n = 0 then ();
    Builder.terminate f.b (Ir.Ret (Ir.Imm 0))
  | Some _ | None -> ());
  let fn = Builder.finish f.b in
  (* Apply loop phi back-edge patches. *)
  if f.phi_patches = [] then fn
  else
    let blocks =
      List.map
        (fun (blk : Ir.block) ->
          let extra =
            List.filter (fun (l, _, _) -> l = blk.label) f.phi_patches
          in
          if extra = [] then blk
          else
            {
              blk with
              Ir.phis =
                List.map
                  (fun (p : Ir.phi) ->
                    let additions =
                      List.filter_map
                        (fun (_, dst, edge) -> if dst = p.phi_dst then Some edge else None)
                        extra
                    in
                    { p with incoming = p.incoming @ additions })
                  blk.phis;
            })
        fn.Ir.blocks
    in
    { fn with blocks }

(* --- functions and modules -------------------------------------------------- *)

and make_fctx lctx b ~fn_name ~throws ~init_info ~spec_depth =
  {
    l = lctx;
    b;
    fn_name;
    throws;
    init_info;
    err_edges = [];
    ref_assign_offsets = [];
    rethrow_label = None;
    fail_label = None;
    phi_patches = [];
    spec_depth;
  }

and lower_free_func lctx ?(spec_depth = 0) (fd : Ast.func_decl) : Ir.func list =
  let nparams = List.length fd.fd_params in
  let b = Builder.create ~name:fd.fd_name ~from_module:lctx.module_name ~nparams () in
  let f = make_fctx lctx b ~fn_name:fd.fd_name ~throws:fd.fd_throws ~init_info:None ~spec_depth in
  let venv =
    List.map2
      (fun (pname, pty) pv -> (pname, { op = Ir.V pv; ty = pty; owned = false }))
      fd.fd_params (Builder.params b)
  in
  (match lower_stmts f venv fd.fd_body with
  | Some venv' -> finish_function f venv' None
  | None -> ());
  [ finalize_func f ]

and lower_method lctx ci (fd : Ast.func_decl) : Ir.func list =
  let mangled = Sigs.mangle_method ci.Sigs.ci_name fd.fd_name in
  let nparams = 1 + List.length fd.fd_params in
  let b = Builder.create ~name:mangled ~from_module:lctx.module_name ~nparams () in
  let f = make_fctx lctx b ~fn_name:mangled ~throws:false ~init_info:None ~spec_depth:0 in
  let self_v, param_vs =
    match Builder.params b with
    | s :: rest -> (s, rest)
    | [] -> assert false
  in
  let venv =
    ("self", { op = Ir.V self_v; ty = Ast.T_class ci.Sigs.ci_name; owned = false })
    :: List.map2
         (fun (pname, pty) pv -> (pname, { op = Ir.V pv; ty = pty; owned = false }))
         fd.fd_params param_vs
  in
  (match lower_stmts f venv fd.fd_body with
  | Some venv' -> finish_function f venv' None
  | None -> ());
  [ finalize_func f ]

and lower_init lctx ci (init : Ast.func_decl) : Ir.func list =
  let init_name = Sigs.mangle_init ci.Sigs.ci_name in
  let nparams = 1 + List.length init.fd_params in
  let b = Builder.create ~name:init_name ~from_module:lctx.module_name ~nparams () in
  let self_v, param_vs =
    match Builder.params b with
    | s :: rest -> (s, rest)
    | [] -> assert false
  in
  let f =
    make_fctx lctx b ~fn_name:init_name ~throws:init.fd_throws
      ~init_info:(Some (ci, Ir.V self_v)) ~spec_depth:0
  in
  let venv =
    ("self", { op = Ir.V self_v; ty = Ast.T_class ci.Sigs.ci_name; owned = false })
    :: List.map2
         (fun (pname, pty) pv -> (pname, { op = Ir.V pv; ty = pty; owned = false }))
         init.fd_params param_vs
  in
  (match lower_stmts f venv init.fd_body with
  | Some venv' -> finish_function f venv' None
  | None -> ());
  [ finalize_func f ]

(* The constructor: allocate, run init, handle a throwing init's error. *)
and lower_ctor lctx ci throws nparams : Ir.func =
  let ctor_name = ci.Sigs.ci_name ^ "_ctor" in
  let b = Builder.create ~name:ctor_name ~from_module:lctx.module_name ~nparams () in
  let params = Builder.params b in
  let self = Builder.alloc_object b (meta_symbol lctx ci.Sigs.ci_name) (Sigs.object_size ci) in
  (match ci.Sigs.ci_init with
  | Some _ ->
    Builder.call_void b (Sigs.mangle_init ci.Sigs.ci_name)
      (Ir.V self :: List.map (fun p -> Ir.V p) params);
    if throws then begin
      let err = Builder.load b (Ir.Global error_global) 0 in
      let errb = Builder.fresh_label b "ctor_err" in
      let okb = Builder.fresh_label b "ctor_ok" in
      Builder.terminate b (Ir.Cond_br (Ir.V err, errb, okb));
      Builder.start_block b errb;
      Builder.release b (Ir.V self);
      Builder.terminate b (Ir.Ret (Ir.Imm 0));
      Builder.start_block b okb;
      Builder.terminate b (Ir.Ret (Ir.V self))
    end
    else Builder.terminate b (Ir.Ret (Ir.V self))
  | None -> Builder.terminate b (Ir.Ret (Ir.V self)));
  Builder.finish b

let lower_module env (m : Ast.module_ast) : Ir.modul =
  let decls = Hashtbl.create 64 in
  let defined = Hashtbl.create 64 in
  List.iter
    (fun d ->
      match d with
      | Ast.D_func fd ->
        Hashtbl.replace decls fd.fd_name fd;
        Hashtbl.replace defined fd.fd_name ()
      | Ast.D_class cd ->
        Hashtbl.replace defined (cd.cd_name ^ "_ctor") ();
        Hashtbl.replace defined (Sigs.mangle_init cd.cd_name) ();
        List.iter
          (fun (md : Ast.func_decl) ->
            Hashtbl.replace defined (Sigs.mangle_method cd.cd_name md.fd_name) ())
          cd.cd_methods)
    m.ma_decls;
  let lctx =
    {
      env;
      module_name = m.ma_name;
      decls;
      defined;
      called = Hashtbl.create 64;
      extra_funcs = [];
      clos_counter = 0;
      spec_counter = 0;
      fn_thunks = Hashtbl.create 8;
    }
  in
  let funcs = ref [] in
  let globals = ref [] in
  List.iter
    (fun d ->
      match d with
      | Ast.D_func fd -> funcs := lower_free_func lctx fd @ !funcs
      | Ast.D_class cd -> (
        let ci = Option.get (Sigs.lookup_class env cd.cd_name) in
        globals :=
          {
            Ir.g_name = meta_symbol lctx cd.cd_name;
            g_init = [ Ir.Gword (Sigs.object_size ci) ];
            g_module = m.ma_name;
          }
          :: !globals;
        let ctor_throws =
          match cd.cd_init with Some i -> i.fd_throws | None -> false
        in
        let nparams =
          match cd.cd_init with Some i -> List.length i.fd_params | None -> 0
        in
        funcs := lower_ctor lctx ci ctor_throws nparams :: !funcs;
        (match cd.cd_init with
        | Some init -> funcs := lower_init lctx ci init @ !funcs
        | None -> ());
        List.iter (fun md -> funcs := lower_method lctx ci md @ !funcs) cd.cd_methods))
    m.ma_decls;
  let all_funcs = List.rev !funcs @ List.rev lctx.extra_funcs in
  let all_defined = Hashtbl.copy defined in
  List.iter (fun (fn : Ir.func) -> Hashtbl.replace all_defined fn.name ()) all_funcs;
  let externs =
    Hashtbl.fold
      (fun name () acc ->
        if Hashtbl.mem all_defined name then acc else name :: acc)
      lctx.called []
    |> List.cons error_global
    |> List.sort_uniq String.compare
  in
  {
    Ir.m_name = m.ma_name;
    funcs = all_funcs;
    globals = List.rev !globals;
    externs;
    flags = [];
  }
