(** The persistent build service behind [sizeopt serve].

    One [t] holds all warm state:
    - a content-hash result cache keyed on (pipeline spec, module hashes in
      request order) with LRU eviction ({!Cache});
    - per-app front-end caches (module signatures and compiled MIR, keyed
      on own source hash plus the signatures of the externals the module's
      source mentions — a conservative refinement of
      {!Swiftlet.Compile.compile_program}'s import semantics, so appending
      a fresh function to one module leaves the others' cached bodies
      valid);
    - per-app warm incremental outline engines, invalidated at each build
      boundary via {!Outcore.Outliner.engine_begin_build} with a
      changed-module predicate derived from the previous request's hashes.

    Warm state is keyed by the request's [app] label, so two apps never
    share name-keyed engine caches; a spec change invalidates the whole
    engine for that app.  Every response is byte-identical to a
    from-scratch {!Pipeline.build} of the same request — the fuzz
    differential and the replay bench both gate on it. *)

type t

val create : ?cache_capacity:int -> unit -> t
(** Default capacity: 64 results. *)

val handle : t -> string -> string * [ `Continue | `Stop ]
(** Serve one request payload, returning the response payload.  Never
    raises: malformed requests and failed builds come back as [error]
    replies.  [`Stop] only after a [shutdown] request. *)

val handle_batch : t -> string list -> string list * [ `Continue | `Stop ]
(** Serve a batch collected from concurrent clients.  Cache hits and
    control requests answer inline; cache-missing builds are grouped by
    app and distinct apps run in parallel on the thin-WPO domain pool
    (requests for the same app keep their order; thin-mode requests force
    the serial path — no nested pools).  Responses come back in request
    order with identical bytes to serving each request alone. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** The [--stdio] transport: one frame in, one frame out, until EOF, a
    framing error, or [shutdown]. *)

val serve_unix : t -> path:string -> unit
(** The Unix-socket transport: accepts any number of clients, reads
    complete frames as they arrive and serves each select round as one
    {!handle_batch}.  Returns after [shutdown]; the socket file is
    unlinked. *)

val fault_stale_cache_entry : bool ref
(** Fault injection for [sizeopt fuzz --self-test]: drop the module-content
    component of the result-cache key, so an edited app hits the previous
    image.  The serve-vs-cold differential must catch the stale bytes. *)
