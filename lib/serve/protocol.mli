(** Wire protocol of the [sizeopt serve] build service.

    Frames are length-prefixed: the decimal payload length, a newline, then
    exactly that many payload bytes.  Payloads are line-oriented text; the
    only binary-unsafe construct ([module <name> <len>] source sections and
    the [image <len>] reply section) carries its own byte count, so sources
    and images may contain anything, including newlines.

    Both sides of every message have a parser and a printer here; the tests
    round-trip them, and the client side is what [bench serve] and the fuzz
    differential drive. *)

(** {1 Framing} *)

val max_frame : int
(** Upper bound on a frame payload (16 MiB); larger headers are malformed. *)

val frame : string -> string
(** [frame payload] is the on-wire encoding. *)

val pop_frame : string -> ((string * string) option, string) result
(** Pull one complete frame off a receive buffer: [Ok (Some (payload,
    rest))] when the buffer starts with a whole frame, [Ok None] when more
    bytes are needed, [Error _] when the header is malformed (the stream
    can no longer be resynchronised). *)

val read_frame : in_channel -> [ `Frame of string | `Eof | `Bad of string ]
(** Blocking read of one frame ([--stdio] transport). *)

(** {1 Requests} *)

type source =
  | Seeded of { sd_profile : string; sd_week : int; sd_mult : int }
      (** a named [Workload.Appgen] profile, aged and scaled server-side *)
  | Inline of (string * string) list
      (** (module name, Swiftlet source) pairs, in link order *)

type build_request = {
  br_id : string;       (** echoed in the reply *)
  br_app : string;      (** warm-state key; distinct apps never share caches *)
  br_mode : string;     (** ["wp"], ["pm"] or ["thin"] *)
  br_workers : int;     (** thin-WPO worker count; [<= 0] auto-detects *)
  br_passes : string option;  (** pipeline spec (PR-4 grammar); [None] = default *)
  br_want_image : bool; (** include the rendered image in the reply *)
  br_source : source;
}

type request = Build of build_request | Ping | Stats | Shutdown

val parse_request : string -> (request, string) result
val print_request : request -> string
(** Canonical form: [parse_request (print_request r) = Ok r]. *)

(** {1 Responses} *)

type sections = { sec_text : int; sec_data : int; sec_overhead : int }

type built = {
  b_id : string;
  b_cache_hit : bool;
  b_binary_size : int;
  b_code_size : int;
  b_sections : sections;
  b_image_hash : string;          (** 16 hex chars, FNV-1a 64 of the image *)
  b_phases : (string * float) list;  (** per-phase wall seconds, in order *)
  b_image : string option;
}

type counters = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_entries : int;
  c_apps : int;    (** apps holding warm state *)
  c_served : int;  (** requests answered since startup *)
}

type response =
  | Built of built
  | Error_reply of { e_id : string; e_message : string }
  | Pong
  | Stats_reply of counters
  | Bye

val parse_response : string -> (response, string) result
val print_response : response -> string

val print_response_masked : response -> string
(** [print_response] with the non-deterministic parts hidden: phase seconds
    become [*] (names and order stay) and image bytes are elided down to
    their length.  This is what the golden-transcript snapshot test
    renders. *)

(** {1 Hashing} *)

val hash_hex : string -> string
(** FNV-1a 64-bit of the string, as 16 lowercase hex chars.  Used for image
    hashes and the result-cache key. *)
