(** String-keyed LRU result cache with hit/miss/eviction counters.

    Deterministic: recency is a logical tick bumped on every insert and
    hit, so for a fixed request sequence the eviction order is fixed too —
    the unit tests and the serve-vs-cold differential rely on it. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] disables caching: every lookup misses, inserts are
    dropped. *)

val find : 'a t -> string -> 'a option
(** Bumps recency and the hit counter on success, the miss counter
    otherwise. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry (bumping the
    eviction counter) when the cache is full. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
val entries : 'a t -> int

val keys_by_recency : 'a t -> string list
(** Most-recently-used first; for tests. *)
