open Protocol

(* Fault injection for [sizeopt fuzz --self-test]: key results on (app,
   spec) only, ignoring module content, so edits serve the previous image. *)
let fault_stale_cache_entry = ref false

(* What a result-cache entry remembers: everything needed to answer a hit
   byte-identically to the build that populated it (the image is kept even
   when the original request did not ask for it, so a later [want-image]
   hit can be served). *)
type cached = {
  cb_binary_size : int;
  cb_code_size : int;
  cb_sections : sections;
  cb_image_hash : string;
  cb_phases : (string * float) list;
  cb_image : string;
}

(* Warm per-app state.  Keyed by the request's [app] label: name-keyed
   caches (the engine's symbol arrays, compiled modules) must never leak
   between apps whose functions share names. *)
type app_state = {
  as_engine : Outcore.Outliner.engine;
  mutable as_hashes : (string * string) list;
      (** module -> source hash of the last successful build *)
  mutable as_spec : string;  (** spec fingerprint of the last build *)
  as_sigs : (string, string * (string * Swiftlet.Sigs.fsig) list) Hashtbl.t;
      (** module -> (source hash, exported signatures) *)
  as_mods : (string, string * Ir.modul) Hashtbl.t;
      (** module -> (source hash + externals hash, compiled MIR) *)
}

type t = {
  results : cached Cache.t;
  apps : (string, app_state) Hashtbl.t;
  mutable served : int;
}

let create ?(cache_capacity = 64) () =
  {
    results = Cache.create ~capacity:cache_capacity;
    apps = Hashtbl.create 8;
    served = 0;
  }

let app_state t name =
  match Hashtbl.find_opt t.apps name with
  | Some st -> st
  | None ->
    let st =
      {
        as_engine = Outcore.Outliner.create_engine ();
        as_hashes = [];
        as_spec = "";
        as_sigs = Hashtbl.create 32;
        as_mods = Hashtbl.create 32;
      }
    in
    Hashtbl.replace t.apps name st;
    st

(* --- front-end cache ---------------------------------------------------- *)

(* Stable rendering of exported signatures: a module's compiled MIR depends
   on its own source and on the signatures compile_program imports from
   every other module, so that is exactly what the cache key hashes. *)
let rec ty_str = function
  | Swiftlet.Ast.T_int -> "i"
  | Swiftlet.Ast.T_bool -> "b"
  | Swiftlet.Ast.T_array -> "a"
  | Swiftlet.Ast.T_class c -> "C" ^ c ^ ";"
  | Swiftlet.Ast.T_func (ps, r) ->
    "F(" ^ String.concat "," (List.map ty_str ps) ^ ")" ^ ty_str r

let fsig_str (name, (fs : Swiftlet.Sigs.fsig)) =
  Printf.sprintf "%s(%s)%s%s%s" name
    (String.concat "," (List.map ty_str fs.fs_params))
    (ty_str fs.fs_ret)
    (if fs.fs_void then "v" else "")
    (if fs.fs_throws then "t" else "")

(* Identifier set of a source file: every maximal [A-Za-z0-9_] run not
   starting with a digit.  An external whose name is not an identifier of
   the module cannot be referenced by it (and cannot clash with one of its
   definitions), so its signature cannot affect the module's compilation.
   The body-cache key below therefore folds in only the signatures the
   module can see — a commit that appends a fresh function to one module
   leaves every other module's cached body valid. *)
let ident_set src =
  let tbl = Hashtbl.create 256 in
  let n = String.length src in
  let is_id c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let i = ref 0 in
  while !i < n do
    if is_id src.[!i] then begin
      let j = ref !i in
      while !j < n && is_id src.[!j] do incr j done;
      (match src.[!i] with
      | '0' .. '9' -> ()
      | _ -> Hashtbl.replace tbl (String.sub src !i (!j - !i)) ());
      i := !j
    end
    else incr i
  done;
  tbl

(* Mirror of Swiftlet.Compile.compile_program with both passes cached:
   signatures keyed on own source, module bodies keyed on own source plus
   the signatures of the externals the module mentions, in source order.
   Byte-equal output is an invariant the fuzz differential checks. *)
let compile_cached st hashes sources =
  let rec gather acc = function
    | [] -> Ok (List.rev acc)
    | (name, src) :: rest -> (
      let h = List.assoc name hashes in
      let cached =
        match Hashtbl.find_opt st.as_sigs name with
        | Some (h0, sigs) when String.equal h0 h -> Ok sigs
        | _ -> (
          match Swiftlet.Compile.signatures_of ~name src with
          | Ok sigs ->
            Hashtbl.replace st.as_sigs name (h, sigs);
            Ok sigs
          | Error e -> Error e)
      in
      match cached with
      | Ok sigs -> gather ((name, sigs) :: acc) rest
      | Error e -> Error e)
  in
  match gather [] sources with
  | Error e -> Error e
  | Ok per_module ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, src) :: rest -> (
        let externals =
          List.concat_map
            (fun (m, sigs) -> if String.equal m name then [] else sigs)
            per_module
        in
        let idents = ident_set src in
        let visible =
          List.filter (fun (n, _) -> Hashtbl.mem idents n) externals
        in
        let ext_fp =
          hash_hex (String.concat ";" (List.map fsig_str visible))
        in
        let key = List.assoc name hashes ^ ":" ^ ext_fp in
        match Hashtbl.find_opt st.as_mods name with
        | Some (k0, m) when String.equal k0 key -> go (m :: acc) rest
        | _ -> (
          match Swiftlet.Compile.compile_module ~externals ~name src with
          | Ok m ->
            Hashtbl.replace st.as_mods name (key, m);
            go (m :: acc) rest
          | Error e -> Error e))
    in
    go [] sources

(* --- request resolution -------------------------------------------------- *)

let spec_fp b =
  Printf.sprintf "%s/%d/%s" b.br_mode b.br_workers
    (match b.br_passes with Some s -> s | None -> "<default>")

let config_of b =
  let base =
    match b.br_mode with
    | "wp" -> Ok { Pipeline.default_config with mode = Pipeline.Whole_program }
    | "pm" -> Ok { Pipeline.default_config with mode = Pipeline.Per_module }
    | "thin" ->
      Ok
        {
          Pipeline.default_config with
          mode = Pipeline.Thin_wpo { workers = b.br_workers };
        }
    | m -> Error (Printf.sprintf "unknown mode: %S (want wp|pm|thin)" m)
  in
  match (base, b.br_passes) with
  | (Error _ as e), _ -> e
  | Ok cfg, None -> Ok cfg
  | Ok cfg, Some spec -> Pipeline.config_of_passes ~base:cfg spec

let profile_named = function
  | "small" -> Ok Workload.Appgen.small
  | "rider" -> Ok Workload.Appgen.uber_rider
  | "driver" -> Ok Workload.Appgen.uber_driver
  | "eats" -> Ok Workload.Appgen.uber_eats
  | p -> Error (Printf.sprintf "unknown profile: %S (want small|rider|driver|eats)" p)

let resolve_sources = function
  | Inline mods -> (
    let seen = Hashtbl.create 8 in
    let dup =
      List.find_opt
        (fun (n, _) ->
          if Hashtbl.mem seen n then true
          else begin
            Hashtbl.replace seen n ();
            false
          end)
        mods
    in
    match dup with
    | Some (n, _) -> Error ("duplicate module name: " ^ n)
    | None -> Ok mods)
  | Seeded { sd_profile; sd_week; sd_mult } -> (
    match profile_named sd_profile with
    | Error e -> Error e
    | Ok p ->
      if sd_week < 0 then Error "week must be >= 0"
      else if sd_mult < 1 then Error "mult must be >= 1"
      else
        let p = Workload.Appgen.at_week p sd_week in
        let p =
          if sd_mult > 1 then Workload.Appgen.scaled ~mult:sd_mult p else p
        in
        Ok (Workload.Appgen.generate_sources p))

let result_key b sources =
  let fp = spec_fp b in
  if !fault_stale_cache_entry then "app:" ^ b.br_app ^ "|" ^ fp
  else begin
    let buf = Buffer.create 256 in
    List.iter
      (fun (n, s) ->
        Buffer.add_string buf n;
        Buffer.add_char buf '\x00';
        Buffer.add_string buf (hash_hex s);
        Buffer.add_char buf '\x01')
      sources;
    fp ^ "|" ^ hash_hex (Buffer.contents buf)
  end

(* --- building ------------------------------------------------------------ *)

(* Cache-missing build against one app's warm state.  Only touches [st]
   (never the shared result cache), so distinct apps may run on pool
   domains concurrently. *)
let build_miss st b sources =
  match config_of b with
  | Error e -> Error e
  | Ok cfg ->
    let hashes = List.map (fun (n, s) -> (n, hash_hex s)) sources in
    let fp = spec_fp b in
    let same_spec = String.equal st.as_spec fp in
    let prev = st.as_hashes in
    (* A module is "changed" unless the previous successful build of this
       app used the same spec and compiled the same bytes for it; the
       engine's begin-build invalidation trusts this predicate. *)
    let changed m =
      (not same_spec)
      ||
      match (List.assoc_opt m hashes, List.assoc_opt m prev) with
      | Some h, Some h0 -> not (String.equal h h0)
      | _ -> true
    in
    let cfg =
      match cfg.Pipeline.mode with
      | Pipeline.Whole_program when cfg.Pipeline.outline_engine = `Incremental
        ->
        { cfg with Pipeline.warm_outline = Some (st.as_engine, changed) }
      | _ -> cfg
    in
    let outcome =
      try
        match compile_cached st hashes sources with
        | Error e -> Error e
        | Ok mods -> Pipeline.build ~config:cfg mods
      with e -> Error (Printexc.to_string e)
    in
    (match outcome with
    | Error e ->
      (* a half-run build may have left partial rounds in the engine *)
      Outcore.Outliner.reset_engine st.as_engine;
      st.as_hashes <- [];
      st.as_spec <- "";
      Error e
    | Ok res ->
      st.as_hashes <- hashes;
      st.as_spec <- fp;
      let image = Machine.Asm_printer.to_source res.Pipeline.program in
      let layout = res.Pipeline.layout in
      Ok
        {
          cb_binary_size = res.Pipeline.binary_size;
          cb_code_size = res.Pipeline.code_size;
          cb_sections =
            {
              sec_text = layout.Linker.text_size;
              sec_data = layout.Linker.data_size;
              sec_overhead = layout.Linker.image_overhead;
            };
          cb_image_hash = hash_hex image;
          cb_phases = res.Pipeline.timings;
          cb_image = image;
        })

let built_of b ~hit c =
  Built
    {
      b_id = b.br_id;
      b_cache_hit = hit;
      b_binary_size = c.cb_binary_size;
      b_code_size = c.cb_code_size;
      b_sections = c.cb_sections;
      b_image_hash = c.cb_image_hash;
      (* a hit ran no phases; reporting the original build's timings would
         just be noise *)
      b_phases = (if hit then [] else c.cb_phases);
      b_image = (if b.br_want_image then Some c.cb_image else None);
    }

let counters t =
  {
    c_hits = Cache.hits t.results;
    c_misses = Cache.misses t.results;
    c_evictions = Cache.evictions t.results;
    c_entries = Cache.entries t.results;
    c_apps = Hashtbl.length t.apps;
    c_served = t.served;
  }

(* --- serving ------------------------------------------------------------- *)

let handle t payload =
  t.served <- t.served + 1;
  match parse_request payload with
  | Error e ->
    (print_response (Error_reply { e_id = "?"; e_message = e }), `Continue)
  | Ok Ping -> (print_response Pong, `Continue)
  | Ok Stats -> (print_response (Stats_reply (counters t)), `Continue)
  | Ok Shutdown -> (print_response Bye, `Stop)
  | Ok (Build b) ->
    let resp =
      match resolve_sources b.br_source with
      | Error e -> Error_reply { e_id = b.br_id; e_message = e }
      | Ok sources -> (
        let key = result_key b sources in
        match Cache.find t.results key with
        | Some c -> built_of b ~hit:true c
        | None -> (
          let st = app_state t b.br_app in
          match build_miss st b sources with
          | Error e -> Error_reply { e_id = b.br_id; e_message = e }
          | Ok c ->
            Cache.add t.results key c;
            built_of b ~hit:false c))
    in
    (print_response resp, `Continue)

let handle_batch t payloads =
  let stop = ref `Continue in
  let n = List.length payloads in
  let responses = Array.make n "" in
  let set slot r = responses.(slot) <- print_response r in
  (* Serial pass: parse, resolve, answer control requests / cache hits /
     malformed builds inline; collect cache misses. *)
  let pending = ref [] in
  let pending_keys = Hashtbl.create 8 in
  let dups = ref [] in
  List.iteri
    (fun slot payload ->
      t.served <- t.served + 1;
      match parse_request payload with
      | Error e -> set slot (Error_reply { e_id = "?"; e_message = e })
      | Ok Ping -> set slot Pong
      | Ok Stats -> set slot (Stats_reply (counters t))
      | Ok Shutdown ->
        stop := `Stop;
        set slot Bye
      | Ok (Build b) -> (
        match resolve_sources b.br_source with
        | Error e -> set slot (Error_reply { e_id = b.br_id; e_message = e })
        | Ok sources ->
          let key = result_key b sources in
          if Hashtbl.mem pending_keys key then
            (* same key as a miss earlier in this batch: resolved after the
               builds, exactly as if the requests had arrived in turn *)
            dups := (slot, b, sources, key) :: !dups
          else (
            match Cache.find t.results key with
            | Some c -> set slot (built_of b ~hit:true c)
            | None ->
              Hashtbl.replace pending_keys key ();
              pending := (slot, b, sources, key) :: !pending)))
    payloads;
  let pending = List.rev !pending in
  (* Group misses by app, in first-appearance order; within an app the
     request order is preserved (warm state is sequential). *)
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun ((_, b, _, _) as item) ->
      match Hashtbl.find_opt groups b.br_app with
      | Some r -> r := item :: !r
      | None ->
        Hashtbl.replace groups b.br_app (ref [ item ]);
        order := b.br_app :: !order)
    pending;
  let apps_in_order = List.rev !order in
  (* App states must exist before any pool domain runs. *)
  List.iter (fun app -> ignore (app_state t app)) apps_in_order;
  let run_group app =
    let items = List.rev !(Hashtbl.find groups app) in
    let st = app_state t app in
    List.map
      (fun (slot, b, sources, key) -> (slot, b, key, build_miss st b sources))
      items
  in
  let any_thin = List.exists (fun (_, b, _, _) -> b.br_mode = "thin") pending in
  let results =
    (* Thin builds own the domain pool themselves; never nest pools. *)
    if any_thin || List.length apps_in_order <= 1 then
      List.concat_map run_group apps_in_order
    else begin
      let arr = Array.of_list apps_in_order in
      let workers =
        min (Array.length arr) (Thinwpo.Pool.resolve_workers 0)
      in
      Thinwpo.Pool.map ~workers run_group arr |> Array.to_list |> List.concat
    end
  in
  (* Serial pass: cache insertion and response assembly. *)
  List.iter
    (fun (slot, b, key, outcome) ->
      match outcome with
      | Error e -> set slot (Error_reply { e_id = b.br_id; e_message = e })
      | Ok c ->
        Cache.add t.results key c;
        set slot (built_of b ~hit:false c))
    results;
  (* In-batch duplicates hit the entry their first occurrence inserted; if
     that build failed (nothing inserted), they build for themselves just
     as they would have when served alone. *)
  List.iter
    (fun (slot, b, sources, key) ->
      match Cache.find t.results key with
      | Some c -> set slot (built_of b ~hit:true c)
      | None -> (
        let st = app_state t b.br_app in
        match build_miss st b sources with
        | Error e -> set slot (Error_reply { e_id = b.br_id; e_message = e })
        | Ok c ->
          Cache.add t.results key c;
          set slot (built_of b ~hit:false c)))
    (List.rev !dups);
  (Array.to_list responses, !stop)

(* --- transports ---------------------------------------------------------- *)

let serve_channels t ic oc =
  let send payload =
    output_string oc (frame payload);
    flush oc
  in
  let rec loop () =
    match read_frame ic with
    | `Eof -> ()
    | `Bad msg ->
      (* the stream cannot be resynchronised; answer and hang up *)
      send (print_response (Error_reply { e_id = "?"; e_message = "framing: " ^ msg }))
    | `Frame payload ->
      let resp, cont = handle t payload in
      send resp;
      if cont = `Continue then loop ()
  in
  loop ()

let send_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let serve_unix t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  let clients = ref [] in
  let stop = ref false in
  let chunk = Bytes.create 65536 in
  while not !stop do
    let readable, _, _ =
      Unix.select (srv :: List.map fst !clients) [] [] (-1.0)
    in
    if List.memq srv readable then begin
      let fd, _ = Unix.accept srv in
      clients := !clients @ [ (fd, Buffer.create 1024) ]
    end;
    let dead = ref [] in
    List.iter
      (fun (fd, buf) ->
        if List.memq fd readable then
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> dead := fd :: !dead
          | n -> Buffer.add_subbytes buf chunk 0 n
          | exception Unix.Unix_error _ -> dead := fd :: !dead)
      !clients;
    (* one select round's complete frames form one batch, in client order *)
    let batch = ref [] in
    List.iter
      (fun (fd, buf) ->
        if not (List.memq fd !dead) then begin
          let rec drain data =
            match pop_frame data with
            | Ok (Some (payload, rest)) ->
              batch := (fd, payload) :: !batch;
              drain rest
            | Ok None -> data
            | Error msg ->
              (try
                 send_all fd
                   (frame
                      (print_response
                         (Error_reply
                            { e_id = "?"; e_message = "framing: " ^ msg })))
               with Unix.Unix_error _ -> ());
              dead := fd :: !dead;
              ""
          in
          let rest = drain (Buffer.contents buf) in
          Buffer.clear buf;
          Buffer.add_string buf rest
        end)
      !clients;
    let batch = List.rev !batch in
    if batch <> [] then begin
      let resps, s = handle_batch t (List.map snd batch) in
      List.iter2
        (fun (fd, _) resp ->
          if not (List.memq fd !dead) then
            try send_all fd (frame resp)
            with Unix.Unix_error _ -> dead := fd :: !dead)
        batch resps;
      if s = `Stop then stop := true
    end;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !dead;
    clients := List.filter (fun (fd, _) -> not (List.memq fd !dead)) !clients
  done;
  List.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    !clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ -> ()
