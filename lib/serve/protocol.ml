(* Wire protocol: length-prefixed frames around line-oriented payloads.
   Everything here is a pure string transform, so the tests can round-trip
   parse/print without a socket. *)

(* --- framing ------------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

let frame payload = string_of_int (String.length payload) ^ "\n" ^ payload

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let pop_frame buf =
  match String.index_opt buf '\n' with
  | None ->
    if String.length buf > 12 then Error "frame header too long"
    else if buf = "" || is_digits buf then Ok None
    else Error "malformed frame header"
  | Some nl ->
    let hdr = String.sub buf 0 nl in
    if not (is_digits hdr) || String.length hdr > 12 then
      Error "malformed frame header"
    else
      let len = int_of_string hdr in
      if len > max_frame then Error "frame too large"
      else if String.length buf >= nl + 1 + len then
        Ok
          (Some
             ( String.sub buf (nl + 1) len,
               String.sub buf (nl + 1 + len)
                 (String.length buf - nl - 1 - len) ))
      else Ok None

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> `Eof
  | hdr ->
    if not (is_digits hdr) || String.length hdr > 12 then
      `Bad "malformed frame header"
    else
      let len = int_of_string hdr in
      if len > max_frame then `Bad "frame too large"
      else begin
        let b = Bytes.create len in
        match really_input ic b 0 len with
        | () -> `Frame (Bytes.to_string b)
        | exception End_of_file -> `Bad "truncated frame"
      end

(* --- hashing ------------------------------------------------------------ *)

(* FNV-1a from lib/content — the same definition the linker's
   compression model, thin-WPO summaries and the merge layer use. *)
let hash64 = Content.hash_string

let hash_hex s = Printf.sprintf "%016Lx" (hash64 s)

(* --- requests ----------------------------------------------------------- *)

type source =
  | Seeded of { sd_profile : string; sd_week : int; sd_mult : int }
  | Inline of (string * string) list

type build_request = {
  br_id : string;
  br_app : string;
  br_mode : string;
  br_workers : int;
  br_passes : string option;
  br_want_image : bool;
  br_source : source;
}

type request = Build of build_request | Ping | Stats | Shutdown

(* Sequential payload scanner: lines, plus exact-length binary sections. *)

let line_at s i =
  match String.index_from_opt s i '\n' with
  | Some nl -> (String.sub s i (nl - i), nl + 1)
  | None -> (String.sub s i (String.length s - i), String.length s)

let take_bytes s i n =
  if n < 0 || i + n > String.length s then Error "section length out of range"
  else
    let bytes = String.sub s i n in
    (* the section is followed by a cosmetic newline *)
    let j = i + n in
    if j < String.length s && s.[j] = '\n' then Ok (bytes, j + 1)
    else Ok (bytes, j)

let split1 line =
  match String.index_opt line ' ' with
  | Some sp ->
    (String.sub line 0 sp, String.sub line (sp + 1) (String.length line - sp - 1))
  | None -> (line, "")

let int_field name v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad integer for %s: %S" name v)

let parse_build_body id body =
  let app = ref "default" in
  let mode = ref "wp" in
  let workers = ref 0 in
  let passes = ref None in
  let want_image = ref false in
  let profile = ref None in
  let week = ref 0 in
  let mult = ref 1 in
  let modules = ref [] in
  let err = ref None in
  let fail m = err := Some m in
  let i = ref 0 in
  let len = String.length body in
  while !err = None && !i < len do
    let line, next = line_at body !i in
    i := next;
    if line = "" then ()
    else
      match split1 line with
      | "app:", v -> app := v
      | "mode:", v -> mode := v
      | "workers:", v -> (
        match int_field "workers" v with
        | Ok n -> workers := n
        | Error e -> fail e)
      | "passes:", v -> passes := Some v
      | "want-image:", v -> (
        match v with
        | "true" -> want_image := true
        | "false" -> want_image := false
        | _ -> fail (Printf.sprintf "bad boolean for want-image: %S" v))
      | "profile:", v -> profile := Some v
      | "week:", v -> (
        match int_field "week" v with
        | Ok n -> week := n
        | Error e -> fail e)
      | "mult:", v -> (
        match int_field "mult" v with
        | Ok n -> mult := n
        | Error e -> fail e)
      | "module", rest -> (
        match split1 rest with
        | name, lenstr when name <> "" && is_digits lenstr -> (
          match take_bytes body !i (int_of_string lenstr) with
          | Ok (src, next) ->
            modules := (name, src) :: !modules;
            i := next
          | Error e -> fail e)
        | _ -> fail (Printf.sprintf "bad module header: %S" line))
      | k, _ -> fail (Printf.sprintf "unknown request field: %S" k)
  done;
  match !err with
  | Some e -> Error e
  | None -> (
    let modules = List.rev !modules in
    match (!profile, modules) with
    | Some _, _ :: _ -> Error "request has both profile and inline modules"
    | None, [] -> Error "request names neither a profile nor inline modules"
    | Some p, [] ->
      Ok
        (Build
           {
             br_id = id;
             br_app = !app;
             br_mode = !mode;
             br_workers = !workers;
             br_passes = !passes;
             br_want_image = !want_image;
             br_source = Seeded { sd_profile = p; sd_week = !week; sd_mult = !mult };
           })
    | None, mods ->
      Ok
        (Build
           {
             br_id = id;
             br_app = !app;
             br_mode = !mode;
             br_workers = !workers;
             br_passes = !passes;
             br_want_image = !want_image;
             br_source = Inline mods;
           }))

let parse_request payload =
  let first, rest_at = line_at payload 0 in
  let body = String.sub payload rest_at (String.length payload - rest_at) in
  match split1 first with
  | "ping", "" -> Ok Ping
  | "stats", "" -> Ok Stats
  | "shutdown", "" -> Ok Shutdown
  | "build", id when id <> "" -> parse_build_body id body
  | "build", "" -> Error "build request without an id"
  | verb, _ -> Error (Printf.sprintf "unknown request verb: %S" verb)

let print_request = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Build b ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf "build %s\n" b.br_id;
    Printf.bprintf buf "app: %s\n" b.br_app;
    Printf.bprintf buf "mode: %s\n" b.br_mode;
    Printf.bprintf buf "workers: %d\n" b.br_workers;
    (match b.br_passes with
    | Some s -> Printf.bprintf buf "passes: %s\n" s
    | None -> ());
    Printf.bprintf buf "want-image: %b\n" b.br_want_image;
    (match b.br_source with
    | Seeded { sd_profile; sd_week; sd_mult } ->
      Printf.bprintf buf "profile: %s\n" sd_profile;
      Printf.bprintf buf "week: %d\n" sd_week;
      Printf.bprintf buf "mult: %d\n" sd_mult
    | Inline mods ->
      List.iter
        (fun (name, src) ->
          Printf.bprintf buf "module %s %d\n%s\n" name (String.length src) src)
        mods);
    Buffer.contents buf

(* --- responses ---------------------------------------------------------- *)

type sections = { sec_text : int; sec_data : int; sec_overhead : int }

type built = {
  b_id : string;
  b_cache_hit : bool;
  b_binary_size : int;
  b_code_size : int;
  b_sections : sections;
  b_image_hash : string;
  b_phases : (string * float) list;
  b_image : string option;
}

type counters = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_entries : int;
  c_apps : int;
  c_served : int;
}

type response =
  | Built of built
  | Error_reply of { e_id : string; e_message : string }
  | Pong
  | Stats_reply of counters
  | Bye

let print_built ~mask b =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "built %s\n" b.b_id;
  Printf.bprintf buf "cache: %s\n" (if b.b_cache_hit then "hit" else "miss");
  Printf.bprintf buf "binary-size: %d\n" b.b_binary_size;
  Printf.bprintf buf "code-size: %d\n" b.b_code_size;
  Printf.bprintf buf "text: %d\n" b.b_sections.sec_text;
  Printf.bprintf buf "data: %d\n" b.b_sections.sec_data;
  Printf.bprintf buf "overhead: %d\n" b.b_sections.sec_overhead;
  Printf.bprintf buf "image-hash: %s\n" b.b_image_hash;
  List.iter
    (fun (name, secs) ->
      if mask then Printf.bprintf buf "phase %s *\n" name
      else Printf.bprintf buf "phase %s %.6f\n" name secs)
    b.b_phases;
  (match b.b_image with
  | Some img when mask ->
    Printf.bprintf buf "image [%d bytes elided]\n" (String.length img)
  | Some img -> Printf.bprintf buf "image %d\n%s\n" (String.length img) img
  | None -> ());
  Buffer.contents buf

let print_counters c =
  Printf.sprintf
    "stats\nhits: %d\nmisses: %d\nevictions: %d\nentries: %d\napps: %d\n\
     served: %d\n"
    c.c_hits c.c_misses c.c_evictions c.c_entries c.c_apps c.c_served

let print_response_gen ~mask = function
  | Pong -> "pong"
  | Bye -> "bye"
  | Stats_reply c -> print_counters c
  | Error_reply { e_id; e_message } ->
    Printf.sprintf "error %s\n%s" e_id e_message
  | Built b -> print_built ~mask b

let print_response r = print_response_gen ~mask:false r
let print_response_masked r = print_response_gen ~mask:true r

let parse_built_body id body =
  let cache_hit = ref false in
  let binary = ref 0 and code = ref 0 in
  let text = ref 0 and data = ref 0 and overhead = ref 0 in
  let hash = ref "" in
  let phases = ref [] in
  let image = ref None in
  let err = ref None in
  let fail m = err := Some m in
  let i = ref 0 in
  let len = String.length body in
  while !err = None && !i < len do
    let line, next = line_at body !i in
    i := next;
    if line = "" then ()
    else
      match split1 line with
      | "cache:", "hit" -> cache_hit := true
      | "cache:", "miss" -> cache_hit := false
      | "binary-size:", v -> (
        match int_field "binary-size" v with
        | Ok n -> binary := n
        | Error e -> fail e)
      | "code-size:", v -> (
        match int_field "code-size" v with
        | Ok n -> code := n
        | Error e -> fail e)
      | "text:", v -> (
        match int_field "text" v with Ok n -> text := n | Error e -> fail e)
      | "data:", v -> (
        match int_field "data" v with Ok n -> data := n | Error e -> fail e)
      | "overhead:", v -> (
        match int_field "overhead" v with
        | Ok n -> overhead := n
        | Error e -> fail e)
      | "image-hash:", v -> hash := v
      | "phase", rest -> (
        (* the phase name may contain spaces; seconds are the last field *)
        match String.rindex_opt rest ' ' with
        | Some sp -> (
          let name = String.sub rest 0 sp in
          let secs = String.sub rest (sp + 1) (String.length rest - sp - 1) in
          match float_of_string_opt secs with
          | Some f -> phases := (name, f) :: !phases
          | None -> fail (Printf.sprintf "bad phase seconds: %S" secs))
        | None -> fail (Printf.sprintf "bad phase line: %S" line))
      | "image", lenstr when is_digits lenstr -> (
        match take_bytes body !i (int_of_string lenstr) with
        | Ok (bytes, next) ->
          image := Some bytes;
          i := next
        | Error e -> fail e)
      | k, _ -> fail (Printf.sprintf "unknown response field: %S" k)
  done;
  match !err with
  | Some e -> Error e
  | None ->
    Ok
      (Built
         {
           b_id = id;
           b_cache_hit = !cache_hit;
           b_binary_size = !binary;
           b_code_size = !code;
           b_sections =
             { sec_text = !text; sec_data = !data; sec_overhead = !overhead };
           b_image_hash = !hash;
           b_phases = List.rev !phases;
           b_image = !image;
         })

let parse_counters body =
  let get name =
    let prefix = name ^ ": " in
    let found = ref None in
    List.iter
      (fun line ->
        match String.length line >= String.length prefix with
        | true when String.sub line 0 (String.length prefix) = prefix ->
          found :=
            int_of_string_opt
              (String.sub line (String.length prefix)
                 (String.length line - String.length prefix))
        | _ -> ())
      (String.split_on_char '\n' body);
    !found
  in
  match
    ( get "hits", get "misses", get "evictions", get "entries", get "apps",
      get "served" )
  with
  | Some h, Some m, Some e, Some n, Some a, Some s ->
    Ok
      (Stats_reply
         {
           c_hits = h;
           c_misses = m;
           c_evictions = e;
           c_entries = n;
           c_apps = a;
           c_served = s;
         })
  | _ -> Error "incomplete stats reply"

let parse_response payload =
  let first, rest_at = line_at payload 0 in
  let body = String.sub payload rest_at (String.length payload - rest_at) in
  match split1 first with
  | "pong", "" -> Ok Pong
  | "bye", "" -> Ok Bye
  | "stats", "" -> parse_counters body
  | "built", id when id <> "" -> parse_built_body id body
  | "error", id when id <> "" -> Ok (Error_reply { e_id = id; e_message = body })
  | verb, _ -> Error (Printf.sprintf "unknown response verb: %S" verb)
