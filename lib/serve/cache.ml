type 'a entry = { mutable value : 'a; mutable stamp : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ~capacity =
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    tick = 0;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let bump t = t.tick <- t.tick + 1; t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.stamp <- bump t;
    t.n_hits <- t.n_hits + 1;
    Some e.value
  | None ->
    t.n_misses <- t.n_misses + 1;
    None

(* Linear scan for the oldest stamp: capacities are small (tens to a few
   hundred results) and stamps are unique, so this is simple and exactly
   deterministic. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.n_evictions <- t.n_evictions + 1
  | None -> ()

let add t key v =
  if t.cap > 0 then
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      e.value <- v;
      e.stamp <- bump t
    | None ->
      if Hashtbl.length t.tbl >= t.cap then evict_lru t;
      Hashtbl.replace t.tbl key { value = v; stamp = bump t }

let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions
let entries t = Hashtbl.length t.tbl

let keys_by_recency t =
  Hashtbl.fold (fun k e acc -> (k, e.stamp) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
