(** The two build pipelines of the paper, run through the unified pass
    manager ({!Passman}).

    - {b Default iOS pipeline} (Figure 2): every module is optimized and
      lowered to machine code independently; machine outlining, if enabled,
      runs per module — so outlined functions are cloned across modules and
      cross-module repeats are invisible.  The system linker then merges
      the per-module machine code.

    - {b New whole-program pipeline} (Figure 10): all modules' IR is merged
      by the llvm-link equivalent (with the metadata-flag semantics and
      data-ordering mode of §VI), optimized once, lowered once, and machine
      outlining sees the entire program.

    Both modes run the {e same} registered passes: the config's pass flags
    are lowered onto a textual pipeline spec ({!spec_of_config}, grammar in
    {!Passman}), and one shared pass context owns per-pass timings, size
    deltas, [--verify-each], [--print-after] and [--opt-bisect-limit]
    across the MIR and machine stages. *)

type mode =
  | Per_module
  | Whole_program
  | Thin_wpo of { workers : int }
      (** the sharded parallel whole-program pipeline (ThinLTO's shape
          applied to outlining): per-module MIR passes and codegen run on a
          fixed pool of [workers] domains ([<= 0] auto-detects), the units
          are merged, and the linked [thin-outline] pass re-shards the
          merged program for parallel candidate discovery, one serial
          summary-exchange decision round, and parallel rewrite.  Output is
          byte-identical for every [workers] value. *)

type layout_strategy =
  [ `Append | `Caller_affinity | `Order_file | `C3 | `Balanced
  | `Bp_compress of float | `Stitch ]
(** Where functions — outlined ones in particular — are placed:
    - [`Append]: program order, outlined functions appended at the end in
      one dense region (LLVM's behaviour, the default);
    - [`Caller_affinity]: next to their dominant {e static} caller — the
      measured negative result (see {!config.outlined_layout});
    - [`Order_file] / [`C3] / [`Balanced]: profile-guided placement from
      a {!Pgo.Profile.t} — startup first-touch order, C³-style call-chain
      clustering, and recursive-bisection balanced partitioning;
    - [`Bp_compress w]: balanced partitioning with a compression term of
      weight [w] in the objective ({!Pgo.Order.bp_compress}) — trades
      icache locality for estimated download size;
    - [`Stitch]: block-granularity placement ({!Blocklayout}) — cold
      basic blocks split into the linker's [__text_cold] region and hot
      chains stitched along the hottest interprocedural call edges.
    All but [`Stitch] are pure reordering, realized through
    [Linker.link ~order]; [`Stitch] also rewrites the program (block
    reordering with branch elision/materialization), preserving observable
    behavior. *)

val layout_strategy_name : layout_strategy -> string

val layout_strategy_of_string :
  string -> (layout_strategy, string) Stdlib.result
(** Parse a CLI/spec strategy name — [bp-compress] takes an optional
    weight, [bp-compress(w=0.3)].  The error message lists the valid
    strategies; this is the single place that list is maintained. *)

type config = {
  mode : mode;
  outline_rounds : int;           (** 0 disables machine outlining *)
  flag_semantics : Link.flag_semantics;
  data_order : Link.data_order;
  run_dce : bool;
  run_sil_outline : bool;         (** the SIL-level outlining baseline *)
  sil_outline_min : int;
      (** helper threshold for [sil-outline] ([sil-outline(min=N)] in the
          spec; default 8, the value the old pipeline hardcoded) *)
  run_merge_functions : bool;     (** the MergeFunction baseline *)
  run_fmsa : bool;                (** the FMSA baseline *)
  run_global_merge : bool;
      (** optimistic cross-module merging ({!Global_merge}).  In
          whole-program mode it is an ordinary MIR pass over the linked
          module; in per-module and thin modes the pipeline splits the MIR
          phase around it — local passes per unit, one global decision
          over every unit, the rest per unit after *)
  global_merge_min : int;         (** [global-merge(min=N)]; default 4 *)
  global_merge_max_holes : int;   (** [global-merge(max-holes=N)]; default 6 *)
  entry_points : string list;
      (** functions the merging baselines must never turn into thunks
          (default [["main"]]) *)
  no_outline_modules : string list;
      (** modules standing in for system frameworks: their machine code is
          never harvested or rewritten (default [["system"]]) *)
  outlined_layout : layout_strategy;
      (** where outlined functions live.  Caller-affinity — the paper's
          future-work item (3) done statically — produced a negative result
          worth keeping: outlined helpers are *shared*, so placement next to
          one static caller scatters them across the image and inflates iTLB
          misses by orders of magnitude, while the dense appended region
          acts as a small hot page set.  The profile-guided strategies are
          the related-work fix (Hoag et al., Lavaee et al.): dynamic traces
          from {!Perfsim} decide placement.  See the [ablate] and
          [layout_bench] benches. *)
  layout_profile : Pgo.Profile.t option;
      (** the recorded profile driving a profile-guided [outlined_layout]
          ([sizeopt build --profile-in]).  [None] with a profile-guided
          strategy self-profiles: the pipeline traces a [main] run of the
          built program and feeds that profile straight back into layout. *)
  run_canonicalize : bool;
      (** canonicalize commutative operand order before outlining (the
          paper's future-work item 1); off by default *)
  outline_engine : [ `Incremental | `Scratch ];
      (** which outliner engine drives the [outline] pass: the default
          incremental engine (dirty-block caches across rounds) or the
          from-scratch reference.  Both produce byte-identical programs —
          the fuzz lattice checks exactly that. *)
  passes : Passman.spec list option;
      (** an explicit pass pipeline ([sizeopt build --passes]); [None]
          lowers the flags above onto the default sequencing.  Use
          {!config_of_passes} to parse a spec string and keep the flags
          consistent with it. *)
  verify_each : bool;
      (** run the stage invariants ({!Ir.validate} /
          [Machine.Program.validate]) after every pass application — and
          after every outline round — instead of only once at the end *)
  print_after : Passman.print_after;
      (** dump the IR (via the stage printers) after the named passes *)
  bisect_limit : int option;
      (** LLVM-style opt-bisect: stop applying passes — and individual
          outline rounds — after this many steps; see {!result.pass_steps}
          and {!Passman.bisect} *)
  warm_outline : (Outcore.Outliner.engine * (string -> bool)) option;
      (** warm incremental engine surviving across builds (the serve
          daemon), with the changed-module predicate driving
          {!Outcore.Outliner.engine_begin_build} at the build boundary.
          Only consulted by whole-program [outline] runs (scope [""]) with
          [outline_engine = `Incremental]; per-module and thin modes ignore
          it.  [None] (the default) keeps every build self-contained. *)
}

val default_config : config
(** Whole-program, 5 rounds, attribute flag semantics, module-preserving
    data order, DCE on, all IR-merging baselines off. *)

val default_ios_config : config
(** Per-module with per-module outlining (Swift 5.2's [-Osize] behaviour,
    §VII-A's baseline). *)

val spec_of_config : config -> Passman.spec list
(** The pipeline spec the manager will run: [config.passes] when set,
    otherwise the flags lowered onto the default order ([dce],
    [sil-outline(min=N)], [merge-functions], [fmsa], [canonicalize],
    [outline(rounds=N)], [caller-affinity-layout]; each present only when
    its flag asks for it). *)

val config_of_passes : ?base:config -> string -> (config, string) result
(** Parse a pipeline string ([--passes "dce,outline(rounds=5)"]) and raise
    it back onto a config: pass flags and parameters are set from the spec
    (a missing [outline] means 0 rounds), every other axis (mode, link
    semantics, engine, profile-guided layout) keeps [base]'s value, and the
    exact spec — order included — is pinned in [passes].  Errors on
    unknown pass names, unknown parameters, or malformed syntax. *)

type result = {
  program : Machine.Program.t;
  layout : Linker.layout;
  binary_size : int;
  code_size : int;
  function_order : string list option;
      (** the explicit placement the layout was linked with (profile-guided
          strategies only); pass it to [Perfsim.Interp.run ~order] so
          measurement sees the same addresses the linker produced *)
  timings : (string * float) list;   (** coarse phase name, seconds, in order *)
  timing_tree : Passman.timing list;
      (** the same phases as a tree: per-pass children with size-delta
          notes, outline rounds under the [outline] pass, and the
          outliner's per-phase split (sequence build, tree build,
          enumerate, score, rewrite) under each round — rendered by
          [sizeopt build --profile] *)
  pass_steps : Passman.step list;
      (** every pass application (and outline round) in order, with bisect
          skips marked — the index a {!Passman.bisect} result points at *)
  outline_stats : Outcore.Outliner.round_stats list;
  outline_profile : Outcore.Profile.t;
      (** per-outline-round phase split, also woven into [timing_tree] *)
  thin_profile : Thinwpo.Engine.Report.t;
      (** thin-WPO only: per-round shard timings and the global decision
          round, also woven into [timing_tree] (one subtree per shard) and
          serialized into BENCH_thinwpo.json by the bench harness *)
}

val build :
  ?dump:(string -> string -> unit) ->
  ?config:config ->
  Ir.modul list ->
  (result, string) Stdlib.result
(** Run the configured pipeline over already-compiled modules.  [dump]
    receives [print_after] output (default: stderr with an LLVM-style
    banner). *)

val build_sources :
  ?dump:(string -> string -> unit) ->
  ?config:config ->
  (string * string) list ->
  (result, string) Stdlib.result
(** Front-end included: (module name, Swiftlet source) pairs. *)

val build_reference :
  ?config:config -> Ir.modul list -> (result, string) Stdlib.result
(** The pre-refactor hardcoded sequencing, kept verbatim during the
    pass-manager transition so the fuzz lattice can assert the refactor is
    observationally exact (default-config builds must be byte-identical
    through both paths).  Ignores [passes], [verify_each], [print_after]
    and [bisect_limit]; returns empty [timing_tree]/[pass_steps]. *)
