(** The two build pipelines of the paper.

    - {b Default iOS pipeline} (Figure 2): every module is optimized and
      lowered to machine code independently; machine outlining, if enabled,
      runs per module — so outlined functions are cloned across modules and
      cross-module repeats are invisible.  The system linker then merges
      the per-module machine code.

    - {b New whole-program pipeline} (Figure 10): all modules' IR is merged
      by the llvm-link equivalent (with the metadata-flag semantics and
      data-ordering mode of §VI), optimized once, lowered once, and machine
      outlining sees the entire program. *)

type mode =
  | Per_module
  | Whole_program

type layout_strategy =
  [ `Append | `Caller_affinity | `Order_file | `C3 | `Balanced ]
(** Where functions — outlined ones in particular — are placed:
    - [`Append]: program order, outlined functions appended at the end in
      one dense region (LLVM's behaviour, the default);
    - [`Caller_affinity]: next to their dominant {e static} caller — the
      measured negative result (see {!config.outlined_layout});
    - [`Order_file] / [`C3] / [`Balanced]: profile-guided placement from
      a {!Pgo.Profile.t} — startup first-touch order, C³-style call-chain
      clustering, and recursive-bisection balanced partitioning.  All are
      pure reordering, realized through [Linker.link ~order]. *)

type config = {
  mode : mode;
  outline_rounds : int;           (** 0 disables machine outlining *)
  flag_semantics : Link.flag_semantics;
  data_order : Link.data_order;
  run_dce : bool;
  run_sil_outline : bool;         (** the SIL-level outlining baseline *)
  run_merge_functions : bool;     (** the MergeFunction baseline *)
  run_fmsa : bool;                (** the FMSA baseline *)
  no_outline_modules : string list;
      (** modules standing in for system frameworks: their machine code is
          never harvested or rewritten (default [["system"]]) *)
  outlined_layout : layout_strategy;
      (** where outlined functions live.  Caller-affinity — the paper's
          future-work item (3) done statically — produced a negative result
          worth keeping: outlined helpers are *shared*, so placement next to
          one static caller scatters them across the image and inflates iTLB
          misses by orders of magnitude, while the dense appended region
          acts as a small hot page set.  The profile-guided strategies are
          the related-work fix (Hoag et al., Lavaee et al.): dynamic traces
          from {!Perfsim} decide placement.  See the [ablate] and
          [layout_bench] benches. *)
  layout_profile : Pgo.Profile.t option;
      (** the recorded profile driving a profile-guided [outlined_layout]
          ([sizeopt build --profile-in]).  [None] with a profile-guided
          strategy self-profiles: the pipeline traces a [main] run of the
          built program and feeds that profile straight back into layout. *)
  run_canonicalize : bool;
      (** canonicalize commutative operand order before outlining (the
          paper's future-work item 1); off by default *)
  outline_engine : [ `Incremental | `Scratch ];
      (** which outliner engine drives {!Outcore.Repeat.run}: the default
          incremental engine (dirty-block caches across rounds) or the
          from-scratch reference.  Both produce byte-identical programs —
          the fuzz lattice checks exactly that. *)
}

val default_config : config
(** Whole-program, 5 rounds, attribute flag semantics, module-preserving
    data order, DCE on, all IR-merging baselines off. *)

val default_ios_config : config
(** Per-module with per-module outlining (Swift 5.2's [-Osize] behaviour,
    §VII-A's baseline). *)

type result = {
  program : Machine.Program.t;
  layout : Linker.layout;
  binary_size : int;
  code_size : int;
  function_order : string list option;
      (** the explicit placement the layout was linked with (profile-guided
          strategies only); pass it to [Perfsim.Interp.run ~order] so
          measurement sees the same addresses the linker produced *)
  timings : (string * float) list;   (** phase name, seconds, in order *)
  outline_stats : Outcore.Outliner.round_stats list;
  outline_profile : Outcore.Profile.t;
      (** per-outline-round phase split (sequence build, tree build,
          enumerate, score, rewrite); rendered by [sizeopt build --profile] *)
}

val build : ?config:config -> Ir.modul list -> (result, string) Stdlib.result
(** Run the configured pipeline over already-compiled modules. *)

val build_sources :
  ?config:config -> (string * string) list -> (result, string) Stdlib.result
(** Front-end included: (module name, Swiftlet source) pairs. *)
