(** The two build pipelines of the paper.

    - {b Default iOS pipeline} (Figure 2): every module is optimized and
      lowered to machine code independently; machine outlining, if enabled,
      runs per module — so outlined functions are cloned across modules and
      cross-module repeats are invisible.  The system linker then merges
      the per-module machine code.

    - {b New whole-program pipeline} (Figure 10): all modules' IR is merged
      by the llvm-link equivalent (with the metadata-flag semantics and
      data-ordering mode of §VI), optimized once, lowered once, and machine
      outlining sees the entire program. *)

type mode =
  | Per_module
  | Whole_program

type config = {
  mode : mode;
  outline_rounds : int;           (** 0 disables machine outlining *)
  flag_semantics : Link.flag_semantics;
  data_order : Link.data_order;
  run_dce : bool;
  run_sil_outline : bool;         (** the SIL-level outlining baseline *)
  run_merge_functions : bool;     (** the MergeFunction baseline *)
  run_fmsa : bool;                (** the FMSA baseline *)
  no_outline_modules : string list;
      (** modules standing in for system frameworks: their machine code is
          never harvested or rewritten (default [["system"]]) *)
  outlined_layout : [ `Append | `Caller_affinity ];
      (** where outlined functions live: appended at the end of the image in
          one dense region (LLVM's behaviour, the default) or placed next to
          their dominant static caller.  Implementing the latter — the
          paper's future-work item (3) — produced a negative result worth
          keeping: outlined helpers are *shared*, so caller-affinity
          placement scatters them across the image and inflates iTLB misses
          by orders of magnitude, while the dense appended region acts as a
          small hot page set.  See the [ablate] bench. *)
  run_canonicalize : bool;
      (** canonicalize commutative operand order before outlining (the
          paper's future-work item 1); off by default *)
  outline_engine : [ `Incremental | `Scratch ];
      (** which outliner engine drives {!Outcore.Repeat.run}: the default
          incremental engine (dirty-block caches across rounds) or the
          from-scratch reference.  Both produce byte-identical programs —
          the fuzz lattice checks exactly that. *)
}

val default_config : config
(** Whole-program, 5 rounds, attribute flag semantics, module-preserving
    data order, DCE on, all IR-merging baselines off. *)

val default_ios_config : config
(** Per-module with per-module outlining (Swift 5.2's [-Osize] behaviour,
    §VII-A's baseline). *)

type result = {
  program : Machine.Program.t;
  layout : Linker.layout;
  binary_size : int;
  code_size : int;
  timings : (string * float) list;   (** phase name, seconds, in order *)
  outline_stats : Outcore.Outliner.round_stats list;
  outline_profile : Outcore.Profile.t;
      (** per-outline-round phase split (sequence build, tree build,
          enumerate, score, rewrite); rendered by [sizeopt build --profile] *)
}

val build : ?config:config -> Ir.modul list -> (result, string) Stdlib.result
(** Run the configured pipeline over already-compiled modules. *)

val build_sources :
  ?config:config -> (string * string) list -> (result, string) Stdlib.result
(** Front-end included: (module name, Swiftlet source) pairs. *)
