type mode =
  | Per_module
  | Whole_program
  | Thin_wpo of { workers : int }

type layout_strategy =
  [ `Append | `Caller_affinity | `Order_file | `C3 | `Balanced
  | `Bp_compress of float | `Stitch ]

let layout_strategy_name = function
  | `Append -> "append"
  | `Caller_affinity -> "caller-affinity"
  | `Order_file -> "order-file"
  | `C3 -> "c3"
  | `Balanced -> "balanced"
  | `Bp_compress w -> Printf.sprintf "bp-compress(w=%g)" w
  | `Stitch -> "stitch"

(* The one place the valid-strategy list is written down: the CLI and the
   spec parser both route their errors through here. *)
let layout_strategy_list =
  "append, caller-affinity, order-file, c3, balanced, bp-compress[(w=0..1)] \
   or stitch"

let layout_strategy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let err () =
    Error (Printf.sprintf "unknown layout %S (want %s)" s layout_strategy_list)
  in
  match s with
  | "append" -> Ok `Append
  | "caller-affinity" -> Ok `Caller_affinity
  | "order-file" -> Ok `Order_file
  | "c3" -> Ok `C3
  | "balanced" -> Ok `Balanced
  | "bp-compress" -> Ok (`Bp_compress Pgo.Order.default_w)
  | "stitch" -> Ok `Stitch
  | _ ->
    (* bp-compress(w=0.3) — also accepts the bare bp-compress(0.3). *)
    let prefix = "bp-compress(" in
    let np = String.length prefix and n = String.length s in
    if n > np + 1 && String.sub s 0 np = prefix && s.[n - 1] = ')' then begin
      let inner = String.sub s np (n - np - 1) in
      let num =
        match String.index_opt inner '=' with
        | Some i when String.trim (String.sub inner 0 i) = "w" ->
          Some (String.sub inner (i + 1) (String.length inner - i - 1))
        | Some _ -> None
        | None -> Some inner
      in
      match Option.bind num (fun v -> float_of_string_opt (String.trim v)) with
      | Some w when w >= 0.0 && w <= 1.0 -> Ok (`Bp_compress w)
      | Some _ | None -> err ()
    end
    else err ()

type config = {
  mode : mode;
  outline_rounds : int;
  flag_semantics : Link.flag_semantics;
  data_order : Link.data_order;
  run_dce : bool;
  run_sil_outline : bool;
  sil_outline_min : int;
  run_merge_functions : bool;
  run_fmsa : bool;
  run_global_merge : bool;
  global_merge_min : int;
  global_merge_max_holes : int;
  entry_points : string list;
  no_outline_modules : string list;
  outlined_layout : layout_strategy;
  layout_profile : Pgo.Profile.t option;
  run_canonicalize : bool;
  outline_engine : [ `Incremental | `Scratch ];
  passes : Passman.spec list option;
  verify_each : bool;
  print_after : Passman.print_after;
  bisect_limit : int option;
  warm_outline : (Outcore.Outliner.engine * (string -> bool)) option;
}

let default_config =
  {
    mode = Whole_program;
    outline_rounds = 5;
    flag_semantics = Link.Attributes;
    data_order = Link.Module_preserving;
    run_dce = true;
    run_sil_outline = false;
    sil_outline_min = 8;
    run_merge_functions = false;
    run_fmsa = false;
    run_global_merge = false;
    global_merge_min = 4;
    global_merge_max_holes = 6;
    entry_points = [ "main" ];
    no_outline_modules = [ "system" ];
    outlined_layout = `Append;
    layout_profile = None;
    run_canonicalize = false;
    outline_engine = `Incremental;
    passes = None;
    verify_each = false;
    print_after = `Never;
    bisect_limit = None;
    warm_outline = None;
  }

let default_ios_config = { default_config with mode = Per_module }

type result = {
  program : Machine.Program.t;
  layout : Linker.layout;
  binary_size : int;
  code_size : int;
  function_order : string list option;
  timings : (string * float) list;
  timing_tree : Passman.timing list;
  pass_steps : Passman.step list;
  outline_stats : Outcore.Outliner.round_stats list;
  outline_profile : Outcore.Profile.t;
  thin_profile : Thinwpo.Engine.Report.t;
}

(* --- pipeline specs -------------------------------------------------------- *)

let mk name = { Passman.sp_name = name; sp_params = [] }
let mk1 name key v = { Passman.sp_name = name; sp_params = [ (key, string_of_int v) ] }

(* Lower the config's pass flags onto the spec the manager runs.  This is
   the old hardcoded sequencing made explicit: the "opt" passes in their
   fixed order, then the machine passes — canonicalization and layout only
   ever ran together with outlining, so they stay tied to rounds > 0. *)
let lowered_spec (c : config) =
  (if c.run_dce then [ mk "dce" ] else [])
  @ (if c.run_sil_outline then [ mk1 "sil-outline" "min" c.sil_outline_min ]
     else [])
  @ (if c.run_merge_functions then [ mk "merge-functions" ] else [])
  @ (if c.run_fmsa then [ mk "fmsa" ] else [])
  @ (if c.run_global_merge then
       [
         {
           Passman.sp_name = "global-merge";
           sp_params =
             [
               ("min", string_of_int c.global_merge_min);
               ("max-holes", string_of_int c.global_merge_max_holes);
             ];
         };
       ]
     else [])
  @
  if c.outline_rounds <= 0 then []
  else
    (if c.run_canonicalize then [ mk "canonicalize" ] else [])
    @ (match c.mode with
      | Thin_wpo { workers } ->
        [
          {
            Passman.sp_name = "thin-outline";
            sp_params =
              [
                ("workers", string_of_int workers);
                ("rounds", string_of_int c.outline_rounds);
              ];
          };
        ]
      | Per_module | Whole_program ->
        [ mk1 "outline" "rounds" c.outline_rounds ])
    @
    match c.outlined_layout with
    | `Caller_affinity -> [ mk "caller-affinity-layout" ]
    | `Append -> []
    | `Stitch -> [ mk "stitch" ]
    | `Order_file | `C3 | `Balanced | `Bp_compress _ ->
      (* The profile-guided strategies surface as the linked [pgo-layout]
         marker pass, so a spec string can request and parameterize them. *)
      let params =
        match c.outlined_layout with
        | `Bp_compress w ->
          [ ("strategy", "bp-compress"); ("w", Printf.sprintf "%g" w) ]
        | `Order_file -> [ ("strategy", "order-file") ]
        | `C3 -> [ ("strategy", "c3") ]
        | _ -> [ ("strategy", "balanced") ]
      in
      [ { Passman.sp_name = "pgo-layout"; sp_params = params } ]

let spec_of_config c =
  match c.passes with
  | Some specs -> specs
  | None -> lowered_spec c

(* Registries instantiated with inert environments, used only to resolve
   names, parameter lists and stage membership. *)
let template_mir = Passman.mir_passes ~keep:(fun _ -> false)

let template_machine =
  Passman.machine_passes
    {
      Passman.me_engine = `Scratch;
      me_scope = "";
      me_profile = Outcore.Profile.create ();
      me_on_stats = (fun _ -> ());
      me_thin_workers = 1;
      me_thin_report = Thinwpo.Engine.Report.create ();
      me_warm = None;
    }

let known_pass name =
  match Passman.find_pass template_mir name with
  | Some p -> Some p.Passman.p_params
  | None -> (
    match Passman.find_pass template_machine name with
    | Some p -> Some p.Passman.p_params
    | None -> None)

let config_of_passes ?(base = default_config) s =
  match Passman.parse s with
  | Error e -> Error ("bad pass pipeline: " ^ e)
  | Ok specs -> (
    match Passman.validate_specs ~known:known_pass specs with
    | Error e -> Error ("bad pass pipeline: " ^ e)
    | Ok () -> (
      try
        let find n =
          List.find_opt (fun sp -> sp.Passman.sp_name = n) specs
        in
        let has n = find n <> None in
        let outline_rounds =
          match find "outline" with
          | Some sp -> Passman.int_param sp "rounds" ~default:5
          | None -> (
            match find "thin-outline" with
            | Some sp -> Passman.int_param sp "rounds" ~default:5
            | None -> 0)
        in
        let sil_outline_min =
          match find "sil-outline" with
          | Some sp -> Passman.int_param sp "min" ~default:8
          | None -> base.sil_outline_min
        in
        let pgo_layout =
          match find "pgo-layout" with
          | None -> None
          | Some sp -> (
            let param k = List.assoc_opt k sp.Passman.sp_params in
            let w =
              match param "w" with
              | None -> Pgo.Order.default_w
              | Some v -> (
                match float_of_string_opt v with
                | Some w when w >= 0.0 && w <= 1.0 -> w
                | Some _ | None ->
                  failwith
                    (Printf.sprintf "pgo-layout: w=%s is not in 0..1" v))
            in
            match Option.value ~default:"bp-compress" (param "strategy") with
            | "order-file" -> Some `Order_file
            | "c3" -> Some `C3
            | "balanced" -> Some `Balanced
            | "bp-compress" -> Some (`Bp_compress w)
            | s ->
              failwith
                (Printf.sprintf
                   "pgo-layout: unknown strategy %S (want order-file, c3, \
                    balanced or bp-compress)"
                   s))
        in
        let global_merge_min, global_merge_max_holes =
          match find "global-merge" with
          | Some sp ->
            ( Passman.int_param sp "min" ~default:4,
              Passman.int_param sp "max-holes" ~default:6 )
          | None -> (base.global_merge_min, base.global_merge_max_holes)
        in
        Ok
          {
            base with
            run_dce = has "dce";
            run_sil_outline = has "sil-outline";
            sil_outline_min;
            run_merge_functions = has "merge-functions";
            run_fmsa = has "fmsa";
            run_global_merge = has "global-merge";
            global_merge_min;
            global_merge_max_holes;
            run_canonicalize = has "canonicalize";
            outline_rounds;
            outlined_layout =
              (if has "caller-affinity-layout" then `Caller_affinity
               else if has "stitch" then `Stitch
               else
                 match pgo_layout with
                 | Some l -> l
                 | None -> (
                   match base.outlined_layout with
                   | `Caller_affinity | `Stitch -> `Append
                   | l -> l));
            passes = Some specs;
          }
      with Failure e -> Error ("bad pass pipeline: " ^ e)))

(* --- shared helpers -------------------------------------------------------- *)

(* System-framework modules ship outside the app binary on a real device;
   marking them no_outline keeps the outliner away, as §VII-B's execution
   profile assumes. *)
let mark_no_outline config (p : Machine.Program.t) =
  if config.no_outline_modules = [] then p
  else
    Machine.Program.replace_funcs p
      (List.map
         (fun (f : Machine.Mfunc.t) ->
           if List.mem f.Machine.Mfunc.from_module config.no_outline_modules then
             { f with Machine.Mfunc.no_outline = true }
           else f)
         p.Machine.Program.funcs)

(* --- the timing tree ------------------------------------------------------- *)

let delta_note (st : Passman.step) =
  if not st.Passman.st_applied then "skipped (opt-bisect)"
  else if st.Passman.st_before = st.Passman.st_after then
    Printf.sprintf "%d" st.Passman.st_after
  else Printf.sprintf "%d -> %d" st.Passman.st_before st.Passman.st_after

(* One tree: coarse phases at the root, the pass steps of each phase as
   children, outline rounds as children of the outline pass, and the
   outliner's per-phase split (from Outcore.Profile) — or, for thin-outline
   rounds, the per-shard timing subtree plus the global decision round
   (from the thin report) — as grandchildren. *)
let build_timing_tree phases steps profile thin_report =
  let steps = Array.of_list steps in
  let prof = ref (Outcore.Profile.rounds profile) in
  let next_prof () =
    match !prof with
    | [] -> None
    | r :: rest ->
      prof := rest;
      Some r
  in
  let tprof = ref (Thinwpo.Engine.Report.rounds thin_report) in
  let next_tprof () =
    match !tprof with
    | [] -> None
    | r :: rest ->
      tprof := rest;
      Some r
  in
  let step_name (st : Passman.step) =
    if st.Passman.st_unit = "" then st.Passman.st_pass
    else st.Passman.st_unit ^ "/" ^ st.Passman.st_pass
  in
  let children lo hi =
    let out = ref [] in
    let i = ref lo in
    while !i < hi do
      let st = steps.(!i) in
      if st.Passman.st_detail = "" then begin
        out :=
          Passman.leaf ~note:(delta_note st) (step_name st)
            st.Passman.st_seconds
          :: !out;
        incr i
      end
      else begin
        (* a run of sub-steps of one pass instance (e.g. outline rounds) *)
        let kids = ref [] in
        let j = ref !i in
        while
          !j < hi
          && steps.(!j).Passman.st_pass = st.Passman.st_pass
          && steps.(!j).Passman.st_unit = st.Passman.st_unit
          && steps.(!j).Passman.st_detail <> ""
        do
          let s = steps.(!j) in
          let grand =
            if s.Passman.st_pass = "outline" && s.Passman.st_applied then
              match next_prof () with
              | Some rp ->
                [
                  Passman.leaf "seq-build" rp.Outcore.Profile.rp_seq_build;
                  Passman.leaf "tree-build" rp.Outcore.Profile.rp_tree_build;
                  Passman.leaf "enumerate" rp.Outcore.Profile.rp_enumerate;
                  Passman.leaf "score" rp.Outcore.Profile.rp_score;
                  Passman.leaf "rewrite" rp.Outcore.Profile.rp_rewrite;
                ]
              | None -> []
            else if s.Passman.st_pass = "thin-outline" && s.Passman.st_applied
            then
              match next_tprof () with
              | Some tr ->
                List.map
                  (fun (sh : Thinwpo.Engine.Report.shard) ->
                    Passman.leaf
                      ~note:(Printf.sprintf "%d funcs" sh.rs_funcs)
                      ("shard " ^ sh.rs_module)
                      (sh.rs_discover +. sh.rs_rewrite))
                  tr.Thinwpo.Engine.Report.rr_shards
                @ [
                    Passman.leaf
                      ~note:
                        (Printf.sprintf "%d selected"
                           tr.Thinwpo.Engine.Report.rr_selected)
                      "global-decision" tr.Thinwpo.Engine.Report.rr_decide;
                  ]
              | None -> []
            else []
          in
          kids :=
            Passman.node ~note:(delta_note s) ~seconds:s.Passman.st_seconds
              s.Passman.st_detail grand
            :: !kids;
          incr j
        done;
        out := Passman.node (step_name st) (List.rev !kids) :: !out;
        i := !j
      end
    done;
    List.rev !out
  in
  List.map
    (fun (name, dt, lo, hi) -> Passman.node ~seconds:dt name (children lo hi))
    phases

(* --- the pass-manager pipeline --------------------------------------------- *)

let build ?dump ?(config = default_config) modules =
  let timings = ref [] in
  let phases = ref [] in
  let outline_stats = ref [] in
  let outline_profile = Outcore.Profile.create () in
  let thin_report = Thinwpo.Engine.Report.create () in
  let ctx =
    Passman.create_ctx ~verify_each:config.verify_each
      ~print_after:config.print_after ?bisect_limit:config.bisect_limit ?dump
      ()
  in
  let timed name f =
    let steps_before = List.length (Passman.steps ctx) in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    timings := (name, dt) :: !timings;
    phases := (name, dt, steps_before, List.length (Passman.steps ctx)) :: !phases;
    r
  in
  try
    let specs = spec_of_config config in
    (match Passman.validate_specs ~known:known_pass specs with
    | Ok () -> ()
    | Error e -> failwith e);
    let keep (f : Ir.func) = List.mem f.Ir.name config.entry_points in
    let mir_registry = Passman.mir_passes ~keep in
    let thin_workers =
      match config.mode with Thin_wpo { workers } -> workers | _ -> 1
    in
    let machine_registry ?(profile = outline_profile)
        ?(on_stats = fun s -> outline_stats := !outline_stats @ s) scope =
      Passman.machine_passes
        {
          Passman.me_engine = config.outline_engine;
          me_scope = scope;
          me_profile = profile;
          me_on_stats = on_stats;
          me_thin_workers = thin_workers;
          me_thin_report = thin_report;
          (* The warm engine is whole-program state: per-module scopes get
             their own dirty-set reuse within a run but never share caches
             across requests (module-scoped symbol arrays would leak between
             apps). *)
          me_warm = (if scope = "" then config.warm_outline else None);
        }
    in
    let mir_specs, machine_specs =
      List.partition
        (fun sp -> Passman.find_pass template_mir sp.Passman.sp_name <> None)
        specs
    in
    let machine_unit_specs, machine_linked_specs =
      List.partition
        (fun sp ->
          match Passman.find_pass template_machine sp.Passman.sp_name with
          | Some p -> not p.Passman.p_linked
          | None -> true)
        machine_specs
    in
    (* global-merge is the one MIR pass whose decision spans compilation
       units, so the per-module modes split their MIR spec around it:
       the prefix runs per unit, the merge runs once over every unit,
       the suffix (and the machine unit passes) run per unit after. *)
    let mir_local_specs, gm_spec, mir_post_specs =
      let rec split acc = function
        | [] -> (List.rev acc, None, [])
        | sp :: rest when sp.Passman.sp_name = "global-merge" ->
          (List.rev acc, Some sp, rest)
        | sp :: rest -> split (sp :: acc) rest
      in
      split [] mir_specs
    in
    (* One bisect step on the parent context — the decision is global, so
       it cannot live inside any unit's step reservation; verify-each and
       print-after apply per module, as run_passes would. *)
    let global_merge_phase ~workers sp ms =
      let min_instrs = Passman.int_param sp "min" ~default:4 in
      let max_holes = Passman.int_param sp "max-holes" ~default:6 in
      let size ms =
        List.fold_left (fun a m -> a + Ir.module_instr_count m) 0 ms
      in
      let before = size ms in
      if Passman.gate ctx ~pass:"global-merge" ~detail:"" then begin
        let t0 = Unix.gettimeofday () in
        let out =
          fst
            (Global_merge.run_modules ~workers ~min_instrs ~max_holes
               ~keep:(fun (f : Ir.func) ->
                 List.mem f.Ir.name config.entry_points)
               ms)
        in
        Passman.record ctx
          {
            Passman.st_pass = "global-merge";
            st_detail = "";
            st_unit = "";
            st_applied = true;
            st_seconds = Unix.gettimeofday () -. t0;
            st_before = before;
            st_after = size out;
          };
        if Passman.verify_each ctx then
          List.iter
            (fun (m : Ir.modul) ->
              match Ir.validate m with
              | Ok () -> ()
              | Error e ->
                failwith
                  (Printf.sprintf "verify-each after %s: %s"
                     (m.Ir.m_name ^ "/global-merge")
                     e))
            out;
        if Passman.should_print_after ctx "global-merge" then
          List.iter
            (fun (m : Ir.modul) ->
              Passman.dump ctx
                (m.Ir.m_name ^ "/global-merge")
                (Format.asprintf "%a" Ir.pp_modul m))
            out;
        out
      end
      else begin
        Passman.record ctx
          {
            Passman.st_pass = "global-merge";
            st_detail = "";
            st_unit = "";
            st_applied = false;
            st_seconds = 0.;
            st_before = before;
            st_after = before;
          };
        ms
      end
    in
    let program =
      match config.mode with
      | Whole_program ->
        (* llvm-link -> opt -> llc(+machine passes over everything). *)
        let merged =
          timed "llvm-link" (fun () ->
              match
                Link.link ~flag_semantics:config.flag_semantics
                  ~data_order:config.data_order ~name:"whole" modules
              with
              | Ok m -> m
              | Error e -> failwith (Link.error_to_string e))
        in
        let optimized =
          timed "opt" (fun () ->
              Passman.run_passes ctx Passman.mir_stage mir_registry mir_specs
                merged)
        in
        let machine =
          timed "llc" (fun () ->
              mark_no_outline config (Codegen.compile_modul optimized))
        in
        if machine_specs <> [] then
          timed "machine-outliner" (fun () ->
              Passman.run_passes ctx Passman.machine_stage
                (machine_registry "") machine_specs machine)
        else machine
      | Per_module -> (
        (* Independent per-module compilation, then the system linker.
           The same registered passes run, per compilation unit; linked
           passes (layout) wait for the merge. *)
        let finish_units (m : Ir.modul) post_specs =
          let optimized =
            Passman.run_passes ctx Passman.mir_stage mir_registry
              ~unit_name:m.Ir.m_name post_specs m
          in
          let machine =
            mark_no_outline config (Codegen.compile_modul optimized)
          in
          if machine_unit_specs <> [] then
            Passman.run_passes ctx Passman.machine_stage
              (machine_registry m.Ir.m_name) ~unit_name:m.Ir.m_name
              machine_unit_specs machine
          else machine
        in
        let units =
          match gm_spec with
          | None ->
            timed "compile-modules" (fun () ->
                List.map (fun m -> finish_units m mir_specs) modules)
          | Some gm ->
            let locals =
              timed "compile-modules-local" (fun () ->
                  List.map
                    (fun (m : Ir.modul) ->
                      Passman.run_passes ctx Passman.mir_stage mir_registry
                        ~unit_name:m.Ir.m_name mir_local_specs m)
                    modules)
            in
            let merged_mods =
              timed "global-merge" (fun () ->
                  global_merge_phase ~workers:1 gm locals)
            in
            timed "compile-modules" (fun () ->
                List.map (fun m -> finish_units m mir_post_specs) merged_mods)
        in
        timed "system-linker-merge" (fun () ->
            let merged = Machine.Program.concat units in
            if machine_linked_specs <> [] then
              Passman.run_passes ctx Passman.machine_stage
                (machine_registry "") machine_linked_specs merged
            else merged))
      | Thin_wpo { workers } ->
        (* ThinLTO's shape: the per-module phase of the iOS pipeline, but
           on a domain pool, then the linked passes — thin-outline above
           all — over the merge.  Each unit runs in a forked pass context
           with a precomputed bisect-step reservation and a private
           outline profile/stats sink, so step numbering, dump order, and
           stats order are functions of the module list alone, never of
           domain scheduling.  A global-merge spec splits the phase in
           three — parallel local MIR, the serial cross-module merge on
           the parent context, parallel finish — mirroring the merger's
           own summary-exchange protocol. *)
        let workers = Thinwpo.Pool.resolve_workers workers in
        let marr =
          match gm_spec with
          | None -> Array.of_list modules
          | Some gm ->
            let pre_reserved = Passman.reserved_steps mir_local_specs in
            let locals =
              timed "compile-modules-local" (fun () ->
                  let forked =
                    Array.mapi
                      (fun i _ -> Passman.fork ctx ~offset:(i * pre_reserved))
                      (Array.of_list modules)
                  in
                  let out =
                    Thinwpo.Pool.map ~workers
                      (fun i ->
                        let m = List.nth modules i in
                        Passman.run_passes forked.(i) Passman.mir_stage
                          mir_registry ~unit_name:m.Ir.m_name mir_local_specs
                          m)
                      (Array.init (List.length modules) Fun.id)
                  in
                  Passman.join ctx
                    ~advance:(List.length modules * pre_reserved)
                    (Array.to_list forked);
                  out)
            in
            timed "global-merge" (fun () ->
                Array.of_list
                  (global_merge_phase ~workers gm (Array.to_list locals)))
        in
        let finish_specs =
          match gm_spec with None -> mir_specs | Some _ -> mir_post_specs
        in
        let unit_reserved =
          Passman.reserved_steps (finish_specs @ machine_unit_specs)
        in
        let units =
          timed "compile-modules" (fun () ->
              let forked =
                Array.mapi
                  (fun i _ -> Passman.fork ctx ~offset:(i * unit_reserved))
                  marr
              in
              let compiled =
                Thinwpo.Pool.map ~workers
                  (fun i ->
                    let m = marr.(i) in
                    let fctx = forked.(i) in
                    let profile = Outcore.Profile.create () in
                    let stats = ref [] in
                    let optimized =
                      Passman.run_passes fctx Passman.mir_stage mir_registry
                        ~unit_name:m.Ir.m_name finish_specs m
                    in
                    let machine =
                      mark_no_outline config (Codegen.compile_modul optimized)
                    in
                    let machine =
                      if machine_unit_specs <> [] then
                        Passman.run_passes fctx Passman.machine_stage
                          (machine_registry ~profile
                             ~on_stats:(fun s -> stats := !stats @ s)
                             m.Ir.m_name)
                          ~unit_name:m.Ir.m_name machine_unit_specs machine
                      else machine
                    in
                    (machine, profile, !stats))
                  (Array.init (Array.length marr) Fun.id)
              in
              Passman.join ctx
                ~advance:(Array.length marr * unit_reserved)
                (Array.to_list forked);
              (* Merge the per-unit sinks in module order. *)
              Array.iter
                (fun (_, profile, stats) ->
                  List.iter
                    (fun rp ->
                      let rp' =
                        Outcore.Profile.new_round outline_profile
                          rp.Outcore.Profile.rp_round
                      in
                      rp'.Outcore.Profile.rp_seq_build <-
                        rp.Outcore.Profile.rp_seq_build;
                      rp'.Outcore.Profile.rp_tree_build <-
                        rp.Outcore.Profile.rp_tree_build;
                      rp'.Outcore.Profile.rp_enumerate <-
                        rp.Outcore.Profile.rp_enumerate;
                      rp'.Outcore.Profile.rp_score <-
                        rp.Outcore.Profile.rp_score;
                      rp'.Outcore.Profile.rp_rewrite <-
                        rp.Outcore.Profile.rp_rewrite)
                    (Outcore.Profile.rounds profile);
                  outline_stats := !outline_stats @ stats)
                compiled;
              Array.to_list (Array.map (fun (p, _, _) -> p) compiled))
        in
        timed "system-linker-merge" (fun () ->
            let merged = Machine.Program.concat units in
            if machine_linked_specs <> [] then
              Passman.run_passes ctx Passman.machine_stage
                (machine_registry "") machine_linked_specs merged
            else merged)
    in
    (match Machine.Program.validate program with
    | Ok () -> ()
    | Error e -> failwith ("pipeline produced invalid program: " ^ e));
    (* Profile-guided strategies close the loop here: use the recorded
       profile (--profile-in), or self-profile by tracing a [main] run of
       the just-built program. *)
    let layout_profile () =
      match config.layout_profile with
      | Some p -> p
      | None ->
        timed "pgo-collect" (fun () ->
            Pgo.Collect.collect
              ~config:
                {
                  Pgo.Collect.default_config with
                  Perfsim.Interp.max_steps = 20_000_000;
                }
              ~workload:"self" ~entries:[ "main" ] program)
    in
    let program, function_order =
      match config.outlined_layout with
      | `Append | `Caller_affinity -> (program, None)
      | (`Order_file | `C3 | `Balanced | `Bp_compress _) as strategy ->
        let profile = layout_profile () in
        ( program,
          Some
            (timed "pgo-layout" (fun () ->
                 Pgo.Order.compute strategy profile program)) )
      | `Stitch ->
        (* Block-granularity placement transforms the program itself:
           cold blocks split to the [__text_cold] region, fallthroughs
           materialized where the split separates them, then chains
           ordered along the hottest interprocedural edges. *)
        let profile = layout_profile () in
        let split =
          timed "stitch-split" (fun () ->
              Blocklayout.split_program ~profile program)
        in
        (match Machine.Program.validate split with
        | Ok () -> ()
        | Error e -> failwith ("stitch produced invalid program: " ^ e));
        let order =
          timed "stitch-order" (fun () ->
              Blocklayout.stitch_order ~profile split)
        in
        (split, Some order)
    in
    let layout =
      timed "system-linker" (fun () ->
          Linker.link ?order:function_order program)
    in
    Ok
      {
        program;
        layout;
        binary_size = Linker.binary_size layout;
        code_size = layout.Linker.text_size;
        function_order;
        timings = List.rev !timings;
        timing_tree =
          build_timing_tree (List.rev !phases) (Passman.steps ctx)
            outline_profile thin_report;
        pass_steps = Passman.steps ctx;
        outline_stats = !outline_stats;
        outline_profile;
        thin_profile = thin_report;
      }
  with Failure e -> Error e

let build_sources ?dump ?config sources =
  match Swiftlet.Compile.compile_program sources with
  | Error e -> Error e
  | Ok modules -> build ?dump ?config modules

(* --- the pre-refactor sequencing (transitional reference) ------------------ *)

(* The hardcoded pipeline exactly as it was before the pass-manager
   refactor, kept so the fuzz lattice can assert the refactor is
   observationally exact: the default config must produce byte-identical
   programs through both paths.  Delete once the differential has soaked. *)

let reference_timed timings name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  timings := (name, Unix.gettimeofday () -. t0) :: !timings;
  r

let reference_opt_module config (m : Ir.modul) =
  let m = if config.run_dce then fst (Dce.run m) else m in
  let m =
    if config.run_sil_outline then
      fst (Swiftlet.Sil_outline.run ~min_occurrences:config.sil_outline_min m)
    else m
  in
  let keep (f : Ir.func) = List.mem f.Ir.name config.entry_points in
  let m =
    if config.run_merge_functions then fst (Merge_functions.run ~keep m) else m
  in
  let m = if config.run_fmsa then fst (Fmsa.run ~keep m) else m in
  m

let reference_outline_options ~scope =
  { Outcore.Outliner.default_options with scope_name = scope }

let build_reference ?(config = default_config) modules =
  let timings = ref [] in
  let outline_stats = ref [] in
  let outline_profile = Outcore.Profile.create () in
  try
    let program =
      match config.mode with
      | Thin_wpo _ ->
        failwith "build_reference: thin-WPO postdates the pass-manager refactor"
      | Whole_program ->
        let merged =
          reference_timed timings "llvm-link" (fun () ->
              match
                Link.link ~flag_semantics:config.flag_semantics
                  ~data_order:config.data_order ~name:"whole" modules
              with
              | Ok m -> m
              | Error e -> failwith (Link.error_to_string e))
        in
        let optimized =
          reference_timed timings "opt" (fun () ->
              reference_opt_module config merged)
        in
        let machine =
          reference_timed timings "llc" (fun () ->
              mark_no_outline config (Codegen.compile_modul optimized))
        in
        if config.outline_rounds > 0 then
          reference_timed timings "machine-outliner" (fun () ->
              let machine =
                if config.run_canonicalize then
                  fst (Outcore.Canonicalize.run machine)
                else machine
              in
              let p, stats =
                Outcore.Repeat.run
                  ~options:(reference_outline_options ~scope:"")
                  ~profile:outline_profile ~engine:config.outline_engine
                  ~rounds:config.outline_rounds machine
              in
              outline_stats := stats;
              match config.outlined_layout with
              | `Caller_affinity -> Outcore.Layout.optimize p
              | `Append | `Order_file | `C3 | `Balanced | `Bp_compress _
              | `Stitch ->
                p)
        else machine
      | Per_module ->
        let units =
          reference_timed timings "compile-modules" (fun () ->
              List.map
                (fun (m : Ir.modul) ->
                  let optimized = reference_opt_module config m in
                  let machine =
                    mark_no_outline config (Codegen.compile_modul optimized)
                  in
                  if config.outline_rounds > 0 then begin
                    let p, stats =
                      Outcore.Repeat.run
                        ~options:(reference_outline_options ~scope:m.Ir.m_name)
                        ~profile:outline_profile ~engine:config.outline_engine
                        ~rounds:config.outline_rounds machine
                    in
                    outline_stats := !outline_stats @ stats;
                    p
                  end
                  else machine)
                modules)
        in
        reference_timed timings "system-linker-merge" (fun () ->
            let merged = Machine.Program.concat units in
            match config.outlined_layout with
            | `Caller_affinity when config.outline_rounds > 0 ->
              Outcore.Layout.optimize merged
            | `Caller_affinity | `Append | `Order_file | `C3 | `Balanced
            | `Bp_compress _ | `Stitch ->
              merged)
    in
    (match Machine.Program.validate program with
    | Ok () -> ()
    | Error e -> failwith ("pipeline produced invalid program: " ^ e));
    let function_order =
      match config.outlined_layout with
      | `Append | `Caller_affinity -> None
      | `Stitch ->
        failwith "build_reference: stitch postdates the pass-manager refactor"
      | (`Order_file | `C3 | `Balanced | `Bp_compress _) as strategy ->
        let profile =
          match config.layout_profile with
          | Some p -> p
          | None ->
            reference_timed timings "pgo-collect" (fun () ->
                Pgo.Collect.collect
                  ~config:
                    {
                      Pgo.Collect.default_config with
                      Perfsim.Interp.max_steps = 20_000_000;
                    }
                  ~workload:"self" ~entries:[ "main" ] program)
        in
        Some
          (reference_timed timings "pgo-layout" (fun () ->
               Pgo.Order.compute strategy profile program))
    in
    let layout =
      reference_timed timings "system-linker" (fun () ->
          Linker.link ?order:function_order program)
    in
    Ok
      {
        program;
        layout;
        binary_size = Linker.binary_size layout;
        code_size = layout.Linker.text_size;
        function_order;
        timings = List.rev !timings;
        timing_tree = [];
        pass_steps = [];
        outline_stats = !outline_stats;
        outline_profile;
        thin_profile = Thinwpo.Engine.Report.create ();
      }
  with Failure e -> Error e
