type mode =
  | Per_module
  | Whole_program

type layout_strategy =
  [ `Append | `Caller_affinity | `Order_file | `C3 | `Balanced ]

type config = {
  mode : mode;
  outline_rounds : int;
  flag_semantics : Link.flag_semantics;
  data_order : Link.data_order;
  run_dce : bool;
  run_sil_outline : bool;
  run_merge_functions : bool;
  run_fmsa : bool;
  no_outline_modules : string list;
  outlined_layout : layout_strategy;
  layout_profile : Pgo.Profile.t option;
  run_canonicalize : bool;
  outline_engine : [ `Incremental | `Scratch ];
}

let default_config =
  {
    mode = Whole_program;
    outline_rounds = 5;
    flag_semantics = Link.Attributes;
    data_order = Link.Module_preserving;
    run_dce = true;
    run_sil_outline = false;
    run_merge_functions = false;
    run_fmsa = false;
    no_outline_modules = [ "system" ];
    outlined_layout = `Append;
    layout_profile = None;
    run_canonicalize = false;
    outline_engine = `Incremental;
  }

let default_ios_config = { default_config with mode = Per_module }

type result = {
  program : Machine.Program.t;
  layout : Linker.layout;
  binary_size : int;
  code_size : int;
  function_order : string list option;
  timings : (string * float) list;
  outline_stats : Outcore.Outliner.round_stats list;
  outline_profile : Outcore.Profile.t;
}

let timed timings name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  timings := (name, Unix.gettimeofday () -. t0) :: !timings;
  r

(* The "opt" stage: IR-level passes in a fixed order. *)
let opt_module config (m : Ir.modul) =
  let m = if config.run_dce then fst (Dce.run m) else m in
  let m =
    if config.run_sil_outline then fst (Swiftlet.Sil_outline.run ~min_occurrences:8 m)
    else m
  in
  let keep (f : Ir.func) = String.equal f.Ir.name "main" in
  let m =
    if config.run_merge_functions then fst (Merge_functions.run ~keep m) else m
  in
  let m = if config.run_fmsa then fst (Fmsa.run ~keep m) else m in
  m

let outline_options ~scope =
  { Outcore.Outliner.default_options with scope_name = scope }

(* System-framework modules ship outside the app binary on a real device;
   marking them no_outline keeps the outliner away, as §VII-B's execution
   profile assumes. *)
let mark_no_outline config (p : Machine.Program.t) =
  if config.no_outline_modules = [] then p
  else
    Machine.Program.replace_funcs p
      (List.map
         (fun (f : Machine.Mfunc.t) ->
           if List.mem f.Machine.Mfunc.from_module config.no_outline_modules then
             { f with Machine.Mfunc.no_outline = true }
           else f)
         p.Machine.Program.funcs)

let build ?(config = default_config) modules =
  let timings = ref [] in
  let outline_stats = ref [] in
  let outline_profile = Outcore.Profile.create () in
  try
    let program =
      match config.mode with
      | Whole_program ->
        (* llvm-link -> opt -> llc(+outliner over everything). *)
        let merged =
          timed timings "llvm-link" (fun () ->
              match
                Link.link ~flag_semantics:config.flag_semantics
                  ~data_order:config.data_order ~name:"whole" modules
              with
              | Ok m -> m
              | Error e -> failwith (Link.error_to_string e))
        in
        let optimized = timed timings "opt" (fun () -> opt_module config merged) in
        let machine =
          timed timings "llc" (fun () ->
              mark_no_outline config (Codegen.compile_modul optimized))
        in
        if config.outline_rounds > 0 then
          timed timings "machine-outliner" (fun () ->
              let machine =
                if config.run_canonicalize then fst (Outcore.Canonicalize.run machine)
                else machine
              in
              let p, stats =
                Outcore.Repeat.run
                  ~options:(outline_options ~scope:"")
                  ~profile:outline_profile ~engine:config.outline_engine
                  ~rounds:config.outline_rounds machine
              in
              outline_stats := stats;
              match config.outlined_layout with
              | `Caller_affinity -> Outcore.Layout.optimize p
              | `Append | `Order_file | `C3 | `Balanced -> p)
        else machine
      | Per_module ->
        (* Independent per-module compilation, then the system linker. *)
        let units =
          timed timings "compile-modules" (fun () ->
              List.map
                (fun (m : Ir.modul) ->
                  let optimized = opt_module config m in
                  let machine = mark_no_outline config (Codegen.compile_modul optimized) in
                  if config.outline_rounds > 0 then begin
                    let p, stats =
                      Outcore.Repeat.run
                        ~options:(outline_options ~scope:m.Ir.m_name)
                        ~profile:outline_profile ~engine:config.outline_engine
                        ~rounds:config.outline_rounds machine
                    in
                    outline_stats := !outline_stats @ stats;
                    p
                  end
                  else machine)
                modules)
        in
        timed timings "system-linker-merge" (fun () ->
            let merged = Machine.Program.concat units in
            match config.outlined_layout with
            | `Caller_affinity when config.outline_rounds > 0 ->
              Outcore.Layout.optimize merged
            | `Caller_affinity | `Append | `Order_file | `C3 | `Balanced ->
              merged)
    in
    (match Machine.Program.validate program with
    | Ok () -> ()
    | Error e -> failwith ("pipeline produced invalid program: " ^ e));
    (* Profile-guided strategies close the loop here: use the recorded
       profile (--profile-in), or self-profile by tracing a [main] run of
       the just-built program. *)
    let function_order =
      match config.outlined_layout with
      | `Append | `Caller_affinity -> None
      | (`Order_file | `C3 | `Balanced) as strategy ->
        let profile =
          match config.layout_profile with
          | Some p -> p
          | None ->
            timed timings "pgo-collect" (fun () ->
                Pgo.Collect.collect
                  ~config:
                    {
                      Pgo.Collect.default_config with
                      Perfsim.Interp.max_steps = 20_000_000;
                    }
                  ~workload:"self" ~entries:[ "main" ] program)
        in
        Some
          (timed timings "pgo-layout" (fun () ->
               Pgo.Order.compute strategy profile program))
    in
    let layout =
      timed timings "system-linker" (fun () ->
          Linker.link ?order:function_order program)
    in
    Ok
      {
        program;
        layout;
        binary_size = Linker.binary_size layout;
        code_size = layout.Linker.text_size;
        function_order;
        timings = List.rev !timings;
        outline_stats = !outline_stats;
        outline_profile;
      }
  with Failure e -> Error e

let build_sources ?config sources =
  match Swiftlet.Compile.compile_program sources with
  | Error e -> Error e
  | Ok modules -> build ?config modules
