open Machine

type trace_event =
  | Ev_entry of string
  | Ev_call of { caller : string; callee : string; tail : bool }
  | Ev_first_touch of string
  | Ev_block of { func : string; label : string }

type config = {
  device : Device.t;
  os : Device.os;
  max_steps : int;
  model_perf : bool;
  unknown_extern : [ `Error | `Noop ];
  trace_ring : int;  (* >0: keep a ring of recent pc slots, dumped on errors *)
  trace : (trace_event -> unit) option;
}

let default_config =
  {
    device = Device.default;
    os = Device.default_os;
    max_steps = 200_000_000;
    model_perf = true;
    unknown_extern = `Error;
    trace_ring = 0;
    trace = None;
  }

type result = {
  exit_value : int;
  output : int list;
  steps : int;
  outlined_steps : int;
  cycles : int;
  icache_misses : int;
  icache_accesses : int;
  itlb_misses : int;
  dtlb_misses : int;
  data_pages_touched : int;
  data_fault_cycles : int;
  cold_start_pages : int;
  cold_start_cost : int;
  branches : int;
  calls : int;
}

type error =
  | Unknown_symbol of string
  | Null_access
  | Unaligned_access of int
  | Bad_jump of int
  | Step_limit_exceeded
  | Trap of string
  | No_entry of string

let error_to_string = function
  | Unknown_symbol s -> "unknown symbol: " ^ s
  | Null_access -> "null access"
  | Unaligned_access a -> Printf.sprintf "unaligned access at 0x%x" a
  | Bad_jump a -> Printf.sprintf "jump to unmapped address 0x%x" a
  | Step_limit_exceeded -> "step limit exceeded"
  | Trap s -> "trap: " ^ s
  | No_entry s -> "entry function not found: " ^ s

exception Exec_error of error

(* Resolved control transfer targets. *)
type target =
  | T_slot of int
  | T_extern of string

type slot =
  | S_insn of Insn.t
  | S_ret
  | S_b of int
  | S_bcond of Cond.t * int * int
  | S_cbz of Reg.t * int * int
  | S_cbnz of Reg.t * int * int
  | S_tail of target
  | S_bl of target * Insn.t   (* keep the original insn for cost/trace *)
  | S_blr of Reg.t

let exit_address = 0xE000
let heap_base = 0x2000_0000
let stack_top = 0x6000_0000

type state = {
  cfg : config;
  slots : slot array;
  addr_of_slot : int array;
  slot_of_addr : (int, int) Hashtbl.t;
  extern_of_addr : (int, string) Hashtbl.t;
  layout : Linker.layout;
  regs : int array;
  mem : (int, int) Hashtbl.t;   (* word-indexed: address / 8 *)
  mutable heap_ptr : int;
  mutable output_rev : int list;
  mutable steps : int;
  mutable cycles : int;
  mutable branches : int;
  mutable calls : int;
  icache : Icache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  data_pages : (int, unit) Hashtbl.t;
  mutable data_fault_cycles : int;
  mutable shadow_stack : string list;  (* callee names, innermost first *)
  mutable outlined_steps : int;
  (* Cold-start page-in trace: distinct 16 KiB text pages fetched before
     the entry frame's first completed call returns (the "first frame
     drawn" marker).  [cold_depth] counts live frames starting at the
     entry frame; the marker fires when control returns into the entry
     frame after at least one intra-image call, and a run that never
     calls is cold throughout. *)
  cold_pages : (int, unit) Hashtbl.t;
  mutable cold_depth : int;
  mutable cold_called : bool;
  mutable cold_done : bool;
  mutable cold_last_page : int;
}

let scale st c = int_of_float (float_of_int c *. st.cfg.os.Device.penalty_scale)

let get_reg st r =
  match r with
  | Reg.XZR -> 0
  | _ -> st.regs.(Reg.index r)

let set_reg st r v =
  match r with
  | Reg.XZR -> ()
  | _ -> st.regs.(Reg.index r) <- v

let operand st = function
  | Insn.Rop r -> get_reg st r
  | Insn.Imm n -> n

let data_touch st addr =
  if st.cfg.model_perf then begin
    if not (Tlb.access st.dtlb addr) then
      st.cycles <- st.cycles + scale st st.cfg.device.Device.dtlb_miss_penalty;
    let page = addr / st.cfg.os.Device.page_bytes in
    if not (Hashtbl.mem st.data_pages page) then begin
      Hashtbl.replace st.data_pages page ();
      let pen = scale st st.cfg.device.Device.data_fault_penalty in
      st.cycles <- st.cycles + pen;
      st.data_fault_cycles <- st.data_fault_cycles + pen
    end
  end

let load st addr =
  if addr = 0 then raise (Exec_error Null_access);
  if addr land 7 <> 0 then raise (Exec_error (Unaligned_access addr));
  data_touch st addr;
  Option.value ~default:0 (Hashtbl.find_opt st.mem (addr asr 3))

let store st addr v =
  if addr = 0 then raise (Exec_error Null_access);
  if addr land 7 <> 0 then raise (Exec_error (Unaligned_access addr));
  data_touch st addr;
  Hashtbl.replace st.mem (addr asr 3) v

let addr_mode st (a : Insn.addr) =
  (* Returns the effective access address; applies write-back. *)
  let base = get_reg st a.base in
  match a.mode with
  | Insn.Offset -> base + a.off
  | Insn.Pre ->
    let ea = base + a.off in
    set_reg st a.base ea;
    ea
  | Insn.Post ->
    set_reg st a.base (base + a.off);
    base

let binop_eval op a b =
  match (op : Insn.binop) with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Sdiv -> if b = 0 then 0 else a / b (* AArch64: division by zero yields 0 *)
  | Insn.And -> a land b
  | Insn.Orr -> a lor b
  | Insn.Eor -> a lxor b
  | Insn.Lsl -> a lsl (b land 63)
  | Insn.Lsr -> a lsr (b land 63)
  | Insn.Asr -> a asr (b land 63)

let alloc st bytes =
  let size = (max bytes 8 + 7) / 8 * 8 in
  let p = st.heap_ptr in
  st.heap_ptr <- st.heap_ptr + size + 16;
  p

(* Built-in runtime. Returns [true] if the symbol was handled. *)
let runtime_call st name =
  let x n = st.regs.(Reg.index (Reg.x n)) in
  match name with
  | "swift_retain" | "objc_retain" ->
    let p = x 0 in
    if p <> 0 then store st p (load st p + 1);
    true
  | "swift_release" | "objc_release" ->
    let p = x 0 in
    if p <> 0 then store st p (load st p - 1);
    true
  | "swift_allocObject" ->
    (* x0 = metadata, x1 = size in bytes. *)
    let metadata = x 0 and size = x 1 in
    let p = alloc st (max size 16) in
    store st p 1;
    store st (p + 8) metadata;
    set_reg st (Reg.x 0) p;
    true
  | "swift_allocArray" ->
    (* x0 = element count; header [refcount; len]; payload at +16. *)
    let len = x 0 in
    if len < 0 then raise (Exec_error (Trap "negative array length"));
    let p = alloc st ((len * 8) + 16) in
    store st p 1;
    store st (p + 8) len;
    set_reg st (Reg.x 0) p;
    true
  | "swift_beginAccess" | "swift_endAccess" -> true
  | "print_i64" ->
    st.output_rev <- x 0 :: st.output_rev;
    true
  | "swift_bounds_fail" -> raise (Exec_error (Trap "array index out of bounds"))
  | "memcpy8" ->
    (* x0 = dst, x1 = src, x2 = word count. *)
    let dst = x 0 and src = x 1 and words = x 2 in
    for i = 0 to words - 1 do
      store st (dst + (8 * i)) (load st (src + (8 * i)))
    done;
    true
  | _ -> false

(* The interpreter's code image is a flat slot array.  A split function
   contributes two chains — hot blocks at the function's own symbol, cold
   blocks at its [Linker.cold_symbol] in the __text_cold region — and the
   chains are emitted in *address* order so that slot adjacency equals
   placement adjacency.  A [Fallthrough] terminator occupies no slot (it
   is an elided branch): execution simply continues into the next block's
   first slot, which byte-faithfully models the merged chain. *)
let term_slots (b : Block.t) =
  match b.Block.term with Block.Fallthrough _ -> 0 | _ -> 1

let build_slots ?(track_blocks = false) (p : Program.t) layout =
  let chains =
    List.concat_map
      (fun (f : Mfunc.t) ->
        match Mfunc.partition f with
        | blocks, [] -> [ (Linker.address_of layout f.name, f, blocks) ]
        | hot, cold ->
          [
            (Linker.address_of layout f.name, f, hot);
            (Linker.address_of layout (Linker.cold_symbol f.name), f, cold);
          ])
      p.funcs
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  let slots = ref [] and n = ref 0 in
  let addr_acc = ref [] in
  let slot_of_addr = Hashtbl.create 4096 in
  (* First pass: assign slot indices to every (func, block) start.  An
     empty block whose branch was elided shares its start slot with the
     next block in the chain. *)
  let block_slot = Hashtbl.create 1024 in
  let func_slot = Hashtbl.create 256 in
  let block_starts = Hashtbl.create (if track_blocks then 1024 else 1) in
  let counter = ref 0 in
  List.iter
    (fun (_, (f : Mfunc.t), blocks) ->
      List.iter
        (fun (b : Block.t) ->
          Hashtbl.replace block_slot (f.name, b.Block.label) !counter;
          if track_blocks then
            Hashtbl.replace block_starts !counter
              ((f.name, b.Block.label)
              :: Option.value ~default:[]
                   (Hashtbl.find_opt block_starts !counter));
          counter := !counter + Array.length b.Block.body + term_slots b)
        blocks)
    chains;
  if track_blocks then
    (* Shared start slots accumulate labels in reverse chain order; put
       them back in execution order. *)
    Hashtbl.iter
      (fun k v -> Hashtbl.replace block_starts k (List.rev v))
      (Hashtbl.copy block_starts);
  List.iter
    (fun (f : Mfunc.t) ->
      match f.blocks with
      | [] -> ()
      | b :: _ ->
        Hashtbl.replace func_slot f.name
          (Hashtbl.find block_slot (f.name, b.Block.label)))
    p.funcs;
  let extern_of_addr = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt layout.Linker.addresses e with
      | Some a when Hashtbl.find_opt layout.Linker.kinds e = Some Linker.Extern ->
        Hashtbl.replace extern_of_addr a e
      | Some _ | None -> ())
    p.externs;
  let target_of sym =
    match Hashtbl.find_opt func_slot sym with
    | Some idx -> T_slot idx
    | None -> T_extern sym
  in
  List.iter
    (fun (base, (f : Mfunc.t), blocks) ->
      let block_idx l =
        match Hashtbl.find_opt block_slot (f.name, l) with
        | Some i -> i
        | None -> invalid_arg ("Interp: unknown label " ^ l ^ " in " ^ f.name)
      in
      let off = ref 0 in
      List.iter
        (fun (b : Block.t) ->
          Array.iter
            (fun i ->
              let s =
                match i with
                | Insn.Bl sym -> S_bl (target_of sym, i)
                | Insn.Blr r -> S_blr r
                | _ -> S_insn i
              in
              slots := s :: !slots;
              addr_acc := (base + !off) :: !addr_acc;
              Hashtbl.replace slot_of_addr (base + !off) !n;
              incr n;
              off := !off + 4)
            b.Block.body;
          let t =
            match b.Block.term with
            | Block.Ret -> Some S_ret
            | Block.B l -> Some (S_b (block_idx l))
            | Block.Bcond (c, a, b') ->
              Some (S_bcond (c, block_idx a, block_idx b'))
            | Block.Cbz (r, a, b') -> Some (S_cbz (r, block_idx a, block_idx b'))
            | Block.Cbnz (r, a, b') ->
              Some (S_cbnz (r, block_idx a, block_idx b'))
            | Block.Tail_call sym -> Some (S_tail (target_of sym))
            | Block.Fallthrough _ -> None
          in
          match t with
          | None -> ()
          | Some t ->
            slots := t :: !slots;
            addr_acc := (base + !off) :: !addr_acc;
            Hashtbl.replace slot_of_addr (base + !off) !n;
            incr n;
            off := !off + 4)
        blocks)
    chains;
  let func_names = Array.make !n "" in
  let slot_outlined = Array.make !n false in
  let fidx = ref 0 in
  List.iter
    (fun (_, (f : Mfunc.t), blocks) ->
      let count =
        List.fold_left
          (fun acc (b : Block.t) ->
            acc + Array.length b.Block.body + term_slots b)
          0 blocks
      in
      Array.fill func_names !fidx count f.name;
      if f.is_outlined then Array.fill slot_outlined !fidx count true;
      fidx := !fidx + count)
    chains;
  ( Array.of_list (List.rev !slots),
    Array.of_list (List.rev !addr_acc),
    slot_of_addr,
    extern_of_addr,
    func_names,
    slot_outlined,
    block_starts )

let init_memory (p : Program.t) layout mem =
  List.iter
    (fun (d : Dataobj.t) ->
      let base = Linker.address_of layout d.name in
      Array.iteri
        (fun i init ->
          let v =
            match init with
            | Dataobj.Word w -> w
            | Dataobj.Sym s -> (
              match Hashtbl.find_opt layout.Linker.addresses s with
              | Some a -> a
              | None -> raise (Exec_error (Unknown_symbol s)))
          in
          Hashtbl.replace mem ((base + (8 * i)) asr 3) v)
        d.words)
    p.data

let insn_cost st (i : Insn.t) =
  let d = st.cfg.device in
  match i with
  | Insn.Ldr _ | Insn.Ldp _ -> d.Device.load_cost
  | Insn.Str _ | Insn.Stp _ -> d.Device.store_cost
  | Insn.Binop (Insn.Mul, _, _, _) -> d.Device.mul_cost
  | Insn.Binop (Insn.Sdiv, _, _, _) -> d.Device.div_cost
  | Insn.Bl _ | Insn.Blr _ -> d.Device.call_cost
  | _ -> d.Device.issue_cost

let fetch_costs st addr =
  if st.cfg.model_perf then begin
    if not (Icache.access st.icache addr) then
      st.cycles <- st.cycles + scale st st.cfg.device.Device.icache_miss_penalty;
    if not (Tlb.access st.itlb addr) then
      st.cycles <- st.cycles + scale st st.cfg.device.Device.itlb_miss_penalty;
    if not st.cold_done then begin
      let page = addr / st.cfg.os.Device.page_bytes in
      if page <> st.cold_last_page then begin
        st.cold_last_page <- page;
        if not (Hashtbl.mem st.cold_pages page) then
          Hashtbl.replace st.cold_pages page ()
      end
    end
  end

(* Entry-frame depth bookkeeping for the cold-start marker.  Tail calls
   within the image replace the current frame, so they touch neither
   counter; a tail transfer to an extern exits the frame like a return. *)
let cold_push st =
  if not st.cold_done then begin
    st.cold_called <- true;
    st.cold_depth <- st.cold_depth + 1
  end

let cold_pop st =
  if not st.cold_done then begin
    st.cold_depth <- st.cold_depth - 1;
    if st.cold_called && st.cold_depth <= 1 then st.cold_done <- true
  end

let exec_insn st (i : Insn.t) =
  match i with
  | Insn.Mov (d, op) -> set_reg st d (operand st op)
  | Insn.Binop (op, d, a, b) ->
    set_reg st d (binop_eval op (get_reg st a) (operand st b))
  | Insn.Cmp (a, b) ->
    set_reg st Reg.NZCV (compare (get_reg st a) (operand st b))
  | Insn.Cset (d, c) ->
    set_reg st d (if Cond.holds c (get_reg st Reg.NZCV) then 1 else 0)
  | Insn.Csel (d, a, b, c) ->
    set_reg st d
      (if Cond.holds c (get_reg st Reg.NZCV) then get_reg st a else get_reg st b)
  | Insn.Ldr (d, a) ->
    let ea = addr_mode st a in
    set_reg st d (load st ea)
  | Insn.Str (s, a) ->
    let ea = addr_mode st a in
    store st ea (get_reg st s)
  | Insn.Ldp (d1, d2, a) ->
    let ea = addr_mode st a in
    set_reg st d1 (load st ea);
    set_reg st d2 (load st (ea + 8))
  | Insn.Stp (s1, s2, a) ->
    let ea = addr_mode st a in
    store st ea (get_reg st s1);
    store st (ea + 8) (get_reg st s2)
  | Insn.Adr (d, sym) -> (
    match Hashtbl.find_opt st.layout.Linker.addresses sym with
    | Some a -> set_reg st d a
    | None -> raise (Exec_error (Unknown_symbol sym)))
  | Insn.Bl _ | Insn.Blr _ -> assert false (* handled by the driver *)
  | Insn.Nop -> ()

let last_backtrace = ref []
let last_trace_ref : string list ref = ref []
let last_trace () = !last_trace_ref

let run ?(config = default_config) ?(args = []) ?order ~entry (p : Program.t) =
  last_backtrace := [];
  last_trace_ref := [];
  match Program.find_func p entry with
  | None -> Error (No_entry entry)
  | Some _ -> (
    let layout = Linker.link ?order p in
    let ( slots,
          addr_of_slot,
          slot_of_addr,
          extern_of_addr,
          func_names,
          slot_outlined,
          block_starts ) =
      build_slots ~track_blocks:(config.trace <> None) p layout
    in
    let d = config.device in
    let st =
      {
        cfg = config;
        slots;
        addr_of_slot;
        slot_of_addr;
        extern_of_addr;
        layout;
        regs = Array.make Reg.count 0;
        mem = Hashtbl.create 65536;
        heap_ptr = heap_base;
        output_rev = [];
        steps = 0;
        cycles = 0;
        branches = 0;
        calls = 0;
        icache =
          Icache.create ~size_bytes:d.Device.icache_bytes
            ~line_bytes:d.Device.icache_line ~assoc:d.Device.icache_assoc;
        itlb =
          Tlb.create ~entries:d.Device.itlb_entries
            ~page_bytes:config.os.Device.page_bytes;
        dtlb =
          Tlb.create ~entries:d.Device.dtlb_entries
            ~page_bytes:config.os.Device.page_bytes;
        data_pages = Hashtbl.create 256;
        data_fault_cycles = 0;
        shadow_stack = [ entry ];
        outlined_steps = 0;
        cold_pages = Hashtbl.create 64;
        cold_depth = 1;
        cold_called = false;
        (* Tracking costs a page computation per fetch, so it is wired to
           the same switch as the rest of the perf model. *)
        cold_done = not config.model_perf;
        cold_last_page = -1;
      }
    in
    let dump_hook = ref (fun () -> ()) in
    try
      init_memory p layout st.mem;
      List.iteri (fun i v -> if i < Reg.max_args then set_reg st (Reg.arg i) v) args;
      set_reg st Reg.SP stack_top;
      set_reg st Reg.lr exit_address;
      let entry_slot =
        match Hashtbl.find_opt slot_of_addr (Linker.address_of layout entry) with
        | Some i -> i
        | None -> raise (Exec_error (No_entry entry))
      in
      let pc = ref entry_slot in
      let running = ref true in
      let ring =
        if config.trace_ring > 0 then Some (Array.make config.trace_ring (-1)) else None
      in
      let ring_pos = ref 0 in
      let dump_ring () =
        match ring with
        | None -> ()
        | Some r ->
          let n = Array.length r in
          (* Symbolize each ring slot through the linker layout: the
             nearest Text symbol at or below the slot's address. *)
          let lines = ref [] in
          for i = max 0 (!ring_pos - n) to !ring_pos - 1 do
            let s = r.(i mod n) in
            let addr =
              if s >= 0 && s < Array.length st.addr_of_slot then
                st.addr_of_slot.(s)
              else -1
            in
            let sym =
              match Linker.symbolize st.layout addr with
              | Some name -> name
              | None -> "?"
            in
            let d =
              match st.slots.(s) with
              | S_insn ins -> Insn.to_string ins
              | S_ret -> "ret"
              | S_b _ -> "b <label>"
              | S_bcond _ -> "b.cond"
              | S_cbz _ -> "cbz"
              | S_cbnz _ -> "cbnz"
              | S_tail _ -> "b <tail>"
              | S_bl (_, ins) -> Insn.to_string ins
              | S_blr r' -> "blr " ^ Reg.to_string r'
            in
            lines := Printf.sprintf "0x%06x  %-28s %s" addr sym d :: !lines
          done;
          let lines = List.rev !lines in
          last_trace_ref := lines;
          Printf.eprintf "--- trace ring (oldest first) ---\n";
          List.iter (fun l -> Printf.eprintf "%s\n" l) lines;
          Printf.eprintf "---------------------------------\n%!"
      in
      dump_hook := dump_ring;
      (* Structured trace events (function entry / call edge / first
         touch) for profile collection — see Pgo.Collect. *)
      let touched = Hashtbl.create 64 in
      let emit_enter ~caller ~tail callee =
        match config.trace with
        | None -> ()
        | Some emit ->
          (match caller with
          | Some c -> emit (Ev_call { caller = c; callee; tail })
          | None -> ());
          if not (Hashtbl.mem touched callee) then begin
            Hashtbl.replace touched callee ();
            emit (Ev_first_touch callee)
          end;
          emit (Ev_entry callee)
      in
      emit_enter ~caller:None ~tail:false entry;
      let emit_block =
        match config.trace with
        | None -> fun _ -> ()
        | Some emit ->
          fun idx ->
            (match Hashtbl.find_opt block_starts idx with
            | Some bs ->
              List.iter
                (fun (fn, l) -> emit (Ev_block { func = fn; label = l }))
                bs
            | None -> ())
      in
      let jump_to_address a =
        if a = exit_address then running := false
        else
          match Hashtbl.find_opt st.slot_of_addr a with
          | Some idx -> pc := idx
          | None -> raise (Exec_error (Bad_jump a))
      in
      let do_extern name next =
        st.calls <- st.calls + 1;
        if runtime_call st name then pc := next
        else
          match config.unknown_extern with
          | `Error -> raise (Exec_error (Unknown_symbol name))
          | `Noop ->
            set_reg st (Reg.x 0) 0;
            pc := next
      in
      let charge_branch () =
        if config.model_perf then
          st.cycles <- st.cycles + config.device.Device.branch_cost
      in
      while !running do
        if st.steps >= config.max_steps then raise (Exec_error Step_limit_exceeded);
        let idx = !pc in
        if idx < 0 || idx >= Array.length st.slots then
          raise (Exec_error (Bad_jump idx));
        let addr = st.addr_of_slot.(idx) in
        (match ring with
        | Some r ->
          r.(!ring_pos mod Array.length r) <- idx;
          incr ring_pos
        | None -> ());
        fetch_costs st addr;
        emit_block idx;
        st.steps <- st.steps + 1;
        if slot_outlined.(idx) then st.outlined_steps <- st.outlined_steps + 1;
        (match st.slots.(idx) with
        | S_insn i ->
          if config.model_perf then st.cycles <- st.cycles + insn_cost st i;
          exec_insn st i;
          pc := idx + 1
        | S_bl (target, i) -> (
          if config.model_perf then st.cycles <- st.cycles + insn_cost st i;
          set_reg st Reg.lr (st.addr_of_slot.(idx) + 4);
          match target with
          | T_slot s ->
            st.calls <- st.calls + 1;
            cold_push st;
            emit_enter ~caller:(Some func_names.(idx)) ~tail:false func_names.(s);
            st.shadow_stack <- func_names.(s) :: st.shadow_stack;
            pc := s
          | T_extern name -> do_extern name (idx + 1))
        | S_blr r -> (
          if config.model_perf then
            st.cycles <- st.cycles + insn_cost st (Insn.Blr r);
          let dest = get_reg st r in
          set_reg st Reg.lr (st.addr_of_slot.(idx) + 4);
          match Hashtbl.find_opt st.slot_of_addr dest with
          | Some s ->
            st.calls <- st.calls + 1;
            cold_push st;
            emit_enter ~caller:(Some func_names.(idx)) ~tail:false func_names.(s);
            st.shadow_stack <- func_names.(s) :: st.shadow_stack;
            pc := s
          | None -> (
            match Hashtbl.find_opt st.extern_of_addr dest with
            | Some name -> do_extern name (idx + 1)
            | None -> raise (Exec_error (Bad_jump dest))))
        | S_ret ->
          charge_branch ();
          st.branches <- st.branches + 1;
          cold_pop st;
          (match st.shadow_stack with _ :: rest -> st.shadow_stack <- rest | [] -> ());
          jump_to_address (get_reg st Reg.lr)
        | S_b t ->
          charge_branch ();
          st.branches <- st.branches + 1;
          pc := t
        | S_bcond (c, a, b) ->
          (if config.model_perf then
             st.cycles <- st.cycles + config.device.Device.branch_cost);
          st.branches <- st.branches + 1;
          if Cond.holds c (get_reg st Reg.NZCV) then pc := a else pc := b
        | S_cbz (r, a, b) ->
          (if config.model_perf then
             st.cycles <- st.cycles + config.device.Device.branch_cost);
          st.branches <- st.branches + 1;
          if get_reg st r = 0 then pc := a else pc := b
        | S_cbnz (r, a, b) ->
          (if config.model_perf then
             st.cycles <- st.cycles + config.device.Device.branch_cost);
          st.branches <- st.branches + 1;
          if get_reg st r <> 0 then pc := a else pc := b
        | S_tail t -> (
          charge_branch ();
          st.branches <- st.branches + 1;
          match t with
          | T_slot s ->
            emit_enter ~caller:(Some func_names.(idx)) ~tail:true func_names.(s);
            (match st.shadow_stack with
            | _ :: rest -> st.shadow_stack <- func_names.(s) :: rest
            | [] -> st.shadow_stack <- [ func_names.(s) ]);
            pc := s
          | T_extern name ->
            (* A tail call to an extern returns to the current LR. *)
            let ret = get_reg st Reg.lr in
            st.calls <- st.calls + 1;
            cold_pop st;
            if runtime_call st name then jump_to_address ret
            else (
              match config.unknown_extern with
              | `Error -> raise (Exec_error (Unknown_symbol name))
              | `Noop ->
                set_reg st (Reg.x 0) 0;
                jump_to_address ret)))
      done;
      Ok
        {
          exit_value = get_reg st (Reg.x 0);
          output = List.rev st.output_rev;
          steps = st.steps;
          outlined_steps = st.outlined_steps;
          cycles = st.cycles;
          icache_misses = Icache.misses st.icache;
          icache_accesses = Icache.hits st.icache + Icache.misses st.icache;
          itlb_misses = Tlb.misses st.itlb;
          dtlb_misses = Tlb.misses st.dtlb;
          data_pages_touched = Hashtbl.length st.data_pages;
          data_fault_cycles = st.data_fault_cycles;
          cold_start_pages = Hashtbl.length st.cold_pages;
          (* Reported beside [cycles], not folded into it: the fault cost
             is paid once per install-then-launch, not per steady-state
             run, and keeping it separate keeps [cycles] comparable with
             pre-cold-start baselines. *)
          cold_start_cost =
            Hashtbl.length st.cold_pages
            * scale st st.cfg.device.Device.data_fault_penalty;
          branches = st.branches;
          calls = st.calls;
        }
    with Exec_error e ->
      (if config.trace_ring > 0 then try !dump_hook () with _ -> ());
      last_backtrace := st.shadow_stack;
      Error e)


(* The §VI-4 anecdote: a failure inside an outlined function shows
   OUTLINED_FUNCTION_* on top of the stack; the real feature code is one
   level down.  [run_with_backtrace] surfaces that stack. *)
let run_with_backtrace ?config ?args ?order ~entry p =
  match run ?config ?args ?order ~entry p with
  | Ok r -> Ok r
  | Error e -> Error (e, !last_backtrace)
