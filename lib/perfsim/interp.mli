(** Machine-code interpreter with a cycle cost model.

    Programs execute over the linker's address layout, so control transfers
    (including branches to outlined functions and their returns) behave
    exactly as on hardware: [BL] writes the return address into LR, [RET]
    jumps to it, tail branches leave LR untouched.  This is what lets the
    test suite prove that outlining preserves semantics, and what drives
    the performance experiments (Figure 13, Tables III/IV).

    The runtime symbols of our Swift-like language are built in:
    [swift_retain], [swift_release], [swift_allocObject], [swift_allocArray],
    [objc_retain], [objc_release], [swift_beginAccess], [swift_endAccess],
    [print_i64], [swift_bounds_fail], [memcpy8]. *)

type trace_event =
  | Ev_entry of string
      (** a function begins executing: the initial entry, a resolved
          [BL]/[BLR], or a tail transfer *)
  | Ev_call of { caller : string; callee : string; tail : bool }
      (** a resolved intra-image dynamic call edge *)
  | Ev_first_touch of string
      (** the first time any instruction of the function executes —
          the startup first-touch order *)
  | Ev_block of { func : string; label : string }
      (** a basic block begins executing; the block-granularity counts
          behind hot/cold splitting (see Blocklayout) *)

type config = {
  device : Device.t;
  os : Device.os;
  max_steps : int;
  model_perf : bool;        (** feed caches/TLBs and accumulate cycles *)
  unknown_extern : [ `Error | `Noop ];
      (** [`Noop]: calls to unmodelled externs return 0 (useful for
          structural tests on synthetic programs) *)
  trace_ring : int;
      (** when positive, keep a ring of the most recent program counters
          and dump a symbolized trace (also exposed via {!last_trace})
          if execution fails *)
  trace : (trace_event -> unit) option;
      (** structured observability surface: when set, every function
          entry, resolved call edge and first touch is reported in
          execution order.  This is what {!Pgo.Collect} hooks to build
          layout profiles; it does not perturb the cost model. *)
}

val default_config : config

type result = {
  exit_value : int;          (** x0 at the final return *)
  output : int list;         (** values passed to [print_i64], in order *)
  steps : int;               (** instructions executed *)
  outlined_steps : int;      (** of which inside outlined functions — the
                                 paper reports ~3%% on UberRider *)
  cycles : int;
  icache_misses : int;
  icache_accesses : int;
  itlb_misses : int;
  dtlb_misses : int;
  data_pages_touched : int;
  data_fault_cycles : int;
  cold_start_pages : int;
      (** distinct text pages (16 KiB under the default OS) fetched
          before the entry frame's first completed intra-image call
          returned — the page-in trace a launch must fault in before the
          first frame.  A run that never calls is cold throughout.
          0 when [model_perf] is off. *)
  cold_start_cost : int;
      (** [cold_start_pages] priced at the device's fault penalty (and
          the OS penalty scale).  Reported beside [cycles], not added to
          it: launch page-in is paid once, not per steady-state run. *)
  branches : int;
  calls : int;
}

type error =
  | Unknown_symbol of string
  | Null_access
  | Unaligned_access of int
  | Bad_jump of int
  | Step_limit_exceeded
  | Trap of string           (** e.g. array bounds failure *)
  | No_entry of string

val error_to_string : error -> string

val run :
  ?config:config ->
  ?args:int list ->
  ?order:string list ->
  entry:string ->
  Machine.Program.t ->
  (result, error) Stdlib.result
(** Link the program, place [args] in x0..x7, and execute [entry] to
    completion.  [?order] is forwarded to {!Linker.link}: it changes
    function placement (and hence icache/iTLB behaviour) without
    touching a single code byte — the lever the profile-guided layout
    experiments pull. *)

val run_with_backtrace :
  ?config:config ->
  ?args:int list ->
  ?order:string list ->
  entry:string ->
  Machine.Program.t ->
  (result, error * string list) Stdlib.result
(** Like {!run}, but failures carry the simulated call stack (innermost
    first).  This reproduces the debuggability story of §VI-4: a crash
    inside outlined code reports [OUTLINED_FUNCTION_…] as the leaf frame,
    with the responsible feature function one level below. *)

val last_trace : unit -> string list
(** The symbolized trace-ring dump of the most recent failed [run] with
    [trace_ring > 0], oldest entry first.  Each line carries the virtual
    address, ["sym+0xoff"] resolved through the linker layout, and the
    instruction text.  Empty if the last run succeeded or the ring was
    off. *)
