(* sizeopt: command-line driver for the code-size toolchain.

   Subcommands:
     compile   Swiftlet source -> machine assembly
     outline   machine assembly -> outlined machine assembly (+ stats)
     stats     pattern statistics report for a machine program (§IV)
     run       execute a program's entry point in the simulator
     appgen    emit a synthetic app's Swiftlet sources to a directory *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_out path contents =
  match path with
  | None -> print_string contents
  | Some p ->
    let oc = open_out p in
    output_string oc contents;
    close_out oc

let load_program path =
  let text = read_file path in
  if Filename.check_suffix path ".swl" then begin
    match Swiftlet.Compile.compile_module ~name:"cli" text with
    | Error e -> Error e
    | Ok m -> Ok (Codegen.compile_modul m)
  end
  else
    match Machine.Asm_parser.parse_program text with
    | Ok p -> Ok p
    | Error e -> Error e

let or_die = function
  | Ok x -> x
  | Error e ->
    prerr_endline ("error: " ^ e);
    exit 1

(* --- compile -------------------------------------------------------------- *)

let compile_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.swl") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.s")
  in
  let rounds =
    Arg.(value & opt int 0 & info [ "outline-repeat-count" ] ~docv:"N"
           ~doc:"Rounds of machine outlining to apply (the artifact's flag).")
  in
  let run input output rounds =
    let prog = or_die (load_program input) in
    let prog =
      if rounds > 0 then fst (Outcore.Repeat.run ~rounds prog) else prog
    in
    write_out output (Machine.Asm_printer.to_source prog)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile Swiftlet source to machine assembly.")
    Term.(const run $ input $ output $ rounds)

(* --- outline -------------------------------------------------------------- *)

let outline_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.s")
  in
  let rounds =
    Arg.(value & opt int 5 & info [ "outline-repeat-count"; "rounds" ] ~docv:"N")
  in
  let run input output rounds =
    let prog = or_die (load_program input) in
    let before = Machine.Program.code_size_bytes prog in
    let outlined, stats = Outcore.Repeat.run ~rounds prog in
    let after = Machine.Program.code_size_bytes outlined in
    write_out output (Machine.Asm_printer.to_source outlined);
    Printf.eprintf "code size: %d -> %d bytes (%.1f%% saving) in %d round(s)\n"
      before after
      (100. *. float_of_int (before - after) /. float_of_int before)
      (List.length stats);
    List.iteri
      (fun i (s : Outcore.Outliner.round_stats) ->
        Printf.eprintf
          "  round %d: %d occurrences -> %d functions (%d bytes of outlined code)\n"
          (i + 1) s.sequences_outlined s.functions_created s.outlined_bytes)
      stats
  in
  Cmd.v
    (Cmd.info "outline"
       ~doc:"Apply repeated machine outlining to an assembly or Swiftlet file.")
    Term.(const run $ input $ output $ rounds)

(* --- stats ---------------------------------------------------------------- *)

let stats_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s") in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~docv:"N") in
  let run input top =
    let prog = or_die (load_program input) in
    let r = Outcore.Analysis.analyze prog in
    Printf.printf
      "instructions: %d   code bytes: %d\n\
       profitable patterns: %d   candidates: %d\n\
       candidates ending in call/ret: %.1f%%\n"
      r.total_insns r.total_code_bytes (Array.length r.patterns)
      r.candidates_total
      (100. *. r.call_or_ret_fraction);
    (match r.longest with
    | Some l ->
      Printf.printf "longest pattern: %d instructions, repeats %d times\n" l.length
        l.frequency
    | None -> ());
    Printf.printf "\ntop %d patterns by repetition frequency:\n" top;
    Array.iteri
      (fun i (p : Outcore.Analysis.pattern_stat) ->
        if i < top then begin
          Printf.printf "#%-3d x%-6d len %-3d saves %d bytes\n" (i + 1) p.frequency
            p.length p.saving;
          List.iter
            (fun insn -> Printf.printf "      %s\n" (Machine.Insn.to_string insn))
            p.sample
        end)
      r.patterns
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Report repeated machine-code pattern statistics (the paper's §IV pass).")
    Term.(const run $ input $ top)

(* --- run ------------------------------------------------------------------ *)

let run_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let entry = Arg.(value & opt string "main" & info [ "entry" ] ~docv:"SYMBOL") in
  let args_ =
    Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Integer argument (repeatable).")
  in
  let rounds = Arg.(value & opt int 0 & info [ "outline-repeat-count" ] ~docv:"N") in
  let run input entry args_ rounds =
    let prog = or_die (load_program input) in
    let prog = if rounds > 0 then fst (Outcore.Repeat.run ~rounds prog) else prog in
    match Perfsim.Interp.run ~args:args_ ~entry prog with
    | Error e ->
      prerr_endline ("execution error: " ^ Perfsim.Interp.error_to_string e);
      exit 1
    | Ok r ->
      List.iter (fun v -> Printf.printf "%d\n" v) r.output;
      Printf.eprintf
        "exit=%d steps=%d cycles=%d icache-misses=%d itlb-misses=%d branches=%d calls=%d\n"
        r.exit_value r.steps r.cycles r.icache_misses r.itlb_misses r.branches
        r.calls;
      exit (r.exit_value land 0xff)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program in the performance simulator.")
    Term.(const run $ input $ entry $ args_ $ rounds)

(* --- appgen --------------------------------------------------------------- *)

let appgen_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let profile_arg =
    Arg.(value & opt string "rider" & info [ "profile" ] ~docv:"rider|driver|eats|small")
  in
  let week = Arg.(value & opt int 0 & info [ "week" ] ~docv:"W") in
  let run dir profile_name week =
    let profile =
      match profile_name with
      | "rider" -> Workload.Appgen.uber_rider
      | "driver" -> Workload.Appgen.uber_driver
      | "eats" -> Workload.Appgen.uber_eats
      | "small" -> Workload.Appgen.small
      | other ->
        prerr_endline ("unknown profile " ^ other);
        exit 1
    in
    let profile = Workload.Appgen.at_week profile week in
    let sources = Workload.Appgen.generate_sources profile in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (name, src) ->
        let path = Filename.concat dir (name ^ ".swl") in
        let oc = open_out path in
        output_string oc src;
        close_out oc)
      sources;
    Printf.printf "wrote %d modules to %s/\n" (List.length sources) dir
  in
  Cmd.v
    (Cmd.info "appgen" ~doc:"Emit a synthetic app's Swiftlet sources.")
    Term.(const run $ dir $ profile_arg $ week)

(* --- build ----------------------------------------------------------------- *)

let app_profile = function
  | "rider" -> Workload.Appgen.uber_rider
  | "driver" -> Workload.Appgen.uber_driver
  | "eats" -> Workload.Appgen.uber_eats
  | "small" -> Workload.Appgen.small
  | other ->
    prerr_endline ("unknown profile " ^ other);
    exit 1

let layout_strategy_of_string s =
  match Pipeline.layout_strategy_of_string s with
  | Ok l -> l
  | Error e ->
    prerr_endline e;
    exit 1

let build_cmd =
  let dir =
    Arg.(value & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Directory of .swl modules (one module per file).")
  in
  let app_arg =
    Arg.(value & opt (some string) None
         & info [ "app" ] ~docv:"rider|driver|eats|small"
             ~doc:"Build a synthetic app profile instead of a directory.")
  in
  let week = Arg.(value & opt int 0 & info [ "week" ] ~docv:"W") in
  let mode =
    Arg.(value & opt string "wp" & info [ "mode" ] ~docv:"wp|pm|thin"
           ~doc:"Whole-program, per-module, or thin (sharded parallel \
                 whole-program) pipeline.")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains for --mode thin (0 auto-detects the \
                   machine's recommended domain count).")
  in
  let rounds =
    Arg.(value & opt int 5 & info [ "rounds"; "outline-repeat-count" ] ~docv:"N")
  in
  let engine =
    Arg.(value & opt string "incremental"
         & info [ "engine" ] ~docv:"incremental|scratch"
             ~doc:"Outliner engine: the incremental dirty-block engine \
                   (default) or the from-scratch reference.")
  in
  let profile_flag =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print the per-outline-round phase profile (sequence \
                   build, tree build, enumerate, score, rewrite) after the \
                   coarse pipeline phase timings.")
  in
  let layout_arg =
    Arg.(value & opt string "append"
         & info [ "layout" ]
             ~docv:
               "append|caller-affinity|order-file|c3|balanced|bp-compress|stitch"
             ~doc:"Function-placement strategy.  order-file, c3, balanced, \
                   bp-compress and stitch are profile-guided: they use \
                   --profile-in, or self-profile a main run when no profile \
                   is given.  bp-compress(w=0..1) mixes a compressed-size \
                   term into the balanced-partitioning objective (default \
                   w=0.5).  stitch places at block granularity: cold basic \
                   blocks split into a __text_cold region after hot text \
                   and hot chains stitched along the hottest \
                   interprocedural call edges (static never-executed \
                   heuristic when the profile has no block counts).")
  in
  let profile_in =
    Arg.(value & opt (some file) None
         & info [ "profile-in" ] ~docv:"FILE.pgo"
             ~doc:"Recorded execution profile (from sizeopt profile) \
                   driving a profile-guided --layout.")
  in
  let passes_arg =
    Arg.(value & opt (some string) None
         & info [ "passes" ] ~docv:"SPEC"
             ~doc:"Explicit pass pipeline, e.g. \
                   'dce,merge-functions,outline(rounds=5)'.  Overrides the \
                   individual pass flags; passes run in the given order.")
  in
  let verify_each =
    Arg.(value & flag
         & info [ "verify-each" ]
             ~doc:"Check IR / machine-program well-formedness after every \
                   pass (and every outline round), not just at the end.")
  in
  let print_after =
    Arg.(value & opt_all string []
         & info [ "print-after" ] ~docv:"PASS"
             ~doc:"Dump the IR after the named pass (repeatable).")
  in
  let print_after_all =
    Arg.(value & flag
         & info [ "print-after-all" ] ~doc:"Dump the IR after every pass.")
  in
  let bisect_arg =
    Arg.(value & opt (some int) None
         & info [ "opt-bisect-limit" ] ~docv:"N"
             ~doc:"Stop applying passes (and individual outline rounds) \
                   after N steps, and print the step table.")
  in
  let run dir app week mode workers rounds engine profile layout profile_in
      passes verify_each print_after print_after_all bisect_limit =
    let sources =
      match (app, dir) with
      | Some name, _ ->
        Workload.Appgen.generate_sources
          (Workload.Appgen.at_week (app_profile name) week)
      | None, Some d ->
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".swl")
        |> List.sort String.compare
        |> List.map (fun f ->
               (Filename.chop_suffix f ".swl", read_file (Filename.concat d f)))
      | None, None ->
        prerr_endline "error: pass a DIR of .swl modules or --app PROFILE";
        exit 1
    in
    let mode =
      match mode with
      | "wp" -> Pipeline.Whole_program
      | "pm" -> Pipeline.Per_module
      | "thin" -> Pipeline.Thin_wpo { workers }
      | other ->
        prerr_endline ("unknown mode " ^ other ^ " (want wp, pm or thin)");
        exit 1
    in
    let outline_engine =
      match engine with
      | "incremental" -> `Incremental
      | "scratch" -> `Scratch
      | other ->
        prerr_endline ("unknown engine " ^ other ^ " (want incremental or scratch)");
        exit 1
    in
    let outlined_layout = layout_strategy_of_string layout in
    let layout_profile =
      match profile_in with
      | None -> None
      | Some path -> Some (or_die (Pgo.Profile.load path))
    in
    let print_after =
      if print_after_all then `All
      else if print_after = [] then `Never
      else `Passes print_after
    in
    let config =
      { Pipeline.default_config with
        mode; outline_rounds = rounds; outline_engine; outlined_layout;
        layout_profile; verify_each; print_after; bisect_limit }
    in
    let config =
      match passes with
      | None -> config
      | Some spec -> or_die (Pipeline.config_of_passes ~base:config spec)
    in
    let res = or_die (Pipeline.build_sources ~config sources) in
    let est = Lazy.force res.Pipeline.layout.Linker.compressed in
    Printf.printf "binary size: %d B   code size: %d B   outlined rounds: %d\n"
      res.Pipeline.binary_size res.code_size
      (List.length res.outline_stats);
    Printf.printf
      "estimated compressed size: %d B (content %d B, %d back-references)\n"
      est.Linker.Compress.compressed_bytes est.Linker.Compress.raw_bytes
      est.Linker.Compress.match_count;
    (match res.Pipeline.function_order with
    | Some order ->
      Printf.printf "layout: %s placed %d functions%s\n"
        (Pipeline.layout_strategy_name config.Pipeline.outlined_layout)
        (List.length order)
        (match profile_in with
        | Some p -> " (profile: " ^ p ^ ")"
        | None -> " (self-profiled)")
    | None -> ());
    List.iteri
      (fun i (s : Outcore.Outliner.round_stats) ->
        Printf.printf
          "  round %d: %d occurrences -> %d functions, %d bytes saved\n"
          (i + 1) s.sequences_outlined s.functions_created s.bytes_saved)
      res.outline_stats;
    Printf.printf "\nphase timings:\n";
    List.iter
      (fun (name, t) -> Printf.printf "  %-22s %8.4fs\n" name t)
      res.timings;
    if profile then begin
      Printf.printf "\npass profile (%s engine):\n%s" engine
        (Passman.render_tree res.timing_tree)
    end;
    (match bisect_limit with
    | None -> ()
    | Some limit ->
      Printf.printf "\npass steps (opt-bisect-limit %d):\n" limit;
      List.iteri
        (fun i (s : Passman.step) ->
          let name =
            if s.Passman.st_detail = "" then s.Passman.st_pass
            else s.Passman.st_pass ^ " " ^ s.Passman.st_detail
          in
          let name =
            if s.Passman.st_unit = "" then name
            else name ^ " @" ^ s.Passman.st_unit
          in
          Printf.printf "  %3d %s %-40s %8d -> %8d B\n" (i + 1)
            (if s.Passman.st_applied then "run " else "skip") name
            s.Passman.st_before s.Passman.st_after)
        res.pass_steps)
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Run the full pipeline over a module directory or synthetic app, \
          reporting sizes, phase timings and (with --profile) the per-round \
          outliner phase split.")
    Term.(const run $ dir $ app_arg $ week $ mode $ workers $ rounds $ engine
          $ profile_flag $ layout_arg $ profile_in $ passes_arg $ verify_each
          $ print_after $ print_after_all $ bisect_arg)

(* --- profile --------------------------------------------------------------- *)

let profile_cmd =
  let dir =
    Arg.(value & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Directory of .swl modules (one module per file).")
  in
  let app_arg =
    Arg.(value & opt (some string) None
         & info [ "app" ] ~docv:"rider|driver|eats|small"
             ~doc:"Profile a synthetic app instead of a directory.")
  in
  let week = Arg.(value & opt int 0 & info [ "week" ] ~docv:"W") in
  let mode =
    Arg.(value & opt string "wp" & info [ "mode" ] ~docv:"wp|pm"
           ~doc:"Pipeline used for the instrumented build.")
  in
  let rounds =
    Arg.(value & opt int 5 & info [ "rounds"; "outline-repeat-count" ] ~docv:"N")
  in
  let entries =
    Arg.(value & opt_all string []
         & info [ "entry" ] ~docv:"SYMBOL"
             ~doc:"Entry point to trace (repeatable).  Default: main plus \
                   every spanN utility entry, mirroring the device matrix's \
                   startup+utility workload.")
  in
  let output =
    Arg.(value & opt string "profile.pgo"
         & info [ "o"; "output" ] ~docv:"FILE.pgo")
  in
  let run dir app week mode rounds entries output =
    let sources =
      match (app, dir) with
      | Some name, _ ->
        Workload.Appgen.generate_sources
          (Workload.Appgen.at_week (app_profile name) week)
      | None, Some d ->
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".swl")
        |> List.sort String.compare
        |> List.map (fun f ->
               (Filename.chop_suffix f ".swl", read_file (Filename.concat d f)))
      | None, None ->
        prerr_endline "error: pass a DIR of .swl modules or --app PROFILE";
        exit 1
    in
    let mode =
      match mode with
      | "wp" -> Pipeline.Whole_program
      | "pm" -> Pipeline.Per_module
      | other ->
        prerr_endline ("unknown mode " ^ other ^ " (want wp or pm)");
        exit 1
    in
    let workload =
      match (app, dir) with
      | Some name, _ -> name
      | None, Some d -> Filename.basename d
      | None, None -> assert false
    in
    let entries =
      if entries <> [] then entries
      else "main" :: Workload.Appgen.span_entries
    in
    let config = { Pipeline.default_config with mode; outline_rounds = rounds } in
    let res = or_die (Pipeline.build_sources ~config sources) in
    let profile =
      Pgo.Collect.collect
        ~args_for:(fun e -> if e = "main" then [] else [ 1 ])
        ~workload ~entries res.Pipeline.program
    in
    Pgo.Profile.save output profile;
    Printf.printf
      "wrote %s: %d entries, %d functions touched, %d call edges (weight %d)\n"
      output (List.length profile.Pgo.Profile.entries)
      (List.length profile.Pgo.Profile.first_touch)
      (List.length profile.Pgo.Profile.edges)
      (Pgo.Profile.total_edge_weight profile)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Build a program, trace its entry points in the simulator, and \
          write the execution profile (dynamic call graph, per-function \
          counts, startup first-touch order) for sizeopt build --profile-in.")
    Term.(const run $ dir $ app_arg $ week $ mode $ rounds $ entries $ output)

(* --- report --------------------------------------------------------------- *)

let report_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s") in
  let top = Arg.(value & opt int 15 & info [ "top" ] ~docv:"N") in
  let run input top =
    let prog = or_die (load_program input) in
    let layout = Linker.link prog in
    Printf.printf "binary size: %d B (code %d B, data %d B, image overhead %d B)\n\n"
      (Linker.binary_size layout) layout.Linker.text_size layout.Linker.data_size
      layout.Linker.image_overhead;
    (* Per-module attribution. *)
    let by_module = Hashtbl.create 32 in
    List.iter
      (fun (f : Machine.Mfunc.t) ->
        let key = if f.Machine.Mfunc.from_module = "" then "(none)" else f.Machine.Mfunc.from_module in
        let code, funcs =
          Option.value ~default:(0, 0) (Hashtbl.find_opt by_module key)
        in
        Hashtbl.replace by_module key
          (code + Machine.Mfunc.size_bytes f, funcs + 1))
      prog.Machine.Program.funcs;
    let rows =
      Hashtbl.fold (fun m (c, n) acc -> (m, c, n) :: acc) by_module []
      |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a)
    in
    Printf.printf "%-24s %10s %8s\n" "module" "code B" "#funcs";
    List.iter (fun (m, c, n) -> Printf.printf "%-24s %10d %8d\n" m c n) rows;
    (* Largest functions. *)
    let funcs =
      List.sort
        (fun a b ->
          Int.compare (Machine.Mfunc.size_bytes b) (Machine.Mfunc.size_bytes a))
        prog.Machine.Program.funcs
    in
    Printf.printf "\nlargest %d functions:\n" top;
    List.iteri
      (fun i (f : Machine.Mfunc.t) ->
        if i < top then
          Printf.printf "  %6d B  %s%s\n" (Machine.Mfunc.size_bytes f) f.name
            (if f.Machine.Mfunc.is_outlined then "  [outlined]" else ""))
      funcs;
    (* Outlined share. *)
    let outlined_bytes =
      List.fold_left
        (fun acc (f : Machine.Mfunc.t) ->
          if f.Machine.Mfunc.is_outlined then acc + Machine.Mfunc.size_bytes f else acc)
        0 prog.Machine.Program.funcs
    in
    Printf.printf "\noutlined functions: %d B (%.1f%% of code)\n" outlined_bytes
      (100. *. float_of_int outlined_bytes /. float_of_int layout.Linker.text_size)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Per-module size attribution for a program.")
    Term.(const run $ input $ top)

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Root seed; every failure report names the (seed, index) \
                 pair that regenerates it.")
  in
  let count =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"K"
           ~doc:"Programs to generate and sweep across the config lattice.")
  in
  let fuel =
    Arg.(value & opt int 8 & info [ "fuel" ] ~docv:"F"
           ~doc:"Program size: scales modules, declarations and statements.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log every skip/failure.")
  in
  let self_test =
    Arg.(value & flag & info [ "self-test" ]
           ~doc:"Inject an outliner legality bug, a stale dirty-set bug in \
                 the incremental engine, a thin-WPO summary-hash collision, \
                 a stale serve-cache bug and a block splitter that drops \
                 materialized branches, and require the harness to catch \
                 all five and shrink each reproducer.")
  in
  let list_points =
    Arg.(value & flag & info [ "list-points" ]
           ~doc:"Print the lattice point labels and exit.")
  in
  let verify_each =
    Arg.(value & flag
         & info [ "verify-each" ]
             ~doc:"Run every Swiftlet lattice point with per-pass invariant \
                   checking (--verify-each) turned on.")
  in
  let run seed count fuel verbose self_test list_points verify_each =
    let log = if verbose then prerr_endline else fun _ -> () in
    if list_points then
      List.iter
        (fun (label, _) -> print_endline label)
        (Fuzz.Lattice.points Pipeline.default_config)
    else if self_test then begin
      match Fuzz.Driver.self_test ~log ~seed () with
      | Ok report -> print_endline ("self-test OK: " ^ report)
      | Error report ->
        prerr_endline ("self-test FAILED: " ^ report);
        exit 1
    end
    else begin
      match Fuzz.Driver.fuzz ~log ~verify_each ~seed ~count ~fuel () with
      | Ok s ->
        Printf.printf
          "fuzz OK: %d programs (%d skipped), %d lattice points checked, 0 \
           divergences\n"
          s.Fuzz.Driver.programs s.skipped s.points_checked
      | Error report ->
        prerr_endline report;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random Swiftlet and machine programs, every \
          pipeline-config lattice point checked against the MIR oracle.")
    Term.(const run $ seed $ count $ fuel $ verbose $ self_test $ list_points
          $ verify_each)

let serve_cmd =
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Speak the framed protocol on stdin/stdout instead of a \
                   Unix socket (what the tests and CI drive).")
  in
  let socket =
    Arg.(value & opt string "sizeopt.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-socket path to listen on (default sizeopt.sock); \
                   unlinked on shutdown.")
  in
  let cache =
    Arg.(value & opt int 64
         & info [ "cache" ] ~docv:"N"
             ~doc:"Result-cache capacity in entries; 0 disables caching.")
  in
  let run stdio socket cache =
    let t = Serve.Server.create ~cache_capacity:cache () in
    if stdio then Serve.Server.serve_channels t stdin stdout
    else begin
      Printf.eprintf "sizeopt serve: listening on %s\n%!" socket;
      Serve.Server.serve_unix t ~path:socket
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent build service: length-prefixed requests (app seed or \
          inline Swiftlet sources plus a pipeline spec) answered with image \
          size, section table and per-phase timings, keeping the \
          incremental engine and a content-hash result cache warm across \
          requests.")
    Term.(const run $ stdio $ socket $ cache)

let () =
  let doc = "whole-program repeated machine outlining toolchain (CGO'21 reproduction)" in
  let info = Cmd.info "sizeopt" ~doc in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; outline_cmd; stats_cmd; run_cmd; build_cmd; profile_cmd; appgen_cmd; report_cmd; fuzz_cmd; serve_cmd ]))
