type ty =
  | T_int
  | T_bool
  | T_array
  | T_class of string
  | T_func of ty list * ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | LAnd
  | LOr

type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Call of string * expr list
  | Call_expr of expr * expr list
  | Method_call of expr * string * expr list
  | Field of expr * string
  | Index of expr * expr
  | Array_make of expr
  | Array_len of expr
  | Try of expr
  | Try_opt of expr
  | Closure of (string * ty) list * stmt list

and stmt =
  | Let of string * ty option * expr
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
  | Return of expr option
  | Throw
  | Print of expr
  | Expr_stmt of expr

and lvalue =
  | L_var of string
  | L_field of expr * string
  | L_index of expr * expr

type func_decl = {
  fd_name : string;
  fd_params : (string * ty) list;
  fd_ret : ty option;
  fd_throws : bool;
  fd_body : stmt list;
}

type class_decl = {
  cd_name : string;
  cd_fields : (string * ty) list;
  cd_init : func_decl option;
  cd_methods : func_decl list;
}

type decl =
  | D_func of func_decl
  | D_class of class_decl

type module_ast = {
  ma_name : string;
  ma_decls : decl list;
}

let rec ty_equal a b =
  match a, b with
  | T_int, T_int | T_bool, T_bool | T_array, T_array -> true
  | T_class x, T_class y -> String.equal x y
  | T_func (ps1, r1), T_func (ps2, r2) ->
    List.length ps1 = List.length ps2
    && List.for_all2 ty_equal ps1 ps2
    && ty_equal r1 r2
  | (T_int | T_bool | T_array | T_class _ | T_func _), _ -> false

let is_ref_type = function
  | T_array | T_class _ | T_func _ -> true
  | T_int | T_bool -> false

let rec pp_ty ppf = function
  | T_int -> Format.pp_print_string ppf "Int"
  | T_bool -> Format.pp_print_string ppf "Bool"
  | T_array -> Format.pp_print_string ppf "[Int]"
  | T_class c -> Format.pp_print_string ppf c
  | T_func (ps, r) ->
    Format.fprintf ppf "(%a) -> %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_ty)
      ps pp_ty r
