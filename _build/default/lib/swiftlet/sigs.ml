type fsig = {
  fs_params : Ast.ty list;
  fs_ret : Ast.ty;
  fs_void : bool;
  fs_throws : bool;
}

type class_info = {
  ci_name : string;
  ci_fields : (string * Ast.ty) list;
  ci_init : Ast.func_decl option;
  ci_methods : Ast.func_decl list;
}

type t = {
  classes : (string, class_info) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
}

let mangle_method cls m = cls ^ "_" ^ m
let mangle_init cls = cls ^ "_init"

let field_offset ci f =
  let rec go i = function
    | [] -> None
    | (name, _) :: rest -> if String.equal name f then Some (16 + (8 * i)) else go (i + 1) rest
  in
  go 0 ci.ci_fields

let object_size ci = 16 + (8 * List.length ci.ci_fields)

let field_type ci f =
  List.find_opt (fun (name, _) -> String.equal name f) ci.ci_fields
  |> Option.map snd

let fsig_of_decl (fd : Ast.func_decl) =
  {
    fs_params = List.map snd fd.fd_params;
    fs_ret = (match fd.fd_ret with Some t -> t | None -> Ast.T_int);
    fs_void = fd.fd_ret = None;
    fs_throws = fd.fd_throws;
  }

let build ?(externals = []) (m : Ast.module_ast) =
  let classes = Hashtbl.create 16 and funcs = Hashtbl.create 64 in
  let err = ref None in
  let set_err s = if !err = None then err := Some s in
  List.iter (fun (name, fs) -> Hashtbl.replace funcs name fs) externals;
  List.iter
    (fun decl ->
      match decl with
      | Ast.D_func fd ->
        if Hashtbl.mem funcs fd.fd_name then
          set_err ("duplicate function " ^ fd.fd_name)
        else Hashtbl.replace funcs fd.fd_name (fsig_of_decl fd)
      | Ast.D_class cd ->
        if Hashtbl.mem classes cd.cd_name then
          set_err ("duplicate class " ^ cd.cd_name)
        else begin
          let ci =
            {
              ci_name = cd.cd_name;
              ci_fields = cd.cd_fields;
              ci_init = cd.cd_init;
              ci_methods = cd.cd_methods;
            }
          in
          Hashtbl.replace classes cd.cd_name ci;
          (* The constructor is callable as the class name. *)
          (match cd.cd_init with
          | Some init ->
            Hashtbl.replace funcs cd.cd_name
              {
                fs_params = List.map snd init.fd_params;
                fs_ret = Ast.T_class cd.cd_name;
                fs_void = false;
                fs_throws = init.fd_throws;
              }
          | None ->
            Hashtbl.replace funcs cd.cd_name
              { fs_params = []; fs_ret = Ast.T_class cd.cd_name; fs_void = false; fs_throws = false });
          (* Methods are callable under their mangled names with self first. *)
          List.iter
            (fun (md : Ast.func_decl) ->
              let fs = fsig_of_decl md in
              Hashtbl.replace funcs
                (mangle_method cd.cd_name md.fd_name)
                { fs with fs_params = Ast.T_class cd.cd_name :: fs.fs_params })
            cd.cd_methods
        end)
    m.ma_decls;
  match !err with Some e -> Error e | None -> Ok { classes; funcs }

let lookup_func t name = Hashtbl.find_opt t.funcs name
let lookup_class t name = Hashtbl.find_opt t.classes name
