(** Abstract syntax of Swiftlet, the small Swift-like language used to
    reproduce the paper's source-level bloat mechanisms: reference-counted
    classes, throwing initializers ([try]), closures passed to
    specializable functions, and array-heavy decoding code. *)

type ty =
  | T_int
  | T_bool
  | T_array            (** [Int], reference-counted *)
  | T_class of string  (** reference-counted instance *)
  | T_func of ty list * ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | LAnd
  | LOr

type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Call of string * expr list          (** function call or constructor *)
  | Call_expr of expr * expr list       (** calling a function-typed value *)
  | Method_call of expr * string * expr list
  | Field of expr * string
  | Index of expr * expr                (** array indexing, bounds checked *)
  | Array_make of expr                  (** [array(n)]: n zeroed elements *)
  | Array_len of expr                   (** [len(a)] *)
  | Try of expr                         (** propagate error (throwing context) *)
  | Try_opt of expr                     (** [try?]: 0 on error, clears the flag *)
  | Closure of (string * ty) list * stmt list  (** captures resolved in lowering *)

and stmt =
  | Let of string * ty option * expr
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list   (** for i in lo ..< hi *)
  | Return of expr option
  | Throw
  | Print of expr
  | Expr_stmt of expr

and lvalue =
  | L_var of string
  | L_field of expr * string
  | L_index of expr * expr

type func_decl = {
  fd_name : string;
  fd_params : (string * ty) list;
  fd_ret : ty option;
  fd_throws : bool;
  fd_body : stmt list;
}

type class_decl = {
  cd_name : string;
  cd_fields : (string * ty) list;
  cd_init : func_decl option;      (** params/body; [self] is implicit *)
  cd_methods : func_decl list;
}

type decl =
  | D_func of func_decl
  | D_class of class_decl

type module_ast = {
  ma_name : string;
  ma_decls : decl list;
}

val ty_equal : ty -> ty -> bool
val is_ref_type : ty -> bool
val pp_ty : Format.formatter -> ty -> unit
