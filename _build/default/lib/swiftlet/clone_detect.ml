type report = {
  functions : int;
  clone_groups : int;
  cloned_functions : int;
  clone_fraction : float;
  window_total : int;
  window_repeated : int;
  window_fraction : float;
}

let binop_token = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.BAnd -> "&"
  | Ast.BOr -> "|"
  | Ast.BXor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.LAnd -> "&&"
  | Ast.LOr -> "||"

(* Serialize a function to a token stream.  With [abstract], identifiers
   and literals become placeholders (type-2 normalization); otherwise they
   are kept verbatim (type-1, CPD's default). *)
let tokens_of_func ~abstract (fd : Ast.func_decl) =
  let buf = ref [] in
  let tok s = buf := s :: !buf in
  let ident s = tok (if abstract then "ID" else s) in
  let rec expr = function
    | Ast.Int_lit n -> tok (if abstract then "LIT" else string_of_int n)
    | Ast.Bool_lit b -> tok (if abstract then "LIT" else string_of_bool b)
    | Ast.Var v -> ident v
    | Ast.Binop (op, a, b) ->
      tok "(";
      expr a;
      tok (binop_token op);
      expr b;
      tok ")"
    | Ast.Neg a ->
      tok "neg";
      expr a
    | Ast.Not a ->
      tok "not";
      expr a
    | Ast.Call (f, args) ->
      tok "call";
      ident f;
      List.iter expr args;
      tok "endcall"
    | Ast.Call_expr (f, args) ->
      tok "calle";
      expr f;
      List.iter expr args;
      tok "endcall"
    | Ast.Method_call (r, mname, args) ->
      tok "mcall";
      expr r;
      ident mname;
      List.iter expr args;
      tok "endcall"
    | Ast.Field (r, fname) ->
      tok "field";
      expr r;
      ident fname
    | Ast.Index (a, i) ->
      tok "index";
      expr a;
      expr i
    | Ast.Array_make n ->
      tok "array";
      expr n
    | Ast.Array_len a ->
      tok "len";
      expr a
    | Ast.Try a ->
      tok "try";
      expr a
    | Ast.Try_opt a ->
      tok "tryq";
      expr a
    | Ast.Closure (ps, body) ->
      tok "closure";
      tok (string_of_int (List.length ps));
      stmts body;
      tok "endclosure"
  and stmt = function
    | Ast.Let (lname, _, e) ->
      tok "let";
      ident lname;
      expr e
    | Ast.Assign (lv, e) ->
      tok "assign";
      (match lv with
      | Ast.L_var v -> ident v
      | Ast.L_field (r, fname) ->
        tok "field";
        expr r;
        ident fname
      | Ast.L_index (a, i) ->
        tok "index";
        expr a;
        expr i);
      expr e
    | Ast.If (c, a, b) ->
      tok "if";
      expr c;
      tok "{";
      stmts a;
      tok "}else{";
      stmts b;
      tok "}"
    | Ast.While (c, b) ->
      tok "while";
      expr c;
      tok "{";
      stmts b;
      tok "}"
    | Ast.For (v, lo, hi, b) ->
      tok "for";
      ident v;
      expr lo;
      expr hi;
      tok "{";
      stmts b;
      tok "}"
    | Ast.Return None -> tok "return"
    | Ast.Return (Some e) ->
      tok "return";
      expr e
    | Ast.Throw -> tok "throw"
    | Ast.Print e ->
      tok "print";
      expr e
    | Ast.Expr_stmt e ->
      tok "expr";
      expr e
  and stmts l = List.iter stmt l in
  tok (string_of_int (List.length fd.fd_params));
  stmts fd.fd_body;
  List.rev !buf

let all_funcs (ms : Ast.module_ast list) =
  List.concat_map
    (fun (m : Ast.module_ast) ->
      List.concat_map
        (fun d ->
          match d with
          | Ast.D_func fd -> [ fd ]
          | Ast.D_class cd ->
            (match cd.cd_init with Some i -> [ i ] | None -> []) @ cd.cd_methods)
        m.ma_decls)
    ms

let analyze ?(window = 24) ?(min_tokens = 50) ?(abstract = false) ms =
  let funcs = all_funcs ms in
  let streams =
    List.filter
      (fun s -> List.length s >= min_tokens)
      (List.map (tokens_of_func ~abstract) funcs)
  in
  (* Whole-function clone groups. *)
  let groups = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let key = String.concat " " s in
      Hashtbl.replace groups key
        (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
    streams;
  let clone_groups = ref 0 and cloned = ref 0 in
  Hashtbl.iter
    (fun _ n ->
      if n >= 2 then begin
        incr clone_groups;
        cloned := !cloned + n
      end)
    groups;
  (* Window-level partial clones. *)
  let windows = Hashtbl.create 4096 in
  let total = ref 0 in
  List.iter
    (fun s ->
      let arr = Array.of_list s in
      let n = Array.length arr in
      for i = 0 to n - window do
        incr total;
        let key = Hashtbl.hash (Array.sub arr i window) in
        Hashtbl.replace windows key
          (1 + Option.value ~default:0 (Hashtbl.find_opt windows key))
      done)
    streams;
  let repeated = ref 0 in
  Hashtbl.iter (fun _ n -> if n >= 2 then repeated := !repeated + n) windows;
  let nfuncs = List.length streams in
  {
    functions = nfuncs;
    clone_groups = !clone_groups;
    cloned_functions = !cloned;
    clone_fraction =
      (if nfuncs = 0 then 0. else float_of_int !cloned /. float_of_int nfuncs);
    window_total = !total;
    window_repeated = !repeated;
    window_fraction =
      (if !total = 0 then 0. else float_of_int !repeated /. float_of_int !total);
  }
