let compile_module ?externals ~name src =
  match Parser.parse_module ~name src with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" name e)
  | Ok ast -> (
    match Typecheck.check_module ?externals ast with
    | Error e -> Error (Printf.sprintf "%s: type error: %s" name e)
    | Ok env -> Ok (Lower.lower_module env ast))

let signatures_of ~name src =
  match Parser.parse_module ~name src with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" name e)
  | Ok ast -> (
    match Sigs.build ast with
    | Error e -> Error (Printf.sprintf "%s: %s" name e)
    | Ok env ->
      (* Only free functions are exported; constructors and methods remain
         module-local. *)
      let exported =
        List.filter_map
          (fun d ->
            match d with
            | Ast.D_func fd -> (
              match Sigs.lookup_func env fd.Ast.fd_name with
              | Some fs -> Some (fd.Ast.fd_name, fs)
              | None -> None)
            | Ast.D_class _ -> None)
          ast.Ast.ma_decls
      in
      Ok exported)

let compile_program sources =
  (* First pass: gather exported signatures of every module. *)
  let rec gather acc = function
    | [] -> Ok (List.rev acc)
    | (name, src) :: rest -> (
      match signatures_of ~name src with
      | Error e -> Error e
      | Ok sigs -> gather ((name, sigs) :: acc) rest)
  in
  match gather [] sources with
  | Error e -> Error e
  | Ok per_module ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, src) :: rest -> (
        (* Imports: every other module's exports. *)
        let externals =
          List.concat_map
            (fun (m, sigs) -> if String.equal m name then [] else sigs)
            per_module
        in
        match compile_module ~externals ~name src with
        | Error e -> Error e
        | Ok m -> go (m :: acc) rest)
    in
    go [] sources
