(** Symbol environment shared by the type checker and the lowering pass:
    function signatures (including constructors and mangled methods) and
    class layouts. *)

type fsig = {
  fs_params : Ast.ty list;
  fs_ret : Ast.ty;        (** [T_int] with [fs_void = true] for Void *)
  fs_void : bool;
  fs_throws : bool;
}

type class_info = {
  ci_name : string;
  ci_fields : (string * Ast.ty) list;
  ci_init : Ast.func_decl option;
  ci_methods : Ast.func_decl list;
}

type t = {
  classes : (string, class_info) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;  (** free functions and mangled methods *)
}

val mangle_method : string -> string -> string
(** [mangle_method "Order" "total"] is ["Order_total"]. *)

val mangle_init : string -> string

val field_offset : class_info -> string -> int option
(** Byte offset of a field: header is [refcount; metadata], fields follow
    at 16 + 8*index. *)

val object_size : class_info -> int
val field_type : class_info -> string -> Ast.ty option

val build :
  ?externals:(string * fsig) list ->
  Ast.module_ast ->
  (t, string) result
(** Collect declarations; duplicate names are errors.  [externals] declares
    functions defined in other modules. *)

val lookup_func : t -> string -> fsig option
val lookup_class : t -> string -> class_info option
