lib/swiftlet/ast.mli: Format
