lib/swiftlet/compile.mli: Ir Sigs
