lib/swiftlet/sil_outline.mli: Ir
