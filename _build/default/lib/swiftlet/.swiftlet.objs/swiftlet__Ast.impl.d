lib/swiftlet/ast.ml: Format List String
