lib/swiftlet/clone_detect.ml: Array Ast Hashtbl List Option String
