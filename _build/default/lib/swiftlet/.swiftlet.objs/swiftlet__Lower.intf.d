lib/swiftlet/lower.mli: Ast Ir Sigs
