lib/swiftlet/compile.ml: Ast List Lower Parser Printf Sigs String Typecheck
