lib/swiftlet/sigs.mli: Ast Hashtbl
