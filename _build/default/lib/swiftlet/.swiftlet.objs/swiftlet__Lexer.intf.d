lib/swiftlet/lexer.mli:
