lib/swiftlet/parser.ml: Ast Format Lexer List Printf
