lib/swiftlet/typecheck.mli: Ast Sigs
