lib/swiftlet/lower.ml: Ast Builder Format Hashtbl Ir List Machine Option Printf Sigs String
