lib/swiftlet/lexer.ml: List Printf String
