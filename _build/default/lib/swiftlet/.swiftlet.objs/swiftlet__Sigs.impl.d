lib/swiftlet/sigs.ml: Ast Hashtbl List Option String
