lib/swiftlet/typecheck.ml: Ast Format List Option Sigs
