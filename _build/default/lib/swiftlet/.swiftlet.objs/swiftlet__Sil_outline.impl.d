lib/swiftlet/sil_outline.ml: Builder Hashtbl Ir List Option Printf
