lib/swiftlet/clone_detect.mli: Ast
