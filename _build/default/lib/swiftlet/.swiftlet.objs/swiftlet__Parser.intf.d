lib/swiftlet/parser.mli: Ast
