(** Recursive-descent parser for Swiftlet.

    Operator precedence, loosest first:
    [||]; [&&]; comparisons; [+ - | ^]; [* / % & << >>]; unary [- !];
    postfix (call, field access, indexing). *)

val parse_module : name:string -> string -> (Ast.module_ast, string) result
(** Errors carry the line number. *)

val parse_expr_string : string -> (Ast.expr, string) result
(** Convenience for tests. *)
