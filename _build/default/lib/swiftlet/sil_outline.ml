type stats = {
  sites_rewritten : int;
  helpers_created : int;
}

type shape =
  | Retain_store of int   (* offset *)
  | Load_release of int

(* Count uses of each value in a function. *)
let use_counts (f : Ir.func) =
  let counts = Hashtbl.create 64 in
  let use = function
    | Ir.V v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
    | Ir.Imm _ | Ir.Global _ | Ir.Fn _ -> ()
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun (p : Ir.phi) -> List.iter (fun (_, o) -> use o) p.incoming) b.phis;
      List.iter (fun i -> List.iter use (Ir.operands_of_instr i)) b.instrs;
      match b.term with
      | Ir.Ret o | Ir.Cond_br (o, _, _) -> use o
      | Ir.Br _ | Ir.Unreachable -> ())
    f.blocks;
  counts

let find_sites (f : Ir.func) =
  let counts = use_counts f in
  let sites = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      let rec scan idx = function
        | Ir.Retain (Ir.V v) :: Ir.Store (Ir.V v', base, off) :: rest
          when v = v' && (match base with Ir.V _ -> true | _ -> false) ->
          sites := (f.name, b.label, idx, Retain_store off) :: !sites;
          scan (idx + 2) rest
        | Ir.Load (d, base, off) :: Ir.Release (Ir.V d') :: rest
          when d = d'
               && Option.value ~default:0 (Hashtbl.find_opt counts d) = 1
               && (match base with Ir.V _ -> true | _ -> false) ->
          sites := (f.name, b.label, idx, Load_release off) :: !sites;
          scan (idx + 2) rest
        | _ :: rest -> scan (idx + 1) rest
        | [] -> ()
      in
      scan 0 b.instrs)
    f.blocks;
  !sites

let helper_name = function
  | Retain_store off -> Printf.sprintf "sil_outlined_retain_store_%d" off
  | Load_release off -> Printf.sprintf "sil_outlined_load_release_%d" off

let make_helper shape : Ir.func =
  match shape with
  | Retain_store off ->
    let b = Builder.create ~name:(helper_name shape) ~nparams:2 () in
    (match Builder.params b with
    | [ v; base ] ->
      Builder.retain b (Ir.V v);
      Builder.store b (Ir.V v) (Ir.V base) off;
      Builder.terminate b (Ir.Ret (Ir.Imm 0))
    | _ -> assert false);
    Builder.finish b
  | Load_release off ->
    let b = Builder.create ~name:(helper_name shape) ~nparams:1 () in
    (match Builder.params b with
    | [ base ] ->
      let d = Builder.load b (Ir.V base) off in
      Builder.release b (Ir.V d);
      Builder.terminate b (Ir.Ret (Ir.Imm 0))
    | _ -> assert false);
    Builder.finish b

let rewrite_func eligible (f : Ir.func) rewritten =
  let counts = use_counts f in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let rec go = function
          | Ir.Retain (Ir.V v) :: Ir.Store (Ir.V v', base, off) :: rest
            when v = v'
                 && List.mem (Retain_store off) eligible
                 && (match base with Ir.V _ -> true | _ -> false) ->
            incr rewritten;
            Ir.Call (None, helper_name (Retain_store off), [ Ir.V v; base ])
            :: go rest
          | Ir.Load (d, base, off) :: Ir.Release (Ir.V d') :: rest
            when d = d'
                 && List.mem (Load_release off) eligible
                 && Option.value ~default:0 (Hashtbl.find_opt counts d) = 1
                 && (match base with Ir.V _ -> true | _ -> false) ->
            incr rewritten;
            Ir.Call (None, helper_name (Load_release off), [ base ]) :: go rest
          | x :: rest -> x :: go rest
          | [] -> []
        in
        { b with Ir.instrs = go b.instrs })
      f.blocks
  in
  { f with blocks }

let run ?(min_occurrences = 3) ?(include_retain_store = false) (m : Ir.modul) =
  let sites = List.concat_map find_sites m.funcs in
  let by_shape = Hashtbl.create 16 in
  List.iter
    (fun (_, _, _, s) ->
      Hashtbl.replace by_shape s
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_shape s)))
    sites;
  let eligible =
    Hashtbl.fold
      (fun s n acc ->
        let allowed =
          match s with Retain_store _ -> include_retain_store | Load_release _ -> true
        in
        if allowed && n >= min_occurrences then s :: acc else acc)
      by_shape []
  in
  if eligible = [] then (m, { sites_rewritten = 0; helpers_created = 0 })
  else begin
    let rewritten = ref 0 in
    let funcs = List.map (fun f -> rewrite_func eligible f rewritten) m.funcs in
    let helpers = List.map make_helper eligible in
    ( { m with funcs = funcs @ helpers },
      { sites_rewritten = !rewritten; helpers_created = List.length helpers } )
  end
