(** The SIL-level "Outlining" pass of Table I (Swift's SILOptimizer
    outlines well-known copy/assignment/reference-counting shapes into
    shared helpers).  Operating on our IR, it rewrites the two dominant
    shapes:

    - retain-and-store: [retain v; store v, \[base + off\]] becomes a call
      to a per-offset helper;
    - load-and-release: [d = load \[base + off\]; release d] (with [d]
      otherwise unused) likewise.

    As in the paper (0.41% on UberRider), the payoff is small: each
    rewrite trades two IR instructions for a call, and only the shapes the
    pass was taught are found — the motivation for going to machine-level
    outlining. *)

type stats = {
  sites_rewritten : int;
  helpers_created : int;
}

val run :
  ?min_occurrences:int -> ?include_retain_store:bool -> Ir.modul -> Ir.modul * stats
(** Helpers are only created for shapes occurring at least
    [min_occurrences] times (default 3).  The retain-and-store shape breaks
    even at the machine level (three instructions either way), so it is
    disabled by default ([include_retain_store = false]); load-and-release
    saves an instruction per site. *)
