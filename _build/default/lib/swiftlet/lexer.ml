type token =
  | INT of int
  | IDENT of string
  | KW of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | SEMI
  | DOT
  | ASSIGN
  | ARROW
  | RANGE
  | OP of string
  | QUESTION
  | EOF

type t = { tok : token; line : int }

exception Lex_error of int * string

let keywords =
  [
    "class"; "var"; "let"; "func"; "init"; "throws"; "throw"; "try"; "return";
    "if"; "else"; "while"; "for"; "in"; "print"; "true"; "false"; "array";
    "len";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let push tok = out := { tok; line = !line } :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (KW word) else push (IDENT word)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      if three = "..<" then begin
        push RANGE;
        i := !i + 3
      end
      else if two = "->" then begin
        push ARROW;
        i := !i + 2
      end
      else if two = "==" || two = "!=" || two = "<=" || two = ">=" || two = "&&"
              || two = "||" || two = "<<" || two = ">>" then begin
        push (OP two);
        i := !i + 2
      end
      else begin
        (match c with
        | '{' -> push LBRACE
        | '}' -> push RBRACE
        | '(' -> push LPAREN
        | ')' -> push RPAREN
        | '[' -> push LBRACKET
        | ']' -> push RBRACKET
        | ',' -> push COMMA
        | ':' -> push COLON
        | ';' -> push SEMI
        | '.' -> push DOT
        | '=' -> push ASSIGN
        | '?' -> push QUESTION
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '!' ->
          push (OP (String.make 1 c))
        | c -> raise (Lex_error (!line, Printf.sprintf "unexpected character %C" c)));
        incr i
      end
    end
  done;
  push EOF;
  List.rev !out

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW s -> s
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | SEMI -> ";"
  | DOT -> "."
  | ASSIGN -> "="
  | ARROW -> "->"
  | RANGE -> "..<"
  | OP s -> s
  | QUESTION -> "?"
  | EOF -> "<eof>"
