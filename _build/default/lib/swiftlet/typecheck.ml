exception Type_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type ctx = {
  env : Sigs.t;
  locals : (string * Ast.ty) list;
  throws : bool;             (* inside a throwing function *)
  ret : Ast.ty option;       (* None = Void *)
  in_func : string;
}

let lookup_local ctx name = List.assoc_opt name ctx.locals

let rec infer ctx (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.Int_lit _ -> Ast.T_int
  | Ast.Bool_lit _ -> Ast.T_bool
  | Ast.Var name -> (
    match lookup_local ctx name with
    | Some t -> t
    | None -> (
      (* A bare function name denotes a function value. *)
      match Sigs.lookup_func ctx.env name with
      | Some fs when not fs.fs_throws ->
        Ast.T_func (fs.fs_params, fs.fs_ret)
      | Some _ -> fail "throwing function %s cannot be used as a value" name
      | None -> fail "unknown variable %s in %s" name ctx.in_func))
  | Ast.Binop (op, a, b) -> (
    let ta = infer ctx a and tb = infer ctx b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.BAnd | Ast.BOr
    | Ast.BXor | Ast.Shl | Ast.Shr ->
      if ta = Ast.T_int && tb = Ast.T_int then Ast.T_int
      else fail "arithmetic on non-Int in %s" ctx.in_func
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if ta = Ast.T_int && tb = Ast.T_int then Ast.T_bool
      else fail "comparison on non-Int in %s" ctx.in_func
    | Ast.Eq | Ast.Ne ->
      (* Scalar equality, or a null check: comparing a reference against an
         Int (idiomatically 0, the result of a failed [try?]). *)
      if
        (Ast.ty_equal ta tb && not (Ast.is_ref_type ta))
        || (Ast.is_ref_type ta && tb = Ast.T_int)
        || (Ast.is_ref_type tb && ta = Ast.T_int)
      then Ast.T_bool
      else fail "equality needs matching scalar types in %s" ctx.in_func
    | Ast.LAnd | Ast.LOr ->
      if ta = Ast.T_bool && tb = Ast.T_bool then Ast.T_bool
      else fail "logical operator on non-Bool in %s" ctx.in_func)
  | Ast.Neg a ->
    if infer ctx a = Ast.T_int then Ast.T_int
    else fail "negation of non-Int in %s" ctx.in_func
  | Ast.Not a ->
    if infer ctx a = Ast.T_bool then Ast.T_bool
    else fail "! on non-Bool in %s" ctx.in_func
  | Ast.Call (name, args) -> snd (check_call ctx name args)
  | Ast.Call_expr (f, args) -> (
    match infer ctx f with
    | Ast.T_func (ps, r) ->
      check_args ctx ("closure in " ^ ctx.in_func) ps args;
      r
    | t -> fail "calling non-function value of type %a" Ast.pp_ty t)
  | Ast.Method_call (recv, m, args) -> (
    match infer ctx recv with
    | Ast.T_class c -> (
      let mangled = Sigs.mangle_method c m in
      match Sigs.lookup_func ctx.env mangled with
      | Some fs ->
        if fs.fs_throws then
          fail "throwing methods are not supported (%s.%s)" c m;
        (match fs.fs_params with
        | _self :: ps -> check_args ctx mangled ps args
        | [] -> fail "method %s lost its self parameter" mangled);
        fs.fs_ret
      | None -> fail "class %s has no method %s" c m)
    | t -> fail "method call on non-class value of type %a" Ast.pp_ty t)
  | Ast.Field (recv, f) -> (
    match infer ctx recv with
    | Ast.T_class c -> (
      let ci =
        match Sigs.lookup_class ctx.env c with
        | Some ci -> ci
        | None -> fail "unknown class %s" c
      in
      match Sigs.field_type ci f with
      | Some t -> t
      | None -> fail "class %s has no field %s" c f)
    | t -> fail "field access on non-class value of type %a" Ast.pp_ty t)
  | Ast.Index (a, i) ->
    if infer ctx a <> Ast.T_array then fail "indexing a non-array in %s" ctx.in_func;
    if infer ctx i <> Ast.T_int then fail "non-Int array index in %s" ctx.in_func;
    Ast.T_int
  | Ast.Array_make n ->
    if infer ctx n <> Ast.T_int then fail "array(n) needs an Int count";
    Ast.T_array
  | Ast.Array_len a ->
    if infer ctx a <> Ast.T_array then fail "len() of a non-array";
    Ast.T_int
  | Ast.Try inner ->
    if not ctx.throws then
      fail "try outside a throwing function in %s (use try?)" ctx.in_func;
    check_throwing ctx inner
  | Ast.Try_opt inner -> check_throwing ctx inner
  | Ast.Closure (params, body) ->
    let inner_ctx =
      { ctx with locals = params @ ctx.locals; throws = false; ret = None }
    in
    let ret = infer_closure_return inner_ctx body in
    let ctx_body = { inner_ctx with ret = Some ret } in
    check_stmts ctx_body body;
    Ast.T_func (List.map snd params, ret)

(* The expression under try/try? must be a call to a throwing function. *)
and check_throwing ctx inner =
  match inner with
  | Ast.Call (name, args) -> (
    match Sigs.lookup_func ctx.env name with
    | Some fs when fs.fs_throws ->
      check_args ctx name fs.fs_params args;
      fs.fs_ret
    | Some _ -> fail "try on a non-throwing call to %s" name
    | None -> fail "unknown function %s" name)
  | _ -> fail "try must wrap a call in %s" ctx.in_func

and check_call ctx name args =
  match Sigs.lookup_func ctx.env name with
  | Some fs ->
    if fs.fs_throws then
      fail "call to throwing function %s must use try or try?" name;
    check_args ctx name fs.fs_params args;
    ((), fs.fs_ret)
  | None -> (
    (* Calling a local function-typed variable by name. *)
    match lookup_local ctx name with
    | Some (Ast.T_func (ps, r)) ->
      check_args ctx name ps args;
      ((), r)
    | Some t -> fail "calling non-function %s of type %a" name Ast.pp_ty t
    | None -> fail "unknown function %s in %s" name ctx.in_func)

and check_args ctx name ps args =
  if List.length ps <> List.length args then
    fail "%s expects %d arguments, got %d" name (List.length ps) (List.length args);
  List.iter2
    (fun p a ->
      let t = infer ctx a in
      if not (Ast.ty_equal p t) then
        fail "argument type mismatch calling %s: expected %a, got %a" name
          Ast.pp_ty p Ast.pp_ty t)
    ps args

and infer_closure_return ctx body =
  (* First Return with a value decides; otherwise Int.  Let bindings must
     be threaded so the returned expression can mention them. *)
  let found = ref None in
  let rec scan ctx stmts =
    List.fold_left
      (fun ctx s ->
        match s with
        | Ast.Return (Some e) ->
          if !found = None then found := Some (infer ctx e);
          ctx
        | Ast.Return None -> ctx
        | Ast.Let (name, _, e) ->
          { ctx with locals = (name, infer ctx e) :: ctx.locals }
        | Ast.If (_, a, b) ->
          ignore (scan ctx a);
          ignore (scan ctx b);
          ctx
        | Ast.While (_, b) ->
          ignore (scan ctx b);
          ctx
        | Ast.For (v, _, _, b) ->
          ignore (scan { ctx with locals = (v, Ast.T_int) :: ctx.locals } b);
          ctx
        | Ast.Assign _ | Ast.Throw | Ast.Print _ | Ast.Expr_stmt _ -> ctx)
      ctx stmts
  in
  ignore (scan ctx body);
  Option.value ~default:Ast.T_int !found

and check_stmts ctx stmts = ignore (List.fold_left check_stmt ctx stmts)

and check_stmt ctx (s : Ast.stmt) : ctx =
  match s with
  | Ast.Let (name, ann, e) ->
    let t = infer ctx e in
    (match ann with
    | Some a when not (Ast.ty_equal a t) ->
      fail "let %s: annotation %a but initializer has type %a" name Ast.pp_ty a
        Ast.pp_ty t
    | Some _ | None -> ());
    { ctx with locals = (name, t) :: ctx.locals }
  | Ast.Assign (lv, e) ->
    let te = infer ctx e in
    let tl =
      match lv with
      | Ast.L_var v -> (
        match lookup_local ctx v with
        | Some t -> t
        | None -> fail "assignment to unknown variable %s" v)
      | Ast.L_field (recv, f) -> infer ctx (Ast.Field (recv, f))
      | Ast.L_index (a, i) -> infer ctx (Ast.Index (a, i))
    in
    if not (Ast.ty_equal tl te) then
      fail "assignment type mismatch in %s: %a := %a" ctx.in_func Ast.pp_ty tl
        Ast.pp_ty te;
    ctx
  | Ast.If (c, a, b) ->
    if infer ctx c <> Ast.T_bool then fail "if condition must be Bool in %s" ctx.in_func;
    check_stmts ctx a;
    check_stmts ctx b;
    ctx
  | Ast.While (c, b) ->
    if infer ctx c <> Ast.T_bool then fail "while condition must be Bool in %s" ctx.in_func;
    check_stmts ctx b;
    ctx
  | Ast.For (v, lo, hi, b) ->
    if infer ctx lo <> Ast.T_int || infer ctx hi <> Ast.T_int then
      fail "for bounds must be Int in %s" ctx.in_func;
    check_stmts { ctx with locals = (v, Ast.T_int) :: ctx.locals } b;
    ctx
  | Ast.Return None ->
    if ctx.ret <> None then fail "missing return value in %s" ctx.in_func;
    ctx
  | Ast.Return (Some e) -> (
    match ctx.ret with
    | None -> fail "return with value in Void function %s" ctx.in_func
    | Some t ->
      let te = infer ctx e in
      if not (Ast.ty_equal t te) then
        fail "return type mismatch in %s: expected %a, got %a" ctx.in_func
          Ast.pp_ty t Ast.pp_ty te;
      ctx)
  | Ast.Throw ->
    if not ctx.throws then fail "throw outside a throwing function in %s" ctx.in_func;
    ctx
  | Ast.Print e -> (
    match infer ctx e with
    | Ast.T_int | Ast.T_bool -> ctx
    | t -> fail "print of non-scalar type %a" Ast.pp_ty t)
  | Ast.Expr_stmt e ->
    ignore (infer ctx e);
    ctx

let check_func env in_class (fd : Ast.func_decl) =
  let locals =
    match in_class with
    | Some c -> ("self", Ast.T_class c) :: fd.fd_params
    | None -> fd.fd_params
  in
  let ctx =
    {
      env;
      locals;
      throws = fd.fd_throws;
      ret = fd.fd_ret;
      in_func =
        (match in_class with
        | Some c -> c ^ "." ^ fd.fd_name
        | None -> fd.fd_name);
    }
  in
  check_stmts ctx fd.fd_body

let check_module ?externals (m : Ast.module_ast) =
  match Sigs.build ?externals m with
  | Error e -> Error e
  | Ok env -> (
    try
      List.iter
        (fun decl ->
          match decl with
          | Ast.D_func fd -> check_func env None fd
          | Ast.D_class cd ->
            (match cd.cd_init with
            | Some init ->
              (* The initializer assigns fields and returns nothing. *)
              check_func env (Some cd.cd_name) { init with fd_ret = None }
            | None -> ());
            List.iter (fun md -> check_func env (Some cd.cd_name) md) cd.cd_methods)
        m.ma_decls;
      Ok env
    with Type_error e -> Error e)
