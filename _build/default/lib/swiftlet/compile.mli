(** Front-end driver: source text to a MIR module. *)

val compile_module :
  ?externals:(string * Sigs.fsig) list ->
  name:string ->
  string ->
  (Ir.modul, string) result
(** Parse, type-check and lower one module. *)

val compile_program :
  (string * string) list ->
  (Ir.modul list, string) result
(** Compile a list of (module name, source) pairs.  Free functions of every
    module are visible to all modules (mutual imports); classes stay
    module-local. *)
