(** Lowering from Swiftlet AST to MIR (the SILGen + IRGen stages of
    Figure 3, combined).  This pass plants — by faithful construction, not
    by templating — the bloat mechanisms §IV of the paper dissects:

    - automatic reference counting: retains on reference copies and field
      stores, releases of owned locals at function exit (Listings 1–2);
    - heap allocation through [swift_allocObject] with metadata and size
      arguments (Listing 3);
    - throwing initializers: every [try] gets a normal and an error block;
      error blocks join in a cleanup block with one phi ("Init" flag) per
      reference-typed property, whose out-of-SSA expansion is the O(N^2)
      copy burst of Listing 11 / Figure 9;
    - closure lifting plus per-call-site specialization of functions that
      take closure arguments (the Listing 9 duplication);
    - bounds-checked array indexing, each check a fresh compare-and-branch.

    The error convention mirrors Swift's error register with a global flag:
    a throwing function stores 1 to [swift_error] on the error path and 0
    on success; [try] re-checks and propagates, [try?] clears and yields 0. *)

val error_global : string
(** ["swift_error"], an extern resolved by the linker. *)

val lower_module : Sigs.t -> Ast.module_ast -> Ir.modul
(** The input must have passed {!Typecheck.check_module} with the same
    environment; lowering raises [Invalid_argument] on malformed input it
    cannot make sense of. *)
