exception Parse_error of int * string

type state = {
  mutable toks : Lexer.t list;
}

let fail (st : state) fmt =
  let line = match st.toks with t :: _ -> t.Lexer.line | [] -> 0 in
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let peek st =
  match st.toks with
  | t :: _ -> t.Lexer.tok
  | [] -> Lexer.EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected %s, found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek st))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail st "expected identifier, found %s" (Lexer.token_to_string t)

(* --- Types ---------------------------------------------------------------- *)

let rec parse_ty st =
  match peek st with
  | Lexer.IDENT "Int" ->
    advance st;
    Ast.T_int
  | Lexer.IDENT "Bool" ->
    advance st;
    Ast.T_bool
  | Lexer.IDENT c ->
    advance st;
    Ast.T_class c
  | Lexer.LBRACKET ->
    advance st;
    (match peek st with
    | Lexer.IDENT "Int" -> advance st
    | t -> fail st "expected Int in array type, found %s" (Lexer.token_to_string t));
    expect st Lexer.RBRACKET;
    Ast.T_array
  | Lexer.LPAREN ->
    advance st;
    let rec params acc =
      match peek st with
      | Lexer.RPAREN ->
        advance st;
        List.rev acc
      | _ ->
        let t = parse_ty st in
        (match peek st with
        | Lexer.COMMA ->
          advance st;
          params (t :: acc)
        | Lexer.RPAREN ->
          advance st;
          List.rev (t :: acc)
        | tok -> fail st "expected , or ) in function type, found %s" (Lexer.token_to_string tok))
    in
    let ps = params [] in
    expect st Lexer.ARROW;
    let r = parse_ty st in
    Ast.T_func (ps, r)
  | t -> fail st "expected type, found %s" (Lexer.token_to_string t)

(* --- Expressions ---------------------------------------------------------- *)

let binop_of_string = function
  | "+" -> Ast.Add
  | "-" -> Ast.Sub
  | "*" -> Ast.Mul
  | "/" -> Ast.Div
  | "%" -> Ast.Mod
  | "&" -> Ast.BAnd
  | "|" -> Ast.BOr
  | "^" -> Ast.BXor
  | "<<" -> Ast.Shl
  | ">>" -> Ast.Shr
  | "==" -> Ast.Eq
  | "!=" -> Ast.Ne
  | "<" -> Ast.Lt
  | "<=" -> Ast.Le
  | ">" -> Ast.Gt
  | ">=" -> Ast.Ge
  | "&&" -> Ast.LAnd
  | "||" -> Ast.LOr
  | s -> invalid_arg ("binop_of_string: " ^ s)

(* Precedence levels, loosest first. *)
let levels =
  [
    [ "||" ];
    [ "&&" ];
    [ "=="; "!="; "<"; "<="; ">"; ">=" ];
    [ "+"; "-"; "|"; "^" ];
    [ "*"; "/"; "%"; "&"; "<<"; ">>" ];
  ]

let rec parse_expr st = parse_binary st levels

and parse_binary st = function
  | [] -> parse_unary st
  | ops :: rest ->
    let lhs = ref (parse_binary st rest) in
    let continue_ = ref true in
    while !continue_ do
      match peek st with
      | Lexer.OP o when List.mem o ops ->
        advance st;
        let rhs = parse_binary st rest in
        lhs := Ast.Binop (binop_of_string o, !lhs, rhs)
      | _ -> continue_ := false
    done;
    !lhs

and parse_unary st =
  match peek st with
  | Lexer.OP "-" ->
    advance st;
    Ast.Neg (parse_unary st)
  | Lexer.OP "!" ->
    advance st;
    Ast.Not (parse_unary st)
  | Lexer.KW "try" ->
    advance st;
    if peek st = Lexer.QUESTION then begin
      advance st;
      Ast.Try_opt (parse_unary st)
    end
    else Ast.Try (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.DOT -> (
      advance st;
      let name = expect_ident st in
      match peek st with
      | Lexer.LPAREN ->
        advance st;
        let args = parse_args st in
        e := Ast.Method_call (!e, name, args)
      | _ -> e := Ast.Field (!e, name))
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      e := Ast.Index (!e, idx)
    | Lexer.LPAREN -> (
      (* Call on an expression; plain identifiers become named calls. *)
      advance st;
      let args = parse_args st in
      match !e with
      | Ast.Var f -> e := Ast.Call (f, args)
      | other -> e := Ast.Call_expr (other, args))
    | _ -> continue_ := false
  done;
  !e

and parse_args st =
  let rec go acc =
    match peek st with
    | Lexer.RPAREN ->
      advance st;
      List.rev acc
    | _ ->
      let a = parse_expr st in
      (match peek st with
      | Lexer.COMMA ->
        advance st;
        go (a :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev (a :: acc)
      | t -> fail st "expected , or ) in arguments, found %s" (Lexer.token_to_string t))
  in
  go []

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.Int_lit n
  | Lexer.KW "true" ->
    advance st;
    Ast.Bool_lit true
  | Lexer.KW "false" ->
    advance st;
    Ast.Bool_lit false
  | Lexer.KW "array" ->
    advance st;
    expect st Lexer.LPAREN;
    let n = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Array_make n
  | Lexer.KW "len" ->
    advance st;
    expect st Lexer.LPAREN;
    let a = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Array_len a
  | Lexer.IDENT name ->
    advance st;
    Ast.Var name
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.LBRACE ->
    (* Closure literal: { (x: Int, ...) in stmts } *)
    advance st;
    expect st Lexer.LPAREN;
    let rec params acc =
      match peek st with
      | Lexer.RPAREN ->
        advance st;
        List.rev acc
      | _ ->
        let name = expect_ident st in
        expect st Lexer.COLON;
        let ty = parse_ty st in
        (match peek st with
        | Lexer.COMMA ->
          advance st;
          params ((name, ty) :: acc)
        | Lexer.RPAREN ->
          advance st;
          List.rev ((name, ty) :: acc)
        | t -> fail st "expected , or ) in closure params, found %s" (Lexer.token_to_string t))
    in
    let ps = params [] in
    expect st (Lexer.KW "in");
    let body = parse_stmts_until st Lexer.RBRACE in
    expect st Lexer.RBRACE;
    Ast.Closure (ps, body)
  | t -> fail st "expected expression, found %s" (Lexer.token_to_string t)

(* --- Statements ----------------------------------------------------------- *)

and parse_block st =
  expect st Lexer.LBRACE;
  let body = parse_stmts_until st Lexer.RBRACE in
  expect st Lexer.RBRACE;
  body

and parse_stmts_until st stop =
  let rec go acc =
    if peek st = stop then List.rev acc
    else begin
      let s = parse_stmt st in
      (if peek st = Lexer.SEMI then advance st);
      go (s :: acc)
    end
  in
  go []

and parse_stmt st =
  match peek st with
  | Lexer.KW "let" | Lexer.KW "var" ->
    advance st;
    let name = expect_ident st in
    let ty =
      if peek st = Lexer.COLON then begin
        advance st;
        Some (parse_ty st)
      end
      else None
    in
    expect st Lexer.ASSIGN;
    let e = parse_expr st in
    Ast.Let (name, ty, e)
  | Lexer.KW "if" ->
    advance st;
    let c = parse_expr st in
    let then_ = parse_block st in
    let else_ =
      if peek st = Lexer.KW "else" then begin
        advance st;
        if peek st = Lexer.KW "if" then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    Ast.If (c, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    let c = parse_expr st in
    let body = parse_block st in
    Ast.While (c, body)
  | Lexer.KW "for" ->
    advance st;
    let v = expect_ident st in
    expect st (Lexer.KW "in");
    let lo = parse_expr st in
    expect st Lexer.RANGE;
    let hi = parse_expr st in
    let body = parse_block st in
    Ast.For (v, lo, hi, body)
  | Lexer.KW "return" ->
    advance st;
    (match peek st with
    | Lexer.RBRACE | Lexer.SEMI -> Ast.Return None
    | _ -> Ast.Return (Some (parse_expr st)))
  | Lexer.KW "throw" ->
    advance st;
    Ast.Throw
  | Lexer.KW "print" ->
    advance st;
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Print e
  | _ ->
    (* Assignment or expression statement. *)
    let e = parse_expr st in
    if peek st = Lexer.ASSIGN then begin
      advance st;
      let rhs = parse_expr st in
      let lv =
        match e with
        | Ast.Var v -> Ast.L_var v
        | Ast.Field (b, f) -> Ast.L_field (b, f)
        | Ast.Index (b, i) -> Ast.L_index (b, i)
        | _ -> fail st "invalid assignment target"
      in
      Ast.Assign (lv, rhs)
    end
    else Ast.Expr_stmt e

(* --- Declarations --------------------------------------------------------- *)

let parse_params st =
  expect st Lexer.LPAREN;
  let rec go acc =
    match peek st with
    | Lexer.RPAREN ->
      advance st;
      List.rev acc
    | _ ->
      let name = expect_ident st in
      expect st Lexer.COLON;
      let ty = parse_ty st in
      (match peek st with
      | Lexer.COMMA ->
        advance st;
        go ((name, ty) :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev ((name, ty) :: acc)
      | t -> fail st "expected , or ) in parameters, found %s" (Lexer.token_to_string t))
  in
  go []

let parse_func_decl st name =
  let params = parse_params st in
  let throws =
    if peek st = Lexer.KW "throws" then begin
      advance st;
      true
    end
    else false
  in
  let ret =
    if peek st = Lexer.ARROW then begin
      advance st;
      Some (parse_ty st)
    end
    else None
  in
  let body = parse_block st in
  { Ast.fd_name = name; fd_params = params; fd_ret = ret; fd_throws = throws; fd_body = body }

let parse_class st =
  let name = expect_ident st in
  expect st Lexer.LBRACE;
  let fields = ref [] and init = ref None and methods = ref [] in
  let rec go () =
    match peek st with
    | Lexer.RBRACE -> advance st
    | Lexer.KW "var" | Lexer.KW "let" ->
      advance st;
      let fname = expect_ident st in
      expect st Lexer.COLON;
      let ty = parse_ty st in
      fields := (fname, ty) :: !fields;
      (if peek st = Lexer.SEMI then advance st);
      go ()
    | Lexer.KW "init" ->
      advance st;
      let fd = parse_func_decl st "init" in
      if !init <> None then fail st "duplicate init in class %s" name;
      init := Some fd;
      go ()
    | Lexer.KW "func" ->
      advance st;
      let mname = expect_ident st in
      let fd = parse_func_decl st mname in
      methods := fd :: !methods;
      go ()
    | t -> fail st "unexpected %s in class body" (Lexer.token_to_string t)
  in
  go ();
  {
    Ast.cd_name = name;
    cd_fields = List.rev !fields;
    cd_init = !init;
    cd_methods = List.rev !methods;
  }

let parse_decls st =
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.KW "func" ->
      advance st;
      let name = expect_ident st in
      let fd = parse_func_decl st name in
      go (Ast.D_func fd :: acc)
    | Lexer.KW "class" ->
      advance st;
      let cd = parse_class st in
      go (Ast.D_class cd :: acc)
    | t -> fail st "expected declaration, found %s" (Lexer.token_to_string t)
  in
  go []

let parse_module ~name src =
  try
    let st = { toks = Lexer.tokenize src } in
    Ok { Ast.ma_name = name; ma_decls = parse_decls st }
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Lexer.Lex_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_expr_string src =
  try
    let st = { toks = Lexer.tokenize src } in
    let e = parse_expr st in
    match peek st with
    | Lexer.EOF -> Ok e
    | t -> Error ("trailing tokens: " ^ Lexer.token_to_string t)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Lexer.Lex_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
