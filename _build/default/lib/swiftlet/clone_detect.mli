(** Source-level (AST) clone detection, the PMD/SourcererCC stand-in of
    Table I.  Functions are serialized to normalized token streams
    (identifiers and literals abstracted, type-2 clones); exact-duplicate
    streams form clone groups and fixed-size token windows measure partial
    clone coverage.  The paper found < 1% replication at this level — far
    below what the machine level exposes. *)

type report = {
  functions : int;
  clone_groups : int;           (** groups of >= 2 identical functions *)
  cloned_functions : int;       (** members of such groups *)
  clone_fraction : float;       (** cloned_functions / functions *)
  window_total : int;           (** k-token windows over all functions *)
  window_repeated : int;        (** windows occurring more than once *)
  window_fraction : float;
}

val analyze :
  ?window:int -> ?min_tokens:int -> ?abstract:bool -> Ast.module_ast list -> report
(** [window] defaults to 24 tokens.  Functions shorter than [min_tokens]
    (default 50, as in PMD/CPD's minimum tile) are ignored — otherwise
    every synthesized accessor counts as a clone of every other.
    [abstract] (default false, CPD's default) replaces identifiers and
    literals with placeholders, finding type-2 clones instead of exact
    (type-1) ones. *)
