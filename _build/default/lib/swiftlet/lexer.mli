(** Hand-written lexer for Swiftlet.  [//] comments run to end of line. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string         (** class, var, let, func, init, throws, throw, try,
                             return, if, else, while, for, in, print, true,
                             false, array, len *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | SEMI
  | DOT
  | ASSIGN               (** [=] *)
  | ARROW                (** [->] *)
  | RANGE                (** [..<] *)
  | OP of string         (** binary/unary operator spellings *)
  | QUESTION
  | EOF

type t = { tok : token; line : int }

exception Lex_error of int * string

val tokenize : string -> t list
(** Raises [Lex_error (line, message)] on invalid input. *)

val token_to_string : token -> string
