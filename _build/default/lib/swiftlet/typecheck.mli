(** Type checker for Swiftlet.

    Checks name resolution, argument arity and types, field/method access,
    array and closure usage, and the error-handling discipline: calls to
    throwing functions must be marked [try] (inside throwing functions) or
    [try?] (anywhere); [throw] may appear only in throwing functions. *)

val check_module :
  ?externals:(string * Sigs.fsig) list ->
  Ast.module_ast ->
  (Sigs.t, string) result
(** On success returns the symbol environment for the lowering pass. *)
