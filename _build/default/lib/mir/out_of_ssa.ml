open Ir

let retarget_one term ~from ~into =
  (* Retarget exactly one edge [from]; if both arms of a Cond_br point at
     [from] they are two distinct edges, but splitting either is enough for
     correctness of phi lowering since we split both in turn. *)
  match term with
  | Br l when l = from -> Br into
  | Cond_br (o, a, b) ->
    let a = if a = from then into else a in
    let b = if b = from then into else b in
    Cond_br (o, a, b)
  | Br _ | Ret _ | Unreachable -> term

let predecessor_counts blocks =
  let preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt preds s) in
          Hashtbl.replace preds s (prev + 1))
        (successors b.term))
    blocks;
  preds

let split_critical_edges (f : func) =
  let pred_count = predecessor_counts f.blocks in
  let counter = ref 0 in
  let new_blocks = ref [] in
  (* (succ label, old pred label, new pred label) for phi fix-up. *)
  let renames = ref [] in
  let blocks =
    List.map
      (fun b ->
        let succs = successors b.term in
        if List.length succs <= 1 then b
        else begin
          let term = ref b.term in
          List.iter
            (fun s ->
              let np = Option.value ~default:0 (Hashtbl.find_opt pred_count s) in
              if np > 1 then begin
                incr counter;
                let label = Printf.sprintf "split_%s_%d" b.label !counter in
                new_blocks :=
                  { label; phis = []; instrs = []; term = Br s } :: !new_blocks;
                renames := (s, b.label, label) :: !renames;
                term := retarget_one !term ~from:s ~into:label
              end)
            succs;
          { b with term = !term }
        end)
      f.blocks
  in
  let renames = !renames in
  let blocks =
    List.map
      (fun b ->
        if b.phis = [] then b
        else
          let phis =
            List.map
              (fun p ->
                let incoming =
                  List.map
                    (fun (l, o) ->
                      match
                        List.find_opt
                          (fun (s, old, _) -> s = b.label && old = l)
                          renames
                      with
                      | Some (_, _, nl) -> (nl, o)
                      | None -> (l, o))
                    p.incoming
                in
                { p with incoming })
              b.phis
          in
          { b with phis })
      blocks
  in
  { f with blocks = blocks @ List.rev !new_blocks }

let run_func (f : func) =
  if List.for_all (fun b -> b.phis = []) f.blocks then f
  else begin
    let f = split_critical_edges f in
    let pending : (string, instr list) Hashtbl.t = Hashtbl.create 16 in
    let next = ref f.next_value in
    let fresh () =
      let v = !next in
      incr next;
      v
    in
    let blocks_nophi =
      List.map
        (fun b ->
          if b.phis = [] then b
          else begin
            (* For each predecessor, emit t_i = src_i for every phi, then
               dst_i = t_i: the temporaries make simultaneous (swap) phis
               safe, at the price of the extra copies the paper observes. *)
            let preds =
              List.sort_uniq String.compare
                (List.concat_map (fun p -> List.map fst p.incoming) b.phis)
            in
            List.iter
              (fun pred ->
                let temps =
                  List.map
                    (fun p ->
                      let src =
                        match List.assoc_opt pred p.incoming with
                        | Some o -> o
                        | None ->
                          invalid_arg
                            (Printf.sprintf
                               "Out_of_ssa: phi %%%d in %s missing incoming for %s"
                               p.phi_dst b.label pred)
                      in
                      let t = fresh () in
                      (t, src, p.phi_dst))
                    b.phis
                in
                let copies =
                  List.map (fun (t, src, _) -> Assign (t, src)) temps
                  @ List.map (fun (t, _, dst) -> Assign (dst, V t)) temps
                in
                let prev = Option.value ~default:[] (Hashtbl.find_opt pending pred) in
                Hashtbl.replace pending pred (prev @ copies))
              preds;
            { b with phis = [] }
          end)
        f.blocks
    in
    let blocks =
      List.map
        (fun b ->
          match Hashtbl.find_opt pending b.label with
          | None -> b
          | Some copies -> { b with instrs = b.instrs @ copies })
        blocks_nophi
    in
    { f with blocks; next_value = !next }
  end

let run (m : modul) = { m with funcs = List.map run_func m.funcs }

let copies_inserted (f : func) =
  List.fold_left
    (fun acc b ->
      let nphis = List.length b.phis in
      let npreds =
        List.length
          (List.sort_uniq String.compare
             (List.concat_map (fun p -> List.map fst p.incoming) b.phis))
      in
      acc + (2 * nphis * npreds))
    0 f.blocks
