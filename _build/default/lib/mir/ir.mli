(** The mid-level SSA IR — our stand-in for LLVM IR.

    Values are virtual registers written once (SSA); [phi] nodes join
    values at block entry.  Reference-counting operations ([Retain],
    [Release], [Alloc_object]) are first-class instructions here, exactly
    because the paper observes (§IV, observation 3) that a single IR
    instruction of this kind lowers to *several* machine instructions —
    which is why IR-level deduplication cannot see the repeats that
    machine-level outlining can. *)

type value = int

type operand =
  | V of value
  | Imm of int
  | Global of string
  | Fn of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type instr =
  | Assign of value * operand
  | Binop of value * binop * operand * operand
  | Icmp of value * Machine.Cond.t * operand * operand
  | Load of value * operand * int          (** dst = [base + byte offset] *)
  | Store of operand * operand * int       (** [base + byte offset] = value *)
  | Call of value option * string * operand list
  | Call_indirect of value option * operand * operand list
  | Retain of operand
  | Release of operand
  | Alloc_object of value * string * int   (** dst, metadata symbol, size bytes *)
  | Alloc_array of value * operand         (** dst, element count *)

type terminator =
  | Ret of operand
  | Br of string
  | Cond_br of operand * string * string   (** non-zero -> first label *)
  | Unreachable

type phi = {
  phi_dst : value;
  incoming : (string * operand) list;      (** predecessor label -> value *)
}

type block = {
  label : string;
  phis : phi list;
  instrs : instr list;
  term : terminator;
}

type func = {
  name : string;
  params : value list;
  blocks : block list;                     (** entry first *)
  next_value : value;                      (** first unused virtual register *)
  from_module : string;
}

type ginit =
  | Gword of int
  | Gsym of string

type global = {
  g_name : string;
  g_init : ginit list;
  g_module : string;
}

(** Module-level flags, the vehicle for the "Objective-C Garbage Collection"
    metadata conflict of §VI-2.  [Packed] is the legacy single-word encoding
    (compiler version bits and all); [Attrs] is the attribute-set encoding
    the paper's fix introduced. *)
type flag_value =
  | Packed of int
  | Attrs of (string * int) list

type modul = {
  m_name : string;
  funcs : func list;
  globals : global list;
  externs : string list;
  flags : (string * flag_value) list;
}

val def_of_instr : instr -> value option
val operands_of_instr : instr -> operand list
val successors : terminator -> string list
val instr_count : func -> int
val module_instr_count : modul -> int
val find_func : modul -> string -> func option
val fresh : func -> value * func
(** Allocate a fresh virtual register. *)

val validate : ?require_ssa:bool -> modul -> (unit, string) result
(** Structural checks: unique function names, labels resolve, every used
    value is defined (params, phis or instrs), single assignment.  Pass
    [~require_ssa:false] after out-of-SSA translation, which deliberately
    assigns phi destinations on every incoming edge. *)

val pp_func : Format.formatter -> func -> unit
val pp_modul : Format.formatter -> modul -> unit
