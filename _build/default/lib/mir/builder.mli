(** Imperative construction of MIR functions: fresh values, append
    instructions to the current block, open new blocks, seal with
    terminators.  Used by the front end, the synthetic workload generators
    and the test suites. *)

type t

val create : name:string -> ?from_module:string -> nparams:int -> unit -> t
val params : t -> Ir.value list
val fresh : t -> Ir.value

val instr : t -> Ir.instr -> unit
(** Append to the current block; raises if the current block is sealed. *)

val assign : t -> Ir.operand -> Ir.value
(** Convenience: fresh value assigned from an operand. *)

val binop : t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.value
val icmp : t -> Machine.Cond.t -> Ir.operand -> Ir.operand -> Ir.value
val load : t -> Ir.operand -> int -> Ir.value
val store : t -> Ir.operand -> Ir.operand -> int -> unit
val call : t -> string -> Ir.operand list -> Ir.value
val call_void : t -> string -> Ir.operand list -> unit
val retain : t -> Ir.operand -> unit
val release : t -> Ir.operand -> unit
val alloc_object : t -> string -> int -> Ir.value
val alloc_array : t -> Ir.operand -> Ir.value

val fresh_label : t -> string -> string
(** [fresh_label b hint] returns a unique label containing [hint]. *)

val start_block : t -> string -> unit
(** Seal nothing; begins a new block with the given label.  The previous
    block must already be terminated. *)

val terminate : t -> Ir.terminator -> unit
val add_phi : t -> Ir.value -> (string * Ir.operand) list -> unit
(** Add a phi to the current (just-started) block. *)

val current_label : t -> string
val finish : t -> Ir.func
(** Raises if any block lacks a terminator. *)
