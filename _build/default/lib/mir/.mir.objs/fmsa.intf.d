lib/mir/fmsa.mli: Ir
