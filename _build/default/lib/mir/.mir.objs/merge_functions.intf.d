lib/mir/merge_functions.mli: Ir
