lib/mir/eval.ml: Hashtbl Ir List Machine Option Printf
