lib/mir/out_of_ssa.ml: Hashtbl Ir List Option Printf String
