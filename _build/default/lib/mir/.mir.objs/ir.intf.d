lib/mir/ir.mli: Format Machine
