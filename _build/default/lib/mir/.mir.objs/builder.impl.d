lib/mir/builder.ml: Ir List Printf
