lib/mir/link.ml: Hashtbl Int Ir List Printf String
