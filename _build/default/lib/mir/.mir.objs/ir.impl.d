lib/mir/ir.ml: Format Hashtbl List Machine String
