lib/mir/dce.mli: Ir
