lib/mir/merge_functions.ml: Buffer Hashtbl Ir List Machine Option Printf
