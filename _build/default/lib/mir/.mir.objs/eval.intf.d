lib/mir/eval.mli: Ir Stdlib
