lib/mir/builder.mli: Ir Machine
