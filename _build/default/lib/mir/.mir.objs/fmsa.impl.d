lib/mir/fmsa.ml: Buffer Hashtbl Ir List Machine Option Printf
