lib/mir/out_of_ssa.mli: Ir
