lib/mir/dce.ml: Hashtbl Ir List
