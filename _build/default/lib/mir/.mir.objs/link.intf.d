lib/mir/link.mli: Ir
