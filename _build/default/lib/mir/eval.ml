type result = {
  exit_value : int;
  output : int list;
  instrs_executed : int;
}

type error =
  | Unknown_function of string
  | Unknown_global of string
  | Null_access
  | Trap of string
  | Step_limit_exceeded
  | Stuck of string

let error_to_string = function
  | Unknown_function f -> "unknown function: " ^ f
  | Unknown_global g -> "unknown global: " ^ g
  | Null_access -> "null access"
  | Trap s -> "trap: " ^ s
  | Step_limit_exceeded -> "step limit exceeded"
  | Stuck s -> "stuck: " ^ s

exception Err of error

type state = {
  modul : Ir.modul;
  mem : (int, int) Hashtbl.t;       (* word-indexed *)
  global_addr : (string, int) Hashtbl.t;
  mutable heap_ptr : int;
  mutable output_rev : int list;
  mutable steps : int;
  max_steps : int;
}

let heap_base = 0x2000_0000
let global_base = 0x1000_0000

let load st addr =
  if addr = 0 then raise (Err Null_access);
  Option.value ~default:0 (Hashtbl.find_opt st.mem (addr asr 3))

let store st addr v =
  if addr = 0 then raise (Err Null_access);
  Hashtbl.replace st.mem (addr asr 3) v

let alloc st bytes =
  let size = (max bytes 8 + 7) / 8 * 8 in
  let p = st.heap_ptr in
  st.heap_ptr <- st.heap_ptr + size + 16;
  p

let addr_of_symbol st s =
  match Hashtbl.find_opt st.global_addr s with
  | Some a -> a
  | None -> raise (Err (Unknown_global s))

let init_globals st =
  let cursor = ref global_base in
  List.iter
    (fun (g : Ir.global) ->
      Hashtbl.replace st.global_addr g.g_name !cursor;
      cursor := !cursor + (8 * List.length g.g_init) + 64)
    st.modul.globals;
  (* Functions get pseudo-addresses for Fn operands and indirect calls. *)
  List.iteri
    (fun i (f : Ir.func) ->
      Hashtbl.replace st.global_addr f.name (0x4000_0000 + (i * 16)))
    st.modul.funcs;
  (* Externs (e.g. the error flag) get zero-initialized storage. *)
  List.iteri
    (fun i e ->
      if not (Hashtbl.mem st.global_addr e) then
        Hashtbl.replace st.global_addr e (0x3000_0000 + (i * 64)))
    st.modul.externs;
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find st.global_addr g.g_name in
      List.iteri
        (fun i init ->
          let v =
            match init with
            | Ir.Gword w -> w
            | Ir.Gsym s -> addr_of_symbol st s
          in
          store st (base + (8 * i)) v)
        g.g_init)
    st.modul.globals

let func_by_addr st a =
  let found = ref None in
  List.iteri
    (fun i (f : Ir.func) -> if 0x4000_0000 + (i * 16) = a then found := Some f)
    st.modul.funcs;
  !found

(* Runtime builtins; [Some v] = handled with result v. *)
let builtin st name args =
  match (name, args) with
  | ("swift_retain" | "objc_retain"), [ p ] ->
    if p <> 0 then store st p (load st p + 1);
    Some p
  | ("swift_release" | "objc_release"), [ p ] ->
    if p <> 0 then store st p (load st p - 1);
    Some 0
  | "swift_beginAccess", _ | "swift_endAccess", _ -> Some 0
  | "print_i64", [ v ] ->
    st.output_rev <- v :: st.output_rev;
    Some 0
  | "swift_bounds_fail", _ -> raise (Err (Trap "array index out of bounds"))
  | "swift_allocArray", [ len ] ->
    if len < 0 then raise (Err (Trap "negative array length"));
    let p = alloc st ((len * 8) + 16) in
    store st p 1;
    store st (p + 8) len;
    Some p
  | "memcpy8", [ dst; src; words ] ->
    for i = 0 to words - 1 do
      store st (dst + (8 * i)) (load st (src + (8 * i)))
    done;
    Some dst
  | _ -> None

let rec call st name args =
  match Ir.find_func st.modul name with
  | Some f -> exec_func st f args
  | None -> (
    match builtin st name args with
    | Some v -> v
    | None -> raise (Err (Unknown_function name)))

and exec_func st (f : Ir.func) args =
  if List.length args <> List.length f.params then
    raise
      (Err
         (Stuck
            (Printf.sprintf "arity mismatch calling %s: %d args for %d params"
               f.name (List.length args) (List.length f.params))));
  let env : (Ir.value, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter2 (fun p a -> Hashtbl.replace env p a) f.params args;
  let value o =
    match o with
    | Ir.V v -> (
      match Hashtbl.find_opt env v with
      | Some x -> x
      | None -> raise (Err (Stuck (Printf.sprintf "undefined value %%%d in %s" v f.name))))
    | Ir.Imm n -> n
    | Ir.Global g -> addr_of_symbol st g
    | Ir.Fn g -> addr_of_symbol st g
  in
  let by_label = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace by_label b.label b) f.blocks;
  let binop op a b =
    match (op : Ir.binop) with
    | Ir.Add -> a + b
    | Ir.Sub -> a - b
    | Ir.Mul -> a * b
    | Ir.Div -> if b = 0 then 0 else a / b
    | Ir.And -> a land b
    | Ir.Or -> a lor b
    | Ir.Xor -> a lxor b
    | Ir.Shl -> a lsl (b land 63)
    | Ir.Lshr -> a lsr (b land 63)
    | Ir.Ashr -> a asr (b land 63)
  in
  let step () =
    st.steps <- st.steps + 1;
    if st.steps > st.max_steps then raise (Err Step_limit_exceeded)
  in
  let rec run_block prev_label (b : Ir.block) =
    (* Phis evaluate simultaneously from the incoming edge. *)
    if b.phis <> [] then begin
      let values =
        List.map
          (fun (p : Ir.phi) ->
            match prev_label with
            | None -> raise (Err (Stuck "phi in entry block"))
            | Some l -> (
              match List.assoc_opt l p.incoming with
              | Some o -> (p.phi_dst, value o)
              | None ->
                raise
                  (Err (Stuck (Printf.sprintf "phi %%%d missing edge %s" p.phi_dst l)))))
          b.phis
      in
      List.iter (fun (d, v) -> Hashtbl.replace env d v) values
    end;
    List.iter
      (fun i ->
        step ();
        match i with
        | Ir.Assign (d, o) -> Hashtbl.replace env d (value o)
        | Ir.Binop (d, op, a, b') ->
          Hashtbl.replace env d (binop op (value a) (value b'))
        | Ir.Icmp (d, c, a, b') ->
          let r = compare (value a) (value b') in
          Hashtbl.replace env d (if Machine.Cond.holds c r then 1 else 0)
        | Ir.Load (d, base, off) -> Hashtbl.replace env d (load st (value base + off))
        | Ir.Store (v, base, off) -> store st (value base + off) (value v)
        | Ir.Call (dopt, fn, args') ->
          let r = call st fn (List.map value args') in
          (match dopt with Some d -> Hashtbl.replace env d r | None -> ())
        | Ir.Call_indirect (dopt, fn, args') -> (
          let fa = value fn in
          match func_by_addr st fa with
          | Some f' ->
            let r = exec_func st f' (List.map value args') in
            (match dopt with Some d -> Hashtbl.replace env d r | None -> ())
          | None -> raise (Err (Stuck "indirect call to non-function address")))
        | Ir.Retain o ->
          let p = value o in
          if p <> 0 then store st p (load st p + 1)
        | Ir.Release o ->
          let p = value o in
          if p <> 0 then store st p (load st p - 1)
        | Ir.Alloc_object (d, meta, size) ->
          let p = alloc st (max size 16) in
          store st p 1;
          store st (p + 8) (addr_of_symbol st meta);
          Hashtbl.replace env d p
        | Ir.Alloc_array (d, n) ->
          let len = value n in
          if len < 0 then raise (Err (Trap "negative array length"));
          let p = alloc st ((len * 8) + 16) in
          store st p 1;
          store st (p + 8) len;
          Hashtbl.replace env d p)
      b.instrs;
    step ();
    match b.term with
    | Ir.Ret o -> value o
    | Ir.Br l -> goto b.label l
    | Ir.Cond_br (o, a, b') -> if value o <> 0 then goto b.label a else goto b.label b'
    | Ir.Unreachable -> raise (Err (Trap "unreachable executed"))
  and goto from l =
    match Hashtbl.find_opt by_label l with
    | Some b -> run_block (Some from) b
    | None -> raise (Err (Stuck ("branch to unknown label " ^ l)))
  in
  match f.blocks with
  | [] -> raise (Err (Stuck ("empty function " ^ f.name)))
  | entry :: _ -> run_block None entry

let run ?(max_steps = 50_000_000) ?(args = []) ~entry (m : Ir.modul) =
  let st =
    {
      modul = m;
      mem = Hashtbl.create 4096;
      global_addr = Hashtbl.create 64;
      heap_ptr = heap_base;
      output_rev = [];
      steps = 0;
      max_steps;
    }
  in
  try
    init_globals st;
    match Ir.find_func m entry with
    | None -> Error (Unknown_function entry)
    | Some f ->
      let v = exec_func st f args in
      Ok { exit_value = v; output = List.rev st.output_rev; instrs_executed = st.steps }
  with Err e -> Error e
