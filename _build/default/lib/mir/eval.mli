(** Reference interpreter for MIR modules.

    Used as the semantic oracle for the code generator: a program's
    observable behaviour (printed values and exit value) under this
    evaluator must match the machine-code interpreter's behaviour after
    lowering.  Heap object layout mirrors the machine runtime: objects are
    [refcount; metadata; fields...], arrays are [refcount; length;
    elements...], so field offsets agree across both interpreters. *)

type result = {
  exit_value : int;
  output : int list;      (** values printed via [print_i64] *)
  instrs_executed : int;
}

type error =
  | Unknown_function of string
  | Unknown_global of string
  | Null_access
  | Trap of string
  | Step_limit_exceeded
  | Stuck of string

val error_to_string : error -> string

val run :
  ?max_steps:int ->
  ?args:int list ->
  entry:string ->
  Ir.modul ->
  (result, error) Stdlib.result
