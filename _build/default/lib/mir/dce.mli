(** Dead-code elimination at the IR level: drop blocks unreachable from the
    entry (pruning phi edges accordingly) and remove pure instructions whose
    results are never used.  Part of the "opt" stage in both pipelines. *)

type stats = {
  blocks_removed : int;
  instrs_removed : int;
}

val run_func : Ir.func -> Ir.func * stats
val run : Ir.modul -> Ir.modul * stats
