type flag_semantics =
  | Legacy
  | Attributes

type data_order =
  | Interleaved
  | Module_preserving

type error =
  | Flag_conflict of { flag : string; detail : string }
  | Duplicate_symbol of string

let error_to_string = function
  | Flag_conflict { flag; detail } ->
    Printf.sprintf "module flag conflict on %s: %s" flag detail
  | Duplicate_symbol s -> "duplicate symbol: " ^ s

let pack_objc_gc ~gc_mode ~compiler_id ~version =
  (gc_mode land 0xff) lor ((compiler_id land 0xff) lsl 8)
  lor ((version land 0xffff) lsl 16)

let gc_mode_of_packed w = w land 0xff

let attrs_of_flag = function
  | Ir.Packed w -> [ ("gc_mode", gc_mode_of_packed w) ]
  | Ir.Attrs a ->
    (* Only semantically relevant attributes participate in comparison. *)
    List.filter (fun (k, _) -> k = "gc_mode") a

let merge_flag semantics name a b =
  match semantics with
  | Legacy ->
    if a = b then Ok a
    else
      Error
        (Flag_conflict
           {
             flag = name;
             detail =
               "legacy single-value comparison: values differ bit-for-bit \
                (compiler identity/version bits included)";
           })
  | Attributes ->
    let ka = attrs_of_flag a and kb = attrs_of_flag b in
    if ka = kb then Ok (Ir.Attrs ka)
    else
      Error
        (Flag_conflict
           { flag = name; detail = "semantic attributes differ between modules" })

let merge_flags semantics modules =
  let out : (string * Ir.flag_value) list ref = ref [] in
  let err = ref None in
  List.iter
    (fun (m : Ir.modul) ->
      List.iter
        (fun (name, v) ->
          if !err = None then
            match List.assoc_opt name !out with
            | None -> out := !out @ [ (name, v) ]
            | Some prev -> (
              match merge_flag semantics name prev v with
              | Ok merged ->
                out :=
                  List.map (fun (n, x) -> if n = name then (n, merged) else (n, x)) !out
              | Error e -> err := Some e))
        m.flags)
    modules;
  match !err with Some e -> Error e | None -> Ok !out

(* A deterministic scatter: llvm-link pulls globals in an order unrelated to
   their home module; we model that with a hash shuffle. *)
let interleave globals =
  let keyed =
    List.map (fun (g : Ir.global) -> (Hashtbl.hash g.g_name, g)) globals
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) keyed)

let link ?(flag_semantics = Legacy) ?(data_order = Module_preserving) ~name
    modules =
  match merge_flags flag_semantics modules with
  | Error e -> Error e
  | Ok flags -> (
    let funcs = List.concat_map (fun (m : Ir.modul) -> m.funcs) modules in
    let globals = List.concat_map (fun (m : Ir.modul) -> m.globals) modules in
    let seen = Hashtbl.create 1024 in
    let dup = ref None in
    List.iter
      (fun (f : Ir.func) ->
        if Hashtbl.mem seen f.name then dup := Some f.name
        else Hashtbl.add seen f.name ())
      funcs;
    List.iter
      (fun (g : Ir.global) ->
        if Hashtbl.mem seen g.g_name then dup := Some g.g_name
        else Hashtbl.add seen g.g_name ())
      globals;
    match !dup with
    | Some s -> Error (Duplicate_symbol s)
    | None ->
      let globals =
        match data_order with
        | Module_preserving -> globals
        | Interleaved -> interleave globals
      in
      let externs =
        List.concat_map (fun (m : Ir.modul) -> m.externs) modules
        |> List.sort_uniq String.compare
        |> List.filter (fun e -> not (Hashtbl.mem seen e))
      in
      Ok { Ir.m_name = name; funcs; globals; externs; flags })
