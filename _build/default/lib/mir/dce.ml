type stats = {
  blocks_removed : int;
  instrs_removed : int;
}

let is_pure = function
  | Ir.Assign _ | Ir.Binop _ | Ir.Icmp _ | Ir.Load _ | Ir.Alloc_object _
  | Ir.Alloc_array _ ->
    true
  | Ir.Store _ | Ir.Call _ | Ir.Call_indirect _ | Ir.Retain _
  | Ir.Release _ ->
    false

let reachable_labels (f : Ir.func) =
  let seen = Hashtbl.create 16 in
  let by_label = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace by_label b.label b) f.blocks;
  let rec visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      match Hashtbl.find_opt by_label l with
      | Some b -> List.iter visit (Ir.successors b.term)
      | None -> ()
    end
  in
  (match f.blocks with b :: _ -> visit b.label | [] -> ());
  seen

let run_func (f : Ir.func) =
  let reach = reachable_labels f in
  let blocks =
    List.filter (fun (b : Ir.block) -> Hashtbl.mem reach b.label) f.blocks
  in
  let blocks_removed = List.length f.blocks - List.length blocks in
  (* Prune phi edges coming from removed blocks. *)
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let phis =
          List.map
            (fun (p : Ir.phi) ->
              { p with Ir.incoming = List.filter (fun (l, _) -> Hashtbl.mem reach l) p.incoming })
            b.phis
        in
        { b with phis })
      blocks
  in
  (* Iteratively remove pure instructions whose destination is unused. *)
  let instrs_removed = ref 0 in
  let rec sweep blocks =
    let used = Hashtbl.create 64 in
    let mark = function
      | Ir.V v -> Hashtbl.replace used v ()
      | Ir.Imm _ | Ir.Global _ | Ir.Fn _ -> ()
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (p : Ir.phi) -> List.iter (fun (_, o) -> mark o) p.incoming)
          b.phis;
        List.iter (fun i -> List.iter mark (Ir.operands_of_instr i)) b.instrs;
        match b.term with
        | Ir.Ret o -> mark o
        | Ir.Cond_br (o, _, _) -> mark o
        | Ir.Br _ | Ir.Unreachable -> ())
      blocks;
    let changed = ref false in
    let blocks =
      List.map
        (fun (b : Ir.block) ->
          let instrs =
            List.filter
              (fun i ->
                match Ir.def_of_instr i with
                | Some d when is_pure i && not (Hashtbl.mem used d) ->
                  incr instrs_removed;
                  changed := true;
                  false
                | Some _ | None -> true)
              b.instrs
          in
          { b with instrs })
        blocks
    in
    if !changed then sweep blocks else blocks
  in
  let blocks = sweep blocks in
  ({ f with blocks }, { blocks_removed; instrs_removed = !instrs_removed })

let run (m : Ir.modul) =
  let total = ref { blocks_removed = 0; instrs_removed = 0 } in
  let funcs =
    List.map
      (fun f ->
        let f', s = run_func f in
        total :=
          {
            blocks_removed = !total.blocks_removed + s.blocks_removed;
            instrs_removed = !total.instrs_removed + s.instrs_removed;
          };
        f')
      m.funcs
  in
  ({ m with funcs }, !total)
