(** The [llvm-link] stand-in: merge many modules into one (§V-A), with the
    two behaviours the paper had to engineer around:

    - {b Module-flag conflicts} (§VI-2).  The "objc_gc" flag historically
      packed the GC mode together with compiler identity/version bits into
      a single word; linking a Swift-produced module with a Clang-produced
      one then fails spuriously.  [`Attributes] semantics (the paper's
      upstreamed fix) compares only the semantically relevant attribute.

    - {b Data ordering} (§VI-3).  [`Interleaved] scatters globals from
      different modules (as the original llvm-link did, destroying the
      programmer's module-level data affinity and causing the 10%
      production regression); [`Module_preserving] keeps each module's
      globals contiguous (the paper's data-layout fix). *)

type flag_semantics =
  | Legacy
  | Attributes

type data_order =
  | Interleaved
  | Module_preserving

type error =
  | Flag_conflict of { flag : string; detail : string }
  | Duplicate_symbol of string

val error_to_string : error -> string

(** Pack/unpack the legacy "objc_gc" word: gc mode in bits 0–7, compiler id
    in bits 8–15, version in bits 16–31. *)
val pack_objc_gc : gc_mode:int -> compiler_id:int -> version:int -> int

val link :
  ?flag_semantics:flag_semantics ->
  ?data_order:data_order ->
  name:string ->
  Ir.modul list ->
  (Ir.modul, error) result
