type value = int

type operand =
  | V of value
  | Imm of int
  | Global of string
  | Fn of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type instr =
  | Assign of value * operand
  | Binop of value * binop * operand * operand
  | Icmp of value * Machine.Cond.t * operand * operand
  | Load of value * operand * int
  | Store of operand * operand * int
  | Call of value option * string * operand list
  | Call_indirect of value option * operand * operand list
  | Retain of operand
  | Release of operand
  | Alloc_object of value * string * int
  | Alloc_array of value * operand

type terminator =
  | Ret of operand
  | Br of string
  | Cond_br of operand * string * string
  | Unreachable

type phi = {
  phi_dst : value;
  incoming : (string * operand) list;
}

type block = {
  label : string;
  phis : phi list;
  instrs : instr list;
  term : terminator;
}

type func = {
  name : string;
  params : value list;
  blocks : block list;
  next_value : value;
  from_module : string;
}

type ginit =
  | Gword of int
  | Gsym of string

type global = {
  g_name : string;
  g_init : ginit list;
  g_module : string;
}

type flag_value =
  | Packed of int
  | Attrs of (string * int) list

type modul = {
  m_name : string;
  funcs : func list;
  globals : global list;
  externs : string list;
  flags : (string * flag_value) list;
}

let def_of_instr = function
  | Assign (d, _)
  | Binop (d, _, _, _)
  | Icmp (d, _, _, _)
  | Load (d, _, _)
  | Alloc_object (d, _, _)
  | Alloc_array (d, _) ->
    Some d
  | Call (d, _, _) | Call_indirect (d, _, _) -> d
  | Store (_, _, _) | Retain _ | Release _ -> None

let operands_of_instr = function
  | Assign (_, o) -> [ o ]
  | Binop (_, _, a, b) | Icmp (_, _, a, b) -> [ a; b ]
  | Load (_, base, _) -> [ base ]
  | Store (v, base, _) -> [ v; base ]
  | Call (_, _, args) -> args
  | Call_indirect (_, f, args) -> f :: args
  | Retain o | Release o -> [ o ]
  | Alloc_object (_, _, _) -> []
  | Alloc_array (_, n) -> [ n ]

let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cond_br (_, a, b) -> [ a; b ]

let instr_count f =
  List.fold_left
    (fun acc b -> acc + List.length b.instrs + List.length b.phis + 1)
    0 f.blocks

let module_instr_count m =
  List.fold_left (fun acc f -> acc + instr_count f) 0 m.funcs

let find_func m name = List.find_opt (fun f -> String.equal f.name name) m.funcs
let fresh f = (f.next_value, { f with next_value = f.next_value + 1 })

let validate ?(require_ssa = true) (m : modul) =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let fnames = Hashtbl.create 64 in
  let rec check_funcs = function
    | [] -> Ok ()
    | (f : func) :: rest ->
      if Hashtbl.mem fnames f.name then err "duplicate function %s" f.name
      else begin
        Hashtbl.add fnames f.name ();
        let labels = Hashtbl.create 16 in
        List.iter (fun b -> Hashtbl.replace labels b.label ()) f.blocks;
        let defined = Hashtbl.create 64 in
        List.iter (fun p -> Hashtbl.replace defined p ()) f.params;
        let dup = ref None in
        let define v =
          if Hashtbl.mem defined v && require_ssa then dup := Some v
          else Hashtbl.replace defined v ()
        in
        List.iter
          (fun b ->
            List.iter (fun p -> define p.phi_dst) b.phis;
            List.iter
              (fun i -> match def_of_instr i with Some d -> define d | None -> ())
              b.instrs)
          f.blocks;
        match !dup with
        | Some v -> err "function %s: value %%%d defined twice" f.name v
        | None ->
          let bad_use = ref None in
          let check_op o =
            match o with
            | V v when not (Hashtbl.mem defined v) -> bad_use := Some v
            | V _ | Imm _ | Global _ | Fn _ -> ()
          in
          let bad_label = ref None in
          List.iter
            (fun b ->
              List.iter
                (fun p -> List.iter (fun (_, o) -> check_op o) p.incoming)
                b.phis;
              List.iter (fun i -> List.iter check_op (operands_of_instr i)) b.instrs;
              (match b.term with
              | Ret o -> check_op o
              | Cond_br (o, _, _) -> check_op o
              | Br _ | Unreachable -> ());
              List.iter
                (fun l -> if not (Hashtbl.mem labels l) then bad_label := Some l)
                (successors b.term))
            f.blocks;
          (match (!bad_use, !bad_label) with
          | Some v, _ -> err "function %s: use of undefined value %%%d" f.name v
          | None, Some l -> err "function %s: branch to unknown label %s" f.name l
          | None, None -> check_funcs rest)
      end
  in
  check_funcs m.funcs

(* Printing ---------------------------------------------------------------- *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let pp_operand ppf = function
  | V v -> Format.fprintf ppf "%%%d" v
  | Imm n -> Format.fprintf ppf "%d" n
  | Global g -> Format.fprintf ppf "@%s" g
  | Fn f -> Format.fprintf ppf "&%s" f

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_operand ppf args

let pp_instr ppf = function
  | Assign (d, o) -> Format.fprintf ppf "%%%d = %a" d pp_operand o
  | Binop (d, op, a, b) ->
    Format.fprintf ppf "%%%d = %s %a, %a" d (binop_name op) pp_operand a
      pp_operand b
  | Icmp (d, c, a, b) ->
    Format.fprintf ppf "%%%d = icmp %a %a, %a" d Machine.Cond.pp c pp_operand a
      pp_operand b
  | Load (d, base, off) ->
    Format.fprintf ppf "%%%d = load [%a + %d]" d pp_operand base off
  | Store (v, base, off) ->
    Format.fprintf ppf "store %a, [%a + %d]" pp_operand v pp_operand base off
  | Call (Some d, f, args) ->
    Format.fprintf ppf "%%%d = call %s(%a)" d f pp_args args
  | Call (None, f, args) -> Format.fprintf ppf "call %s(%a)" f pp_args args
  | Call_indirect (Some d, f, args) ->
    Format.fprintf ppf "%%%d = call_ind %a(%a)" d pp_operand f pp_args args
  | Call_indirect (None, f, args) ->
    Format.fprintf ppf "call_ind %a(%a)" pp_operand f pp_args args
  | Retain o -> Format.fprintf ppf "retain %a" pp_operand o
  | Release o -> Format.fprintf ppf "release %a" pp_operand o
  | Alloc_object (d, meta, size) ->
    Format.fprintf ppf "%%%d = alloc_object @%s, %d" d meta size
  | Alloc_array (d, n) -> Format.fprintf ppf "%%%d = alloc_array %a" d pp_operand n

let pp_term ppf = function
  | Ret o -> Format.fprintf ppf "ret %a" pp_operand o
  | Br l -> Format.fprintf ppf "br %s" l
  | Cond_br (o, a, b) -> Format.fprintf ppf "br %a, %s, %s" pp_operand o a b
  | Unreachable -> Format.pp_print_string ppf "unreachable"

let pp_func ppf f =
  Format.fprintf ppf "func %s(%a) {  ; module=%s@."
    f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%%%d" v))
    f.params f.from_module;
  List.iter
    (fun b ->
      Format.fprintf ppf "%s:@." b.label;
      List.iter
        (fun p ->
          Format.fprintf ppf "  %%%d = phi %a@." p.phi_dst
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               (fun ppf (l, o) -> Format.fprintf ppf "[%s: %a]" l pp_operand o))
            p.incoming)
        b.phis;
      List.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) b.instrs;
      Format.fprintf ppf "  %a@." pp_term b.term)
    f.blocks;
  Format.fprintf ppf "}@."

let pp_modul ppf m =
  Format.fprintf ppf "module %s@." m.m_name;
  List.iter (fun g -> Format.fprintf ppf "global @%s (%d words)@." g.g_name (List.length g.g_init)) m.globals;
  List.iter (pp_func ppf) m.funcs
