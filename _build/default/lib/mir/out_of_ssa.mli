(** Out-of-SSA translation: split critical edges, then lower every phi to
    copies in the predecessor blocks (temporaries first, so parallel swaps
    stay correct).

    This is the pass whose interaction with Swift's [try]-heavy initializers
    the paper dissects in §IV (Listing 11 / Figure 9): a join block with N
    phis and N predecessors expands into O(N^2) copies — prime outlining
    fodder. *)

val run_func : Ir.func -> Ir.func
(** The result contains no phis. *)

val run : Ir.modul -> Ir.modul

val copies_inserted : Ir.func -> int
(** How many copies lowering this function's phis would insert (for the
    statistics in the paper's analysis). *)
