type t = {
  name : string;
  from_module : string;
  params_ : Ir.value list;
  mutable next : Ir.value;
  mutable done_blocks : Ir.block list;  (* reversed *)
  mutable cur_label : string;
  mutable cur_phis : Ir.phi list;       (* reversed *)
  mutable cur_instrs : Ir.instr list;   (* reversed *)
  mutable in_block : bool;
  mutable label_counter : int;
}

let create ~name ?(from_module = "") ~nparams () =
  {
    name;
    from_module;
    params_ = List.init nparams (fun i -> i);
    next = nparams;
    done_blocks = [];
    cur_label = "entry";
    cur_phis = [];
    cur_instrs = [];
    in_block = true;
    label_counter = 0;
  }

let params b = b.params_

let fresh b =
  let v = b.next in
  b.next <- v + 1;
  v

let instr b i =
  if not b.in_block then
    invalid_arg ("Builder.instr: no open block in " ^ b.name);
  b.cur_instrs <- i :: b.cur_instrs

let assign b o =
  let v = fresh b in
  instr b (Ir.Assign (v, o));
  v

let binop b op x y =
  let v = fresh b in
  instr b (Ir.Binop (v, op, x, y));
  v

let icmp b c x y =
  let v = fresh b in
  instr b (Ir.Icmp (v, c, x, y));
  v

let load b base off =
  let v = fresh b in
  instr b (Ir.Load (v, base, off));
  v

let store b v base off = instr b (Ir.Store (v, base, off))

let call b f args =
  let v = fresh b in
  instr b (Ir.Call (Some v, f, args));
  v

let call_void b f args = instr b (Ir.Call (None, f, args))
let retain b o = instr b (Ir.Retain o)
let release b o = instr b (Ir.Release o)

let alloc_object b meta size =
  let v = fresh b in
  instr b (Ir.Alloc_object (v, meta, size));
  v

let alloc_array b n =
  let v = fresh b in
  instr b (Ir.Alloc_array (v, n));
  v

let fresh_label b hint =
  b.label_counter <- b.label_counter + 1;
  Printf.sprintf "%s%d" hint b.label_counter

let terminate b term =
  if not b.in_block then
    invalid_arg ("Builder.terminate: no open block in " ^ b.name);
  b.done_blocks <-
    {
      Ir.label = b.cur_label;
      phis = List.rev b.cur_phis;
      instrs = List.rev b.cur_instrs;
      term;
    }
    :: b.done_blocks;
  b.in_block <- false

let start_block b label =
  if b.in_block then
    invalid_arg ("Builder.start_block: current block not terminated in " ^ b.name);
  b.cur_label <- label;
  b.cur_phis <- [];
  b.cur_instrs <- [];
  b.in_block <- true

let add_phi b dst incoming =
  if not b.in_block then invalid_arg "Builder.add_phi: no open block";
  if b.cur_instrs <> [] then
    invalid_arg "Builder.add_phi: phis must precede instructions";
  b.cur_phis <- { Ir.phi_dst = dst; incoming } :: b.cur_phis

let current_label b = b.cur_label

let finish b =
  if b.in_block then
    invalid_arg ("Builder.finish: block " ^ b.cur_label ^ " not terminated in " ^ b.name);
  {
    Ir.name = b.name;
    params = b.params_;
    blocks = List.rev b.done_blocks;
    next_value = b.next;
    from_module = b.from_module;
  }
