(** Machine functions: a named list of basic blocks, entry first. *)

type t = {
  name : string;
  blocks : Block.t list;     (** entry block first; labels unique within the function *)
  from_module : string;      (** provenance, for data/code-affinity experiments *)
  is_outlined : bool;        (** created by the outliner *)
  no_outline : bool;         (** outlining may not harvest sequences from this function *)
}

val make : ?from_module:string -> ?is_outlined:bool -> ?no_outline:bool ->
  name:string -> Block.t list -> t

val size_bytes : t -> int
val insn_count : t -> int
val find_block : t -> string -> Block.t
(** Raises [Not_found] if the label is absent. *)

val entry : t -> Block.t
(** Raises [Invalid_argument] on a function with no blocks. *)

val map_blocks : (Block.t -> Block.t) -> t -> t
val pp : Format.formatter -> t -> unit
