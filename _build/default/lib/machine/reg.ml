type t =
  | X of int
  | SP
  | XZR
  | NZCV

let fp = X 29
let lr = X 30

let x n =
  if n < 0 || n > 30 then invalid_arg "Reg.x: register out of range"
  else X n

let equal a b =
  match a, b with
  | X i, X j -> i = j
  | SP, SP | XZR, XZR | NZCV, NZCV -> true
  | (X _ | SP | XZR | NZCV), _ -> false

let index = function
  | X i -> i
  | SP -> 31
  | XZR -> 32
  | NZCV -> 33

let count = 34

let of_index i =
  if i >= 0 && i <= 30 then X i
  else
    match i with
    | 31 -> SP
    | 32 -> XZR
    | 33 -> NZCV
    | _ -> invalid_arg "Reg.of_index"

let compare a b = Int.compare (index a) (index b)
let hash r = index r

let is_callee_saved = function
  | X i -> i >= 19 && i <= 30
  | SP | XZR | NZCV -> false

let is_caller_saved = function
  | X i -> i <= 17
  | SP | XZR | NZCV -> false

(* x18 is the platform register on iOS and never allocated; x29/x30 have
   dedicated roles. *)
let is_allocatable = function
  | X 18 | X 29 | X 30 -> false
  | X _ -> true
  | SP | XZR | NZCV -> false

let max_args = 8

let arg i =
  if i < 0 || i >= max_args then invalid_arg "Reg.arg"
  else X i

let to_string = function
  | X 29 -> "fp"
  | X 30 -> "lr"
  | X i -> "x" ^ string_of_int i
  | SP -> "sp"
  | XZR -> "xzr"
  | NZCV -> "nzcv"

let of_string s =
  match s with
  | "sp" -> Some SP
  | "xzr" -> Some XZR
  | "nzcv" -> Some NZCV
  | "fp" -> Some (X 29)
  | "lr" -> Some (X 30)
  | _ ->
    let n = String.length s in
    if n >= 2 && n <= 3 && s.[0] = 'x' then
      match int_of_string_opt (String.sub s 1 (n - 1)) with
      | Some i when i >= 0 && i <= 30 -> Some (X i)
      | Some _ | None -> None
    else None

let pp ppf r = Format.pp_print_string ppf (to_string r)
