(** AArch64 condition codes (the subset our code generator emits). *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val negate : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val holds : t -> int -> bool
(** [holds c d] evaluates the condition against a signed comparison result
    [d] (negative, zero or positive), as left in the NZCV pseudo-register
    by [CMP]. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
