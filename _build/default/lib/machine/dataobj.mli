(** Data-section objects (globals).  Contents are 8-byte words; symbolic
    initializers are resolved at link time. *)

type init =
  | Word of int            (** a literal 8-byte word *)
  | Sym of string          (** address of another symbol *)

type t = {
  name : string;
  words : init array;
  from_module : string;    (** provenance, used by the data-layout experiment *)
}

val make : ?from_module:string -> name:string -> init list -> t
val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
