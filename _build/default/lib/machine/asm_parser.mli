(** Parser for a small textual assembly format, used by tests, examples and
    the command-line driver.  The grammar, line oriented:

    {v
    func NAME [module=M] [no_outline]:
    LABEL:
      mov x0, #5
      orr x0, xzr, x1        ; the register-move idiom
      add x0, x1, x2
      ldr x0, [sp, #16]
      stp x19, x20, [sp, #-16]!
      bl some_symbol
      b other_label          ; block branch or tail call, resolved by scope
      b.eq l1, l2
      cbz x0, l1, l2
      ret
    data NAME [module=M]: w0 w1 @sym ...
    extern NAME
    v}

    Comments run from [;] to end of line.  [b LABEL] is an intra-function
    branch when [LABEL] names a block of the current function, otherwise a
    tail call. *)

val parse_program : string -> (Program.t, string) result
(** Parse a whole unit.  Errors carry a line number and message. *)

val parse_func : string -> (Mfunc.t, string) result
(** Parse text containing exactly one function. *)
