(** Emit a program in the textual format {!Asm_parser} accepts, so that
    compiled or outlined code can be saved and reloaded (used by the CLI
    driver; round-tripping is property-tested). *)

val func_to_source : Mfunc.t -> string
val to_source : Program.t -> string
