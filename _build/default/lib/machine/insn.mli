(** Straight-line machine instructions.

    Every instruction occupies exactly 4 bytes, as on AArch64 (§IV of the
    paper: "fixed-instruction width architecture").  Control transfers that
    end a basic block live in {!Block.terminator}; the only control-flow
    instruction allowed inside a block body is the call [BL]/[BLR]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | And
  | Orr
  | Eor
  | Lsl
  | Lsr
  | Asr

type operand =
  | Rop of Reg.t
  | Imm of int

(** Addressing mode for loads/stores: plain offset, pre-indexed with
    write-back ([\[base, #off\]!]) or post-indexed ([\[base\], #off]). *)
type amode =
  | Offset
  | Pre
  | Post

type addr = { base : Reg.t; off : int; mode : amode }

type t =
  | Mov of Reg.t * operand      (** register move ([ORR dst, xzr, src]) or immediate *)
  | Binop of binop * Reg.t * Reg.t * operand
  | Cmp of Reg.t * operand      (** sets NZCV *)
  | Cset of Reg.t * Cond.t      (** reads NZCV *)
  | Csel of Reg.t * Reg.t * Reg.t * Cond.t
  | Ldr of Reg.t * addr
  | Str of Reg.t * addr
  | Ldp of Reg.t * Reg.t * addr (** load a pair of registers *)
  | Stp of Reg.t * Reg.t * addr (** store a pair of registers *)
  | Adr of Reg.t * string       (** materialize the address of a global symbol *)
  | Bl of string                (** direct call; clobbers LR and caller-saved registers *)
  | Blr of Reg.t                (** indirect call *)
  | Nop

val size_bytes : int
(** Size of any instruction: 4. *)

val uses : t -> Regset.t
(** Registers read.  Calls conservatively use all argument registers. *)

val defs : t -> Regset.t
(** Registers written.  Calls clobber caller-saved registers, LR and NZCV. *)

val is_call : t -> bool

val touches_lr : t -> bool
(** Reads or writes the link register (other than via a call's implicit
    clobber, which calls also report). *)

val touches_sp : t -> bool
(** Uses SP as a base, destination or source — relevant to outlining
    strategies that adjust SP around the inserted call. *)

val modifies_sp : t -> bool
(** Writes SP (pre/post-indexed stack ops or arithmetic on SP). *)

val equal : t -> t -> bool
val hash : t -> int
val mov_r : Reg.t -> Reg.t -> t
val mov_i : Reg.t -> int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
