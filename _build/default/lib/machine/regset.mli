(** Compact register sets, represented as bit masks (there are fewer than
    62 registers, so a native [int] suffices). *)

type t = private int

val empty : t
val singleton : Reg.t -> t
val add : Reg.t -> t -> t
val remove : Reg.t -> t -> t
val mem : Reg.t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val is_empty : t -> bool
val of_list : Reg.t list -> t
val to_list : t -> Reg.t list
val cardinal : t -> int
val pp : Format.formatter -> t -> unit
