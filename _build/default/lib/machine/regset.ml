type t = int

let empty = 0
let singleton r = 1 lsl Reg.index r
let add r s = s lor (1 lsl Reg.index r)
let remove r s = s land lnot (1 lsl Reg.index r)
let mem r s = s land (1 lsl Reg.index r) <> 0
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let equal = Int.equal
let is_empty s = s = 0
let of_list rs = List.fold_left (fun s r -> add r s) empty rs

let to_list s =
  let rec go i acc =
    if i < 0 then acc
    else if s land (1 lsl i) <> 0 then go (i - 1) (Reg.of_index i :: acc)
    else go (i - 1) acc
  in
  go (Reg.count - 1) []

let cardinal s =
  let rec go s n = if s = 0 then n else go (s land (s - 1)) (n + 1) in
  go s 0

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Reg.pp)
    (to_list s)
