(** AArch64-flavoured register file.

    General-purpose registers are 64-bit [x0]..[x30]; [x29] doubles as the
    frame pointer and [x30] as the link register.  [SP] is the stack
    pointer, [XZR] the always-zero register, and [NZCV] a pseudo-register
    standing for the condition flags (so liveness analysis can treat flag
    setters/readers uniformly). *)

type t =
  | X of int  (** general-purpose register, 0..30 *)
  | SP
  | XZR
  | NZCV

val fp : t
(** Frame pointer, [x29]. *)

val lr : t
(** Link register, [x30]; clobbered by [BL]. *)

val x : int -> t
(** [x n] is register [xn]; raises [Invalid_argument] unless [0 <= n <= 30]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val index : t -> int
(** Dense index in [0, count), suitable for bitsets and arrays. *)

val count : int
(** Number of distinct registers, i.e. one past the largest [index]. *)

val of_index : int -> t
(** Inverse of [index]. *)

val is_callee_saved : t -> bool
(** [x19]..[x28], plus [fp] and [lr], per AAPCS64. *)

val is_caller_saved : t -> bool
(** [x0]..[x17]. *)

val is_allocatable : t -> bool
(** Registers the register allocator may assign to virtual values. *)

val arg : int -> t
(** [arg i] is the i-th integer argument register [x0]..[x7]. *)

val max_args : int
(** Number of register-passed arguments (8). *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
