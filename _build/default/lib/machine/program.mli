(** A machine-code compilation unit: either one module's worth of code or a
    whole merged program, depending on where it sits in the pipeline. *)

type t = {
  funcs : Mfunc.t list;
  data : Dataobj.t list;
  externs : string list;   (** runtime symbols resolved outside this image *)
}

val make : ?data:Dataobj.t list -> ?externs:string list -> Mfunc.t list -> t
val empty : t
val concat : t list -> t
(** Concatenate units; function and data names must not collide (checked). *)

val code_size_bytes : t -> int
val data_size_bytes : t -> int
val insn_count : t -> int
val find_func : t -> string -> Mfunc.t option
val replace_funcs : t -> Mfunc.t list -> t
val add_funcs : t -> Mfunc.t list -> t
val validate : t -> (unit, string) result
(** Check label/symbol integrity: unique function names, unique block labels
    per function, branch targets resolve, called symbols are defined or
    extern. *)

val pp : Format.formatter -> t -> unit
