type init =
  | Word of int
  | Sym of string

type t = {
  name : string;
  words : init array;
  from_module : string;
}

let make ?(from_module = "") ~name inits =
  { name; words = Array.of_list inits; from_module }

let size_bytes d = Array.length d.words * 8

let pp ppf d =
  Format.fprintf ppf "%s: %d words  ; module=%s@." d.name
    (Array.length d.words) d.from_module
