type t = {
  name : string;
  blocks : Block.t list;
  from_module : string;
  is_outlined : bool;
  no_outline : bool;
}

let make ?(from_module = "") ?(is_outlined = false) ?(no_outline = false)
    ~name blocks =
  { name; blocks; from_module; is_outlined; no_outline }

let size_bytes f =
  List.fold_left (fun acc b -> acc + Block.size_bytes b) 0 f.blocks

let insn_count f =
  List.fold_left (fun acc (b : Block.t) -> acc + Array.length b.body + 1) 0
    f.blocks

let find_block f label =
  List.find (fun (b : Block.t) -> String.equal b.label label) f.blocks

let entry f =
  match f.blocks with
  | [] -> invalid_arg ("Mfunc.entry: empty function " ^ f.name)
  | b :: _ -> b

let map_blocks g f = { f with blocks = List.map g f.blocks }

let pp ppf f =
  Format.fprintf ppf "%s:  ; module=%s%s@." f.name f.from_module
    (if f.is_outlined then " [outlined]" else "");
  List.iter (fun b -> Block.pp ppf b) f.blocks
