type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | And
  | Orr
  | Eor
  | Lsl
  | Lsr
  | Asr

type operand =
  | Rop of Reg.t
  | Imm of int

type amode =
  | Offset
  | Pre
  | Post

type addr = { base : Reg.t; off : int; mode : amode }

type t =
  | Mov of Reg.t * operand
  | Binop of binop * Reg.t * Reg.t * operand
  | Cmp of Reg.t * operand
  | Cset of Reg.t * Cond.t
  | Csel of Reg.t * Reg.t * Reg.t * Cond.t
  | Ldr of Reg.t * addr
  | Str of Reg.t * addr
  | Ldp of Reg.t * Reg.t * addr
  | Stp of Reg.t * Reg.t * addr
  | Adr of Reg.t * string
  | Bl of string
  | Blr of Reg.t
  | Nop

let size_bytes = 4

let operand_uses = function
  | Rop r -> Regset.singleton r
  | Imm _ -> Regset.empty

(* Registers a call may read: the integer argument registers.  We do not
   track callee arity at this level, so be conservative. *)
let call_uses =
  let rec go i s = if i >= Reg.max_args then s else go (i + 1) (Regset.add (Reg.arg i) s) in
  go 0 Regset.empty

(* Registers a call clobbers: caller-saved x0..x17, LR and the flags. *)
let call_defs =
  let rec go i s = if i > 17 then s else go (i + 1) (Regset.add (Reg.x i) s) in
  Regset.add Reg.lr (Regset.add Reg.NZCV (go 0 Regset.empty))

let addr_uses a = Regset.singleton a.base

let addr_defs a =
  match a.mode with
  | Offset -> Regset.empty
  | Pre | Post -> Regset.singleton a.base

let uses = function
  | Mov (_, op) -> operand_uses op
  | Binop (_, _, a, op) -> Regset.add a (operand_uses op)
  | Cmp (a, op) -> Regset.add a (operand_uses op)
  | Cset (_, _) -> Regset.singleton Reg.NZCV
  | Csel (_, a, b, _) -> Regset.of_list [ a; b; Reg.NZCV ]
  | Ldr (_, a) -> addr_uses a
  | Str (s, a) -> Regset.add s (addr_uses a)
  | Ldp (_, _, a) -> addr_uses a
  | Stp (s1, s2, a) -> Regset.add s1 (Regset.add s2 (addr_uses a))
  | Adr (_, _) -> Regset.empty
  | Bl _ -> call_uses
  | Blr r -> Regset.add r call_uses
  | Nop -> Regset.empty

let defs = function
  | Mov (d, _) -> Regset.singleton d
  | Binop (_, d, _, _) -> Regset.singleton d
  | Cmp (_, _) -> Regset.singleton Reg.NZCV
  | Cset (d, _) -> Regset.singleton d
  | Csel (d, _, _, _) -> Regset.singleton d
  | Ldr (d, a) -> Regset.add d (addr_defs a)
  | Str (_, a) -> addr_defs a
  | Ldp (d1, d2, a) -> Regset.add d1 (Regset.add d2 (addr_defs a))
  | Stp (_, _, a) -> addr_defs a
  | Adr (d, _) -> Regset.singleton d
  | Bl _ | Blr _ -> call_defs
  | Nop -> Regset.empty

let is_call = function
  | Bl _ | Blr _ -> true
  | Mov _ | Binop _ | Cmp _ | Cset _ | Csel _ | Ldr _ | Str _ | Ldp _ | Stp _
  | Adr _ | Nop ->
    false

let touches_lr i =
  Regset.mem Reg.lr (uses i) || Regset.mem Reg.lr (defs i)

let touches_sp i =
  Regset.mem Reg.SP (uses i) || Regset.mem Reg.SP (defs i)

let modifies_sp i = Regset.mem Reg.SP (defs i)

let equal (a : t) (b : t) = a = b
let hash (i : t) = Hashtbl.hash i
let mov_r dst src = Mov (dst, Rop src)
let mov_i dst n = Mov (dst, Imm n)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | And -> "and"
  | Orr -> "orr"
  | Eor -> "eor"
  | Lsl -> "lsl"
  | Lsr -> "lsr"
  | Asr -> "asr"

let pp_operand ppf = function
  | Rop r -> Reg.pp ppf r
  | Imm n -> Format.fprintf ppf "#%d" n

let pp_addr ppf a =
  match a.mode with
  | Offset ->
    if a.off = 0 then Format.fprintf ppf "[%a]" Reg.pp a.base
    else Format.fprintf ppf "[%a, #%d]" Reg.pp a.base a.off
  | Pre -> Format.fprintf ppf "[%a, #%d]!" Reg.pp a.base a.off
  | Post -> Format.fprintf ppf "[%a], #%d" Reg.pp a.base a.off

let pp ppf = function
  | Mov (d, Rop s) ->
    (* Print as the ORR idiom to mirror the paper's listings. *)
    Format.fprintf ppf "orr %a, xzr, %a" Reg.pp d Reg.pp s
  | Mov (d, Imm n) -> Format.fprintf ppf "mov %a, #%d" Reg.pp d n
  | Binop (op, d, a, b) ->
    Format.fprintf ppf "%s %a, %a, %a" (binop_name op) Reg.pp d Reg.pp a
      pp_operand b
  | Cmp (a, b) -> Format.fprintf ppf "cmp %a, %a" Reg.pp a pp_operand b
  | Cset (d, c) -> Format.fprintf ppf "cset %a, %a" Reg.pp d Cond.pp c
  | Csel (d, a, b, c) ->
    Format.fprintf ppf "csel %a, %a, %a, %a" Reg.pp d Reg.pp a Reg.pp b
      Cond.pp c
  | Ldr (d, a) -> Format.fprintf ppf "ldr %a, %a" Reg.pp d pp_addr a
  | Str (s, a) -> Format.fprintf ppf "str %a, %a" Reg.pp s pp_addr a
  | Ldp (d1, d2, a) ->
    Format.fprintf ppf "ldp %a, %a, %a" Reg.pp d1 Reg.pp d2 pp_addr a
  | Stp (s1, s2, a) ->
    Format.fprintf ppf "stp %a, %a, %a" Reg.pp s1 Reg.pp s2 pp_addr a
  | Adr (d, sym) -> Format.fprintf ppf "adr %a, %s" Reg.pp d sym
  | Bl sym -> Format.fprintf ppf "bl %s" sym
  | Blr r -> Format.fprintf ppf "blr %a" Reg.pp r
  | Nop -> Format.pp_print_string ppf "nop"

let to_string i = Format.asprintf "%a" pp i
