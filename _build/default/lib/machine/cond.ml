type t = Eq | Ne | Lt | Le | Gt | Ge

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let holds c d =
  match c with
  | Eq -> d = 0
  | Ne -> d <> 0
  | Lt -> d < 0
  | Le -> d <= 0
  | Gt -> d > 0
  | Ge -> d >= 0

let to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let of_string = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

let pp ppf c = Format.pp_print_string ppf (to_string c)
