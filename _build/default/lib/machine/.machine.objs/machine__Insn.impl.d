lib/machine/insn.ml: Cond Format Hashtbl Reg Regset
