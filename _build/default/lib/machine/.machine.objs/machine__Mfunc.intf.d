lib/machine/mfunc.mli: Block Format
