lib/machine/regset.ml: Format Int List Reg
