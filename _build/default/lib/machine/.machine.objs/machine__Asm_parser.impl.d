lib/machine/asm_parser.ml: Block Buffer Cond Dataobj Format Insn List Mfunc Printf Program Reg String
