lib/machine/block.ml: Array Cond Format Insn Reg Regset
