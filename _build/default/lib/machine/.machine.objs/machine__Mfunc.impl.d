lib/machine/mfunc.ml: Array Block Format List String
