lib/machine/insn.mli: Cond Format Reg Regset
