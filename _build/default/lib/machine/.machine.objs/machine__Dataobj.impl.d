lib/machine/dataobj.ml: Array Format
