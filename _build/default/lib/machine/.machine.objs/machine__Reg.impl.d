lib/machine/reg.ml: Format Int String
