lib/machine/program.ml: Array Block Dataobj Format Hashtbl Insn List Mfunc String
