lib/machine/cond.mli: Format
