lib/machine/asm_parser.mli: Mfunc Program
