lib/machine/asm_printer.ml: Array Block Buffer Cond Dataobj Insn List Mfunc Printf Program Reg
