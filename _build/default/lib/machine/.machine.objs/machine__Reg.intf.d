lib/machine/reg.mli: Format
