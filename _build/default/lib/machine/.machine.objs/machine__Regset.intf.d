lib/machine/regset.mli: Format Reg
