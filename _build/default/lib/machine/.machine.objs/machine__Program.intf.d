lib/machine/program.mli: Dataobj Format Mfunc
