lib/machine/liveness.mli: Mfunc Regset
