lib/machine/block.mli: Cond Format Insn Reg Regset
