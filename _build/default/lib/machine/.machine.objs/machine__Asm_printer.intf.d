lib/machine/asm_printer.mli: Mfunc Program
