lib/machine/liveness.ml: Array Block Hashtbl Insn List Mfunc Reg Regset
