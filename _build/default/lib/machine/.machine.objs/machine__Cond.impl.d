lib/machine/cond.ml: Format Stdlib
