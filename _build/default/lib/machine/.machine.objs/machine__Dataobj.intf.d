lib/machine/dataobj.mli: Format
