(** Machine-code interpreter with a cycle cost model.

    Programs execute over the linker's address layout, so control transfers
    (including branches to outlined functions and their returns) behave
    exactly as on hardware: [BL] writes the return address into LR, [RET]
    jumps to it, tail branches leave LR untouched.  This is what lets the
    test suite prove that outlining preserves semantics, and what drives
    the performance experiments (Figure 13, Tables III/IV).

    The runtime symbols of our Swift-like language are built in:
    [swift_retain], [swift_release], [swift_allocObject], [swift_allocArray],
    [objc_retain], [objc_release], [swift_beginAccess], [swift_endAccess],
    [print_i64], [swift_bounds_fail], [memcpy8]. *)

type config = {
  device : Device.t;
  os : Device.os;
  max_steps : int;
  model_perf : bool;        (** feed caches/TLBs and accumulate cycles *)
  unknown_extern : [ `Error | `Noop ];
      (** [`Noop]: calls to unmodelled externs return 0 (useful for
          structural tests on synthetic programs) *)
  trace_ring : int;
      (** when positive, keep a ring of the most recent program counters
          and dump a symbolized trace to stderr if execution fails *)
}

val default_config : config

type result = {
  exit_value : int;          (** x0 at the final return *)
  output : int list;         (** values passed to [print_i64], in order *)
  steps : int;               (** instructions executed *)
  outlined_steps : int;      (** of which inside outlined functions — the
                                 paper reports ~3%% on UberRider *)
  cycles : int;
  icache_misses : int;
  icache_accesses : int;
  itlb_misses : int;
  dtlb_misses : int;
  data_pages_touched : int;
  data_fault_cycles : int;
  branches : int;
  calls : int;
}

type error =
  | Unknown_symbol of string
  | Null_access
  | Unaligned_access of int
  | Bad_jump of int
  | Step_limit_exceeded
  | Trap of string           (** e.g. array bounds failure *)
  | No_entry of string

val error_to_string : error -> string

val run :
  ?config:config ->
  ?args:int list ->
  entry:string ->
  Machine.Program.t ->
  (result, error) Stdlib.result
(** Link the program, place [args] in x0..x7, and execute [entry] to
    completion. *)

val run_with_backtrace :
  ?config:config ->
  ?args:int list ->
  entry:string ->
  Machine.Program.t ->
  (result, error * string list) Stdlib.result
(** Like {!run}, but failures carry the simulated call stack (innermost
    first).  This reproduces the debuggability story of §VI-4: a crash
    inside outlined code reports [OUTLINED_FUNCTION_…] as the leaf frame,
    with the responsible feature function one level below. *)
