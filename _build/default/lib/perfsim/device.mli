(** Hardware/OS parameter matrix used by the core-span heatmap experiment
    (Figure 13 of the paper): rows are device models, columns are OS
    versions.  Costs are in cycles. *)

type t = {
  name : string;
  icache_bytes : int;
  icache_line : int;
  icache_assoc : int;
  icache_miss_penalty : int;
  itlb_entries : int;
  itlb_miss_penalty : int;
  dtlb_entries : int;
  dtlb_miss_penalty : int;
  issue_cost : int;         (** ticks for an ordinary instruction (4 = 1 cycle) *)
  branch_cost : int;        (** ticks for a predicted branch/return (mostly hidden) *)
  call_cost : int;          (** ticks for bl/blr *)
  load_cost : int;
  store_cost : int;
  mul_cost : int;
  div_cost : int;
  data_fault_penalty : int; (** first touch of a data page (§VI-3 regression) *)
}
(** All costs are in ticks, a quarter of a cycle: the cheap-branch ratio is
    what lets a wide core hide outlined call overhead (§VII-E3). *)

type os = {
  os_name : string;
  page_bytes : int;
  penalty_scale : float;    (** OS-version multiplier on miss penalties *)
}

val devices : t list
(** The simulated device lineup (iPhone-7-class through iPhone-11-class). *)

val oses : os list
(** Simulated OS versions (12.x through 13.x). *)

val default : t
val default_os : os
val find : string -> t
val find_os : string -> os
