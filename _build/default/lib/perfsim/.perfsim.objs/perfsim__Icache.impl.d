lib/perfsim/icache.ml: Array
