lib/perfsim/icache.mli:
