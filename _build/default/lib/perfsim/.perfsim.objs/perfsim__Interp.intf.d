lib/perfsim/interp.mli: Device Machine Stdlib
