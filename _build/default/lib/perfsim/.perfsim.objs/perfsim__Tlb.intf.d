lib/perfsim/tlb.mli:
