lib/perfsim/device.mli:
