lib/perfsim/device.ml: List
