lib/perfsim/interp.ml: Array Block Cond Dataobj Device Hashtbl Icache Insn Linker List Machine Mfunc Option Printf Program Reg Tlb
