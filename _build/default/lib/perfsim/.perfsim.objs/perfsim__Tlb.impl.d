lib/perfsim/tlb.ml: Array
