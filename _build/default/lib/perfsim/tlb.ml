type t = {
  entries : int;
  page_bytes : int;
  pages : int array;
  ages : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~entries ~page_bytes =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  {
    entries;
    page_bytes;
    pages = Array.make entries (-1);
    ages = Array.make entries 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let page = addr / t.page_bytes in
  t.clock <- t.clock + 1;
  let hit = ref false in
  (try
     for i = 0 to t.entries - 1 do
       if t.pages.(i) = page then begin
         t.ages.(i) <- t.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = ref 0 in
    for i = 1 to t.entries - 1 do
      if t.ages.(i) < t.ages.(!victim) then victim := i
    done;
    t.pages.(!victim) <- page;
    t.ages.(!victim) <- t.clock;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset t =
  Array.fill t.pages 0 t.entries (-1);
  Array.fill t.ages 0 t.entries 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0
