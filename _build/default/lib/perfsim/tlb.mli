(** Fully-associative translation lookaside buffer with LRU replacement.
    Used both as an iTLB (instruction fetch) and a dTLB (data access). *)

type t

val create : entries:int -> page_bytes:int -> t
val access : t -> int -> bool
(** Touch the page containing the address; [true] on hit. *)

val hits : t -> int
val misses : t -> int
val reset : t -> unit
