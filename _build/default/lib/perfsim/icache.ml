type t = {
  line_bytes : int;
  assoc : int;
  sets : int;
  tags : int array;   (* sets * assoc entries; -1 = invalid *)
  ages : int array;   (* LRU stamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~line_bytes ~assoc =
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Icache.create: size not divisible by line * assoc";
  let sets = size_bytes / (line_bytes * assoc) in
  {
    line_bytes;
    assoc;
    sets;
    tags = Array.make (sets * assoc) (-1);
    ages = Array.make (sets * assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let line = addr / t.line_bytes in
  let set = line mod t.sets in
  let base = set * t.assoc in
  t.clock <- t.clock + 1;
  let hit = ref false in
  (try
     for w = base to base + t.assoc - 1 do
       if t.tags.(w) = line then begin
         t.ages.(w) <- t.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict the LRU way. *)
    let victim = ref base in
    for w = base + 1 to base + t.assoc - 1 do
      if t.ages.(w) < t.ages.(!victim) then victim := w
    done;
    t.tags.(!victim) <- line;
    t.ages.(!victim) <- t.clock;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0
