(** Set-associative instruction cache with LRU replacement.  Outlining
    shrinks the instruction footprint, and this model is how that shows up
    as the performance *gain* the paper measures (§VII-B: "less icache and
    iTLB pressure"). *)

type t

val create : size_bytes:int -> line_bytes:int -> assoc:int -> t
(** [size_bytes] must be divisible by [line_bytes * assoc]. *)

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on a
    hit. *)

val hits : t -> int
val misses : t -> int
val reset : t -> unit
