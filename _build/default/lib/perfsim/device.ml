type t = {
  name : string;
  icache_bytes : int;
  icache_line : int;
  icache_assoc : int;
  icache_miss_penalty : int;
  itlb_entries : int;
  itlb_miss_penalty : int;
  dtlb_entries : int;
  dtlb_miss_penalty : int;
  issue_cost : int;
  branch_cost : int;
  call_cost : int;
  load_cost : int;
  store_cost : int;
  mul_cost : int;
  div_cost : int;
  data_fault_penalty : int;
}

type os = {
  os_name : string;
  page_bytes : int;
  penalty_scale : float;
}

(* Costs are in "ticks" (quarter cycles): a simple scalar proxy for a
   wide out-of-order core.  Ordinary instructions issue at 4 ticks; taken
   branches, calls and returns are predicted and mostly hidden (1 tick) —
   the effect §VII-E3 relies on.  Miss penalties are also in ticks.

   Cache and TLB capacities are scaled down by roughly the ratio between
   the paper's production binaries (~100 MB) and our synthetic apps
   (~300 KB), so the footprint-to-cache pressure — the mechanism behind
   Figure 13's gains — is comparable. *)
let base =
  {
    name = "base";
    icache_bytes = 64 * 1024;
    icache_line = 64;
    icache_assoc = 4;
    icache_miss_penalty = 300;
    itlb_entries = 10;
    itlb_miss_penalty = 220;
    dtlb_entries = 24;
    dtlb_miss_penalty = 160;
    issue_cost = 4;
    branch_cost = 1;
    call_cost = 1;
    load_cost = 12;
    store_cost = 8;
    mul_cost = 12;
    div_cost = 48;
    data_fault_penalty = 100000;
  }

(* Older devices: smaller i-caches and TLBs, higher miss penalties — they
   benefit more from the reduced footprint, matching the bluer rows the
   paper sees on older hardware. *)
let devices =
  [
    { base with name = "iPhone7-class"; icache_bytes = 48 * 1024;
      icache_miss_penalty = 460; itlb_entries = 12; itlb_miss_penalty = 340;
      dtlb_entries = 12 };
    { base with name = "iPhone8-class"; icache_bytes = 48 * 1024;
      icache_miss_penalty = 190; itlb_entries = 32; itlb_miss_penalty = 144 };
    { base with name = "iPhoneX-class"; icache_bytes = 64 * 1024 };
    { base with name = "iPhoneXR-class"; icache_bytes = 96 * 1024;
      icache_miss_penalty = 260; itlb_entries = 14 };
    { base with name = "iPhone11-class"; icache_bytes = 128 * 1024;
      icache_miss_penalty = 220; itlb_entries = 20; itlb_miss_penalty = 170;
      dtlb_entries = 48 };
  ]

let oses =
  [
    { os_name = "12.4"; page_bytes = 16 * 1024; penalty_scale = 1.15 };
    { os_name = "13.3"; page_bytes = 16 * 1024; penalty_scale = 1.05 };
    { os_name = "13.5"; page_bytes = 16 * 1024; penalty_scale = 1.0 };
  ]

let default = { base with name = "iPhoneX-class" }
let default_os = { os_name = "13.5"; page_bytes = 16 * 1024; penalty_scale = 1.0 }

let find name =
  match List.find_opt (fun d -> d.name = name) devices with
  | Some d -> d
  | None -> invalid_arg ("Device.find: unknown device " ^ name)

let find_os name =
  match List.find_opt (fun o -> o.os_name = name) oses with
  | Some o -> o
  | None -> invalid_arg ("Device.find_os: unknown OS " ^ name)
