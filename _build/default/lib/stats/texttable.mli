(** Aligned plain-text tables for the benchmark harness output. *)

val render : header:string list -> string list list -> string
(** Columns are padded to the widest cell; the header is underlined. *)

val render_title : string -> string
(** A boxed section title. *)
