(** Power-law fitting in log-log space, for Figure 5's claim that pattern
    repetition frequency obeys y = a * x^b with 99.4% confidence. *)

type fit = {
  a : float;          (** scale *)
  b : float;          (** exponent (negative for decaying frequency) *)
  r2 : float;         (** of the log-log linear fit *)
}

val fit : (float * float) list -> fit
(** Points must have strictly positive coordinates; others are dropped.
    Raises [Invalid_argument] when fewer than two usable points remain. *)

val predict : fit -> float -> float
