type fit = {
  a : float;
  b : float;
  r2 : float;
}

let fit points =
  let usable = List.filter (fun (x, y) -> x > 0. && y > 0.) points in
  let logs = List.map (fun (x, y) -> (Float.log x, Float.log y)) usable in
  let lin = Regression.linear logs in
  { a = Float.exp lin.Regression.intercept; b = lin.Regression.slope; r2 = lin.Regression.r2 }

let predict f x = f.a *. (x ** f.b)
