let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (width.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  "
      (List.mapi (fun i _ -> String.make width.(i) '-') header)
  in
  String.concat "\n" ((line header :: sep :: List.map line rows) @ [ "" ])

let render_title t =
  let bar = String.make (String.length t + 4) '=' in
  Printf.sprintf "\n%s\n| %s |\n%s\n" bar t bar
