(** Percentiles, for the P50 span ratios of Figure 13. *)

val percentile : float -> float list -> float
(** [percentile 50. samples]; linear interpolation between ranks.  Raises
    [Invalid_argument] on an empty list or a percentile outside [0, 100]. *)

val p50 : float list -> float
val geomean : float list -> float
(** Geometric mean; inputs must be positive. *)
