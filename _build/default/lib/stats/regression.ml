type fit = {
  slope : float;
  intercept : float;
  r2 : float;
}

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Regression.linear: zero x variance";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let mean_y = sy /. nf in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.)) 0. points in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let e = y -. (intercept +. (slope *. x)) in
        a +. (e *. e))
      0. points
  in
  let r2 = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let predict f x = f.intercept +. (f.slope *. x)
