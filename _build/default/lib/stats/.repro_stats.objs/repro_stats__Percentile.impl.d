lib/stats/percentile.ml: Array Float List
