lib/stats/regression.ml: Float List
