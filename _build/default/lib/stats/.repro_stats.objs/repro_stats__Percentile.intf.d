lib/stats/percentile.mli:
