lib/stats/texttable.mli:
