lib/stats/texttable.ml: Array List Printf String
