lib/stats/powerlaw.ml: Float List Regression
