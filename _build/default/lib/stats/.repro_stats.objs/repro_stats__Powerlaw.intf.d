lib/stats/powerlaw.mli:
