lib/stats/regression.mli:
