(** Ordinary least squares for the paper's growth-rate claims (Figure 1:
    baseline slope 2.7 vs optimized slope 1.37, both with R^2 near 1). *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;
}

val linear : (float * float) list -> fit
(** Raises [Invalid_argument] with fewer than two points or zero variance
    in x. *)

val predict : fit -> float -> float
