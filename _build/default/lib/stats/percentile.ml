let percentile p samples =
  if samples = [] then invalid_arg "Percentile.percentile: empty sample list";
  if p < 0. || p > 100. then invalid_arg "Percentile.percentile: out of range";
  let arr = Array.of_list samples in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let p50 samples = percentile 50. samples

let geomean samples =
  if samples = [] then invalid_arg "Percentile.geomean: empty sample list";
  List.iter (fun s -> if s <= 0. then invalid_arg "Percentile.geomean: non-positive") samples;
  let sum_logs = List.fold_left (fun a s -> a +. Float.log s) 0. samples in
  Float.exp (sum_logs /. float_of_int (List.length samples))
