(** Live intervals for MIR values over a linearized (phi-free) function,
    feeding the linear-scan register allocator.

    Positions number every instruction and terminator in block order.
    Because the input has already gone through out-of-SSA, a value may have
    several definitions; its interval spans from the first definition or
    live-in point to the last use or live-out point.  [crosses_call] marks
    intervals that span a position at which the lowered code performs a
    call (explicit calls, retain/release, allocations) — such values must
    live in callee-saved registers or on the stack. *)

type t = {
  v : Ir.value;
  first : int;
  last : int;
  crosses_call : bool;
}

val is_call_position : Ir.instr -> bool

val compute : Ir.func -> t list
(** Sorted by [first] (ties by value id).  Parameters start at position 0;
    the first instruction of the entry block is position 1. *)
