lib/codegen/intervals.mli: Ir
