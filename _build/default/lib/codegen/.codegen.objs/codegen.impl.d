lib/codegen/codegen.ml: Array Block Dataobj Hashtbl Insn Intervals Ir List Machine Mfunc Out_of_ssa Program Random Reg String
