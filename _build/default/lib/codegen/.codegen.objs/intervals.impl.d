lib/codegen/intervals.ml: Hashtbl Int Ir List Set
