lib/codegen/codegen.mli: Ir Machine
