type t = {
  v : Ir.value;
  first : int;
  last : int;
  crosses_call : bool;
}

let is_call_position = function
  | Ir.Call _ | Ir.Call_indirect _ | Ir.Retain _ | Ir.Release _
  | Ir.Alloc_object _ | Ir.Alloc_array _ ->
    true
  | Ir.Assign _ | Ir.Binop _ | Ir.Icmp _ | Ir.Load _ | Ir.Store _ -> false

let values_of_operand = function
  | Ir.V v -> [ v ]
  | Ir.Imm _ | Ir.Global _ | Ir.Fn _ -> []

let term_values = function
  | Ir.Ret o | Ir.Cond_br (o, _, _) -> values_of_operand o
  | Ir.Br _ | Ir.Unreachable -> []

let compute (f : Ir.func) =
  assert (List.for_all (fun (b : Ir.block) -> b.phis = []) f.blocks);
  (* Number positions. *)
  let block_start = Hashtbl.create 16 in
  let block_end = Hashtbl.create 16 in
  let pos = ref 1 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace block_start b.label !pos;
      pos := !pos + List.length b.instrs;
      Hashtbl.replace block_end b.label !pos;
      (* terminator position *)
      incr pos)
    f.blocks;
  (* Block-level liveness (backwards fixpoint over the value sets). *)
  let module S = Set.Make (Int) in
  let use_set = Hashtbl.create 16 and def_set = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      let uses = ref S.empty and defs = ref S.empty in
      let use v = if not (S.mem v !defs) then uses := S.add v !uses in
      List.iter
        (fun i ->
          List.iter
            (fun o -> List.iter use (values_of_operand o))
            (Ir.operands_of_instr i);
          match Ir.def_of_instr i with
          | Some d -> defs := S.add d !defs
          | None -> ())
        b.instrs;
      List.iter use (term_values b.term);
      Hashtbl.replace use_set b.label !uses;
      Hashtbl.replace def_set b.label !defs)
    f.blocks;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace live_in b.label S.empty;
      Hashtbl.replace live_out b.label S.empty)
    f.blocks;
  let changed = ref true in
  let rev_blocks = List.rev f.blocks in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        let out =
          List.fold_left
            (fun acc l -> S.union acc (Hashtbl.find live_in l))
            S.empty
            (Ir.successors b.term)
        in
        let inn =
          S.union (Hashtbl.find use_set b.label)
            (S.diff out (Hashtbl.find def_set b.label))
        in
        if not (S.equal inn (Hashtbl.find live_in b.label)) then begin
          Hashtbl.replace live_in b.label inn;
          changed := true
        end;
        Hashtbl.replace live_out b.label out)
      rev_blocks
  done;
  (* Gather extents and call positions. *)
  let first = Hashtbl.create 64 and last = Hashtbl.create 64 in
  let touch v p =
    (match Hashtbl.find_opt first v with
    | Some q when q <= p -> ()
    | Some _ | None -> Hashtbl.replace first v p);
    match Hashtbl.find_opt last v with
    | Some q when q >= p -> ()
    | Some _ | None -> Hashtbl.replace last v p
  in
  List.iter (fun p -> touch p 0) f.params;
  let call_positions = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      let bstart = Hashtbl.find block_start b.label in
      let bend = Hashtbl.find block_end b.label in
      S.iter (fun v -> touch v bstart) (Hashtbl.find live_in b.label);
      S.iter (fun v -> touch v bend) (Hashtbl.find live_out b.label);
      List.iteri
        (fun i instr ->
          let p = bstart + i in
          if is_call_position instr then call_positions := p :: !call_positions;
          List.iter
            (fun o -> List.iter (fun v -> touch v p) (values_of_operand o))
            (Ir.operands_of_instr instr);
          match Ir.def_of_instr instr with
          | Some d -> touch d p
          | None -> ())
        b.instrs;
      List.iter (fun v -> touch v bend) (term_values b.term))
    f.blocks;
  let calls = List.sort Int.compare !call_positions in
  let crosses a b = List.exists (fun p -> p > a && p < b) calls in
  let out = ref [] in
  Hashtbl.iter
    (fun v p1 ->
      let p2 = Hashtbl.find last v in
      out := { v; first = p1; last = p2; crosses_call = crosses p1 p2 } :: !out)
    first;
  List.sort
    (fun a b ->
      match Int.compare a.first b.first with 0 -> Int.compare a.v b.v | c -> c)
    !out
