(** Lowering from MIR to machine code: out-of-SSA, linear-scan register
    allocation, AAPCS-like call lowering, and prologue/epilogue insertion.

    This stage manufactures — organically, not by templating — the exact
    repetition families the paper's §IV catalogues:

    - argument-register shuffles before every call ([mov x0, x20; bl
      swift_release], Listings 1–3): values live across calls sit in
      callee-saved registers and must move to [x0..x7] at each call site;
    - [stp]/[ldp] runs saving [x19..x26] in prologues/epilogues
      (Listings 7–8);
    - out-of-SSA copy/spill bursts from [try]-style join blocks
      (Listing 11).  *)

val runtime_externs : string list
(** Symbols the generated code may reference; the interpreter implements
    them. *)

val compile_func : ?regalloc_seed:int -> Ir.func -> Machine.Mfunc.t
(** Raises [Invalid_argument] for functions with more than 8 parameters.
    [regalloc_seed] shuffles the register-allocation pools per function —
    an ablation knob for the paper's future-work item (2), the interaction
    between register assignment and outlining: randomized assignment
    destroys the cross-function repetition that deterministic allocation
    produces for free. *)

val compile_modul : ?regalloc_seed:int -> Ir.modul -> Machine.Program.t
(** Compiles every function, converts globals, and records externs (module
    externs plus the runtime set). *)
