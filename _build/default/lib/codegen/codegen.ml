open Machine

let runtime_externs =
  [
    "swift_retain";
    "swift_release";
    "objc_retain";
    "objc_release";
    "swift_allocObject";
    "swift_allocArray";
    "swift_beginAccess";
    "swift_endAccess";
    "swift_bounds_fail";
    "print_i64";
    "memcpy8";
  ]

(* Where a MIR value lives for its whole lifetime. *)
type loc =
  | In_reg of Reg.t
  | Spilled of int  (* slot index; sp-relative *)

let caller_pool = List.map Reg.x [ 9; 10; 11; 12; 13; 14; 15 ]
let callee_pool = List.map Reg.x [ 19; 20; 21; 22; 23; 24; 25; 26 ]
let scratch_a = Reg.x 16
let scratch_b = Reg.x 17

(* --- Register allocation ------------------------------------------------ *)

type alloc = {
  locs : (Ir.value, loc) Hashtbl.t;
  spill_slots : int;
  used_callee_saved : Reg.t list;  (* ascending *)
}

let shuffle seed pool =
  let arr = Array.of_list pool in
  let st = Random.State.make [| seed |] in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let allocate ?regalloc_seed (f : Ir.func) =
  let caller_pool, callee_pool =
    match regalloc_seed with
    | None -> (caller_pool, callee_pool)
    | Some seed ->
      let h = Hashtbl.hash f.Ir.name in
      (shuffle (seed lxor h) caller_pool, shuffle (seed + h) callee_pool)
  in
  let ivs = Intervals.compute f in
  let locs = Hashtbl.create 64 in
  let free_caller = ref caller_pool and free_callee = ref callee_pool in
  let active : (int * Reg.t * bool) list ref = ref [] in
  (* (last, reg, is_callee) sorted by last *)
  let next_slot = ref 0 in
  let used_callee = Hashtbl.create 8 in
  let expire now =
    let expired, live = List.partition (fun (last, _, _) -> last < now) !active in
    active := live;
    List.iter
      (fun (_, r, is_callee) ->
        if is_callee then free_callee := r :: !free_callee
        else free_caller := r :: !free_caller)
      expired
  in
  let take pool =
    match !pool with
    | [] -> None
    | r :: rest ->
      pool := rest;
      Some r
  in
  List.iter
    (fun (iv : Intervals.t) ->
      expire iv.first;
      let choice =
        if iv.crosses_call then take free_callee
        else
          match take free_caller with
          | Some r -> Some r
          | None -> take free_callee
      in
      match choice with
      | Some r ->
        if Reg.is_callee_saved r then Hashtbl.replace used_callee r ();
        active := (iv.last, r, Reg.is_callee_saved r) :: !active;
        Hashtbl.replace locs iv.v (In_reg r)
      | None ->
        let slot = !next_slot in
        incr next_slot;
        Hashtbl.replace locs iv.v (Spilled slot))
    ivs;
  let used_callee_saved =
    Hashtbl.fold (fun r () acc -> r :: acc) used_callee []
    |> List.sort Reg.compare
  in
  { locs; spill_slots = !next_slot; used_callee_saved }

(* --- Emission ------------------------------------------------------------ *)

type emitter = {
  mutable rev_insns : Insn.t list;
  alloc : alloc;
  spill_base : int;  (* byte offset of spill slot 0 from sp *)
}

let emit e i = e.rev_insns <- i :: e.rev_insns

let spill_addr e slot =
  { Insn.base = Reg.SP; off = e.spill_base + (8 * slot); mode = Insn.Offset }

let loc_of e v =
  match Hashtbl.find_opt e.alloc.locs v with
  | Some l -> l
  | None -> In_reg scratch_a (* dead value: writes go to a scratch *)

(* Bring an operand into a register, using [scratch] when materialization or
   a reload is needed. *)
let read_operand e scratch (o : Ir.operand) =
  match o with
  | Ir.V v -> (
    match loc_of e v with
    | In_reg r -> r
    | Spilled slot ->
      emit e (Insn.Ldr (scratch, spill_addr e slot));
      scratch)
  | Ir.Imm n ->
    emit e (Insn.mov_i scratch n);
    scratch
  | Ir.Global g | Ir.Fn g ->
    emit e (Insn.Adr (scratch, g));
    scratch

(* Register that will receive a value's definition, plus the flush needed
   afterwards for spilled values. *)
let def_target e v =
  match loc_of e v with
  | In_reg r -> (r, fun () -> ())
  | Spilled slot ->
    (scratch_a, fun () -> emit e (Insn.Str (scratch_a, spill_addr e slot)))

let mov_if_needed e dst src = if not (Reg.equal dst src) then emit e (Insn.mov_r dst src)

(* Move call arguments into x0..x7.  Allocation never hands out x0..x8, so
   sources are stable while we fill the argument registers — except when a
   source is itself an argument register (only the case for call results
   flushed through x0, which we copy first). *)
let emit_call_args e args =
  if List.length args > Reg.max_args then
    invalid_arg "Codegen: call with more than 8 arguments";
  List.iteri
    (fun i o ->
      let dst = Reg.arg i in
      match o with
      | Ir.Imm n -> emit e (Insn.mov_i dst n)
      | Ir.Global g | Ir.Fn g -> emit e (Insn.Adr (dst, g))
      | Ir.V v -> (
        match loc_of e v with
        | In_reg r -> mov_if_needed e dst r
        | Spilled slot -> emit e (Insn.Ldr (dst, spill_addr e slot))))
    args

let store_call_result e dopt =
  match dopt with
  | None -> ()
  | Some d -> (
    match loc_of e d with
    | In_reg r -> mov_if_needed e r (Reg.x 0)
    | Spilled slot -> emit e (Insn.Str (Reg.x 0, spill_addr e slot)))

let binop_to_machine = function
  | Ir.Add -> Insn.Add
  | Ir.Sub -> Insn.Sub
  | Ir.Mul -> Insn.Mul
  | Ir.Div -> Insn.Sdiv
  | Ir.And -> Insn.And
  | Ir.Or -> Insn.Orr
  | Ir.Xor -> Insn.Eor
  | Ir.Shl -> Insn.Lsl
  | Ir.Lshr -> Insn.Lsr
  | Ir.Ashr -> Insn.Asr

(* Immediates that AArch64 data-processing instructions can encode inline. *)
let fits_imm op n =
  match op with
  | Ir.Add | Ir.Sub -> n >= 0 && n < 4096
  | Ir.Shl | Ir.Lshr | Ir.Ashr -> n >= 0 && n < 64
  | Ir.Mul | Ir.Div | Ir.And | Ir.Or | Ir.Xor -> false

let emit_instr e (i : Ir.instr) =
  match i with
  | Ir.Assign (d, o) -> (
    let dst, flush = def_target e d in
    (match o with
    | Ir.V v -> (
      match loc_of e v with
      | In_reg r -> mov_if_needed e dst r
      | Spilled slot -> emit e (Insn.Ldr (dst, spill_addr e slot)))
    | Ir.Imm n -> emit e (Insn.mov_i dst n)
    | Ir.Global g | Ir.Fn g -> emit e (Insn.Adr (dst, g)));
    flush ())
  | Ir.Binop (d, op, a, b) ->
    let ra = read_operand e scratch_a a in
    let dst, flush = def_target e d in
    (match b with
    | Ir.Imm n when fits_imm op n ->
      emit e (Insn.Binop (binop_to_machine op, dst, ra, Insn.Imm n))
    | _ ->
      let rb = read_operand e scratch_b b in
      emit e (Insn.Binop (binop_to_machine op, dst, ra, Insn.Rop rb)));
    flush ()
  | Ir.Icmp (d, c, a, b) ->
    let ra = read_operand e scratch_a a in
    (match b with
    | Ir.Imm n when n >= 0 && n < 4096 -> emit e (Insn.Cmp (ra, Insn.Imm n))
    | _ ->
      let rb = read_operand e scratch_b b in
      emit e (Insn.Cmp (ra, Insn.Rop rb)));
    let dst, flush = def_target e d in
    emit e (Insn.Cset (dst, c));
    flush ()
  | Ir.Load (d, base, off) ->
    let rb = read_operand e scratch_a base in
    let dst, flush = def_target e d in
    emit e (Insn.Ldr (dst, { Insn.base = rb; off; mode = Insn.Offset }));
    flush ()
  | Ir.Store (v, base, off) ->
    let rv = read_operand e scratch_a v in
    let rb = read_operand e scratch_b base in
    emit e (Insn.Str (rv, { Insn.base = rb; off; mode = Insn.Offset }))
  | Ir.Call (dopt, fn, args) ->
    emit_call_args e args;
    emit e (Insn.Bl fn);
    store_call_result e dopt
  | Ir.Call_indirect (dopt, fn, args) ->
    let rf = read_operand e scratch_b fn in
    emit_call_args e args;
    emit e (Insn.Blr rf);
    store_call_result e dopt
  | Ir.Retain o ->
    (* The paper's Listing 1/2: move to x0 to satisfy the calling
       convention, then call the runtime. *)
    emit_call_args e [ o ];
    emit e (Insn.Bl "swift_retain")
  | Ir.Release o ->
    emit_call_args e [ o ];
    emit e (Insn.Bl "swift_release")
  | Ir.Alloc_object (d, meta, size) ->
    (* Listing 3: several argument registers set up before the call. *)
    emit e (Insn.Adr (Reg.x 0, meta));
    emit e (Insn.mov_i (Reg.x 1) size);
    emit e (Insn.mov_i (Reg.x 2) 7);
    emit e (Insn.Bl "swift_allocObject");
    store_call_result e (Some d)
  | Ir.Alloc_array (d, n) ->
    emit_call_args e [ n ];
    emit e (Insn.Bl "swift_allocArray");
    store_call_result e (Some d)

let pair_up regs =
  (* Group callee-saved registers into stp/ldp pairs; an odd tail pairs a
     register with itself is not encodable, so pad with x27. *)
  let rec go = function
    | a :: b :: rest -> (a, b) :: go rest
    | [ a ] -> [ (a, Reg.x 27) ]
    | [] -> []
  in
  go regs

let compile_func ?regalloc_seed (f : Ir.func) =
  if List.length f.Ir.params > Reg.max_args then
    invalid_arg ("Codegen: too many parameters in " ^ f.Ir.name);
  let f = Out_of_ssa.run_func f in
  let alloc = allocate ?regalloc_seed f in
  let has_calls =
    List.exists
      (fun (b : Ir.block) -> List.exists Intervals.is_call_position b.instrs)
      f.Ir.blocks
    || List.exists (fun (b : Ir.block) -> b.term = Ir.Unreachable) f.Ir.blocks
  in
  let spill_bytes = (alloc.spill_slots * 8 + 15) / 16 * 16 in
  let callee_pairs = pair_up alloc.used_callee_saved in
  let needs_frame = has_calls || callee_pairs <> [] || spill_bytes > 0 in
  let prologue =
    if not needs_frame then []
    else
      (if has_calls || true then
         [ Insn.Stp (Reg.fp, Reg.lr, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre }) ]
       else [])
      @ List.map
          (fun (a, b) ->
            Insn.Stp (a, b, { Insn.base = Reg.SP; off = -16; mode = Insn.Pre }))
          callee_pairs
      @
      if spill_bytes > 0 then
        [ Insn.Binop (Insn.Sub, Reg.SP, Reg.SP, Insn.Imm spill_bytes) ]
      else []
  in
  let epilogue =
    if not needs_frame then []
    else
      (if spill_bytes > 0 then
         [ Insn.Binop (Insn.Add, Reg.SP, Reg.SP, Insn.Imm spill_bytes) ]
       else [])
      @ List.rev_map
          (fun (a, b) ->
            Insn.Ldp (a, b, { Insn.base = Reg.SP; off = 16; mode = Insn.Post }))
          callee_pairs
      @ [ Insn.Ldp (Reg.fp, Reg.lr, { Insn.base = Reg.SP; off = 16; mode = Insn.Post }) ]
  in
  let compile_block ~is_entry (b : Ir.block) =
    let e = { rev_insns = []; alloc; spill_base = 0 } in
    if is_entry then begin
      List.iter (emit e) prologue;
      (* Move incoming arguments from x0..x7 to their allocated homes. *)
      List.iteri
        (fun i p ->
          let src = Reg.arg i in
          match loc_of e p with
          | In_reg r -> mov_if_needed e r src
          | Spilled slot -> emit e (Insn.Str (src, spill_addr e slot)))
        f.Ir.params
    end;
    List.iter (emit_instr e) b.instrs;
    let term =
      match b.term with
      | Ir.Ret o ->
        (match o with
        | Ir.V v -> (
          match loc_of e v with
          | In_reg r -> mov_if_needed e (Reg.x 0) r
          | Spilled slot -> emit e (Insn.Ldr (Reg.x 0, spill_addr e slot)))
        | Ir.Imm n -> emit e (Insn.mov_i (Reg.x 0) n)
        | Ir.Global g | Ir.Fn g -> emit e (Insn.Adr (Reg.x 0, g)));
        List.iter (emit e) epilogue;
        Block.Ret
      | Ir.Br l -> Block.B l
      | Ir.Cond_br (o, a, b') ->
        let r = read_operand e scratch_a o in
        Block.Cbnz (r, a, b')
      | Ir.Unreachable ->
        emit e (Insn.Bl "swift_bounds_fail");
        List.iter (emit e) epilogue;
        Block.Ret
    in
    Block.make ~label:b.label (List.rev e.rev_insns) term
  in
  let blocks =
    List.mapi (fun i b -> compile_block ~is_entry:(i = 0) b) f.Ir.blocks
  in
  Mfunc.make ~from_module:f.Ir.from_module ~name:f.Ir.name blocks

let compile_modul ?regalloc_seed (m : Ir.modul) =
  let funcs = List.map (compile_func ?regalloc_seed) m.Ir.funcs in
  let data =
    List.map
      (fun (g : Ir.global) ->
        let inits =
          List.map
            (function
              | Ir.Gword w -> Dataobj.Word w
              | Ir.Gsym s -> Dataobj.Sym s)
            g.g_init
        in
        Dataobj.make ~from_module:g.g_module ~name:g.g_name inits)
      m.Ir.globals
  in
  let externs = List.sort_uniq String.compare (runtime_externs @ m.Ir.externs) in
  Program.make ~data ~externs funcs
