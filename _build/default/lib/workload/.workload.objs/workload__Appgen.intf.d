lib/workload/appgen.mli: Ir Stdlib
