lib/workload/corespans.ml: List Perfsim Repro_stats
