lib/workload/appgen.ml: Array Buffer Ir Link List Printf Random String Swiftlet
