lib/workload/foreign.mli: Machine
