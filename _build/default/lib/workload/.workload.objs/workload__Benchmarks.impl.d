lib/workload/benchmarks.ml: List String
