lib/workload/foreign.ml: Block Cond Dataobj Insn List Machine Mfunc Printf Program Random Reg
