lib/workload/corespans.mli: Machine Perfsim Stdlib
