lib/workload/benchmarks.mli:
