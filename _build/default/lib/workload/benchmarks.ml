type t = {
  bench_name : string;
  source : string;
  expected_exit : int;
}

(* Shared PRNG snippet (LCG), spliced into benchmarks that need input data. *)
let lcg_helper =
  {|
func lcg_next(seed: Int) -> Int {
  return (seed * 1103515245 + 12345) % 2147483648
}
|}

let bfs =
  {|
// Breadth-first search over a 6x6 grid; distance corner to corner.
func idx(r: Int, c: Int) -> Int { return r * 6 + c }
func main() -> Int {
  let n = 36
  let dist = array(n)
  for i in 0 ..< n { dist[i] = 0 - 1 }
  let queue = array(n)
  var head = 0
  var tail = 0
  dist[0] = 0
  queue[tail] = 0
  tail = tail + 1
  while head < tail {
    let v = queue[head]
    head = head + 1
    let r = v / 6
    let c = v % 6
    // four neighbours
    for d in 0 ..< 4 {
      var nr = r
      var nc = c
      if d == 0 { nr = r - 1 }
      if d == 1 { nr = r + 1 }
      if d == 2 { nc = c - 1 }
      if d == 3 { nc = c + 1 }
      if nr >= 0 && nr < 6 && nc >= 0 && nc < 6 {
        let w = idx(nr, nc)
        if dist[w] < 0 {
          dist[w] = dist[v] + 1
          queue[tail] = w
          tail = tail + 1
        }
      }
    }
  }
  return dist[35]
}
|}

let boyer_moore_horspool =
  {|
// Boyer-Moore-Horspool substring counting over integer alphabets.
func main() -> Int {
  let n = 50
  let text = array(n)
  for i in 0 ..< n { text[i] = i % 5 }
  let m = 3
  let pat = array(m)
  pat[0] = 1 pat[1] = 2 pat[2] = 3
  // bad-character shift table over alphabet 0..9
  let shift = array(10)
  for a in 0 ..< 10 { shift[a] = m }
  for j in 0 ..< m - 1 { shift[pat[j]] = m - 1 - j }
  var count = 0
  var i = 0
  while i <= n - m {
    var j = m - 1
    while j >= 0 && text[i + j] == pat[j] { j = j - 1 }
    if j < 0 {
      count = count + 1
      i = i + 1
    } else {
      i = i + shift[text[i + m - 1]]
    }
  }
  return count
}
|}

let bucket_sort =
  lcg_helper
  ^ {|
func main() -> Int {
  let n = 100
  let a = array(n)
  var seed = 42
  var total = 0
  for i in 0 ..< n {
    seed = lcg_next(seed)
    a[i] = seed % 1000
    total = total + a[i]
  }
  // ten buckets of 0..99, 100..199, ...
  let counts = array(10)
  let buckets = array(10 * n)
  for i in 0 ..< n {
    let b = a[i] / 100
    buckets[b * n + counts[b]] = a[i]
    counts[b] = counts[b] + 1
  }
  // insertion sort within each bucket, then concatenate
  var out = 0
  for b in 0 ..< 10 {
    for i in 1 ..< counts[b] {
      let v = buckets[b * n + i]
      var j = i - 1
      var moving = true
      while j >= 0 && moving {
        if buckets[b * n + j] > v {
          buckets[b * n + j + 1] = buckets[b * n + j]
          j = j - 1
        } else { moving = false }
      }
      buckets[b * n + j + 1] = v
    }
    for i in 0 ..< counts[b] {
      a[out] = buckets[b * n + i]
      out = out + 1
    }
  }
  // verify: ascending and sum preserved
  var check = 0
  for i in 0 ..< n { check = check + a[i] }
  if check != total { return 0 }
  for i in 1 ..< n {
    if a[i - 1] > a[i] { return 0 }
  }
  return 1
}
|}

let closest_pair =
  {|
// Quadratic closest pair (squared distance); a planted pair at distance 1.
func main() -> Int {
  let n = 22
  let xs = array(n)
  let ys = array(n)
  for i in 0 ..< 20 {
    xs[i] = i * 100
    ys[i] = (i % 3) * 7
  }
  xs[20] = 1000 ys[20] = 500
  xs[21] = 1001 ys[21] = 500
  var best = 1000000000
  for i in 0 ..< n {
    for j in i + 1 ..< n {
      let dx = xs[i] - xs[j]
      let dy = ys[i] - ys[j]
      let d = dx * dx + dy * dy
      if d < best { best = d }
    }
  }
  return best
}
|}

let combinatorics =
  {|
// Pascal's triangle; C(20, 10).
func main() -> Int {
  let n = 21
  let c = array(n * n)
  for i in 0 ..< n {
    c[i * n + 0] = 1
    for j in 1 ..< i + 1 {
      if j == i {
        c[i * n + j] = 1
      } else {
        c[i * n + j] = c[(i - 1) * n + j - 1] + c[(i - 1) * n + j]
      }
    }
  }
  return c[20 * n + 10]
}
|}

let counting_sort =
  lcg_helper
  ^ {|
func main() -> Int {
  let n = 200
  let a = array(n)
  var seed = 7
  for i in 0 ..< n {
    seed = lcg_next(seed)
    a[i] = seed % 10
  }
  let counts = array(10)
  for i in 0 ..< n { counts[a[i]] = counts[a[i]] + 1 }
  let sorted = array(n)
  var out = 0
  for v in 0 ..< 10 {
    for k in 0 ..< counts[v] {
      sorted[out] = v
      out = out + 1
    }
  }
  // verify
  if out != n { return 0 }
  for i in 1 ..< n {
    if sorted[i - 1] > sorted[i] { return 0 }
  }
  let counts2 = array(10)
  for i in 0 ..< n { counts2[sorted[i]] = counts2[sorted[i]] + 1 }
  for v in 0 ..< 10 {
    if counts[v] != counts2[v] { return 0 }
  }
  return 1
}
|}

let count_occurrences =
  {|
// Occurrences of a key in a sorted array via binary searches.
func lower_bound(a: [Int], key: Int) -> Int {
  var lo = 0
  var hi = len(a)
  while lo < hi {
    let mid = (lo + hi) / 2
    if a[mid] < key { lo = mid + 1 } else { hi = mid }
  }
  return lo
}
func upper_bound(a: [Int], key: Int) -> Int {
  var lo = 0
  var hi = len(a)
  while lo < hi {
    let mid = (lo + hi) / 2
    if a[mid] <= key { lo = mid + 1 } else { hi = mid }
  }
  return lo
}
func main() -> Int {
  let n = 100
  let a = array(n)
  for i in 0 ..< n { a[i] = i / 10 }
  return upper_bound(a, 5) - lower_bound(a, 5)
}
|}

let dfs =
  {|
// Iterative depth-first search; size of the component containing node 0.
func main() -> Int {
  // 12 nodes, adjacency matrix; component {0..6} is a path + extra edges,
  // component {7..11} is a cycle.
  let n = 12
  let adj = array(n * n)
  for i in 0 ..< 6 {
    adj[i * n + i + 1] = 1
    adj[(i + 1) * n + i] = 1
  }
  adj[0 * n + 3] = 1 adj[3 * n + 0] = 1
  for i in 7 ..< 11 {
    adj[i * n + i + 1] = 1
    adj[(i + 1) * n + i] = 1
  }
  adj[11 * n + 7] = 1 adj[7 * n + 11] = 1
  let seen = array(n)
  let stack = array(n * n)
  var sp = 0
  stack[sp] = 0
  sp = sp + 1
  seen[0] = 1
  var count = 0
  while sp > 0 {
    sp = sp - 1
    let v = stack[sp]
    count = count + 1
    for w in 0 ..< n {
      if adj[v * n + w] == 1 && seen[w] == 0 {
        seen[w] = 1
        stack[sp] = w
        sp = sp + 1
      }
    }
  }
  return count
}
|}

let dijkstra =
  {|
// Dijkstra on the classic 6-node example; shortest distance 0 -> 5 is 11.
func main() -> Int {
  let n = 6
  let inf = 1000000000
  let w = array(n * n)
  for i in 0 ..< n * n { w[i] = inf }
  // undirected edges
  w[0 * n + 1] = 7  w[1 * n + 0] = 7
  w[0 * n + 2] = 9  w[2 * n + 0] = 9
  w[0 * n + 5] = 14 w[5 * n + 0] = 14
  w[1 * n + 2] = 10 w[2 * n + 1] = 10
  w[1 * n + 3] = 15 w[3 * n + 1] = 15
  w[2 * n + 3] = 11 w[3 * n + 2] = 11
  w[2 * n + 5] = 2  w[5 * n + 2] = 2
  w[3 * n + 4] = 6  w[4 * n + 3] = 6
  w[4 * n + 5] = 9  w[5 * n + 4] = 9
  let dist = array(n)
  let done_ = array(n)
  for i in 0 ..< n { dist[i] = inf }
  dist[0] = 0
  for round in 0 ..< n {
    // pick the unfinished node with the smallest distance
    var best = 0 - 1
    var bestd = inf + 1
    for v in 0 ..< n {
      if done_[v] == 0 && dist[v] < bestd {
        best = v
        bestd = dist[v]
      }
    }
    if best >= 0 {
      done_[best] = 1
      for v in 0 ..< n {
        if w[best * n + v] < inf {
          let nd = dist[best] + w[best * n + v]
          if nd < dist[v] { dist[v] = nd }
        }
      }
    }
  }
  return dist[5]
}
|}

let encode_decode_tree =
  {|
// Binary search tree, preorder-encoded with null markers and rebuilt.
// Array-based nodes: key / left / right, index 0 unused (null).
func bst_insert(key_: [Int], left: [Int], right: [Int], nnodes: [Int], k: Int) -> Int {
  let fresh = nnodes[0] + 1
  nnodes[0] = fresh
  key_[fresh] = k
  if fresh == 1 { return 0 }
  var cur = 1
  var placed = false
  while !placed {
    if k < key_[cur] {
      if left[cur] == 0 { left[cur] = fresh placed = true } else { cur = left[cur] }
    } else {
      if right[cur] == 0 { right[cur] = fresh placed = true } else { cur = right[cur] }
    }
  }
  return 0
}
func encode(key_: [Int], left: [Int], right: [Int], node: Int, out: [Int], pos: [Int]) -> Int {
  if node == 0 {
    out[pos[0]] = 0 - 1
    pos[0] = pos[0] + 1
    return 0
  }
  out[pos[0]] = key_[node]
  pos[0] = pos[0] + 1
  let a = encode(key_, left, right, left[node], out, pos)
  let b = encode(key_, left, right, right[node], out, pos)
  return a + b
}
// Decode a preorder stream back into arrays, then re-encode.
func decode(stream: [Int], pos: [Int], key_: [Int], left: [Int], right: [Int], nnodes: [Int]) -> Int {
  let v = stream[pos[0]]
  pos[0] = pos[0] + 1
  if v == 0 - 1 { return 0 }
  let me = nnodes[0] + 1
  nnodes[0] = me
  key_[me] = v
  left[me] = decode(stream, pos, key_, left, right, nnodes)
  right[me] = decode(stream, pos, key_, left, right, nnodes)
  return me
}
func main() -> Int {
  let cap = 64
  let key_ = array(cap)
  let left = array(cap)
  let right = array(cap)
  let nnodes = array(1)
  let keys = array(9)
  keys[0] = 50 keys[1] = 30 keys[2] = 70 keys[3] = 20
  keys[4] = 40 keys[5] = 60 keys[6] = 80 keys[7] = 35 keys[8] = 65
  for i in 0 ..< 9 {
    let ignored = bst_insert(key_, left, right, nnodes, keys[i])
  }
  let enc = array(2 * cap)
  let pos = array(1)
  let ignored2 = encode(key_, left, right, 1, enc, pos)
  let encoded_len = pos[0]
  // decode into a second tree
  let k2 = array(cap)
  let l2 = array(cap)
  let r2 = array(cap)
  let nn2 = array(1)
  let dpos = array(1)
  let root2 = decode(enc, dpos, k2, l2, r2, nn2)
  // re-encode and compare
  let enc2 = array(2 * cap)
  let pos2 = array(1)
  let ignored3 = encode(k2, l2, r2, root2, enc2, pos2)
  if pos2[0] != encoded_len { return 0 }
  for i in 0 ..< encoded_len {
    if enc[i] != enc2[i] { return 0 }
  }
  return 1
}
|}

let gcd =
  {|
// Sum of gcd(i, 36) for i in 1..36 (equals 168).
func gcd(a: Int, b: Int) -> Int {
  var x = a
  var y = b
  while y != 0 {
    let t = x % y
    x = y
    y = t
  }
  return x
}
func main() -> Int {
  var total = 0
  for i in 1 ..< 37 {
    total = total + gcd(i, 36)
  }
  return total
}
|}

let hash_table =
  {|
// Open-addressing hash table with linear probing.
func ht_insert(keys: [Int], used: [Int], k: Int) -> Int {
  let cap = len(keys)
  var slot = (k * 2654435761) % cap
  if slot < 0 { slot = slot + cap }
  while used[slot] == 1 && keys[slot] != k {
    slot = (slot + 1) % cap
  }
  used[slot] = 1
  keys[slot] = k
  return slot
}
func ht_contains(keys: [Int], used: [Int], k: Int) -> Bool {
  let cap = len(keys)
  var slot = (k * 2654435761) % cap
  if slot < 0 { slot = slot + cap }
  var probes = 0
  while used[slot] == 1 && probes < cap {
    if keys[slot] == k { return true }
    slot = (slot + 1) % cap
    probes = probes + 1
  }
  return false
}
func main() -> Int {
  let cap = 257
  let keys = array(cap)
  let used = array(cap)
  for i in 0 ..< 50 {
    let ignored = ht_insert(keys, used, i * 3)
  }
  var found = 0
  for i in 0 ..< 100 {
    if ht_contains(keys, used, i) { found = found + 1 }
  }
  return found
}
|}

let huffman =
  {|
// Huffman coding cost by repeated min-merge (classic 5,9,12,13,16,45 -> 224).
func main() -> Int {
  let cap = 16
  let weight = array(cap)
  let alive = array(cap)
  weight[0] = 5  weight[1] = 9  weight[2] = 12
  weight[3] = 13 weight[4] = 16 weight[5] = 45
  var count = 6
  for i in 0 ..< count { alive[i] = 1 }
  var total = 0
  var remaining = count
  while remaining > 1 {
    // find two smallest
    var m1 = 0 - 1
    var m2 = 0 - 1
    for i in 0 ..< count {
      if alive[i] == 1 {
        if m1 < 0 || weight[i] < weight[m1] {
          m2 = m1
          m1 = i
        } else {
          if m2 < 0 || weight[i] < weight[m2] { m2 = i }
        }
      }
    }
    let merged = weight[m1] + weight[m2]
    total = total + merged
    alive[m1] = 0
    alive[m2] = 0
    weight[count] = merged
    alive[count] = 1
    count = count + 1
    remaining = remaining - 1
  }
  return total
}
|}

let json =
  {|
// JSON-style decoding: a class with a throwing initializer reads 5 fields
// per record; bad fields abort the record (the paper's Listing 10 idiom).
func fetch(tokens: [Int], i: Int) throws -> Int {
  let v = tokens[i]
  if v < 0 { throw }
  return v
}
class Msg {
  var f0: Int
  var f1: Int
  var f2: Int
  var f3: Int
  var f4: Int
  init(tokens: [Int], base: Int) throws {
    self.f0 = try fetch(tokens, base)
    self.f1 = try fetch(tokens, base + 1)
    self.f2 = try fetch(tokens, base + 2)
    self.f3 = try fetch(tokens, base + 3)
    self.f4 = try fetch(tokens, base + 4)
  }
  func total() -> Int {
    return self.f0 + self.f1 + self.f2 + self.f3 + self.f4
  }
}
func main() -> Int {
  let tokens = array(50)
  for r in 0 ..< 10 {
    for j in 0 ..< 5 {
      tokens[r * 5 + j] = r + j
    }
  }
  tokens[3 * 5 + 2] = 0 - 1
  tokens[7 * 5 + 2] = 0 - 1
  var sum = 0
  var failures = 0
  for r in 0 ..< 10 {
    let m = try? Msg(tokens, r * 5)
    if m == 0 {
      failures = failures + 1
    } else {
      sum = sum + (m).total()
    }
  }
  return sum + 1000 * failures
}
|}

let kmp =
  {|
// Knuth-Morris-Pratt with failure function; overlapping matches counted.
func main() -> Int {
  let n = 16
  let text = array(n)
  for i in 0 ..< n { text[i] = i % 2 }
  let m = 4
  let pat = array(m)
  pat[0] = 0 pat[1] = 1 pat[2] = 0 pat[3] = 1
  let fail = array(m)
  var k = 0
  for q in 1 ..< m {
    var kk = k
    var settled = false
    while kk > 0 && !settled {
      if pat[kk] != pat[q] { kk = fail[kk - 1] } else { settled = true }
    }
    if pat[kk] == pat[q] { kk = kk + 1 }
    fail[q] = kk
    k = kk
  }
  var count = 0
  var q = 0
  for i in 0 ..< n {
    var settled = false
    while q > 0 && !settled {
      if pat[q] != text[i] { q = fail[q - 1] } else { settled = true }
    }
    if pat[q] == text[i] { q = q + 1 }
    if q == m {
      count = count + 1
      q = fail[q - 1]
    }
  }
  return count
}
|}

let lcs =
  {|
// Longest common subsequence length by dynamic programming.
func main() -> Int {
  let n = 10
  let a = array(n)
  let b = array(n)
  for i in 0 ..< n { a[i] = i + 1 }
  b[0] = 2 b[1] = 4 b[2] = 6 b[3] = 8 b[4] = 10
  b[5] = 1 b[6] = 3 b[7] = 5 b[8] = 7 b[9] = 9
  let dp = array((n + 1) * (n + 1))
  for i in 1 ..< n + 1 {
    for j in 1 ..< n + 1 {
      if a[i - 1] == b[j - 1] {
        dp[i * (n + 1) + j] = dp[(i - 1) * (n + 1) + j - 1] + 1
      } else {
        let up = dp[(i - 1) * (n + 1) + j]
        let lf = dp[i * (n + 1) + j - 1]
        if up > lf { dp[i * (n + 1) + j] = up } else { dp[i * (n + 1) + j] = lf }
      }
    }
  }
  return dp[n * (n + 1) + n]
}
|}

let lru_cache =
  {|
// LRU cache over arrays: keys with recency timestamps, capacity 3.
class Lru {
  var keys: [Int]
  var stamp: [Int]
  var clock: Int
  var size: Int
  init(capacity: Int) {
    self.keys = array(capacity)
    self.stamp = array(capacity)
    self.clock = 0
    self.size = 0
  }
  func find(k: Int) -> Int {
    for i in 0 ..< self.size {
      if self.keys[i] == k { return i }
    }
    return 0 - 1
  }
  func get(k: Int) -> Bool {
    let i = self.find(k)
    if i < 0 { return false }
    self.clock = self.clock + 1
    self.stamp[i] = self.clock
    return true
  }
  func put(k: Int) {
    let i = self.find(k)
    self.clock = self.clock + 1
    if i >= 0 {
      self.stamp[i] = self.clock
      return
    }
    if self.size < len(self.keys) {
      self.keys[self.size] = k
      self.stamp[self.size] = self.clock
      self.size = self.size + 1
      return
    }
    // evict least recently used
    var victim = 0
    for j in 1 ..< self.size {
      if self.stamp[j] < self.stamp[victim] { victim = j }
    }
    self.keys[victim] = k
    self.stamp[victim] = self.clock
  }
}
func main() -> Int {
  let c = Lru(3)
  var hits = 0
  c.put(1)
  c.put(2)
  c.put(3)
  if c.get(1) { hits = hits + 1 }   // hit
  c.put(4)                          // evicts 2
  if c.get(2) { hits = hits + 1 }   // miss
  if c.get(3) { hits = hits + 1 }   // hit
  if c.get(4) { hits = hits + 1 }   // hit
  if c.get(1) { hits = hits + 1 }   // hit
  return hits
}
|}

let octree =
  {|
// Octree over a 64-cube; range query counts planted points and is checked
// against a brute-force scan.
func main() -> Int {
  // Points on a 4x4x4 lattice spaced 10 apart.
  let npts = 64
  let px = array(npts)
  let py = array(npts)
  let pz = array(npts)
  for i in 0 ..< npts {
    px[i] = (i % 4) * 10
    py[i] = ((i / 4) % 4) * 10
    pz[i] = ((i / 16) % 4) * 10
  }
  // Simple octree: recursively subdivide by mid-planes until single point.
  // Implemented iteratively per point with array node storage.
  let cap = 4096
  let child = array(cap * 8)   // child[node*8 + oct]
  let leafpt = array(cap)      // point index + 1, 0 = internal/empty
  let nn = array(1)
  nn[0] = 1                    // node 1 = root (0 = null)
  for p in 0 ..< npts {
    var node = 1
    var x0 = 0
    var y0 = 0
    var z0 = 0
    var half = 32
    var placed = false
    while !placed {
      if leafpt[node] == 0 && child[node * 8] == 0 && child[node * 8 + 1] == 0
         && child[node * 8 + 2] == 0 && child[node * 8 + 3] == 0
         && child[node * 8 + 4] == 0 && child[node * 8 + 5] == 0
         && child[node * 8 + 6] == 0 && child[node * 8 + 7] == 0 {
        leafpt[node] = p + 1
        placed = true
      } else {
        // If this node is a leaf, push its point down first.
        if leafpt[node] != 0 {
          let q = leafpt[node] - 1
          leafpt[node] = 0
          var oq = 0
          if px[q] >= x0 + half { oq = oq + 1 }
          if py[q] >= y0 + half { oq = oq + 2 }
          if pz[q] >= z0 + half { oq = oq + 4 }
          nn[0] = nn[0] + 1
          child[node * 8 + oq] = nn[0]
          leafpt[nn[0]] = q + 1
        }
        var o = 0
        var nx = x0
        var ny = y0
        var nz = z0
        if px[p] >= x0 + half { o = o + 1 nx = x0 + half }
        if py[p] >= y0 + half { o = o + 2 ny = y0 + half }
        if pz[p] >= z0 + half { o = o + 4 nz = z0 + half }
        if child[node * 8 + o] == 0 {
          nn[0] = nn[0] + 1
          child[node * 8 + o] = nn[0]
        }
        node = child[node * 8 + o]
        x0 = nx
        y0 = ny
        z0 = nz
        half = half / 2
      }
    }
  }
  // Range query: count points with all coordinates <= 15 (lattice 0,10).
  var count = 0
  for p in 0 ..< npts {
    if px[p] <= 15 && py[p] <= 15 && pz[p] <= 15 { count = count + 1 }
  }
  // Verify against a tree walk: count leaves within the box via stack.
  let stack = array(cap)
  let sx = array(cap)
  let sy = array(cap)
  let sz = array(cap)
  let sh = array(cap)
  var sp = 0
  stack[sp] = 1 sx[sp] = 0 sy[sp] = 0 sz[sp] = 0 sh[sp] = 32
  sp = sp + 1
  var walked = 0
  while sp > 0 {
    sp = sp - 1
    let node = stack[sp]
    let x0 = sx[sp]
    let y0 = sy[sp]
    let z0 = sz[sp]
    let half = sh[sp]
    if x0 <= 15 && y0 <= 15 && z0 <= 15 {
      if leafpt[node] != 0 {
        let q = leafpt[node] - 1
        if px[q] <= 15 && py[q] <= 15 && pz[q] <= 15 { walked = walked + 1 }
      }
      for o in 0 ..< 8 {
        if child[node * 8 + o] != 0 {
          var nx = x0
          var ny = y0
          var nz = z0
          if o % 2 == 1 { nx = x0 + half }
          if (o / 2) % 2 == 1 { ny = y0 + half }
          if (o / 4) % 2 == 1 { nz = z0 + half }
          stack[sp] = child[node * 8 + o]
          sx[sp] = nx sy[sp] = ny sz[sp] = nz sh[sp] = half / 2
          sp = sp + 1
        }
      }
    }
  }
  if walked != count { return 0 - walked }
  return count
}
|}

let quick_sort =
  lcg_helper
  ^ {|
func quicksort(a: [Int], lo: Int, hi: Int) -> Int {
  if lo >= hi { return 0 }
  let pivot = a[(lo + hi) / 2]
  var i = lo
  var j = hi
  while i <= j {
    while a[i] < pivot { i = i + 1 }
    while a[j] > pivot { j = j - 1 }
    if i <= j {
      let t = a[i]
      a[i] = a[j]
      a[j] = t
      i = i + 1
      j = j - 1
    }
  }
  let x = quicksort(a, lo, j)
  let y = quicksort(a, i, hi)
  return x + y
}
func main() -> Int {
  let n = 300
  let a = array(n)
  var seed = 99
  var total = 0
  for i in 0 ..< n {
    seed = lcg_next(seed)
    a[i] = seed % 10000
    total = total + a[i]
  }
  let ignored = quicksort(a, 0, n - 1)
  var check = 0
  for i in 0 ..< n { check = check + a[i] }
  if check != total { return 0 }
  for i in 1 ..< n {
    if a[i - 1] > a[i] { return 0 }
  }
  return 1
}
|}

let red_black_tree =
  {|
// Red-black tree insertion with rotations and recoloring; array-based
// nodes (0 = nil, colour 0 = black, 1 = red).
func rotate_left(key_: [Int], left: [Int], right: [Int], parent: [Int], rootbox: [Int], x: Int) {
  let y = right[x]
  right[x] = left[y]
  if left[y] != 0 { parent[left[y]] = x }
  parent[y] = parent[x]
  if parent[x] == 0 {
    rootbox[0] = y
  } else {
    if x == left[parent[x]] { left[parent[x]] = y } else { right[parent[x]] = y }
  }
  left[y] = x
  parent[x] = y
}
func rotate_right(key_: [Int], left: [Int], right: [Int], parent: [Int], rootbox: [Int], x: Int) {
  let y = left[x]
  left[x] = right[y]
  if right[y] != 0 { parent[right[y]] = x }
  parent[y] = parent[x]
  if parent[x] == 0 {
    rootbox[0] = y
  } else {
    if x == right[parent[x]] { right[parent[x]] = y } else { left[parent[x]] = y }
  }
  right[y] = x
  parent[x] = y
}
func rb_insert(key_: [Int], left: [Int], right: [Int], parent: [Int], colour: [Int],
               rootbox: [Int], nn: [Int], k: Int) {
  nn[0] = nn[0] + 1
  let z = nn[0]
  key_[z] = k
  colour[z] = 1
  var y = 0
  var x = rootbox[0]
  while x != 0 {
    y = x
    if k < key_[x] { x = left[x] } else { x = right[x] }
  }
  parent[z] = y
  if y == 0 {
    rootbox[0] = z
  } else {
    if k < key_[y] { left[y] = z } else { right[y] = z }
  }
  // fix-up
  var cur = z
  while cur != rootbox[0] && colour[parent[cur]] == 1 {
    let p = parent[cur]
    let g = parent[p]
    if p == left[g] {
      let u = right[g]
      if colour[u] == 1 && u != 0 {
        colour[p] = 0
        colour[u] = 0
        colour[g] = 1
        cur = g
      } else {
        if cur == right[p] {
          cur = p
          rotate_left(key_, left, right, parent, rootbox, cur)
        }
        colour[parent[cur]] = 0
        colour[parent[parent[cur]]] = 1
        rotate_right(key_, left, right, parent, rootbox, parent[parent[cur]])
      }
    } else {
      let u = left[g]
      if colour[u] == 1 && u != 0 {
        colour[p] = 0
        colour[u] = 0
        colour[g] = 1
        cur = g
      } else {
        if cur == left[p] {
          cur = p
          rotate_right(key_, left, right, parent, rootbox, cur)
        }
        colour[parent[cur]] = 0
        colour[parent[parent[cur]]] = 1
        rotate_left(key_, left, right, parent, rootbox, parent[parent[cur]])
      }
    }
  }
  colour[rootbox[0]] = 0
}
// Validate: inorder sorted, no red-red edge, equal black heights.
func black_height(left: [Int], right: [Int], colour: [Int], node: Int) -> Int {
  if node == 0 { return 1 }
  let lh = black_height(left, right, colour, left[node])
  let rh = black_height(left, right, colour, right[node])
  if lh == 0 || rh == 0 { return 0 }
  if lh != rh { return 0 }
  if colour[node] == 0 { return lh + 1 }
  return lh
}
func red_red(left: [Int], right: [Int], colour: [Int], node: Int) -> Int {
  if node == 0 { return 0 }
  var bad = 0
  if colour[node] == 1 {
    if left[node] != 0 && colour[left[node]] == 1 { bad = 1 }
    if right[node] != 0 && colour[right[node]] == 1 { bad = 1 }
  }
  return bad + red_red(left, right, colour, left[node])
             + red_red(left, right, colour, right[node])
}
func inorder_ok(key_: [Int], left: [Int], right: [Int], node: Int, state: [Int]) -> Int {
  if node == 0 { return 1 }
  if inorder_ok(key_, left, right, left[node], state) == 0 { return 0 }
  if state[0] >= key_[node] { return 0 }
  state[0] = key_[node]
  state[1] = state[1] + 1
  return inorder_ok(key_, left, right, right[node], state)
}
func main() -> Int {
  let cap = 128
  let key_ = array(cap)
  let left = array(cap)
  let right = array(cap)
  let parent = array(cap)
  let colour = array(cap)
  let rootbox = array(1)
  let nn = array(1)
  // insert a mixed sequence of 50 keys
  for i in 0 ..< 50 {
    rb_insert(key_, left, right, parent, colour, rootbox, nn, (i * 37) % 101)
  }
  if red_red(left, right, colour, rootbox[0]) != 0 { return 0 }
  if black_height(left, right, colour, rootbox[0]) == 0 { return 0 }
  let state = array(2)
  state[0] = 0 - 1
  if inorder_ok(key_, left, right, rootbox[0], state) == 0 { return 0 }
  if state[1] != 50 { return 0 }
  return 1
}
|}

let run_length_encoding =
  {|
// Run-length encode then decode; round trip must match.
func main() -> Int {
  let n = 120
  let a = array(n)
  for i in 0 ..< n { a[i] = (i / 7) % 4 }
  let runs_v = array(n)
  let runs_c = array(n)
  var nr = 0
  var i = 0
  while i < n {
    let v = a[i]
    var j = i
    while j < n && a[j] == v { j = j + 1 }
    runs_v[nr] = v
    runs_c[nr] = j - i
    nr = nr + 1
    i = j
  }
  // decode
  let b = array(n)
  var out = 0
  for r in 0 ..< nr {
    for k in 0 ..< runs_c[r] {
      b[out] = runs_v[r]
      out = out + 1
    }
  }
  if out != n { return 0 }
  for k in 0 ..< n {
    if a[k] != b[k] { return 0 }
  }
  return nr
}
|}

let simulated_annealing =
  lcg_helper
  ^ {|
// Deterministic "annealing" minimizing (x - 37)^2 over 0..100.
func cost(x: Int) -> Int {
  return (x - 37) * (x - 37)
}
func main() -> Int {
  var x = 90
  var best = x
  var seed = 12345
  var temp = 6400
  while temp > 0 {
    seed = lcg_next(seed)
    var cand = x + seed % 21 - 10
    if cand < 0 { cand = 0 }
    if cand > 100 { cand = 100 }
    let dc = cost(cand) - cost(x)
    // accept improvements always; accept worsening moves while hot
    seed = lcg_next(seed)
    let dice = seed % 10000
    if dc < 0 || dice < temp {
      x = cand
    }
    if cost(x) < cost(best) { best = x }
    temp = temp - 13
  }
  return best
}
|}

let splay_tree =
  {|
// Splay tree: bottom-up splay via rotations; accessing a key brings it to
// the root.
func rot(key_: [Int], left: [Int], right: [Int], parent: [Int], rootbox: [Int], x: Int) {
  let p = parent[x]
  let g = parent[p]
  if x == left[p] {
    left[p] = right[x]
    if right[x] != 0 { parent[right[x]] = p }
    right[x] = p
  } else {
    right[p] = left[x]
    if left[x] != 0 { parent[left[x]] = p }
    left[x] = p
  }
  parent[p] = x
  parent[x] = g
  if g == 0 {
    rootbox[0] = x
  } else {
    if left[g] == p { left[g] = x } else { right[g] = x }
  }
}
func splay(key_: [Int], left: [Int], right: [Int], parent: [Int], rootbox: [Int], x: Int) {
  while parent[x] != 0 {
    let p = parent[x]
    let g = parent[p]
    if g != 0 {
      // zig-zig or zig-zag
      let zigzig = (x == left[p]) == (p == left[g])
      if zigzig {
        rot(key_, left, right, parent, rootbox, p)
        rot(key_, left, right, parent, rootbox, x)
      } else {
        rot(key_, left, right, parent, rootbox, x)
        rot(key_, left, right, parent, rootbox, x)
      }
    } else {
      rot(key_, left, right, parent, rootbox, x)
    }
  }
}
func insert(key_: [Int], left: [Int], right: [Int], parent: [Int], rootbox: [Int], nn: [Int], k: Int) {
  nn[0] = nn[0] + 1
  let z = nn[0]
  key_[z] = k
  if rootbox[0] == 0 {
    rootbox[0] = z
    return
  }
  var cur = rootbox[0]
  var placed = false
  while !placed {
    if k < key_[cur] {
      if left[cur] == 0 { left[cur] = z parent[z] = cur placed = true } else { cur = left[cur] }
    } else {
      if right[cur] == 0 { right[cur] = z parent[z] = cur placed = true } else { cur = right[cur] }
    }
  }
  splay(key_, left, right, parent, rootbox, z)
}
func find(key_: [Int], left: [Int], right: [Int], parent: [Int], rootbox: [Int], k: Int) -> Int {
  var cur = rootbox[0]
  while cur != 0 {
    if k == key_[cur] {
      splay(key_, left, right, parent, rootbox, cur)
      return cur
    }
    if k < key_[cur] { cur = left[cur] } else { cur = right[cur] }
  }
  return 0
}
func main() -> Int {
  let cap = 64
  let key_ = array(cap)
  let left = array(cap)
  let right = array(cap)
  let parent = array(cap)
  let rootbox = array(1)
  let nn = array(1)
  for i in 1 ..< 21 {
    insert(key_, left, right, parent, rootbox, nn, i)
  }
  let found = find(key_, left, right, parent, rootbox, 5)
  if found == 0 { return 0 }
  // after access, 5 must be the root
  return key_[rootbox[0]]
}
|}

let strassen =
  {|
// Strassen multiplication on 8x8 matrices, validated against the naive
// product.  Matrices are row-major in flat arrays.
func madd(a: [Int], b: [Int], out: [Int], n: Int) {
  for i in 0 ..< n * n { out[i] = a[i] + b[i] }
}
func msub(a: [Int], b: [Int], out: [Int], n: Int) {
  for i in 0 ..< n * n { out[i] = a[i] - b[i] }
}
func naive(a: [Int], b: [Int], out: [Int], n: Int) {
  for i in 0 ..< n {
    for j in 0 ..< n {
      var acc = 0
      for k in 0 ..< n { acc = acc + a[i * n + k] * b[k * n + j] }
      out[i * n + j] = acc
    }
  }
}
func quadrant(src: [Int], dst: [Int], n: Int, qi: Int, qj: Int) {
  let h = n / 2
  for i in 0 ..< h {
    for j in 0 ..< h {
      dst[i * h + j] = src[(qi * h + i) * n + qj * h + j]
    }
  }
}
func place(src: [Int], dst: [Int], n: Int, qi: Int, qj: Int) {
  let h = n / 2
  for i in 0 ..< h {
    for j in 0 ..< h {
      dst[(qi * h + i) * n + qj * h + j] = src[i * h + j]
    }
  }
}
func strassen(a: [Int], b: [Int], out: [Int], n: Int) {
  if n <= 2 {
    naive(a, b, out, n)
    return
  }
  let h = n / 2
  let a11 = array(h * h) let a12 = array(h * h)
  let a21 = array(h * h) let a22 = array(h * h)
  let b11 = array(h * h) let b12 = array(h * h)
  let b21 = array(h * h) let b22 = array(h * h)
  quadrant(a, a11, n, 0, 0) quadrant(a, a12, n, 0, 1)
  quadrant(a, a21, n, 1, 0) quadrant(a, a22, n, 1, 1)
  quadrant(b, b11, n, 0, 0) quadrant(b, b12, n, 0, 1)
  quadrant(b, b21, n, 1, 0) quadrant(b, b22, n, 1, 1)
  let t1 = array(h * h)
  let t2 = array(h * h)
  let m1 = array(h * h) let m2 = array(h * h) let m3 = array(h * h)
  let m4 = array(h * h) let m5 = array(h * h) let m6 = array(h * h)
  let m7 = array(h * h)
  madd(a11, a22, t1, h) madd(b11, b22, t2, h) strassen(t1, t2, m1, h)
  madd(a21, a22, t1, h) strassen(t1, b11, m2, h)
  msub(b12, b22, t2, h) strassen(a11, t2, m3, h)
  msub(b21, b11, t2, h) strassen(a22, t2, m4, h)
  madd(a11, a12, t1, h) strassen(t1, b22, m5, h)
  msub(a21, a11, t1, h) madd(b11, b12, t2, h) strassen(t1, t2, m6, h)
  msub(a12, a22, t1, h) madd(b21, b22, t2, h) strassen(t1, t2, m7, h)
  let c11 = array(h * h) let c12 = array(h * h)
  let c21 = array(h * h) let c22 = array(h * h)
  // c11 = m1 + m4 - m5 + m7
  madd(m1, m4, c11, h) msub(c11, m5, c11, h) madd(c11, m7, c11, h)
  madd(m3, m5, c12, h)
  madd(m2, m4, c21, h)
  // c22 = m1 - m2 + m3 + m6
  msub(m1, m2, c22, h) madd(c22, m3, c22, h) madd(c22, m6, c22, h)
  place(c11, out, n, 0, 0) place(c12, out, n, 0, 1)
  place(c21, out, n, 1, 0) place(c22, out, n, 1, 1)
}
func main() -> Int {
  let n = 8
  let a = array(n * n)
  let b = array(n * n)
  for i in 0 ..< n * n {
    a[i] = (i * 3 + 1) % 7
    b[i] = (i * 5 + 2) % 9
  }
  let fast = array(n * n)
  let slow = array(n * n)
  strassen(a, b, fast, n)
  naive(a, b, slow, n)
  for i in 0 ..< n * n {
    if fast[i] != slow[i] { return 0 }
  }
  return 1
}
|}

let topological_sort =
  {|
// Kahn's algorithm; validate that every edge goes forward in the order.
func main() -> Int {
  let n = 8
  // edges of a DAG
  let ne = 10
  let eu = array(ne)
  let ev = array(ne)
  eu[0] = 0 ev[0] = 1
  eu[1] = 0 ev[1] = 2
  eu[2] = 1 ev[2] = 3
  eu[3] = 2 ev[3] = 3
  eu[4] = 3 ev[4] = 4
  eu[5] = 4 ev[5] = 5
  eu[6] = 2 ev[6] = 6
  eu[7] = 6 ev[7] = 7
  eu[8] = 1 ev[8] = 7
  eu[9] = 0 ev[9] = 5
  let indeg = array(n)
  for e in 0 ..< ne { indeg[ev[e]] = indeg[ev[e]] + 1 }
  let queue = array(n)
  var head = 0
  var tail = 0
  for v in 0 ..< n {
    if indeg[v] == 0 {
      queue[tail] = v
      tail = tail + 1
    }
  }
  let order = array(n)
  var emitted = 0
  while head < tail {
    let v = queue[head]
    head = head + 1
    order[emitted] = v
    emitted = emitted + 1
    for e in 0 ..< ne {
      if eu[e] == v {
        indeg[ev[e]] = indeg[ev[e]] - 1
        if indeg[ev[e]] == 0 {
          queue[tail] = ev[e]
          tail = tail + 1
        }
      }
    }
  }
  if emitted != n { return 0 }
  let pos = array(n)
  for i in 0 ..< n { pos[order[i]] = i }
  for e in 0 ..< ne {
    if pos[eu[e]] >= pos[ev[e]] { return 0 }
  }
  return 1
}
|}

let z_algorithm =
  {|
// Z-array of an all-ones sequence of length 8: sum of z[1..] = 28.
func main() -> Int {
  let n = 8
  let s = array(n)
  for i in 0 ..< n { s[i] = 1 }
  let z = array(n)
  var l = 0
  var r = 0
  for i in 1 ..< n {
    if i < r {
      let cand = r - i
      if z[i - l] < cand { z[i] = z[i - l] } else { z[i] = cand }
    }
    while i + z[i] < n && s[z[i]] == s[i + z[i]] { z[i] = z[i] + 1 }
    if i + z[i] > r {
      l = i
      r = i + z[i]
    }
  }
  var total = 0
  for i in 1 ..< n { total = total + z[i] }
  return total
}
|}

let all =
  [
    { bench_name = "BFS"; source = bfs; expected_exit = 10 };
    { bench_name = "BoyerMooreHorspool"; source = boyer_moore_horspool; expected_exit = 10 };
    { bench_name = "BucketSort"; source = bucket_sort; expected_exit = 1 };
    { bench_name = "ClosestPair"; source = closest_pair; expected_exit = 1 };
    { bench_name = "Combinatorics"; source = combinatorics; expected_exit = 184756 };
    { bench_name = "CountingSort"; source = counting_sort; expected_exit = 1 };
    { bench_name = "CountOccurrences"; source = count_occurrences; expected_exit = 10 };
    { bench_name = "DFS"; source = dfs; expected_exit = 7 };
    { bench_name = "Dijkstra"; source = dijkstra; expected_exit = 11 };
    { bench_name = "EncodeAndDecodeTree"; source = encode_decode_tree; expected_exit = 1 };
    { bench_name = "GCD"; source = gcd; expected_exit = 168 };
    { bench_name = "HashTable"; source = hash_table; expected_exit = 34 };
    { bench_name = "Huffman"; source = huffman; expected_exit = 224 };
    { bench_name = "JSON"; source = json; expected_exit = 2255 };
    { bench_name = "KnuthMorrisPratt"; source = kmp; expected_exit = 7 };
    { bench_name = "LCS"; source = lcs; expected_exit = 5 };
    { bench_name = "LRUCache"; source = lru_cache; expected_exit = 4 };
    { bench_name = "OctTree"; source = octree; expected_exit = 8 };
    { bench_name = "QuickSort"; source = quick_sort; expected_exit = 1 };
    { bench_name = "RedBlackTree"; source = red_black_tree; expected_exit = 1 };
    { bench_name = "RunLengthEncoding"; source = run_length_encoding; expected_exit = 18 };
    { bench_name = "SimulatedAnnealing"; source = simulated_annealing; expected_exit = 37 };
    { bench_name = "SplayTree"; source = splay_tree; expected_exit = 5 };
    { bench_name = "StrassenMM"; source = strassen; expected_exit = 1 };
    { bench_name = "TopologicalSort"; source = topological_sort; expected_exit = 1 };
    { bench_name = "ZAlgorithm"; source = z_algorithm; expected_exit = 28 };
  ]

let pathological =
  {
    bench_name = "Pathological";
    source =
      {|
// A hot loop whose tiny repeated body is outlined (§VII-E3): the four
// identical statements lower to identical 3-instruction groups, which the
// outliner replaces with calls executed two million times.
func seed_value(x: Int) -> Int { return x + 1 }
func main() -> Int {
  var acc = seed_value(0)
  for i in 0 ..< 500000 {
    acc = (acc ^ 12345) + 7
    acc = (acc ^ 12345) + 7
    acc = (acc ^ 12345) + 7
    acc = (acc ^ 12345) + 7
  }
  return acc & 65535
}
|};
    expected_exit = 6913;
  }

let find name =
  if name = pathological.bench_name then pathological
  else List.find (fun b -> String.equal b.bench_name name) all
