(** Running the nine core spans (Figure 13) on a simulated device/OS
    matrix.  A cell's value is the ratio of optimized to baseline P50
    cycles over several samples, exactly as the paper computes it (> 1.0 =
    regression, < 1.0 = improvement). *)

type cell = {
  device : string;
  os : string;
  ratio : float;        (** optimized P50 / baseline P50 *)
}

type span_report = {
  span : string;
  cells : cell list;
  base_seconds : float;     (** simulated-cycles proxy of Table III, baseline *)
  opt_seconds : float;
}

val run_span :
  ?samples:int ->
  ?arg:int ->
  base:Machine.Program.t ->
  opt:Machine.Program.t ->
  device:Perfsim.Device.t ->
  os:Perfsim.Device.os ->
  string ->
  (float * float, string) Stdlib.result
(** P50 cycles (base, optimized) of one span on one device/OS; samples vary
    the span argument to model production noise. *)

val heatmap :
  ?samples:int ->
  base:Machine.Program.t ->
  opt:Machine.Program.t ->
  spans:string list ->
  unit ->
  (span_report list, string) Stdlib.result

val geomean_ratio : span_report list -> float
