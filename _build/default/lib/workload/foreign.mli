(** Machine-code-shape generators for the non-iOS programs of §VII-E2:
    synthetic stand-ins for the clang 9 and Android-Linux-kernel bitcode
    the paper's artifact ships.  Generated directly at the machine level
    (these are size-only workloads, never executed), with the code shapes
    the paper observed:

    - clang-like: visitor/dispatch-heavy functions, long compare-and-branch
      chains fanning out to many distinct callees, argument-register
      shuffles before calls;
    - kernel-like: register save/restore runs, and the stack-guard check
      epilogue ([ldr guard; cmp; b.ne __stack_chk_fail]) repeated in
      every function. *)

val clang_like : ?seed:int -> ?functions:int -> unit -> Machine.Program.t
(** Default 1200 functions. *)

val kernel_like : ?seed:int -> ?functions:int -> unit -> Machine.Program.t
(** Default 1500 functions. *)
