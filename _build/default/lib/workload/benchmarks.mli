(** The 26 algorithmic Swift benchmarks of Table IV, reimplemented in
    Swiftlet, plus the pathological hot-loop case of §VII-E3.

    Each program's [main] is self-validating where possible (sorts verify
    sortedness, round-trips compare, searches check known answers) and
    returns a deterministic value recorded in [expected_exit]. *)

type t = {
  bench_name : string;
  source : string;
  expected_exit : int;
}

val all : t list
(** The 26 benchmarks, in the paper's order. *)

val pathological : t
(** A long-running loop whose 2-instruction body is outlining bait. *)

val find : string -> t
(** Raises [Not_found]. *)
